(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section 6), plus the ablations from DESIGN.md.

     dune exec bench/main.exe              # everything (E1-E5, A1-A2)
     dune exec bench/main.exe -- table1    # one experiment
     dune exec bench/main.exe -- figure5 --docs 2000
     dune exec bench/main.exe -- micro     # bechamel micro-suite

   Experiments (ids from DESIGN.md):
     E1 table1   index sizes [MB] for the six strategies
     E2 figure5  time to k-th result of the hub a//article query
     E3 errors   fraction of results returned out of order
     E4 connect  connection-test latency
     E5 multi    figure5 repeated over random start elements / tags
     A1 hybrid   hybrid config vs its parts on a Figure-1-style web mix
     A2 psweep   Unconnected-HOPI partition-size sweep
     A6 inex     Naive config on an INEX-style isolated-document collection
     D1 disk     disk-resident HOPI labels behind a buffer pool, cold vs warm
     A3 exact    approximate vs exactly-ordered evaluation
     A4 cache    query-result cache on a skewed workload
     A5 ordering HOPI landmark-order ablation
        serve    query-service throughput / latency at worker counts 1/2/4
        micro    bechamel per-operation latencies

   Absolute times are in-memory OCaml, ~1000x below the paper's
   database-backed numbers; EXPERIMENTS.md compares shapes. *)

module C = Fx_xml.Collection
module Pi = Fx_index.Path_index
module MB = Fx_flix.Meta_builder
module SS = Fx_flix.Strategy_selector
module Pee = Fx_flix.Pee
module RS = Fx_flix.Result_stream
module Stats = Fx_flix.Stats
module Flix = Fx_flix.Flix
module Dblp = Fx_workload.Dblp_gen
module Web = Fx_workload.Web_gen
module Qg = Fx_workload.Query_gen
module Traversal = Fx_graph.Traversal

let now () = Unix.gettimeofday ()

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let header title =
  Printf.printf "\n=== %s ===\n%!" title


(* ------------------------------------------------------------------ *)
(* Contenders: the six indexing strategies of Section 6, each exposing
   a lazily-pulled result stream for the hub query so that time-to-k-th
   result is measured honestly. *)

type contender = {
  name : string;
  size_bytes : int;
  build_s : float;
  (* a//tag evaluation returning a fresh pull-based stream *)
  query : start:int -> tag:int option -> (int * int) RS.t;
  (* reachability probe, used by the connection-test bench *)
  probe : int -> int -> int option;
  runtime_links : int;
}

let stream_of_list results =
  let rest = ref results in
  RS.of_fn (fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x)

let stream_of_seq seq =
  let state = ref seq in
  RS.of_fn (fun () ->
      match !state () with
      | Seq.Nil -> None
      | Seq.Cons (x, rest) ->
          state := rest;
          Some x)

(* Global HOPI applied to the complete collection: all results of the
   block arrive at once (the label probe is one batch operation), which
   reproduces the paper's flat HOPI curve in Figure 5. *)
let hopi_global c =
  let dg = { Pi.graph = C.graph c; tag = C.tag c } in
  let t, build_s = timed (fun () -> Fx_index.Hopi.build dg) in
  ( t,
    {
    name = "HOPI";
    size_bytes = Fx_index.Hopi.size_bytes t;
    build_s;
    query =
      (fun ~start ~tag ->
        (* The batch evaluation must run inside the first pull, not at
           stream construction, or time-to-first-result would be 0. *)
        let block =
          lazy
            (stream_of_list
               (List.filter
                  (fun (v, d) -> not (v = start && d = 0))
                  (Fx_index.Hopi.descendants_by_tag t start tag)))
        in
        RS.of_fn (fun () -> RS.next (Lazy.force block)));
    probe = Fx_index.Hopi.distance t;
    runtime_links = 0;
  } )

let apex_global c =
  let dg = { Pi.graph = C.graph c; tag = C.tag c } in
  let t, build_s = timed (fun () -> Fx_index.Apex.build dg) in
  {
    name = "APEX";
    size_bytes = Fx_index.Apex.size_bytes t;
    build_s;
    query =
      (fun ~start ~tag ->
        RS.filter
          (fun (v, d) -> not (v = start && d = 0))
          (stream_of_seq (Fx_index.Apex.descendants_stream t start tag)));
    probe = Fx_index.Apex.distance t;
    runtime_links = 0;
  }

let flix_contender name config ?policy c =
  let f, build_s = timed (fun () -> Flix.build ~config ?policy c) in
  let pee = Flix.pee f in
  {
    name;
    size_bytes = Flix.index_size_bytes f;
    build_s;
    query =
      (fun ~start ~tag ->
        RS.map
          (fun (it : Pee.item) -> (it.node, it.dist))
          (Pee.descendants ?tag pee ~start));
    probe = (fun a b -> Pee.connected pee a b);
    runtime_links = Fx_flix.Meta_document.total_out_links (Flix.registry f);
  }

(* The paper's line-up: HOPI and APEX on the complete collection,
   PPO-naive, two Unconnected-HOPI variants and Maximal PPO as FliX
   configurations. *)
let contenders c =
  let force_hopi = SS.Force (SS.HOPI { partition_size = 5000 }) in
  let hopi_t, hopi_contender = hopi_global c in
  ( hopi_t,
  [
    hopi_contender;
    apex_global c;
    flix_contender "PPO-naive" MB.Naive c;
    flix_contender "HOPI-5000" (MB.Unconnected_hopi { max_size = 5_000 }) ~policy:force_hopi c;
    flix_contender "HOPI-20000" (MB.Unconnected_hopi { max_size = 20_000 }) ~policy:force_hopi c;
    flix_contender "MaximalPPO" MB.Maximal_ppo c;
  ] )

(* ------------------------------------------------------------------ *)
(* Shared experiment context, built once per run. *)

type ctx = {
  collection : C.t;
  hub : Qg.query;
  article_tag : int option;
  all : contender list;
  hopi_labels : Fx_index.Hopi.t;
}

let make_ctx ~docs ~seed =
  Printf.printf "workload: synthetic DBLP, %d documents (seed %d)\n%!" docs seed;
  let c, gen_s = timed (fun () -> Dblp.collection { Dblp.paper_scale with n_docs = docs; seed }) in
  Printf.printf "collection: %s (generated in %.2f s)\n%!" (C.stats c) gen_s;
  let hub = Qg.hub_query c ~tag:"article" in
  Printf.printf "hub query: %s, %d true results\n%!" hub.label hub.n_reachable;
  Printf.printf "building the six indexes...\n%!";
  let hopi_labels, all = contenders c in
  List.iter (fun k -> Printf.printf "  %-11s built in %6.2f s\n%!" k.name k.build_s) all;
  { collection = c; hub; article_tag = C.tag_id c "article"; all; hopi_labels }

(* ------------------------------------------------------------------ *)
(* E1: Table 1 — index sizes. *)

let table1 ctx =
  header "E1 / Table 1: index sizes";
  Printf.printf "%-12s %10s %10s %10s\n" "index" "size [MB]" "build [s]" "links@qry";
  List.iter
    (fun k ->
      Printf.printf "%-12s %10.2f %10.2f %10d\n" k.name (Stats.mb k.size_bytes) k.build_s
        k.runtime_links)
    ctx.all;
  let est =
    Fx_graph.Tc_estimate.closure_pairs
      (Fx_graph.Tc_estimate.compute ~rounds:16 ~seed:17 (C.graph ctx.collection))
  in
  Printf.printf "%-12s %10.2f %21s\n" "TC (est.)" (Stats.mb (int_of_float (8.0 *. est)))
    "(Cohen estimator)";
  print_newline ();
  print_endline "paper (27 MB DBLP extract, Oracle-backed): HOPI huge but >10x below TC;";
  print_endline "HOPI-5000 ~ 2x APEX; PPO-naive and MaximalPPO smallest, roughly equal."

(* ------------------------------------------------------------------ *)
(* E2: Figure 5 — time to the k-th result of hub//article. *)

let ks = [ 1; 2; 5; 10; 20; 50; 100 ]

let figure5_row ctx (k : contender) =
  let stream = k.query ~start:ctx.hub.start ~tag:ctx.article_tag in
  let trace = RS.take_timed 100 stream in
  (k.name, Stats.time_series trace ~ks, List.length trace)

let figure5 ctx =
  header "E2 / Figure 5: time [ms] to return the first k results of hub//article";
  Printf.printf "%-12s" "index";
  List.iter (fun k -> Printf.printf " %8s" ("k=" ^ string_of_int k)) ks;
  Printf.printf " %8s\n" "#res";
  List.iter
    (fun k ->
      let name, series, total = figure5_row ctx k in
      Printf.printf "%-12s" name;
      List.iter
        (fun want ->
          match List.assoc_opt want series with
          | Some ms -> Printf.printf " %8.3f" ms
          | None -> Printf.printf " %8s" "-")
        ks;
      Printf.printf " %8d\n%!" total)
    ctx.all;
  print_newline ();
  print_endline "paper: HOPI flat (~0.6 s); HOPI-5000/20000 beat HOPI for the first";
  print_endline "results; MaximalPPO fastest to the very first results but degrades;";
  print_endline "PPO-naive constantly slower; APEX in between."

(* ------------------------------------------------------------------ *)
(* E3: result-order error rates. *)

let error_rates ctx =
  header "E3: fraction of results returned out of order (hub//article)";
  let truth = Traversal.bfs_distances (C.graph ctx.collection) ctx.hub.start in
  Printf.printf "%-12s %12s %14s\n" "index" "inversions" "strict/result";
  List.iter
    (fun k ->
      let stream = k.query ~start:ctx.hub.start ~tag:ctx.article_tag in
      let nodes = List.map fst (RS.to_list stream) in
      let td v = truth.(v) in
      Printf.printf "%-12s %11.1f%% %13.1f%%\n" k.name
        (100.0 *. Stats.inversion_rate ~true_dist:td nodes)
        (100.0 *. Stats.error_rate ~true_dist:td nodes))
    ctx.all;
  print_newline ();
  print_endline "paper: 8.2% (HOPI-5000), 10.4% (HOPI-20000), 13.3% (MaximalPPO);";
  print_endline "exact strategies (HOPI, APEX, and PPO inside one document) at 0%."

(* ------------------------------------------------------------------ *)
(* E4: connection tests. *)

let connect ctx =
  header "E4: connection tests (100 random pairs, half of them connected)";
  let pairs =
    Qg.connection_pairs ctx.collection ~seed:23 ~count:100 ~connected_fraction:0.5
  in
  Printf.printf "%-12s %12s %12s %9s\n" "index" "mean [ms]" "p95 [ms]" "agree";
  List.iter
    (fun k ->
      let times = ref [] and agree = ref 0 in
      List.iter
        (fun (a, b, truth) ->
          let r, s = timed (fun () -> k.probe a b) in
          times := (1000.0 *. s) :: !times;
          if (r <> None) = (truth <> None) then incr agree)
        pairs;
      Printf.printf "%-12s %12.4f %12.4f %8d%%\n%!" k.name (Stats.mean !times)
        (Stats.percentile 95.0 !times) !agree)
    ctx.all;
  print_newline ();
  print_endline "paper: same relative trend as Figure 5, lower absolute numbers."

(* ------------------------------------------------------------------ *)
(* E5: Figure 5 over random start elements and tag names. *)

let multi ctx =
  header "E5: robustness — five random a//b queries (time [ms] to k=10 / k=100)";
  let queries =
    Qg.descendant_queries ctx.collection ~seed:31 ~count:5 ~min_results:100
  in
  if queries = [] then print_endline "collection too small to sample queries; skipped"
  else begin
    Printf.printf "%-12s" "index";
    List.iteri (fun i _ -> Printf.printf "      q%d-10     q%d-100" (i + 1) (i + 1)) queries;
    print_newline ();
    List.iter
      (fun (k : contender) ->
        Printf.printf "%-12s" k.name;
        List.iter
          (fun (q : Qg.query) ->
            let stream = k.query ~start:q.start ~tag:(C.tag_id ctx.collection q.tag) in
            let trace = RS.take_timed 100 stream in
            let at n =
              match List.assoc_opt n (Stats.time_series trace ~ks:[ n ]) with
              | Some ms -> Printf.sprintf "%10.3f" ms
              | None -> Printf.sprintf "%10s" "-"
            in
            Printf.printf " %s %s" (at 10) (at 100))
          queries;
        print_newline ())
      ctx.all;
    print_newline ();
    print_endline
      "paper: \"other experiments with different start elements and different\n\
       tag names showed similar results\" — the ordering of strategies should\n\
       match Figure 5 on most queries."
  end

(* ------------------------------------------------------------------ *)
(* A1: hybrid configuration on the heterogeneous web collection. *)

let hybrid () =
  header "A1 (ablation): FliX configurations on a Figure-1-style web collection";
  let p =
    { Web.default with n_tree_docs = 300; n_dense_docs = 120; dense_doc_size = 80; seed = 3 }
  in
  let c = Web.collection p in
  Printf.printf "collection: %s\n%!" (C.stats c);
  let queries = Qg.descendant_queries c ~seed:7 ~count:8 ~min_results:20 in
  Printf.printf "%d sampled queries with >= 20 results each\n" (List.length queries);
  let configs =
    [
      ("Naive", MB.Naive);
      ("MaximalPPO", MB.Maximal_ppo);
      ("Unc-HOPI", MB.Unconnected_hopi { max_size = 2000 });
      ("Hybrid", MB.Hybrid { max_size = 2000; min_tree_size = 50 });
      ("Element", MB.Element_level { max_size = 2000 });
    ]
  in
  Printf.printf "%-12s %10s %10s %12s %12s %12s\n" "config" "size [MB]" "links@qry" "t-first[ms]"
    "t-20th [ms]" "err rate";
  List.iter
    (fun (name, config) ->
      let k = flix_contender name config c in
      let firsts = ref [] and t20 = ref [] and errs = ref [] in
      List.iter
        (fun (q : Qg.query) ->
          let truth = Traversal.bfs_distances (C.graph c) q.start in
          let stream = k.query ~start:q.start ~tag:(C.tag_id c q.tag) in
          let trace = RS.take_timed 20 stream in
          (match trace with (_, ms) :: _ -> firsts := ms :: !firsts | [] -> ());
          (match List.rev trace with
          | (_, ms) :: _ when List.length trace = 20 -> t20 := ms :: !t20
          | _ -> ());
          errs :=
            Stats.inversion_rate ~true_dist:(fun v -> truth.(v))
              (List.map fst (List.map fst trace))
            :: !errs)
        queries;
      Printf.printf "%-12s %10.2f %10d %12.4f %12.4f %11.1f%%\n%!" name
        (Stats.mb k.size_bytes) k.runtime_links (Stats.mean !firsts) (Stats.mean !t20)
        (100.0 *. Stats.mean !errs))
    configs;
  print_newline ();
  print_endline "expectation: Hybrid matches MaximalPPO on the tree cluster and";
  print_endline "Unconnected-HOPI on the dense cluster — best of both at modest size."

(* ------------------------------------------------------------------ *)
(* A2: partition-size sweep for Unconnected HOPI. *)

let psweep ctx =
  header "A2 (ablation): Unconnected-HOPI partition-size sweep";
  let truth = Traversal.bfs_distances (C.graph ctx.collection) ctx.hub.start in
  Printf.printf "%-10s %10s %10s %12s %12s %10s\n" "max_size" "size [MB]" "build [s]"
    "t-10 [ms]" "t-100 [ms]" "err rate";
  List.iter
    (fun max_size ->
      let k =
        flix_contender
          (Printf.sprintf "HOPI-%d" max_size)
          (MB.Unconnected_hopi { max_size })
          ~policy:(SS.Force (SS.HOPI { partition_size = 5000 }))
          ctx.collection
      in
      let stream = k.query ~start:ctx.hub.start ~tag:ctx.article_tag in
      let trace = RS.take_timed 100 stream in
      let at n =
        match List.assoc_opt n (Stats.time_series trace ~ks:[ n ]) with
        | Some ms -> ms
        | None -> nan
      in
      let full_nodes =
        List.map fst (RS.to_list (k.query ~start:ctx.hub.start ~tag:ctx.article_tag))
      in
      let err = Stats.inversion_rate ~true_dist:(fun v -> truth.(v)) full_nodes in
      Printf.printf "%-10d %10.2f %10.2f %12.4f %12.4f %9.1f%%\n%!" max_size
        (Stats.mb k.size_bytes) k.build_s (at 10) (at 100) (100.0 *. err))
    [ 1_000; 2_000; 5_000; 10_000; 20_000; 50_000 ];
  print_newline ();
  print_endline "expectation: larger partitions -> bigger labels, fewer run-time";
  print_endline "links, lower error rate; the paper's 5000/20000 sit mid-sweep."

(* ------------------------------------------------------------------ *)
(* A6: the Naive configuration on its home turf — an INEX-style
   collection of large, isolated documents (paper, Section 4.3). *)

let inex () =
  header "A6 (ablation): configurations on an INEX-style collection";
  let c =
    Fx_workload.Inex_gen.collection { Fx_workload.Inex_gen.default with n_docs = 150 }
  in
  Printf.printf "collection: %s\n%!" (C.stats c);
  (* INEX queries live inside one document: all paragraph descendants of
     random section elements. *)
  let sections = C.find_by_tag c "sec" in
  let rng = Fx_util.Rng.create 13 in
  let starts =
    List.init 40 (fun _ -> List.nth sections (Fx_util.Rng.int rng (List.length sections)))
  in
  let tag = C.tag_id c "p" in
  Printf.printf "%-14s %10s %10s %12s\n" "config" "size [MB]" "links@qry" "mean q [ms]";
  List.iter
    (fun (name, config) ->
      let k = flix_contender name config c in
      let times =
        List.map
          (fun start ->
            let _, s = timed (fun () -> RS.to_list (k.query ~start ~tag)) in
            1000.0 *. s)
          starts
      in
      Printf.printf "%-14s %10.2f %10d %12.4f\n%!" name (Stats.mb k.size_bytes)
        k.runtime_links (Stats.mean times))
    [
      ("Naive", MB.Naive);
      ("Spanning-PPO", MB.Spanning_ppo);
      ("Unc-HOPI", MB.Unconnected_hopi { max_size = 2000 });
      ("Hybrid", MB.Hybrid { max_size = 2000; min_tree_size = 50 });
    ];
  print_newline ();
  print_endline "paper: \"the INEX benchmark collection ... would be a good candidate";
  print_endline "for using this [naive] configuration\" — documents are large, links";
  print_endline "rare, queries stay inside one document."

(* ------------------------------------------------------------------ *)
(* A3: exact vs approximate result ordering (the paper's future-work
   refinement, Section 7). *)

let exact_ablation ctx =
  header "A3 (ablation): approximate vs exact result ordering (hub//article)";
  let flix =
    Flix.build ~config:(MB.Unconnected_hopi { max_size = 5_000 })
      ~policy:(SS.Force (SS.HOPI { partition_size = 5000 }))
      ctx.collection
  in
  let pee = Flix.pee flix in
  let truth = Traversal.bfs_distances (C.graph ctx.collection) ctx.hub.start in
  Printf.printf "%-14s %10s %12s %12s %10s %12s\n" "engine" "err rate" "t-10 [ms]"
    "t-100 [ms]" "#results" "queue ops";
  List.iter
    (fun (name, make_stream) ->
      let ins0, _ = Pee.queue_stats pee in
      let trace = RS.take_timed 100 (make_stream ()) in
      let at n =
        match List.assoc_opt n (Stats.time_series trace ~ks:[ n ]) with
        | Some ms -> ms
        | None -> nan
      in
      let all = RS.to_list (make_stream ()) in
      let ins1, _ = Pee.queue_stats pee in
      let err =
        Stats.inversion_rate
          ~true_dist:(fun v -> truth.(v))
          (List.map (fun (it : Pee.item) -> it.node) all)
      in
      Printf.printf "%-14s %9.1f%% %12.4f %12.4f %10d %12d\n%!" name (100.0 *. err)
        (at 10) (at 100) (List.length all) ((ins1 - ins0) / 2))
    [
      ("approximate", fun () -> Pee.descendants ?tag:ctx.article_tag pee ~start:ctx.hub.start);
      ("exact", fun () -> Pee.descendants_exact ?tag:ctx.article_tag pee ~start:ctx.hub.start);
    ];
  print_newline ();
  print_endline "expectation: the exact engine trades extra queue traffic (weaker";
  print_endline "entry-point pruning, gated emission) for a 0% error rate."

(* ------------------------------------------------------------------ *)
(* A4: result caching (the paper's future-work item). *)

let cache_ablation ctx =
  header "A4 (ablation): query-result cache on a skewed workload";
  let flix =
    Flix.build ~config:(MB.Unconnected_hopi { max_size = 5_000 }) ctx.collection
  in
  let pee = Flix.pee flix in
  let cache = Fx_flix.Query_cache.create ~capacity:64 pee in
  (* 200 queries over 30 distinct hot starts, Zipf-skewed like a real
     query log. *)
  let starts =
    Fx_workload.Query_gen.descendant_queries ctx.collection ~seed:51 ~count:30 ~min_results:5
    |> List.map (fun (q : Fx_workload.Query_gen.query) -> q.start)
    |> Array.of_list
  in
  if Array.length starts = 0 then print_endline "no queries sampled; skipped"
  else begin
    let zipf = Fx_workload.Zipf.create (Array.length starts) in
    let rng = Fx_util.Rng.create 9 in
    let cold = ref [] and warm = ref [] in
    for _ = 1 to 200 do
      let start = starts.(Fx_workload.Zipf.sample zipf rng) in
      let hit =
        (Fx_flix.Query_cache.stats cache).hits
      in
      let (_ : Pee.item list), dt =
        let t0 = now () in
        let r = RS.to_list (Fx_flix.Query_cache.descendants cache ?tag:ctx.article_tag ~start) in
        (r, 1000.0 *. (now () -. t0))
      in
      if (Fx_flix.Query_cache.stats cache).hits > hit then warm := dt :: !warm
      else cold := dt :: !cold
    done;
    let s = Fx_flix.Query_cache.stats cache in
    Printf.printf "hit rate %.0f%% over 200 queries (%d entries)\n" (100.0 *. s.hit_rate)
      s.entries;
    Printf.printf "mean latency: cold %.4f ms (%d), warm %.4f ms (%d) -> %.0fx speed-up\n"
      (Stats.mean !cold) (List.length !cold) (Stats.mean !warm) (List.length !warm)
      (Stats.mean !cold /. Stats.mean !warm)
  end

(* ------------------------------------------------------------------ *)
(* A5: landmark-ordering ablation for the 2-hop construction. *)

let ordering_ablation ctx =
  header "A5 (ablation): HOPI landmark ordering (coverage vs borders-first)";
  let dg = { Pi.graph = C.graph ctx.collection; tag = C.tag ctx.collection } in
  Printf.printf "%-16s %10s %12s %12s\n" "ordering" "build [s]" "entries" "size [MB]";
  List.iter
    (fun (name, ordering) ->
      let t, s = timed (fun () -> Fx_index.Hopi.build ~ordering dg) in
      Printf.printf "%-16s %10.2f %12d %12.2f\n%!" name s (Fx_index.Hopi.entries t)
        (Stats.mb (Fx_index.Hopi.size_bytes t)))
    [ ("coverage", `Coverage); ("borders-first", `Borders_first) ];
  print_newline ();
  print_endline "both orderings yield exact indexes; coverage (Cohen-estimated";
  print_endline "|anc|x|desc|) is the default because it compresses better in memory."

(* ------------------------------------------------------------------ *)
(* D1: the database-backed deployment — HOPI labels in a page file
   behind a buffer pool, probed cold and warm. This is the regime the
   paper measured (Oracle tables, no application-level caching). *)

let disk ctx =
  header "D1: disk-resident HOPI labels, cold vs warm buffer pool";
  let labels = Fx_index.Hopi.labels ctx.hopi_labels in
  let path = Filename.temp_file "flix_labels" ".pg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let (), save_s = timed (fun () -> Fx_index.Disk_labels.save ~path labels) in
      let file_mb = float_of_int (Unix.stat path).Unix.st_size /. 1048576.0 in
      Printf.printf "store: %.2f MB on disk, written in %.2f s\n" file_mb save_s;
      let pairs =
        Qg.connection_pairs ctx.collection ~seed:77 ~count:500 ~connected_fraction:0.5
      in
      Printf.printf "%-12s %12s %12s %14s\n" "pool" "mean us" "p95 us" "page misses";
      List.iter
        (fun (label, pool_pages, warmup) ->
          Gc.compact ();
          let disk = Fx_index.Disk_labels.open_ ~pool_pages path in
          if warmup then
            List.iter (fun (a, b, _) -> ignore (Fx_index.Disk_labels.distance disk a b)) pairs;
          Fx_index.Disk_labels.reset_stats disk;
          let times =
            List.map
              (fun (a, b, truth) ->
                let r, s = timed (fun () -> Fx_index.Disk_labels.distance disk a b) in
                assert ((r <> None) = (truth <> None));
                1e6 *. s)
              pairs
          in
          let misses = (Fx_index.Disk_labels.stats disk).Fx_store.Pager.physical_reads in
          Printf.printf "%-12s %12.2f %12.2f %14d\n%!" label (Stats.mean times)
            (Stats.percentile 95.0 times) misses;
          Fx_index.Disk_labels.close disk)
        [
          ("cold-tiny", 8, false);
          ("cold-256", 256, false);
          ("warm-256", 256, true);
          ("warm-4096", 4096, true);
        ];
      print_newline ();
      print_endline "expectation: page misses vanish as the pool grows; per-probe time is";
      print_endline "dominated by label decoding once resident (large collections), by page";
      print_endline "fetches when the pool thrashes (the paper's regime).");
  (* Full disk deployment: labels + B+tree tag directory, the hub
     descendants query end to end from disk. *)
  let prefix = Filename.temp_file "flix_hopi" "" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ prefix; prefix ^ ".labels"; prefix ^ ".tags" ])
    (fun () ->
      let dg = { Pi.graph = C.graph ctx.collection; tag = C.tag ctx.collection } in
      let (), save_s =
        timed (fun () -> Fx_index.Disk_hopi.save ~path:prefix dg ctx.hopi_labels)
      in
      Printf.printf "\nfull deployment (labels + tag B+tree) written in %.2f s\n" save_s;
      Printf.printf "%-12s %14s %16s\n" "pool" "hub query ms" "page misses";
      List.iter
        (fun (label, pool_pages, warm) ->
          Gc.compact ();
          let d = Fx_index.Disk_hopi.open_ ~pool_pages ~path:prefix () in
          Fx_index.Disk_hopi.drop_pools d;
          if warm then
            ignore (Fx_index.Disk_hopi.descendants_by_tag d ctx.hub.start ctx.article_tag);
          let ls0, ts0 = Fx_index.Disk_hopi.stats d in
          let results, s =
            timed (fun () -> Fx_index.Disk_hopi.descendants_by_tag d ctx.hub.start ctx.article_tag)
          in
          let ls, ts = Fx_index.Disk_hopi.stats d in
          let misses =
            ls.Fx_store.Pager.physical_reads + ts.Fx_store.Pager.physical_reads
            - ls0.Fx_store.Pager.physical_reads - ts0.Fx_store.Pager.physical_reads
          in
          Printf.printf "%-12s %14.2f %16d   (%d results)\n%!" label (1000.0 *. s) misses
            (List.length results);
          Fx_index.Disk_hopi.close d)
        [ ("cold-256", 256, false); ("warm-16k", 16_384, true) ];
      print_newline ();
      print_endline "the cold run is the paper's regime: every candidate probe may fetch";
      print_endline "pages, so the full block costs orders of magnitude more than in RAM.")

(* ------------------------------------------------------------------ *)
(* serve: the query service under concurrent client load — throughput
   and latency percentiles per worker count and backend (in-memory
   FliX vs the persistent disk deployment), plus a JSON line for
   machine consumption alongside the human-readable table. *)

let serve ctx =
  header "serve: query-service throughput and latency (8 client threads)";
  (* Worker scaling is the whole point of this bench; on a single-core
     box every worker count runs the same serialized schedule and the
     rows say nothing about scaling. Say so loudly, and stamp the core
     count into the JSON so downstream comparisons can filter. *)
  let cores = Domain.recommended_domain_count () in
  if cores = 1 then begin
    Printf.printf
      "\n\
       *** WARNING: only 1 CPU core available — worker counts cannot run in\n\
       *** parallel, so the scaling rows below are meaningless. Re-run on a\n\
       *** multi-core machine before comparing worker counts.\n\n\
       %!"
  end;
  let flix = Flix.build ~config:(MB.Unconnected_hopi { max_size = 5_000 }) ctx.collection in
  let n_docs = C.n_docs ctx.collection in
  let n_threads = 8 and per_thread = 200 in
  (* [extra ~port] runs after the measured load but before shutdown —
     coordinator rows use it to fire a cache-exercising query mix and
     snapshot probe/cache counters into extra JSON fields. *)
  let run_one ~backend_name ~workers ?extra backend =
    let server =
      Fx_server.Server.start_backend
        ~config:{ Fx_server.Server.default_config with workers; queue_capacity = 256 }
        backend
    in
    let port = Fx_server.Server.port server in
    let lats = Array.make (n_threads * per_thread) 0.0 in
    let wall = Fx_util.Stopwatch.start () in
    let threads =
      List.init n_threads (fun tid ->
          Thread.create
            (fun () ->
              let client = Fx_server.Server_client.connect ~port () in
              let rng = Fx_util.Rng.create (100 + tid) in
              for i = 0 to per_thread - 1 do
                let doc = Fx_workload.Dblp_gen.doc_name (Fx_util.Rng.int rng n_docs) in
                let sw = Fx_util.Stopwatch.start () in
                (match
                   Fx_server.Server_client.descendants client ~doc ~tag:"author" ~k:10 ()
                 with
                | Ok _ -> ()
                | Error e -> Printf.eprintf "bench client error: %s\n%!" e);
                lats.((tid * per_thread) + i) <- Fx_util.Stopwatch.elapsed_ms sw
              done;
              Fx_server.Server_client.close client)
            ())
    in
    List.iter Thread.join threads;
    let wall_s = Fx_util.Stopwatch.elapsed_ms wall /. 1000.0 in
    let extra_fields = match extra with None -> [] | Some f -> f ~port in
    Fx_server.Server.stop server;
    let all = Array.to_list lats in
    let total = n_threads * per_thread in
    let rps = float_of_int total /. wall_s in
    let p q = Stats.percentile q all in
    Printf.printf "%-8s %-8d %10d %10.0f %10.4f %10.4f %10.4f\n%!" backend_name workers
      total rps (p 50.0) (p 95.0) (p 99.0);
    Printf.sprintf
      "{\"backend\":%S,\"workers\":%d,\"requests\":%d,\"rps\":%.1f,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f%s}"
      backend_name workers total rps (p 50.0) (p 95.0) (p 99.0)
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%s" k v) extra_fields))
  in
  Printf.printf "%-8s %-8s %10s %10s %10s %10s %10s\n" "backend" "workers" "requests"
    "req/s" "p50 [ms]" "p95 [ms]" "p99 [ms]";
  let memory_rows =
    List.map
      (fun w -> run_one ~backend_name:"memory" ~workers:w (Fx_server.Server.In_memory flix))
      [ 1; 2; 4 ]
  in
  (* Disk rows: persist a global-HOPI deployment once and share the
     handle across worker counts — the thread-safe pager is exactly what
     lets all the worker domains hit one buffer pool. *)
  let prefix = Filename.temp_file "flix_serve" "" in
  let disk_rows =
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ prefix; prefix ^ ".labels"; prefix ^ ".tags"; prefix ^ ".catalog" ])
      (fun () ->
        let dg = { Pi.graph = C.graph ctx.collection; tag = C.tag ctx.collection } in
        Fx_index.Disk_hopi.save ~path:prefix dg ctx.hopi_labels;
        Fx_index.Catalog.save ~path:(prefix ^ ".catalog")
          (Fx_index.Catalog.of_collection ctx.collection);
        let d = Fx_index.Disk_hopi.open_ ~pool_pages:16_384 ~stripes:8 ~path:prefix () in
        let catalog = Fx_index.Catalog.load (prefix ^ ".catalog") in
        (* Per-row stripe evidence: how many gate/io acquisitions had to
           block across both files (cumulative over the shared handle —
           the per-row delta is visible across consecutive rows). *)
        let stripe_extra ~port:_ =
          let ls, ts = Fx_index.Disk_hopi.stripe_stats d in
          let sum f = List.fold_left (fun a st -> a + f st) 0 (ls @ ts) in
          [
            ("stripes", string_of_int (List.length ls));
            ( "lock_acquisitions",
              string_of_int (sum (fun (st : Fx_store.Pager.stripe_stats) -> st.lock_acquisitions)) );
            ( "lock_contended",
              string_of_int (sum (fun (st : Fx_store.Pager.stripe_stats) -> st.lock_contended)) );
          ]
        in
        Fun.protect
          ~finally:(fun () -> Fx_index.Disk_hopi.close d)
          (fun () ->
            List.map
              (fun w ->
                run_one ~backend_name:"disk" ~workers:w ~extra:stripe_extra
                  (Fx_server.Server.On_disk { hopi = d; catalog }))
              [ 1; 2; 4 ]))
  in
  (* Sharded rows: the same load through a scatter-gather coordinator
     over disk-backed shard servers. coord1 isolates the coordinator's
     fan-out overhead (one shard, no cross-shard links); coord2 adds
     the 2-shard split with live portal chasing. Each shard count runs
     three times with a fresh coordinator per row: probe batching off
     (coordN-nobatch), batching on but portal distances probed
     (coordN-noclosure), and the portal closure joined in memory
     (coordN) — so the probe counters give both the batching and the
     closure before/after comparisons. *)
  let shard_rows =
    let module SP = Fx_shard.Shard_plan in
    let module PC = Fx_shard.Portal_closure in
    let module Coord = Fx_shard.Coordinator in
    List.concat_map
      (fun n_shards ->
        let plan = SP.plan ~n_shards ctx.collection in
        let deployments =
          SP.shard_documents plan ctx.collection
          |> Array.map (fun doc_list ->
                 let sub = C.build doc_list in
                 let dg = { Pi.graph = C.graph sub; tag = C.tag sub } in
                 let hopi = Fx_index.Hopi.build dg in
                 let prefix = Filename.temp_file "flix_shard" "" in
                 Fx_index.Disk_hopi.save ~path:prefix dg hopi;
                 Fx_index.Catalog.save ~path:(prefix ^ ".catalog")
                   (Fx_index.Catalog.of_collection sub);
                 let d = Fx_index.Disk_hopi.open_ ~pool_pages:16_384 ~path:prefix () in
                 (prefix, d, Fx_index.Catalog.load (prefix ^ ".catalog"), hopi))
        in
        let closure =
          let hopis = Array.map (fun (_, _, _, hopi) -> hopi) deployments in
          PC.build ~plan
            ~local_dist:(fun ~shard ~a ~b -> Fx_index.Hopi.distance hopis.(shard) a b)
        in
        Printf.printf "  %d-shard %s\n%!" n_shards (PC.describe closure);
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun (prefix, d, _, _) ->
                Fx_index.Disk_hopi.close d;
                List.iter
                  (fun p -> try Sys.remove p with Sys_error _ -> ())
                  [ prefix; prefix ^ ".labels"; prefix ^ ".tags"; prefix ^ ".catalog" ])
              deployments)
          (fun () ->
            let servers =
              Array.map
                (fun (_, d, catalog, _) ->
                  Fx_server.Server.start_backend
                    ~config:{ Fx_server.Server.default_config with workers = 2 }
                    (Fx_server.Server.On_disk { hopi = d; catalog }))
                deployments
            in
            Fun.protect
              ~finally:(fun () -> Array.iter Fx_server.Server.stop servers)
              (fun () ->
                let shards =
                  Array.to_list servers
                  |> List.map (fun s -> ("127.0.0.1", Fx_server.Server.port s))
                in
                List.map
                  (fun (suffix, batching, use_closure) ->
                    let coord =
                      Coord.create ~batching ~query_cache:256
                        ?closure:(if use_closure then Some closure else None)
                        ~plan ~shards ()
                    in
                    Fun.protect
                      ~finally:(fun () -> Coord.close coord)
                      (fun () ->
                        let name = Printf.sprintf "coord%d%s" (SP.n_shards plan) suffix in
                        run_one ~backend_name:name ~workers:4
                          ~extra:(fun ~port ->
                            (* A small repeated EVALUATE mix: the second
                               pass should land in the coordinator's
                               result cache. *)
                            let client = Fx_server.Server_client.connect ~port () in
                            for _ = 1 to 2 do
                              List.iter
                                (fun (start_tag, target_tag) ->
                                  ignore
                                    (Fx_server.Server_client.request client
                                       (Fx_server.Protocol.Evaluate
                                          {
                                            start_tag;
                                            target_tag;
                                            k = 100;
                                            max_dist = None;
                                          })))
                                [
                                  ("article", "author");
                                  ("inproceedings", "cite");
                                  ("article", "title");
                                ]
                            done;
                            Fx_server.Server_client.close client;
                            let rpcs = Coord.probe_rpcs_total coord in
                            let subs = Coord.probe_subs_total coord in
                            let closure_lookups = Coord.closure_lookups_total coord in
                            let closure_fallbacks =
                              Coord.closure_fallbacks_total coord
                            in
                            let hits, misses =
                              match Coord.query_cache_stats coord with
                              | Some s -> (s.Fx_shard.Coord_cache.hits, s.misses)
                              | None -> (0, 0)
                            in
                            let hit_rate =
                              if hits + misses = 0 then 0.0
                              else float_of_int hits /. float_of_int (hits + misses)
                            in
                            Printf.printf
                              "  %-22s %d probe rpcs carrying %d subs (%.1f \
                               subs/rpc), cache %d/%d hits (%.0f%%)\n%!"
                              (name ^ " probes:") rpcs subs
                              (if rpcs = 0 then 0.0
                               else float_of_int subs /. float_of_int rpcs)
                              hits (hits + misses) (100.0 *. hit_rate);
                            [
                              ("probe_rpcs", string_of_int rpcs);
                              ("probe_subs", string_of_int subs);
                              ("closure_lookups", string_of_int closure_lookups);
                              ("closure_fallbacks", string_of_int closure_fallbacks);
                              ("cache_hits", string_of_int hits);
                              ("cache_misses", string_of_int misses);
                              ("cache_hit_rate", Printf.sprintf "%.4f" hit_rate);
                            ])
                          (Fx_server.Server.Custom (Coord.backend coord))))
                  [ ("-nobatch", false, false);
                    ("-noclosure", true, false);
                    ("", true, true) ])))
      [ 1; 2 ]
  in
  Printf.printf "\nserve-json: {\"bench\":\"serve\",\"docs\":%d,\"cores\":%d,\"rows\":[%s]}\n"
    n_docs cores
    (String.concat "," (memory_rows @ disk_rows @ shard_rows));
  print_newline ();
  print_endline "expectation: req/s scales with worker domains until the acceptor or";
  print_endline "client threads saturate; the disk rows pay the buffer-pool path on";
  print_endline "top — warm pools should track the in-memory numbers. The coord rows";
  print_endline "add a network hop and shard probes per request: coord1 prices the";
  print_endline "fan-out machinery alone, coord2 the actual 2-shard distribution.";
  print_endline "coordN-noclosure vs coordN-nobatch is the probe-batching win: same";
  print_endline "answers, a fraction of the round trips (probe_rpcs in the JSON).";
  print_endline "coordN vs coordN-noclosure is the portal-closure win: the same";
  print_endline "answers again, with portal distances joined from precomputed labels";
  print_endline "instead of probed (probe_subs and closure_lookups in the JSON)."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite: one Test.make per table/figure-defining
   operation. *)

let micro ctx =
  header "micro: bechamel per-operation latencies";
  let open Bechamel in
  let c = ctx.collection in
  let dg = { Pi.graph = C.graph c; tag = C.tag c } in
  let hopi = Fx_index.Hopi.build dg in
  let apex = Fx_index.Apex.build dg in
  let flix = Flix.build ~config:(MB.Unconnected_hopi { max_size = 5_000 }) c in
  let pee = Flix.pee flix in
  let rng = Fx_util.Rng.create 3 in
  let n = C.n_nodes c in
  let pairs = Array.init 256 (fun _ -> (Fx_util.Rng.int rng n, Fx_util.Rng.int rng n)) in
  let cursor = ref 0 in
  let next_pair () =
    cursor := (!cursor + 1) land 255;
    pairs.(!cursor)
  in
  let start = ctx.hub.start and tag = ctx.article_tag in
  let tests =
    [
      (* Table 1 is about storage, so its micro test is the probe cost
         that storage buys. *)
      Test.make ~name:"table1/hopi-distance"
        (Staged.stage (fun () ->
             let a, b = next_pair () in
             ignore (Fx_index.Hopi.distance hopi a b)));
      Test.make ~name:"table1/apex-distance"
        (Staged.stage (fun () ->
             let a, b = next_pair () in
             ignore (Fx_index.Apex.distance apex a b)));
      (* Figure 5: first result of the hub descendants query. *)
      Test.make ~name:"figure5/flix-first-result"
        (Staged.stage (fun () ->
             ignore (RS.next (Pee.descendants ?tag pee ~start))));
      Test.make ~name:"figure5/hopi-full-block"
        (Staged.stage (fun () -> ignore (Fx_index.Hopi.descendants_by_tag hopi start tag)));
      (* E4: the connection test. *)
      Test.make ~name:"connect/flix-connected"
        (Staged.stage (fun () ->
             let a, b = next_pair () in
             ignore (Pee.connected ~max_dist:32 pee a b)));
      Test.make ~name:"connect/flix-bidirectional"
        (Staged.stage (fun () ->
             let a, b = next_pair () in
             ignore (Pee.connected_bidir ~max_dist:32 pee a b)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "%-32s %14s\n" "operation" "ns/op";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "%-32s %14.1f\n%!" name est
          | Some [] | None -> Printf.printf "%-32s %14s\n%!" name "n/a")
        ols)
    tests

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [all|table1|figure5|errors|connect|multi|hybrid|psweep|exact|cache|\n\
    \                 ordering|serve|micro] [--docs N] [--seed N]";
  exit 1

let () =
  let args = Array.to_list Sys.argv in
  let rec parse cmd docs seed = function
    | [] -> (cmd, docs, seed)
    | "--docs" :: v :: rest -> parse cmd (int_of_string v) seed rest
    | "--seed" :: v :: rest -> parse cmd docs (int_of_string v) rest
    | a :: rest
      when List.mem a
             [ "all"; "table1"; "figure5"; "errors"; "connect"; "multi"; "hybrid"; "inex";
               "psweep"; "disk"; "exact"; "cache"; "ordering"; "serve"; "micro" ] ->
        parse a docs seed rest
    | _ -> usage ()
  in
  let cmd, docs, seed = parse "all" 6210 7 (List.tl args) in
  Printf.printf "FliX benchmark harness — experiment %s\n%!" cmd;
  if cmd = "hybrid" then hybrid ()
  else if cmd = "inex" then inex ()
  else begin
    let ctx = make_ctx ~docs ~seed in
    match cmd with
    | "table1" -> table1 ctx
    | "figure5" -> figure5 ctx
    | "errors" -> error_rates ctx
    | "connect" -> connect ctx
    | "multi" -> multi ctx
    | "psweep" -> psweep ctx
    | "micro" -> micro ctx
    | "inex" -> inex ()
    | "disk" -> disk ctx
    | "exact" -> exact_ablation ctx
    | "cache" -> cache_ablation ctx
    | "ordering" -> ordering_ablation ctx
    | "serve" -> serve ctx
    | "all" ->
        table1 ctx;
        figure5 ctx;
        error_rates ctx;
        connect ctx;
        multi ctx;
        hybrid ();
        inex ();
        psweep ctx;
        disk ctx;
        exact_ablation ctx;
        cache_ablation ctx;
        ordering_ablation ctx;
        serve ctx;
        micro ctx
    | _ -> usage ()
  end
