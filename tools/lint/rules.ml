(* The flix_lint rule engine.

   Every rule walks the parsetree (no typing — the checks are syntactic
   and scoped by directory) and reports findings through the context.
   Rules:

     FL001 lock-discipline        lib/ bin/ bench/
     FL002 unsynchronized-shared-state   lib/flix lib/server lib/shard lib/store lib/index lib/util lib/admin
     FL003 polymorphic-hash-compare      lib/graph lib/index lib/flix
     FL004 swallow-all-handler    lib/ bin/ bench/
     FL005 stray-output           lib/ (Log is the sanctioned path)
     FL006 mli-coverage           lib/ (checked by the driver, not here)
*)

open Parsetree

type ctx = {
  file : string; (* normalized path relative to the scan root, '/'-separated *)
  report : Diag.finding -> unit;
}

(* --- path scoping ---------------------------------------------------- *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let in_any dirs file = List.exists (fun d -> has_prefix d file) dirs
let in_lib = in_any [ "lib/" ]

(* Libraries linked into the server's worker pool: shared mutable state
   at module toplevel is visible to every domain at once. *)
let in_worker_pool_lib =
  in_any
    [ "lib/flix/"; "lib/server/"; "lib/shard/"; "lib/store/"; "lib/index/";
      "lib/util/"; "lib/admin/" ]

(* Directories on the PPO/HOPI lookup hot path, where polymorphic
   hashing/comparison costs show up in the paper's Section 4 numbers. *)
let in_hot_path = in_any [ "lib/graph/"; "lib/index/"; "lib/flix/" ]

(* The one module allowed to talk to the outside world from lib/. *)
let is_log_module file = file = "lib/flix/log.ml"

(* --- parsetree helpers ----------------------------------------------- *)

let loc_line_col (loc : Location.t) =
  let p = loc.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let report ctx ~rule ~loc ~message ~hint =
  let line, col = loc_line_col loc in
  ctx.report
    { Diag.rule; severity = Diag.Error; file = ctx.file; line; col; message; hint }

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let ident_is_any e paths =
  match ident_path e with
  | Some p -> List.mem (strip_stdlib p) paths
  | None -> false

(* Fold an iterator over one expression. *)
let iter_expr iter e = iter.Ast_iterator.expr iter e

(* --- FL001: lock discipline ------------------------------------------ *)

(* A raw [Mutex.lock] is a finding unless it occurs
     - inside a value binding named like a lock wrapper (with_lock,
       with_mutex, locked), whose body is the one place the raw pairing
       is allowed to live, or
     - as the sequence [Mutex.lock m; Fun.protect ~finally:... f], the
       exception-safe inline shape the wrappers are built from. *)

let wrapper_names = [ "with_lock"; "with_mutex"; "locked" ]

let is_lock_app e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> ident_is_any f [ [ "Mutex"; "lock" ] ]
  | _ -> false

let is_protect_app e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> ident_is_any f [ [ "Fun"; "protect" ] ]
  | _ -> false

let rule_fl001 ctx str =
  if in_any [ "lib/"; "bin/"; "bench/" ] ctx.file then begin
    let sanctioned : (Location.t, unit) Hashtbl.t = Hashtbl.create 16 in
    let wrapper_depth = ref 0 in
    let expr it e =
      (match e.pexp_desc with
      | Pexp_sequence (e1, e2) when is_lock_app e1 && is_protect_app e2 ->
          Hashtbl.replace sanctioned e1.pexp_loc ()
      | _ -> ());
      if is_lock_app e && !wrapper_depth = 0 && not (Hashtbl.mem sanctioned e.pexp_loc)
      then
        report ctx ~rule:"FL001" ~loc:e.pexp_loc
          ~message:
            "Mutex.lock not guarded by Fun.protect: a raise before the \
             matching unlock leaves the mutex held forever"
          ~hint:
            "use a with_lock wrapper (Fun.protect \
             ~finally:(fun () -> Mutex.unlock m)), as lib/server/work_queue.ml \
             does";
      Ast_iterator.default_iterator.expr it e
    in
    let value_binding it vb =
      let is_wrapper =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } -> List.mem txt wrapper_names
        | _ -> false
      in
      if is_wrapper then begin
        incr wrapper_depth;
        Ast_iterator.default_iterator.value_binding it vb;
        decr wrapper_depth
      end
      else Ast_iterator.default_iterator.value_binding it vb
    in
    let it = { Ast_iterator.default_iterator with expr; value_binding } in
    it.structure it str
  end

(* --- FL002: unsynchronized shared state ------------------------------ *)

(* Module-toplevel bindings that allocate bare mutable state in a
   library linked into the worker pool. [Atomic.make]/[Mutex.create]/
   [Condition.create] are fine (they are the synchronization itself) and
   simply are not in the banned list. *)

let mutable_creators =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Weak"; "create" ];
  ]

(* The expression a toplevel binding ultimately evaluates to. *)
let rec binding_head e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> binding_head e
  | Pexp_let (_, _, body) -> binding_head body
  | Pexp_sequence (_, e2) -> binding_head e2
  | _ -> e

let rule_fl002 ctx str =
  if in_worker_pool_lib ctx.file then begin
    let structure_item it si =
      (match si.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let head = binding_head vb.pvb_expr in
              match head.pexp_desc with
              | Pexp_apply (f, _) when ident_is_any f mutable_creators ->
                  report ctx ~rule:"FL002" ~loc:head.pexp_loc
                    ~message:
                      "module-toplevel mutable state in a library linked into \
                       the worker pool: every domain sees this value \
                       unsynchronized"
                    ~hint:
                      "wrap it in Atomic.t, guard it with a Mutex owned by \
                       the same module, or make it per-instance state"
              | _ -> ())
            vbs
      | _ -> ());
      Ast_iterator.default_iterator.structure_item it si
    in
    let it = { Ast_iterator.default_iterator with structure_item } in
    it.structure it str
  end

(* --- FL003: polymorphic hash/compare on hot paths --------------------- *)

let poly_idents =
  [
    [ "compare" ];
    [ "Hashtbl"; "hash" ];
    [ "Hashtbl"; "seeded_hash" ];
    [ "Hashtbl"; "hash_param" ];
  ]

let rule_fl003 ctx str =
  if in_hot_path ctx.file then begin
    let expr it e =
      (match e.pexp_desc with
      | Pexp_ident _ when ident_is_any e poly_idents ->
          report ctx ~rule:"FL003" ~loc:e.pexp_loc
            ~message:
              "polymorphic hash/compare on an index hot path: traverses deep \
               structure and defeats branch prediction on every probe"
            ~hint:
              "use Int.compare/Float.compare or an explicit comparator; hash \
               node ids with an explicit FNV-style fold"
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str
  end

(* --- FL004: swallow-all exception handlers ---------------------------- *)

let rec pat_is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_is_catch_all p
  | Ppat_or (a, b) -> pat_is_catch_all a || pat_is_catch_all b
  | _ -> false

let rec pat_mentions_fatal p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
      match Longident.last txt with
      | "Out_of_memory" | "Stack_overflow" -> true
      | _ -> false
      | exception _ -> false)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_mentions_fatal p
  | Ppat_or (a, b) -> pat_mentions_fatal a || pat_mentions_fatal b
  | _ -> false

let raising_idents =
  [
    [ "raise" ];
    [ "raise_notrace" ];
    [ "reraise" ];
    [ "failwith" ];
    [ "invalid_arg" ];
    [ "Printexc"; "raise_with_backtrace" ];
  ]

let expr_contains_raise body =
  let found = ref false in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident _ when ident_is_any e raising_idents -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  iter_expr it body;
  !found

let rule_fl004 ctx str =
  if in_any [ "lib/"; "bin/"; "bench/" ] ctx.file then begin
    let expr it e =
      (match e.pexp_desc with
      | Pexp_try (_, cases) ->
          let fatal_handled =
            List.exists (fun c -> pat_mentions_fatal c.pc_lhs) cases
          in
          if not fatal_handled then
            List.iter
              (fun c ->
                if
                  pat_is_catch_all c.pc_lhs
                  && c.pc_guard = None
                  && not (expr_contains_raise c.pc_rhs)
                then
                  report ctx ~rule:"FL004" ~loc:c.pc_lhs.ppat_loc
                    ~message:
                      "catch-all exception handler swallows Out_of_memory and \
                       Stack_overflow without re-raising"
                    ~hint:
                      "match specific exceptions, or add '| (Out_of_memory | \
                       Stack_overflow) as e -> raise e' before the catch-all")
              cases
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str
  end

(* --- FL005: stray output bypassing Log -------------------------------- *)

let print_idents =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "prerr_endline" ];
    [ "prerr_string" ];
    [ "prerr_newline" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ];
  ]

let rule_fl005 ctx str =
  if in_lib ctx.file && not (is_log_module ctx.file) then begin
    let expr it e =
      (match e.pexp_desc with
      | Pexp_ident _ when ident_is_any e print_idents ->
          report ctx ~rule:"FL005" ~loc:e.pexp_loc
            ~message:
              "direct stdout/stderr output from library code bypasses the Log \
               source"
            ~hint:
              "use Fx_flix.Log (Log.info/Log.warn/...) so the application's \
               Logs reporter stays in control"
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it str
  end

(* --- registry --------------------------------------------------------- *)

let structure_rules = [ rule_fl001; rule_fl002; rule_fl003; rule_fl004; rule_fl005 ]

let run_on_structure ctx str =
  List.iter (fun rule -> rule ctx str) structure_rules

let descriptions =
  [
    ( "FL001",
      "lock-discipline: Mutex.lock must be guarded by Fun.protect or live in \
       a with_lock wrapper (lib/, bin/, bench/)" );
    ( "FL002",
      "unsynchronized-shared-state: no module-toplevel ref/Hashtbl/... in \
       worker-pool libraries (lib/flix, lib/server, lib/shard, lib/store, \
       lib/index, lib/util, lib/admin)" );
    ( "FL003",
      "polymorphic-hash-compare: no bare compare/Hashtbl.hash on hot paths \
       (lib/graph, lib/index, lib/flix)" );
    ( "FL004",
      "swallow-all-handler: 'try ... with <catch-all> ->' must re-raise or \
       handle Out_of_memory/Stack_overflow (lib/, bin/, bench/)" );
    ("FL005", "stray-output: library code must log through Log, not stdout (lib/)");
    ("FL006", "mli-coverage: every lib/**/*.ml needs a sibling .mli (lib/)");
    ( "FL007",
      "lock-order-cycle: a cycle in the global lock-acquisition-order graph \
       (whole-program; witnessing acquisition paths printed)" );
    ( "FL008",
      "blocking-under-lock: a transitively blocking operation (Unix I/O, \
       sleeps, joins, channel I/O) inside a critical section (whole-program; \
       call chain printed)" );
    ( "FL009",
      "resource-leak: an opened fd/channel neither closed nor \
       stored/returned on any path through the function" );
    ( "FL010",
      "unused-suppression: a 'flix-lint: allow' comment that silenced \
       nothing this run" );
  ]
