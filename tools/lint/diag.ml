(* Diagnostics for flix_lint.

   A finding carries a stable rule id (FL001..FL006, FL000 for files the
   parser rejects), a severity, a file:line:col span, a message, and a
   fix hint. Findings render either human-readable (compiler style, one
   per paragraph) or as JSON, one object per line, for tooling. *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

(* Stable output order: by position, then rule id for same-site ties. *)
let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s","hint":"%s"}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message)
    (json_escape f.hint)

let to_human f =
  Printf.sprintf "%s:%d:%d: %s[%s]: %s\n    hint: %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message f.hint
