(* Inline suppression of lint findings.

   A comment of the form

     (* flix-lint: allow FL003 — reason *)

   silences findings of the listed rule on the comment's own line and on
   the line immediately below, so it can sit either at the end of the
   offending line or on its own line above it. Several ids may appear in
   one comment ([allow FL001 FL004 — ...]); the reason text is free-form
   but encouraged. File-scope rules (FL006) report at line 1, so their
   suppression goes on the first line of the file.

   Every allow entry tracks whether it actually silenced a finding this
   run. A stale entry — allowing a rule that no longer fires at that
   site — is reported by the driver as FL010, so the suppressed baseline
   cannot rot silently. *)

type entry = {
  rule : string;
  comment_line : int; (* the line the allow comment sits on *)
  mutable used : bool;
}

type t = {
  entries : (string * int, entry) Hashtbl.t; (* (rule, covered line) *)
  mutable all : entry list; (* one per (rule, comment), source order *)
  mutable hits : int; (* findings actually silenced, for the summary *)
}

let marker = "flix-lint:"

let contains_at hay pos needle =
  pos + String.length needle <= String.length hay
  && String.sub hay pos (String.length needle) = needle

let find_substring hay needle =
  let n = String.length hay in
  let rec go i = if i >= n then None else if contains_at hay i needle then Some i else go (i + 1) in
  go 0

(* All FL-followed-by-digits tokens in [line] after [from]. *)
let rule_ids line from =
  let n = String.length line in
  let ids = ref [] in
  let i = ref from in
  while !i < n - 2 do
    if
      line.[!i] = 'F'
      && line.[!i + 1] = 'L'
      && !i + 2 < n
      && line.[!i + 2] >= '0'
      && line.[!i + 2] <= '9'
    then begin
      let j = ref (!i + 2) in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      ids := String.sub line !i (!j - !i) :: !ids;
      i := !j
    end
    else incr i
  done;
  List.rev !ids

let scan source =
  let t = { entries = Hashtbl.create 8; all = []; hits = 0 } in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_substring line marker with
      | None -> ()
      | Some pos ->
          if find_substring line "allow" <> None then
            List.iter
              (fun rule ->
                let e = { rule; comment_line = lineno; used = false } in
                t.all <- e :: t.all;
                Hashtbl.replace t.entries (rule, lineno) e;
                Hashtbl.replace t.entries (rule, lineno + 1) e)
              (rule_ids line (pos + String.length marker)))
    lines;
  t.all <- List.rev t.all;
  t

let is_suppressed t ~rule ~line =
  match Hashtbl.find_opt t.entries (rule, line) with
  | Some e ->
      e.used <- true;
      t.hits <- t.hits + 1;
      true
  | None -> false

let hits t = t.hits

(* Allow entries that silenced nothing this run, as (rule, comment line).
   Call only after every finding has been through [is_suppressed]. *)
let unused t =
  List.filter_map
    (fun e -> if e.used then None else Some (e.rule, e.comment_line))
    t.all
