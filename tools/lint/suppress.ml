(* Inline suppression of lint findings.

   A comment of the form

     (* flix-lint: allow FL003 — reason *)

   silences findings of the listed rule on the comment's own line and on
   the line immediately below, so it can sit either at the end of the
   offending line or on its own line above it. Several ids may appear in
   one comment ([allow FL001 FL004 — ...]); the reason text is free-form
   but encouraged. File-scope rules (FL006) report at line 1, so their
   suppression goes on the first line of the file. *)

type t = {
  entries : (string * int, unit) Hashtbl.t; (* (rule, line) -> () *)
  mutable hits : int; (* findings actually silenced, for the summary *)
}

let marker = "flix-lint:"

let contains_at hay pos needle =
  pos + String.length needle <= String.length hay
  && String.sub hay pos (String.length needle) = needle

let find_substring hay needle =
  let n = String.length hay in
  let rec go i = if i >= n then None else if contains_at hay i needle then Some i else go (i + 1) in
  go 0

(* All FL-followed-by-digits tokens in [line] after [from]. *)
let rule_ids line from =
  let n = String.length line in
  let ids = ref [] in
  let i = ref from in
  while !i < n - 2 do
    if
      line.[!i] = 'F'
      && line.[!i + 1] = 'L'
      && !i + 2 < n
      && line.[!i + 2] >= '0'
      && line.[!i + 2] <= '9'
    then begin
      let j = ref (!i + 2) in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      ids := String.sub line !i (!j - !i) :: !ids;
      i := !j
    end
    else incr i
  done;
  List.rev !ids

let scan source =
  let t = { entries = Hashtbl.create 8; hits = 0 } in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_substring line marker with
      | None -> ()
      | Some pos ->
          if find_substring line "allow" <> None then
            List.iter
              (fun rule ->
                Hashtbl.replace t.entries (rule, lineno) ();
                Hashtbl.replace t.entries (rule, lineno + 1) ())
              (rule_ids line (pos + String.length marker)))
    lines;
  t

let is_suppressed t ~rule ~line =
  if Hashtbl.mem t.entries (rule, line) then begin
    t.hits <- t.hits + 1;
    true
  end
  else false

let hits t = t.hits
