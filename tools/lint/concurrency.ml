(* Interprocedural concurrency analysis for flix_lint: FL007/FL008/FL009.

   Phase 1 walks every parsed compilation unit and builds one summary
   per top-level function: which named locks it acquires (through the
   [with_lock]/[with_mutex]/[locked] wrappers and the inline
   [Mutex.lock m; Fun.protect ~finally:... f] shape FL001 sanctions),
   which potentially blocking primitives it calls, which functions it
   calls while holding each lock, and which raw fds/channels it opens.

   Phase 2 resolves a module-qualified call graph over the summaries —
   [Pager.read] means "function [read] of unit pager.ml", a library
   prefix like [Fx_store] or a [module P = ...] alias is stripped first
   — and reports:

     FL007 lock-order-cycle      a cycle in the global lock-acquisition-
                                 order graph, with the witnessing
                                 acquisition paths printed
     FL008 blocking-under-lock   a transitively blocking operation
                                 executed inside a critical section,
                                 with the lock name and the call chain
     FL009 resource-leak         an opened fd/channel with no close and
                                 no escape (not stored, returned, or
                                 passed on) anywhere in the function

   Soundness limits (documented in the README): the call graph covers
   direct, module-qualified first-order calls only. Functors,
   first-class modules, function-valued record fields, and callbacks
   (e.g. an [~on_evict] closure) are not resolved; unresolved calls are
   assumed to neither block nor lock, so the pass under-approximates —
   it never guesses a finding from a call it cannot see. Lock identity
   is by declaration name ([Module.field]), so two instances of the
   same type share a graph node: a cycle between instances of one lock
   is reported (conservative), distinct mutexes reached through
   aliased names are not. Every defined function counts as an entry
   point, which over-approximates reachability but never hides a
   cycle. *)

open Parsetree

type unit_src = { u_file : string; u_mod : string; u_str : structure }

(* --- small path helpers ----------------------------------------------- *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let wrapper_names = [ "with_lock"; "with_mutex"; "locked" ]

let is_lib_prefix c =
  String.length c > 3 && String.sub c 0 3 = "Fx_"

(* [Stdlib.flush] and [Fx_store.Pager.read] normalize to [flush] and
   [Pager.read]: unit modules are addressed by their own name. *)
let strip_path path =
  List.filter (fun c -> c <> "Stdlib" && not (is_lib_prefix c)) path

let expand_alias aliases path =
  match path with
  | m :: rest -> (
      match Hashtbl.find_opt aliases m with
      | Some target -> target @ rest
      | None -> path)
  | [] -> path

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

let joined path = String.concat "." path

(* --- operation tables -------------------------------------------------- *)

(* Potentially blocking primitives: positioned/socket I/O, sleeps,
   joins, condition waits, and buffered-channel I/O (the transport under
   Server_client and Shard_client network calls resolves to these). *)
let blocking_prims =
  [
    "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.write_substring";
    "Unix.select"; "Unix.sleep"; "Unix.sleepf"; "Unix.connect"; "Unix.accept";
    "Unix.fsync"; "Unix.recv"; "Unix.send"; "Unix.recvfrom"; "Unix.sendto";
    "Unix.waitpid"; "Unix.system";
    "Thread.delay"; "Thread.join"; "Domain.join";
    "Condition.wait";
    "input_line"; "input_char"; "input_byte"; "input"; "really_input";
    "really_input_string"; "input_value";
    "output_string"; "output_char"; "output_bytes"; "output_byte";
    "output_substring"; "output_value"; "flush";
    "In_channel.input_line"; "In_channel.input_char"; "In_channel.input_all";
    "In_channel.really_input_string"; "Out_channel.output_string";
    "Out_channel.flush";
  ]

(* Raw resource acquisitions FL009 tracks, with the human name used in
   the finding. [Unix.accept] returns a pair, never a bare binding, so
   it is out of scope here (documented false-negative class). *)
let resource_prims =
  [
    ("Unix.openfile", "file descriptor from Unix.openfile");
    ("Unix.socket", "socket from Unix.socket");
    ("open_in", "input channel");
    ("open_in_bin", "input channel");
    ("open_in_gen", "input channel");
    ("open_out", "output channel");
    ("open_out_bin", "output channel");
    ("open_out_gen", "output channel");
  ]

let close_fns =
  [
    "Unix.close"; "close_in"; "close_in_noerr"; "close_out"; "close_out_noerr";
    "In_channel.close"; "Out_channel.close"; "Out_channel.close_noerr";
  ]

(* fd/channel operations that use a resource without taking ownership:
   they neither close it nor let it escape. Everything not listed here
   (an unknown call, a record field, a return) counts as an escape, so
   a handed-off descriptor is never reported — the pass prefers a
   false negative over flagging a transferred owner. *)
let nonowning_fns =
  [
    "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.write_substring";
    "Unix.lseek"; "Unix.fstat"; "Unix.ftruncate"; "Unix.fsync";
    "Unix.set_nonblock"; "Unix.clear_nonblock"; "Unix.set_close_on_exec";
    "Unix.setsockopt"; "Unix.setsockopt_float"; "Unix.setsockopt_int";
    "Unix.getsockopt"; "Unix.getsockname"; "Unix.getpeername"; "Unix.bind";
    "Unix.listen"; "Unix.connect"; "Unix.shutdown"; "Unix.accept";
    "really_input_string"; "in_channel_length"; "out_channel_length";
    "input_line"; "input_char"; "input_byte"; "input"; "really_input";
    "seek_in"; "pos_in"; "input_value";
    "output_string"; "output_char"; "output_bytes"; "output_byte";
    "output_substring"; "output_value"; "seek_out"; "pos_out"; "flush";
    "set_binary_mode_in"; "set_binary_mode_out"; "ignore";
  ]

let table names =
  let t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace t n ()) names;
  t

let blocking_tbl = table blocking_prims
let close_tbl = table close_fns
let nonowning_tbl = table nonowning_fns

let resource_tbl =
  let t = Hashtbl.create 16 in
  List.iter (fun (n, k) -> Hashtbl.replace t n k) resource_prims;
  t

let is_blocking path = Hashtbl.mem blocking_tbl (joined path)

(* --- summaries --------------------------------------------------------- *)

type op = { op_path : string list; op_loc : Location.t }

type section = {
  sec_lock : string;
  sec_loc : Location.t;
  (* locks taken directly inside this critical section *)
  mutable sec_nested : (string * Location.t) list;
  (* every call/primitive executed while this lock is held; the flag
     marks ops recorded while this section was innermost, which
     sanctions the [Condition.wait]-on-own-lock idiom *)
  mutable sec_ops : (op * bool) list;
}

type summary = {
  sum_fn : string; (* "Module.func" *)
  sum_mod : string;
  sum_file : string;
  mutable sum_sections : section list;
  mutable sum_ops : op list;
}

(* --- phase 1: per-unit walk -------------------------------------------- *)

let collect_aliases str =
  let aliases = Hashtbl.create 8 in
  let rec item si =
    match si.pstr_desc with
    | Pstr_module mb -> binding mb
    | Pstr_recmodule mbs -> List.iter binding mbs
    | _ -> ()
  and binding mb =
    match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Pmod_ident { txt; _ } -> (
        match Longident.flatten txt with
        | path -> Hashtbl.replace aliases name (strip_path path)
        | exception _ -> ())
    | _ -> ()
  in
  List.iter item str;
  aliases

let positional args =
  List.filter_map
    (fun (label, a) -> match label with Asttypes.Nolabel -> Some a | _ -> None)
    args

let apply_of e paths =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match flatten_ident f with
      | Some p when List.mem (strip_path p) paths -> Some (positional args)
      | _ -> None)
  | _ -> None

(* [with_lock m (fun () -> ...)] — a wrapper name applied to at least a
   lock and a thunk opens a critical section over the whole application. *)
let wrapper_lock_arg e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match flatten_ident f with
      | Some p -> (
          match List.rev p with
          | last :: _ when List.mem last wrapper_names -> (
              match positional args with
              | lock :: _ :: _ -> Some lock
              | _ -> None)
          | _ -> None)
      | None -> None)
  | _ -> None

(* [Mutex.lock m; Fun.protect ~finally:... f] — the inline exception-safe
   shape FL001 allows outside a wrapper. *)
let inline_lock_arg e =
  match e.pexp_desc with
  | Pexp_sequence (e1, e2) -> (
      match (apply_of e1 [ [ "Mutex"; "lock" ] ], apply_of e2 [ [ "Fun"; "protect" ] ]) with
      | Some (lock :: _), Some _ -> Some lock
      | _ -> None)
  | _ -> None

(* Lock identity: the declaration name of the mutex expression —
   [t.lock] and [pager.lock] are the same node, [conns_lock] its own. *)
let lock_tail e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.last txt) with _ -> None)
  | Pexp_field (_, { txt; _ }) -> ( try Some (Longident.last txt) with _ -> None)
  | _ -> None

(* Does [var] escape or get closed in [cont]? See [nonowning_fns]. *)
let scan_uses ~norm var cont =
  let closed = ref false in
  let escaped = ref false in
  let is_var a =
    match a.pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } -> v = var
    | _ -> false
  in
  let expr it e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } when v = var -> escaped := true
    | Pexp_apply (f, args) ->
        let var_args = List.exists (fun (_, a) -> is_var a) args in
        (if var_args then
           let cls =
             match flatten_ident f with
             | Some p ->
                 let name = joined (norm p) in
                 if Hashtbl.mem close_tbl name then `Close
                 else if Hashtbl.mem nonowning_tbl name then `Nonowning
                 else `Escape
             | None -> `Escape
           in
           match cls with
           | `Close -> closed := true
           | `Nonowning -> ()
           | `Escape -> escaped := true);
        it.Ast_iterator.expr it f;
        List.iter (fun (_, a) -> if not (is_var a) then it.Ast_iterator.expr it a) args
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it cont;
  (!closed, !escaped)

let rec binding_head e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> binding_head e
  | _ -> e

(* Walk one top-level binding, filling [sum] and reporting FL009 leaks
   through [leak]. *)
let walk_binding ~aliases sum expr0 ~leak =
  let norm p = strip_path (expand_alias aliases p) in
  let stack = ref [] in
  let record_op path loc =
    let o = { op_path = path; op_loc = loc } in
    sum.sum_ops <- o :: sum.sum_ops;
    List.iteri (fun i sec -> sec.sec_ops <- (o, i = 0) :: sec.sec_ops) !stack
  in
  let open_section lock loc =
    let sec = { sec_lock = lock; sec_loc = loc; sec_nested = []; sec_ops = [] } in
    List.iter (fun outer -> outer.sec_nested <- (lock, loc) :: outer.sec_nested) !stack;
    sum.sum_sections <- sec :: sum.sum_sections;
    stack := sec :: !stack
  in
  let close_section () = stack := List.tl !stack in
  let expr it e =
    let lock_arg =
      match wrapper_lock_arg e with Some l -> Some l | None -> inline_lock_arg e
    in
    match lock_arg with
    | Some lock_expr ->
        let name =
          match lock_tail lock_expr with
          | Some t -> sum.sum_mod ^ "." ^ t
          | None -> sum.sum_mod ^ ".<anonymous-lock>"
        in
        open_section name e.pexp_loc;
        Fun.protect
          ~finally:close_section
          (fun () -> Ast_iterator.default_iterator.expr it e)
    | None ->
        (match e.pexp_desc with
        | Pexp_apply (f, _) -> (
            match flatten_ident f with
            | Some p -> record_op (norm p) f.pexp_loc
            | None -> ())
        | Pexp_let (_, vbs, cont) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = var; _ } -> (
                    let h = binding_head vb.pvb_expr in
                    match h.pexp_desc with
                    | Pexp_apply (f, _) -> (
                        match flatten_ident f with
                        | Some p -> (
                            match Hashtbl.find_opt resource_tbl (joined (norm p)) with
                            | Some kind ->
                                let closed, escaped = scan_uses ~norm var cont in
                                if (not closed) && not escaped then
                                  leak ~kind ~var ~loc:h.pexp_loc
                            | None -> ())
                        | None -> ())
                    | _ -> ())
                | _ -> ())
              vbs
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it expr0

let summarize_unit u ~add_summary ~leak =
  let aliases = collect_aliases u.u_str in
  let rec items str =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } when not (List.mem name wrapper_names) ->
                    let sum =
                      {
                        sum_fn = u.u_mod ^ "." ^ name;
                        sum_mod = u.u_mod;
                        sum_file = u.u_file;
                        sum_sections = [];
                        sum_ops = [];
                      }
                    in
                    walk_binding ~aliases sum vb.pvb_expr ~leak:(leak ~fn:sum.sum_fn);
                    add_summary sum
                | Ppat_var _ -> () (* a with_lock wrapper definition *)
                | _ ->
                    (* [let () = ...] and friends still run code: scan
                       them under a synthetic, uncallable name. *)
                    let sum =
                      {
                        sum_fn = u.u_mod ^ ".<toplevel>";
                        sum_mod = u.u_mod;
                        sum_file = u.u_file;
                        sum_sections = [];
                        sum_ops = [];
                      }
                    in
                    walk_binding ~aliases sum vb.pvb_expr ~leak:(leak ~fn:sum.sum_fn);
                    add_summary sum)
              vbs
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ } ->
            (* Nested structs are scanned under the unit's name; their
               calls resolve only when unambiguous (documented limit). *)
            items inner
        | _ -> ())
      str
  in
  items u.u_str

(* --- phase 2: propagation over the call graph -------------------------- *)

type bwit = {
  b_chain : string list; (* callee chain, outermost first *)
  b_prim : string;
  b_file : string;
  b_loc : Location.t;
}

type acq = { a_chain : string list; a_file : string; a_loc : Location.t }

type edge = {
  e_src : string;
  e_dst : string;
  e_fn : string;
  e_file : string;
  e_outer : Location.t; (* where the outer lock is taken *)
  e_chain : string list; (* calls from there to the inner acquisition *)
  e_acq_file : string;
  e_acq : Location.t; (* where the inner lock is taken *)
}

let find_map_first f l =
  let rec go = function
    | [] -> None
    | x :: rest -> ( match f x with Some _ as r -> r | None -> go rest)
  in
  go l

let analyze (units : unit_src list) : Diag.finding list =
  let findings = ref [] in
  let emit ~rule ~severity ~file ~loc ~message ~hint =
    let line, col = pos_of loc in
    findings :=
      { Diag.rule; severity; file; line; col; message; hint } :: !findings
  in
  (* phase 1 *)
  let fns : (string, summary) Hashtbl.t = Hashtbl.create 512 in
  let order = ref [] in
  let add_summary sum =
    (* reverse the accumulators into source order *)
    sum.sum_ops <- List.rev sum.sum_ops;
    sum.sum_sections <- List.rev sum.sum_sections;
    List.iter
      (fun sec ->
        sec.sec_ops <- List.rev sec.sec_ops;
        sec.sec_nested <- List.rev sec.sec_nested)
      sum.sum_sections;
    if not (Hashtbl.mem fns sum.sum_fn) then order := sum :: !order;
    Hashtbl.replace fns sum.sum_fn sum
  in
  List.iter
    (fun u ->
      summarize_unit u ~add_summary ~leak:(fun ~fn ~kind ~var ~loc ->
          emit ~rule:"FL009" ~severity:Diag.Error ~file:u.u_file ~loc
            ~message:
              (Printf.sprintf
                 "resource leak: %s [%s] is neither closed nor stored/returned \
                  on any path through %s"
                 kind var fn)
            ~hint:
              "close it with Fun.protect ~finally:(fun () -> close ...) or \
               hand it to an owning structure"))
    units;
  let order = List.rev !order in
  let resolve ~cur path =
    match path with
    | [ f ] ->
        let k = cur ^ "." ^ f in
        if Hashtbl.mem fns k then Some k else None
    | _ -> (
        match List.rev path with
        | f :: m :: _ ->
            let k = m ^ "." ^ f in
            if Hashtbl.mem fns k then Some k else None
        | _ -> None)
  in
  (* transitively-blocking witness per function *)
  let bmemo : (string, [ `Busy | `Done of bwit option ]) Hashtbl.t =
    Hashtbl.create 512
  in
  let rec blocks fn =
    match Hashtbl.find_opt bmemo fn with
    | Some `Busy -> None
    | Some (`Done r) -> r
    | None ->
        Hashtbl.replace bmemo fn `Busy;
        let sum = Hashtbl.find fns fn in
        let r =
          find_map_first
            (fun o ->
              if is_blocking o.op_path then
                Some
                  {
                    b_chain = [];
                    b_prim = joined o.op_path;
                    b_file = sum.sum_file;
                    b_loc = o.op_loc;
                  }
              else
                match resolve ~cur:sum.sum_mod o.op_path with
                | Some callee -> (
                    match blocks callee with
                    | Some w -> Some { w with b_chain = callee :: w.b_chain }
                    | None -> None)
                | None -> None)
            sum.sum_ops
        in
        Hashtbl.replace bmemo fn (`Done r);
        r
  in
  (* transitively-acquired locks (with a witness chain) per function *)
  let amemo : (string, [ `Busy | `Done of (string * acq) list ]) Hashtbl.t =
    Hashtbl.create 512
  in
  let rec acquires fn =
    match Hashtbl.find_opt amemo fn with
    | Some `Busy -> []
    | Some (`Done r) -> r
    | None ->
        Hashtbl.replace amemo fn `Busy;
        let sum = Hashtbl.find fns fn in
        let acc = ref [] in
        let add lock a = if not (List.mem_assoc lock !acc) then acc := (lock, a) :: !acc in
        List.iter
          (fun sec ->
            add sec.sec_lock
              { a_chain = []; a_file = sum.sum_file; a_loc = sec.sec_loc })
          sum.sum_sections;
        List.iter
          (fun o ->
            match resolve ~cur:sum.sum_mod o.op_path with
            | Some callee ->
                List.iter
                  (fun (lock, a) -> add lock { a with a_chain = callee :: a.a_chain })
                  (acquires callee)
            | None -> ())
          sum.sum_ops;
        let r = List.rev !acc in
        Hashtbl.replace amemo fn (`Done r);
        r
  in
  (* FL008: a critical section that reaches a blocking primitive *)
  let sanctioned_wait o innermost =
    innermost && joined o.op_path = "Condition.wait"
  in
  List.iter
    (fun sum ->
      List.iter
        (fun sec ->
          let witness =
            find_map_first
              (fun (o, innermost) ->
                if is_blocking o.op_path then
                  if sanctioned_wait o innermost then None
                  else
                    Some
                      {
                        b_chain = [];
                        b_prim = joined o.op_path;
                        b_file = sum.sum_file;
                        b_loc = o.op_loc;
                      }
                else
                  match resolve ~cur:sum.sum_mod o.op_path with
                  | Some callee -> (
                      match blocks callee with
                      | Some w -> Some { w with b_chain = callee :: w.b_chain }
                      | None -> None)
                  | None -> None)
              sec.sec_ops
          in
          match witness with
          | None -> ()
          | Some w ->
              let chain = String.concat " > " (sum.sum_fn :: w.b_chain) in
              emit ~rule:"FL008" ~severity:Diag.Error ~file:sum.sum_file
                ~loc:sec.sec_loc
                ~message:
                  (Printf.sprintf
                     "blocking operation while holding %s: %s reaches %s \
                      (%s:%d)"
                     sec.sec_lock chain w.b_prim w.b_file (line_of w.b_loc))
                ~hint:
                  "move the blocking call outside the critical section, or \
                   suppress with a written justification tied to a ROADMAP \
                   item")
        sum.sum_sections)
    order;
  (* FL007: cycles in the lock-acquisition-order graph *)
  let edges : (string * string, edge) Hashtbl.t = Hashtbl.create 64 in
  let edge_order = ref [] in
  let add_edge e =
    let k = (e.e_src, e.e_dst) in
    if not (Hashtbl.mem edges k) then begin
      Hashtbl.replace edges k e;
      edge_order := k :: !edge_order
    end
  in
  List.iter
    (fun sum ->
      List.iter
        (fun sec ->
          List.iter
            (fun (lock, loc) ->
              add_edge
                {
                  e_src = sec.sec_lock;
                  e_dst = lock;
                  e_fn = sum.sum_fn;
                  e_file = sum.sum_file;
                  e_outer = sec.sec_loc;
                  e_chain = [];
                  e_acq_file = sum.sum_file;
                  e_acq = loc;
                })
            sec.sec_nested;
          List.iter
            (fun (o, _) ->
              match resolve ~cur:sum.sum_mod o.op_path with
              | Some callee ->
                  List.iter
                    (fun (lock, a) ->
                      add_edge
                        {
                          e_src = sec.sec_lock;
                          e_dst = lock;
                          e_fn = sum.sum_fn;
                          e_file = sum.sum_file;
                          e_outer = sec.sec_loc;
                          e_chain = callee :: a.a_chain;
                          e_acq_file = a.a_file;
                          e_acq = a.a_loc;
                        })
                    (acquires callee)
              | None -> ())
            sec.sec_ops)
        sum.sum_sections)
    order;
  (* strongly connected components over the lock graph (Tarjan) *)
  let nodes = Hashtbl.create 32 in
  Hashtbl.iter
    (fun (a, b) _ ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ())
    edges;
  let succ l =
    Hashtbl.fold (fun (a, b) _ acc -> if a = l then b :: acc else acc) edges []
    |> List.sort String.compare
  in
  let index = Hashtbl.create 32 in
  let lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  let all_nodes =
    Hashtbl.fold (fun n () acc -> n :: acc) nodes [] |> List.sort String.compare
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) all_nodes;
  let report_cycle members =
    let members = List.sort String.compare members in
    let in_scc l = List.mem l members in
    let start = List.hd members in
    (* shortest cycle start -> ... -> start inside the SCC *)
    let parent = Hashtbl.create 8 in
    let visited = Hashtbl.create 8 in
    let rec bfs frontier =
      match frontier with
      | [] -> None
      | _ ->
          let next = ref [] in
          let hit = ref None in
          List.iter
            (fun v ->
              if !hit = None then
                List.iter
                  (fun w ->
                    if !hit = None && in_scc w then
                      if w = start then begin
                        hit := Some v
                      end
                      else if not (Hashtbl.mem visited w) then begin
                        Hashtbl.replace visited w ();
                        Hashtbl.replace parent w v;
                        next := w :: !next
                      end)
                  (succ v))
            frontier;
          (match !hit with
          | Some v ->
              let rec build v acc =
                if v = start then start :: acc
                else build (Hashtbl.find parent v) (v :: acc)
              in
              Some (build v [ start ])
          | None -> bfs (List.rev !next))
    in
    Hashtbl.replace visited start ();
    match bfs [ start ] with
    | None -> () (* no cycle through [start]; SCC of size 1 without self-edge *)
    | Some path ->
        (* path = [start; ...; start] *)
        let rec pairs = function
          | a :: (b :: _ as rest) -> (a, b) :: pairs rest
          | _ -> []
        in
        let cycle_edges =
          List.map (fun (a, b) -> Hashtbl.find edges (a, b)) (pairs path)
        in
        let render e =
          let via =
            match e.e_chain with
            | [] -> ""
            | chain -> " via " ^ String.concat " > " chain
          in
          Printf.sprintf "%s (%s:%d) holds %s then takes %s%s (%s:%d)" e.e_fn
            e.e_file (line_of e.e_outer) e.e_src e.e_dst via e.e_acq_file
            (line_of e.e_acq)
        in
        let first = List.hd cycle_edges in
        emit ~rule:"FL007" ~severity:Diag.Error ~file:first.e_file
          ~loc:first.e_outer
          ~message:
            (Printf.sprintf "lock-order cycle: %s — %s"
               (String.concat " -> " path)
               (String.concat "; " (List.map render cycle_edges)))
          ~hint:
            "acquire these locks in one project-wide order everywhere (see \
             DESIGN.md \"Lock acquisition order\"), or release the outer lock \
             before taking the inner one"
  in
  List.iter
    (fun scc ->
      match scc with
      | [ l ] -> if Hashtbl.mem edges (l, l) then report_cycle scc
      | _ :: _ :: _ -> report_cycle scc
      | [] -> ())
    (List.rev !sccs);
  List.rev !findings
