(* SARIF 2.1.0 output for flix_lint.

   One run, one tool driver ("flix_lint"), the rule catalogue from
   Rules.descriptions, and one result per finding. This is the format
   GitHub code scanning ingests to render findings as PR annotations;
   columns are 1-based in SARIF, so the 0-based Diag column shifts by
   one. Written by hand (no JSON library in the lint tool's closure) on
   top of Diag.json_escape. *)

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let level_of = function Diag.Error -> "error" | Diag.Warning -> "warning"

let rule_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i (id, _) -> Hashtbl.replace tbl id i) Rules.descriptions;
  tbl

let rule_json (id, doc) =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"},"helpUri":"https://github.com/flix/flix-index#static-analysis"}|}
    (Diag.json_escape id) (Diag.json_escape doc)

let result_json (f : Diag.finding) =
  let rule_index_field =
    match Hashtbl.find_opt rule_index f.rule with
    | Some i -> Printf.sprintf {|"ruleIndex":%d,|} i
    | None -> "" (* FL000 parse failures are not in the catalogue *)
  in
  Printf.sprintf
    {|{"ruleId":"%s",%s"level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (Diag.json_escape f.rule) rule_index_field
    (level_of f.severity)
    (Diag.json_escape (f.message ^ " (hint: " ^ f.hint ^ ")"))
    (Diag.json_escape f.file) f.line (f.col + 1)

let to_string findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf {|{"$schema":"%s","version":"2.1.0","runs":[{"tool":{"driver":{"name":"flix_lint","informationUri":"https://github.com/flix/flix-index","rules":[|}
       schema);
  Buffer.add_string buf
    (String.concat "," (List.map rule_json Rules.descriptions));
  Buffer.add_string buf {|]}},"results":[|};
  Buffer.add_string buf (String.concat "," (List.map result_json findings));
  Buffer.add_string buf {|]}]}|};
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ~path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string findings))
