(* flix_lint — repo-specific static analysis for the FliX tree.

   Parses every .ml/.mli under the given roots (default: lib bin bench)
   with compiler-libs and runs two passes: the per-file syntactic rule
   engine in Rules (FL001–FL006), then the whole-program concurrency
   analysis in Concurrency (FL007 lock-order-cycle, FL008
   blocking-under-lock, FL009 resource-leak) over the retained
   parsetrees. Stale suppression comments are reported as FL010. Exits
   nonzero when any unsuppressed finding remains, so `dune build @lint`
   gates the tree.

   Usage: flix_lint [--json] [--sarif FILE] [--root DIR] [--list-rules]
                    [DIR|FILE ...]

   Paths are reported relative to the scan root, which is also how the
   directory-scoped rules decide what applies where — run it from the
   repository root (or pass --root) so files appear as lib/..., bin/...,
   bench/... *)

let usage =
  "flix_lint [--json] [--sarif FILE] [--root DIR] [--list-rules] [paths...]\n\
   Static analysis for the FliX tree. Default paths: lib bin bench.\n\
   Suppress a finding with an inline comment on, or directly above, the\n\
   offending line:  (* flix-lint: allow FL003 -- reason *)"

(* --- file discovery --------------------------------------------------- *)

let is_source_dir name =
  String.length name > 0 && name.[0] <> '.' && name.[0] <> '_'

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if is_source_dir entry then walk (Filename.concat path entry) acc
        else acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

(* Paths come from Filename.concat; normalize so rule scoping and output
   always see '/'-separated forms. *)
let normalize path =
  String.concat "/" (String.split_on_char '\\' path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- parsing ----------------------------------------------------------- *)

let with_lexbuf path source f =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  f lexbuf

let parse_error_finding file exn =
  let message =
    match exn with
    | Syntaxerr.Error _ -> "syntax error (flix_lint could not parse this file)"
    | e -> "parse failure: " ^ Printexc.to_string e
  in
  let line, col =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    | _ -> (1, 0)
  in
  {
    Diag.rule = "FL000";
    severity = Diag.Error;
    file;
    line;
    col;
    message;
    hint = "fix the syntax error; flix_lint parses with the 5.x grammar";
  }

let module_name_of file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

(* --- main -------------------------------------------------------------- *)

let () =
  let t0 = Unix.gettimeofday () in
  let json = ref false in
  let sarif_path = ref "" in
  let root = ref "" in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as JSON, one object per line");
      ( "--sarif",
        Arg.Set_string sarif_path,
        "FILE also write findings as SARIF 2.1.0 to FILE" );
      ("--root", Arg.Set_string root, "DIR chdir to DIR before scanning");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (id, doc) -> Printf.printf "%s  %s\n" id doc)
      Rules.descriptions;
    exit 0
  end;
  if !root <> "" then Sys.chdir !root;
  let roots =
    match List.rev !roots with
    | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench" ]
    | rs -> rs
  in
  let files =
    List.sort String.compare
      (List.concat_map (fun r -> walk r []) roots)
    |> List.map normalize
  in
  let findings = ref [] in
  let scanned = ref 0 in
  (* per-file suppression tables, kept so the whole-program pass and the
     stale-suppression check can consult them after the file loop *)
  let sups : (string, Suppress.t) Hashtbl.t = Hashtbl.create 64 in
  let units = ref [] in
  List.iter
    (fun file ->
      incr scanned;
      let source = read_file file in
      let sup = Suppress.scan source in
      Hashtbl.replace sups file sup;
      let keep (f : Diag.finding) =
        if Suppress.is_suppressed sup ~rule:f.rule ~line:f.line then ()
        else findings := f :: !findings
      in
      let ctx = { Rules.file; report = keep } in
      if Filename.check_suffix file ".ml" then begin
        (match with_lexbuf file source Parse.implementation with
        | str ->
            Rules.run_on_structure ctx str;
            units :=
              { Concurrency.u_file = file; u_mod = module_name_of file; u_str = str }
              :: !units
        | exception exn -> keep (parse_error_finding file exn));
        (* FL006: implementation files in lib/ carry their contract in a
           sibling interface; an uncovered .ml leaks its whole namespace. *)
        if Rules.in_lib file && not (Sys.file_exists (file ^ "i")) then
          keep
            {
              Diag.rule = "FL006";
              severity = Diag.Error;
              file;
              line = 1;
              col = 0;
              message = "missing interface: no sibling .mli for this module";
              hint = "add " ^ file ^ "i (or suppress on line 1 with a reason)";
            }
      end
      else begin
        (* Interfaces are parse-checked so a broken .mli fails the lint
           gate with a location instead of surfacing later in the build. *)
        match with_lexbuf file source Parse.interface with
        | (_ : Parsetree.signature) -> ()
        | exception exn -> keep (parse_error_finding file exn)
      end)
    files;
  (* whole-program pass: FL007/FL008/FL009 over the retained parsetrees *)
  List.iter
    (fun (f : Diag.finding) ->
      let silenced =
        match Hashtbl.find_opt sups f.file with
        | Some sup -> Suppress.is_suppressed sup ~rule:f.rule ~line:f.line
        | None -> false
      in
      if not silenced then findings := f :: !findings)
    (Concurrency.analyze (List.rev !units));
  (* FL010: allow comments that silenced nothing are themselves findings,
     so the suppressed baseline cannot rot. Runs last — every other rule
     has had its chance to claim the entry. *)
  Hashtbl.iter
    (fun file sup ->
      List.iter
        (fun (rule, line) ->
          let f =
            {
              Diag.rule = "FL010";
              severity = Diag.Error;
              file;
              line;
              col = 0;
              message =
                Printf.sprintf
                  "unused suppression: %s does not fire here anymore" rule;
              hint = "delete the stale 'flix-lint: allow' comment";
            }
          in
          if not (Suppress.is_suppressed sup ~rule:f.rule ~line:f.line) then
            findings := f :: !findings)
        (Suppress.unused sup))
    sups;
  let suppressed = Hashtbl.fold (fun _ sup n -> n + Suppress.hits sup) sups 0 in
  let findings = List.sort Diag.compare_findings !findings in
  if !sarif_path <> "" then Sarif.write ~path:!sarif_path findings;
  if !json then List.iter (fun f -> print_endline (Diag.to_json f)) findings
  else begin
    List.iter (fun f -> print_endline (Diag.to_human f)) findings;
    Printf.printf "flix_lint: %d finding%s (%d suppressed) in %d files (%.2fs)\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      suppressed !scanned
      (Unix.gettimeofday () -. t0)
  end;
  exit (if findings = [] then 0 else 1)
