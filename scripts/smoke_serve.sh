#!/usr/bin/env bash
# Smoke test for persistent serving: save a small deployment, boot
# flix_serve from it (twice — the second boot must reuse the files and
# skip the index build), drive PING / DESCENDANTS / CONNECTED / METRICS
# over the wire, and check that a mangled store dies with a one-line
# error instead of a backtrace. Then hot reload: INGEST and RELOAD
# against a live in-memory server under concurrent query load (zero
# dropped connections, post-reload answers byte-identical to a fresh
# server), with the snapshot epoch / pin / reload-duration metrics
# asserted on METRICS. Then the sharded path: build a 2-shard
# deployment, boot both shard servers plus a coordinator, query through
# the coordinator (including a coordinator-wide RELOAD sweep), and
# verify that killing a shard degrades answers to PARTIAL — and RELOAD
# to a clean ERR — instead of failing them.
#
# Uses bash's /dev/tcp so it needs no netcat. Run from the repo root:
#
#   scripts/smoke_serve.sh [path/to/flix_serve.exe]

set -u

BIN=${1:-_build/default/bin/flix_serve.exe}
PORT=${SMOKE_PORT:-7461}
DIR=$(mktemp -d)
SRV_PID=
EXTRA_PIDS=
EXTRA_DIR=

fail() {
  echo "smoke_serve: FAIL: $*" >&2
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  for p in $EXTRA_PIDS; do kill "$p" 2>/dev/null; done
  rm -rf "$DIR"
  [ -n "$EXTRA_DIR" ] && rm -rf "$EXTRA_DIR"
  exit 1
}

wait_port() {
  for _ in $(seq 1 100); do
    if (exec 9<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
      exec 9<&- 9>&-
      return 0
    fi
    sleep 0.2
  done
  return 1
}

# One request line in, one response out (reads until DONE/DIST/PONG/ERR
# or, for METRICS, the announced number of lines).
ask() {
  local req=$1
  exec 8<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect for $req"
  printf '%s\n' "$req" >&8
  local first
  IFS= read -r -t 10 first <&8 || fail "no response to $req"
  echo "$first"
  case $first in
    LINES\ *)
      local n=${first#LINES }
      for _ in $(seq 1 "$n"); do
        IFS= read -r -t 10 line <&8 || fail "short LINES body for $req"
        echo "$line"
      done
      ;;
    ITEM\ *)
      # Streams end with a DONE/TIMEOUT/PARTIAL trailer; a sharded
      # deployment with a dead shard answers PARTIAL.
      while IFS= read -r -t 10 line <&8; do
        echo "$line"
        case $line in DONE\ *|TIMEOUT\ *|PARTIAL\ *) break ;; esac
      done
      ;;
  esac
  exec 8<&- 8>&-
}

echo "== first boot: build and save the deployment =="
"$BIN" --docs 40 --index-dir "$DIR" --port "$PORT" >"$DIR/boot1.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$DIR/boot1.log" >&2; fail "server did not come up"; }

[ "$(ask PING)" = "PONG" ] || fail "PING"
ask "DESCENDANTS dblp_0000 - author 5" | grep -q "^DONE " || fail "DESCENDANTS"
ask "CONNECTED 0 3" | grep -q "^DIST " || fail "CONNECTED"
ask METRICS | grep -q "^flix_pager_pool_hits_total" || fail "pool metrics missing"

kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
SRV_PID=
for f in index.labels index.tags index.catalog; do
  [ -s "$DIR/$f" ] || fail "deployment file $f missing"
done

echo "== second boot: reuse the saved deployment =="
"$BIN" --index-dir "$DIR" --port "$PORT" >"$DIR/boot2.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$DIR/boot2.log" >&2; fail "reused server did not come up"; }
grep -q "opening deployment" "$DIR/boot2.log" || fail "second boot rebuilt the index"

[ "$(ask PING)" = "PONG" ] || fail "PING after reuse"
ask "DESCENDANTS dblp_0003 - author 5" | grep -q "^DONE " || fail "DESCENDANTS after reuse"
# RELOAD re-opens the deployment and swaps it in; the retired pager is
# closed once its last pinned request drains.
[ "$(ask RELOAD)" = "EPOCH 2" ] || fail "RELOAD on the disk deployment"
ask "DESCENDANTS dblp_0003 - author 5" | grep -q "^DONE " || fail "DESCENDANTS after disk reload"

kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
SRV_PID=

echo "== mangled store: one-line error, nonzero exit =="
echo garbage >"$DIR/index.catalog"
out=$("$BIN" --index-dir "$DIR" --port "$PORT" 2>&1)
status=$?
[ "$status" -ne 0 ] || fail "mangled store accepted (exit 0)"
echo "$out" | grep -q "corrupt index store" || fail "no diagnostic for mangled store"
echo "$out" | grep -q "Raised at\|Fatal error" && fail "backtrace leaked for mangled store"

rm -rf "$DIR"

echo "== hot reload: INGEST and RELOAD under concurrent query load =="
DIR=$(mktemp -d)
"$BIN" --docs 40 --port "$PORT" >"$DIR/mem.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$DIR/mem.log" >&2; fail "in-memory server did not come up"; }

[ "$(ask EPOCH)" = "EPOCH 1" ] || fail "EPOCH before any swap"
m=$(ask METRICS)
echo "$m" | grep -q "^flix_snapshot_epoch 1$" || fail "flix_snapshot_epoch gauge missing"
echo "$m" | grep -q "^flix_snapshot_pinned{epoch=" || fail "flix_snapshot_pinned gauge missing"
echo "$m" | grep -q "^flix_reload_duration_seconds_bucket" || fail "reload histogram missing"

# Concurrent load: every request must complete with DONE while the
# swaps happen — a dropped connection or degraded answer is a failure.
LOAD_ERR="$DIR/load_err"
query_load() { # N_REQUESTS
  local i line done_
  for i in $(seq 1 "$1"); do
    exec 7<>"/dev/tcp/127.0.0.1/$PORT" \
      || { echo "connect failed at request $i" >>"$LOAD_ERR"; continue; }
    printf 'DESCENDANTS dblp_%04d - author 5\n' $(( i % 40 )) >&7
    done_=
    line=
    while IFS= read -r -t 10 line <&7; do
      case $line in
        DONE\ *) done_=1; break ;;
        TIMEOUT\ *|PARTIAL\ *|ERR\ *|BUSY) break ;;
      esac
    done
    [ -n "$done_" ] || echo "request $i failed: ${line:-connection dropped}" >>"$LOAD_ERR"
    exec 7<&- 7>&-
  done
}
query_load 30 & LOAD1=$!
query_load 30 & LOAD2=$!
sleep 0.2

# INGEST one framed document mid-load.
exec 8<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect for INGEST"
printf 'INGEST 1\nDOC smoke_doc 1\n<doc><sec><author>x</author></sec></doc>\n' >&8
IFS= read -r -t 30 line <&8 || fail "no response to INGEST"
exec 8<&- 8>&-
[ "$line" = "EPOCH 2" ] || fail "INGEST answered '$line'"
ask "DESCENDANTS smoke_doc - author 5" | grep -q "^DONE " || fail "ingested document not served"

# RELOAD rebuilds from the original source, dropping the ingested doc.
[ "$(ask RELOAD)" = "EPOCH 3" ] || fail "RELOAD on the in-memory server"
wait "$LOAD1" "$LOAD2"
[ ! -s "$LOAD_ERR" ] || { cat "$LOAD_ERR" >&2; fail "requests dropped during hot reload"; }
m=$(ask METRICS)
echo "$m" | grep -q "^flix_snapshot_epoch 3$" || fail "epoch gauge did not follow the swaps"
count=$(echo "$m" | awk '/^flix_reload_duration_seconds_count / { print $2 }')
[ "${count:-0}" -ge 2 ] || fail "reload histogram did not count the swaps (count=${count:-0})"

# Post-reload answers are byte-identical to a freshly started server.
FPORT=$((PORT + 3))
"$BIN" --docs 40 --port "$FPORT" >"$DIR/fresh.log" 2>&1 &
FRESH_PID=$!
EXTRA_PIDS=$FRESH_PID
PORT=$FPORT wait_port || { cat "$DIR/fresh.log" >&2; fail "fresh server did not come up"; }
for q in "DESCENDANTS dblp_0003 - author 5" "EVALUATE article author 5" "CONNECTED 0 3"; do
  [ "$(ask "$q")" = "$(PORT=$FPORT ask "$q")" ] \
    || fail "post-reload answer diverges from a fresh server for: $q"
done
kill "$FRESH_PID" 2>/dev/null && wait "$FRESH_PID" 2>/dev/null
EXTRA_PIDS=

kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
SRV_PID=
rm -rf "$DIR"

echo "== sharded deployment: build 2 shards + manifest =="
EXTRA_DIR=$(mktemp -d)
SPORT0=$((PORT + 1))
SPORT1=$((PORT + 2))
# 600 documents, not 40: the closure ratio check below needs a portal
# graph dense enough that probe volume, not fixed per-request cost,
# dominates the --no-closure run.
"$BIN" --build-shards 2 --docs 600 --index-dir "$EXTRA_DIR" >"$EXTRA_DIR/build.log" 2>&1 \
  || { cat "$EXTRA_DIR/build.log" >&2; fail "shard build failed"; }
[ -s "$EXTRA_DIR/manifest.shards" ] || fail "manifest.shards missing"
for s in shard0 shard1; do
  [ -s "$EXTRA_DIR/$s/index.catalog" ] || fail "$s deployment missing"
done

echo "== boot shard servers and the coordinator =="
SAVE_PORT=$PORT
"$BIN" --index-dir "$EXTRA_DIR/shard0" --port "$SPORT0" >"$EXTRA_DIR/s0.log" 2>&1 &
S0_PID=$!
"$BIN" --index-dir "$EXTRA_DIR/shard1" --port "$SPORT1" >"$EXTRA_DIR/s1.log" 2>&1 &
S1_PID=$!
EXTRA_PIDS="$S0_PID $S1_PID"
PORT=$SPORT0 wait_port || { cat "$EXTRA_DIR/s0.log" >&2; fail "shard 0 did not come up"; }
PORT=$SPORT1 wait_port || { cat "$EXTRA_DIR/s1.log" >&2; fail "shard 1 did not come up"; }
"$BIN" --coordinator --index-dir "$EXTRA_DIR" --coord-cache 64 \
  --shard "127.0.0.1:$SPORT0" --shard "127.0.0.1:$SPORT1" \
  --port "$PORT" >"$EXTRA_DIR/coord.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$EXTRA_DIR/coord.log" >&2; fail "coordinator did not come up"; }

[ "$(ask PING)" = "PONG" ] || fail "coordinator PING"
ask "EVALUATE article author 5" | grep -q "^DONE " || fail "coordinator EVALUATE"
ask "DESCENDANTS dblp_0000 - author 5" | grep -q "^DONE " || fail "coordinator DESCENDANTS"
ask "CONNECTED 0 3" | grep -q "^DIST " || fail "coordinator CONNECTED"
ask METRICS | grep -q "^flix_shard_errors_total" || fail "shard error metrics missing"
ask METRICS | grep -q "^flix_shard_fanout_latency_ms_bucket" || fail "fanout histogram missing"

echo "== batched probes: round trips stay below sub-request count =="
metrics=$(ask METRICS)
rpcs=$(echo "$metrics" | awk '/^flix_shard_probe_rpcs_total\{/ { sum += $2 } END { print sum + 0 }')
subs=$(echo "$metrics" | awk '/^flix_shard_probe_subs_total\{/ { sum += $2 } END { print sum + 0 }')
[ "$subs" -gt 0 ] || fail "no probe sub-requests recorded (subs=$subs)"
[ "$rpcs" -lt "$subs" ] || fail "probe RPCs not batched (rpcs=$rpcs subs=$subs)"
echo "probe rpcs=$rpcs subs=$subs"
echo "$metrics" | grep -q "^flix_shard_probe_batch_size_bucket" || fail "batch-size histogram missing"

echo "== repeated EVALUATE lands in the coordinator cache =="
ask "EVALUATE article author 5" | grep -q "^DONE " || fail "repeat EVALUATE"
hits=$(ask METRICS | awk '/^flix_coord_cache_hits_total / { print $2 }')
[ "${hits:-0}" -gt 0 ] || fail "coordinator cache never hit (hits=${hits:-0})"
echo "coordinator cache hits=$hits"

echo "== portal closure: label joins replace portal probe waves =="
grep -q "portal closure:" "$EXTRA_DIR/coord.log" || fail "coordinator boot log says nothing about the closure"
lookups=$(ask METRICS | awk '/^flix_coord_closure_lookups_total / { print $2 }')
[ "${lookups:-0}" -gt 0 ] || fail "closure never consulted (lookups=${lookups:-0})"
ask METRICS | grep -q "^flix_closure_label_entries" || fail "closure label gauge missing"
echo "closure lookups=$lookups"

echo "== coordinator RELOAD: shard-by-shard sweep, single swap =="
# After the probe/cache counters above: the swap replaces the
# coordinator (fresh connections, counters reset), so it must not run
# before they are asserted.
[ "$(ask RELOAD)" = "EPOCH 2" ] || fail "coordinator RELOAD"
ask "EVALUATE article author 5" | grep -q "^DONE " || fail "EVALUATE after coordinator reload"
ask METRICS | grep -q "^flix_snapshot_epoch 2$" || fail "coordinator epoch gauge after reload"

# The same fixed cross-shard load against this coordinator and then a
# --no-closure one, measured at steady state: each gets an unmeasured
# warm-up pass over one set of documents (the memoized conn/seed
# probes are shared machinery), then a measured pass over *different*
# documents — distinct requests, so the coordinator's query cache
# cannot answer them, and what's left is the per-request price of the
# portal legs. Label joins must undercut the probe waves by 100x.
read_subs() {
  ask METRICS | awk '/^flix_shard_probe_subs_total\{/ { sum += $2 } END { print sum + 0 }'
}
warm_load() {
  local i
  for i in $(seq 0 19); do
    ask "DESCENDANTS $(printf 'dblp_%04d' "$i") - author 10" >/dev/null
  done
}
measure_load() {
  local i
  for i in $(seq 20 34); do
    ask "DESCENDANTS $(printf 'dblp_%04d' "$i") - author 10" >/dev/null
  done
}
warm_load
before=$(read_subs)
measure_load
with_subs=$(( $(read_subs) - before ))

kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
"$BIN" --coordinator --no-closure --index-dir "$EXTRA_DIR" --coord-cache 64 \
  --shard "127.0.0.1:$SPORT0" --shard "127.0.0.1:$SPORT1" \
  --port "$PORT" >"$EXTRA_DIR/coord_nc.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$EXTRA_DIR/coord_nc.log" >&2; fail "--no-closure coordinator did not come up"; }
grep -q "portal distances will be probed" "$EXTRA_DIR/coord_nc.log" \
  || fail "--no-closure boot should announce the probed path"
warm_load
before=$(read_subs)
measure_load
without_subs=$(( $(read_subs) - before ))
echo "steady-state probe subs for the same load: closure=$with_subs no-closure=$without_subs"
[ "$without_subs" -gt 0 ] || fail "no-closure load produced no probe subs"
[ $((with_subs * 100)) -le "$without_subs" ] \
  || fail "closure did not cut probe subs 100x (closure=$with_subs no-closure=$without_subs)"

# Back on the closure coordinator for the fault-injection finale; the
# replacement process starts with a cold cache, so re-warm EVALUATE.
kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
"$BIN" --coordinator --index-dir "$EXTRA_DIR" --coord-cache 64 \
  --shard "127.0.0.1:$SPORT0" --shard "127.0.0.1:$SPORT1" \
  --port "$PORT" >"$EXTRA_DIR/coord2.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$EXTRA_DIR/coord2.log" >&2; fail "closure coordinator did not come back up"; }
ask "EVALUATE article author 5" | grep -q "^DONE " || fail "EVALUATE after closure reboot"

echo "== kill one shard: answers degrade to PARTIAL =="
kill "$S1_PID" && wait "$S1_PID" 2>/dev/null
EXTRA_PIDS=$S0_PID
# The warmed query replays from the coordinator cache even with the
# shard down; a cold query must degrade to PARTIAL.
ask "EVALUATE article author 5" | grep -q "^DONE " || fail "cached EVALUATE should survive the dead shard"
ask "EVALUATE inproceedings cite 5" | grep -q "^PARTIAL " || fail "dead shard should answer PARTIAL"
[ "$(ask PING)" = "PONG" ] || fail "coordinator PING after shard death"
# RELOAD must refuse cleanly — ERR naming the dead shard, framing and
# the serving epoch intact.
reload_reply=$(ask RELOAD)
case $reload_reply in
  ERR*shard*) : ;;
  *) fail "RELOAD with a dead shard answered '$reload_reply', want ERR" ;;
esac
[ "$(ask EPOCH)" = "EPOCH 1" ] || fail "failed reload must not swap the coordinator"
[ "$(ask PING)" = "PONG" ] || fail "coordinator PING after refused RELOAD"

kill "$SRV_PID" "$S0_PID" 2>/dev/null
wait "$SRV_PID" "$S0_PID" 2>/dev/null
SRV_PID=
EXTRA_PIDS=
PORT=$SAVE_PORT
rm -rf "$EXTRA_DIR"
EXTRA_DIR=

echo "== striped pool: disk throughput must scale 1 -> 4 workers =="
# Same fixed load (4 concurrent clients x 40 requests) against the same
# disk deployment served with 1 worker and then 4, with a pool small
# enough (8 pages) that every request does real page I/O. The striped
# pool must let 4 workers overlap that I/O: the 4-worker wall time may
# not exceed 1.5x the 1-worker time (the single-mutex pager, which
# serialized every page access, fails this with time to spare).
EXTRA_DIR=$(mktemp -d)
"$BIN" --docs 40 --index-dir "$EXTRA_DIR" --port "$PORT" >"$EXTRA_DIR/build.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$EXTRA_DIR/build.log" >&2; fail "deployment builder did not come up"; }
kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
SRV_PID=

drive_clients() { # N_CLIENTS REQS_EACH
  local pids= c p
  for c in $(seq 1 "$1"); do
    (
      for i in $(seq 1 "$2"); do
        exec 8<>"/dev/tcp/127.0.0.1/$PORT" || exit 1
        printf 'DESCENDANTS dblp_%04d - author 10\n' $(( (c * 7 + i) % 40 )) >&8
        while IFS= read -r -t 10 line <&8; do
          case $line in DONE\ *|TIMEOUT\ *|PARTIAL\ *|ERR\ *) break ;; esac
        done
        exec 8<&- 8>&-
      done
    ) &
    pids="$pids $!"
  done
  for p in $pids; do wait "$p" || fail "disk load client failed"; done
}

LAST_MS=
measure_workers() { # N_WORKERS -> LAST_MS
  "$BIN" --index-dir "$EXTRA_DIR" --workers "$1" --pool-pages 8 --pool-stripes 8 \
    --port "$PORT" >"$EXTRA_DIR/w$1.log" 2>&1 &
  SRV_PID=$!
  wait_port || { cat "$EXTRA_DIR/w$1.log" >&2; fail "$1-worker server did not come up"; }
  drive_clients 2 5 # warm-up: connection setup, pool fill
  local t0 t1
  t0=$(date +%s%N)
  drive_clients 4 40
  t1=$(date +%s%N)
  LAST_MS=$(( (t1 - t0) / 1000000 ))
  kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
  SRV_PID=
}

measure_workers 1
MS_1W=$LAST_MS
measure_workers 4
MS_4W=$LAST_MS
echo "disk load wall time: 1 worker=${MS_1W}ms 4 workers=${MS_4W}ms"
[ "$MS_4W" -le $(( MS_1W * 3 / 2 )) ] \
  || fail "4 workers did not keep up with 1 (1w=${MS_1W}ms 4w=${MS_4W}ms)"

rm -rf "$EXTRA_DIR"
EXTRA_DIR=

echo "smoke_serve: OK"
