#!/usr/bin/env bash
# Smoke test for persistent serving: save a small deployment, boot
# flix_serve from it (twice — the second boot must reuse the files and
# skip the index build), drive PING / DESCENDANTS / CONNECTED / METRICS
# over the wire, and check that a mangled store dies with a one-line
# error instead of a backtrace.
#
# Uses bash's /dev/tcp so it needs no netcat. Run from the repo root:
#
#   scripts/smoke_serve.sh [path/to/flix_serve.exe]

set -u

BIN=${1:-_build/default/bin/flix_serve.exe}
PORT=${SMOKE_PORT:-7461}
DIR=$(mktemp -d)
SRV_PID=

fail() {
  echo "smoke_serve: FAIL: $*" >&2
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  rm -rf "$DIR"
  exit 1
}

wait_port() {
  for _ in $(seq 1 100); do
    if (exec 9<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
      exec 9<&- 9>&-
      return 0
    fi
    sleep 0.2
  done
  return 1
}

# One request line in, one response out (reads until DONE/DIST/PONG/ERR
# or, for METRICS, the announced number of lines).
ask() {
  local req=$1
  exec 8<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect for $req"
  printf '%s\n' "$req" >&8
  local first
  IFS= read -r -t 10 first <&8 || fail "no response to $req"
  echo "$first"
  case $first in
    LINES\ *)
      local n=${first#LINES }
      for _ in $(seq 1 "$n"); do
        IFS= read -r -t 10 line <&8 || fail "short LINES body for $req"
        echo "$line"
      done
      ;;
    ITEM\ *|TIMEOUT\ *)
      while IFS= read -r -t 10 line <&8; do
        echo "$line"
        case $line in DONE\ *) break ;; esac
      done
      ;;
  esac
  exec 8<&- 8>&-
}

echo "== first boot: build and save the deployment =="
"$BIN" --docs 40 --index-dir "$DIR" --port "$PORT" >"$DIR/boot1.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$DIR/boot1.log" >&2; fail "server did not come up"; }

[ "$(ask PING)" = "PONG" ] || fail "PING"
ask "DESCENDANTS dblp_0000 - author 5" | grep -q "^DONE " || fail "DESCENDANTS"
ask "CONNECTED 0 3" | grep -q "^DIST " || fail "CONNECTED"
ask METRICS | grep -q "^flix_pager_pool_hits_total" || fail "pool metrics missing"

kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
SRV_PID=
for f in index.labels index.tags index.catalog; do
  [ -s "$DIR/$f" ] || fail "deployment file $f missing"
done

echo "== second boot: reuse the saved deployment =="
"$BIN" --index-dir "$DIR" --port "$PORT" >"$DIR/boot2.log" 2>&1 &
SRV_PID=$!
wait_port || { cat "$DIR/boot2.log" >&2; fail "reused server did not come up"; }
grep -q "opening deployment" "$DIR/boot2.log" || fail "second boot rebuilt the index"

[ "$(ask PING)" = "PONG" ] || fail "PING after reuse"
ask "DESCENDANTS dblp_0003 - author 5" | grep -q "^DONE " || fail "DESCENDANTS after reuse"

kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null
SRV_PID=

echo "== mangled store: one-line error, nonzero exit =="
echo garbage >"$DIR/index.catalog"
out=$("$BIN" --index-dir "$DIR" --port "$PORT" 2>&1)
status=$?
[ "$status" -ne 0 ] || fail "mangled store accepted (exit 0)"
echo "$out" | grep -q "corrupt index store" || fail "no diagnostic for mangled store"
echo "$out" | grep -q "Raised at\|Fatal error" && fail "backtrace leaked for mangled store"

rm -rf "$DIR"
echo "smoke_serve: OK"
