(* Tests for the Path Indexing Strategies: PPO, 2-hop/HOPI, APEX, the
   materialised TC and the DataGuide. The central properties: every
   strategy answers reachability, distance and descendants-by-tag
   queries exactly like BFS on the data graph; result lists are sorted
   by ascending distance and duplicate-free. *)

module Digraph = Fx_graph.Digraph
module Traversal = Fx_graph.Traversal
module Bitset = Fx_graph.Bitset
module Pi = Fx_index.Path_index
module Ppo = Fx_index.Ppo
module Two_hop = Fx_index.Two_hop
module Hopi = Fx_index.Hopi
module Apex = Fx_index.Apex
module Tc_index = Fx_index.Tc_index
module Dataguide = Fx_index.Dataguide
module H = Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The tagged forest from helpers:
       0          5
      / \
     1   2
        / \
       3   4        tags: 0:a 1:b 2:b 3:c 4:b 5:a *)
let forest_dg () =
  { Pi.graph = H.small_forest (); tag = [| 0; 1; 1; 2; 1; 0 |] }

let graph_dg () =
  { Pi.graph = H.small_graph (); tag = [| 0; 1; 1; 2; 1; 0; 2; 1 |] }

(* --- instance-level conformance, shared by all strategies ------------- *)

let conformance name (make : Pi.data_graph -> Pi.instance) (dg : Pi.data_graph) =
  let inst = make dg in
  let g = dg.graph in
  let n = Digraph.n_nodes g in
  (* reachability and distance vs BFS *)
  List.iter
    (fun (u, v) ->
      let expected = Traversal.distance g u v in
      if inst.reachable u v <> (expected <> None) then
        Alcotest.failf "%s: reachable %d %d mismatch" name u v;
      if inst.distance u v <> expected then
        Alcotest.failf "%s: distance %d %d = %s, expected %s" name u v
          (match inst.distance u v with None -> "None" | Some d -> string_of_int d)
          (match expected with None -> "None" | Some d -> string_of_int d))
    (H.all_pairs n);
  (* descendants by tag: exact sets, sorted, duplicate-free *)
  let tags = List.sort_uniq compare (Array.to_list dg.tag) in
  for u = 0 to n - 1 do
    List.iter
      (fun want ->
        let got = inst.descendants_by_tag u want in
        let expected = H.oracle_descendants_by_tag dg u want in
        if not (H.same_results got expected) then
          Alcotest.failf "%s: descendants_by_tag %d mismatch" name u;
        if not (H.sorted_by_distance got) then
          Alcotest.failf "%s: descendants_by_tag %d not sorted" name u;
        if List.length (List.sort_uniq compare (List.map fst got)) <> List.length got then
          Alcotest.failf "%s: duplicates in descendants of %d" name u)
      (None :: List.map Option.some tags);
    (* ancestors mirror descendants on the reversed graph *)
    let rev = Digraph.reverse g in
    let expected_anc =
      Traversal.descendants_by_tag rev ~tag:dg.tag u None
    in
    let got_anc = inst.ancestors_by_tag u None in
    if not (H.same_results got_anc expected_anc) then
      Alcotest.failf "%s: ancestors_by_tag %d mismatch" name u
  done;
  (* restricted descendants/ancestors against a fixed set *)
  let set = Bitset.create n in
  let rec mark v = if v >= 0 then begin Bitset.add set v; mark (v - 2) end in
  mark (n - 1);
  for u = 0 to n - 1 do
    let got = inst.restricted_descendants u set in
    let expected =
      List.filter (fun (v, _) -> Bitset.mem set v) (Traversal.descendants g u)
    in
    if not (H.same_results got expected) then
      Alcotest.failf "%s: restricted_descendants %d mismatch" name u;
    let got_a = inst.restricted_ancestors u set in
    let expected_a =
      List.filter (fun (v, _) -> Bitset.mem set v)
        (Traversal.descendants (Digraph.reverse g) u)
    in
    if not (H.same_results got_a expected_a) then
      Alcotest.failf "%s: restricted_ancestors %d mismatch" name u
  done;
  if inst.stats.size_bytes <= 0 && n > 0 then Alcotest.failf "%s: zero size" name

let make_hopi dg = Hopi.instance ~partition_size:3 dg
let make_apex dg = Apex.instance dg
let make_tc dg = Tc_index.instance dg

(* The disk deployment must satisfy the same contract; temp files are
   cleaned up eagerly (the instance closes with the process). *)
let make_disk_hopi dg =
  let path = Filename.temp_file "fxconf" "" in
  at_exit (fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".labels"; path ^ ".tags" ]);
  Fx_index.Disk_hopi.instance ~page_size:256 ~path dg (Hopi.build dg)

let test_conformance_forest () =
  conformance "PPO" Ppo.instance (forest_dg ());
  conformance "HOPI" make_hopi (forest_dg ());
  conformance "APEX" make_apex (forest_dg ());
  conformance "TC" make_tc (forest_dg ())

let test_conformance_graph () =
  conformance "HOPI" make_hopi (graph_dg ());
  conformance "APEX" make_apex (graph_dg ());
  conformance "TC" make_tc (graph_dg ())

let test_conformance_disk () =
  conformance "HOPI-disk" make_disk_hopi (forest_dg ());
  conformance "HOPI-disk" make_disk_hopi (graph_dg ())

let test_conformance_borders_first () =
  let make dg = Hopi.instance ~ordering:`Borders_first ~partition_size:3 dg in
  conformance "HOPI-borders" make (forest_dg ());
  conformance "HOPI-borders" make (graph_dg ())

let prop_conformance_random_graphs =
  H.qtest ~count:60 "HOPI/APEX/TC ≡ BFS on random digraphs" (H.digraph_arb ~max_n:14 ())
    (fun (n, edges) ->
      let dg = H.data_graph_of (n, edges) ~tag_seed:5 in
      let instances = [ make_hopi dg; make_apex dg; make_tc dg ] in
      let g = dg.graph in
      List.for_all
        (fun (inst : Pi.instance) ->
          List.for_all
            (fun (u, v) -> inst.distance u v = Traversal.distance g u v)
            (H.all_pairs n)
          && List.for_all
               (fun u ->
                 H.same_results (inst.descendants_by_tag u (Some 1))
                   (H.oracle_descendants_by_tag dg u (Some 1)))
               (List.init n (fun i -> i)))
        instances)

let prop_conformance_random_forests =
  H.qtest ~count:60 "PPO ≡ BFS on random forests" (H.forest_arb ())
    (fun (n, edges) ->
      let dg = H.data_graph_of (n, edges) ~tag_seed:9 in
      let inst = Ppo.instance dg in
      List.for_all
        (fun (u, v) -> inst.Pi.distance u v = Traversal.distance dg.graph u v)
        (H.all_pairs n)
      && List.for_all
           (fun u ->
             H.same_results
               (inst.Pi.descendants_by_tag u None)
               (Traversal.descendants dg.graph u))
           (List.init n (fun i -> i)))

(* --- PPO specifics ------------------------------------------------------- *)

let test_ppo_rejects_graphs () =
  check "not buildable" false (Ppo.is_buildable (graph_dg ()));
  Alcotest.check_raises "raises" Ppo.Not_a_forest (fun () -> ignore (Ppo.build (graph_dg ())))

let test_ppo_pre_post () =
  let t = Ppo.build (forest_dg ()) in
  check_int "pre root" 0 (Ppo.pre t 0);
  check "pre/post window" true (Ppo.pre t 2 < Ppo.pre t 3 && Ppo.post t 2 > Ppo.post t 3);
  check_int "depth" 2 (Ppo.depth t 3);
  check "different trees" false (Ppo.reachable t 0 5)

let test_ppo_axes () =
  let t = Ppo.build (forest_dg ()) in
  check "parent" true (Ppo.parent t 3 = Some 2);
  check "root parent" true (Ppo.parent t 0 = None);
  Alcotest.(check (list int)) "children" [ 3; 4 ] (Ppo.children t 2);
  (* following of node 1: everything after its subtree in its tree, in
     preorder: 2, 3, 4, then the second root 5 *)
  Alcotest.(check (list int)) "following" [ 2; 3; 4; 5 ] (Ppo.following t 1);
  Alcotest.(check (list int)) "preceding of 3" [ 1 ] (Ppo.preceding t 3)

let test_ppo_size_linear () =
  let t = Ppo.build (forest_dg ()) in
  check_int "12 bytes per node" (12 * 6) (Ppo.size_bytes t)

(* --- 2-hop labels ----------------------------------------------------------- *)

let prop_two_hop_exact =
  H.qtest ~count:80 "2-hop distances exact on random digraphs" (H.digraph_arb ~max_n:16 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let labels = Two_hop.build g in
      List.for_all
        (fun (u, v) -> Two_hop.distance labels u v = Traversal.distance g u v)
        (H.all_pairs n))

let prop_two_hop_any_order =
  H.qtest ~count:40 "2-hop exact under adversarial landmark order"
    (H.digraph_arb ~max_n:12 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      (* Reverse order = worst-case heuristic; correctness must hold. *)
      let order = Array.init n (fun i -> n - 1 - i) in
      let labels = Two_hop.build ~order g in
      List.for_all
        (fun (u, v) -> Two_hop.reachable labels u v = Traversal.reachable g u v)
        (H.all_pairs n))

let prop_two_hop_weighted_exact =
  H.qtest ~count:60 "weighted 2-hop ≡ relaxation fixpoint" (H.digraph_arb ~max_n:14 ())
    (fun (n, edges) ->
      (* Deterministic weights in [0, 3] derived from the endpoints, so
         zero-weight and heavy edges both occur. *)
      let wedges =
        Array.of_list (List.map (fun (u, v) -> (u, v, (u + (3 * v)) mod 4)) edges)
      in
      let labels = Two_hop.build_weighted ~n wedges in
      let truth src =
        let dist = Array.make n max_int in
        dist.(src) <- 0;
        let changed = ref true in
        while !changed do
          changed := false;
          Array.iter
            (fun (u, v, w) ->
              if dist.(u) <> max_int && dist.(u) + w < dist.(v) then begin
                dist.(v) <- dist.(u) + w;
                changed := true
              end)
            wedges
        done;
        dist
      in
      List.for_all
        (fun u ->
          let d = truth u in
          List.for_all
            (fun v ->
              Two_hop.distance labels u v
              = (if d.(v) = max_int then None else Some d.(v)))
            (List.init n Fun.id))
        (List.init n Fun.id))

let test_two_hop_weighted_validation () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Two_hop.build_weighted: negative edge weight") (fun () ->
      ignore (Two_hop.build_weighted ~n:2 [| (0, 1, -1) |]));
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Two_hop.build_weighted: edge endpoint out of range") (fun () ->
      ignore (Two_hop.build_weighted ~n:2 [| (0, 2, 1) |]))

let test_two_hop_chain_compression () =
  (* A path graph: labels must stay near-linear, far below the O(n^2)
     transitive closure. *)
  let n = 200 in
  let g = Digraph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let labels = Two_hop.build g in
  let tc_pairs = n * (n - 1) / 2 in
  check "entries well below TC" true (Two_hop.entries labels < tc_pairs / 3);
  check "max label sublinear" true (Two_hop.max_label labels <= n / 2)

let test_two_hop_bad_order () =
  let g = Digraph.of_edges ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Two_hop.build: order is not a permutation") (fun () ->
      ignore (Two_hop.build ~order:[| 0; 0; 2 |] g))

let test_two_hop_labels_inspectable () =
  let g = Digraph.of_edges ~n:2 [ (0, 1) ] in
  let labels = Two_hop.build g in
  (* Some hop must witness 0 -> 1. *)
  let w =
    List.exists
      (fun h -> List.mem h (Two_hop.in_label_nodes labels 1))
      (Two_hop.out_label_nodes labels 0)
    || List.mem 0 (Two_hop.in_label_nodes labels 1)
    || List.mem 1 (Two_hop.out_label_nodes labels 0)
  in
  check "cover witness" true w

(* --- HOPI ---------------------------------------------------------------------- *)

let test_hopi_partition_sizes () =
  (* Same answers for different partition sizes. *)
  let dg = graph_dg () in
  let h1 = Hopi.build ~partition_size:2 dg in
  let h2 = Hopi.build ~partition_size:100 dg in
  List.iter
    (fun (u, v) ->
      check "same distance" true (Hopi.distance h1 u v = Hopi.distance h2 u v))
    (H.all_pairs 8)

let test_hopi_wildcard_sorted () =
  let h = Hopi.build (graph_dg ()) in
  let d = Hopi.descendants_by_tag h 0 None in
  check "sorted" true (H.sorted_by_distance d);
  check "self included" true (List.mem (0, 0) d)

(* --- APEX ------------------------------------------------------------------------ *)

let test_apex_blocks_respect_tags () =
  let a = Apex.build (graph_dg ()) in
  let dg = graph_dg () in
  for v = 0 to 7 do
    for w = 0 to 7 do
      if Apex.block a v = Apex.block a w then
        check "same block same tag" true (dg.tag.(v) = dg.tag.(w))
    done
  done

let test_apex_extents_partition () =
  let a = Apex.build (graph_dg ()) in
  let seen = Array.make 8 0 in
  for b = 0 to Apex.n_blocks a - 1 do
    Array.iter (fun v -> seen.(v) <- seen.(v) + 1) (Apex.extent a b)
  done;
  Array.iter (fun k -> check_int "each node in one extent" 1 k) seen

let test_apex_label_path () =
  (* b-tagged children under a-tagged root: //a//c ; //b//c ; //c//a *)
  let dg = forest_dg () in
  let a = Apex.build dg in
  let tag_id = function "a" -> Some 0 | "b" -> Some 1 | "c" -> Some 2 | _ -> None in
  Alcotest.(check (list int)) "//a//c" [ 3 ] (Apex.eval_label_path a [ "a"; "c" ] ~tag_id);
  Alcotest.(check (list int)) "//b//c" [ 3 ] (Apex.eval_label_path a [ "b"; "c" ] ~tag_id);
  Alcotest.(check (list int)) "//c//a" [] (Apex.eval_label_path a [ "c"; "a" ] ~tag_id);
  Alcotest.(check (list int)) "unknown tag" [] (Apex.eval_label_path a [ "zz" ] ~tag_id)

let prop_apex_bisimulation_summary_sound =
  H.qtest ~count:50 "APEX summary simulates the data graph" (H.digraph_arb ~max_n:12 ())
    (fun (n, edges) ->
      let dg = H.data_graph_of (n, edges) ~tag_seed:13 in
      let a = Apex.build dg in
      (* Every data edge has a summary edge between the blocks. *)
      let ok = ref true in
      Digraph.iter_edges dg.graph (fun u v ->
          ok := !ok && Digraph.mem_edge (Apex.summary_graph a) (Apex.block a u) (Apex.block a v));
      !ok)

(* --- DataGuide -------------------------------------------------------------------- *)

let test_dataguide_paths () =
  let dg = forest_dg () in
  let guide = Option.get (Dataguide.build dg ~roots:[ 0; 5 ]) in
  let tag_id = function "a" -> Some 0 | "b" -> Some 1 | "c" -> Some 2 | _ -> None in
  Alcotest.(check (list int)) "/a" [ 0; 5 ] (Dataguide.targets_of_path guide ~tag_id [ "a" ]);
  Alcotest.(check (list int)) "/a/b" [ 1; 2 ] (Dataguide.targets_of_path guide ~tag_id [ "a"; "b" ]);
  Alcotest.(check (list int)) "/a/b/c" [ 3 ]
    (Dataguide.targets_of_path guide ~tag_id [ "a"; "b"; "c" ]);
  Alcotest.(check (list int)) "missing" [] (Dataguide.targets_of_path guide ~tag_id [ "c" ])

let test_dataguide_budget () =
  let dg = graph_dg () in
  check "budget refusal" true (Dataguide.build ~max_states:1 dg ~roots:[ 0 ] = None)

let test_dataguide_path_listing () =
  let dg = forest_dg () in
  let guide = Option.get (Dataguide.build dg ~roots:[ 0; 5 ]) in
  let paths = Dataguide.paths guide ~tag_name:(fun w -> [| "a"; "b"; "c" |].(w)) ~max:10 in
  check "lists /a" true (List.mem "/a" paths);
  check "lists /a/b/c" true (List.mem "/a/b/c" paths)

let prop_dataguide_targets_match_bfs =
  H.qtest ~count:50 "DataGuide label paths ≡ navigation" (H.forest_arb ~max_n:16 ())
    (fun (n, edges) ->
      let dg = H.data_graph_of (n, edges) ~tag_seed:21 in
      let roots =
        List.filter (fun v -> Digraph.in_degree dg.graph v = 0) (List.init n (fun i -> i))
      in
      match Dataguide.build dg ~roots with
      | None -> false
      | Some guide ->
          let tag_name w = [| "t0"; "t1"; "t2"; "t3" |].(w) in
          let tag_id s = List.assoc_opt s [ ("t0", 0); ("t1", 1); ("t2", 2); ("t3", 3) ] in
          (* Navigate each 2-step label path by hand and compare. *)
          let ok = ref true in
          for w1 = 0 to 3 do
            for w2 = 0 to 3 do
              let expected =
                List.concat_map
                  (fun r ->
                    if dg.tag.(r) = w1 then
                      Digraph.fold_succ dg.graph r
                        (fun acc v -> if dg.tag.(v) = w2 then v :: acc else acc)
                        []
                    else [])
                  roots
                |> List.sort_uniq compare
              in
              let got = Dataguide.targets_of_path guide ~tag_id [ tag_name w1; tag_name w2 ] in
              ok := !ok && List.sort_uniq compare got = expected
            done
          done;
          !ok)

(* --- persistence -------------------------------------------------------------------- *)

let test_two_hop_serialization () =
  let g = H.small_graph () in
  let labels = Two_hop.build g in
  let loaded = Two_hop.deserialize (Two_hop.serialize labels) in
  List.iter
    (fun (u, v) ->
      check "same distance" true (Two_hop.distance labels u v = Two_hop.distance loaded u v))
    (H.all_pairs 8);
  check_int "same entries" (Two_hop.entries labels) (Two_hop.entries loaded)

let test_two_hop_serialization_corrupt () =
  let g = H.small_graph () in
  let data = Two_hop.serialize (Two_hop.build g) in
  let tamper i c =
    let b = Bytes.of_string data in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (match Two_hop.deserialize (tamper 0 'X') with
  | exception Fx_util.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  match Two_hop.deserialize (String.sub data 0 (String.length data / 2)) with
  | exception Fx_util.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncation accepted"

let test_ppo_serialization () =
  let dg = forest_dg () in
  let t = Ppo.build dg in
  let loaded = Ppo.deserialize dg (Ppo.serialize t) in
  List.iter
    (fun (u, v) ->
      check "same distance" true (Ppo.distance t u v = Ppo.distance loaded u v))
    (H.all_pairs 6);
  for v = 0 to 5 do
    check "descendants equal" true
      (Ppo.descendants_by_tag t v None = Ppo.descendants_by_tag loaded v None)
  done;
  (* wrong graph is rejected *)
  match Ppo.deserialize (graph_dg ()) (Ppo.serialize t) with
  | exception Fx_util.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "node-count mismatch accepted"

let prop_two_hop_serialization_random =
  H.qtest ~count:30 "2-hop serialization roundtrip" (H.digraph_arb ~max_n:12 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let labels = Two_hop.build g in
      let loaded = Two_hop.deserialize (Two_hop.serialize labels) in
      List.for_all
        (fun (u, v) -> Two_hop.distance labels u v = Two_hop.distance loaded u v)
        (H.all_pairs n))

(* --- A(k) bounded refinement ------------------------------------------------------- *)

let test_ak_index () =
  let dg = graph_dg () in
  let a0 = Apex.build ~k:0 dg in
  (* A(0): blocks = tags *)
  check_int "A(0) blocks = tags" (Fx_index.Path_index.n_tags dg) (Apex.n_blocks a0);
  (* Blocks refine monotonically with k and answers stay exact. *)
  let prev = ref 0 in
  List.iter
    (fun k ->
      let ak = Apex.build ~k dg in
      check "monotone blocks" true (Apex.n_blocks ak >= !prev);
      prev := Apex.n_blocks ak;
      List.iter
        (fun (u, v) ->
          check "A(k) distance exact" true
            (Apex.distance ak u v = Fx_graph.Traversal.distance dg.graph u v))
        (H.all_pairs 8))
    [ 0; 1; 2; 5 ];
  Alcotest.check_raises "negative k" (Invalid_argument "Apex.build: k < 0") (fun () ->
      ignore (Apex.build ~k:(-1) dg))

let test_fb_index () =
  let dg = graph_dg () in
  let plain = Apex.build dg in
  let fb = Apex.build ~fb:true dg in
  (* F&B refines the backward-only partition. *)
  check "fb at least as fine" true (Apex.n_blocks fb >= Apex.n_blocks plain);
  (* Same-block nodes agree on successor blocks too. *)
  let g = dg.graph in
  for v = 0 to 7 do
    for w = 0 to 7 do
      if Apex.block fb v = Apex.block fb w then begin
        let out u =
          Digraph.fold_succ g u (fun acc x -> Apex.block fb x :: acc) []
          |> List.sort_uniq compare
        in
        check "stable under succ" true (out v = out w)
      end
    done
  done;
  (* Still exact. *)
  List.iter
    (fun (u, v) ->
      check "fb distance exact" true
        (Apex.distance fb u v = Fx_graph.Traversal.distance g u v))
    (H.all_pairs 8)

let prop_fb_exact =
  H.qtest ~count:30 "F&B index exact on random digraphs" (H.digraph_arb ~max_n:10 ())
    (fun (n, edges) ->
      let dg = H.data_graph_of (n, edges) ~tag_seed:37 in
      let fb = Apex.build ~fb:true dg in
      List.for_all
        (fun u ->
          H.same_results
            (Apex.descendants_by_tag fb u (Some 2))
            (H.oracle_descendants_by_tag dg u (Some 2)))
        (List.init n (fun i -> i)))

let prop_ak_exact =
  H.qtest ~count:40 "A(k) exact for every k on random digraphs" (H.digraph_arb ~max_n:10 ())
    (fun (n, edges) ->
      let dg = H.data_graph_of (n, edges) ~tag_seed:31 in
      List.for_all
        (fun k ->
          let ak = Apex.build ~k dg in
          List.for_all
            (fun u ->
              H.same_results
                (Apex.descendants_by_tag ak u (Some 1))
                (H.oracle_descendants_by_tag dg u (Some 1)))
            (List.init n (fun i -> i)))
        [ 0; 1; 3 ])

let () =
  Alcotest.run "fx_index"
    [
      ( "conformance",
        [
          Alcotest.test_case "all strategies, forest" `Quick test_conformance_forest;
          Alcotest.test_case "graph strategies, cyclic graph" `Quick test_conformance_graph;
          Alcotest.test_case "disk deployment" `Quick test_conformance_disk;
          Alcotest.test_case "borders-first ordering" `Quick test_conformance_borders_first;
          prop_conformance_random_graphs;
          prop_conformance_random_forests;
        ] );
      ( "ppo",
        [
          Alcotest.test_case "rejects non-forests" `Quick test_ppo_rejects_graphs;
          Alcotest.test_case "pre/post windows" `Quick test_ppo_pre_post;
          Alcotest.test_case "other axes" `Quick test_ppo_axes;
          Alcotest.test_case "linear size" `Quick test_ppo_size_linear;
        ] );
      ( "two_hop",
        [
          prop_two_hop_exact;
          prop_two_hop_any_order;
          prop_two_hop_weighted_exact;
          Alcotest.test_case "weighted validation" `Quick test_two_hop_weighted_validation;
          Alcotest.test_case "chain compression" `Quick test_two_hop_chain_compression;
          Alcotest.test_case "rejects bad order" `Quick test_two_hop_bad_order;
          Alcotest.test_case "cover witness" `Quick test_two_hop_labels_inspectable;
        ] );
      ( "hopi",
        [
          Alcotest.test_case "partition size irrelevant for answers" `Quick
            test_hopi_partition_sizes;
          Alcotest.test_case "wildcard sorted" `Quick test_hopi_wildcard_sorted;
        ] );
      ( "apex",
        [
          Alcotest.test_case "blocks respect tags" `Quick test_apex_blocks_respect_tags;
          Alcotest.test_case "extents partition nodes" `Quick test_apex_extents_partition;
          Alcotest.test_case "label paths" `Quick test_apex_label_path;
          prop_apex_bisimulation_summary_sound;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "2-hop roundtrip" `Quick test_two_hop_serialization;
          Alcotest.test_case "2-hop corrupt" `Quick test_two_hop_serialization_corrupt;
          Alcotest.test_case "ppo roundtrip" `Quick test_ppo_serialization;
          prop_two_hop_serialization_random;
        ] );
      ( "ak_index",
        [
          Alcotest.test_case "bounded refinement" `Quick test_ak_index;
          Alcotest.test_case "F&B refinement" `Quick test_fb_index;
          prop_fb_exact;
          prop_ak_exact;
        ] );
      ( "dataguide",
        [
          Alcotest.test_case "paths" `Quick test_dataguide_paths;
          Alcotest.test_case "state budget" `Quick test_dataguide_budget;
          Alcotest.test_case "path listing" `Quick test_dataguide_path_listing;
          prop_dataguide_targets_match_bfs;
        ] );
    ]
