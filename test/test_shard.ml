(* The sharding subsystem: plan invariants and id translation, manifest
   persistence, and a live 2-shard cluster — coordinator answers
   cross-checked against a single server over the same collection, with
   deterministic fault injection (a dead shard must degrade to PARTIAL,
   not fail), the per-request DEADLINE override, the server's
   incremental ITEM flushing, and the client receive timeout. *)

module P = Fx_server.Protocol
module Server = Fx_server.Server
module Client = Fx_server.Server_client
module Plan = Fx_shard.Shard_plan
module Closure = Fx_shard.Portal_closure
module Coord_cache = Fx_shard.Coord_cache
module Coordinator = Fx_shard.Coordinator
module Flix = Fx_flix.Flix
module Meta_builder = Fx_flix.Meta_builder
module C = Fx_xml.Collection
module Dblp = Fx_workload.Dblp_gen

let shared_collection =
  lazy (Dblp.collection { Dblp.default with n_docs = 150; seed = 11 })

let shared_plan = lazy (Plan.plan ~n_shards:2 (Lazy.force shared_collection))
let shared_flix = lazy (Flix.build (Lazy.force shared_collection))

let shard_collections =
  lazy
    (Plan.shard_documents (Lazy.force shared_plan) (Lazy.force shared_collection)
    |> Array.map C.build)

let shard_flixes = lazy (Array.map Flix.build (Lazy.force shard_collections))

let hopis_of colls =
  Array.map
    (fun sub ->
      Fx_index.Hopi.build { Fx_index.Path_index.graph = C.graph sub; tag = C.tag sub })
    colls

let closure_of plan hopis =
  Closure.build ~plan ~local_dist:(fun ~shard ~a ~b ->
      Fx_index.Hopi.distance hopis.(shard) a b)

let shared_closure =
  lazy (closure_of (Lazy.force shared_plan) (hopis_of (Lazy.force shard_collections)))

(* --- plan ----------------------------------------------------------- *)

let plan_invariants () =
  let coll = Lazy.force shared_collection in
  let plan = Lazy.force shared_plan in
  Alcotest.(check int) "two shards" 2 (Plan.n_shards plan);
  Alcotest.(check int) "covers the collection" (C.n_nodes coll) (Plan.total_nodes plan);
  let doc_sum = ref 0 and node_sum = ref 0 in
  for s = 0 to Plan.n_shards plan - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d nonempty" s)
      true
      (Plan.shard_n_docs plan s > 0);
    doc_sum := !doc_sum + Plan.shard_n_docs plan s;
    node_sum := !node_sum + Plan.shard_n_nodes plan s
  done;
  Alcotest.(check int) "documents partitioned" (C.n_docs coll) !doc_sum;
  Alcotest.(check int) "nodes partitioned" (C.n_nodes coll) !node_sum;
  (* Id translation round-trips over every node in the collection. *)
  for g = 0 to C.n_nodes coll - 1 do
    let shard, local = Plan.locate plan g in
    if Plan.global_of plan ~shard ~local <> g then
      Alcotest.failf "locate/global_of do not round-trip at node %d" g
  done;
  (* Cross links really cross, and carry their target's tag name. *)
  let tags = C.tag coll in
  Alcotest.(check bool) "has cross-shard links" true
    (Array.length (Plan.cross_links plan) > 0);
  Array.iter
    (fun (l : Plan.cross_link) ->
      let s_src, _ = Plan.locate plan l.src and s_dst, _ = Plan.locate plan l.dst in
      if s_src = s_dst then Alcotest.failf "link %d -> %d does not cross" l.src l.dst;
      Alcotest.(check string)
        (Printf.sprintf "tag of link target %d" l.dst)
        (C.tag_name coll tags.(l.dst))
        l.dst_tag)
    (Plan.cross_links plan);
  (* Meta documents are never split: requesting far more shards than
     meta documents clamps instead of fragmenting. *)
  let huge = Plan.plan ~n_shards:10_000 coll in
  Alcotest.(check bool) "shard count clamped to meta count" true
    (Plan.n_shards huge >= 1 && Plan.n_shards huge < 10_000);
  (match Plan.plan ~config:(Meta_builder.Element_level { max_size = 64 }) ~n_shards:2 coll with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Element_level must be rejected: it splits documents");
  match Plan.plan ~n_shards:0 coll with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n_shards 0 must be rejected"

let manifest_roundtrip () =
  let coll = Lazy.force shared_collection in
  let plan = Lazy.force shared_plan in
  let path = Filename.temp_file "fxman" ".shards" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Plan.save ~path plan;
      let plan' = Plan.load path in
      Alcotest.(check int) "n_shards" (Plan.n_shards plan) (Plan.n_shards plan');
      Alcotest.(check int) "total_nodes" (Plan.total_nodes plan) (Plan.total_nodes plan');
      for g = 0 to C.n_nodes coll - 1 do
        if Plan.locate plan g <> Plan.locate plan' g then
          Alcotest.failf "loaded plan places node %d differently" g
      done;
      let key (l : Plan.cross_link) = (l.src, l.dst, l.dst_tag) in
      let links p = Plan.cross_links p |> Array.map key |> Array.to_list |> List.sort compare in
      Alcotest.(check bool) "cross links survive" true (links plan = links plan');
      (* A truncated manifest must be detected, not mistranslated. *)
      let ic = open_in_bin path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub body 0 (String.length body / 2));
      close_out oc;
      match Plan.load path with
      | exception Fx_util.Codec.Corrupt _ -> ()
      | _ -> Alcotest.fail "truncated manifest must raise Corrupt")

(* --- the portal closure and its manifest ------------------------------ *)

let plans_agree what plan plan' =
  Alcotest.(check int) (what ^ ": n_shards") (Plan.n_shards plan) (Plan.n_shards plan');
  Alcotest.(check int)
    (what ^ ": total_nodes")
    (Plan.total_nodes plan) (Plan.total_nodes plan');
  for g = 0 to Plan.total_nodes plan - 1 do
    if Plan.locate plan g <> Plan.locate plan' g then
      Alcotest.failf "%s: node %d placed differently after the load" what g
  done

let manifest_v2_roundtrip () =
  let plan = Lazy.force shared_plan in
  let closure = Lazy.force shared_closure in
  let path = Filename.temp_file "fxman2" ".shards" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Closure.save_manifest ~path ~plan (Some closure);
      let plan', closure' = Closure.load_manifest path in
      plans_agree "v2" plan plan';
      let c =
        match closure' with
        | Some c -> c
        | None -> Alcotest.fail "v2 manifest should carry the closure"
      in
      Alcotest.(check int) "epoch survives" (Closure.epoch closure) (Closure.epoch c);
      (* The epoch travels through Codec varints, which only round-trip
         magnitudes below 2^61 — the digest must stay inside that. *)
      Alcotest.(check bool) "epoch is codec-safe" true
        (Closure.epoch closure >= 0 && Closure.epoch closure < 1 lsl 60);
      Alcotest.(check bool) "matches the loaded plan" true (Closure.matches c plan');
      Alcotest.(check int) "oracle nodes survive" (Closure.n_nodes closure)
        (Closure.n_nodes c);
      Alcotest.(check int) "label entries survive" (Closure.label_entries closure)
        (Closure.label_entries c);
      Alcotest.(check bool) "build time survives" true (Closure.build_seconds c > 0.0);
      (* Portal-to-portal distances survive byte for byte. *)
      let links = Plan.cross_links plan in
      Array.iteri
        (fun i (l : Plan.cross_link) ->
          let l' = links.(((i * 7) + 1) mod Array.length links) in
          if Closure.distance closure l.src l'.dst <> Closure.distance c l.src l'.dst
          then
            Alcotest.failf "distance %d -> %d changed across the roundtrip" l.src l'.dst)
        links;
      (* A closure-less v2 manifest round-trips too. *)
      Closure.save_manifest ~path ~plan None;
      let plan_only_len =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        close_in ic;
        n
      in
      (match Closure.load_manifest path with
      | plan'', None -> plans_agree "v2 no closure" plan plan''
      | _, Some _ -> Alcotest.fail "manifest saved without a closure grew one");
      (* A v1 manifest still loads — with no closure to join. *)
      Plan.save ~path plan;
      (match Closure.load_manifest path with
      | plan'', None -> plans_agree "v1 fallback" plan plan''
      | _, Some _ -> Alcotest.fail "v1 manifest cannot carry a closure");
      (* Truncating anywhere inside the closure section must surface as
         Corrupt — never a crash or a silently shorter oracle. *)
      Closure.save_manifest ~path ~plan (Some closure);
      let ic = open_in_bin path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (fun cut ->
          let oc = open_out_bin path in
          output_string oc (String.sub body 0 cut);
          close_out oc;
          match Closure.load_manifest path with
          | exception Fx_util.Codec.Corrupt _ -> ()
          | _ -> Alcotest.failf "truncation at %d bytes must raise Corrupt" cut)
        [
          String.length body / 2;
          plan_only_len;
          (* inside the closure header *)
          plan_only_len + 3;
          (* inside the serialized labels *)
          String.length body - 1;
        ])

let coord_cache_closure_epoch () =
  let cache = Coord_cache.create ~closure_epoch:7 ~capacity:4 () in
  let items = [ { P.node = 1; dist = 2; meta = 0 } ] in
  let find () =
    Coord_cache.find cache ~start_tag:"a" ~target_tag:"b" ~k:5 ~max_dist:None
  in
  let store () =
    Coord_cache.store cache ~start_tag:"a" ~target_tag:"b" ~k:5 ~max_dist:None items
  in
  Alcotest.(check bool) "empty cache misses" true (find () = None);
  store ();
  Alcotest.(check bool) "hit under the built closure" true (find () = Some items);
  Coord_cache.set_closure_epoch cache 8;
  Alcotest.(check bool) "rebuilt closure orphans the merge" true (find () = None);
  store ();
  Alcotest.(check bool) "fresh store lands under the new epoch" true (find () = Some items)

(* --- live cluster ---------------------------------------------------- *)

(* Persist a collection as a disk deployment (the backend --build-shards
   produces) and serve it. Disk evaluation reports exact distances, so
   sharded and unsharded answers must agree set-for-set; the in-memory
   engine is the paper's approximate one, whose distances legitimately
   depend on the partition. *)
let with_disk_server coll f =
  let dg = { Fx_index.Path_index.graph = C.graph coll; tag = C.tag coll } in
  let hopi = Fx_index.Hopi.build dg in
  let prefix = Filename.temp_file "fxshard" "" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ prefix; prefix ^ ".labels"; prefix ^ ".tags"; prefix ^ ".catalog" ])
    (fun () ->
      Fx_index.Disk_hopi.save ~path:prefix dg hopi;
      Fx_index.Catalog.save ~path:(prefix ^ ".catalog")
        (Fx_index.Catalog.of_collection coll);
      let disk = Fx_index.Disk_hopi.open_ ~path:prefix () in
      let catalog = Fx_index.Catalog.load (prefix ^ ".catalog") in
      Fun.protect
        ~finally:(fun () -> Fx_index.Disk_hopi.close disk)
        (fun () ->
          let server = Server.start_backend (Server.On_disk { hopi = disk; catalog }) in
          Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)))

let rec with_disk_servers colls f =
  match colls with
  | [] -> f []
  | c :: rest -> with_disk_server c (fun s -> with_disk_servers rest (fun ss -> f (s :: ss)))

(* Boot one in-memory server per shard, a coordinator in front of them,
   and hand the test the coordinator plus a client per endpoint. *)
let with_cluster ?batching ?query_cache f =
  let plan = Lazy.force shared_plan in
  let shard_servers = Array.map Server.start (Lazy.force shard_flixes) in
  Fun.protect
    ~finally:(fun () -> Array.iter Server.stop shard_servers)
    (fun () ->
      let shards =
        Array.to_list shard_servers |> List.map (fun s -> ("127.0.0.1", Server.port s))
      in
      let coord = Coordinator.create ?batching ?query_cache ~plan ~shards () in
      Fun.protect
        ~finally:(fun () -> Coordinator.close coord)
        (fun () ->
          let front = Server.start_backend (Server.Custom (Coordinator.backend coord)) in
          Fun.protect
            ~finally:(fun () -> Server.stop front)
            (fun () -> f ~coord ~front ~shard_servers)))

(* Normalize a stream for comparison: the coordinator's merge may order
   equal-distance ties differently, and it reports the owning shard in
   [meta] where the single server reports the meta document. *)
let normal items = List.map (fun (it : P.item) -> (it.dist, it.node)) items |> List.sort compare

let ascending_dists items =
  let rec go last = function
    | [] -> true
    | (it : P.item) :: tl -> it.dist >= last && go it.dist tl
  in
  go 0 items

let stream_eq ~what got want =
  (match (got, want) with
  | Ok (P.Items g), Ok (P.Items w) ->
      Alcotest.(check bool) (what ^ ": flags") true
        (g.timed_out = w.timed_out && g.partial = w.partial);
      Alcotest.(check int) (what ^ ": count") (List.length w.items) (List.length g.items);
      if normal g.items <> normal w.items then
        Alcotest.failf "%s: item sets differ" what;
      Alcotest.(check bool)
        (what ^ ": merged stream ascends by distance")
        true (ascending_dists g.items)
  | _ -> Alcotest.failf "%s: expected item streams from both endpoints" what)

let coordinator_matches_single_server () =
  let coll = Lazy.force shared_collection in
  let plan = Lazy.force shared_plan in
  with_disk_servers
    (coll :: Array.to_list (Lazy.force shard_collections))
    (function
      | [] | [ _ ] -> assert false
      | single :: shard_servers ->
          let shards = List.map (fun s -> ("127.0.0.1", Server.port s)) shard_servers in
          let coord = Coordinator.create ~plan ~shards () in
          let ucoord = Coordinator.create ~batching:false ~plan ~shards () in
          Fun.protect
            ~finally:(fun () ->
              Coordinator.close coord;
              Coordinator.close ucoord)
            (fun () ->
              let front =
                Server.start_backend (Server.Custom (Coordinator.backend coord))
              in
              let ufront =
                Server.start_backend (Server.Custom (Coordinator.backend ucoord))
              in
              Fun.protect
                ~finally:(fun () ->
                  Server.stop front;
                  Server.stop ufront)
                (fun () ->
                  let cc = Client.connect ~port:(Server.port front) () in
                  let uc = Client.connect ~port:(Server.port ufront) () in
                  let sc = Client.connect ~port:(Server.port single) () in
                  Fun.protect
                    ~finally:(fun () ->
                      Client.close cc;
                      Client.close uc;
                      Client.close sc)
                    (fun () ->
              (* Large k so no top-k boundary cuts a tie group. *)
              let streams =
                [
                  P.Evaluate
                    { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None };
                  P.Evaluate
                    {
                      start_tag = "inproceedings";
                      target_tag = "cite";
                      k = 10_000;
                      max_dist = None;
                    };
                  P.Evaluate
                    { start_tag = "article"; target_tag = "title"; k = 10_000; max_dist = Some 3 };
                  P.Descendants
                    { doc = Dblp.doc_name 0; anchor = None; tag = None; k = 10_000; max_dist = None };
                  P.Descendants
                    {
                      doc = Dblp.doc_name 7;
                      anchor = None;
                      tag = Some "author";
                      k = 10_000;
                      max_dist = None;
                    };
                  P.Node_descendants { node = 0; tag = None; k = 10_000; max_dist = None };
                  P.Ancestors { node = 40; tag = None; k = 10_000; max_dist = None };
                  P.Ancestors { node = 100; tag = Some "article"; k = 10_000; max_dist = None };
                  P.Resolve { doc = Dblp.doc_name 3; anchor = None };
                ]
              in
              List.iter
                (fun req ->
                  let what = P.request_line req in
                  let want = Client.request sc req in
                  let batched = Client.request cc req in
                  let unbatched = Client.request uc req in
                  stream_eq ~what batched want;
                  stream_eq ~what:(what ^ " (unbatched)") unbatched want;
                  (* Batching is a transport optimization only: the
                     batched and unbatched coordinators must render the
                     very same response, byte for byte. *)
                  match (batched, unbatched) with
                  | Ok b, Ok u ->
                      Alcotest.(check (list string))
                        (what ^ ": batched path renders identically")
                        (P.response_lines u) (P.response_lines b)
                  | _ -> Alcotest.failf "%s: transport failure" what)
                streams;
              (* The batched coordinator did the same probe work in far
                 fewer round trips; the unbatched one pays one RPC per
                 sub-request. *)
              let rpcs = Coordinator.probe_rpcs_total coord in
              let subs = Coordinator.probe_subs_total coord in
              Alcotest.(check bool) "probes flowed" true (subs > 0);
              Alcotest.(check bool) "batching collapses round trips" true (rpcs < subs);
              Alcotest.(check int) "unbatched rpcs track subs one-to-one"
                (Coordinator.probe_subs_total ucoord)
                (Coordinator.probe_rpcs_total ucoord);
              (* CONNECTED: exact distances, including portal paths that
                 hop between shards. Probe pairs with known reachability
                 (node 40's ancestor cone) plus a deterministic sweep of
                 mostly-unreachable pairs. *)
              let anc =
                match Client.request sc (P.Ancestors { node = 40; tag = None; k = 10_000; max_dist = None }) with
                | Ok (P.Items { items; _ }) -> List.map (fun (it : P.item) -> it.node) items
                | _ -> Alcotest.fail "ancestors ground truth failed"
              in
              let pairs =
                List.filteri (fun i _ -> i mod 7 = 0) anc
                |> List.map (fun a -> (a, 40))
                |> List.append (List.init 30 (fun i -> ((i * 131) mod 2000, (i * 613) mod 2000)))
              in
              List.iter
                (fun (a, b) ->
                  let want =
                    match Client.connected sc a b with
                    | Ok (Client.Value d) -> d
                    | _ -> Alcotest.failf "connected %d %d ground truth failed" a b
                  in
                  (match Client.connected cc a b with
                  | Ok (Client.Value got) ->
                      Alcotest.(check (option int))
                        (Printf.sprintf "connected %d %d" a b)
                        want got
                  | _ -> Alcotest.failf "connected %d %d failed" a b);
                  match Client.connected uc a b with
                  | Ok (Client.Value got) ->
                      Alcotest.(check (option int))
                        (Printf.sprintf "connected %d %d (unbatched)" a b)
                        want got
                  | _ -> Alcotest.failf "connected %d %d (unbatched) failed" a b)
                pairs;
              (* An unknown document is a semantic error on both. *)
              match
                Client.request cc
                  (P.Descendants
                     { doc = "no_such_doc"; anchor = None; tag = None; k = 5; max_dist = None })
              with
              | Ok (P.Err _) -> ()
              | _ -> Alcotest.fail "unknown doc should be ERR at the coordinator"))))

let dead_shard_degrades () =
  with_cluster (fun ~coord ~front ~shard_servers ->
      let c = Client.connect ~port:(Server.port front) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* Warm path: healthy cluster answers DONE. *)
          (match
             Client.request c
               (P.Evaluate
                  { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None })
           with
          | Ok (P.Items { timed_out = false; partial = false; items }) ->
              Alcotest.(check bool) "healthy answer nonempty" true (items <> [])
          | _ -> Alcotest.fail "healthy cluster should answer DONE");
          Alcotest.(check int) "no errors while healthy" 0
            (Coordinator.shard_errors_total coord);
          (* Kill shard 1 mid-flight and ask again: the answer must
             degrade to PARTIAL within the deadline, with the surviving
             shard's items intact, and the error counter must move. *)
          Server.stop shard_servers.(1);
          (match
             Client.request ~deadline_ms:3_000 c
               (P.Evaluate
                  { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None })
           with
          | Ok (P.Items { partial = true; items; _ }) ->
              Alcotest.(check bool) "surviving shard still contributes" true (items <> [])
          | Ok r ->
              Alcotest.failf "expected PARTIAL with a dead shard, got %s"
                (String.concat "|" (P.response_lines r))
          | Error e -> Alcotest.failf "coordinator must not fail the query: %s" e);
          Alcotest.(check bool) "failed attempts counted" true
            (Coordinator.shard_errors_total coord > 0);
          let metrics = String.concat "\n" (Coordinator.metric_lines coord ()) in
          Alcotest.(check bool) "error series exported" true
            (Astring.String.is_infix ~affix:"flix_shard_errors_total{shard=\"1\"" metrics);
          Alcotest.(check bool) "fanout histogram exported" true
            (Astring.String.is_infix ~affix:"flix_shard_fanout_latency_ms_bucket" metrics);
          (* The coordinator endpoint itself stays healthy. *)
          Alcotest.(check bool) "front survives" true (Client.ping c)))

(* The EVALUATE result cache: a repeated query replays the very same
   merge without touching a shard; degraded answers are never cached. *)
let query_cache_hits () =
  with_cluster ~query_cache:16 (fun ~coord ~front ~shard_servers ->
      let c = Client.connect ~port:(Server.port front) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let q =
            P.Evaluate
              { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None }
          in
          let first =
            match Client.request c q with
            | Ok (P.Items { timed_out = false; partial = false; items }) -> items
            | _ -> Alcotest.fail "first ask should answer DONE"
          in
          Alcotest.(check bool) "first ask nonempty" true (first <> []);
          let rpcs_after_miss = Coordinator.probe_rpcs_total coord in
          (match Client.request c q with
          | Ok (P.Items { timed_out = false; partial = false; items }) ->
              Alcotest.(check bool) "replay is identical" true (items = first)
          | _ -> Alcotest.fail "second ask should answer DONE");
          Alcotest.(check int) "replay asked no shard" rpcs_after_miss
            (Coordinator.probe_rpcs_total coord);
          (match Coordinator.query_cache_stats coord with
          | Some s ->
              Alcotest.(check int) "one hit" 1 s.Fx_shard.Coord_cache.hits;
              Alcotest.(check int) "one miss" 1 s.misses;
              Alcotest.(check bool) "entry stored" true (s.entries >= 1)
          | None -> Alcotest.fail "cache stats should be available");
          let metrics = String.concat "\n" (Coordinator.metric_lines coord ()) in
          Alcotest.(check bool) "hits exported" true
            (Astring.String.is_infix ~affix:"flix_coord_cache_hits_total 1" metrics);
          (* A degraded merge must not land in the cache: kill a shard,
             ask a fresh query, and check only the clean entry remains. *)
          Server.stop shard_servers.(1);
          (match
             Client.request ~deadline_ms:3_000 c
               (P.Evaluate
                  { start_tag = "inproceedings"; target_tag = "cite"; k = 100; max_dist = None })
           with
          | Ok (P.Items { partial = true; _ }) -> ()
          | Ok r ->
              Alcotest.failf "expected PARTIAL with a dead shard, got %s"
                (String.concat "|" (P.response_lines r))
          | Error e -> Alcotest.failf "coordinator must not fail the query: %s" e);
          match Coordinator.query_cache_stats coord with
          | Some s ->
              Alcotest.(check int) "degraded merge not cached" 1 s.Fx_shard.Coord_cache.entries
          | None -> Alcotest.fail "cache stats should be available"))

(* A shard dying mid-pipeline must not poison the probe caches: after it
   comes back (same port), the same questions get the same answers a
   never-degraded cluster gives. *)
let dead_shard_no_cache_poison () =
  with_cluster (fun ~coord ~front ~shard_servers ->
      let c = Client.connect ~port:(Server.port front) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let q =
            P.Evaluate
              { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None }
          in
          let conn_pairs = List.init 12 (fun i -> ((i * 131) mod 1500, (i * 613) mod 1500)) in
          let ask_conns () =
            List.map
              (fun (a, b) ->
                match
                  Client.request ~deadline_ms:3_000 c
                    (P.Connected { a; b; max_dist = None })
                with
                | Ok r -> r
                | Error e -> Alcotest.failf "connected %d %d failed: %s" a b e)
              conn_pairs
          in
          let healthy_eval =
            match Client.request c q with
            | Ok (P.Items { timed_out = false; partial = false; items }) -> items
            | _ -> Alcotest.fail "healthy cluster should answer DONE"
          in
          let healthy_conns = ask_conns () in
          (* Kill shard 1, run the same load degraded — every probe into
             shard 1 now fails, and none of those failures may stick. *)
          let port1 = Server.port shard_servers.(1) in
          Server.stop shard_servers.(1);
          (match Client.request ~deadline_ms:3_000 c q with
          | Ok (P.Items { partial = true; _ }) -> ()
          | _ -> Alcotest.fail "dead shard should degrade the evaluate");
          ignore (ask_conns () : P.response list);
          (* Bring shard 1 back on the same port and re-ask: the answers
             must match the healthy run exactly. *)
          shard_servers.(1) <-
            Server.start
              ~config:{ Server.default_config with port = port1 }
              (Lazy.force shard_flixes).(1);
          (match Client.request ~deadline_ms:3_000 c q with
          | Ok (P.Items { timed_out = false; partial = false; items }) ->
              Alcotest.(check bool) "recovered evaluate matches healthy" true
                (normal items = normal healthy_eval)
          | Ok r ->
              Alcotest.failf "recovered cluster should answer DONE, got %s"
                (String.concat "|" (P.response_lines r))
          | Error e -> Alcotest.failf "recovered evaluate failed: %s" e);
          List.iter2
            (fun (a, b) want ->
              match
                Client.request ~deadline_ms:3_000 c
                  (P.Connected { a; b; max_dist = None })
              with
              | Ok got ->
                  Alcotest.(check (list string))
                    (Printf.sprintf "recovered connected %d %d" a b)
                    (P.response_lines want) (P.response_lines got)
              | Error e -> Alcotest.failf "recovered connected %d %d failed: %s" a b e)
            conn_pairs healthy_conns;
          ignore coord))

(* --- closure fast path vs probed baseline ----------------------------- *)

(* Boot two coordinators over the same disk shards: one probing portal
   distances over the wire, one joining closure labels. The closure path
   is only correct if it renders byte-identical responses. *)
let with_two_coordinators ~plan ?probed_plan ~closure colls f =
  with_disk_servers (Array.to_list colls) (fun shard_servers ->
      let shards = List.map (fun s -> ("127.0.0.1", Server.port s)) shard_servers in
      let probed =
        Coordinator.create ~plan:(Option.value probed_plan ~default:plan) ~shards ()
      in
      let fast = Coordinator.create ~closure ~plan ~shards () in
      Fun.protect
        ~finally:(fun () ->
          Coordinator.close probed;
          Coordinator.close fast)
        (fun () ->
          let fp = Server.start_backend (Server.Custom (Coordinator.backend probed)) in
          let ff = Server.start_backend (Server.Custom (Coordinator.backend fast)) in
          Fun.protect
            ~finally:(fun () ->
              Server.stop fp;
              Server.stop ff)
            (fun () ->
              let pc = Client.connect ~port:(Server.port fp) () in
              let fc = Client.connect ~port:(Server.port ff) () in
              Fun.protect
                ~finally:(fun () ->
                  Client.close pc;
                  Client.close fc)
                (fun () -> f ~probed ~fast ~pc ~fc))))

let check_identical ~fc ~pc req =
  let what = P.request_line req in
  match (Client.request fc req, Client.request pc req) with
  | Ok f, Ok p ->
      Alcotest.(check (list string))
        (what ^ ": closure path renders byte-identically")
        (P.response_lines p) (P.response_lines f)
  | _ -> Alcotest.failf "%s: transport failure" what

let check_connected ~fc ~pc (a, b) =
  match (Client.connected fc a b, Client.connected pc a b) with
  | Ok (Client.Value f), Ok (Client.Value p) ->
      Alcotest.(check (option int)) (Printf.sprintf "connected %d %d" a b) p f
  | _ -> Alcotest.failf "connected %d %d failed" a b

let closure_matches_probed () =
  let plan = Lazy.force shared_plan in
  let closure = Lazy.force shared_closure in
  (* The probed baseline boots the way a pre-closure deployment would:
     off a v1 manifest, which loads plan-only. *)
  let v1 = Filename.temp_file "fxman1" ".shards" in
  let plan_v1, no_closure =
    Fun.protect
      ~finally:(fun () -> try Sys.remove v1 with Sys_error _ -> ())
      (fun () ->
        Plan.save ~path:v1 plan;
        Closure.load_manifest v1)
  in
  Alcotest.(check bool) "v1 manifest loads closure-less" true (no_closure = None);
  with_two_coordinators ~plan ~probed_plan:plan_v1 ~closure
    (Lazy.force shard_collections)
    (fun ~probed ~fast ~pc ~fc ->
      Alcotest.(check bool) "closure joined" true (Coordinator.has_closure fast);
      Alcotest.(check bool) "baseline probes" false (Coordinator.has_closure probed);
      let roots = Plan.doc_roots plan in
      let links = Plan.cross_links plan in
      let n = Plan.total_nodes plan in
      (* Streams: anchored starts (document roots), interior starts that
         need the one-wave fallback, both directions, tag filters, and
         max_dist cutoffs that exercise the lazy stream fetch. *)
      let streams =
        [
          P.Descendants
            { doc = Dblp.doc_name 0; anchor = None; tag = None; k = 10_000; max_dist = None };
          P.Descendants
            {
              doc = Dblp.doc_name 7;
              anchor = None;
              tag = Some "author";
              k = 10_000;
              max_dist = None;
            };
          P.Node_descendants
            { node = roots.(Array.length roots / 2); tag = None; k = 10_000; max_dist = None };
          P.Node_descendants { node = 40; tag = None; k = 10_000; max_dist = None };
          P.Node_descendants { node = 1234 mod n; tag = Some "cite"; k = 50; max_dist = Some 6 };
          P.Ancestors { node = 40; tag = None; k = 10_000; max_dist = None };
          P.Ancestors { node = 100; tag = Some "article"; k = 10_000; max_dist = None };
          P.Ancestors { node = (n - 1); tag = None; k = 10_000; max_dist = Some 4 };
          P.Evaluate { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None };
          P.Evaluate
            { start_tag = "inproceedings"; target_tag = "cite"; k = 10_000; max_dist = None };
          P.Evaluate { start_tag = "article"; target_tag = "title"; k = 200; max_dist = Some 3 };
          P.Resolve { doc = Dblp.doc_name 3; anchor = None };
        ]
      in
      List.iter (check_identical ~fc ~pc) streams;
      (* CONNECTED over portal endpoints (known cross-shard paths) and a
         deterministic sweep of arbitrary pairs. *)
      let pairs =
        (Array.to_list links
        |> List.filteri (fun i _ -> i mod 5 = 0)
        |> List.concat_map (fun (l : Plan.cross_link) ->
               [ (roots.(0), l.dst); (l.src, l.dst); (l.dst, l.src) ]))
        @ List.init 25 (fun i -> ((i * 131) mod n, (i * 613) mod n))
      in
      List.iter (check_connected ~fc ~pc) pairs;
      (* The counters tell the story: the fast path joined labels and
         never fell back, the baseline fell back on every portal ask and
         paid for it in probe sub-requests. *)
      Alcotest.(check bool) "label joins happened" true
        (Coordinator.closure_lookups_total fast > 0);
      Alcotest.(check int) "no fallbacks with a joined closure" 0
        (Coordinator.closure_fallbacks_total fast);
      Alcotest.(check bool) "baseline counts fallbacks" true
        (Coordinator.closure_fallbacks_total probed > 0);
      Alcotest.(check bool) "closure cuts probe sub-requests" true
        (Coordinator.probe_subs_total fast < Coordinator.probe_subs_total probed);
      let metrics = String.concat "\n" (Coordinator.metric_lines fast ()) in
      List.iter
        (fun series ->
          Alcotest.(check bool) (series ^ " exported") true
            (Astring.String.is_infix ~affix:series metrics))
        [
          "flix_coord_closure_lookups_total";
          "flix_coord_closure_fallbacks_total 0";
          "flix_closure_build_seconds";
          "flix_closure_label_entries";
        ];
      (* A closure built for one plan is dropped — not misapplied — when
         joined against another. *)
      let other = Dblp.collection { Dblp.default with n_docs = 40; seed = 99 } in
      let other_plan = Plan.plan ~n_shards:2 other in
      let stale =
        Coordinator.create ~closure ~plan:other_plan
          ~shards:[ ("127.0.0.1", 1); ("127.0.0.1", 2) ]
          ()
      in
      Fun.protect
        ~finally:(fun () -> Coordinator.close stale)
        (fun () ->
          Alcotest.(check bool) "stale closure dropped" false
            (Coordinator.has_closure stale)))

(* Same exactness contract on a fresh randomized 3-shard split, so the
   2-shard topology is not a lucky special case. *)
let closure_three_shards () =
  let coll = Dblp.collection { Dblp.default with n_docs = 90; seed = 23 } in
  let plan = Plan.plan ~n_shards:3 coll in
  Alcotest.(check int) "three shards" 3 (Plan.n_shards plan);
  Alcotest.(check bool) "plan has cross links" true
    (Array.length (Plan.cross_links plan) > 0);
  let colls = Plan.shard_documents plan coll |> Array.map C.build in
  let closure = closure_of plan (hopis_of colls) in
  with_two_coordinators ~plan ~closure colls (fun ~probed ~fast ~pc ~fc ->
      let roots = Plan.doc_roots plan in
      let links = Plan.cross_links plan in
      let n = Plan.total_nodes plan in
      let streams =
        [
          P.Descendants
            { doc = Dblp.doc_name 1; anchor = None; tag = None; k = 10_000; max_dist = None };
          P.Node_descendants { node = roots.(1); tag = None; k = 10_000; max_dist = None };
          P.Node_descendants { node = 77 mod n; tag = None; k = 10_000; max_dist = None };
          P.Ancestors { node = 55 mod n; tag = None; k = 10_000; max_dist = None };
          P.Evaluate { start_tag = "article"; target_tag = "author"; k = 10_000; max_dist = None };
          P.Evaluate
            { start_tag = "inproceedings"; target_tag = "cite"; k = 10_000; max_dist = None };
        ]
      in
      List.iter (check_identical ~fc ~pc) streams;
      let pairs =
        (Array.to_list links
        |> List.filteri (fun i _ -> i mod 3 = 0)
        |> List.concat_map (fun (l : Plan.cross_link) -> [ (l.src, l.dst); (l.dst, l.src) ]))
        @ List.init 16 (fun i -> ((i * 239) mod n, (i * 467) mod n))
      in
      List.iter (check_connected ~fc ~pc) pairs;
      Alcotest.(check bool) "label joins happened" true
        (Coordinator.closure_lookups_total fast > 0);
      Alcotest.(check int) "no fallbacks" 0 (Coordinator.closure_fallbacks_total fast);
      Alcotest.(check bool) "closure cuts probe sub-requests" true
        (Coordinator.probe_subs_total fast < Coordinator.probe_subs_total probed))

(* --- protocol satellites --------------------------------------------- *)

let deadline_override () =
  let server = Server.start (Lazy.force shared_flix) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let c = Client.connect ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* Default deadline (2 s) would let this nap finish; the
             envelope must cut it short. *)
          (match Client.request ~deadline_ms:0 c (P.Sleep 400) with
          | Ok (P.Items { timed_out = true; _ }) -> ()
          | Ok r ->
              Alcotest.failf "DEADLINE 0 SLEEP should time out, got %s"
                (String.concat "|" (P.response_lines r))
          | Error e -> Alcotest.failf "transport error: %s" e);
          (* And without the envelope the same nap completes. *)
          match Client.request c (P.Sleep 1) with
          | Ok P.Ok_done -> ()
          | _ -> Alcotest.fail "un-overridden sleep should complete"))

let incremental_flush () =
  (* A Custom backend that emits one item, then blocks until released.
     If the server buffered the stream until evaluation finished, the
     client could never read the first ITEM while the worker is still
     blocked — the receive timeout below would trip instead. *)
  let m = Mutex.create () and cond = Condition.create () and released = ref false in
  let release () =
    Mutex.lock m;
    released := true;
    Condition.signal cond;
    Mutex.unlock m
  in
  let custom =
    {
      Server.custom_eval =
        (fun ~emit ~deadline_ns:_ req ->
          match req with
          | P.Evaluate _ ->
              emit { P.node = 1; dist = 0; meta = 0 };
              Mutex.lock m;
              while not !released do
                Condition.wait cond m
              done;
              Mutex.unlock m;
              emit { P.node = 2; dist = 1; meta = 0 };
              P.Items { items = []; timed_out = false; partial = false }
          | _ -> P.Err "unsupported");
      custom_stats = (fun () -> [ "flush fixture" ]);
    }
  in
  let server = Server.start_backend (Server.Custom custom) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          output_string oc "EVALUATE a b 10\n";
          flush oc;
          Alcotest.(check string) "first item flushed while eval still runs" "ITEM 1 0 0"
            (input_line ic);
          release ();
          Alcotest.(check string) "second item" "ITEM 2 1 0" (input_line ic);
          Alcotest.(check string) "trailer" "DONE 2" (input_line ic)))

let client_recv_timeout () =
  (* A server that answers too slowly must surface as a transport error
     on the client within the receive timeout — this is what keeps a
     hung shard from wedging the coordinator's connection pool. *)
  let config = { Server.default_config with deadline_ms = 10_000.0 } in
  let server = Server.start ~config (Lazy.force shared_flix) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let c = Client.connect ~recv_timeout:0.15 ~port:(Server.port server) () in
      let t0 = Fx_util.Stopwatch.now_ns () in
      (match Client.sleep c 5_000 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read should have timed out");
      let waited_ms =
        Int64.to_float (Int64.sub (Fx_util.Stopwatch.now_ns ()) t0) /. 1e6
      in
      Alcotest.(check bool) "timed out promptly, not at the response" true
        (waited_ms < 2_000.0);
      Client.close c;
      (* The server is unharmed; a fresh client gets served. *)
      let c2 = Client.connect ~port:(Server.port server) () in
      Alcotest.(check bool) "server unaffected" true (Client.ping c2);
      Client.close c2)

let () =
  Alcotest.run "shard"
    [
      ( "plan",
        [
          Alcotest.test_case "plan invariants" `Quick plan_invariants;
          Alcotest.test_case "manifest round-trip" `Quick manifest_roundtrip;
          Alcotest.test_case "manifest v2 round-trip" `Quick manifest_v2_roundtrip;
          Alcotest.test_case "coord cache closure epoch" `Quick coord_cache_closure_epoch;
        ] );
      ( "closure",
        [
          Alcotest.test_case "closure matches probed coordinator" `Quick
            closure_matches_probed;
          Alcotest.test_case "closure exact on three shards" `Quick closure_three_shards;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "coordinator matches single server" `Quick
            coordinator_matches_single_server;
          Alcotest.test_case "dead shard degrades to PARTIAL" `Quick dead_shard_degrades;
          Alcotest.test_case "query cache hits" `Quick query_cache_hits;
          Alcotest.test_case "dead shard does not poison caches" `Quick
            dead_shard_no_cache_poison;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "DEADLINE override" `Quick deadline_override;
          Alcotest.test_case "incremental ITEM flushing" `Quick incremental_flush;
          Alcotest.test_case "client receive timeout" `Quick client_recv_timeout;
        ] );
    ]
