(* Tests for the storage substrate: the pager with its LRU buffer pool
   and the heap file, including persistence across reopen and corrupt-
   input handling. *)

module Pager = Fx_store.Pager
module Heap = Fx_store.Heap_file

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_temp_file f =
  let path = Filename.temp_file "fxstore" ".pg" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- pager --------------------------------------------------------------- *)

let test_pager_basic () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      check_int "no pages" 0 (Pager.n_pages p);
      let pg = Pager.append_page p in
      check_int "first page" 0 pg;
      Pager.write p ~page:pg ~offset:10 (Bytes.of_string "hello");
      check_str "readback" "hello" (Bytes.to_string (Pager.read p ~page:pg ~offset:10 ~len:5));
      Pager.close p)

let test_pager_persistence () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let a = Pager.append_page p in
      let b = Pager.append_page p in
      Pager.write p ~page:a ~offset:0 (Bytes.of_string "page-a");
      Pager.write p ~page:b ~offset:64 (Bytes.of_string "page-b");
      Pager.close p;
      let p2 = Pager.create ~page_size:128 path in
      check_int "pages recovered" 2 (Pager.n_pages p2);
      check_str "a persisted" "page-a" (Bytes.to_string (Pager.read p2 ~page:a ~offset:0 ~len:6));
      check_str "b persisted" "page-b" (Bytes.to_string (Pager.read p2 ~page:b ~offset:64 ~len:6));
      Pager.close p2)

let test_pager_pool_eviction () =
  with_temp_file (fun path ->
      Sys.remove path;
      (* Pool of 2 pages in a single stripe: touching 3 pages in
         rotation must evict and write back dirty pages correctly.
         (One stripe so all three pages share one LRU segment —
         otherwise each page gets its own stripe and nothing evicts.) *)
      let p = Pager.create ~pool_pages:2 ~stripes:1 ~page_size:128 path in
      let pages = List.init 3 (fun _ -> Pager.append_page p) in
      List.iteri
        (fun i pg -> Pager.write p ~page:pg ~offset:0 (Bytes.of_string (Printf.sprintf "v%d" i)))
        pages;
      Pager.reset_stats p;
      (* Everything must read back despite the tiny pool. *)
      List.iteri
        (fun i pg ->
          check_str "value survives eviction"
            (Printf.sprintf "v%d" i)
            (Bytes.to_string (Pager.read p ~page:pg ~offset:0 ~len:2)))
        pages;
      let s = Pager.stats p in
      check "some misses" true (s.physical_reads > 0);
      check_int "logical = 3" 3 s.logical_reads;
      Pager.close p)

let test_pager_cold_vs_warm () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let pg = Pager.append_page p in
      Pager.write p ~page:pg ~offset:0 (Bytes.of_string "x");
      Pager.flush p;
      Pager.drop_pool p;
      Pager.reset_stats p;
      ignore (Pager.read p ~page:pg ~offset:0 ~len:1);
      check_int "cold miss" 1 (Pager.stats p).physical_reads;
      ignore (Pager.read p ~page:pg ~offset:0 ~len:1);
      check_int "warm hit" 1 (Pager.stats p).physical_reads;
      check_int "two logical" 2 (Pager.stats p).logical_reads;
      Pager.close p)

let test_pager_bounds () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let pg = Pager.append_page p in
      Alcotest.check_raises "offset overflow"
        (Invalid_argument "Pager.write: out of page bounds") (fun () ->
          Pager.write p ~page:pg ~offset:120 (Bytes.of_string "0123456789"));
      Alcotest.check_raises "page out of range" (Invalid_argument "Pager: page out of range")
        (fun () -> ignore (Pager.read p ~page:7 ~offset:0 ~len:1));
      Pager.close p)

let test_pager_rejects_mismatch () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      Pager.close p;
      match Pager.create ~page_size:256 path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "page-size mismatch accepted")

let test_pager_rejects_garbage () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 128 'z');
      close_out oc;
      match Pager.create ~page_size:128 path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "garbage header accepted")

(* --- pager concurrency and fault injection ------------------------------- *)

(* Hammer one shared pager from 4 domains with mixed reads, rewrites,
   appends, and flushes, through a pool far smaller than the working
   set so eviction write-backs race with everything else. Every write
   fills a whole page with one byte, so any read observing two
   different bytes in a page proves a torn (unlocked) access. *)
let test_pager_domain_stress () =
  with_temp_file (fun path ->
      Sys.remove path;
      let page_size = 128 and n_domains = 4 and base_pages = 16 and rounds = 300 in
      let p = Pager.create ~pool_pages:4 ~page_size path in
      for i = 0 to base_pages - 1 do
        let pg = Pager.append_page p in
        Pager.write p ~page:pg ~offset:0 (Bytes.make page_size (Char.chr (65 + i)))
      done;
      let fill d r = Char.chr (33 + ((d * 31) + r) mod 94) in
      (* Only domain [d] ever writes pages where [pg mod n_domains = d],
         so each slot of [final] has exactly one writer. *)
      let final = Array.make (base_pages + (n_domains * rounds)) None in
      let n_appended = Array.make n_domains 0 in
      let work d () =
        let rng = Fx_util.Rng.create (1000 + d) in
        for r = 0 to rounds - 1 do
          let own = (Fx_util.Rng.int rng (base_pages / n_domains) * n_domains) + d in
          Pager.write p ~page:own ~offset:0 (Bytes.make page_size (fill d r));
          final.(own) <- Some (fill d r);
          let q = Fx_util.Rng.int rng base_pages in
          let b = Pager.read p ~page:q ~offset:0 ~len:page_size in
          let c0 = Bytes.get b 0 in
          if not (Bytes.for_all (fun c -> c = c0) b) then
            failwith (Printf.sprintf "torn read on page %d" q);
          if r mod 50 = 25 then begin
            let np = Pager.append_page p in
            Pager.write p ~page:np ~offset:0 (Bytes.make page_size (fill d (r + 7)));
            final.(np) <- Some (fill d (r + 7));
            n_appended.(d) <- n_appended.(d) + 1
          end;
          if r mod 97 = 0 then Pager.flush p
        done
      in
      let domains = List.init n_domains (fun d -> Domain.spawn (work d)) in
      List.iter Domain.join domains;
      let total = base_pages + Array.fold_left ( + ) 0 n_appended in
      check_int "page count" total (Pager.n_pages p);
      let verify pager =
        for pg = 0 to total - 1 do
          match final.(pg) with
          | None -> ()
          | Some c ->
              let b = Pager.read pager ~page:pg ~offset:0 ~len:page_size in
              if not (Bytes.for_all (fun c' -> c' = c) b) then
                Alcotest.fail (Printf.sprintf "page %d lost its last write" pg)
        done
      in
      verify p;
      Pager.close p;
      (* And everything survived the disk round-trip. *)
      let p2 = Pager.create ~page_size path in
      check_int "pages persisted" total (Pager.n_pages p2);
      verify p2;
      Pager.close p2)

(* Regression for the dirty-evict error path: redirect the stripe's fd
   at /dev/full (reads succeed as zeros, writes fail ENOSPC) so the
   write-back triggered by an eviction fails. The error must reach the
   caller, the dirty page must stay resident, and once the "device"
   recovers a flush must persist it. One stripe so both pages share an
   LRU segment (and a descriptor) and reading [b] really evicts [a]. *)
let test_pager_dirty_evict_enospc () =
  if not (Sys.file_exists "/dev/full") then ()
  else
    with_temp_file (fun path ->
        Sys.remove path;
        let p = Pager.create ~pool_pages:1 ~stripes:1 ~page_size:128 path in
        let a = Pager.append_page p in
        let b = Pager.append_page p in
        Pager.write p ~page:a ~offset:0 (Bytes.of_string "precious");
        let real = Unix.dup (Pager.unsafe_page_fd p ~page:a) in
        let full = Unix.openfile "/dev/full" [ Unix.O_RDWR ] 0 in
        Unix.dup2 full (Pager.unsafe_page_fd p ~page:a);
        Unix.close full;
        (* Reading [b] must evict dirty [a]; the write-back hits ENOSPC. *)
        let raised =
          try
            ignore (Pager.read p ~page:b ~offset:0 ~len:4);
            false
          with Unix.Unix_error (Unix.ENOSPC, _, _) -> true
        in
        check "write-back failure propagates" true raised;
        check_str "dirty page still resident" "precious"
          (Bytes.to_string (Pager.read p ~page:a ~offset:0 ~len:8));
        ignore (Pager.stats p);
        Unix.dup2 real (Pager.unsafe_page_fd p ~page:a);
        Unix.close real;
        Pager.flush p;
        Pager.close p;
        let p2 = Pager.create ~page_size:128 path in
        check_str "persisted once the device recovered" "precious"
          (Bytes.to_string (Pager.read p2 ~page:a ~offset:0 ~len:8));
        Pager.close p2)

(* Same error path via EBADF: the stripe descriptor vanishes under the
   pager (closed behind its back), so the flush's write-back itself
   fails. Flush reports it, the page survives in the pool, and a
   restored descriptor lets the retry succeed. *)
let test_pager_flush_after_fd_loss () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let a = Pager.append_page p in
      Pager.write p ~page:a ~offset:0 (Bytes.of_string "keep-me");
      let real = Unix.dup (Pager.unsafe_page_fd p ~page:a) in
      Unix.close (Pager.unsafe_page_fd p ~page:a);
      let raised =
        try
          Pager.flush p;
          false
        with Unix.Unix_error (Unix.EBADF, _, _) -> true
      in
      check "flush reports the dead fd" true raised;
      check_str "page still resident" "keep-me"
        (Bytes.to_string (Pager.read p ~page:a ~offset:0 ~len:7));
      ignore (Pager.stats p);
      Unix.dup2 real (Pager.unsafe_page_fd p ~page:a);
      Unix.close real;
      Pager.flush p;
      Pager.close p;
      let p2 = Pager.create ~page_size:128 path in
      check_str "persisted after retry" "keep-me"
        (Bytes.to_string (Pager.read p2 ~page:a ~offset:0 ~len:7));
      Pager.close p2)

(* Regression for the fd leak in [Pager.create]: opening a fresh file
   whose header write fails (ENOSPC on /dev/full) must close every
   descriptor it opened on the way out. *)
let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_pager_create_fd_leak () =
  if not (Sys.file_exists "/dev/full" && Sys.file_exists "/proc/self/fd") then ()
  else begin
    let before = count_fds () in
    (match Pager.create ~page_size:128 "/dev/full" with
    | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ()
    | p ->
        Pager.close p;
        Alcotest.fail "header write to /dev/full succeeded");
    check_int "no descriptor leaked" before (count_fds ())
  end

(* The pager must absorb EINTR: a 1 kHz interval timer peppers the
   process with SIGALRM while pager I/O churns through a pool far
   smaller than the working set, so page reads, eviction write-backs,
   and fsyncs all run with signals landing mid-syscall. Without the
   retry loops this surfaces as Unix_error (EINTR, _, _). *)
let test_pager_eintr () =
  with_temp_file (fun path ->
      Sys.remove path;
      let previous = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
      let set_timer v =
        ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = v; it_value = v })
      in
      Fun.protect
        ~finally:(fun () ->
          (* Stop the timer BEFORE restoring the disposition: a pending
             alarm under the default action would kill the process. *)
          set_timer 0.0;
          Sys.set_signal Sys.sigalrm previous)
        (fun () ->
          set_timer 0.001;
          let page_size = 512 in
          let p = Pager.create ~pool_pages:2 ~stripes:1 ~page_size path in
          let n = 8 in
          let pages = Array.init n (fun _ -> Pager.append_page p) in
          for r = 0 to 1999 do
            let pg = pages.(r mod n) in
            let c = Char.chr (33 + (r mod 94)) in
            Pager.write p ~page:pg ~offset:0 (Bytes.make page_size c);
            let b = Pager.read p ~page:pg ~offset:0 ~len:page_size in
            if not (Bytes.for_all (fun c' -> c' = c) b) then
              Alcotest.fail (Printf.sprintf "bad readback on round %d" r);
            if r mod 25 = 0 then Pager.flush p
          done;
          Pager.close p))

(* Hostile offsets and lengths must be rejected up front — including
   the offset = page_size corner (a zero-length write at the page end
   addresses no byte yet used to slip past the bound) and max_int /
   min_int values that would wrap [offset + len]. *)
let test_pager_hostile_bounds () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let pg = Pager.append_page p in
      let expect_invalid name f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail (name ^ ": accepted")
      in
      expect_invalid "write at page_size" (fun () ->
          Pager.write p ~page:pg ~offset:128 Bytes.empty);
      expect_invalid "write past page_size" (fun () ->
          Pager.write p ~page:pg ~offset:129 Bytes.empty);
      expect_invalid "negative write offset" (fun () ->
          Pager.write p ~page:pg ~offset:(-1) (Bytes.of_string "x"));
      expect_invalid "write offset max_int" (fun () ->
          Pager.write p ~page:pg ~offset:max_int (Bytes.of_string "x"));
      expect_invalid "read offset max_int" (fun () ->
          ignore (Pager.read p ~page:pg ~offset:max_int ~len:1));
      expect_invalid "read len max_int" (fun () ->
          ignore (Pager.read p ~page:pg ~offset:1 ~len:max_int));
      expect_invalid "read min_int bounds" (fun () ->
          ignore (Pager.read p ~page:pg ~offset:min_int ~len:min_int));
      (* The legal degenerate case: a zero-length read at the page end. *)
      check_int "empty read at page end" 0
        (Bytes.length (Pager.read p ~page:pg ~offset:128 ~len:0));
      (* Randomised sweep: every (offset, len) pair is either rejected
         with Invalid_argument or lands fully inside the page. *)
      let rng = Fx_util.Rng.create 42 in
      let interesting = [| min_int; -1; 0; 1; 64; 127; 128; 129; 4096; max_int |] in
      let pick () =
        if Fx_util.Rng.int rng 2 = 0 then
          interesting.(Fx_util.Rng.int rng (Array.length interesting))
        else Fx_util.Rng.int rng 300 - 150
      in
      for _ = 1 to 500 do
        let offset = pick () and len = pick () in
        (match Pager.read p ~page:pg ~offset ~len with
        | b ->
            check "accepted read is in bounds" true
              (offset >= 0 && len >= 0 && offset + len <= 128 && Bytes.length b = len)
        | exception Invalid_argument _ -> ());
        let wlen = pick () in
        if wlen >= 0 && wlen <= 4096 then
          match Pager.write p ~page:pg ~offset (Bytes.make wlen 'w') with
          | () ->
              check "accepted write is in bounds" true
                (offset >= 0 && offset < 128 && offset + wlen <= 128)
          | exception Invalid_argument _ -> ()
      done;
      Pager.close p)

(* Striped-pool stress: 4 domains re-read a fixed working set through 8
   stripes with prefetch mixed in, then the counters must cohere — the
   aggregate equals the per-stripe sum, the logical count is exactly
   one per [Pager.read] call, and no stripe ends over capacity. *)
let test_pager_striped_stress () =
  with_temp_file (fun path ->
      Sys.remove path;
      let page_size = 128 and n_domains = 4 and n_pages = 64 and rounds = 50 in
      let p = Pager.create ~pool_pages:16 ~stripes:8 ~page_size path in
      for i = 0 to n_pages - 1 do
        let pg = Pager.append_page p in
        Pager.write p ~page:pg ~offset:0 (Bytes.make page_size (Char.chr (33 + (i mod 94))))
      done;
      Pager.reset_stats p;
      let work d () =
        let rng = Fx_util.Rng.create (77 + d) in
        for r = 0 to rounds - 1 do
          if r mod 10 = d then Pager.prefetch p ~page:(Fx_util.Rng.int rng n_pages) ~count:16;
          for pg = 0 to n_pages - 1 do
            let b = Pager.read p ~page:pg ~offset:0 ~len:page_size in
            let expect = Char.chr (33 + (pg mod 94)) in
            if not (Bytes.for_all (fun c -> c = expect) b) then
              failwith (Printf.sprintf "bad bytes on page %d" pg)
          done
        done
      in
      let domains = List.init n_domains (fun d -> Domain.spawn (work d)) in
      List.iter Domain.join domains;
      let s = Pager.stats p in
      check_int "logical reads are exact" (n_domains * rounds * n_pages) s.logical_reads;
      let per_stripe = Pager.stripe_stats p in
      check_int "eight stripes" 8 (List.length per_stripe);
      check_int "stripe sum = aggregate" s.logical_reads
        (List.fold_left
           (fun acc (st : Pager.stripe_stats) -> acc + st.stripe_logical_reads)
           0 per_stripe);
      List.iter
        (fun (st : Pager.stripe_stats) ->
          check "stripe within capacity" true (st.resident_pages <= st.capacity_pages);
          check "stripe counted its locking" true (st.lock_acquisitions > 0))
        per_stripe;
      Pager.close p)

(* --- heap file -------------------------------------------------------------- *)

let test_heap_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let h = Heap.create p in
      let records = [ "alpha"; String.make 500 'b'; "gamma"; String.make 1000 'd' ] in
      let handles = List.map (Heap.append h) records in
      List.iter2 (fun r hd -> check_str "roundtrip" r (Heap.read h hd)) records handles;
      check_int "payload" (List.fold_left (fun a r -> a + String.length r) 0 records)
        (Heap.size_bytes h);
      Pager.close p)

let test_heap_reopen () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let h = Heap.create p in
      let h1 = Heap.append h "first" in
      let h2 = Heap.append h (String.make 300 'x') in
      Pager.close p;
      let p2 = Pager.create ~page_size:128 path in
      let h' = Heap.create p2 in
      check_str "first persisted" "first" (Heap.read h' h1);
      check_str "second persisted" (String.make 300 'x') (Heap.read h' h2);
      check "last handle recovered" true (Heap.last_handle h' = Some h2);
      (* Appending after reopen continues at the cursor. *)
      let h3 = Heap.append h' "third" in
      check "append after reopen" true (h3 > h2);
      check_str "third" "third" (Heap.read h' h3);
      Pager.close p2)

let test_heap_bad_handles () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let h = Heap.create p in
      ignore (Heap.append h "data");
      let expect_corrupt f =
        match f () with
        | exception Fx_util.Codec.Corrupt _ -> ()
        | _ -> Alcotest.fail "expected Corrupt"
      in
      expect_corrupt (fun () -> Heap.read h (-1));
      expect_corrupt (fun () -> Heap.read h 100_000);
      (* Offset pointing into the middle of the payload: length prefix is
         garbage ("ata…" bytes) or overruns. *)
      expect_corrupt (fun () -> Heap.read h 5);
      Pager.close p)

(* A length prefix smashed to a huge (or negative) value must surface
   as Corrupt from the overflow-safe bound, never wrap into a bogus
   in-range read. *)
let test_heap_smashed_prefix () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:128 path in
      let h = Heap.create p in
      let hd = Heap.append h "victim" in
      check_str "intact before smashing" "victim" (Heap.read h hd);
      (* The record's 4-byte big-endian length lives at byte position
         [hd]: page hd/128, offset hd mod 128. *)
      let smash v =
        let evil = Bytes.create 4 in
        Bytes.set_int32_be evil 0 v;
        Pager.write p ~page:(hd / 128) ~offset:(hd mod 128) evil;
        match Heap.read h hd with
        | exception Fx_util.Codec.Corrupt _ -> ()
        | _ -> Alcotest.fail "mangled length prefix accepted"
      in
      smash Int32.max_int;
      smash (-1l);
      Pager.close p)

(* --- b+tree ------------------------------------------------------------------ *)

module Btree = Fx_store.Btree
module IntMap = Map.Make (Int)

let test_btree_basic () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:256 path in
      let t = Btree.create p in
      check "empty find" true (Btree.find t 5 = None);
      Btree.insert t ~key:5 ~value:50;
      Btree.insert t ~key:1 ~value:10;
      Btree.insert t ~key:9 ~value:90;
      check "find 5" true (Btree.find t 5 = Some 50);
      check "find 1" true (Btree.find t 1 = Some 10);
      check "miss" true (Btree.find t 2 = None);
      check_int "length" 3 (Btree.length t);
      Btree.insert t ~key:5 ~value:55;
      check "overwrite" true (Btree.find t 5 = Some 55);
      check_int "length stable" 3 (Btree.length t);
      Alcotest.(check (list (pair int int))) "range" [ (1, 10); (5, 55) ]
        (Btree.range t ~lo:0 ~hi:5);
      Pager.close p)

let test_btree_splits () =
  with_temp_file (fun path ->
      Sys.remove path;
      (* Page size 256 -> leaf capacity ~14: a thousand keys forces many
         splits and several levels. *)
      let p = Pager.create ~page_size:256 path in
      let t = Btree.create p in
      let n = 1000 in
      (* insert in shuffled order *)
      let keys = Array.init n (fun i -> i) in
      let rng = Fx_util.Rng.create 17 in
      Fx_util.Rng.shuffle rng keys;
      Array.iter (fun k -> Btree.insert t ~key:k ~value:(7 * k)) keys;
      check_int "length" n (Btree.length t);
      check "grew levels" true (Btree.height t >= 3);
      for k = 0 to n - 1 do
        check "find all" true (Btree.find t k = Some (7 * k))
      done;
      Alcotest.(check (list (pair int int))) "range scan"
        (List.init 11 (fun i -> (100 + i, 7 * (100 + i))))
        (Btree.range t ~lo:100 ~hi:110);
      check_int "full scan" n (List.length (Btree.range t ~lo:0 ~hi:max_int));
      Pager.close p)

let test_btree_sequential_orders () =
  (* Ascending and descending insertion orders are the classic split
     worst cases; both must produce correct trees. *)
  List.iter
    (fun descending ->
      with_temp_file (fun path ->
          Sys.remove path;
          let p = Pager.create ~page_size:256 path in
          let t = Btree.create p in
          let n = 600 in
          for i = 0 to n - 1 do
            let k = if descending then n - 1 - i else i in
            Btree.insert t ~key:k ~value:(k * 3)
          done;
          check_int "length" n (Btree.length t);
          for k = 0 to n - 1 do
            check "present" true (Btree.find t k = Some (k * 3))
          done;
          check_int "ordered scan" n (List.length (Btree.range t ~lo:0 ~hi:n));
          let scanned = Btree.range t ~lo:0 ~hi:n in
          check "ascending keys" true (List.sort compare scanned = scanned);
          Pager.close p))
    [ false; true ]

let test_btree_persistence () =
  with_temp_file (fun path ->
      Sys.remove path;
      let p = Pager.create ~page_size:256 path in
      let t = Btree.create p in
      for k = 0 to 499 do
        Btree.insert t ~key:(2 * k) ~value:k
      done;
      Pager.close p;
      let p2 = Pager.create ~page_size:256 path in
      let t2 = Btree.create p2 in
      check_int "length recovered" 500 (Btree.length t2);
      check "find after reopen" true (Btree.find t2 700 = Some 350);
      check "odd keys absent" true (Btree.find t2 701 = None);
      (* inserts continue to work after reopen *)
      Btree.insert t2 ~key:701 ~value:(-1);
      check "insert after reopen" true (Btree.find t2 701 = Some (-1));
      Pager.close p2)

let prop_btree_vs_map =
  Helpers.qtest ~count:30 "btree ≡ Map oracle (insert/find/range)"
    QCheck.(list (pair (int_bound 500) (int_bound 10_000)))
    (fun pairs ->
      with_temp_file (fun path ->
          Sys.remove path;
          let p = Pager.create ~page_size:256 path in
          let t = Btree.create p in
          let oracle =
            List.fold_left
              (fun m (k, v) ->
                Btree.insert t ~key:k ~value:v;
                IntMap.add k v m)
              IntMap.empty pairs
          in
          let ok_finds =
            List.for_all (fun (k, _) -> Btree.find t k = IntMap.find_opt k oracle) pairs
            && Btree.find t 501 = None
            && Btree.length t = IntMap.cardinal oracle
          in
          let expected_range =
            IntMap.fold
              (fun k v acc -> if k >= 100 && k <= 400 then (k, v) :: acc else acc)
              oracle []
            |> List.rev
          in
          let ok_range = Btree.range t ~lo:100 ~hi:400 = expected_range in
          Pager.close p;
          ok_finds && ok_range))

(* --- disk labels ----------------------------------------------------------------- *)

let test_disk_labels_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      let g = Helpers.small_graph () in
      let labels = Fx_index.Two_hop.build g in
      Fx_index.Disk_labels.save ~path labels;
      let disk = Fx_index.Disk_labels.open_ path in
      check_int "nodes" 8 (Fx_index.Disk_labels.n_nodes disk);
      List.iter
        (fun (u, v) ->
          check "same distance" true
            (Fx_index.Disk_labels.distance disk u v = Fx_index.Two_hop.distance labels u v))
        (Helpers.all_pairs 8);
      Fx_index.Disk_labels.close disk)

let test_disk_labels_cold_warm_stats () =
  with_temp_file (fun path ->
      Sys.remove path;
      let g = Helpers.small_graph () in
      Fx_index.Disk_labels.save ~path (Fx_index.Two_hop.build g);
      let disk = Fx_index.Disk_labels.open_ ~pool_pages:4 path in
      Fx_index.Disk_labels.drop_pool disk;
      Fx_index.Disk_labels.reset_stats disk;
      ignore (Fx_index.Disk_labels.distance disk 0 7);
      let cold = (Fx_index.Disk_labels.stats disk).physical_reads in
      check "cold probe reads pages" true (cold > 0);
      ignore (Fx_index.Disk_labels.distance disk 0 7);
      let after = (Fx_index.Disk_labels.stats disk).physical_reads in
      check "warm probe cached" true (after = cold);
      Fx_index.Disk_labels.close disk)

let prop_disk_labels_random =
  Helpers.qtest ~count:20 "disk labels = in-memory labels on random digraphs"
    (Helpers.digraph_arb ~max_n:12 ())
    (fun (n, edges) ->
      with_temp_file (fun path ->
          Sys.remove path;
          let g = Fx_graph.Digraph.of_edges ~n edges in
          let labels = Fx_index.Two_hop.build g in
          Fx_index.Disk_labels.save ~page_size:128 ~path labels;
          let disk = Fx_index.Disk_labels.open_ ~pool_pages:2 ~page_size:128 path in
          let ok =
            List.for_all
              (fun (u, v) ->
                Fx_index.Disk_labels.distance disk u v = Fx_index.Two_hop.distance labels u v)
              (Helpers.all_pairs n)
          in
          Fx_index.Disk_labels.close disk;
          ok))

(* --- disk hopi -------------------------------------------------------------------- *)

let with_temp_prefix f =
  let path = Filename.temp_file "fxhopi" "" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".labels"; path ^ ".tags" ])
    (fun () -> f path)

let test_disk_hopi_full () =
  with_temp_prefix (fun path ->
      let dg =
        { Fx_index.Path_index.graph = Helpers.small_graph (); tag = [| 0; 1; 1; 2; 1; 0; 2; 1 |] }
      in
      let hopi = Fx_index.Hopi.build dg in
      Fx_index.Disk_hopi.save ~page_size:256 ~path dg hopi;
      let disk = Fx_index.Disk_hopi.open_ ~page_size:256 ~path () in
      check_int "nodes" 8 (Fx_index.Disk_hopi.n_nodes disk);
      List.iter
        (fun (u, v) ->
          check "distance matches memory" true
            (Fx_index.Disk_hopi.distance disk u v = Fx_index.Hopi.distance hopi u v))
        (Helpers.all_pairs 8);
      for x = 0 to 7 do
        List.iter
          (fun want ->
            check "descendants match memory" true
              (Fx_index.Disk_hopi.descendants_by_tag disk x want
              = Fx_index.Hopi.descendants_by_tag hopi x want))
          [ None; Some 0; Some 1; Some 2; Some 99 ]
      done;
      Fx_index.Disk_hopi.drop_pools disk;
      check "still answers after pool drop" true
        (Fx_index.Disk_hopi.reachable disk 0 7);
      Fx_index.Disk_hopi.close disk)

let prop_disk_hopi_random =
  Helpers.qtest ~count:15 "disk HOPI = memory HOPI on random digraphs"
    (Helpers.digraph_arb ~max_n:10 ())
    (fun (n, edges) ->
      with_temp_prefix (fun path ->
          let dg = Helpers.data_graph_of (n, edges) ~tag_seed:3 in
          let hopi = Fx_index.Hopi.build dg in
          Fx_index.Disk_hopi.save ~page_size:256 ~path dg hopi;
          let disk = Fx_index.Disk_hopi.open_ ~page_size:256 ~pool_pages:2 ~path () in
          let ok =
            List.for_all
              (fun u ->
                Fx_index.Disk_hopi.descendants_by_tag disk u (Some 1)
                = Fx_index.Hopi.descendants_by_tag hopi u (Some 1))
              (List.init n (fun i -> i))
          in
          Fx_index.Disk_hopi.close disk;
          ok))

let () =
  Alcotest.run "fx_store"
    [
      ( "pager",
        [
          Alcotest.test_case "basic" `Quick test_pager_basic;
          Alcotest.test_case "persistence" `Quick test_pager_persistence;
          Alcotest.test_case "pool eviction" `Quick test_pager_pool_eviction;
          Alcotest.test_case "cold vs warm" `Quick test_pager_cold_vs_warm;
          Alcotest.test_case "bounds" `Quick test_pager_bounds;
          Alcotest.test_case "page size mismatch" `Quick test_pager_rejects_mismatch;
          Alcotest.test_case "garbage header" `Quick test_pager_rejects_garbage;
          Alcotest.test_case "4-domain stress" `Quick test_pager_domain_stress;
          Alcotest.test_case "dirty evict ENOSPC" `Quick test_pager_dirty_evict_enospc;
          Alcotest.test_case "flush after fd loss" `Quick test_pager_flush_after_fd_loss;
          Alcotest.test_case "create fd leak" `Quick test_pager_create_fd_leak;
          Alcotest.test_case "EINTR storm" `Quick test_pager_eintr;
          Alcotest.test_case "hostile bounds" `Quick test_pager_hostile_bounds;
          Alcotest.test_case "striped 4-domain stress" `Quick test_pager_striped_stress;
        ] );
      ( "heap_file",
        [
          Alcotest.test_case "roundtrip" `Quick test_heap_roundtrip;
          Alcotest.test_case "reopen" `Quick test_heap_reopen;
          Alcotest.test_case "bad handles" `Quick test_heap_bad_handles;
          Alcotest.test_case "smashed length prefix" `Quick test_heap_smashed_prefix;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "splits and levels" `Quick test_btree_splits;
          Alcotest.test_case "sequential insert orders" `Quick test_btree_sequential_orders;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
          prop_btree_vs_map;
        ] );
      ( "disk_labels",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_labels_roundtrip;
          Alcotest.test_case "cold/warm stats" `Quick test_disk_labels_cold_warm_stats;
          prop_disk_labels_random;
        ] );
      ( "disk_hopi",
        [
          Alcotest.test_case "full deployment" `Quick test_disk_hopi_full;
          prop_disk_hopi_random;
        ] );
    ]
