(* The hot-reload admin subsystem: snapshot pin/swap lifecycle, delta
   scoping, the scoped EVALUATE/query caches, incremental Flix
   maintenance checked byte-for-byte against cold rebuilds, the admin
   verbs over a live server (including wire framing failure modes), and
   coordinator reload rollback with a dead shard. *)

module C = Fx_xml.Collection
module X = Fx_xml.Xml_types
module Flix = Fx_flix.Flix
module MB = Fx_flix.Meta_builder
module IB = Fx_flix.Index_builder
module RS = Fx_flix.Result_stream
module Pee = Fx_flix.Pee
module Query_cache = Fx_flix.Query_cache
module Snapshot = Fx_admin.Snapshot
module Delta = Fx_admin.Delta
module Eval_cache = Fx_admin.Eval_cache
module Server = Fx_server.Server
module Client = Fx_server.Server_client
module P = Fx_server.Protocol
module Rng = Fx_util.Rng
module Dblp = Fx_workload.Dblp_gen
module Plan = Fx_shard.Shard_plan
module Coordinator = Fx_shard.Coordinator
module Coord_cache = Fx_shard.Coord_cache

(* --- snapshot -------------------------------------------------------- *)

let snapshot_lifecycle () =
  let retired = ref [] in
  let s = Snapshot.create ~retire:(fun v -> retired := v :: !retired) "a" in
  Alcotest.(check int) "starts at epoch 1" 1 (Snapshot.epoch s);
  let e1, v1 = Snapshot.pin s in
  Alcotest.(check int) "pin epoch" 1 e1;
  Alcotest.(check string) "pinned state" "a" v1;
  Alcotest.(check int) "publish bumps the epoch" 2 (Snapshot.publish s "b");
  Alcotest.(check string) "current swapped" "b" (Snapshot.current s);
  Alcotest.(check (list (pair int int)))
    "draining epoch stays visible"
    [ (1, 1); (2, 0) ]
    (Snapshot.pinned s);
  Alcotest.(check int) "one draining entry" 1 (Snapshot.draining_count s);
  Alcotest.(check (list string)) "pinned state not retired" [] !retired;
  Snapshot.unpin s 1;
  Alcotest.(check (list string)) "retired when the last pin drains" [ "a" ] !retired;
  Alcotest.(check (list (pair int int))) "drained" [ (2, 0) ] (Snapshot.pinned s);
  Alcotest.(check int) "publish again" 3 (Snapshot.publish s "c");
  Alcotest.(check (list string))
    "an unpinned state retires at publish" [ "b"; "a" ] !retired;
  match Snapshot.unpin s 999 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unpin of an unknown epoch must raise"

let snapshot_concurrent () =
  let retired = Atomic.make 0 in
  let s = Snapshot.create ~retire:(fun _ -> Atomic.incr retired) 0 in
  let stop = Atomic.make false in
  let pinners =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              let e, _ = Snapshot.pin s in
              Thread.yield ();
              Snapshot.unpin s e
            done)
          ())
  in
  for i = 1 to 50 do
    ignore (Snapshot.publish s i);
    Thread.delay 0.001
  done;
  Atomic.set stop true;
  List.iter Thread.join pinners;
  Alcotest.(check int) "final epoch" 51 (Snapshot.epoch s);
  Alcotest.(check int)
    "every superseded state retired exactly once" 50 (Atomic.get retired);
  Alcotest.(check int) "nothing draining at rest" 0 (Snapshot.draining_count s)

(* --- delta scope ------------------------------------------------------ *)

let delta_scope () =
  let d1 = X.document ~name:"d1" (X.elt "r" [ X.e "a" [] ]) in
  let d2 = X.document ~name:"d2" (X.elt "r" [ X.e "b" [] ]) in
  let old_n = C.n_nodes (C.build [ d1 ]) in
  (match Delta.extend_scope ~old_n_nodes:old_n (C.build [ d1; d2 ]) with
  | Delta.Tags tags ->
      Alcotest.(check bool) "new root tag in scope" true (List.mem "r" tags);
      Alcotest.(check bool) "new child tag in scope" true (List.mem "b" tags);
      Alcotest.(check bool) "old-only tag not in scope" false (List.mem "a" tags)
  | Delta.All -> Alcotest.fail "append without links must be tag-bounded");
  (* a new document linking into the old range is unbounded *)
  let d3 =
    X.document ~name:"d3" (X.elt "r" [ X.e ~attrs:[ ("href", "d1") ] "cite" [] ])
  in
  (match Delta.extend_scope ~old_n_nodes:old_n (C.build [ d1; d3 ]) with
  | Delta.All -> ()
  | Delta.Tags _ -> Alcotest.fail "new->old link must be All");
  (* an old dangling href resolving against the new document is too *)
  let d4 =
    X.document ~name:"d4" (X.elt "r" [ X.e ~attrs:[ ("href", "d5") ] "cite" [] ])
  in
  let d5 = X.document ~name:"d5" (X.elt "r" []) in
  let old_n4 = C.n_nodes (C.build [ d4 ]) in
  match Delta.extend_scope ~old_n_nodes:old_n4 (C.build [ d4; d5 ]) with
  | Delta.All -> ()
  | Delta.Tags _ -> Alcotest.fail "old->new link must be All"

(* --- eval cache ------------------------------------------------------- *)

let key ?(target = Some "b") ?(k = 10) ?(max_dist = -1) start =
  { Eval_cache.start_tag = start; target_tag = target; k; max_dist }

let eval_cache_scoped_invalidation () =
  let t = Eval_cache.create ~capacity:16 in
  Alcotest.(check (option int)) "cold miss" None (Eval_cache.find t (key "a"));
  Eval_cache.store t (key "a") 1;
  Eval_cache.store t (key ~target:(Some "c") "b") 2;
  Eval_cache.store t (key ~target:None "d") 3;
  Eval_cache.store t (key "e") 4;
  Alcotest.(check int) "resident" 4 (Eval_cache.length t);
  Alcotest.(check (option int)) "hit" (Some 1) (Eval_cache.find t (key "a"));
  Alcotest.(check int) "hits" 1 (Eval_cache.hits t);
  Alcotest.(check int) "misses" 1 (Eval_cache.misses t);
  (* touching tag "c" drops the entry with target "c" and the wildcard *)
  Eval_cache.invalidate_tags t [ "c" ];
  Alcotest.(check (option int))
    "start/target disjoint from delta stays warm" (Some 1)
    (Eval_cache.find t (key "a"));
  Alcotest.(check (option int))
    "touched target dropped" None
    (Eval_cache.find t (key ~target:(Some "c") "b"));
  Alcotest.(check (option int))
    "wildcard target dropped" None
    (Eval_cache.find t (key ~target:None "d"));
  Alcotest.(check int) "two entries invalidated" 2 (Eval_cache.invalidated t);
  (* start-tag matches invalidate too *)
  Eval_cache.invalidate_tags t [ "e" ];
  Alcotest.(check (option int))
    "touched start dropped" None
    (Eval_cache.find t (key "e"));
  (* map_values rewrites in place without touching the counters *)
  let hits = Eval_cache.hits t and misses = Eval_cache.misses t in
  Eval_cache.map_values t (fun v -> v + 100);
  Alcotest.(check (option int)) "rewritten" (Some 101) (Eval_cache.find t (key "a"));
  Alcotest.(check int) "hits preserved" (hits + 1) (Eval_cache.hits t);
  Alcotest.(check int) "misses preserved" misses (Eval_cache.misses t);
  (* clear keeps the counters but drops everything *)
  Eval_cache.clear t;
  Alcotest.(check int) "empty" 0 (Eval_cache.length t);
  Alcotest.(check bool) "counters survive clear" true (Eval_cache.hits t > 0)

(* --- incremental Flix vs cold rebuild -------------------------------- *)

let tag_pool = [| "sec"; "para"; "fig"; "cite"; "note" |]

(* A random small document; elements may carry href links to any name in
   [link_targets] — including documents that a later step removes, so
   the dangling-reference path is exercised. *)
let gen_doc rng ~name ~link_targets =
  let n_targets = List.length link_targets in
  let rec gen depth =
    let tag = tag_pool.(Rng.int rng (Array.length tag_pool)) in
    let attrs =
      if n_targets > 0 && Rng.int rng 4 = 0 then
        [ ("href", List.nth link_targets (Rng.int rng n_targets)) ]
      else []
    in
    let n_children = if depth >= 3 then 0 else Rng.int rng 3 in
    X.e ~attrs tag (List.init n_children (fun _ -> gen (depth + 1)))
  in
  X.document ~name (X.elt "doc" (List.init (1 + Rng.int rng 3) (fun _ -> gen 1)))

let items_of flix ~start_tag ~target_tag =
  Flix.evaluate flix ~start_tag ~target_tag
  |> RS.take 200
  |> List.map (fun (it : Pee.item) -> (it.node, it.dist, it.meta))

let check_equivalent what inc cold =
  List.iter
    (fun (start_tag, target_tag) ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "%s: %s//%s byte-identical" what start_tag target_tag)
        (items_of cold ~start_tag ~target_tag)
        (items_of inc ~start_tag ~target_tag))
    [ ("sec", "cite"); ("doc", "para"); ("para", "fig"); ("sec", "note");
      ("doc", "cite") ]

let incremental_matches_cold () =
  let rng = Rng.create 42 in
  for round = 0 to 4 do
    let names n prefix =
      List.init n (fun i -> Printf.sprintf "%s%d_%d" prefix round i)
    in
    let base_names = names 6 "base" and extra_names = names 4 "new" in
    let all_names = base_names @ extra_names in
    let mk name = gen_doc rng ~name ~link_targets:all_names in
    let base = List.map mk base_names and extra = List.map mk extra_names in
    (* extend only *)
    let extended = Flix.extend (Flix.build (C.build base)) extra in
    check_equivalent
      (Printf.sprintf "round %d extend" round)
      extended
      (Flix.build (C.build (base @ extra)));
    (* extend then remove, with links still pointing at the victims *)
    let victims = [ List.nth base_names 1; List.nth extra_names 0 ] in
    let survivors =
      List.filter
        (fun (d : X.document) -> not (List.mem d.name victims))
        (base @ extra)
    in
    check_equivalent
      (Printf.sprintf "round %d extend+remove" round)
      (Flix.remove extended victims)
      (Flix.build (C.build survivors))
  done

(* The acceptance counters: a meta-document-local delta must not rebuild
   untouched indexes. Under Naive (one meta document per document) an
   appended document leaves every old index digest-stable; under
   Spanning_ppo (one collection-wide PPO) the single index is extended
   in place rather than rebuilt. *)
let extend_reuses_and_extends () =
  let rng = Rng.create 9 in
  let base =
    List.init 5 (fun i ->
        gen_doc rng ~name:(Printf.sprintf "b%d" i) ~link_targets:[])
  in
  let fresh = [ gen_doc rng ~name:"fresh" ~link_targets:[] ] in
  let naive = Flix.extend (Flix.build ~config:MB.Naive (C.build base)) fresh in
  Alcotest.(check int)
    "Naive: every untouched meta-document index reused" 5
    (IB.reused_count (Flix.built naive));
  check_equivalent "naive extend" naive
    (Flix.build ~config:MB.Naive (C.build (base @ fresh)));
  let ppo = Flix.extend (Flix.build ~config:MB.Spanning_ppo (C.build base)) fresh in
  Alcotest.(check int)
    "Spanning_ppo: the collection-wide index delta-extended in place" 1
    (IB.extended_count (Flix.built ppo));
  check_equivalent "spanning-ppo extend" ppo
    (Flix.build ~config:MB.Spanning_ppo (C.build (base @ fresh)))

(* --- query cache: scoped invalidation and rebase ---------------------- *)

let query_cache_scoped () =
  let rng = Rng.create 17 in
  let docs =
    List.init 4 (fun i -> gen_doc rng ~name:(Printf.sprintf "q%d" i) ~link_targets:[])
  in
  let coll = C.build docs in
  let flix = Flix.build coll in
  let cite = Option.get (C.tag_id coll "cite")
  and para = Option.get (C.tag_id coll "para") in
  let qc = Query_cache.create (Flix.pee flix) in
  let start = 0 in
  let run tag = Query_cache.descendants ~tag qc ~start |> RS.take 50 in
  let r_cite = run cite and r_para = run para in
  ignore (run cite);
  let s = Query_cache.stats qc in
  Alcotest.(check int) "two entries" 2 s.entries;
  Alcotest.(check int) "one hit" 1 s.hits;
  Query_cache.invalidate_tags qc [ cite ];
  let s = Query_cache.stats qc in
  Alcotest.(check int) "cite entry dropped, para kept" 1 s.entries;
  Alcotest.(check bool)
    "recomputed answer identical" true
    (run cite = r_cite);
  (* rebase carries the kept entries to a cache over a new engine *)
  let qc' =
    Query_cache.rebase qc ~pee:(Flix.pee flix)
      ~keep:(fun ~tag -> match tag with Some t -> t = para | None -> false)
  in
  let s' = Query_cache.stats qc' in
  Alcotest.(check int) "rebase kept the para entry" 1 s'.entries;
  Alcotest.(check bool) "rebased entry replays" true (Query_cache.descendants ~tag:para qc' ~start |> RS.take 50 = r_para);
  Alcotest.(check int) "replay was a hit" (s'.hits + 1) ((Query_cache.stats qc').hits)

let coord_cache_scoped () =
  let t = Coord_cache.create ~capacity:8 () in
  let store s tt = Coord_cache.store t ~start_tag:s ~target_tag:tt ~k:5 ~max_dist:None [] in
  let find s tt = Coord_cache.find t ~start_tag:s ~target_tag:tt ~k:5 ~max_dist:None in
  store "a" "b";
  store "c" "d";
  store "e" "c";
  Coord_cache.invalidate_tags t [ "c" ];
  Alcotest.(check bool) "untouched pair stays warm" true (find "a" "b" <> None);
  Alcotest.(check bool) "touched start dropped" false (find "c" "d" <> None);
  Alcotest.(check bool) "touched target dropped" false (find "e" "c" <> None);
  let s = Coord_cache.stats t in
  Alcotest.(check int) "no epoch bump" 0 s.epoch

(* --- admin verbs over a live server ----------------------------------- *)

let render = function
  | Ok resp -> String.concat "\n" (P.response_lines resp)
  | Error e -> Alcotest.failf "transport error: %s" e

let base_xml =
  [
    ("ad0", "<doc><sec><cite href=\"ad1\"></cite></sec><para></para></doc>");
    ("ad1", "<doc><sec><note></note></sec></doc>");
  ]

let parse_docs docs =
  List.map
    (fun (name, body) ->
      match Fx_xml.Xml_parser.parse ~name body with
      | Ok d -> d
      | Error e ->
          Alcotest.failf "test bug: %s does not parse: %s" name
            (Fx_xml.Xml_parser.error_to_string e))
    docs

let with_backend_server ?config ?admin backend f =
  let server = Server.start_backend ?config ?admin backend in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let c = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f server c))

let expect_value what = function
  | Ok (Client.Value v) -> v
  | Ok Client.Busy -> Alcotest.failf "%s: busy" what
  | Ok (Client.Server_error e) -> Alcotest.failf "%s: server error %s" what e
  | Error e -> Alcotest.failf "%s: %s" what e

let expect_server_error what = function
  | Ok (Client.Server_error e) -> e
  | Ok (Client.Value _) -> Alcotest.failf "%s: unexpectedly succeeded" what
  | Ok Client.Busy -> Alcotest.failf "%s: busy" what
  | Error e -> Alcotest.failf "%s: transport error %s" what e

let metric_value lines name =
  List.find_map
    (fun l ->
      match String.split_on_char ' ' (String.trim l) with
      | [ n; v ] when n = name -> int_of_string_opt v
      | _ -> None)
    lines

let server_ingest_evict_epoch () =
  let flix = Flix.build (C.build (parse_docs base_xml)) in
  with_backend_server (Server.In_memory flix) (fun server c ->
      Alcotest.(check int) "initial epoch" 1 (expect_value "epoch" (Client.epoch c));
      let msg = expect_server_error "reload" (Client.reload c) in
      Alcotest.(check bool) "RELOAD unconfigured says so" true
        (Astring.String.is_infix ~affix:"not configured" msg);
      (* ingest two documents, one linking into the old collection *)
      let extra =
        [
          ("ad2", "<doc><sec><cite href=\"ad0\"></cite></sec></doc>");
          ("ad3", "<doc><para><fig></fig></para></doc>");
        ]
      in
      Alcotest.(check int) "ingest swaps to epoch 2" 2
        (expect_value "ingest" (Client.ingest c extra));
      Alcotest.(check int) "EPOCH agrees" 2 (expect_value "epoch" (Client.epoch c));
      Alcotest.(check int) "server-side epoch" 2 (Server.epoch server);
      (* post-swap answers are byte-identical to a cold-started server
         over the merged collection *)
      let cold = Flix.build (C.build (parse_docs (base_xml @ extra))) in
      with_backend_server (Server.In_memory cold) (fun _ cc ->
          List.iter
            (fun req ->
              Alcotest.(check string)
                (P.request_line req) (render (Client.request cc req))
                (render (Client.request c req)))
            [
              P.Descendants
                { doc = "ad2"; anchor = None; tag = None; k = 50; max_dist = None };
              P.Descendants
                {
                  doc = "ad0";
                  anchor = None;
                  tag = Some "cite";
                  k = 10;
                  max_dist = None;
                };
              P.Evaluate
                { start_tag = "sec"; target_tag = "cite"; k = 20; max_dist = None };
              P.Resolve { doc = "ad3"; anchor = None };
            ]);
      (* failure modes leave the epoch alone and the connection alive *)
      let msg = expect_server_error "dup ingest" (Client.ingest c [ List.hd extra ]) in
      Alcotest.(check bool) "duplicate name rejected" true
        (Astring.String.is_infix ~affix:"ad2" msg);
      let _ = expect_server_error "evict unknown" (Client.evict c [ "nope" ]) in
      Alcotest.(check int) "failed mutations do not swap" 2
        (expect_value "epoch" (Client.epoch c));
      (* evict and verify the document is gone *)
      Alcotest.(check int) "evict swaps to epoch 3" 3
        (expect_value "evict" (Client.evict c [ "ad2" ]));
      (match
         Client.descendants c ~doc:"ad2" ~k:3 ()
       with
      | Ok (Client.Server_error _) -> ()
      | _ -> Alcotest.fail "evicted document must be unknown");
      (* the metrics plane exports the snapshot series *)
      let lines =
        match Client.metrics c with
        | Ok (Client.Value ls) -> ls
        | _ -> Alcotest.fail "metrics"
      in
      Alcotest.(check (option int))
        "flix_snapshot_epoch gauge" (Some 3)
        (metric_value lines "flix_snapshot_epoch");
      Alcotest.(check bool) "reload histogram counted the swaps" true
        (match metric_value lines "flix_reload_duration_seconds_count" with
        | Some n -> n >= 2
        | None -> false);
      Alcotest.(check bool) "pinned gauge present" true
        (List.exists
           (fun l ->
             Astring.String.is_prefix ~affix:"flix_snapshot_pinned{epoch=" l)
           lines);
      Alcotest.(check bool) "connection survived every swap" true (Client.ping c))

(* Scoped invalidation keeps unaffected EVALUATE entries warm across a
   tag-bounded swap: the second ask after the swap is still a cache hit. *)
let server_eval_cache_warm_across_swap () =
  let flix = Flix.build (C.build (parse_docs base_xml)) in
  with_backend_server (Server.In_memory flix) (fun _ c ->
      let hits () =
        match Client.metrics c with
        | Ok (Client.Value ls) ->
            Option.value ~default:(-1)
              (metric_value ls "flix_eval_cache_hits_total")
        | _ -> Alcotest.fail "metrics"
      in
      let ask () =
        match
          Client.evaluate c ~start_tag:"sec" ~target_tag:"cite" ~k:5 ()
        with
        | Ok (Client.Value (items, _)) -> items
        | _ -> Alcotest.fail "evaluate"
      in
      let first = ask () in
      let warm = ask () in
      Alcotest.(check bool) "warm answer identical" true (warm = first);
      Alcotest.(check int) "second ask hit the cache" 1 (hits ());
      (* the ingested document touches only disjoint tags *)
      Alcotest.(check int) "tag-bounded swap" 2
        (expect_value "ingest"
           (Client.ingest c [ ("zz0", "<doc><zzz></zzz></doc>") ]));
      let after = ask () in
      Alcotest.(check bool) "post-swap answer identical" true (after = first);
      Alcotest.(check int) "post-swap ask was still a hit" 2 (hits ());
      (* an unbounded swap (evict) flushes the entry: next ask misses *)
      Alcotest.(check int) "evict" 3 (expect_value "evict" (Client.evict c [ "zz0" ]));
      ignore (ask ());
      Alcotest.(check int) "no hit after a scope-All swap" 2 (hits ()))

(* RELOAD through the admin hooks: the swap serves the hook's backend,
   the old one is retired exactly once, and a failing hook answers ERR
   with the old epoch intact. *)
let server_reload_hook () =
  let flix = Flix.build (C.build (parse_docs base_xml)) in
  let replacement =
    Flix.build
      (C.build (parse_docs (base_xml @ [ ("adr", "<doc><sec></sec></doc>") ])))
  in
  let retired = Atomic.make 0 in
  let fail_now = ref false in
  let admin =
    {
      Server.admin_reload =
        (fun () ->
          if !fail_now then Error "deployment directory gone"
          else Ok (Server.In_memory replacement));
      admin_retire = (fun _ -> Atomic.incr retired);
    }
  in
  with_backend_server ~admin (Server.In_memory flix) (fun _ c ->
      Alcotest.(check int) "reload swaps" 2 (expect_value "reload" (Client.reload c));
      (match Client.request c (P.Resolve { doc = "adr"; anchor = None }) with
      | Ok (P.Items { items = [ _ ]; _ }) -> ()
      | other -> Alcotest.failf "new document not served: %s" (render other));
      (* the old backend drains immediately (no pinned requests left) *)
      let rec wait n =
        if Atomic.get retired = 1 then ()
        else if n = 0 then Alcotest.fail "old backend never retired"
        else begin
          Thread.delay 0.01;
          wait (n - 1)
        end
      in
      wait 100;
      fail_now := true;
      let msg = expect_server_error "failing reload" (Client.reload c) in
      Alcotest.(check bool) "hook error surfaces" true
        (Astring.String.is_infix ~affix:"deployment directory gone" msg);
      Alcotest.(check int) "epoch unchanged after failure" 2
        (expect_value "epoch" (Client.epoch c));
      Alcotest.(check bool) "connection alive" true (Client.ping c))

(* INGEST wire framing failure modes, against a raw socket. *)
let server_ingest_framing () =
  let flix = Flix.build (C.build (parse_docs base_xml)) in
  let config = { Server.default_config with max_ingest_lines = 4; workers = 1 } in
  let server = Server.start_backend ~config (Server.In_memory flix) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let connect () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
        (fd, Unix.out_channel_of_descr fd, Unix.in_channel_of_descr fd)
      in
      let send oc lines =
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        flush oc
      in
      (* an oversized document is consumed whole, answered with one ERR,
         and the connection keeps serving *)
      let fd, oc, ic = connect () in
      send oc
        ([ "INGEST 1"; "DOC big 10" ] @ List.init 10 (fun _ -> "<doc></doc>"));
      let reply = input_line ic in
      Alcotest.(check bool)
        (Printf.sprintf "oversized doc answers ERR, got %S" reply)
        true
        (Astring.String.is_prefix ~affix:"ERR" reply);
      send oc [ "PING" ];
      Alcotest.(check string) "connection survives the oversized doc" "PONG"
        (input_line ic);
      Unix.close fd;
      (* a malformed DOC header desynchronizes the framing: ERR, then
         the server closes the connection *)
      let fd, oc, ic = connect () in
      send oc [ "INGEST 2"; "this is not a doc header" ];
      let reply = input_line ic in
      Alcotest.(check bool)
        (Printf.sprintf "malformed header answers ERR, got %S" reply)
        true
        (Astring.String.is_prefix ~affix:"ERR" reply);
      (match input_line ic with
      | exception End_of_file -> ()
      | l -> Alcotest.failf "connection must close after a framing error, got %S" l);
      Unix.close fd)

(* --- coordinator hot reload ------------------------------------------- *)

let coordinator_reload () =
  let coll = Dblp.collection { Dblp.default with n_docs = 60; seed = 3 } in
  let plan = Plan.plan ~n_shards:2 coll in
  let shard_flixes =
    Plan.shard_documents plan coll |> Array.map (fun docs -> Flix.build (C.build docs))
  in
  let admin_for fx =
    {
      Server.admin_reload = (fun () -> Ok (Server.In_memory fx));
      admin_retire = (fun _ -> ());
    }
  in
  let shard_servers =
    Array.map
      (fun fx -> Server.start_backend ~admin:(admin_for fx) (Server.In_memory fx))
      shard_flixes
  in
  let shards =
    Array.to_list shard_servers |> List.map (fun s -> ("127.0.0.1", Server.port s))
  in
  let coords = ref [] in
  let track c =
    coords := c :: !coords;
    c
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Coordinator.close !coords;
      Array.iter Server.stop shard_servers)
    (fun () ->
      let coord = ref (track (Coordinator.create ~plan ~shards ())) in
      let admin =
        {
          Server.admin_reload =
            (fun () ->
              match Coordinator.reload !coord ~plan with
              | Error e -> Error e
              | Ok fresh ->
                  coord := track fresh;
                  Ok (Server.Custom (Coordinator.backend fresh)));
          admin_retire = (fun _ -> ());
        }
      in
      let front =
        Server.start_backend ~admin (Server.Custom (Coordinator.backend !coord))
      in
      Fun.protect
        ~finally:(fun () -> Server.stop front)
        (fun () ->
          let c = Client.connect ~port:(Server.port front) () in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let q =
                P.Evaluate
                  {
                    start_tag = "inproceedings";
                    target_tag = "author";
                    k = 5;
                    max_dist = None;
                  }
              in
              let before = render (Client.request c q) in
              (* all shards up: the reload sweeps and swaps cleanly *)
              Alcotest.(check int) "reload swaps the coordinator" 2
                (expect_value "reload" (Client.reload c));
              Alcotest.(check string) "post-swap answer identical" before
                (render (Client.request c q));
              (* a dead shard fails the probe: clean ERR naming the
                 shard, framing intact, no mixed state *)
              Server.stop shard_servers.(1);
              let msg = expect_server_error "reload" (Client.reload c) in
              Alcotest.(check bool)
                (Printf.sprintf "error names the dead shard: %s" msg)
                true
                (Astring.String.is_infix ~affix:"shard 1" msg);
              Alcotest.(check int) "old epoch keeps serving" 2
                (expect_value "epoch" (Client.epoch c));
              Alcotest.(check bool) "connection alive" true (Client.ping c))))

(* Coordinator.reload alone: rollback leaves the old coordinator whole. *)
let coordinator_reload_rollback () =
  let coll = Dblp.collection { Dblp.default with n_docs = 40; seed = 8 } in
  let plan = Plan.plan ~n_shards:2 coll in
  let shard_flixes =
    Plan.shard_documents plan coll |> Array.map (fun docs -> Flix.build (C.build docs))
  in
  let shard_servers =
    Array.map (fun fx -> Server.start_backend (Server.In_memory fx)) shard_flixes
  in
  let shards =
    Array.to_list shard_servers |> List.map (fun s -> ("127.0.0.1", Server.port s))
  in
  let coord = Coordinator.create ~plan ~shards () in
  Fun.protect
    ~finally:(fun () ->
      Coordinator.close coord;
      Array.iter Server.stop shard_servers)
    (fun () ->
      (* these shard servers have no admin hooks: the RELOAD sweep is
         refused mid-flight and the caller keeps the old coordinator *)
      (match Coordinator.reload coord ~plan with
      | Ok _ -> Alcotest.fail "reload must fail when a shard refuses"
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "refusal names shard 0: %s" msg)
            true
            (Astring.String.is_infix ~affix:"shard 0" msg));
      (* shard-count mismatch is rejected before any shard is touched *)
      let plan1 = Plan.plan ~n_shards:1 coll in
      (match Coordinator.reload coord ~plan:plan1 with
      | Ok _ -> Alcotest.fail "shard-count mismatch must fail"
      | Error _ -> ());
      (* the old coordinator still answers *)
      let stream =
        let items = ref [] in
        let resp =
          (Coordinator.backend coord).Server.custom_eval
            ~emit:(fun it -> items := it :: !items)
            ~deadline_ns:(Int64.add (Fx_util.Stopwatch.now_ns ()) 2_000_000_000L)
            (P.Evaluate
               { start_tag = "article"; target_tag = "author"; k = 3; max_dist = None })
        in
        (resp, List.rev !items)
      in
      match stream with
      | P.Items { timed_out = false; partial = false; _ }, _ -> ()
      | resp, _ ->
          Alcotest.failf "old coordinator degraded after failed reload: %s"
            (String.concat "|" (P.response_lines resp)))

let () =
  Alcotest.run "admin"
    [
      ( "snapshot",
        [
          Alcotest.test_case "lifecycle" `Quick snapshot_lifecycle;
          Alcotest.test_case "concurrent pin/publish" `Quick snapshot_concurrent;
        ] );
      ( "delta",
        [ Alcotest.test_case "extend scope" `Quick delta_scope ] );
      ( "caches",
        [
          Alcotest.test_case "eval cache scoped invalidation" `Quick
            eval_cache_scoped_invalidation;
          Alcotest.test_case "query cache scoped + rebase" `Quick query_cache_scoped;
          Alcotest.test_case "coord cache scoped" `Quick coord_cache_scoped;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "extend/remove vs cold rebuild" `Quick
            incremental_matches_cold;
          Alcotest.test_case "delta reuses untouched indexes" `Quick
            extend_reuses_and_extends;
        ] );
      ( "server",
        [
          Alcotest.test_case "ingest/evict/epoch" `Quick server_ingest_evict_epoch;
          Alcotest.test_case "eval cache warm across swap" `Quick
            server_eval_cache_warm_across_swap;
          Alcotest.test_case "reload hook" `Quick server_reload_hook;
          Alcotest.test_case "ingest framing" `Quick server_ingest_framing;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "hot reload via front server" `Quick coordinator_reload;
          Alcotest.test_case "rollback on failure" `Quick coordinator_reload_rollback;
        ] );
    ]
