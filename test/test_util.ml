(* Tests for fx_util: the LRU cache and the stopwatch. (The RNG is
   covered in test_workload, where its consumers live.) *)

module Lru = Fx_util.Lru

let lru_create ~capacity = Lru.create ~capacity ()

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_lru_basic () =
  let c = lru_create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check "find a" true (Lru.find c "a" = Some 1);
  check "find b" true (Lru.find c "b" = Some 2);
  check "miss" true (Lru.find c "zz" = None);
  check_int "hits" 2 (Lru.hits c);
  check_int "misses" 1 (Lru.misses c)

let test_lru_eviction_order () =
  let c = lru_create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* Touch "a" so "b" is the least recently used. *)
  ignore (Lru.find c "a");
  Lru.add c "c" 3;
  check "b evicted" true (Lru.find c "b" = None);
  check "a kept" true (Lru.find c "a" = Some 1);
  check "c kept" true (Lru.find c "c" = Some 3);
  check_int "length" 2 (Lru.length c)

let test_lru_replace () =
  let c = lru_create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "a" 10;
  check "replaced" true (Lru.find c "a" = Some 10);
  check_int "no duplicate" 1 (Lru.length c)

let test_lru_remove_clear () =
  let c = lru_create ~capacity:4 in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  Lru.remove c 1;
  check "removed" false (Lru.mem c 1);
  check "other kept" true (Lru.mem c 2);
  Lru.clear c;
  check_int "cleared" 0 (Lru.length c);
  check_int "stats reset" 0 (Lru.hits c + Lru.misses c)

let test_lru_capacity_one () =
  let c = lru_create ~capacity:1 in
  Lru.add c 1 1;
  Lru.add c 2 2;
  check "only newest" true (Lru.find c 2 = Some 2 && not (Lru.mem c 1))

let test_lru_bad_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (lru_create ~capacity:0))

(* A failing on_evict (a dirty-page write-back hitting ENOSPC, say)
   must propagate to the add that triggered the eviction, keep the
   victim resident, and let a later add drain the over-capacity
   backlog once the callback succeeds again. *)
let test_lru_failing_evict () =
  let failing = ref true in
  let evicted = ref [] in
  let c =
    Lru.create ~capacity:2
      ~on_evict:(fun k _ ->
        if !failing then failwith "disk full";
        evicted := k :: !evicted)
      ()
  in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.check_raises "evict failure propagates" (Failure "disk full") (fun () ->
      Lru.add c "c" 3);
  check "victim still resident" true (Lru.mem c "a");
  check "new entry admitted" true (Lru.find c "c" = Some 3);
  check_int "over capacity until retried" 3 (Lru.length c);
  failing := false;
  Lru.add c "d" 4;
  check_int "backlog drained" 2 (Lru.length c);
  check_int "both victims written back" 2 (List.length !evicted);
  check "callback ran before removal" false (Lru.mem c "a")

let test_lru_stress () =
  (* Heavier workload: the table and list must stay consistent. *)
  let cap = 16 in
  let c = lru_create ~capacity:cap in
  let rng = Fx_util.Rng.create 99 in
  for _ = 1 to 5_000 do
    let k = Fx_util.Rng.int rng 64 in
    match Fx_util.Rng.int rng 3 with
    | 0 -> Lru.add c k k
    | 1 -> begin
        match Lru.find c k with
        | Some v -> check "value matches key" true (v = k)
        | None -> ()
      end
    | _ -> Lru.remove c k
  done;
  check "within capacity" true (Lru.length c <= cap)

module Codec = Fx_util.Codec

let test_codec_roundtrip () =
  let w = Codec.Writer.create ~magic:"t1" in
  Codec.Writer.int w 0;
  Codec.Writer.int w 42;
  Codec.Writer.int w (-1);
  Codec.Writer.int w 123456789;
  Codec.Writer.int w (-987654321);
  Codec.Writer.int_array w [| 1; 2; 3 |];
  Codec.Writer.string w "hello";
  Codec.Writer.string w "";
  let r = Codec.Reader.create ~magic:"t1" (Codec.Writer.contents w) in
  check_int "0" 0 (Codec.Reader.int r);
  check_int "42" 42 (Codec.Reader.int r);
  check_int "-1" (-1) (Codec.Reader.int r);
  check_int "big" 123456789 (Codec.Reader.int r);
  check_int "big neg" (-987654321) (Codec.Reader.int r);
  Alcotest.(check (array int)) "array" [| 1; 2; 3 |] (Codec.Reader.int_array r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check string) "empty string" "" (Codec.Reader.string r);
  Codec.Reader.expect_end r

let expect_corrupt f =
  match f () with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_codec_corrupt () =
  expect_corrupt (fun () -> Codec.Reader.create ~magic:"aa" "bb\xffdata");
  expect_corrupt (fun () -> Codec.Reader.create ~magic:"aa" "");
  (* truncated varint *)
  let w = Codec.Writer.create ~magic:"t" in
  Codec.Writer.int w 300;
  let data = Codec.Writer.contents w in
  let truncated = String.sub data 0 (String.length data - 1) in
  expect_corrupt (fun () ->
      let r = Codec.Reader.create ~magic:"t" truncated in
      ignore (Codec.Reader.int r));
  (* implausible lengths *)
  let w2 = Codec.Writer.create ~magic:"t" in
  Codec.Writer.int w2 1_000_000;
  expect_corrupt (fun () ->
      let r = Codec.Reader.create ~magic:"t" (Codec.Writer.contents w2) in
      ignore (Codec.Reader.int_array r));
  (* trailing bytes *)
  let w3 = Codec.Writer.create ~magic:"t" in
  Codec.Writer.int w3 1;
  Codec.Writer.int w3 2;
  expect_corrupt (fun () ->
      let r = Codec.Reader.create ~magic:"t" (Codec.Writer.contents w3) in
      ignore (Codec.Reader.int r);
      Codec.Reader.expect_end r)

let prop_codec_ints =
  Helpers.qtest "codec int roundtrip"
    QCheck.(list int)
    (fun xs ->
      (* Stay within the zig-zag safe range |v| < 2^61. *)
      let xs = List.map (fun x -> x asr 2) xs in
      let w = Codec.Writer.create ~magic:"q" in
      List.iter (Codec.Writer.int w) xs;
      let r = Codec.Reader.create ~magic:"q" (Codec.Writer.contents w) in
      List.for_all (fun x -> Codec.Reader.int r = x) xs)

let test_stopwatch () =
  let w = Fx_util.Stopwatch.start () in
  let counter = ref 0 in
  for i = 1 to 1_000_000 do
    counter := !counter + i
  done;
  check "elapsed positive" true (Fx_util.Stopwatch.elapsed_ns w >= 0L);
  let (), ns = Fx_util.Stopwatch.time_ns (fun () -> ()) in
  check "time_ns nonneg" true (ns >= 0L)

let () =
  Alcotest.run "fx_util"
    [
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear;
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
          Alcotest.test_case "bad capacity" `Quick test_lru_bad_capacity;
          Alcotest.test_case "failing evict" `Quick test_lru_failing_evict;
          Alcotest.test_case "stress" `Quick test_lru_stress;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "corrupt input" `Quick test_codec_corrupt;
          prop_codec_ints;
        ] );
      ("stopwatch", [ Alcotest.test_case "basic" `Quick test_stopwatch ]);
    ]
