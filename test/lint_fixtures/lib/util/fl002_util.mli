val lookup : string -> int option
