(* Fixture: FL002 — the rule also covers lib/util, because the util
   containers (LRU, codecs) are linked into every worker domain. *)

let memo = Hashtbl.create 16
let lookup k = Hashtbl.find_opt memo k
