(* Fixture: a seeded FL005 violation silenced by an inline suppression
   comment on the line above it — flix_lint must report nothing here. *)

(* flix-lint: allow FL005 — fixture exercising the suppression syntax *)
let shout s = print_endline s
