(* Fixture: FL005 — library code printing to stdout instead of logging
   through Log. *)

let announce name = Printf.printf "loaded %s\n" name
