(* Interface for the FL010 fixture; parse-checked only. *)

val quiet : unit -> unit
