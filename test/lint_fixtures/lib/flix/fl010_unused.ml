(* Fixture: FL010 — a stale suppression: the allow comment below
   silences nothing, so flix_lint reports the comment itself. *)

(* flix-lint: allow FL005 — stale: the print this once covered is gone *)
let quiet () = ()
