val shout : string -> unit
