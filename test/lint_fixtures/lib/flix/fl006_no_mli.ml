(* Fixture: FL006 — an implementation in lib/ with no sibling .mli. *)

let answer = 42
