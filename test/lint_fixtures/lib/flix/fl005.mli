val announce : string -> unit
