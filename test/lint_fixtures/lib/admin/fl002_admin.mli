val record : int -> unit
