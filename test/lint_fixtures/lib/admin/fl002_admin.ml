(* Fixture: FL002 covers lib/admin/ — snapshot pins are taken and
   dropped on every worker domain and admin swaps run on connection
   threads, so module-toplevel mutable state here is shared across all
   of them at once. *)

let pin_counts = ref []
let record epoch = pin_counts := epoch :: !pin_counts
