val digest : int list -> int
