(* Fixture: FL003 — polymorphic Hashtbl.hash on a graph hot path; it
   traverses the node list structurally on every call. *)

let digest nodes = Hashtbl.hash nodes
