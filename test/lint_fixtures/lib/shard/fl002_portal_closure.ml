(* Fixture: FL002 over the portal-closure subsystem — the closure is
   shared read-only across the coordinator's fan-out threads, so any
   module-toplevel mutable state here (say, a memo table for label
   joins) would race. *)

let join_memo = Hashtbl.create 64
let distance a b = Hashtbl.find_opt join_memo (a, b)
