val probe : string -> int option
