val distance : int -> int -> int option
