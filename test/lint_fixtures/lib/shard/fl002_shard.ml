(* Fixture: FL002 now covers lib/shard/ — the coordinator's fan-out
   threads and the server's worker domains share this code, so
   module-toplevel mutable state is a data race waiting to happen. *)

let probe_cache = Hashtbl.create 64
let probe k = Hashtbl.find_opt probe_cache k
