(* Interface for the FL007 fixture; parse-checked only. *)

val lock_a : Mutex.t
val with_lock : Mutex.t -> (unit -> 'a) -> 'a
val acquire_a : (unit -> 'a) -> 'a
val a_then_b : unit -> unit
