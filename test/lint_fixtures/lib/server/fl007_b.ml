(* Fixture: FL007 — the other half of the AB/BA cycle: this module
   holds [lock_b] and then acquires [Fl007_a.lock_a]. Never compiled;
   only parsed by flix_lint in test_lint.ml. *)

let lock_b = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let acquire_b f = with_lock lock_b f

let b_then_a () = with_lock lock_b (fun () -> Fl007_a.acquire_a ignore)
