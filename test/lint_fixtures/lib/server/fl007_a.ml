(* Fixture: FL007 — one half of an AB/BA lock-order cycle split across
   two modules: this module holds [lock_a] and then acquires
   [Fl007_b.lock_b] through the call graph. Never compiled; only
   parsed by flix_lint in test_lint.ml. *)

let lock_a = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let acquire_a f = with_lock lock_a f

let a_then_b () = with_lock lock_a (fun () -> Fl007_b.acquire_b ignore)
