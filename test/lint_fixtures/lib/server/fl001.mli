(* Interface present so the fixture seeds exactly one finding (FL001),
   not an FL006 as well. *)

val bad_critical_section : (unit -> 'a) -> 'a
