(* Interface for the FL007 fixture; parse-checked only. *)

val lock_b : Mutex.t
val with_lock : Mutex.t -> (unit -> 'a) -> 'a
val acquire_b : (unit -> 'a) -> 'a
val b_then_a : unit -> unit
