(* Fixture: FL001 — raw Mutex.lock with no Fun.protect guard, so a raise
   from [f] leaves the mutex held forever. Never compiled; only parsed
   by flix_lint in test_lint.ml. *)

let m = Mutex.create ()

let bad_critical_section f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r
