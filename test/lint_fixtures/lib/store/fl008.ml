(* Fixture: FL008 — [flush] performs Unix.write while holding the lock,
   two calls deep: flush > write_back > Unix.write. Never compiled;
   only parsed by flix_lint in test_lint.ml. *)

type t = { fd : Unix.file_descr; lock : Mutex.t; dirty : bytes }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let write_back t = ignore (Unix.write t.fd t.dirty 0 (Bytes.length t.dirty))

let flush t = with_lock t.lock (fun () -> write_back t)
