(* Interface for the suppressed concurrency fixture; parse-checked only. *)

val p : Mutex.t
val q : Mutex.t
val with_lock : Mutex.t -> (unit -> 'a) -> 'a
val lock_p_then_q : (unit -> 'a) -> 'a
val lock_q_then_p : (unit -> 'a) -> 'a
val sleep_under_lock : unit -> unit
val leak_fd : string -> unit
