(* Fixture: suppressed concurrency findings — one seeded FL007 cycle,
   one FL008, one FL009, each silenced by an inline allow comment, so
   flix_lint must report nothing here and count three suppressions. *)

let p = Mutex.create ()
let q = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let lock_p_then_q f =
  (* flix-lint: allow FL007 — fixture: deliberate AB/BA cycle, suppressed *)
  with_lock p (fun () -> with_lock q f)

let lock_q_then_p f = with_lock q (fun () -> with_lock p f)

let sleep_under_lock () =
  (* flix-lint: allow FL008 — fixture: deliberate sleep under lock, suppressed *)
  with_lock p (fun () -> Unix.sleepf 0.001)

let leak_fd path =
  (* flix-lint: allow FL009 — fixture: deliberate leak, suppressed *)
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  ignore fd
