(* Interface for the FL008 fixture; parse-checked only. *)

type t = { fd : Unix.file_descr; lock : Mutex.t; dirty : bytes }

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
val write_back : t -> unit
val flush : t -> unit
