(* Fixture: FL002 — module-toplevel mutable state in a library linked
   into the worker pool; every domain would see this table with no
   synchronization. *)

let cache = Hashtbl.create 64
let lookup k = Hashtbl.find_opt cache k
