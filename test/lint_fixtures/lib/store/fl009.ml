(* Fixture: FL009 — [first_byte] opens a file descriptor and returns
   without closing it on any path. Never compiled; only parsed by
   flix_lint in test_lint.ml. *)

let first_byte path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 1 in
  ignore (Unix.read fd buf 0 1);
  Bytes.get buf 0
