(* Interface for the FL009 fixture; parse-checked only. *)

val first_byte : string -> char
