(* Fixture: FL004 — a catch-all handler that flattens every exception,
   including Out_of_memory and Stack_overflow, into a default value. *)

let parse_port s = try int_of_string s with _ -> 0
