(* The query-service subsystem: wire protocol round-trips, the bounded
   work queue, metrics accounting, and a live server driven by
   concurrent clients — results cross-checked byte-for-byte against
   direct Flix calls, with deterministic BUSY and TIMEOUT provocation. *)

module P = Fx_server.Protocol
module Metrics = Fx_server.Metrics
module WQ = Fx_server.Work_queue
module Server = Fx_server.Server
module Client = Fx_server.Server_client
module Flix = Fx_flix.Flix
module Pee = Fx_flix.Pee
module RS = Fx_flix.Result_stream
module Dblp = Fx_workload.Dblp_gen

(* --- protocol ------------------------------------------------------- *)

let sample_requests =
  [
    P.Ping;
    P.Stats;
    P.Metrics;
    P.Sleep 250;
    P.Descendants { doc = "dblp_0001"; anchor = None; tag = None; k = 10; max_dist = None };
    P.Descendants
      {
        doc = "dblp_0002";
        anchor = Some "sec3";
        tag = Some "author";
        k = 5;
        max_dist = Some 4;
      };
    P.Connected { a = 3; b = 99; max_dist = None };
    P.Connected { a = 0; b = 1; max_dist = Some 7 };
    P.Evaluate { start_tag = "inproceedings"; target_tag = "author"; k = 3; max_dist = None };
    P.Evaluate { start_tag = "article"; target_tag = "cite"; k = 100; max_dist = Some 2 };
  ]

let request_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.request_line r) with
      | Ok r' -> Alcotest.(check bool) (P.request_line r) true (r = r')
      | Error e -> Alcotest.failf "%s failed to parse: %s" (P.request_line r) e)
    sample_requests

let request_case_and_whitespace () =
  Alcotest.(check bool) "lower-case verb" true (P.parse_request "ping" = Ok P.Ping);
  Alcotest.(check bool) "padded" true
    (P.parse_request "  CONNECTED  1   2 " = Ok (P.Connected { a = 1; b = 2; max_dist = None }))

let malformed_requests () =
  List.iter
    (fun line ->
      match P.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" line)
    [
      "";
      "   ";
      "FROBNICATE";
      "PING extra";
      "SLEEP";
      "SLEEP abc";
      "SLEEP -1";
      "DESCENDANTS onlydoc";
      "DESCENDANTS d - - 0";          (* k must be positive *)
      "DESCENDANTS d - - ten";
      "DESCENDANTS d - - 5 -1";       (* negative max_dist *)
      "DESCENDANTS d - - 5 3 junk";
      "CONNECTED 1";
      "CONNECTED a b";
      "EVALUATE a b";
    ]

let feeder lines =
  let rest = ref lines in
  fun () ->
    match !rest with
    | [] -> None
    | l :: tl ->
        rest := tl;
        Some l

let response_roundtrip () =
  let samples =
    [
      P.Pong;
      P.Ok_done;
      P.Busy;
      P.Err "unknown verb \"FROB\"";
      P.Dist None;
      P.Dist (Some 4);
      P.Items { items = []; timed_out = false; partial = false };
      P.Items { items = []; timed_out = true; partial = false };
      P.Items { items = []; timed_out = false; partial = true };
      P.Items
        {
          items = [ { P.node = 1; dist = 0; meta = 2 }; { P.node = 9; dist = 3; meta = 0 } ];
          timed_out = false;
          partial = false;
        };
      P.Items
        {
          items = [ { P.node = 4; dist = 1; meta = 0 } ];
          timed_out = false;
          partial = true;
        };
      P.Lines [];
      P.Lines [ "a b c"; ""; "# comment" ];
    ]
  in
  List.iter
    (fun r ->
      match P.read_response (feeder (P.response_lines r)) with
      | Ok r' -> Alcotest.(check bool) (String.concat "|" (P.response_lines r)) true (r = r')
      | Error e -> Alcotest.failf "response failed to re-read: %s" e)
    samples

let truncated_response () =
  (match P.read_response (feeder [ "ITEM 1 2 3" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "item stream without trailer should error");
  (match P.read_response (feeder [ "LINES 3"; "only one" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short LINES payload should error");
  match P.read_response (feeder [ "ITEM 1 2 3"; "DONE 7" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailer count mismatch should error"

(* --- work queue ----------------------------------------------------- *)

let queue_bounds () =
  let q = WQ.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (WQ.try_push q 1);
  Alcotest.(check bool) "push 2" true (WQ.try_push q 2);
  Alcotest.(check bool) "full" false (WQ.try_push q 3);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (WQ.pop q);
  Alcotest.(check bool) "room again" true (WQ.try_push q 4);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (WQ.pop q);
  Alcotest.(check (option int)) "fifo 4" (Some 4) (WQ.pop q);
  WQ.close q;
  Alcotest.(check bool) "closed rejects" false (WQ.try_push q 5);
  Alcotest.(check (option int)) "closed drained" None (WQ.pop q)

let queue_cross_domain () =
  let q = WQ.create ~capacity:64 in
  let seen = Atomic.make 0 in
  let consumers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec go acc =
              match WQ.pop q with
              | None -> acc
              | Some x -> go (acc + x)
            in
            let s = go 0 in
            ignore (Atomic.fetch_and_add seen s)))
  in
  for i = 1 to 200 do
    while not (WQ.try_push q i) do
      Thread.yield ()
    done
  done;
  WQ.close q;
  List.iter Domain.join consumers;
  Alcotest.(check int) "all delivered exactly once" (200 * 201 / 2) (Atomic.get seen)

(* --- metrics -------------------------------------------------------- *)

let metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr_requests m ~verb:"descendants";
  Metrics.incr_requests m ~verb:"descendants";
  Metrics.incr_requests m ~verb:"nonsense";
  Metrics.incr_rejected m;
  Metrics.incr_timeouts m ~verb:"sleep";
  Metrics.observe_ms m ~verb:"descendants" 0.3;
  Metrics.observe_ms m ~verb:"descendants" 40.0;
  Metrics.observe_ms m ~verb:"descendants" 99999.0;
  Alcotest.(check int) "requests" 2 (Metrics.requests_total m ~verb:"descendants");
  Alcotest.(check int) "other fold" 1 (Metrics.requests_total m ~verb:"nonsense");
  Alcotest.(check int) "rejected" 1 (Metrics.rejected_total m);
  Alcotest.(check int) "timeouts" 1 (Metrics.timeouts_total m ~verb:"sleep");
  Alcotest.(check int) "observations" 3 (Metrics.observations m ~verb:"descendants");
  let text = String.concat "\n" (Metrics.render m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring.String.is_infix ~affix:needle text))
    [
      "flix_requests_total{verb=\"descendants\"} 2";
      "flix_rejected_total 1";
      "flix_timeouts_total{verb=\"sleep\"} 1";
      (* 0.3 ms lands in le=0.5; cumulative buckets include it upward. *)
      "flix_request_duration_ms_bucket{verb=\"descendants\",le=\"0.5\"} 1";
      "flix_request_duration_ms_bucket{verb=\"descendants\",le=\"50\"} 2";
      (* the +Inf bucket equals the observation count *)
      "flix_request_duration_ms_bucket{verb=\"descendants\",le=\"+Inf\"} 3";
      "flix_request_duration_ms_count{verb=\"descendants\"} 3";
    ]

(* --- live server ---------------------------------------------------- *)

let shared_collection = lazy (Dblp.collection { Dblp.default with n_docs = 200; seed = 5 })
let shared_flix = lazy (Flix.build (Lazy.force shared_collection))

let with_server ?config f =
  let server = Server.start ?config (Lazy.force shared_flix) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let render resp = String.concat "\n" (P.response_lines resp)

(* What the server must answer for DESCENDANTS <doc> - <tag> <k>,
   computed with a direct Flix call. *)
let direct_descendants flix ~doc ~tag ~k =
  match Flix.node_of flix ~doc ~anchor:None with
  | None -> Alcotest.failf "test bug: unknown doc %s" doc
  | Some start ->
      let items =
        Flix.descendants ~tag flix ~start
        |> RS.take k
        |> List.map (fun (it : Pee.item) ->
               { P.node = it.node; dist = it.dist; meta = it.meta })
      in
      render (P.Items { items; timed_out = false; partial = false })

let ping_and_errors () =
  with_server (fun server ->
      let port = Server.port server in
      let c = Client.connect ~port () in
      Alcotest.(check bool) "ping" true (Client.ping c);
      (* A malformed line must yield ERR, not kill the connection. *)
      (match Client.request c P.Ping with Ok P.Pong -> () | _ -> Alcotest.fail "ping 2");
      (match
         Client.descendants c ~doc:"no_such_doc" ~k:3 ()
       with
      | Ok (Client.Server_error _) -> ()
      | other ->
          Alcotest.failf "unknown doc should be a server error, got %s"
            (match other with
            | Ok (Client.Value _) -> "items"
            | Ok Client.Busy -> "busy"
            | Error e -> "transport error: " ^ e
            | Ok (Client.Server_error _) -> assert false));
      Alcotest.(check bool) "alive after ERR" true (Client.ping c);
      let m = Server.metrics server in
      Alcotest.(check bool) "errors counted" true (Metrics.errors_total m >= 1);
      Client.close c)

let raw_malformed_lines () =
  with_server (fun server ->
      let port = Server.port server in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      List.iter
        (fun junk ->
          output_string oc (junk ^ "\n");
          flush oc;
          let reply = input_line ic in
          Alcotest.(check bool)
            (Printf.sprintf "%S -> ERR" junk)
            true
            (String.length reply >= 3 && String.sub reply 0 3 = "ERR"))
        [ "FROBNICATE"; "DESCENDANTS"; "CONNECTED one two"; "SLEEP -5"; "" ];
      (* The connection and server both survive the abuse. *)
      output_string oc "PING\n";
      flush oc;
      Alcotest.(check string) "still serving" "PONG" (input_line ic);
      Unix.close fd)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let oversized_line () =
  with_server
    ~config:{ Server.default_config with max_line_bytes = 64 }
    (fun server ->
      let port = Server.port server in
      let fd = raw_connect port in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      (* Far past the cap: the server must answer ERR without buffering
         the whole line, and the connection must keep its framing. *)
      output_string oc (String.make 100_000 'A');
      output_string oc "\nPING\n";
      flush oc;
      let reply = input_line ic in
      Alcotest.(check bool) "overflow -> ERR" true
        (String.length reply >= 3 && String.sub reply 0 3 = "ERR");
      Alcotest.(check string) "framing survives overflow" "PONG" (input_line ic);
      Unix.close fd;
      Alcotest.(check bool) "overflow counted as error" true
        (Metrics.errors_total (Server.metrics server) >= 1))

let connection_cap () =
  with_server
    ~config:{ Server.default_config with max_connections = 1 }
    (fun server ->
      let port = Server.port server in
      let c1 = Client.connect ~port () in
      (* The ping round-trip guarantees the acceptor registered c1. *)
      Alcotest.(check bool) "first client served" true (Client.ping c1);
      let fd = raw_connect port in
      let ic = Unix.in_channel_of_descr fd in
      Alcotest.(check string) "over cap -> BUSY" "BUSY" (input_line ic);
      (match input_line ic with
      | exception End_of_file -> ()
      | line -> Alcotest.failf "rejected connection should close, got %S" line);
      Unix.close fd;
      Alcotest.(check bool) "cap rejection counted" true
        (Metrics.rejected_total (Server.metrics server) >= 1);
      Client.close c1;
      (* Once c1's slot frees (its thread notices EOF asynchronously),
         new connections are admitted again. *)
      let rec retry n =
        if n = 0 then Alcotest.fail "connection slot never freed"
        else
          let c = Client.connect ~port () in
          let ok = Client.ping c in
          Client.close c;
          if not ok then begin
            Thread.delay 0.02;
            retry (n - 1)
          end
      in
      retry 100)

let disconnect_mid_response () =
  (* Clients that send a streaming request and vanish before reading
     the reply: each write then hits EPIPE/ECONNRESET. With SIGPIPE
     ignored this must close just that connection, not the process. *)
  with_server (fun server ->
      let port = Server.port server in
      for _ = 1 to 5 do
        let fd = raw_connect port in
        let oc = Unix.out_channel_of_descr fd in
        output_string oc "EVALUATE inproceedings author 10000\n";
        flush oc;
        Unix.close fd
      done;
      Thread.delay 0.2;
      let c = Client.connect ~port () in
      Alcotest.(check bool) "server survives disconnects" true (Client.ping c);
      Client.close c)

let concurrent_clients () =
  with_server
    ~config:{ Server.default_config with workers = 4 }
    (fun server ->
      let port = Server.port server in
      let flix = Lazy.force shared_flix in
      let n_threads = 6 and per_thread = 25 in
      let failures = Atomic.make 0 in
      let total = Atomic.make 0 in
      let threads =
        List.init n_threads (fun tid ->
            Thread.create
              (fun () ->
                let c = Client.connect ~port () in
                for i = 0 to per_thread - 1 do
                  let doc = Dblp.doc_name ((tid + (n_threads * i) * 7) mod 200) in
                  let got =
                    match Client.descendants c ~doc ~tag:"author" ~k:10 () with
                    | Ok (Client.Value (items, timed_out)) ->
                        render (P.Items { items; timed_out; partial = false })
                    | other ->
                        Printf.sprintf "failure: %s"
                          (match other with
                          | Error e -> e
                          | Ok Client.Busy -> "BUSY"
                          | Ok (Client.Server_error e) -> "ERR " ^ e
                          | Ok (Client.Value _) -> assert false)
                  in
                  let want = direct_descendants flix ~doc ~tag:"author" ~k:10 in
                  ignore (Atomic.fetch_and_add total 1);
                  if got <> want then ignore (Atomic.fetch_and_add failures 1)
                done;
                Client.close c)
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "all requests answered" (n_threads * per_thread)
        (Atomic.get total);
      Alcotest.(check int) "every response byte-identical to direct Flix" 0
        (Atomic.get failures);
      let m = Server.metrics server in
      Alcotest.(check int) "metrics counted every request" (n_threads * per_thread)
        (Metrics.requests_total m ~verb:"descendants");
      Alcotest.(check int) "metrics observed every request" (n_threads * per_thread)
        (Metrics.observations m ~verb:"descendants"))

let deadline_timeout () =
  (* deadline 0: the deadline is already expired after the first pulled
     item, so any query with results returns a partial result marked
     TIMEOUT — deterministically. *)
  with_server
    ~config:{ Server.default_config with workers = 2; deadline_ms = 0.0 }
    (fun server ->
      let port = Server.port server in
      let c = Client.connect ~port () in
      (match Client.descendants c ~doc:(Dblp.doc_name 0) ~k:10_000 () with
      | Ok (Client.Value (items, timed_out)) ->
          Alcotest.(check bool) "timed out" true timed_out;
          Alcotest.(check bool) "partial, not empty" true (List.length items >= 1);
          Alcotest.(check bool) "partial, not complete" true (List.length items < 20)
      | _ -> Alcotest.fail "expected a partial TIMEOUT result");
      (match Client.sleep c 1000 with
      | Ok (Client.Value false) -> ()
      | _ -> Alcotest.fail "sleep under a 0ms deadline must time out");
      (* The server survives; the metrics saw the timeouts. *)
      Alcotest.(check bool) "alive after timeouts" true (Client.ping c);
      let m = Server.metrics server in
      Alcotest.(check int) "descendants timeout counted" 1
        (Metrics.timeouts_total m ~verb:"descendants");
      Alcotest.(check int) "sleep timeout counted" 1
        (Metrics.timeouts_total m ~verb:"sleep");
      Client.close c)

let admission_busy () =
  (* One worker, queue of one: a running SLEEP plus a queued SLEEP leave
     no room — the third concurrent request must bounce with BUSY. *)
  with_server
    ~config:
      { Server.default_config with workers = 1; queue_capacity = 1; deadline_ms = 10_000.0 }
    (fun server ->
      let port = Server.port server in
      let results = Array.make 2 (Ok Client.Busy) in
      let sleeper i =
        Thread.create
          (fun () ->
            let c = Client.connect ~port () in
            results.(i) <- Client.sleep c 600;
            Client.close c)
          ()
      in
      let t1 = sleeper 0 in
      Thread.delay 0.15;
      (* worker busy with t1's nap *)
      let t2 = sleeper 1 in
      Thread.delay 0.15;
      (* t2's nap waits in the queue: it is full now *)
      let c = Client.connect ~port () in
      (match Client.sleep c 10 with
      | Ok Client.Busy -> ()
      | other ->
          Alcotest.failf "expected BUSY, got %s"
            (match other with
            | Ok (Client.Value b) -> Printf.sprintf "Value %b" b
            | Ok (Client.Server_error e) -> "ERR " ^ e
            | Error e -> "transport error: " ^ e
            | Ok Client.Busy -> assert false));
      (* PING bypasses the pool and still works while saturated. *)
      Alcotest.(check bool) "inline plane alive" true (Client.ping c);
      List.iter Thread.join [ t1; t2 ];
      Array.iteri
        (fun i r ->
          match r with
          | Ok (Client.Value true) -> ()
          | _ -> Alcotest.failf "queued sleep %d should have completed" i)
        results;
      (* After the naps drain, the pool accepts work again. *)
      (match Client.sleep c 1 with
      | Ok (Client.Value true) -> ()
      | _ -> Alcotest.fail "server should accept work after saturation clears");
      let m = Server.metrics server in
      Alcotest.(check int) "rejection counted" 1 (Metrics.rejected_total m);
      Client.close c)

let stats_and_metrics_verbs () =
  with_server (fun server ->
      let port = Server.port server in
      let c = Client.connect ~port () in
      (match Client.stats c with
      | Ok (Client.Value lines) ->
          Alcotest.(check bool) "stats nonempty" true (List.length lines > 0);
          Alcotest.(check bool) "stats mentions FliX" true
            (List.exists (fun l -> Astring.String.is_infix ~affix:"FliX" l) lines)
      | _ -> Alcotest.fail "STATS failed");
      (match Client.metrics c with
      | Ok (Client.Value lines) ->
          Alcotest.(check bool) "metrics mention stats request" true
            (List.mem "flix_requests_total{verb=\"stats\"} 1" lines)
      | _ -> Alcotest.fail "METRICS failed");
      Client.close c)

let connected_matches_direct () =
  with_server (fun server ->
      let port = Server.port server in
      let flix = Lazy.force shared_flix in
      let c = Client.connect ~port () in
      let roots =
        List.init 20 (fun i ->
            Option.get (Flix.node_of flix ~doc:(Dblp.doc_name (i * 9)) ~anchor:None))
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let want = Flix.connected flix a b in
              match Client.connected c a b with
              | Ok (Client.Value got) ->
                  Alcotest.(check (option int))
                    (Printf.sprintf "connected %d %d" a b)
                    want got
              | _ -> Alcotest.failf "connected %d %d failed" a b)
            roots)
        (List.filteri (fun i _ -> i < 5) roots);
      Client.close c)

(* --- batches ----------------------------------------------------------- *)

(* A batch of probe verbs must answer exactly what the same requests
   answer one at a time — order restored by the SUB indexes. *)
let batch_matches_single () =
  with_server (fun server ->
      let port = Server.port server in
      let c = Client.connect ~port () in
      let flix = Lazy.force shared_flix in
      let n0 = Option.get (Flix.node_of flix ~doc:(Dblp.doc_name 0) ~anchor:None) in
      let n1 = Option.get (Flix.node_of flix ~doc:(Dblp.doc_name 9) ~anchor:None) in
      let reqs =
        [|
          P.Connected { a = n0; b = n1; max_dist = None };
          P.Node_descendants { node = n0; tag = Some "author"; k = 50; max_dist = None };
          P.Ancestors { node = n1 + 2; tag = None; k = 10; max_dist = None };
          P.Resolve { doc = Dblp.doc_name 3; anchor = None };
          P.Connected { a = n1; b = n1; max_dist = None };
        |]
      in
      (match Client.request_many c reqs with
      | Error e -> Alcotest.failf "batch failed: %s" e
      | Ok got ->
          Alcotest.(check int) "answer per sub" (Array.length reqs) (Array.length got);
          Array.iteri
            (fun i req ->
              match Client.request c req with
              | Ok want ->
                  Alcotest.(check string)
                    (Printf.sprintf "sub %d equals single exchange" i)
                    (render want) (render got.(i))
              | Error e -> Alcotest.failf "single exchange %d failed: %s" i e)
            reqs);
      (* The connection keeps its framing for ordinary requests. *)
      Alcotest.(check bool) "framing intact after batch" true (Client.ping c);
      let m = Server.metrics server in
      Alcotest.(check int) "batch counted once" 1 (Metrics.requests_total m ~verb:"batch");
      Alcotest.(check bool) "subs counted per verb" true
        (Metrics.requests_total m ~verb:"connected" >= 2);
      Client.close c)

(* One malformed and one disallowed sub-request mid-batch: each fails
   only its own slot; the healthy slots answer and framing survives. *)
let batch_malformed_sub () =
  with_server (fun server ->
      let port = Server.port server in
      let fd = raw_connect port in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "BATCH 4\nCONNECTED 0 0\nFROBNICATE 7\nEVALUATE article author 5\nSLEEP 1\n";
      flush oc;
      let answers = Array.make 4 None in
      let result =
        P.read_batch_responses
          (fun () -> match input_line ic with
            | line -> Some line
            | exception End_of_file -> None)
          ~n:4
          ~on_response:(fun i resp -> answers.(i) <- Some resp)
      in
      (match result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "batch framing broke: %s" e);
      (match answers.(0) with
      | Some (P.Dist (Some 0)) -> ()
      | _ -> Alcotest.fail "healthy sub 0 should answer DIST 0");
      (match answers.(1) with
      | Some (P.Err _) -> ()
      | _ -> Alcotest.fail "malformed sub 1 should answer ERR");
      (match answers.(2) with
      | Some (P.Err e) ->
          Alcotest.(check bool) "disallowed verb named" true
            (Astring.String.is_infix ~affix:"EVALUATE" e)
      | _ -> Alcotest.fail "disallowed sub 2 should answer ERR");
      (match answers.(3) with
      | Some P.Ok_done -> ()
      | _ -> Alcotest.fail "healthy sub 3 should answer OK");
      output_string oc "PING\n";
      flush oc;
      Alcotest.(check string) "framing survives bad subs" "PONG" (input_line ic);
      Unix.close fd)

(* The DEADLINE envelope covers the whole batch: with one worker, a
   fast probe answers cleanly and the slow sleeps behind it come back
   TIMEOUT — answered prefix plus timed-out remainder. *)
let batch_deadline_mid () =
  with_server
    ~config:{ Server.default_config with workers = 1 }
    (fun server ->
      let port = Server.port server in
      let c = Client.connect ~port () in
      let reqs = [| P.Connected { a = 0; b = 0; max_dist = None }; P.Sleep 400; P.Sleep 400 |] in
      (match Client.request_many ~deadline_ms:120 c reqs with
      | Error e -> Alcotest.failf "batch failed: %s" e
      | Ok got ->
          (match got.(0) with
          | P.Dist (Some 0) -> ()
          | _ -> Alcotest.fail "fast sub should answer before the deadline");
          Array.iteri
            (fun i resp ->
              if i > 0 then
                match resp with
                | P.Items { timed_out = true; _ } -> ()
                | _ -> Alcotest.failf "slow sub %d should answer TIMEOUT" i)
            got);
      Alcotest.(check bool) "alive after batch deadline" true (Client.ping c);
      Client.close c)

(* Over-cap batches are consumed whole and answered with one ERR; the
   connection then keeps working. BATCH 0 and garbage counts are
   protocol errors. *)
let batch_size_limits () =
  with_server
    ~config:{ Server.default_config with max_batch = 4 }
    (fun server ->
      let port = Server.port server in
      let c = Client.connect ~port () in
      let reqs = Array.make 6 (P.Connected { a = 0; b = 0; max_dist = None }) in
      (match Client.request_many c reqs with
      | Error e ->
          Alcotest.(check bool) "oversize rejected with ERR" true
            (Astring.String.is_infix ~affix:"batch size exceeds 4" e)
      | Ok _ -> Alcotest.fail "oversized batch should be rejected");
      (* The server consumed the announced sub-lines: framing holds. *)
      Alcotest.(check bool) "framing intact after oversize" true (Client.ping c);
      Client.close c;
      let fd = raw_connect port in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      List.iter
        (fun line ->
          output_string oc (line ^ "\n");
          flush oc;
          let reply = input_line ic in
          Alcotest.(check bool)
            (Printf.sprintf "%S -> ERR" line)
            true
            (String.length reply >= 3 && String.sub reply 0 3 = "ERR"))
        [ "BATCH 0"; "BATCH -3"; "BATCH many"; "DEADLINE 50 BATCH 0" ];
      output_string oc "PING\n";
      flush oc;
      Alcotest.(check string) "still serving" "PONG" (input_line ic);
      Unix.close fd)

(* --- disk backend ----------------------------------------------------- *)

module Idx = Fx_index
module C = Fx_xml.Collection

(* Persist a global-HOPI deployment of the shared collection, boot the
   server on it with [workers] domains, and hand the test the live
   server plus the in-memory index it must agree with. *)
let with_disk_server ~workers f =
  let coll = Lazy.force shared_collection in
  let dg = { Idx.Path_index.graph = C.graph coll; tag = C.tag coll } in
  let hopi = Idx.Hopi.build dg in
  let prefix = Filename.temp_file "fxsrv" "" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ prefix; prefix ^ ".labels"; prefix ^ ".tags"; prefix ^ ".catalog" ])
    (fun () ->
      Idx.Disk_hopi.save ~path:prefix dg hopi;
      Idx.Catalog.save ~path:(prefix ^ ".catalog") (Idx.Catalog.of_collection coll);
      let disk = Idx.Disk_hopi.open_ ~path:prefix () in
      let catalog = Idx.Catalog.load (prefix ^ ".catalog") in
      Fun.protect
        ~finally:(fun () -> Idx.Disk_hopi.close disk)
        (fun () ->
          let config = { Server.default_config with workers } in
          let server =
            Server.start_backend ~config (Server.On_disk { hopi = disk; catalog })
          in
          Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server hopi coll)))

let disk_backend_matches_memory () =
  with_disk_server ~workers:2 (fun server hopi coll ->
      let port = Server.port server in
      let k = 10 in
      (* Ground truth from the in-memory index the deployment froze. *)
      let truth ~doc ~tag =
        let d = Option.get (C.doc_of_name coll doc) in
        let start = C.root_of_doc coll d in
        let want = C.tag_id coll tag in
        ( start,
          Idx.Hopi.descendants_by_tag hopi start want
          |> List.filter (fun (v, dist) -> not (v = start && dist = 0))
          |> List.filteri (fun i _ -> i < k)
          |> List.map (fun (node, dist) -> { P.node; dist; meta = 0 }) )
      in
      let docs = List.init 40 (fun i -> Dblp.doc_name (i * 5)) in
      let expected = List.map (fun doc -> (doc, truth ~doc ~tag:"author")) docs in
      (* Hammer the two worker domains from four client threads; every
         answer must be byte-identical to the in-memory truth. *)
      let failures = Atomic.make 0 in
      let threads =
        List.init 4 (fun tid ->
            Thread.create
              (fun () ->
                let c = Client.connect ~port () in
                for round = 0 to 24 do
                  let doc, (start, want) =
                    List.nth expected ((tid + (round * 4)) mod List.length expected)
                  in
                  (match Client.descendants c ~doc ~tag:"author" ~k () with
                  | Ok (Client.Value (items, false)) when items = want -> ()
                  | _ -> Atomic.incr failures);
                  match Client.connected c start start with
                  | Ok (Client.Value (Some 0)) -> ()
                  | _ -> Atomic.incr failures
                done;
                Client.close c)
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "all concurrent answers match memory" 0 (Atomic.get failures);
      (* CONNECTED between distinct docs agrees with the label store. *)
      let c = Client.connect ~port () in
      let roots = List.init 12 (fun i -> C.root_of_doc coll (i * 16)) in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let want = Idx.Hopi.distance hopi a b in
              match Client.connected c a b with
              | Ok (Client.Value got) ->
                  Alcotest.(check (option int))
                    (Printf.sprintf "connected %d %d" a b)
                    want got
              | _ -> Alcotest.failf "connected %d %d failed" a b)
            roots)
        (List.filteri (fun i _ -> i < 4) roots);
      (* The deployment's buffer-pool counters ride the METRICS verb. *)
      (match Client.metrics c with
      | Ok (Client.Value lines) ->
          let has prefix =
            List.exists (fun l -> Astring.String.is_prefix ~affix:prefix l) lines
          in
          Alcotest.(check bool) "pool hits exported" true
            (has "flix_pager_pool_hits_total{file=\"labels\"}");
          Alcotest.(check bool) "pool misses exported" true
            (has "flix_pager_pool_misses_total{file=\"tags\"}")
      | _ -> Alcotest.fail "METRICS failed");
      (* STATS reports the disk regime, not the in-memory builder. *)
      (match Client.stats c with
      | Ok (Client.Value lines) ->
          Alcotest.(check bool) "stats mention the disk backend" true
            (List.exists (fun l -> Astring.String.is_infix ~affix:"disk" l) lines)
      | _ -> Alcotest.fail "STATS failed");
      Client.close c)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick request_roundtrip;
          Alcotest.test_case "case and whitespace" `Quick request_case_and_whitespace;
          Alcotest.test_case "malformed requests" `Quick malformed_requests;
          Alcotest.test_case "response round-trip" `Quick response_roundtrip;
          Alcotest.test_case "truncated responses" `Quick truncated_response;
        ] );
      ( "work-queue",
        [
          Alcotest.test_case "bounds and fifo" `Quick queue_bounds;
          Alcotest.test_case "cross-domain delivery" `Quick queue_cross_domain;
        ] );
      ("metrics", [ Alcotest.test_case "counters and render" `Quick metrics_counters ]);
      ( "service",
        [
          Alcotest.test_case "ping and error plane" `Quick ping_and_errors;
          Alcotest.test_case "raw malformed lines" `Quick raw_malformed_lines;
          Alcotest.test_case "oversized request line" `Quick oversized_line;
          Alcotest.test_case "connection cap" `Quick connection_cap;
          Alcotest.test_case "disconnect mid-response" `Quick disconnect_mid_response;
          Alcotest.test_case "disk backend" `Quick disk_backend_matches_memory;
          Alcotest.test_case "concurrent clients vs direct" `Quick concurrent_clients;
          Alcotest.test_case "deadline timeout" `Quick deadline_timeout;
          Alcotest.test_case "admission control BUSY" `Quick admission_busy;
          Alcotest.test_case "stats and metrics verbs" `Quick stats_and_metrics_verbs;
          Alcotest.test_case "connected matches direct" `Quick connected_matches_direct;
        ] );
      ( "batch",
        [
          Alcotest.test_case "matches single exchanges" `Quick batch_matches_single;
          Alcotest.test_case "malformed sub mid-batch" `Quick batch_malformed_sub;
          Alcotest.test_case "deadline mid-batch" `Quick batch_deadline_mid;
          Alcotest.test_case "size limits" `Quick batch_size_limits;
        ] );
    ]
