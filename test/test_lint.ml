(* Tests for flix_lint (tools/lint/): the fixture tree under
   test/lint_fixtures seeds exactly one violation per rule plus one
   suppressed violation; and the real tree must be lint-clean, so the
   `@lint` gate stays green on every commit. The linter is exercised as
   a subprocess, exactly as the dune alias and CI run it. *)

let exe = "../tools/lint/flix_lint.exe"

let run args =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let contains hay needle = Astring.String.is_infix ~affix:needle hay

(* (rule, file, 1-based line) for each seeded fixture violation. *)
let expected =
  [
    ("FL001", "lib/server/fl001.ml", 8);
    ("FL002", "lib/store/fl002.ml", 5);
    ("FL002", "lib/util/fl002_util.ml", 4);
    ("FL002", "lib/shard/fl002_shard.ml", 5);
    ("FL002", "lib/shard/fl002_portal_closure.ml", 6);
    ("FL002", "lib/admin/fl002_admin.ml", 6);
    ("FL003", "lib/graph/fl003.ml", 4);
    ("FL004", "bin/fl004.ml", 4);
    ("FL005", "lib/flix/fl005.ml", 4);
    ("FL006", "lib/flix/fl006_no_mli.ml", 1);
    ("FL007", "lib/server/fl007_a.ml", 14);
    ("FL008", "lib/store/fl008.ml", 13);
    ("FL009", "lib/store/fl009.ml", 6);
    ("FL010", "lib/flix/fl010_unused.ml", 4);
  ]

let test_fixture_findings () =
  let code, out = run [ "--json"; "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "findings make the exit code nonzero" 1 code;
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int)
    "exactly one finding per seeded rule" (List.length expected)
    (List.length lines);
  List.iter
    (fun (rule, file, line) ->
      let hit l =
        contains l (Printf.sprintf {|"rule":"%s"|} rule)
        && contains l (Printf.sprintf {|"file":"%s"|} file)
        && contains l (Printf.sprintf {|"line":%d|} line)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s reported at %s:%d" rule file line)
        true
        (List.exists hit lines))
    expected

let test_suppression () =
  let code, out = run [ "--json"; "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool)
    "suppressed fixture produces no finding" false
    (contains out "suppressed.ml");
  (* The whole-program rules honor the same allow comments: the seeded
     FL007 cycle, FL008, and FL009 in suppressed_conc.ml are silenced. *)
  Alcotest.(check bool)
    "suppressed concurrency fixture produces no finding" false
    (contains out "suppressed_conc.ml");
  (* The human summary still accounts for what was silenced: one FL005
     plus the three concurrency suppressions. *)
  let _, human = run [ "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check bool) "summary counts the suppressions" true
    (contains human "(4 suppressed)")

(* FL007/FL008 findings must carry enough of a witness to act on: the
   cycle with both acquisition paths, and the call chain down to the
   blocking primitive. *)
let test_witness_chains () =
  let code, out = run [ "--json"; "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool) "FL007 prints the cycle" true
    (contains out "Fl007_a.lock_a -> Fl007_b.lock_b -> Fl007_a.lock_a");
  Alcotest.(check bool) "FL007 prints the A-then-B witness path" true
    (contains out "via Fl007_b.acquire_b");
  Alcotest.(check bool) "FL007 prints the B-then-A witness path" true
    (contains out "via Fl007_a.acquire_a");
  Alcotest.(check bool) "FL008 names the held lock" true
    (contains out "holding Fl008.lock");
  Alcotest.(check bool) "FL008 prints the interprocedural chain" true
    (contains out "Fl008.flush > Fl008.write_back reaches Unix.write");
  Alcotest.(check bool) "FL009 names the leaked binding" true
    (contains out "Unix.openfile [fd]")

let test_human_format () =
  let code, out = run [ "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool) "compiler-style span" true
    (contains out "lib/server/fl001.ml:8:");
  Alcotest.(check bool) "severity and rule id" true (contains out "error[FL001]");
  Alcotest.(check bool) "fix hint" true (contains out "hint:")

let test_list_rules () =
  let code, out = run [ "--list-rules" ] in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun (rule, _, _) ->
      Alcotest.(check bool) (rule ^ " documented") true (contains out rule))
    expected

(* A minimal recursive-descent JSON well-formedness checker (no JSON
   library in the test closure): accepts exactly one complete value. *)
let json_well_formed s =
  let n = String.length s in
  let exception Bad in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c = if peek () = Some c then advance () else raise Bad in
  let skip_ws () =
    while
      match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Bad
              done
          | _ -> raise Bad);
          go ()
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let any = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        any := true;
        advance ()
      done;
      if not !any then raise Bad
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> raise Bad
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> raise Bad
          in
          elements ()
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Bad);
    skip_ws ()
  in
  match value () with
  | () -> !pos = n
  | exception Bad -> false

let test_sarif () =
  let path = Filename.temp_file "flix_lint_test" ".sarif" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let code, _ =
        run [ "--sarif"; path; "--root"; "lint_fixtures"; "lib"; "bin" ]
      in
      Alcotest.(check int) "findings still make the exit code nonzero" 1 code;
      let ic = open_in_bin path in
      let sarif =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "well-formed JSON" true (json_well_formed sarif);
      Alcotest.(check bool) "SARIF version" true
        (contains sarif {|"version":"2.1.0"|});
      Alcotest.(check bool) "SARIF schema" true (contains sarif "sarif-2.1.0");
      Alcotest.(check bool) "tool driver name" true
        (contains sarif {|"name":"flix_lint"|});
      (* the rule catalogue rides along so annotations get titles *)
      List.iter
        (fun (rule, _, _) ->
          Alcotest.(check bool)
            (rule ^ " in rule catalogue")
            true
            (contains sarif (Printf.sprintf {|"id":"%s"|} rule)))
        expected;
      Alcotest.(check bool) "FL008 result present" true
        (contains sarif {|"ruleId":"FL008"|});
      Alcotest.(check bool) "regions are present and 1-based" true
        (contains sarif {|"startLine":|});
      (* stale suppressions are real findings, not advisories *)
      Alcotest.(check bool) "FL010 fires as an error" true
        (contains sarif {|"ruleId":"FL010"|});
      Alcotest.(check bool) "no warning-level results remain" false
        (contains sarif {|"level":"warning"|}))

(* The shipped tree is lint-clean: run over the build copy of the real
   sources, the same files `dune build @lint` gates. *)
let test_tree_is_clean () =
  let code, out = run [ "--root"; ".."; "lib"; "bin"; "bench" ] in
  Alcotest.(check string) "no findings" "" (String.concat "\n" (List.filter (fun l -> not (contains l "flix_lint:")) (String.split_on_char '\n' out) |> List.filter (fun l -> String.trim l <> "")));
  Alcotest.(check int) "clean exit" 0 code

let () =
  Alcotest.run "flix_lint"
    [
      ( "lint",
        [
          Alcotest.test_case "fixture findings" `Quick test_fixture_findings;
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "witness chains" `Quick test_witness_chains;
          Alcotest.test_case "human format" `Quick test_human_format;
          Alcotest.test_case "rule catalogue" `Quick test_list_rules;
          Alcotest.test_case "sarif output" `Quick test_sarif;
          Alcotest.test_case "real tree lint-clean" `Quick test_tree_is_clean;
        ] );
    ]
