(* Tests for flix_lint (tools/lint/): the fixture tree under
   test/lint_fixtures seeds exactly one violation per rule plus one
   suppressed violation; and the real tree must be lint-clean, so the
   `@lint` gate stays green on every commit. The linter is exercised as
   a subprocess, exactly as the dune alias and CI run it. *)

let exe = "../tools/lint/flix_lint.exe"

let run args =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let contains hay needle = Astring.String.is_infix ~affix:needle hay

(* (rule, file, 1-based line) for each seeded fixture violation. *)
let expected =
  [
    ("FL001", "lib/server/fl001.ml", 8);
    ("FL002", "lib/store/fl002.ml", 5);
    ("FL002", "lib/util/fl002_util.ml", 4);
    ("FL002", "lib/shard/fl002_shard.ml", 5);
    ("FL002", "lib/shard/fl002_portal_closure.ml", 6);
    ("FL003", "lib/graph/fl003.ml", 4);
    ("FL004", "bin/fl004.ml", 4);
    ("FL005", "lib/flix/fl005.ml", 4);
    ("FL006", "lib/flix/fl006_no_mli.ml", 1);
  ]

let test_fixture_findings () =
  let code, out = run [ "--json"; "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "findings make the exit code nonzero" 1 code;
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int)
    "exactly one finding per seeded rule" (List.length expected)
    (List.length lines);
  List.iter
    (fun (rule, file, line) ->
      let hit l =
        contains l (Printf.sprintf {|"rule":"%s"|} rule)
        && contains l (Printf.sprintf {|"file":"%s"|} file)
        && contains l (Printf.sprintf {|"line":%d|} line)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s reported at %s:%d" rule file line)
        true
        (List.exists hit lines))
    expected

let test_suppression () =
  let code, out = run [ "--json"; "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool)
    "suppressed fixture produces no finding" false
    (contains out "suppressed.ml");
  (* The human summary still accounts for what was silenced. *)
  let _, human = run [ "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check bool) "summary counts the suppression" true
    (contains human "(1 suppressed)")

let test_human_format () =
  let code, out = run [ "--root"; "lint_fixtures"; "lib"; "bin" ] in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool) "compiler-style span" true
    (contains out "lib/server/fl001.ml:8:");
  Alcotest.(check bool) "severity and rule id" true (contains out "error[FL001]");
  Alcotest.(check bool) "fix hint" true (contains out "hint:")

let test_list_rules () =
  let code, out = run [ "--list-rules" ] in
  Alcotest.(check int) "exit" 0 code;
  List.iter
    (fun (rule, _, _) ->
      Alcotest.(check bool) (rule ^ " documented") true (contains out rule))
    expected

(* The shipped tree is lint-clean: run over the build copy of the real
   sources, the same files `dune build @lint` gates. *)
let test_tree_is_clean () =
  let code, out = run [ "--root"; ".."; "lib"; "bin"; "bench" ] in
  Alcotest.(check string) "no findings" "" (String.concat "\n" (List.filter (fun l -> not (contains l "flix_lint:")) (String.split_on_char '\n' out) |> List.filter (fun l -> String.trim l <> "")));
  Alcotest.(check int) "clean exit" 0 code

let () =
  Alcotest.run "flix_lint"
    [
      ( "lint",
        [
          Alcotest.test_case "fixture findings" `Quick test_fixture_findings;
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "human format" `Quick test_human_format;
          Alcotest.test_case "rule catalogue" `Quick test_list_rules;
          Alcotest.test_case "real tree lint-clean" `Quick test_tree_is_clean;
        ] );
    ]
