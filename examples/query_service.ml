(* End-to-end demo of the concurrent query service: build a small DBLP
   collection, serve it on an ephemeral port, drive it with concurrent
   clients, then scrape the metrics.

     dune exec examples/query_service.exe *)

module C = Fx_xml.Collection
module Flix = Fx_flix.Flix
module Server = Fx_server.Server
module Client = Fx_server.Server_client
module Dblp = Fx_workload.Dblp_gen

let () =
  let collection = Dblp.collection { Dblp.default with n_docs = 300; seed = 11 } in
  Printf.printf "collection: %s\n%!" (C.stats collection);
  let flix = Flix.build collection in
  let server =
    Server.start ~config:{ Server.default_config with workers = 4 } flix
  in
  let port = Server.port server in
  Printf.printf "server up on 127.0.0.1:%d with 4 worker domains\n\n%!" port;

  (* One synchronous client: a descendants query with names resolved
     server-side, rendered with the collection like a direct call. *)
  let c = Client.connect ~port () in
  Printf.printf "PING -> %b\n" (Client.ping c);
  let doc = Dblp.doc_name 0 in
  (match Client.descendants c ~doc ~tag:"author" ~k:5 () with
  | Ok (Client.Value (items, timed_out)) ->
      Printf.printf "DESCENDANTS %s - author 5 -> %d items%s\n" doc
        (List.length items)
        (if timed_out then " (timed out)" else "");
      List.iter
        (fun (it : Fx_server.Protocol.item) ->
          Printf.printf "  %s (dist %d)\n" (C.describe collection it.node) it.dist)
        items
  | Ok Client.Busy -> print_endline "server busy"
  | Ok (Client.Server_error e) -> Printf.printf "server error: %s\n" e
  | Error e -> Printf.printf "transport error: %s\n" e);

  (* The A//B form over the whole collection. *)
  (match Client.evaluate c ~start_tag:"inproceedings" ~target_tag:"author" ~k:3 () with
  | Ok (Client.Value (items, _)) ->
      Printf.printf "\nEVALUATE inproceedings author 3 -> %d items\n" (List.length items)
  | _ -> print_endline "evaluate failed");

  (* Hammer the pool from four threads, one client each. *)
  let requests_per_thread = 50 in
  let threads =
    List.init 4 (fun tid ->
        Thread.create
          (fun () ->
            let c = Client.connect ~port () in
            for i = 0 to requests_per_thread - 1 do
              let doc = Dblp.doc_name ((tid + (4 * i)) mod 300) in
              ignore (Client.descendants c ~doc ~tag:"author" ~k:10 ())
            done;
            Client.close c)
          ())
  in
  List.iter Thread.join threads;
  Printf.printf "\n4 threads x %d DESCENDANTS requests done; metrics excerpt:\n\n"
    requests_per_thread;
  (match Client.metrics c with
  | Ok (Client.Value lines) ->
      List.iter
        (fun l ->
          if
            String.length l > 0 && l.[0] <> '#'
            && (String.length l < 26 || String.sub l 0 26 <> "flix_request_duration_ms_b")
          then print_endline l)
        lines
  | _ -> print_endline "metrics failed");
  Client.close c;
  Server.stop server;
  print_endline "\nserver stopped."
