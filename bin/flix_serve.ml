(* flix_serve — stand up the concurrent FliX query service.

     dune exec bin/flix_serve.exe                       # 600-doc DBLP, port 7070
     dune exec bin/flix_serve.exe -- --docs 6210 --workers 8
     dune exec bin/flix_serve.exe -- --xml-dir /tmp/dblp --port 7071
     dune exec bin/flix_serve.exe -- --index-dir /var/flix  # persistent serving

   With --index-dir the service runs from a persistent Disk_hopi
   deployment: if the directory already holds one it is opened and the
   collection is never touched; otherwise the collection is indexed,
   saved there, and served from disk — so the next boot skips the
   build entirely.

   Then talk the line protocol, e.g.:

     $ nc 127.0.0.1 7070
     PING
     PONG
     DESCENDANTS dblp_0000 - author 5
     ITEM 12 1 0
     ...
     DONE 5
     METRICS
     LINES 123
     ... *)

module C = Fx_xml.Collection
module Flix = Fx_flix.Flix
module Server = Fx_server.Server
module Path_index = Fx_index.Path_index
module Hopi = Fx_index.Hopi
module Disk_hopi = Fx_index.Disk_hopi
module Catalog = Fx_index.Catalog

let usage () =
  print_endline
    "usage: flix_serve [--port N] [--host A] [--workers N] [--queue N]\n\
    \                  [--deadline-ms F] [--docs N | --xml-dir DIR] [--seed N]\n\
    \                  [--index-dir DIR] [--pool-pages N]";
  exit 1

type source = Generate of int | Xml_dir of string

let load_xml_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
  in
  if files = [] then failwith (Printf.sprintf "no .xml files in %s" dir);
  let docs =
    List.filter_map
      (fun f ->
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let body = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let name = Filename.remove_extension f in
        match Fx_xml.Xml_parser.parse ~name body with
        | Ok d -> Some d
        | Error e ->
            Printf.eprintf "warning: skipped %s: %s\n" f
              (Fx_xml.Xml_parser.error_to_string e);
            None)
      files
  in
  C.build docs

let load_collection source seed =
  match source with
  | Generate n_docs ->
      Printf.printf "generating synthetic DBLP collection (%d docs, seed %d)...\n%!"
        n_docs seed;
      Fx_workload.Dblp_gen.collection
        { Fx_workload.Dblp_gen.default with n_docs; seed }
  | Xml_dir dir ->
      Printf.printf "loading XML documents from %s...\n%!" dir;
      load_xml_dir dir

let catalog_path prefix = prefix ^ ".catalog"

(* Build a global HOPI over the collection and persist it (plus the
   serving catalog) under [dir], then reopen it as the disk backend. *)
let build_deployment ~dir ~prefix ~pool_pages source seed =
  let collection = load_collection source seed in
  Printf.printf "collection: %s\n%!" (C.stats collection);
  Printf.printf "building HOPI index...\n%!";
  let dg = { Path_index.graph = C.graph collection; tag = C.tag collection } in
  let hopi, build_ns = Fx_util.Stopwatch.time_ns (fun () -> Hopi.build dg) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Disk_hopi.save ~path:prefix dg hopi;
  Catalog.save ~path:(catalog_path prefix) (Catalog.of_collection collection);
  Printf.printf "saved deployment to %s (indexed in %.2f s)\n%!" dir
    (Int64.to_float build_ns /. 1e9);
  let disk = Disk_hopi.open_ ?pool_pages ~path:prefix () in
  (disk, Catalog.load (catalog_path prefix))

let open_deployment ~prefix ~pool_pages () =
  Printf.printf "opening deployment %s...\n%!" prefix;
  let catalog = Catalog.load (catalog_path prefix) in
  let disk = Disk_hopi.open_ ?pool_pages ~path:prefix () in
  (disk, catalog)

let serve cfg backend =
  let server = Server.start_backend ~config:cfg backend in
  Printf.printf "serving on %s:%d (%d workers, queue %d, deadline %.0f ms)\n%!"
    cfg.Server.host (Server.port server) cfg.Server.workers cfg.Server.queue_capacity
    cfg.Server.deadline_ms;
  Printf.printf "verbs: PING | STATS | METRICS | DESCENDANTS | CONNECTED | EVALUATE\n%!";
  (* Serve until interrupted; the acceptor and workers do all the work.
     The main thread idles in short interruptible naps — a handler set
     on a thread parked in Condition.wait would never run. *)
  let quit = Atomic.make false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set quit true));
  while not (Atomic.get quit) do
    Thread.delay 0.2
  done;
  Printf.printf "\nshutting down...\n%!";
  Server.stop server

let () =
  let cfg = ref { Server.default_config with port = 7070 } in
  let source = ref (Generate 600) in
  let seed = ref 7 in
  let index_dir = ref None in
  let pool_pages = ref None in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest ->
        cfg := { !cfg with port = int_of_string v };
        parse rest
    | "--host" :: v :: rest ->
        cfg := { !cfg with host = v };
        parse rest
    | "--workers" :: v :: rest ->
        cfg := { !cfg with workers = int_of_string v };
        parse rest
    | "--queue" :: v :: rest ->
        cfg := { !cfg with queue_capacity = int_of_string v };
        parse rest
    | "--deadline-ms" :: v :: rest ->
        cfg := { !cfg with deadline_ms = float_of_string v };
        parse rest
    | "--docs" :: v :: rest ->
        source := Generate (int_of_string v);
        parse rest
    | "--xml-dir" :: v :: rest ->
        source := Xml_dir v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--index-dir" :: v :: rest ->
        index_dir := Some v;
        parse rest
    | "--pool-pages" :: v :: rest ->
        pool_pages := Some (int_of_string v);
        parse rest
    | _ -> usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv)) with
  | Failure _ -> usage ());
  match !index_dir with
  | Some dir -> (
      (* Persistent serving. A mangled or half-written store must come
         back as one diagnostic line, not an uncaught backtrace. *)
      let prefix = Filename.concat dir "index" in
      match
        if Sys.file_exists (catalog_path prefix) then
          open_deployment ~prefix ~pool_pages:!pool_pages ()
        else build_deployment ~dir ~prefix ~pool_pages:!pool_pages !source !seed
      with
      | exception Fx_util.Codec.Corrupt msg ->
          Printf.eprintf "flix_serve: corrupt index store under %s: %s\n" dir msg;
          exit 1
      | exception Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "flix_serve: cannot use index dir %s: %s (%s %s)\n" dir
            (Unix.error_message err) fn arg;
          exit 1
      | exception Sys_error msg ->
          Printf.eprintf "flix_serve: cannot use index dir %s: %s\n" dir msg;
          exit 1
      | exception Invalid_argument msg ->
          Printf.eprintf "flix_serve: cannot use index dir %s: %s\n" dir msg;
          exit 1
      | disk, catalog ->
          Printf.printf "deployment: %d nodes, %d documents, %d tag names\n%!"
            (Catalog.n_nodes catalog) (Catalog.n_docs catalog) (Catalog.n_tags catalog);
          Fun.protect
            ~finally:(fun () -> Disk_hopi.close disk)
            (fun () -> serve !cfg (Server.On_disk { hopi = disk; catalog })))
  | None ->
      let collection = load_collection !source !seed in
      Printf.printf "collection: %s\n%!" (C.stats collection);
      Printf.printf "building FliX index...\n%!";
      let flix, build_s = Fx_util.Stopwatch.time_ns (fun () -> Flix.build collection) in
      Printf.printf "built in %.2f s (%.2f MB)\n%!"
        (Int64.to_float build_s /. 1e9)
        (float_of_int (Flix.index_size_bytes flix) /. 1048576.0);
      serve !cfg (Server.In_memory flix)
