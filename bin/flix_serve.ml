(* flix_serve — stand up the concurrent FliX query service.

     dune exec bin/flix_serve.exe                       # 600-doc DBLP, port 7070
     dune exec bin/flix_serve.exe -- --docs 6210 --workers 8
     dune exec bin/flix_serve.exe -- --xml-dir /tmp/dblp --port 7071
     dune exec bin/flix_serve.exe -- --index-dir /var/flix  # persistent serving

   With --index-dir the service runs from a persistent Disk_hopi
   deployment: if the directory already holds one it is opened and the
   collection is never touched; otherwise the collection is indexed,
   saved there, and served from disk — so the next boot skips the
   build entirely.

   Then talk the line protocol, e.g.:

     $ nc 127.0.0.1 7070
     PING
     PONG
     DESCENDANTS dblp_0000 - author 5
     ITEM 12 1 0
     ...
     DONE 5
     METRICS
     LINES 123
     ... *)

module C = Fx_xml.Collection
module Flix = Fx_flix.Flix
module Server = Fx_server.Server
module Path_index = Fx_index.Path_index
module Hopi = Fx_index.Hopi
module Disk_hopi = Fx_index.Disk_hopi
module Catalog = Fx_index.Catalog
module Shard_plan = Fx_shard.Shard_plan
module Portal_closure = Fx_shard.Portal_closure
module Coordinator = Fx_shard.Coordinator

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let usage () =
  print_endline
    "usage: flix_serve [--port N] [--host A] [--workers N] [--queue N]\n\
    \                  [--deadline-ms F] [--docs N | --xml-dir DIR] [--seed N]\n\
    \                  [--index-dir DIR] [--pool-pages N] [--pool-stripes N]\n\
    \       flix_serve --build-shards N --index-dir DIR [--docs N | --xml-dir DIR]\n\
    \                  [--no-closure]\n\
    \       flix_serve --coordinator --index-dir DIR --shard HOST:PORT [--shard ...]\n\
    \                  [--coord-cache N] [--no-batch] [--no-closure]";
  exit 1

type source = Generate of int | Xml_dir of string

let load_xml_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
  in
  if files = [] then failwith (Printf.sprintf "no .xml files in %s" dir);
  let docs =
    List.filter_map
      (fun f ->
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let body = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let name = Filename.remove_extension f in
        match Fx_xml.Xml_parser.parse ~name body with
        | Ok d -> Some d
        | Error e ->
            Printf.eprintf "warning: skipped %s: %s\n" f
              (Fx_xml.Xml_parser.error_to_string e);
            None)
      files
  in
  C.build docs

let load_collection source seed =
  match source with
  | Generate n_docs ->
      Printf.printf "generating synthetic DBLP collection (%d docs, seed %d)...\n%!"
        n_docs seed;
      Fx_workload.Dblp_gen.collection
        { Fx_workload.Dblp_gen.default with n_docs; seed }
  | Xml_dir dir ->
      Printf.printf "loading XML documents from %s...\n%!" dir;
      load_xml_dir dir

let catalog_path prefix = prefix ^ ".catalog"

(* Build a global HOPI over the collection and persist it (plus the
   serving catalog) under [dir], then reopen it as the disk backend. *)
let build_deployment ~dir ~prefix ~pool_pages ~pool_stripes source seed =
  let collection = load_collection source seed in
  Printf.printf "collection: %s\n%!" (C.stats collection);
  Printf.printf "building HOPI index...\n%!";
  let dg = { Path_index.graph = C.graph collection; tag = C.tag collection } in
  let hopi, build_ns = Fx_util.Stopwatch.time_ns (fun () -> Hopi.build dg) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Disk_hopi.save ~path:prefix dg hopi;
  Catalog.save ~path:(catalog_path prefix) (Catalog.of_collection collection);
  Printf.printf "saved deployment to %s (indexed in %.2f s)\n%!" dir
    (Int64.to_float build_ns /. 1e9);
  let disk = Disk_hopi.open_ ?pool_pages ?stripes:pool_stripes ~path:prefix () in
  (disk, Catalog.load (catalog_path prefix))

let open_deployment ~prefix ~pool_pages ~pool_stripes () =
  Printf.printf "opening deployment %s...\n%!" prefix;
  let catalog = Catalog.load (catalog_path prefix) in
  let disk = Disk_hopi.open_ ?pool_pages ?stripes:pool_stripes ~path:prefix () in
  (disk, catalog)

let serve ?(register = fun _ -> ()) ?admin ?(shutdown = fun _ -> ()) cfg backend =
  let server = Server.start_backend ~config:cfg ?admin backend in
  register server;
  Printf.printf "serving on %s:%d (%d workers, queue %d, deadline %.0f ms)\n%!"
    cfg.Server.host (Server.port server) cfg.Server.workers cfg.Server.queue_capacity
    cfg.Server.deadline_ms;
  Printf.printf
    "verbs: PING | STATS | METRICS | DESCENDANTS | CONNECTED | EVALUATE | EPOCH | \
     INGEST | EVICT | RELOAD\n\
     %!";
  (* Serve until interrupted; the acceptor and workers do all the work.
     The main thread idles in short interruptible naps — a handler set
     on a thread parked in Condition.wait would never run. *)
  let quit = Atomic.make false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set quit true));
  while not (Atomic.get quit) do
    Thread.delay 0.2
  done;
  Printf.printf "\nshutting down...\n%!";
  Server.stop server;
  (* Resource cleanup happens against whatever backend is serving {e
     now} — after a RELOAD the one this process originally opened was
     already retired and closed by the swap. *)
  shutdown server

let manifest_path dir = Filename.concat dir "manifest.shards"

(* Build one disk deployment per shard — each a plain --index-dir
   directory, DIR/shard<i>/index — plus the coordinator's manifest,
   which carries the portal closure unless --no-closure. The shard
   HOPIs are still in memory when the closure needs its within-shard
   portal distances, so the closure build adds no probe traffic. *)
let build_shards ~dir ~n_shards ~with_closure source seed =
  let collection = load_collection source seed in
  Printf.printf "collection: %s\n%!" (C.stats collection);
  let plan = Shard_plan.plan ~n_shards collection in
  List.iter print_endline (Shard_plan.describe plan);
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let docs = Shard_plan.shard_documents plan collection in
  let hopis =
    Array.mapi
      (fun s doc_list ->
        let sub = C.build doc_list in
        let subdir = Filename.concat dir (Printf.sprintf "shard%d" s) in
        (try Unix.mkdir subdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let prefix = Filename.concat subdir "index" in
        let dg = { Path_index.graph = C.graph sub; tag = C.tag sub } in
        let hopi, build_ns = Fx_util.Stopwatch.time_ns (fun () -> Hopi.build dg) in
        Disk_hopi.save ~path:prefix dg hopi;
        Catalog.save ~path:(catalog_path prefix) (Catalog.of_collection sub);
        Printf.printf "shard %d: %s -> %s (indexed in %.2f s)\n%!" s (C.stats sub)
          subdir
          (Int64.to_float build_ns /. 1e9);
        hopi)
      docs
  in
  let closure =
    if not with_closure then begin
      Printf.printf "portal closure skipped (--no-closure)\n%!";
      None
    end
    else begin
      Printf.printf "building portal closure...\n%!";
      let c =
        Portal_closure.build ~plan
          ~local_dist:(fun ~shard ~a ~b -> Hopi.distance hopis.(shard) a b)
      in
      Printf.printf "%s\n%!" (Portal_closure.describe c);
      Some c
    end
  in
  Portal_closure.save_manifest ~path:(manifest_path dir) ~plan closure;
  Printf.printf "wrote %d shard deployments and %s\n%!" (Array.length docs)
    (manifest_path dir);
  Printf.printf "serve each shard with: flix_serve --index-dir %s/shard<i>\n%!" dir

let serve_coordinator cfg ~dir ~shards ~coord_cache ~batching ~use_closure =
  let plan, closure = Portal_closure.load_manifest (manifest_path dir) in
  List.iter print_endline (Shard_plan.describe plan);
  if List.length shards <> Shard_plan.n_shards plan then begin
    Printf.eprintf "flix_serve: plan wants %d shards, got %d --shard addresses\n"
      (Shard_plan.n_shards plan) (List.length shards);
    exit 1
  end;
  (match coord_cache with
  | Some n -> Printf.printf "coordinator EVALUATE cache: %d entries\n%!" n
  | None -> ());
  if not batching then Printf.printf "probe batching disabled (--no-batch)\n%!";
  let closure = if use_closure then closure else None in
  (match closure with
  | Some c -> Printf.printf "%s\n%!" (Portal_closure.describe c)
  | None ->
      Printf.printf "portal closure: %s; portal distances will be probed\n%!"
        (if use_closure then "none in manifest" else "disabled (--no-closure)"));
  let coord =
    Coordinator.create ~batching ?query_cache:coord_cache ?closure ~plan ~shards ()
  in
  let backend0 = Server.Custom (Coordinator.backend coord) in
  (* RELOAD swaps the serving coordinator, so everything that outlives
     one request — the metrics collector, the admin hooks, the exit
     cleanup — reads through [current]. A replaced coordinator waits in
     [retired] until the snapshot's retire callback reports its last
     pinned request drained; that callback runs on whichever thread
     drops the last pin, hence the lock and the physical-identity
     lookup from the retired backend value to its coordinator. *)
  let current = ref (backend0, coord) in
  let retired_m = Mutex.create () in
  let retired = ref [] in
  let admin =
    {
      Server.admin_reload =
        (fun () ->
          match Portal_closure.load_manifest (manifest_path dir) with
          | exception Fx_util.Codec.Corrupt msg ->
              Error ("corrupt shard manifest: " ^ msg)
          | exception Sys_error msg -> Error msg
          | plan, manifest_closure -> (
              let closure = if use_closure then manifest_closure else None in
              match Coordinator.reload ?closure (snd !current) ~plan with
              | Error msg -> Error msg
              | Ok fresh ->
                  let b = Server.Custom (Coordinator.backend fresh) in
                  with_lock retired_m (fun () -> retired := !current :: !retired);
                  current := (b, fresh);
                  Ok b));
      admin_retire =
        (fun old ->
          let found =
            with_lock retired_m (fun () ->
                match List.partition (fun (b, _) -> b == old) !retired with
                | [ (_, c) ], rest ->
                    retired := rest;
                    Some c
                | _ -> None)
          in
          match found with Some c -> Coordinator.close c | None -> ());
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Coordinator.close (snd !current);
      with_lock retired_m (fun () ->
          List.iter (fun (_, c) -> Coordinator.close c) !retired))
    (fun () ->
      serve cfg backend0 ~admin
        ~register:(fun server ->
          Fx_server.Metrics.register_collector (Server.metrics server) (fun () ->
              Coordinator.metric_lines (snd !current) ())))

let serve_plain cfg source seed index_dir pool_pages pool_stripes =
  match index_dir with
  | Some dir -> (
      (* Persistent serving. A mangled or half-written store must come
         back as one diagnostic line, not an uncaught backtrace. *)
      let prefix = Filename.concat dir "index" in
      match
        if Sys.file_exists (catalog_path prefix) then
          open_deployment ~prefix ~pool_pages ~pool_stripes ()
        else build_deployment ~dir ~prefix ~pool_pages ~pool_stripes source seed
      with
      | exception Fx_util.Codec.Corrupt msg ->
          Printf.eprintf "flix_serve: corrupt index store under %s: %s\n" dir msg;
          exit 1
      | exception Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "flix_serve: cannot use index dir %s: %s (%s %s)\n" dir
            (Unix.error_message err) fn arg;
          exit 1
      | exception Sys_error msg ->
          Printf.eprintf "flix_serve: cannot use index dir %s: %s\n" dir msg;
          exit 1
      | exception Invalid_argument msg ->
          Printf.eprintf "flix_serve: cannot use index dir %s: %s\n" dir msg;
          exit 1
      | disk, catalog ->
          Printf.printf "deployment: %d nodes, %d documents, %d tag names\n%!"
            (Catalog.n_nodes catalog) (Catalog.n_docs catalog) (Catalog.n_tags catalog);
          (* RELOAD reopens the deployment from disk; the retired pager
             is closed only after its last pinned request drains. The
             exit path closes whatever backend is serving at that point,
             not the handle opened above (already gone after a swap). *)
          let admin =
            {
              Server.admin_reload =
                (fun () ->
                  match open_deployment ~prefix ~pool_pages ~pool_stripes () with
                  | exception Fx_util.Codec.Corrupt msg ->
                      Error ("corrupt index store: " ^ msg)
                  | exception Unix.Unix_error (err, fn, arg) ->
                      Error
                        (Printf.sprintf "%s (%s %s)" (Unix.error_message err) fn arg)
                  | exception Sys_error msg -> Error msg
                  | disk, catalog -> Ok (Server.On_disk { hopi = disk; catalog }));
              admin_retire =
                (function
                | Server.On_disk { hopi; _ } -> Disk_hopi.close hopi
                | Server.In_memory _ | Server.Custom _ -> ());
            }
          in
          serve cfg ~admin
            (Server.On_disk { hopi = disk; catalog })
            ~shutdown:(fun server ->
              match Server.current_backend server with
              | Server.On_disk { hopi; _ } -> Disk_hopi.close hopi
              | Server.In_memory _ | Server.Custom _ -> ()))
  | None ->
      let collection = load_collection source seed in
      Printf.printf "collection: %s\n%!" (C.stats collection);
      Printf.printf "building FliX index...\n%!";
      let flix, build_s = Fx_util.Stopwatch.time_ns (fun () -> Flix.build collection) in
      Printf.printf "built in %.2f s (%.2f MB)\n%!"
        (Int64.to_float build_s /. 1e9)
        (float_of_int (Flix.index_size_bytes flix) /. 1048576.0);
      (* In-memory RELOAD rebuilds from the original source (useful when
         --xml-dir contents changed); INGEST/EVICT mutate the collection
         incrementally without it. *)
      let admin =
        {
          Server.admin_reload =
            (fun () ->
              match Flix.build (load_collection source seed) with
              | exception (Failure msg | Sys_error msg) -> Error msg
              | exception Unix.Unix_error (err, fn, arg) ->
                  Error (Printf.sprintf "%s (%s %s)" (Unix.error_message err) fn arg)
              | flix -> Ok (Server.In_memory flix));
          admin_retire = (fun _ -> ());
        }
      in
      serve cfg ~admin (Server.In_memory flix)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> failwith "expected HOST:PORT"
  | Some i ->
      let host = String.sub s 0 i in
      let port = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      ((if host = "" then "127.0.0.1" else host), port)

let () =
  let cfg = ref { Server.default_config with port = 7070 } in
  let source = ref (Generate 600) in
  let seed = ref 7 in
  let index_dir = ref None in
  let pool_pages = ref None in
  let pool_stripes = ref None in
  let build_n = ref None in
  let coordinator = ref false in
  let shard_addrs = ref [] in
  let coord_cache = ref None in
  let batching = ref true in
  let use_closure = ref true in
  let rec parse = function
    | [] -> ()
    | "--build-shards" :: v :: rest ->
        build_n := Some (int_of_string v);
        parse rest
    | "--coordinator" :: rest ->
        coordinator := true;
        parse rest
    | "--shard" :: v :: rest ->
        shard_addrs := parse_host_port v :: !shard_addrs;
        parse rest
    | "--coord-cache" :: v :: rest ->
        coord_cache := Some (int_of_string v);
        parse rest
    | "--no-batch" :: rest ->
        batching := false;
        parse rest
    | "--no-closure" :: rest ->
        use_closure := false;
        parse rest
    | "--port" :: v :: rest ->
        cfg := { !cfg with port = int_of_string v };
        parse rest
    | "--host" :: v :: rest ->
        cfg := { !cfg with host = v };
        parse rest
    | "--workers" :: v :: rest ->
        cfg := { !cfg with workers = int_of_string v };
        parse rest
    | "--queue" :: v :: rest ->
        cfg := { !cfg with queue_capacity = int_of_string v };
        parse rest
    | "--deadline-ms" :: v :: rest ->
        cfg := { !cfg with deadline_ms = float_of_string v };
        parse rest
    | "--docs" :: v :: rest ->
        source := Generate (int_of_string v);
        parse rest
    | "--xml-dir" :: v :: rest ->
        source := Xml_dir v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--index-dir" :: v :: rest ->
        index_dir := Some v;
        parse rest
    | "--pool-pages" :: v :: rest ->
        pool_pages := Some (int_of_string v);
        parse rest
    | "--pool-stripes" :: v :: rest ->
        pool_stripes := Some (int_of_string v);
        parse rest
    | _ -> usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv)) with
  | Failure _ -> usage ());
  match (!build_n, !coordinator, !index_dir) with
  | Some n, _, Some dir -> (
      (* Shard building: write the deployments and the manifest, then
         exit — each shard is served by its own flix_serve process. *)
      try build_shards ~dir ~n_shards:n ~with_closure:!use_closure !source !seed with
      | Invalid_argument msg | Sys_error msg ->
          Printf.eprintf "flix_serve: cannot build shards under %s: %s\n" dir msg;
          exit 1
      | Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "flix_serve: cannot build shards under %s: %s (%s %s)\n" dir
            (Unix.error_message err) fn arg;
          exit 1)
  | Some _, _, None ->
      Printf.eprintf "flix_serve: --build-shards needs --index-dir\n";
      exit 1
  | None, true, Some dir -> (
      match
        serve_coordinator !cfg ~dir ~shards:(List.rev !shard_addrs)
          ~coord_cache:!coord_cache ~batching:!batching ~use_closure:!use_closure
      with
      | () -> ()
      | exception Fx_util.Codec.Corrupt msg ->
          Printf.eprintf "flix_serve: corrupt shard manifest under %s: %s\n" dir msg;
          exit 1
      | exception Sys_error msg ->
          Printf.eprintf "flix_serve: cannot read shard manifest under %s: %s\n" dir msg;
          exit 1
      | exception Invalid_argument msg ->
          Printf.eprintf "flix_serve: bad coordinator setup: %s\n" msg;
          exit 1)
  | None, true, None ->
      Printf.eprintf "flix_serve: --coordinator needs --index-dir for the manifest\n";
      exit 1
  | None, false, _ -> serve_plain !cfg !source !seed !index_dir !pool_pages !pool_stripes
