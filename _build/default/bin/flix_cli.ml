(* flix — command-line front end.

     flix generate --kind dblp --docs 500 --out /tmp/dblp
     flix stats /tmp/dblp
     flix index /tmp/dblp --config hybrid
     flix query /tmp/dblp "//inproceedings//author" -k 10
     flix descendants /tmp/dblp --start dblp_0499 --tag article -k 10
     flix connect /tmp/dblp --from dblp_0499 --to dblp_0007 *)

open Cmdliner

module C = Fx_xml.Collection
module Flix = Fx_flix.Flix
module MB = Fx_flix.Meta_builder
module RS = Fx_flix.Result_stream

(* ---------------- shared loading ---------------- *)

let load_collection dir =
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  let xml_files = List.filter (fun f -> Filename.check_suffix f ".xml") files in
  if xml_files = [] then Error (Printf.sprintf "no .xml files in %s" dir)
  else begin
    let docs = ref [] and errors = ref [] in
    List.iter
      (fun f ->
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        close_in ic;
        let name = Filename.remove_extension f in
        match Fx_xml.Xml_parser.parse ~name body with
        | Ok d -> docs := d :: !docs
        | Error e ->
            errors := Printf.sprintf "%s: %s" f (Fx_xml.Xml_parser.error_to_string e) :: !errors)
      xml_files;
    List.iter (fun e -> Printf.eprintf "warning: skipped %s\n" e) (List.rev !errors);
    match List.rev !docs with
    | [] -> Error "no parseable documents"
    | docs -> Ok (C.build docs)
  end

type config_choice = Fixed of MB.config | Auto

let fixed_config_of_string = function
  | "naive" -> Ok MB.Naive
  | "maximal-ppo" -> Ok MB.Maximal_ppo
  | "spanning-ppo" -> Ok MB.Spanning_ppo
  | "hybrid" -> Ok MB.default_hybrid
  | s -> begin
      match String.split_on_char '-' s with
      | [ "hopi"; n ] -> begin
          match int_of_string_opt n with
          | Some max_size when max_size > 0 -> Ok (MB.Unconnected_hopi { max_size })
          | Some _ | None -> Error (`Msg "hopi-<N>: N must be a positive integer")
        end
      | [ "element"; n ] -> begin
          match int_of_string_opt n with
          | Some max_size when max_size > 0 -> Ok (MB.Element_level { max_size })
          | Some _ | None -> Error (`Msg "element-<N>: N must be a positive integer")
        end
      | _ ->
          Error
            (`Msg
               (Printf.sprintf "unknown config %S (naive|maximal-ppo|hybrid|hopi-<N>|element-<N>)" s))
    end

let config_of_string = function
  | "auto" -> Ok Auto
  | s -> Result.map (fun c -> Fixed c) (fixed_config_of_string s)

let config_conv =
  let parse s = Result.map_error (fun e -> e) (config_of_string s) in
  let print ppf = function
    | Fixed c -> Format.pp_print_string ppf (MB.config_to_string c)
    | Auto -> Format.pp_print_string ppf "auto"
  in
  Arg.conv (parse, print)

(* Resolve "auto" against the loaded collection, showing the analysis
   that drove the decision. *)
let resolve_config choice c =
  match choice with
  | Fixed config -> config
  | Auto ->
      let a = Fx_flix.Auto_config.analyse c in
      let config = Fx_flix.Auto_config.choose a in
      Printf.printf "collection analysis:\n%s\nauto-selected configuration: %s\n"
        (Format.asprintf "%a" Fx_flix.Auto_config.pp_analysis a)
        (MB.config_to_string config);
      config

let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc:"Directory of .xml documents.")

let config_arg =
  Arg.(value & opt config_conv Auto
       & info [ "config" ] ~docv:"CONFIG"
           ~doc:
             "auto (default: analyse the collection and pick) | naive | maximal-ppo | \
              spanning-ppo | hybrid | hopi-<N> | element-<N>")

let k_arg =
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Number of results to print.")

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1

(* Resolve "docname" or "docname#anchor" to a node. *)
let resolve flix spec =
  let doc, anchor =
    match String.index_opt spec '#' with
    | None -> (spec, None)
    | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  match Flix.node_of flix ~doc ~anchor with
  | Some v -> v
  | None ->
      prerr_endline ("error: cannot resolve " ^ spec);
      exit 1

(* ---------------- generate ---------------- *)

let generate kind docs seed out =
  let documents =
    match kind with
    | "dblp" ->
        Fx_workload.Dblp_gen.generate
          { Fx_workload.Dblp_gen.default with n_docs = docs; seed }
    | "web" ->
        Fx_workload.Web_gen.generate
          { Fx_workload.Web_gen.default with n_tree_docs = docs * 2 / 3; n_dense_docs = docs / 3;
            seed }
    | other ->
        prerr_endline ("error: unknown kind " ^ other ^ " (dblp|web)");
        exit 1
  in
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  List.iter
    (fun (d : Fx_xml.Xml_types.document) ->
      let path = Filename.concat out (d.name ^ ".xml") in
      let oc = open_out_bin path in
      output_string oc (Fx_xml.Xml_print.pretty d);
      close_out oc)
    documents;
  Printf.printf "wrote %d documents to %s\n" (List.length documents) out

let generate_cmd =
  let kind = Arg.(value & opt string "dblp" & info [ "kind" ] ~docv:"KIND" ~doc:"dblp | web") in
  let docs = Arg.(value & opt int 500 & info [ "docs" ] ~docv:"N" ~doc:"Document count.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.") in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Write a synthetic XML collection to disk")
    Term.(const generate $ kind $ docs $ seed $ out)

(* ---------------- stats ---------------- *)

let stats dir =
  let c = or_die (load_collection dir) in
  print_endline (C.stats c);
  let dangling = C.dangling_refs c in
  if dangling <> [] then begin
    Printf.printf "%d dangling references, e.g.:\n" (List.length dangling);
    List.iteri
      (fun i (d : C.dangling) ->
        if i < 5 then Printf.printf "  %s -> %s\n" d.src_doc d.reference)
      dangling
  end;
  (* Structural overview through the DataGuide, when tractable. *)
  let dg = { Fx_index.Path_index.graph = C.tree_graph c; tag = C.tag c } in
  let roots = List.init (C.n_docs c) (C.root_of_doc c) in
  match Fx_index.Dataguide.build dg ~roots with
  | Some g ->
      print_endline "label paths (tree structure):";
      List.iter (fun p -> print_endline ("  " ^ p))
        (Fx_index.Dataguide.paths g ~tag_name:(C.tag_name c) ~max:20)
  | None -> ()

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Collection statistics") Term.(const stats $ dir_arg)

(* ---------------- analyze ---------------- *)

let analyze dir =
  let c = or_die (load_collection dir) in
  print_endline (C.stats c);
  let a = Fx_flix.Auto_config.analyse c in
  print_endline (Format.asprintf "%a" Fx_flix.Auto_config.pp_analysis a);
  Printf.printf "recommended configuration: %s\n"
    (MB.config_to_string (Fx_flix.Auto_config.choose a));
  let est =
    Fx_graph.Tc_estimate.closure_pairs
      (Fx_graph.Tc_estimate.compute ~rounds:16 ~seed:1 (C.graph c))
  in
  Printf.printf "estimated transitive closure: %.0f pairs\n" est

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Structural analysis and configuration recommendation")
    Term.(const analyze $ dir_arg)

(* ---------------- index ---------------- *)

let index dir choice =
  let c = or_die (load_collection dir) in
  let flix = Flix.build ~config:(resolve_config choice c) c in
  print_string (Flix.report flix);
  let est =
    Fx_graph.Tc_estimate.closure_pairs
      (Fx_graph.Tc_estimate.compute ~rounds:16 ~seed:1 (C.graph c))
  in
  Printf.printf "estimated transitive closure: %.0f pairs (~%.2f MB materialised)\n" est
    (est *. 8.0 /. 1048576.0)

let index_cmd =
  Cmd.v
    (Cmd.info "index" ~doc:"Build the FliX index and report sizes/strategies")
    Term.(const index $ dir_arg $ config_arg)

(* ---------------- query ---------------- *)

let query dir choice expr k =
  let c = or_die (load_collection dir) in
  let flix = Flix.build ~config:(resolve_config choice c) c in
  match Fx_query.Query_eval.top_k ~k flix expr with
  | Error e ->
      prerr_endline ("query error " ^ e);
      exit 1
  | Ok results ->
      Printf.printf "%d results:\n" (List.length results);
      List.iter
        (fun r -> print_endline ("  " ^ Fx_query.Query_eval.describe flix r))
        results

let query_cmd =
  let expr =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH" ~doc:"XPath expression.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a (relaxed) XPath query, ranked")
    Term.(const query $ dir_arg $ config_arg $ expr $ k_arg)

(* ---------------- descendants ---------------- *)

let descendants dir choice start tag k =
  let c = or_die (load_collection dir) in
  let flix = Flix.build ~config:(resolve_config choice c) c in
  let start = resolve flix start in
  let stream = Flix.descendants flix ~start ?tag in
  List.iter
    (fun item -> print_endline ("  " ^ Flix.describe flix item))
    (RS.take k stream)

let descendants_cmd =
  let start =
    Arg.(required & opt (some string) None
         & info [ "start" ] ~docv:"DOC[#ID]" ~doc:"Start element.")
  in
  let tag =
    Arg.(value & opt (some string) None & info [ "tag" ] ~docv:"TAG" ~doc:"Target tag filter.")
  in
  Cmd.v
    (Cmd.info "descendants" ~doc:"Stream the closest descendants of an element")
    Term.(const descendants $ dir_arg $ config_arg $ start $ tag $ k_arg)

(* ---------------- connect ---------------- *)

let connect dir choice from_ to_ max_dist =
  let c = or_die (load_collection dir) in
  let flix = Flix.build ~config:(resolve_config choice c) c in
  let a = resolve flix from_ and b = resolve flix to_ in
  match Flix.connected ~max_dist flix a b with
  | Some d -> Printf.printf "connected at distance %d\n" d
  | None ->
      Printf.printf "not connected within %d hops (bidirectional check: %b)\n" max_dist
        (Flix.connected_bidir ~max_dist flix a b)

let connect_cmd =
  let from_ =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"DOC[#ID]" ~doc:"Source.")
  in
  let to_ =
    Arg.(required & opt (some string) None & info [ "to" ] ~docv:"DOC[#ID]" ~doc:"Target.")
  in
  let max_dist =
    Arg.(value & opt int 64 & info [ "max-dist" ] ~docv:"D" ~doc:"Distance threshold.")
  in
  Cmd.v
    (Cmd.info "connect" ~doc:"Connection test between two elements")
    Term.(const connect $ dir_arg $ config_arg $ from_ $ to_ $ max_dist)

let () =
  let info =
    Cmd.info "flix" ~version:"1.0.0"
      ~doc:"FliX: flexible connection indexing for linked XML collections"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; stats_cmd; analyze_cmd; index_cmd; query_cmd; descendants_cmd;
            connect_cmd ]))
