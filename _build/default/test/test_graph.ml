(* Unit and property tests for the graph substrate. *)

module Digraph = Fx_graph.Digraph
module Traversal = Fx_graph.Traversal
module Bitset = Fx_graph.Bitset
module Pq = Fx_graph.Priority_queue
module Uf = Fx_graph.Union_find
module Scc = Fx_graph.Scc
module Partition = Fx_graph.Partition
module Tc = Fx_graph.Transitive_closure
module Tc_estimate = Fx_graph.Tc_estimate
module H = Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Digraph --------------------------------------------------------- *)

let test_digraph_basic () =
  let g = Digraph.of_edges ~n:4 [ (0, 1); (0, 2); (2, 3); (0, 1) ] in
  check_int "nodes" 4 (Digraph.n_nodes g);
  check_int "edges deduped" 3 (Digraph.n_edges g);
  check_int "out 0" 2 (Digraph.out_degree g 0);
  check_int "in 3" 1 (Digraph.in_degree g 3);
  check "mem" true (Digraph.mem_edge g 0 2);
  check "not mem" false (Digraph.mem_edge g 2 0);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (2, 3) ] (Digraph.edges g)

let test_digraph_succ_sorted () =
  let g = Digraph.of_edges ~n:5 [ (0, 4); (0, 1); (0, 3); (0, 2) ] in
  Alcotest.(check (array int)) "sorted row" [| 1; 2; 3; 4 |] (Digraph.succ g 0)

let test_digraph_reverse () =
  let g = Digraph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let r = Digraph.reverse g in
  check "rev edge" true (Digraph.mem_edge r 1 0);
  check "rev edge2" true (Digraph.mem_edge r 2 1);
  check_int "rev edges" 2 (Digraph.n_edges r)

let test_digraph_bad_edge () =
  Alcotest.check_raises "out of range" (Invalid_argument "Digraph: node 7 out of range [0,3)")
    (fun () -> ignore (Digraph.of_edges ~n:3 [ (0, 7) ]))

let test_digraph_induced () =
  let g = H.small_graph () in
  let sub, mapping = Digraph.induced g [| 2; 3; 4; 5 |] in
  check_int "sub nodes" 4 (Digraph.n_nodes sub);
  (* kept edges: 2->3, 2->4, 4->5 *)
  check_int "sub edges" 3 (Digraph.n_edges sub);
  Alcotest.(check (array int)) "mapping" [| 2; 3; 4; 5 |] mapping

let test_digraph_empty () =
  let g = Digraph.empty 3 in
  check_int "no edges" 0 (Digraph.n_edges g);
  check "self reach only" true (Traversal.reachable g 1 1);
  check "no cross reach" false (Traversal.reachable g 0 1)

let prop_reverse_involution =
  H.qtest "reverse (reverse g) = g" (H.digraph_arb ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      Digraph.edges (Digraph.reverse (Digraph.reverse g)) = Digraph.edges g)

let prop_degree_sum =
  H.qtest "sum of out-degrees = edge count" (H.digraph_arb ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let sum = ref 0 in
      for v = 0 to n - 1 do
        sum := !sum + Digraph.out_degree g v
      done;
      !sum = Digraph.n_edges g)

let prop_mem_edge_consistent =
  H.qtest "mem_edge agrees with edges list" (H.digraph_arb ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      List.for_all (fun (u, v) -> Digraph.mem_edge g u v) (Digraph.edges g)
      && List.for_all (fun (u, v) -> Digraph.mem_edge g u v) edges)

(* --- Bitset ---------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  check "mem 0" true (Bitset.mem s 0);
  check "mem 63" true (Bitset.mem s 63);
  check "not mem 50" false (Bitset.mem s 50);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 2 (Bitset.cardinal s)

let test_bitset_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 2; 3; 4 ] in
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list i);
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list u)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.add s 8)

let prop_bitset_roundtrip =
  H.qtest "of_list/to_list roundtrip"
    QCheck.(list (int_bound 63))
    (fun xs ->
      let s = Bitset.of_list 64 xs in
      Bitset.to_list s = List.sort_uniq compare xs)

(* --- Priority queue --------------------------------------------------- *)

let test_pq_order () =
  let q = Pq.create () in
  List.iter (fun (p, v) -> Pq.insert q p v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ];
  let drain () =
    let rec go acc = match Pq.extract_min q with None -> List.rev acc | Some x -> go (x :: acc) in
    go []
  in
  Alcotest.(check (list (pair int string)))
    "sorted" [ (1, "a"); (2, "b"); (3, "c"); (5, "e") ] (drain ())

let test_pq_empty () =
  let q = Pq.create () in
  check "empty" true (Pq.is_empty q);
  check "no min" true (Pq.extract_min q = None);
  Pq.insert q 1 ();
  check "nonempty" false (Pq.is_empty q);
  Pq.clear q;
  check "cleared" true (Pq.is_empty q)

let prop_pq_sorts =
  H.qtest "extracts in non-decreasing priority"
    QCheck.(list small_int)
    (fun prios ->
      let q = Pq.create () in
      List.iter (fun p -> Pq.insert q p p) prios;
      let rec drain acc =
        match Pq.extract_min q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

(* --- Union-find -------------------------------------------------------- *)

let test_uf () =
  let uf = Uf.create 5 in
  check_int "classes" 5 (Uf.n_classes uf);
  check "union 0 1" true (Uf.union uf 0 1);
  check "union 1 2" true (Uf.union uf 1 2);
  check "re-union" false (Uf.union uf 0 2);
  check "same" true (Uf.same uf 0 2);
  check "not same" false (Uf.same uf 0 3);
  check_int "class size" 3 (Uf.class_size uf 1);
  check_int "classes after" 3 (Uf.n_classes uf)

(* --- Traversal ---------------------------------------------------------- *)

let test_bfs_distances () =
  let g = H.small_graph () in
  let d = Traversal.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 1; 2; 2; 3; 4; 5 |] d;
  let d2 = Traversal.bfs_distances g 5 in
  check_int "unreachable" (-1) d2.(0);
  check_int "cycle dist" 2 d2.(7)

let test_distance_and_path () =
  let g = H.small_graph () in
  check "dist 0->7" true (Traversal.distance g 0 7 = Some 5);
  check "dist 3->0" true (Traversal.distance g 3 0 = None);
  check "self" true (Traversal.distance g 4 4 = Some 0);
  match Traversal.shortest_path g 0 5 with
  | Some path ->
      Alcotest.(check (list int)) "path" [ 0; 2; 4; 5 ] path
  | None -> Alcotest.fail "expected path"

let test_descendants_sorted () =
  let g = H.small_graph () in
  let d = Traversal.descendants g 2 in
  check "self first" true (List.hd d = (2, 0));
  check "sorted" true (H.sorted_by_distance d);
  check_int "count" 6 (List.length d)

let test_dfs_forest_numbers () =
  let g = H.small_forest () in
  let num = Traversal.dfs_forest g in
  (* Preorder: 0 1 2 3 4; node 0 first, subtree of 2 contiguous. *)
  check_int "pre root" 0 num.pre.(0);
  check_int "depth 3" 2 num.depth.(3);
  check_int "parent 3" 2 num.parent.(3);
  check_int "parent root" (-1) num.parent.(0);
  (* post of an ancestor is greater than every descendant's. *)
  check "post order" true (num.post.(0) > num.post.(2) && num.post.(2) > num.post.(3))

let test_is_forest () =
  check "forest" true (Traversal.is_forest (H.small_forest ()));
  check "not forest (cycle)" false (Traversal.is_forest (H.small_graph ()));
  check "two parents" false
    (Traversal.is_forest (Digraph.of_edges ~n:3 [ (0, 2); (1, 2) ]))

let test_topological () =
  (match Traversal.topological_order (H.small_forest ()) with
  | None -> Alcotest.fail "forest is acyclic"
  | Some order ->
      let pos = Array.make 6 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Digraph.iter_edges (H.small_forest ()) (fun u v ->
          check "topo respects edges" true (pos.(u) < pos.(v))));
  check "cyclic" true (Traversal.topological_order (H.small_graph ()) = None)

let prop_bfs_triangle =
  H.qtest "triangle inequality over edges" (H.digraph_arb ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let ok = ref true in
      for s = 0 to min 4 (n - 1) do
        let d = Traversal.bfs_distances g s in
        Digraph.iter_edges g (fun u v ->
            if d.(u) >= 0 then ok := !ok && d.(v) >= 0 && d.(v) <= d.(u) + 1)
      done;
      !ok)

let prop_descendants_match_bfs =
  H.qtest "descendants = bfs distance set" (H.digraph_arb ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let d = Traversal.bfs_distances g 0 in
      let expected =
        List.filter (fun (_, dist) -> dist >= 0) (Array.to_list (Array.mapi (fun v x -> (v, x)) d))
      in
      H.same_results (Traversal.descendants g 0) expected)

(* --- SCC ------------------------------------------------------------------ *)

let test_scc_small () =
  let g = H.small_graph () in
  let scc = Scc.compute g in
  check_int "components" 7 scc.n_components;
  check "6 and 7 together" true (scc.component.(6) = scc.component.(7));
  check "0 and 1 apart" true (scc.component.(0) <> scc.component.(1))

let test_scc_condensation_dag () =
  let g = Digraph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ] in
  let scc, dag = Scc.condensation g in
  check_int "two components" 2 scc.n_components;
  check "dag acyclic" true (Traversal.is_acyclic dag);
  check_int "one condensed edge" 1 (Digraph.n_edges dag)

let prop_scc_mutual_reach =
  H.qtest "same component iff mutually reachable" (H.digraph_arb ~max_n:12 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let scc = Scc.compute g in
      List.for_all
        (fun (u, v) ->
          (scc.component.(u) = scc.component.(v))
          = (Traversal.reachable g u v && Traversal.reachable g v u))
        (H.all_pairs n))

let prop_condensation_edge_direction =
  H.qtest "condensation edges go to smaller ids" (H.digraph_arb ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let _, dag = Scc.condensation g in
      let ok = ref true in
      Digraph.iter_edges dag (fun c c' -> ok := !ok && c > c');
      !ok)

(* --- Partition -------------------------------------------------------------- *)

let test_partition_bounds () =
  let g = H.small_graph () in
  let a = Partition.bounded_bfs ~max_size:3 g in
  check "cover" true (Partition.check_cover ~n:8 a);
  Array.iter (fun s -> check "size bound" true (s <= 3)) a.sizes

let test_partition_whole () =
  let g = H.small_forest () in
  (* One part per weakly-connected component: the 5-node tree plus the
     isolated node 5. *)
  let a = Partition.bounded_bfs ~max_size:100 g in
  check_int "parts = components" 2 a.n_parts;
  check_int "no cut" 0 (Partition.cut_size g a.part)

let test_partition_by_units () =
  (* Units 0..3, two nodes each; weight 2 each; bound 4 -> pairs. *)
  let g = Digraph.of_edges ~n:8 [ (1, 2); (3, 4); (5, 6); (7, 0) ] in
  let units = [| 0; 0; 1; 1; 2; 2; 3; 3 |] in
  let a = Partition.by_units ~units ~unit_weight:[| 2; 2; 2; 2 |] ~max_size:4 g in
  check "cover" true (Partition.check_cover ~n:8 a);
  (* A unit is never split. *)
  for v = 0 to 6 do
    if units.(v) = units.(v + 1) then check "unit intact" true (a.part.(v) = a.part.(v + 1))
  done;
  Array.iter (fun s -> check "weight bound" true (s <= 4)) a.sizes

let prop_partition_cover =
  H.qtest "bounded_bfs covers all nodes within bound"
    (QCheck.pair (H.digraph_arb ()) (QCheck.int_range 1 10))
    (fun ((n, edges), max_size) ->
      let g = Digraph.of_edges ~n edges in
      let a = Partition.bounded_bfs ~max_size g in
      Partition.check_cover ~n a && Array.for_all (fun s -> s <= max_size) a.sizes)

let prop_partition_units_never_split =
  H.qtest "by_units never splits a unit"
    (H.digraph_arb ~max_n:16 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let units = Array.init n (fun v -> v / 3) in
      let n_units = 1 + ((n - 1) / 3) in
      let unit_weight = Array.make n_units 0 in
      Array.iter (fun u -> unit_weight.(u) <- unit_weight.(u) + 1) units;
      let a = Partition.by_units ~units ~unit_weight ~max_size:5 g in
      Partition.check_cover ~n a
      && List.for_all
           (fun (u, v) -> units.(u) <> units.(v) || a.part.(u) = a.part.(v))
           (H.all_pairs n))

(* --- Transitive closure -------------------------------------------------------- *)

let test_tc_small () =
  let g = H.small_graph () in
  let tc = Tc.compute g in
  check "reach" true (Tc.reachable tc 0 7);
  check "not reach" false (Tc.reachable tc 1 0);
  check "self" true (Tc.reachable tc 3 3);
  check "dist" true (Tc.distance tc 0 5 = Some 3);
  check "dist self" true (Tc.distance tc 2 2 = Some 0);
  check "dist none" true (Tc.distance tc 5 0 = None);
  check_int "pairs" 19 (Tc.n_pairs tc);
  check_int "bytes" (8 * 19) (Tc.size_bytes tc)

let prop_tc_matches_bfs =
  H.qtest "TC distances = BFS distances" (H.digraph_arb ~max_n:14 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let tc = Tc.compute g in
      List.for_all
        (fun (u, v) -> Tc.distance tc u v = Traversal.distance g u v)
        (H.all_pairs n))

let test_tc_estimate_accuracy () =
  (* A 2-level fanout tree: root reaches all 111 nodes. *)
  let edges = ref [] in
  for i = 1 to 10 do
    edges := (0, i) :: !edges;
    for j = 0 to 9 do
      edges := (i, 10 + (10 * i) + j - 9) :: !edges
    done
  done;
  let g = Digraph.of_edges ~n:111 !edges in
  let est = Tc_estimate.compute ~rounds:64 ~seed:1 g in
  let size = Tc_estimate.reach_size est 0 in
  check "root reach ~111" true (size > 70.0 && size < 160.0);
  let leaf = Tc_estimate.reach_size est 110 in
  check "leaf reach ~1" true (leaf > 0.5 && leaf < 2.0)

let prop_tc_estimate_scc_consistent =
  H.qtest ~count:30 "estimator equal within an SCC" (H.digraph_arb ~max_n:12 ())
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let scc = Scc.compute g in
      let est = Tc_estimate.compute ~rounds:8 ~seed:3 g in
      List.for_all
        (fun (u, v) ->
          scc.component.(u) <> scc.component.(v)
          || abs_float (Tc_estimate.reach_size est u -. Tc_estimate.reach_size est v) < 1e-9)
        (H.all_pairs n))

let () =
  Alcotest.run "fx_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "sorted rows" `Quick test_digraph_succ_sorted;
          Alcotest.test_case "reverse" `Quick test_digraph_reverse;
          Alcotest.test_case "bad edge" `Quick test_digraph_bad_edge;
          Alcotest.test_case "induced" `Quick test_digraph_induced;
          Alcotest.test_case "empty" `Quick test_digraph_empty;
          prop_reverse_involution;
          prop_degree_sum;
          prop_mem_edge_consistent;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          prop_bitset_roundtrip;
        ] );
      ( "priority_queue",
        [
          Alcotest.test_case "ordering" `Quick test_pq_order;
          Alcotest.test_case "empty/clear" `Quick test_pq_empty;
          prop_pq_sorts;
        ] );
      ("union_find", [ Alcotest.test_case "basic" `Quick test_uf ]);
      ( "traversal",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "distance and path" `Quick test_distance_and_path;
          Alcotest.test_case "descendants sorted" `Quick test_descendants_sorted;
          Alcotest.test_case "dfs numbering" `Quick test_dfs_forest_numbers;
          Alcotest.test_case "is_forest" `Quick test_is_forest;
          Alcotest.test_case "topological" `Quick test_topological;
          prop_bfs_triangle;
          prop_descendants_match_bfs;
        ] );
      ( "scc",
        [
          Alcotest.test_case "small" `Quick test_scc_small;
          Alcotest.test_case "condensation" `Quick test_scc_condensation_dag;
          prop_scc_mutual_reach;
          prop_condensation_edge_direction;
        ] );
      ( "partition",
        [
          Alcotest.test_case "bounds" `Quick test_partition_bounds;
          Alcotest.test_case "whole graph" `Quick test_partition_whole;
          Alcotest.test_case "by units" `Quick test_partition_by_units;
          prop_partition_cover;
          prop_partition_units_never_split;
        ] );
      ( "transitive_closure",
        [
          Alcotest.test_case "small" `Quick test_tc_small;
          prop_tc_matches_bfs;
          Alcotest.test_case "estimator accuracy" `Quick test_tc_estimate_accuracy;
          prop_tc_estimate_scc_consistent;
        ] );
    ]
