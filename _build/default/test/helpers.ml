(* Shared test utilities: QCheck generators for graphs and collections,
   ground-truth oracles, and Alcotest glue. *)

module Digraph = Fx_graph.Digraph
module Traversal = Fx_graph.Traversal

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* --- random graphs ------------------------------------------------- *)

(* A random digraph as (n, edge list); n in [1, max_n]. *)
let digraph_gen ?(max_n = 24) ?(edge_factor = 2.0) () =
  let open QCheck.Gen in
  int_range 1 max_n >>= fun n ->
  let max_edges = int_of_float (edge_factor *. float_of_int n) in
  int_range 0 max_edges >>= fun m ->
  list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) >>= fun edges ->
  return (n, edges)

let digraph_arb ?max_n ?edge_factor () =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))
    (digraph_gen ?max_n ?edge_factor ())

(* A random forest as (n, parent edges): node i>0 optionally gets a
   parent among 0..i-1. *)
let forest_gen ?(max_n = 30) () =
  let open QCheck.Gen in
  int_range 1 max_n >>= fun n ->
  let parent_for i = if i = 0 then return None else opt (int_range 0 (i - 1)) in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else parent_for i >>= fun p -> build (i + 1) ((i, p) :: acc)
  in
  build 0 [] >>= fun parents ->
  let edges = List.filter_map (fun (i, p) -> Option.map (fun p -> (p, i)) p) parents in
  return (n, edges)

let forest_arb ?max_n () =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))
    (forest_gen ?max_n ())

(* Random tags for n nodes over a small alphabet. *)
let tags_of_graph seed n =
  let rng = Fx_util.Rng.create seed in
  Array.init n (fun _ -> Fx_util.Rng.int rng 4)

let data_graph_of (n, edges) ~tag_seed =
  let g = Digraph.of_edges ~n edges in
  { Fx_index.Path_index.graph = g; tag = tags_of_graph tag_seed n }

(* --- oracles -------------------------------------------------------- *)

let oracle_reachable g u v = Traversal.reachable g u v
let oracle_distance g u v = Traversal.distance g u v

let oracle_descendants_by_tag (dg : Fx_index.Path_index.data_graph) u want =
  Traversal.descendants_by_tag dg.graph ~tag:dg.tag u want

(* Compare result lists modulo the tie order at equal distance. *)
let same_results a b =
  let norm l = List.sort compare l in
  norm a = norm b
  && List.map snd (List.sort compare a) = List.map snd (List.sort compare b)

let sorted_by_distance l = Fx_flix.Stats.is_sorted_by_dist l

(* All (u, v) pairs of a small graph. *)
let all_pairs n =
  List.concat (List.init n (fun u -> List.init n (fun v -> (u, v))))

(* --- tiny fixed graphs ---------------------------------------------- *)

(*     0          5
      / \         |
     1   2        6 <-> 7   (cycle)
        / \
       3   4  , plus a link 4 -> 5 *)
let small_graph () =
  Digraph.of_edges ~n:8
    [ (0, 1); (0, 2); (2, 3); (2, 4); (4, 5); (5, 6); (6, 7); (7, 6) ]

let small_forest () = Digraph.of_edges ~n:6 [ (0, 1); (0, 2); (2, 3); (2, 4) ]

let sorted_by_dist_list dists =
  let rec go = function
    | d1 :: (d2 :: _ as rest) -> d1 <= d2 && go rest
    | [ _ ] | [] -> true
  in
  go dists
