(* Tests for the query layer: XPath parsing, ontology expansion, query
   relaxation, ranking, streaming top-k and end-to-end ranked
   evaluation (checked against a naive interpreter). *)

module Xp = Fx_query.Xpath
module Ont = Fx_query.Ontology
module Rel = Fx_query.Relaxation
module Rank = Fx_query.Ranking
module Topk = Fx_query.Topk
module Qe = Fx_query.Query_eval
module Flix = Fx_flix.Flix
module RS = Fx_flix.Result_stream
module C = Fx_xml.Collection
module X = Fx_xml.Xml_types
module Traversal = Fx_graph.Traversal
module H = Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse_ok s =
  match Xp.parse s with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let parse_err s =
  match Xp.parse s with Ok _ -> Alcotest.failf "expected failure for %S" s | Error _ -> ()

(* --- xpath parser ---------------------------------------------------------- *)

let test_xpath_absolute () =
  let q = parse_ok "/movie//actor" in
  check "absolute" true q.absolute;
  check_int "steps" 2 (List.length q.steps);
  (match q.steps with
  | [ s1; s2 ] ->
      check "s1 child" true (s1.axis = Xp.Child && s1.test = Xp.Tag "movie");
      check "s2 desc" true (s2.axis = Xp.Descendant && s2.test = Xp.Tag "actor")
  | _ -> Alcotest.fail "step shape")

let test_xpath_relative () =
  let q = parse_ok "a//b" in
  check "relative" false q.absolute;
  (match q.steps with
  | [ s1; s2 ] -> check "axes" true (s1.axis = Xp.Child && s2.axis = Xp.Descendant)
  | _ -> Alcotest.fail "steps")

let test_xpath_leading_descendant () =
  let q = parse_ok "//article" in
  check "absolute" true q.absolute;
  (match q.steps with
  | [ s ] -> check "descendant" true (s.axis = Xp.Descendant)
  | _ -> Alcotest.fail "steps")

let test_xpath_wildcard () =
  let q = parse_ok "//a//*" in
  match q.steps with
  | [ _; s ] -> check "wildcard" true (s.test = Xp.Wildcard)
  | _ -> Alcotest.fail "steps"

let test_xpath_predicates () =
  let q = parse_ok {|/movie[title="Matrix: Revolutions"]//actor[text()='Reeves']|} in
  (match q.steps with
  | [ s1; s2 ] ->
      check "child_text" true (s1.predicate = Some (Xp.Child_text ("title", "Matrix: Revolutions")));
      check "own_text" true (s2.predicate = Some (Xp.Own_text "Reeves"))
  | _ -> Alcotest.fail "steps")

let test_xpath_attribute_predicate () =
  let q = parse_ok {|//inproceedings[@key="conf/VLDB/Mohan99"]/author|} in
  (match q.steps with
  | [ s1; _ ] ->
      check "attr pred" true (s1.predicate = Some (Xp.Attribute ("key", "conf/VLDB/Mohan99")))
  | _ -> Alcotest.fail "steps");
  check_str "roundtrip" {|//inproceedings[@key="conf/VLDB/Mohan99"]/author|} (Xp.to_string q)

let test_xpath_reverse_axes () =
  let q = parse_ok "/actor/parent::cast/ancestor::movie" in
  (match q.steps with
  | [ s1; s2; s3 ] ->
      check "child" true (s1.axis = Xp.Child);
      check "parent" true (s2.axis = Xp.Parent && s2.test = Xp.Tag "cast");
      check "ancestor" true (s3.axis = Xp.Ancestor && s3.test = Xp.Tag "movie")
  | _ -> Alcotest.fail "steps");
  check_str "roundtrip" "/actor/parent::cast/ancestor::movie" (Xp.to_string q);
  (* relaxation widens within the direction *)
  let r = Xp.relax_axes q in
  (match r.steps with
  | [ s1; s2; s3 ] ->
      check "child widened" true (s1.axis = Xp.Descendant);
      check "parent widened" true (s2.axis = Xp.Ancestor);
      check "ancestor kept" true (s3.axis = Xp.Ancestor)
  | _ -> Alcotest.fail "steps");
  (* '//parent::x' is contradictory *)
  parse_err "//parent::x"

let test_xpath_dotted_relative () =
  let q = parse_ok ".//b" in
  check "relative" false q.absolute;
  (match q.steps with
  | [ s ] -> check "descendant" true (s.axis = Xp.Descendant)
  | _ -> Alcotest.fail "steps")

let test_xpath_errors () =
  List.iter parse_err
    [ ""; "   "; "/"; "//"; "a//"; "/a["; "/a[b"; "/a[b="; "/a[b=\"x\""; "/a[]"; "a/ /b"; "/a[9=]" ]

let test_xpath_roundtrip () =
  List.iter
    (fun s ->
      let q = parse_ok s in
      check_str ("roundtrip " ^ s) s (Xp.to_string q))
    [ "/movie//actor"; "//a//b"; "a/b/c"; "//x[y=\"z\"]"; ".//b" ]

let test_xpath_relax_axes () =
  let q = Xp.relax_axes (parse_ok "/movie/actor/movie") in
  check "all descendant" true (List.for_all (fun (s : Xp.step) -> s.axis = Xp.Descendant) q.steps);
  check_str "rendered" "//movie//actor//movie" (Xp.to_string q)

(* --- ontology ----------------------------------------------------------------- *)

let test_ontology_expand () =
  let o = Lazy.force Ont.movies in
  let ex = Ont.expand o "movie" in
  check "self first" true (List.hd ex = ("movie", 1.0));
  check "film" true (List.mem_assoc "film" ex);
  check "science-fiction" true (List.mem_assoc "science-fiction" ex);
  (* directed: science-fiction does NOT expand to movie *)
  let ex2 = Ont.expand o "science-fiction" in
  check "no reverse specialisation" false (List.mem_assoc "movie" ex2)

let test_ontology_transitive () =
  let o = Ont.create () in
  Ont.add_synonym o "a" "b" 0.8;
  Ont.add_synonym o "b" "c" 0.5;
  Alcotest.(check (float 1e-9)) "product" 0.4 (Ont.similarity o "a" "c");
  (* min_similarity cuts the tail *)
  let ex = Ont.expand ~min_similarity:0.5 o "a" in
  check "c cut" false (List.mem_assoc "c" ex)

let test_ontology_best_path () =
  let o = Ont.create () in
  Ont.add_synonym o "a" "b" 0.3;
  Ont.add_synonym o "a" "c" 0.9;
  Ont.add_synonym o "c" "b" 0.9;
  (* via c: 0.81 beats direct 0.3 *)
  Alcotest.(check (float 1e-9)) "max product" 0.81 (Ont.similarity o "a" "b")

let test_ontology_bad_weight () =
  let o = Ont.create () in
  Alcotest.check_raises "weight > 1" (Invalid_argument "Ontology: weight must be in (0,1]")
    (fun () -> Ont.add_synonym o "a" "b" 1.5)

(* --- relaxation ------------------------------------------------------------------ *)

let test_relaxation () =
  let q = parse_ok "/movie/actor" in
  let r = Rel.relax (Rel.with_ontology (Lazy.force Ont.movies)) q in
  check "axes relaxed" true
    (List.for_all (fun (s : Rel.step) -> s.axis = Xp.Descendant) r.steps);
  (match r.steps with
  | [ s1; _ ] ->
      check "movie expanded" true (List.length s1.alternatives > 1);
      check "best first" true ((List.hd s1.alternatives).similarity = 1.0)
  | _ -> Alcotest.fail "steps");
  check "render mentions film" true
    (let s = Rel.to_string r in
     let contains hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains s "film")

let test_relaxation_no_ontology () =
  let q = parse_ok "/a/b" in
  let r = Rel.relax Rel.default q in
  List.iter
    (fun (s : Rel.step) -> check_int "one alternative" 1 (List.length s.alternatives))
    r.steps

(* --- ranking ------------------------------------------------------------------------ *)

let test_ranking_decay () =
  let p = Rank.default in
  Alcotest.(check (float 1e-9)) "child" 1.0 (Rank.step_score p ~dist:1 ~links_crossed:0);
  Alcotest.(check (float 1e-9)) "grandchild" 0.8 (Rank.step_score p ~dist:2 ~links_crossed:0);
  Alcotest.(check (float 1e-9)) "self" 1.0 (Rank.step_score p ~dist:0 ~links_crossed:0);
  Alcotest.(check (float 1e-9)) "link penalty" (0.8 *. 0.75)
    (Rank.step_score p ~dist:2 ~links_crossed:1);
  check "monotone in distance" true
    (Rank.step_score p ~dist:5 ~links_crossed:0 < Rank.step_score p ~dist:3 ~links_crossed:0)

let test_ranking_combine_cut_rank () =
  Alcotest.(check (float 1e-9)) "combine" 0.5 (Rank.combine [ 1.0; 0.5 ]);
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Rank.combine []);
  Alcotest.(check (list (pair string (float 1e-9)))) "rank"
    [ ("a", 0.9); ("b", 0.5) ]
    (Rank.rank [ ("b", 0.5); ("a", 0.9) ]);
  check_int "cut" 1 (List.length (Rank.cut ~min_score:0.6 [ ("a", 0.9); ("b", 0.5) ]))

(* --- top-k ----------------------------------------------------------------------------- *)

let stream_of_list xs =
  let rest = ref xs in
  RS.of_fn (fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x)

let test_topk_early_stop () =
  (* Items (id, dist); bound decreases with dist; k=2. After two items
     at dist 1 and the bound for dist-3 items below their score, stop. *)
  let items = [ (1, 1); (2, 1); (3, 3); (4, 3); (5, 4) ] in
  let score (_, d) = 0.8 ** float_of_int (d - 1) in
  let top, stats = Topk.top_k ~k:2 ~score ~bound:score (stream_of_list items) in
  check_int "k results" 2 (List.length top);
  check "stopped early" true stats.stopped_early;
  check "pulled less than all" true (stats.pulled < 5);
  Alcotest.(check (list int)) "best two" [ 1; 2 ] (List.map (fun ((id, _), _) -> id) top)

let test_topk_exhausts_when_needed () =
  let items = [ (1, 5); (2, 4); (3, 1) ] in
  (* ascending scores: bound stays above kth best, no early stop *)
  let score (_, d) = 1.0 /. float_of_int d in
  let top, stats = Topk.top_k ~k:2 ~score ~bound:(fun _ -> 1.0) (stream_of_list items) in
  check "no early stop" false stats.stopped_early;
  check_int "pulled all" 3 stats.pulled;
  Alcotest.(check (list int)) "best" [ 3; 2 ] (List.map (fun ((id, _), _) -> id) top)

let test_topk_bad_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Topk.top_k: k <= 0") (fun () ->
      ignore (Topk.top_k ~k:0 ~score:(fun _ -> 0.0) ~bound:(fun _ -> 0.0) (stream_of_list [])))

(* --- end-to-end evaluation -------------------------------------------------------------- *)

let parse name s = Fx_xml.Xml_parser.parse_exn ~name s

let movie_collection () =
  C.build
    [
      parse "m1"
        {|<movie><title>Matrix: Revolutions</title><cast><actor>Reeves</actor><actor>Moss</actor></cast></movie>|};
      parse "m2"
        {|<science-fiction><title>Matrix 3</title><actor href="m1">Reeves</actor></science-fiction>|};
      parse "m3"
        {|<movie><title>Other</title><follows href="m1"/><cast><actor>Smith</actor></cast></movie>|};
    ]

let test_topk_by_distance () =
  let f = Flix.build (movie_collection ()) in
  let c = Flix.collection f in
  let start = C.root_of_doc c 0 in
  let top, _ =
    Topk.by_distance ~k:3 ~params:Rank.default (Flix.descendants f ~start ~tag:"actor")
  in
  check "k results" true (List.length top <= 3 && top <> []);
  (* best-first, and scores consistent with distances *)
  let scores = List.map snd top in
  check "descending" true (List.sort (fun a b -> compare b a) scores = scores)

let test_eval_exact () =
  let f = Flix.build (movie_collection ()) in
  let rs = Result.get_ok (Qe.eval_string f "/movie//actor") in
  (* actors in m1 (2, via cast) and m3 (1), plus the m2 actor reachable
     through link chains... axes are relaxed by default, so reachable
     ones count; with structural relaxation everything reachable from a
     movie root matches. *)
  check "nonempty" true (rs <> []);
  List.iter (fun (r : Qe.result) -> check "scores in (0,1]" true (r.score > 0.0 && r.score <= 1.0)) rs

let test_eval_predicate () =
  let f = Flix.build (movie_collection ()) in
  let rs = Result.get_ok (Qe.eval_string f {|/movie[title="Matrix: Revolutions"]|}) in
  check_int "only m1 root" 1 (List.length rs);
  let c = Flix.collection f in
  check_int "is m1 root" (C.root_of_doc c 0) (List.hd rs).node

let test_eval_reverse_axes () =
  let f = Flix.build (movie_collection ()) in
  let c = Flix.collection f in
  let opts = { Qe.default with relaxation = { Rel.default with relax_axes = false } } in
  (* Every actor's parent cast, then the movie above it. *)
  let rs = Result.get_ok (Qe.eval_string ~options:opts f "//actor/parent::cast/ancestor::movie") in
  let movie_roots =
    List.filter (fun (r : Qe.result) -> C.tag_name c (C.tag c).(r.node) = "movie")
      rs
  in
  check "found enclosing movies" true (List.length movie_roots >= 2);
  (* actors reached through href links have no cast parent there *)
  let rs2 = Result.get_ok (Qe.eval_string ~options:opts f "//title/parent::science-fiction") in
  check_int "sf parent" 1 (List.length rs2)

let test_eval_exact_distances () =
  let f = Flix.build (movie_collection ()) in
  let opts = { Qe.default with exact_distances = true } in
  let approx = Result.get_ok (Qe.eval_string f "/movie//actor") in
  let exact = Result.get_ok (Qe.eval_string ~options:opts f "/movie//actor") in
  (* Same result sets; exact scores can only be >= the approximate ones
     (shorter or equal distances). *)
  let nodes rs = List.sort_uniq compare (List.map (fun (r : Qe.result) -> r.node) rs) in
  check "same sets" true (nodes approx = nodes exact);
  List.iter
    (fun (r : Qe.result) ->
      let a = List.find (fun (x : Qe.result) -> x.node = r.node) approx in
      check "exact score >= approx score" true (r.score >= a.score -. 1e-9))
    exact

let test_eval_attribute_predicate () =
  let c = Fx_workload.Dblp_gen.collection { Fx_workload.Dblp_gen.default with n_docs = 30 } in
  let f = Flix.build c in
  (* Look one publication up by its key attribute. *)
  let root = C.root_of_doc c 12 in
  let key = Option.get (Fx_xml.Xml_types.attr (C.element c root) "key") in
  let expr = Printf.sprintf {|//*[@key=%S]|} key in
  let rs = Result.get_ok (Qe.eval_string f expr) in
  check "key found" true (List.exists (fun (r : Qe.result) -> r.node = root) rs);
  (* Mismatching value: empty. *)
  let rs2 = Result.get_ok (Qe.eval_string f {|//*[@key="no/such/key"]|}) in
  check_int "no match" 0 (List.length rs2)

let test_eval_with_ontology () =
  let f = Flix.build (movie_collection ()) in
  let opts = Qe.with_ontology (Lazy.force Ont.movies) in
  let no_ont = Result.get_ok (Qe.eval_string f "/movie") in
  let with_ont = Result.get_ok (Qe.eval_string ~options:opts f "/movie") in
  (* ontology adds the science-fiction root *)
  check "ontology adds results" true (List.length with_ont > List.length no_ont);
  (* the semantic match scores below the exact ones *)
  let c = Flix.collection f in
  let sf_root = C.root_of_doc c 1 in
  let sf = List.find (fun (r : Qe.result) -> r.node = sf_root) with_ont in
  check "discounted" true (sf.score < 1.0)

let test_eval_scores_decay_with_depth () =
  let f = Flix.build (movie_collection ()) in
  let rs = Result.get_ok (Qe.eval_string f "/movie//actor") in
  let c = Flix.collection f in
  (* direct cast actors of m1 (depth 2) score above the linked one. *)
  let m1_actor = List.find (fun (r : Qe.result) -> C.doc_of_node c r.node = 0) rs in
  List.iter
    (fun (r : Qe.result) ->
      if C.doc_of_node c r.node <> 0 then check "deeper scores less" true (r.score <= m1_actor.score))
    rs

let test_eval_relative_with_context () =
  let f = Flix.build (movie_collection ()) in
  let c = Flix.collection f in
  let m1_root = C.root_of_doc c 0 in
  let rs = Result.get_ok (Qe.eval_string ~context:[ m1_root ] f ".//actor") in
  check "finds actors" true (List.length rs >= 2)

let test_eval_parse_error_propagates () =
  let f = Flix.build (movie_collection ()) in
  check "error" true (Result.is_error (Qe.eval_string f "/movie["))

let test_top_k_e2e () =
  let f = Flix.build (movie_collection ()) in
  let rs = Result.get_ok (Qe.top_k ~k:2 f "/movie//actor") in
  check_int "k" 2 (List.length rs);
  (match rs with
  | a :: b :: _ -> check "sorted" true (a.score >= b.score)
  | _ -> Alcotest.fail "k results")

(* Cross-check the evaluator against a naive interpreter on the DBLP
   collection with unrelaxed axes: /inproceedings/author etc. *)
let test_eval_vs_naive_on_dblp () =
  let c = Fx_workload.Dblp_gen.collection { Fx_workload.Dblp_gen.default with n_docs = 60 } in
  let f = Flix.build c in
  let opts = { Qe.default with relaxation = { Rel.default with relax_axes = false } } in
  let naive_child_path tags =
    (* walk tree edges from roots *)
    let g = C.graph c in
    let rec go nodes = function
      | [] -> nodes
      | t :: rest ->
          let w = C.tag_id c t in
          let next =
            List.concat_map
              (fun u ->
                Fx_graph.Digraph.fold_succ g u
                  (fun acc v -> if Some (C.tag c).(v) = w then v :: acc else acc)
                  [])
              nodes
          in
          go (List.sort_uniq compare next) rest
    in
    let roots = List.init (C.n_docs c) (fun d -> C.root_of_doc c d) in
    match tags with
    | first :: rest ->
        let w = C.tag_id c first in
        go (List.filter (fun r -> Some (C.tag c).(r) = w) roots) rest
    | [] -> []
  in
  List.iter
    (fun (expr, tags) ->
      let got =
        Result.get_ok (Qe.eval_string ~options:opts f expr)
        |> List.map (fun (r : Qe.result) -> r.node)
        |> List.sort_uniq compare
      in
      let expected = naive_child_path tags in
      check (expr ^ " matches naive") true (got = expected))
    [
      ("/article/author", [ "article"; "author" ]);
      ("/inproceedings/title", [ "inproceedings"; "title" ]);
      ("/article/title/i", [ "article"; "title"; "i" ]);
    ]

let () =
  Alcotest.run "fx_query"
    [
      ( "xpath",
        [
          Alcotest.test_case "absolute" `Quick test_xpath_absolute;
          Alcotest.test_case "relative" `Quick test_xpath_relative;
          Alcotest.test_case "leading //" `Quick test_xpath_leading_descendant;
          Alcotest.test_case "wildcard" `Quick test_xpath_wildcard;
          Alcotest.test_case "predicates" `Quick test_xpath_predicates;
          Alcotest.test_case "attribute predicate" `Quick test_xpath_attribute_predicate;
          Alcotest.test_case "reverse axes" `Quick test_xpath_reverse_axes;
          Alcotest.test_case "dotted relative" `Quick test_xpath_dotted_relative;
          Alcotest.test_case "errors" `Quick test_xpath_errors;
          Alcotest.test_case "roundtrip" `Quick test_xpath_roundtrip;
          Alcotest.test_case "relax_axes" `Quick test_xpath_relax_axes;
        ] );
      ( "ontology",
        [
          Alcotest.test_case "expand" `Quick test_ontology_expand;
          Alcotest.test_case "transitive" `Quick test_ontology_transitive;
          Alcotest.test_case "best path" `Quick test_ontology_best_path;
          Alcotest.test_case "bad weight" `Quick test_ontology_bad_weight;
        ] );
      ( "relaxation",
        [
          Alcotest.test_case "with ontology" `Quick test_relaxation;
          Alcotest.test_case "without ontology" `Quick test_relaxation_no_ontology;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "decay" `Quick test_ranking_decay;
          Alcotest.test_case "combine/cut/rank" `Quick test_ranking_combine_cut_rank;
        ] );
      ( "topk",
        [
          Alcotest.test_case "early stop" `Quick test_topk_early_stop;
          Alcotest.test_case "exhausts when needed" `Quick test_topk_exhausts_when_needed;
          Alcotest.test_case "by_distance" `Quick test_topk_by_distance;
          Alcotest.test_case "bad k" `Quick test_topk_bad_k;
        ] );
      ( "eval",
        [
          Alcotest.test_case "exact" `Quick test_eval_exact;
          Alcotest.test_case "predicate" `Quick test_eval_predicate;
          Alcotest.test_case "reverse axes e2e" `Quick test_eval_reverse_axes;
          Alcotest.test_case "exact distances option" `Quick test_eval_exact_distances;
          Alcotest.test_case "attribute predicate e2e" `Quick test_eval_attribute_predicate;
          Alcotest.test_case "ontology" `Quick test_eval_with_ontology;
          Alcotest.test_case "depth decay" `Quick test_eval_scores_decay_with_depth;
          Alcotest.test_case "relative context" `Quick test_eval_relative_with_context;
          Alcotest.test_case "parse errors" `Quick test_eval_parse_error_propagates;
          Alcotest.test_case "top-k end to end" `Quick test_top_k_e2e;
          Alcotest.test_case "matches naive interpreter" `Quick test_eval_vs_naive_on_dblp;
        ] );
    ]
