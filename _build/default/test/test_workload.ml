(* Tests for the synthetic workload generators: determinism, structural
   properties matching the paper's collections, and query generation. *)

module C = Fx_xml.Collection
module X = Fx_xml.Xml_types
module Dblp = Fx_workload.Dblp_gen
module Web = Fx_workload.Web_gen
module Inex = Fx_workload.Inex_gen
module Zipf = Fx_workload.Zipf
module Qg = Fx_workload.Query_gen
module Rng = Fx_util.Rng
module Traversal = Fx_graph.Traversal
module H = Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.int64 a = Rng.int64 b)
  done;
  let c = Rng.create 43 in
  check "different seed differs" true (Rng.int64 (Rng.create 42) <> Rng.int64 c)

let test_rng_ranges () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    check "int range" true (x >= 0 && x < 7);
    let f = Rng.float r in
    check "float range" true (f >= 0.0 && f < 1.0);
    let e = Rng.exponential r in
    check "exp positive" true (e >= 0.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* --- zipf ------------------------------------------------------------------ *)

let test_zipf_skew () =
  let z = Zipf.create 100 in
  let r = Rng.create 9 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z r in
    check "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  check "rank 0 most popular" true (counts.(0) > counts.(10));
  check "heavy head" true (counts.(0) + counts.(1) + counts.(2) > 3000 / 2)

let test_zipf_bad () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n <= 0") (fun () ->
      ignore (Zipf.create 0))

(* --- dblp generator ----------------------------------------------------------- *)

let test_dblp_shape () =
  let c = Dblp.collection Dblp.default in
  check_int "docs" 600 (C.n_docs c);
  check_int "no intra links" 0 (C.n_intra_links c);
  check "links resolved" true (C.dangling_refs c = []);
  (* Paper shape: ~27 elements/doc, ~4 links/doc. *)
  let elems_per_doc = float_of_int (C.n_nodes c) /. 600.0 in
  check "elements per doc plausible" true (elems_per_doc > 12.0 && elems_per_doc < 40.0);
  let links_per_doc = float_of_int (C.n_inter_links c) /. 600.0 in
  check "links per doc plausible" true (links_per_doc > 1.5 && links_per_doc < 8.0)

let test_dblp_deterministic () =
  let d1 = Dblp.generate Dblp.default and d2 = Dblp.generate Dblp.default in
  check "same docs" true (List.for_all2 X.equal_document d1 d2);
  let d3 = Dblp.generate { Dblp.default with seed = 8 } in
  check "different seed differs" false
    (List.for_all2 X.equal_document d1 d3)

let test_dblp_citations_backward () =
  let c = Dblp.collection { Dblp.default with n_docs = 200 } in
  List.iter
    (fun (l : C.link) ->
      check "inter" true l.inter;
      check "cites point backward" true (C.doc_of_node c l.dst < C.doc_of_node c l.src);
      check "cites point at roots" true
        (l.dst = C.root_of_doc c (C.doc_of_node c l.dst)))
    (C.links c)

let test_dblp_documents_are_parseable_xml () =
  let docs = Dblp.generate { Dblp.default with n_docs = 20 } in
  List.iter
    (fun d ->
      let s = Fx_xml.Xml_print.to_string d in
      match Fx_xml.Xml_parser.parse ~name:d.X.name s with
      | Ok d2 -> check "roundtrip" true (X.equal_element d.root d2.root)
      | Error e -> Alcotest.failf "generated doc unparseable: %s" (Fx_xml.Xml_parser.error_to_string e))
    docs

let test_dblp_has_expected_tags () =
  let c = Dblp.collection { Dblp.default with n_docs = 100 } in
  List.iter
    (fun t -> check (t ^ " present") true (C.tag_id c t <> None))
    [ "article"; "inproceedings"; "author"; "title"; "year"; "cite"; "ee" ]

(* --- web generator --------------------------------------------------------------- *)

let test_web_shape () =
  let c = Web.collection Web.default in
  check_int "docs" (40 + 25) (C.n_docs c);
  check "has intra links" true (C.n_intra_links c > 0);
  check "has inter links" true (C.n_inter_links c > 0);
  check "no dangling" true (C.dangling_refs c = [])

let test_web_tree_cluster_is_tree () =
  let p = { Web.default with n_dense_docs = 0; bridges = 0 } in
  let c = Web.collection p in
  check "tree cluster forms a forest" true (Traversal.is_forest (C.graph c))

let test_web_dense_cluster_cyclic () =
  let p = { Web.default with n_tree_docs = 0; bridges = 0 } in
  let c = Web.collection p in
  check "dense cluster is not a forest" false (Traversal.is_forest (C.graph c))

let test_web_bridge_connects () =
  let c = Web.collection { Web.default with bridges = 2 } in
  (* Some dense-document node must reach some tree-document node. *)
  let g = C.graph c in
  let dense_root = C.root_of_doc c 40 in
  let dist = Traversal.bfs_distances g dense_root in
  let reaches_tree = ref false in
  Array.iteri
    (fun v d ->
      if d > 0 && C.doc_of_node c v < 40 then reaches_tree := true)
    dist;
  check "bridge crossed" true !reaches_tree

(* --- inex generator --------------------------------------------------------------- *)

let test_inex_shape () =
  let c = Inex.collection Inex.default in
  check_int "docs" 100 (C.n_docs c);
  (* Large documents, hardly any inter-document links. *)
  check "big documents" true (C.n_nodes c / C.n_docs c > 30);
  check "isolated" true (C.n_inter_links c < C.n_docs c / 10);
  check "has intra xrefs" true (C.n_intra_links c > 0);
  check "no dangling" true (C.dangling_refs c = []);
  List.iter
    (fun t -> check (t ^ " present") true (C.tag_id c t <> None))
    [ "article"; "sec"; "p"; "st"; "fm"; "abs" ]

let test_inex_deterministic () =
  let a = Inex.generate Inex.default and b = Inex.generate Inex.default in
  check "deterministic" true (List.for_all2 X.equal_document a b)

let test_inex_documents_parse_back () =
  List.iter
    (fun d ->
      let s = Fx_xml.Xml_print.to_string d in
      match Fx_xml.Xml_parser.parse ~name:d.X.name s with
      | Ok d2 -> check "roundtrip" true (X.equal_element d.root d2.root)
      | Error e ->
          Alcotest.failf "generated doc unparseable: %s" (Fx_xml.Xml_parser.error_to_string e))
    (Inex.generate { Inex.default with n_docs = 10 })

(* --- query generator ---------------------------------------------------------------- *)

let test_hub_query () =
  let c = Dblp.collection Dblp.default in
  let q = Qg.hub_query c ~tag:"article" in
  check "hub has many descendants" true (q.n_reachable > 50);
  check "start is a root" true
    (q.start = C.root_of_doc c (C.doc_of_node c q.start))

let test_most_cited_root () =
  let c = Dblp.collection Dblp.default in
  let hub = Qg.most_cited_root c in
  let g = C.graph c in
  for d = 0 to C.n_docs c - 1 do
    check "max in-degree" true
      (Fx_graph.Digraph.in_degree g (C.root_of_doc c d)
      <= Fx_graph.Digraph.in_degree g hub)
  done

let test_descendant_queries () =
  let c = Dblp.collection { Dblp.default with n_docs = 300 } in
  let qs = Qg.descendant_queries c ~seed:3 ~count:5 ~min_results:10 in
  check "got queries" true (qs <> []);
  List.iter
    (fun (q : Qg.query) ->
      check "min results honoured" true (q.n_reachable >= 10);
      (* recount ground truth *)
      let w = Option.get (C.tag_id c q.tag) in
      let dist = Traversal.bfs_distances (C.graph c) q.start in
      let n = ref 0 in
      Array.iteri (fun v d -> if d > 0 && (C.tag c).(v) = w then incr n) dist;
      check_int "count correct" q.n_reachable !n)
    qs

let test_connection_pairs () =
  let c = Dblp.collection { Dblp.default with n_docs = 200 } in
  let pairs = Qg.connection_pairs c ~seed:4 ~count:20 ~connected_fraction:0.5 in
  check_int "count" 20 (List.length pairs);
  List.iter
    (fun (a, b, d) -> check "ground truth correct" true (Traversal.distance (C.graph c) a b = d))
    pairs;
  check "some connected" true (List.exists (fun (_, _, d) -> d <> None) pairs)

let () =
  Alcotest.run "fx_workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "bad args" `Quick test_zipf_bad;
        ] );
      ( "dblp",
        [
          Alcotest.test_case "shape" `Quick test_dblp_shape;
          Alcotest.test_case "deterministic" `Quick test_dblp_deterministic;
          Alcotest.test_case "citations backward to roots" `Quick test_dblp_citations_backward;
          Alcotest.test_case "documents parse back" `Quick test_dblp_documents_are_parseable_xml;
          Alcotest.test_case "expected tags" `Quick test_dblp_has_expected_tags;
        ] );
      ( "web",
        [
          Alcotest.test_case "shape" `Quick test_web_shape;
          Alcotest.test_case "tree cluster" `Quick test_web_tree_cluster_is_tree;
          Alcotest.test_case "dense cluster" `Quick test_web_dense_cluster_cyclic;
          Alcotest.test_case "bridges" `Quick test_web_bridge_connects;
        ] );
      ( "inex",
        [
          Alcotest.test_case "shape" `Quick test_inex_shape;
          Alcotest.test_case "deterministic" `Quick test_inex_deterministic;
          Alcotest.test_case "documents parse back" `Quick test_inex_documents_parse_back;
        ] );
      ( "query_gen",
        [
          Alcotest.test_case "hub query" `Quick test_hub_query;
          Alcotest.test_case "most cited root" `Quick test_most_cited_root;
          Alcotest.test_case "descendant queries" `Quick test_descendant_queries;
          Alcotest.test_case "connection pairs" `Quick test_connection_pairs;
        ] );
    ]
