(* Unit and property tests for the XML substrate: parser, printer, link
   resolution and the collection graph G_X. *)

module X = Fx_xml.Xml_types
module P = Fx_xml.Xml_parser
module Pr = Fx_xml.Xml_print
module L = Fx_xml.Link_resolver
module C = Fx_xml.Collection
module Digraph = Fx_graph.Digraph
module H = Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse_ok ?name s =
  match P.parse ?name s with
  | Ok d -> d
  | Error e -> Alcotest.failf "unexpected parse error: %s" (P.error_to_string e)

let parse_err s =
  match P.parse s with
  | Ok _ -> Alcotest.failf "expected parse failure for %S" s
  | Error e -> e

(* --- parser: accepted inputs ------------------------------------------ *)

let test_parse_minimal () =
  let d = parse_ok "<a/>" in
  check_str "tag" "a" d.root.tag;
  check "no children" true (d.root.children = [])

let test_parse_nested () =
  let d = parse_ok "<a><b><c/></b><d>text</d></a>" in
  check_int "children" 2 (List.length (X.children_elements d.root));
  check_int "total elements" 4 (X.count_elements d.root)

let test_parse_attributes () =
  let d = parse_ok {|<a x="1" y='two &amp; three'/>|} in
  check "x" true (X.attr d.root "x" = Some "1");
  check "entity in attr" true (X.attr d.root "y" = Some "two & three")

let test_parse_entities () =
  let d = parse_ok "<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos; &#65;&#x42;</a>" in
  check_str "decoded" {|<tag> & "q" 's' AB|} (X.direct_text d.root)

let test_parse_numeric_utf8 () =
  let d = parse_ok "<a>&#233;&#x20AC;</a>" in
  check_str "utf8" "\xc3\xa9\xe2\x82\xac" (X.direct_text d.root)

let test_parse_cdata () =
  let d = parse_ok "<a><![CDATA[<not> & parsed]]></a>" in
  check_str "cdata" "<not> & parsed" (X.direct_text d.root)

let test_parse_comments_pis () =
  let d = parse_ok "<?xml version=\"1.0\"?><!-- head --><a><!-- c --><?php echo ?><b/></a><!-- tail -->" in
  check_int "elements" 2 (X.count_elements d.root);
  let kinds = List.map (function X.Comment _ -> "c" | X.Pi _ -> "p" | X.Element _ -> "e" | _ -> "?") d.root.children in
  Alcotest.(check (list string)) "child kinds" [ "c"; "p"; "e" ] kinds

let test_parse_doctype () =
  let d = parse_ok "<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [ <!ENTITY x \"y\"> ]><dblp/>" in
  check_str "root" "dblp" d.root.tag

let test_parse_whitespace_text_dropped () =
  let d = parse_ok "<a>\n  <b/>\n</a>" in
  check_int "only element child" 1 (List.length d.root.children)

let test_parse_deep_nesting () =
  (* 50k-deep nesting must not blow the stack (iterative content loop). *)
  let depth = 50_000 in
  let buf = Buffer.create (8 * depth) in
  for _ = 1 to depth do Buffer.add_string buf "<d>" done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do Buffer.add_string buf "</d>" done;
  let d = parse_ok (Buffer.contents buf) in
  check_str "tag" "d" d.root.tag

(* --- parser: rejected inputs ------------------------------------------- *)

let test_parse_errors () =
  let cases =
    [
      "";
      "   ";
      "<a>";
      "<a></b>";
      "<a><b></a></b>";
      "<a/><b/>";
      "<a x=1/>";
      "<a x=\"1\" x=\"2\"/>";
      "<a>&unknown;</a>";
      "<a>&#xZZ;</a>";
      "<a>text ]]> more</a>";
      "<a><![CDATA[unterminated</a>";
      "<a><!-- unterminated</a>";
      "< a/>";
      "<a b=\"<\"/>";
      "<1tag/>";
      "<a/>trailing";
    ]
  in
  List.iter (fun s -> ignore (parse_err s)) cases

let test_parse_error_position () =
  let e = parse_err "<a>\n<b></c>\n</a>" in
  check_int "line" 2 e.line

(* --- printer ------------------------------------------------------------ *)

let test_print_escapes () =
  let d = X.document ~name:"d" (X.elt "a" ~attrs:[ ("k", "a\"b<c") ] [ X.text "x<y&z" ]) in
  let s = Pr.to_string d in
  check "attr escaped" true
    (String.length s > 0 && not (String.contains (Pr.escape_attr "a\"b") '"'));
  let d2 = parse_ok ~name:"d" s in
  check "roundtrip" true (X.equal_document d d2)

let test_pretty_parses_back () =
  let d = parse_ok "<a x=\"1\"><b>t</b><c><d/></c></a>" in
  let d2 = parse_ok (Pr.pretty d) in
  (* pretty adds whitespace between elements, which the parser drops. *)
  check_str "root" d.root.tag d2.root.tag;
  check_int "elements" (X.count_elements d.root) (X.count_elements d2.root)

(* Generator for random documents (elements, attrs, text). *)
let doc_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "item"; "x-y"; "ns:t" ] in
  let attr_name = oneofl [ "k"; "id"; "href"; "v_1" ] in
  let text_char = oneofl [ 'a'; 'z'; ' '; '&'; '<'; '>'; '"'; '\'' ] in
  let text = map (fun cs -> String.concat "" (List.map (String.make 1) cs)) (list_size (int_range 1 8) text_char) in
  let rec element depth =
    tag >>= fun t ->
    list_size (int_range 0 2) (pair attr_name text) >>= fun attrs ->
    let attrs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs in
    (if depth = 0 then return []
     else
       list_size (int_range 0 3)
         (frequency
            [ (2, map (fun e -> X.Element e) (element (depth - 1)));
              (1, map (fun s -> X.Text s) text) ]))
    >>= fun children ->
    (* Adjacent text nodes merge on reparse; keep only separated texts. *)
    let rec drop_adjacent_text = function
      | X.Text a :: X.Text _ :: rest -> drop_adjacent_text (X.Text a :: rest)
      | x :: rest -> x :: drop_adjacent_text rest
      | [] -> []
    in
    let children =
      List.filter (function X.Text s -> String.trim s <> "" | _ -> true)
        (drop_adjacent_text children)
    in
    return (X.elt t ~attrs children)
  in
  element 3 >>= fun root -> return (X.document ~name:"gen" root)

let doc_arb = QCheck.make ~print:(fun d -> Pr.to_string d) doc_gen

(* The parser trims pure-whitespace text nodes; normalise before
   comparing. *)
let rec normalise_el (e : X.element) =
  {
    e with
    children =
      List.filter_map
        (function
          | X.Element c -> Some (X.Element (normalise_el c))
          | X.Text s -> if String.trim s = "" then None else Some (X.Text s)
          | other -> Some other)
        e.children;
  }

let prop_print_parse_roundtrip =
  H.qtest ~count:200 "parse (print d) = d" doc_arb (fun d ->
      match P.parse ~name:"gen" (Pr.to_string d) with
      | Error _ -> false
      | Ok d2 -> X.equal_element (normalise_el d.root) (normalise_el d2.root))

(* --- sax ------------------------------------------------------------------- *)

module Sax = Fx_xml.Xml_sax

let test_sax_event_sequence () =
  let events = ref [] in
  (match
     Sax.parse {|<a x="1"><b>hi</b><!--c--><?p q?><![CDATA[d]]></a>|}
       ~on_event:(fun e -> events := e :: !events)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sax error: %s" (Sax.error_to_string e));
  let expected =
    [
      Sax.Start_element { tag = "a"; attrs = [ ("x", "1") ] };
      Sax.Start_element { tag = "b"; attrs = [] };
      Sax.Text "hi";
      Sax.End_element "b";
      Sax.Comment "c";
      Sax.Pi { target = "p"; body = "q" };
      Sax.Cdata "d";
      Sax.End_element "a";
    ]
  in
  check "event sequence" true (List.rev !events = expected)

let test_sax_helpers () =
  check "count" true (Sax.count_elements "<a><b/><b/><c/></a>" = Ok 4);
  (match Sax.tag_histogram "<a><b/><b/><c/></a>" with
  | Ok hist -> Alcotest.(check (list (pair string int))) "histogram"
                 [ ("b", 2); ("a", 1); ("c", 1) ] hist
  | Error _ -> Alcotest.fail "histogram failed");
  check "error propagates" true (Result.is_error (Sax.count_elements "<a><b></a>"))

let prop_sax_agrees_with_tree =
  H.qtest ~count:150 "SAX and tree parser agree" doc_arb (fun d ->
      let s = Pr.to_string d in
      match (P.parse s, Sax.count_elements s) with
      | Ok doc, Ok n -> X.count_elements doc.root = n
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_sax_balanced =
  H.qtest ~count:150 "SAX events are balanced" doc_arb (fun d ->
      let depth = ref 0 and ok = ref true in
      match
        Sax.parse (Pr.to_string d) ~on_event:(function
          | Sax.Start_element _ -> incr depth
          | Sax.End_element _ ->
              decr depth;
              if !depth < 0 then ok := false
          | _ -> if !depth = 0 then ok := false)
      with
      | Ok () -> !ok && !depth = 0
      | Error _ -> false)

(* --- xml_types helpers ---------------------------------------------------- *)

let test_iter_fold_find () =
  let d = parse_ok "<a><b><c/></b><b/></a>" in
  let tags = ref [] in
  X.iter_elements d.root (fun e -> tags := e.tag :: !tags);
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "c"; "b" ] (List.rev !tags);
  check_int "fold count" 4 (X.fold_elements d.root (fun n _ -> n + 1) 0);
  check "find" true (X.find_first d.root (fun e -> e.tag = "c") <> None);
  check "find none" true (X.find_first d.root (fun e -> e.tag = "zz") = None)

(* --- link resolver --------------------------------------------------------- *)

let test_parse_href () =
  check "doc only" true (L.parse_href "doc1" = { L.doc = Some "doc1"; anchor = None });
  check "doc+anchor" true (L.parse_href "doc1#e5" = { L.doc = Some "doc1"; anchor = Some "e5" });
  check "anchor only" true (L.parse_href "#e5" = { L.doc = None; anchor = Some "e5" });
  check "empty" true (L.parse_href "" = { L.doc = None; anchor = None })

let test_scan_links () =
  let d =
    parse_ok ~name:"d"
      {|<a id="root"><b id="x"/><c idref="x"/><e idrefs="x root"/><f href="other#y"/><g xlink:href="other"/></a>|}
  in
  let raw = L.scan d in
  check_int "anchors" 2 (List.length raw.anchors);
  check_int "idrefs" 3 (List.length raw.idrefs);
  check_int "hrefs" 2 (List.length raw.hrefs);
  (* anchors carry preorder indexes: root=0, b=1 *)
  check "anchor idx" true (List.assoc "root" raw.anchors = 0 && List.assoc "x" raw.anchors = 1)

let test_scan_duplicate_anchor () =
  let d = parse_ok ~name:"d" {|<a><b id="x"/><c id="x"/></a>|} in
  let raw = L.scan d in
  check_int "first wins" 1 (List.length raw.anchors);
  check "idx of first" true (List.assoc "x" raw.anchors = 1)

(* --- collection -------------------------------------------------------------- *)

let two_doc_collection () =
  let d1 =
    parse_ok ~name:"d1" {|<a id="r1"><b id="x"/><c idref="x"/><d href="d2#target"/></a>|}
  in
  let d2 = parse_ok ~name:"d2" {|<p><q id="target"/><r href="d1"/></p>|} in
  C.build [ d1; d2 ]

let test_collection_shape () =
  let c = two_doc_collection () in
  check_int "docs" 2 (C.n_docs c);
  check_int "nodes" 7 (C.n_nodes c);
  check_int "intra" 1 (C.n_intra_links c);
  check_int "inter" 2 (C.n_inter_links c);
  check "no dangling" true (C.dangling_refs c = []);
  (* tree graph has n - n_docs edges; full graph adds the 3 links *)
  check_int "tree edges" 5 (Digraph.n_edges (C.tree_graph c));
  check_int "graph edges" 8 (Digraph.n_edges (C.graph c))

let test_collection_links_resolved () =
  let c = two_doc_collection () in
  let d_node = Option.get (C.node_of_anchor c ~doc:"d2" ~anchor:"target") in
  check_str "target tag" "q" (C.tag_name c (C.tag c).(d_node));
  (* d in d1 links to q in d2 *)
  let link_ok =
    List.exists
      (fun (l : C.link) -> l.dst = d_node && l.inter && C.doc_of_node c l.src = 0)
      (C.links c)
  in
  check "href resolved" true link_ok;
  (* r in d2 links to root of d1 *)
  let r1 = C.root_of_doc c 0 in
  check "root link" true
    (List.exists (fun (l : C.link) -> l.dst = r1 && l.inter) (C.links c))

let test_collection_dangling () =
  let d1 = parse_ok ~name:"d1" {|<a><b idref="nope"/><c href="ghost"/><d href="d1#gone"/></a>|} in
  let c = C.build [ d1 ] in
  check_int "three dangling" 3 (List.length (C.dangling_refs c));
  check_int "no links" 0 (C.n_intra_links c + C.n_inter_links c)

let test_collection_duplicate_names () =
  let d = parse_ok ~name:"same" "<a/>" in
  Alcotest.check_raises "dup names"
    (Invalid_argument "Collection.build: duplicate document name \"same\"") (fun () ->
      ignore (C.build [ d; d ]))

let test_collection_tags () =
  let c = two_doc_collection () in
  check "tag id exists" true (C.tag_id c "q" <> None);
  check "tag id missing" true (C.tag_id c "zzz" = None);
  check_int "find_by_tag" 1 (List.length (C.find_by_tag c "q"))

let test_collection_preorder_numbering () =
  let d1 = parse_ok ~name:"d1" "<a><b><c/></b><d/></a>" in
  let c = C.build [ d1 ] in
  (* preorder: a=0 b=1 c=2 d=3 *)
  let names = List.init 4 (fun v -> C.tag_name c (C.tag c).(v)) in
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "c"; "d" ] names;
  check_int "root" 0 (C.root_of_doc c 0)

let test_collection_empty () =
  let c = C.build [] in
  check_int "no docs" 0 (C.n_docs c);
  check_int "no nodes" 0 (C.n_nodes c)

let test_collection_self_link () =
  let d = parse_ok ~name:"d" {|<a id="me" idref="me"/>|} in
  let c = C.build [ d ] in
  check_int "self link kept" 1 (C.n_intra_links c);
  check "self edge" true (Digraph.mem_edge (C.graph c) 0 0)

let prop_collection_tree_edges =
  H.qtest ~count:100 "collection tree edges = elements - docs" doc_arb (fun d ->
      let c = C.build [ d ] in
      Digraph.n_edges (C.tree_graph c) = C.n_nodes c - 1
      && C.n_nodes c = X.count_elements d.root)

(* Fuzzing: arbitrary byte strings must never crash the parser — they
   either parse or return a positioned error. *)
let prop_parser_total =
  H.qtest ~count:500 "parser is total on arbitrary input"
    QCheck.(string_gen Gen.printable)
    (fun s ->
      match P.parse s with
      | Ok _ | Error _ -> true)

let prop_parser_total_xmlish =
  H.qtest ~count:500 "parser is total on XML-ish fragments"
    (QCheck.make
       QCheck.Gen.(
         let frag = oneofl [ "<a>"; "</a>"; "<a/>"; "x"; "&amp;"; "&#6;"; "<!--"; "-->";
                             "<![CDATA["; "]]>"; "\""; "'"; "="; "<?p ?>"; "id=\"1\"" ] in
         map (String.concat "") (list_size (int_range 0 12) frag)))
    (fun s -> match P.parse s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "fx_xml"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "nested" `Quick test_parse_nested;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "numeric utf8" `Quick test_parse_numeric_utf8;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments and PIs" `Quick test_parse_comments_pis;
          Alcotest.test_case "doctype" `Quick test_parse_doctype;
          Alcotest.test_case "whitespace dropped" `Quick test_parse_whitespace_text_dropped;
          Alcotest.test_case "deep nesting" `Quick test_parse_deep_nesting;
          Alcotest.test_case "rejects malformed" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          prop_parser_total;
          prop_parser_total_xmlish;
        ] );
      ( "printer",
        [
          Alcotest.test_case "escaping" `Quick test_print_escapes;
          Alcotest.test_case "pretty reparses" `Quick test_pretty_parses_back;
          prop_print_parse_roundtrip;
        ] );
      ( "sax",
        [
          Alcotest.test_case "event sequence" `Quick test_sax_event_sequence;
          Alcotest.test_case "helpers" `Quick test_sax_helpers;
          prop_sax_agrees_with_tree;
          prop_sax_balanced;
        ] );
      ("types", [ Alcotest.test_case "iter/fold/find" `Quick test_iter_fold_find ]);
      ( "links",
        [
          Alcotest.test_case "parse_href" `Quick test_parse_href;
          Alcotest.test_case "scan" `Quick test_scan_links;
          Alcotest.test_case "duplicate anchors" `Quick test_scan_duplicate_anchor;
        ] );
      ( "collection",
        [
          Alcotest.test_case "shape" `Quick test_collection_shape;
          Alcotest.test_case "links resolved" `Quick test_collection_links_resolved;
          Alcotest.test_case "dangling refs" `Quick test_collection_dangling;
          Alcotest.test_case "duplicate names" `Quick test_collection_duplicate_names;
          Alcotest.test_case "tags" `Quick test_collection_tags;
          Alcotest.test_case "preorder numbering" `Quick test_collection_preorder_numbering;
          Alcotest.test_case "empty" `Quick test_collection_empty;
          Alcotest.test_case "self link" `Quick test_collection_self_link;
          prop_collection_tree_edges;
        ] );
    ]
