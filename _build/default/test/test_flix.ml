(* Tests for the FliX framework: meta-document construction, the four
   configurations, strategy selection, index building, the PEE and the
   facade. The central property, checked for every configuration on
   random collections: the PEE's result SET equals BFS ground truth on
   the full collection graph — partitioning and run-time link chasing
   must never lose or duplicate results — while ordering is approximate
   (exact per meta-document block). *)

module C = Fx_xml.Collection
module X = Fx_xml.Xml_types
module MD = Fx_flix.Meta_document
module MB = Fx_flix.Meta_builder
module SS = Fx_flix.Strategy_selector
module IB = Fx_flix.Index_builder
module Pee = Fx_flix.Pee
module RS = Fx_flix.Result_stream
module Stats = Fx_flix.Stats
module Flix = Fx_flix.Flix
module Digraph = Fx_graph.Digraph
module Traversal = Fx_graph.Traversal
module H = Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse name s = Fx_xml.Xml_parser.parse_exn ~name s

(* A hand-written collection mirroring the paper's Figure 1: documents
   1-4 form a tree via root links, 5-7 are densely interlinked, with a
   bridge 5 -> 4. *)
let figure1 () =
  C.build
    [
      parse "doc1" {|<a><b href="doc2"/><c href="doc3"/></a>|};
      parse "doc2" {|<a><b/><c href="doc4"/></a>|};
      parse "doc3" {|<a><b/></a>|};
      parse "doc4" {|<a><b/><c/></a>|};
      parse "doc5"
        {|<p id="p5"><q href="doc6#x6"/><r href="doc7"/><s href="doc4"/><t idref="p5"/></p>|};
      parse "doc6" {|<p><q id="x6" href="doc7#x7"/><r href="doc5"/></p>|};
      parse "doc7" {|<p><q id="x7" href="doc5"/></p>|};
    ]

let all_configs =
  [
    MB.Naive;
    MB.Maximal_ppo;
    MB.Spanning_ppo;
    MB.Unconnected_hopi { max_size = 6 };
    MB.Unconnected_hopi { max_size = 1000 };
    MB.Hybrid { max_size = 8; min_tree_size = 4 };
  ]

(* --- meta documents ------------------------------------------------------ *)

let registry_invariants c (reg : MD.registry) =
  let n = C.n_nodes c in
  (* Every node in exactly one meta document, local ids consistent. *)
  let seen = Array.make n 0 in
  Array.iter
    (fun (m : MD.t) ->
      Array.iteri
        (fun l v ->
          seen.(v) <- seen.(v) + 1;
          check_int "meta_of_node" m.id reg.meta_of_node.(v);
          check_int "local_of_node" l reg.local_of_node.(v);
          check_int "global_of_local" v (MD.global_of_local m l))
        m.nodes)
    reg.metas;
  Array.iter (fun k -> check_int "node covered once" 1 k) seen;
  (* Documents are never split. *)
  for v = 1 to n - 1 do
    if C.doc_of_node c v = C.doc_of_node c (v - 1) then
      check "doc not split" true (reg.meta_of_node.(v) = reg.meta_of_node.(v - 1))
  done;
  (* Internal edges + out-links = tree edges + links of the collection. *)
  let internal = Array.fold_left (fun a (m : MD.t) -> a + Digraph.n_edges m.graph) 0 reg.metas in
  let out = MD.total_out_links reg in
  let expected = Digraph.n_edges (C.tree_graph c) + List.length (C.links c) in
  (* Digraph collapses duplicate edges, so internal can undercount. *)
  check "edge conservation" true (internal + out <= expected && internal + out >= expected - 2);
  (* Link bitsets match the out_links arrays. *)
  Array.iter
    (fun (m : MD.t) ->
      Array.iteri
        (fun l targets ->
          check "link_nodes bitset" true
            (Fx_graph.Bitset.mem m.link_nodes l = (targets <> [])))
        m.out_links)
    reg.metas

let test_registry_invariants_fig1 () =
  List.iter (fun cfg -> registry_invariants (figure1 ()) (MB.build cfg (figure1 ()))) all_configs

let test_naive_one_meta_per_doc () =
  let c = figure1 () in
  let reg = MB.build MB.Naive c in
  check_int "7 metas" 7 (Array.length reg.metas);
  (* All inter-document links become run-time links; intra links stay in. *)
  check_int "run-time links = inter links" (C.n_inter_links c) (MD.total_out_links reg)

let test_maximal_ppo_forests () =
  let c = figure1 () in
  let reg = MB.build MB.Maximal_ppo c in
  (* Docs 1-4 should merge into one tree meta document. *)
  let meta_of_doc d = reg.meta_of_node.(C.root_of_doc c d) in
  check "1+2 merged" true (meta_of_doc 0 = meta_of_doc 1);
  check "2+4 merged" true (meta_of_doc 1 = meta_of_doc 3);
  check "1+3 merged" true (meta_of_doc 0 = meta_of_doc 2);
  check "5 apart" true (meta_of_doc 4 <> meta_of_doc 0);
  (* Every meta document of a Maximal-PPO build is a forest. *)
  Array.iter (fun (m : MD.t) -> check "forest" true (Traversal.is_forest m.graph)) reg.metas

let test_maximal_ppo_accepted_links_are_tree_edges () =
  let c = figure1 () in
  let doc_part, accepted = MB.maximal_ppo_plan c in
  (* accepted links stay within one doc-class and point at roots *)
  Hashtbl.iter
    (fun (src, dst) () ->
      check "same class" true
        (doc_part.(C.doc_of_node c src) = doc_part.(C.doc_of_node c dst));
      check "dst is root" true (C.root_of_doc c (C.doc_of_node c dst) = dst))
    accepted

let test_unconnected_hopi_size_bound () =
  let c = figure1 () in
  let reg = MB.build (MB.Unconnected_hopi { max_size = 6 }) c in
  Array.iter
    (fun (m : MD.t) ->
      (* A single document may exceed the bound; multi-doc metas not. *)
      let docs =
        List.sort_uniq compare (Array.to_list (Array.map (C.doc_of_node c) m.nodes))
      in
      if List.length docs > 1 then check "size bound" true (MD.n_nodes m <= 6))
    reg.metas

let test_hybrid_mixes () =
  let c = figure1 () in
  let reg = MB.build (MB.Hybrid { max_size = 8; min_tree_size = 4 }) c in
  let built = IB.build reg in
  let strategies = List.map fst (IB.strategy_histogram built) in
  check "has PPO" true (List.exists (fun s -> s = "PPO") strategies);
  check "has a graph strategy" true
    (List.exists (fun s -> s <> "PPO") strategies)

let test_spanning_ppo_single_meta () =
  let c = figure1 () in
  let reg = MB.build MB.Spanning_ppo c in
  check_int "one meta document" 1 (Array.length reg.metas);
  (* Accepted links became tree edges; everything else is run-time. *)
  check "forest" true (Traversal.is_forest reg.metas.(0).MD.graph);
  let built = IB.build reg in
  check "indexed with PPO" true
    (List.mem ("PPO", 1) (IB.strategy_histogram built))

(* --- auto configuration ----------------------------------------------------- *)

let test_auto_config_per_workload () =
  let dblp =
    Fx_workload.Dblp_gen.collection { Fx_workload.Dblp_gen.default with n_docs = 300 }
  in
  let inex = Fx_workload.Inex_gen.collection Fx_workload.Inex_gen.default in
  let web = Fx_workload.Web_gen.collection Fx_workload.Web_gen.default in
  let dense =
    Fx_workload.Web_gen.collection
      { Fx_workload.Web_gen.default with n_tree_docs = 0; bridges = 0 }
  in
  (* The decisions the paper prescribes per collection shape. *)
  check "DBLP -> maximal PPO" true (Fx_flix.Auto_config.configure dblp = MB.Maximal_ppo);
  check "INEX -> naive" true (Fx_flix.Auto_config.configure inex = MB.Naive);
  (match Fx_flix.Auto_config.configure web with
  | MB.Hybrid _ -> ()
  | other -> Alcotest.failf "web mix -> %s, expected hybrid" (MB.config_to_string other));
  match Fx_flix.Auto_config.configure dense with
  | MB.Unconnected_hopi _ -> ()
  | other -> Alcotest.failf "dense -> %s, expected unconnected" (MB.config_to_string other)

let test_auto_config_analysis_fields () =
  let c = Fx_workload.Dblp_gen.collection { Fx_workload.Dblp_gen.default with n_docs = 200 } in
  let a = Fx_flix.Auto_config.analyse c in
  check_int "docs" 200 a.n_docs;
  check_int "elements" (C.n_nodes c) a.n_elements;
  check "shares in [0,1]" true
    (List.for_all
       (fun x -> x >= 0.0 && x <= 1.0)
       [ a.intra_link_share; a.root_link_share; a.tree_doc_share; a.linked_doc_share;
         a.mergeable_share ]);
  (* DBLP: all links inter-document and root-targeted. *)
  Alcotest.(check (float 1e-9)) "no intra" 0.0 a.intra_link_share;
  Alcotest.(check (float 1e-9)) "all to roots" 1.0 a.root_link_share;
  check "analysis renders" true
    (String.length (Format.asprintf "%a" Fx_flix.Auto_config.pp_analysis a) > 0)

let test_auto_config_empty_collection () =
  let c = C.build [] in
  check "empty -> naive" true (Fx_flix.Auto_config.configure c = MB.Naive)

(* --- strategy selector ------------------------------------------------------ *)

let test_selector_auto () =
  let c = figure1 () in
  let reg = MB.build MB.Naive c in
  Array.iter
    (fun (m : MD.t) ->
      match SS.select SS.default_auto m with
      | SS.PPO -> check "ppo only for forests" true (Traversal.is_forest m.graph)
      | SS.TC -> check "tc only for small" true (MD.n_nodes m <= 64)
      | SS.HOPI _ | SS.HOPI_disk _ | SS.APEX -> ())
    reg.metas

let test_selector_force_and_custom () =
  let c = figure1 () in
  let reg = MB.build MB.Naive c in
  let m = reg.metas.(0) in
  check "force" true (SS.select (SS.Force SS.APEX) m = SS.APEX);
  check "custom" true
    (SS.select (SS.Custom (fun _ -> SS.TC)) m = SS.TC)

let test_selector_estimate () =
  let c = figure1 () in
  let reg = MB.build MB.Naive c in
  let est = SS.estimate_closure_pairs reg.metas.(0) in
  check "estimate positive" true (est > 0.0)

(* --- index builder ------------------------------------------------------------ *)

let test_builder_fallback () =
  let c = figure1 () in
  let reg = MB.build MB.Naive c in
  (* Forcing PPO on doc5 (which has an intra link cycle) must fall back. *)
  let built = IB.build ~policy:(SS.Force SS.PPO) reg in
  let fallbacks = Array.to_list built.indexes |> List.filter (fun b -> b.IB.fallback) in
  check "some fallback" true (fallbacks <> []);
  List.iter
    (fun (b : IB.built) ->
      check "fallback is HOPI" true (b.strategy = SS.HOPI { partition_size = 5000 }))
    fallbacks

let test_builder_parallel_equivalent () =
  let c = figure1 () in
  let reg = MB.build (MB.Unconnected_hopi { max_size = 6 }) c in
  let seq = IB.build ~jobs:1 reg in
  let par = IB.build ~jobs:4 reg in
  check "same histogram" true (IB.strategy_histogram seq = IB.strategy_histogram par);
  check_int "same total entries" (IB.total_entries seq) (IB.total_entries par);
  (* Same answers through the PEE. *)
  let nodes built start =
    RS.to_list (Pee.descendants (Pee.create built) ~start)
    |> List.map (fun (it : Pee.item) -> (it.node, it.dist))
    |> List.sort compare
  in
  for start = 0 to C.n_nodes c - 1 do
    check "same results" true (nodes seq start = nodes par start)
  done

let test_builder_disk_strategy () =
  let c = figure1 () in
  let dir = Filename.temp_file "flixdisk" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      (* Every meta document indexed from disk; answers must match the
         all-in-memory build exactly. *)
      let reg = MB.build (MB.Unconnected_hopi { max_size = 1000 }) c in
      let mem = IB.build ~policy:(SS.Force (SS.HOPI { partition_size = 1000 })) reg in
      let disk = IB.build ~policy:(SS.Force (SS.HOPI_disk { dir })) reg in
      check "files on disk" true (Array.length (Sys.readdir dir) > 0);
      check "histogram says disk" true
        (List.mem_assoc "HOPI-disk" (IB.strategy_histogram disk));
      let nodes built start =
        RS.to_list (Pee.descendants (Pee.create built) ~start)
        |> List.map (fun (it : Pee.item) -> (it.node, it.dist))
        |> List.sort compare
      in
      for start = 0 to C.n_nodes c - 1 do
        check "disk = memory" true (nodes mem start = nodes disk start)
      done)

let test_builder_report () =
  let c = figure1 () in
  let built = IB.build (MB.build MB.Naive c) in
  let r = IB.report built in
  check "mentions meta documents" true
    (String.length r > 0 && String.index_opt r 'm' <> None);
  check "positive size" true (IB.total_size_bytes built > 0);
  check "positive entries" true (IB.total_entries built > 0)

(* --- PEE --------------------------------------------------------------------------- *)

let ground_truth_descendants c start want =
  Traversal.descendants_by_tag (C.graph c) ~tag:(C.tag c) start
    (Option.bind want (C.tag_id c))
  |> List.filter (fun (v, d) -> not (v = start && d = 0))

let pee_of c cfg =
  let reg = MB.build cfg c in
  Pee.create (IB.build reg)

let pee_set_equals_truth c cfg start want =
  let pee = pee_of c cfg in
  let tag = Option.bind want (C.tag_id c) in
  let results = RS.to_list (Pee.descendants ?tag pee ~start) in
  let got = List.map (fun (it : Pee.item) -> it.node) results in
  let truth = List.map fst (ground_truth_descendants c start want) in
  List.sort_uniq compare got = List.sort_uniq compare truth
  && List.length got = List.length (List.sort_uniq compare got)

let test_pee_fig1_all_configs () =
  let c = figure1 () in
  List.iter
    (fun cfg ->
      for start = 0 to C.n_nodes c - 1 do
        check "set = truth (wildcard)" true (pee_set_equals_truth c cfg start None);
        check "set = truth (tag b)" true (pee_set_equals_truth c cfg start (Some "b"))
      done)
    all_configs

let test_pee_distances_are_exact_in_fig1_tree () =
  (* Inside the merged Maximal-PPO tree all distances are exact. *)
  let c = figure1 () in
  let pee = pee_of c MB.Maximal_ppo in
  let start = C.root_of_doc c 0 in
  let results = RS.to_list (Pee.descendants pee ~start) in
  List.iter
    (fun (it : Pee.item) ->
      match Traversal.distance (C.graph c) start it.node with
      | Some d -> check "distance exact or upper bound" true (it.dist >= d)
      | None -> Alcotest.fail "unreachable result")
    results

let test_pee_max_dist () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let start = C.root_of_doc c 0 in
  let results = RS.to_list (Pee.descendants ~max_dist:2 pee ~start) in
  check "nonempty" true (results <> []);
  List.iter (fun (it : Pee.item) -> check "within bound" true (it.dist <= 2)) results;
  (* everything at true distance <= 2 must be there (reported dist is an
     upper bound, so this is the stronger check) *)
  let truth =
    ground_truth_descendants c start None |> List.filter (fun (_, d) -> d <= 2)
  in
  check "at least close truth"
    true
    (List.for_all
       (fun (v, d) ->
         d > 2 || List.exists (fun (it : Pee.item) -> it.node = v) results
         || d = 2 (* a 2-hop path through another meta doc may cost a link hop *))
       truth)

let test_pee_include_self () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let start = C.root_of_doc c 0 in
  let without = RS.to_list (Pee.descendants pee ~start) in
  let with_self = RS.to_list (Pee.descendants ~include_self:true pee ~start) in
  check "self excluded by default" true
    (not (List.exists (fun (it : Pee.item) -> it.node = start && it.dist = 0) without));
  check "self included on demand" true
    (List.exists (fun (it : Pee.item) -> it.node = start && it.dist = 0) with_self)

let test_pee_streaming_is_lazy () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let stream = Pee.descendants pee ~start:(C.root_of_doc c 0) in
  (* Pull one result; insertions so far must be far below the total. *)
  check "first result exists" true (RS.next stream <> None);
  let ins1, _ = Pee.queue_stats pee in
  ignore (RS.to_list stream);
  let ins2, _ = Pee.queue_stats pee in
  check "work grows as we pull" true (ins2 >= ins1)

let test_pee_multi () =
  let c = figure1 () in
  let pee = pee_of c MB.Maximal_ppo in
  let starts = C.find_by_tag c "p" in
  let results = RS.to_list (Pee.descendants_multi ~tag:(C.tag_id c "q" |> Option.get) pee ~starts) in
  (* every q reachable from some p with dist > 0 appears *)
  let truth =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (v, d) -> if d > 0 then Some v else None)
          (ground_truth_descendants c s (Some "q")))
      starts
    |> List.sort_uniq compare
  in
  let got = List.sort_uniq compare (List.map (fun (it : Pee.item) -> it.node) results) in
  check "multi covers truth" true (got = truth)

let test_pee_ancestors () =
  let c = figure1 () in
  List.iter
    (fun cfg ->
      let pee = pee_of c cfg in
      for v = 0 to C.n_nodes c - 1 do
        let got =
          RS.to_list (Pee.ancestors pee ~start:v)
          |> List.map (fun (it : Pee.item) -> it.node)
          |> List.sort_uniq compare
        in
        let truth =
          Traversal.descendants (Digraph.reverse (C.graph c)) v
          |> List.filter (fun (u, d) -> not (u = v && d = 0))
          |> List.map fst |> List.sort_uniq compare
        in
        check "ancestors = reverse truth" true (got = truth)
      done)
    [ MB.Naive; MB.Maximal_ppo; MB.Unconnected_hopi { max_size = 6 } ]

let test_pee_exact_ordering () =
  (* The exact engine must return every reachable node at its TRUE
     shortest distance, in exactly ascending order — for every config
     and every start node of figure 1. *)
  let c = figure1 () in
  List.iter
    (fun cfg ->
      let pee = pee_of c cfg in
      for start = 0 to C.n_nodes c - 1 do
        let results = RS.to_list (Pee.descendants_exact ~include_self:true pee ~start) in
        check "exactly sorted" true
          (H.sorted_by_dist_list (List.map (fun (it : Pee.item) -> it.dist) results));
        let truth = Traversal.bfs_distances (C.graph c) start in
        List.iter
          (fun (it : Pee.item) ->
            check "distance is exact" true (truth.(it.node) = it.dist))
          results;
        (* completeness & no duplicates *)
        let got = List.map (fun (it : Pee.item) -> it.node) results in
        let expected =
          List.filteri (fun _ d -> d >= 0) (Array.to_list truth)
          |> List.length
        in
        ignore expected;
        let expected_nodes =
          Array.to_list (Array.mapi (fun v d -> (v, d)) truth)
          |> List.filter_map (fun (v, d) -> if d >= 0 then Some v else None)
        in
        check "complete, duplicate-free" true
          (List.sort compare got = expected_nodes
          && List.length got = List.length (List.sort_uniq compare got))
      done)
    all_configs

let test_pee_ancestors_exact () =
  let c = figure1 () in
  let pee = pee_of c MB.Maximal_ppo in
  let rev = Digraph.reverse (C.graph c) in
  for start = 0 to C.n_nodes c - 1 do
    let truth = Traversal.bfs_distances rev start in
    let results = RS.to_list (Pee.ancestors_exact ~include_self:true pee ~start) in
    List.iter
      (fun (it : Pee.item) -> check "ancestor distance exact" true (truth.(it.node) = it.dist))
      results
  done

let test_pee_connected () =
  let c = figure1 () in
  List.iter
    (fun cfg ->
      let pee = pee_of c cfg in
      for a = 0 to C.n_nodes c - 1 do
        for b = 0 to C.n_nodes c - 1 do
          let truth = Traversal.distance (C.graph c) a b in
          let got = Pee.connected pee a b in
          check "connected iff reachable" true ((got <> None) = (truth <> None));
          (match (got, truth) with
          | Some g, Some t -> check "upper bound" true (g >= t)
          | None, None -> ()
          | _ -> Alcotest.fail "reachability mismatch");
          check "bidir agrees" true (Pee.connected_bidir pee a b = (truth <> None))
        done
      done)
    all_configs

let test_pee_connected_max_dist () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  (* doc1 root reaches doc4's children in 3-4 hops via link chain. *)
  let a = C.root_of_doc c 0 in
  let b = C.root_of_doc c 3 in
  check "within generous bound" true (Pee.connected ~max_dist:10 pee a b <> None);
  check "cut by tight bound" true (Pee.connected ~max_dist:1 pee a b = None)

(* Random collections: generate documents with random tree shape and
   random links, compare all configurations against ground truth. *)
let random_collection_gen =
  let open QCheck.Gen in
  int_range 2 6 >>= fun n_docs ->
  int_range 0 20 >>= fun n_links ->
  int_range 0 1000 >>= fun seed ->
  return (n_docs, n_links, seed)

let random_collection (n_docs, n_links, seed) =
  let rng = Fx_util.Rng.create seed in
  let tags = [| "a"; "b"; "c" |] in
  let docs =
    List.init n_docs (fun i ->
        let counter = ref 0 in
        let rec el depth =
          incr counter;
          let id = Printf.sprintf "e%d" !counter in
          let children =
            if depth = 0 then []
            else List.init (Fx_util.Rng.int rng 3) (fun _ -> X.Element (el (depth - 1)))
          in
          X.elt tags.(Fx_util.Rng.int rng 3) ~attrs:[ ("id", id) ] children
        in
        let root = el 2 in
        (X.document ~name:(Printf.sprintf "doc%d" i) root, !counter))
  in
  (* Inject links by rewriting: easier to add link children to roots. *)
  let with_links =
    List.mapi
      (fun i (d, n_el) ->
        let links =
          List.init n_links (fun _ ->
              if Fx_util.Rng.int rng n_docs = i then
                (* intra link to a random element *)
                let t = 1 + Fx_util.Rng.int rng n_el in
                Some (X.e "l" ~attrs:[ ("idref", Printf.sprintf "e%d" t) ] [])
              else if Fx_util.Rng.bool rng then begin
                let target = Fx_util.Rng.int rng n_docs in
                let anchor = 1 + Fx_util.Rng.int rng 3 in
                Some
                  (X.e "l"
                     ~attrs:
                       [ ("xlink:href", Printf.sprintf "doc%d#e%d" target anchor) ]
                     [])
              end
              else None)
          |> List.filter_map Fun.id
        in
        let root = d.X.root in
        { d with X.root = { root with X.children = root.children @ links } })
      docs
  in
  C.build with_links

let prop_pee_random_collections =
  H.qtest ~count:40 "PEE set = BFS truth on random collections"
    (QCheck.make ~print:(fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) random_collection_gen)
    (fun params ->
      let c = random_collection params in
      List.for_all
        (fun cfg ->
          List.for_all
            (fun start ->
              pee_set_equals_truth c cfg start None
              && pee_set_equals_truth c cfg start (Some "b"))
            [ 0; C.n_nodes c / 2; C.n_nodes c - 1 ])
        [ MB.Naive; MB.Maximal_ppo; MB.Unconnected_hopi { max_size = 8 };
          MB.Hybrid { max_size = 8; min_tree_size = 3 } ])

let prop_pee_block_order =
  H.qtest ~count:30 "link-free queries stream in exact distance order"
    (QCheck.make ~print:(fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) random_collection_gen)
    (fun (n_docs, _, seed) ->
      (* Without links every query is answered by one meta-document
         block, whose ordering guarantee is exact. *)
      let c = random_collection (n_docs, 0, seed) in
      let pee = pee_of c MB.Naive in
      let results = RS.to_list (Pee.descendants pee ~start:0) in
      H.sorted_by_distance (List.map (fun (it : Pee.item) -> (it.node, it.dist)) results))

let prop_pee_exact_random =
  H.qtest ~count:40 "exact engine = BFS distances on random collections"
    (QCheck.make ~print:(fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) random_collection_gen)
    (fun params ->
      let c = random_collection params in
      List.for_all
        (fun cfg ->
          let pee = pee_of c cfg in
          List.for_all
            (fun start ->
              let truth = Traversal.bfs_distances (C.graph c) start in
              let results =
                RS.to_list (Pee.descendants_exact ~include_self:true pee ~start)
              in
              List.for_all (fun (it : Pee.item) -> truth.(it.node) = it.dist) results
              && H.sorted_by_dist_list (List.map (fun (it : Pee.item) -> it.dist) results))
            [ 0; C.n_nodes c - 1 ])
        [ MB.Naive; MB.Maximal_ppo; MB.Unconnected_hopi { max_size = 8 } ])


(* --- element-level meta documents (future-work builder) ------------------- *)

let test_element_level_splits_docs () =
  let c = figure1 () in
  let reg = MB.build (MB.Element_level { max_size = 3 }) c in
  (* With a bound of 3 elements, some document must be split. *)
  let split = ref false in
  for v = 1 to C.n_nodes c - 1 do
    if
      C.doc_of_node c v = C.doc_of_node c (v - 1)
      && reg.meta_of_node.(v) <> reg.meta_of_node.(v - 1)
    then split := true
  done;
  check "some document split" true !split;
  Array.iter (fun (m : MD.t) -> check "bound" true (MD.n_nodes m <= 3)) reg.metas

let test_element_level_pee_correct () =
  let c = figure1 () in
  List.iter
    (fun max_size ->
      let cfg = MB.Element_level { max_size } in
      for start = 0 to C.n_nodes c - 1 do
        check "set = truth" true (pee_set_equals_truth c cfg start None)
      done;
      (* exact engine too: distances across split tree edges stay exact *)
      let pee = pee_of c cfg in
      let truth = Traversal.bfs_distances (C.graph c) 0 in
      List.iter
        (fun (it : Pee.item) -> check "exact dist" true (truth.(it.node) = it.dist))
        (RS.to_list (Pee.descendants_exact ~include_self:true pee ~start:0)))
    [ 2; 3; 5; 100 ]

let prop_element_level_random =
  H.qtest ~count:25 "element-level PEE = BFS truth on random collections"
    (QCheck.make ~print:(fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) random_collection_gen)
    (fun params ->
      let c = random_collection params in
      List.for_all
        (fun start ->
          pee_set_equals_truth c (MB.Element_level { max_size = 4 }) start None)
        [ 0; C.n_nodes c - 1 ])

(* --- query cache ------------------------------------------------------------ *)

let test_query_cache_replay () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let cache = Fx_flix.Query_cache.create ~capacity:4 pee in
  let start = C.root_of_doc c 0 in
  let run () =
    RS.to_list (Fx_flix.Query_cache.descendants cache ~start)
    |> List.map (fun (it : Pee.item) -> (it.node, it.dist))
  in
  let first = run () in
  let second = run () in
  check "replay identical" true (first = second);
  let s = Fx_flix.Query_cache.stats cache in
  check_int "one hit" 1 s.hits;
  check_int "one miss" 1 s.misses;
  check "hit rate" true (abs_float (s.hit_rate -. 0.5) < 1e-9)

let test_query_cache_keys () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let cache = Fx_flix.Query_cache.create pee in
  let start = C.root_of_doc c 0 in
  let tag_b = Option.get (C.tag_id c "b") in
  let all = RS.to_list (Fx_flix.Query_cache.descendants cache ~start) in
  let only_b = RS.to_list (Fx_flix.Query_cache.descendants cache ~tag:tag_b ~start) in
  let bounded = RS.to_list (Fx_flix.Query_cache.descendants cache ~max_dist:1 ~start) in
  check "different keys differ" true
    (List.length only_b < List.length all && List.length bounded < List.length all);
  check_int "three entries" 3 (Fx_flix.Query_cache.stats cache).entries

let test_query_cache_unconsumed_not_cached () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let cache = Fx_flix.Query_cache.create pee in
  let start = C.root_of_doc c 0 in
  (* Create but never pull: no evaluation, no cache entry. *)
  ignore (Fx_flix.Query_cache.descendants cache ~start);
  check_int "nothing cached" 0 (Fx_flix.Query_cache.stats cache).entries;
  (* Pull one result: the miss materialises the full list and caches it. *)
  ignore (RS.next (Fx_flix.Query_cache.descendants cache ~start));
  check_int "cached after pull" 1 (Fx_flix.Query_cache.stats cache).entries

let test_query_cache_invalidate () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let cache = Fx_flix.Query_cache.create pee in
  let start = C.root_of_doc c 0 in
  ignore (RS.to_list (Fx_flix.Query_cache.descendants cache ~start));
  Fx_flix.Query_cache.invalidate cache;
  check_int "empty after invalidate" 0 (Fx_flix.Query_cache.stats cache).entries

(* --- self-tuning ------------------------------------------------------------- *)

let test_self_tuning_summary () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let mon = Fx_flix.Self_tuning.create pee in
  for d = 0 to C.n_docs c - 1 do
    ignore
      (RS.to_list (Fx_flix.Self_tuning.descendants mon ~start:(C.root_of_doc c d)))
  done;
  let s = Fx_flix.Self_tuning.summary mon in
  check_int "all queries seen" (C.n_docs c) s.queries;
  check "link hops observed" true (s.mean_link_hops > 0.0)

let test_self_tuning_window () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let mon = Fx_flix.Self_tuning.create ~window:5 pee in
  for _ = 1 to 12 do
    ignore (RS.to_list (Fx_flix.Self_tuning.descendants mon ~start:(C.root_of_doc c 0)))
  done;
  check_int "window caps samples" 5 (Fx_flix.Self_tuning.summary mon).queries

let test_self_tuning_recommend () =
  let c = figure1 () in
  let pee = pee_of c MB.Naive in
  let mon = Fx_flix.Self_tuning.create pee in
  (* Too few queries: Keep regardless of pressure. *)
  check "keep when cold" true
    (Fx_flix.Self_tuning.recommend mon ~current:MB.Naive = Fx_flix.Self_tuning.Keep);
  (* Hammer the link-heavy start (doc1 root chases links constantly). *)
  for _ = 1 to 20 do
    ignore (RS.to_list (Fx_flix.Self_tuning.descendants mon ~start:(C.root_of_doc c 0)))
  done;
  (match Fx_flix.Self_tuning.recommend ~pressure_threshold:0.01 mon ~current:MB.Naive with
  | Fx_flix.Self_tuning.Rebuild (MB.Unconnected_hopi _) -> ()
  | Fx_flix.Self_tuning.Rebuild _ | Fx_flix.Self_tuning.Keep ->
      Alcotest.fail "expected escalation from Naive");
  (match
     Fx_flix.Self_tuning.recommend ~pressure_threshold:0.01 mon
       ~current:(MB.Unconnected_hopi { max_size = 100 })
   with
  | Fx_flix.Self_tuning.Rebuild (MB.Unconnected_hopi { max_size }) ->
      check_int "doubled" 200 max_size
  | _ -> Alcotest.fail "expected doubled partitions");
  check "keep under lenient threshold" true
    (Fx_flix.Self_tuning.recommend ~pressure_threshold:1e9 mon ~current:MB.Naive
    = Fx_flix.Self_tuning.Keep)

(* --- incremental extension and rebuild --------------------------------------- *)

let test_extend_reuses_indexes () =
  let c = figure1 () in
  let f = Flix.build ~config:MB.Naive c in
  (* Add a document citing doc1's root: under the Naive config every
     existing meta document's structure is untouched. *)
  let extra = parse "doc8" {|<a><b href="doc1"/></a>|} in
  let f2 = Flix.extend f [ extra ] in
  check_int "all 7 old metas reused" 7 (IB.reused_count (Flix.built f2));
  check_int "docs grew" 8 (C.n_docs (Flix.collection f2));
  (* Queries on the extended collection are correct, including through
     the new document's link. *)
  let c2 = Flix.collection f2 in
  let start = Option.get (Flix.node_of f2 ~doc:"doc8" ~anchor:None) in
  let got =
    RS.to_list (Flix.descendants f2 ~start)
    |> List.map (fun (it : Pee.item) -> it.node)
    |> List.sort_uniq compare
  in
  let truth =
    Traversal.descendants (C.graph c2) start
    |> List.filter (fun (v, d) -> not (v = start && d = 0))
    |> List.map fst |> List.sort_uniq compare
  in
  check "extended query correct" true (got = truth);
  (* The old ids still resolve identically. *)
  check "old anchors stable" true
    (Flix.node_of f ~doc:"doc6" ~anchor:(Some "x6")
    = Flix.node_of f2 ~doc:"doc6" ~anchor:(Some "x6"))

let test_extend_duplicate_name_rejected () =
  let c = figure1 () in
  let f = Flix.build c in
  match Flix.extend f [ parse "doc1" "<a/>" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted"

let test_remove_documents () =
  let c = figure1 () in
  let f = Flix.build ~config:MB.Naive c in
  let f2 = Flix.remove f [ "doc7"; "nonexistent" ] in
  let c2 = Flix.collection f2 in
  check_int "six docs left" 6 (C.n_docs c2);
  (* Links into doc7 become dangling, queries stay correct. *)
  check "dangling recorded" true (C.dangling_refs c2 <> []);
  for start = 0 to C.n_nodes c2 - 1 do
    let got =
      RS.to_list (Flix.descendants f2 ~start)
      |> List.map (fun (it : Pee.item) -> it.node)
      |> List.sort_uniq compare
    in
    let truth =
      Traversal.descendants (C.graph c2) start
      |> List.filter (fun (v, d) -> not (v = start && d = 0))
      |> List.map fst |> List.sort_uniq compare
    in
    check "correct after removal" true (got = truth)
  done;
  (* Prefix documents (doc1..doc6 precede doc7) are fully reused. *)
  check_int "prefix reuse" 6 (IB.reused_count (Flix.built f2));
  (* Removing nothing returns the same value. *)
  check "no-op removal" true (Flix.remove f [ "nope" ] == f)

let test_rebuild_applies_recommendation () =
  let c = figure1 () in
  let f = Flix.build ~config:MB.Naive c in
  let f2 = Flix.rebuild ~config:(MB.Unconnected_hopi { max_size = 1000 }) f in
  (* Same collection object, fewer meta documents, correct answers. *)
  check "same collection" true (Flix.collection f2 == Flix.collection f);
  check "fewer metas" true
    (Array.length (Flix.registry f2).MD.metas < Array.length (Flix.registry f).MD.metas);
  let start = C.root_of_doc c 0 in
  let nodes stream = List.sort_uniq compare (List.map (fun (it : Pee.item) -> it.node) (RS.to_list stream)) in
  check "answers unchanged" true
    (nodes (Flix.descendants f ~start) = nodes (Flix.descendants f2 ~start))

let test_extend_link_into_old_doc_rebuilds_it () =
  (* MaximalPPO: a new doc citing doc3's root can merge with the old
     tree, changing that meta document; its index must be rebuilt, and
     results must stay correct. *)
  let c = figure1 () in
  let f = Flix.build ~config:MB.Maximal_ppo c in
  let f2 = Flix.extend f [ parse "doc8" {|<a><b href="doc7"/></a>|} ] in
  let c2 = Flix.collection f2 in
  for start = 0 to C.n_nodes c2 - 1 do
    let got =
      RS.to_list (Flix.descendants f2 ~start)
      |> List.map (fun (it : Pee.item) -> it.node)
      |> List.sort_uniq compare
    in
    let truth =
      Traversal.descendants (C.graph c2) start
      |> List.filter (fun (v, d) -> not (v = start && d = 0))
      |> List.map fst |> List.sort_uniq compare
    in
    check "correct after structural change" true (got = truth)
  done

(* --- result stream ------------------------------------------------------------- *)

let test_stream_basics () =
  let count = ref 0 in
  let s =
    RS.of_fn (fun () ->
        incr count;
        if !count <= 3 then Some !count else None)
  in
  check "peek" true (RS.peek s = Some 1);
  check "peek stable" true (RS.peek s = Some 1);
  check "next" true (RS.next s = Some 1);
  Alcotest.(check (list int)) "take" [ 2; 3 ] (RS.take 5 s);
  check "exhausted" true (RS.next s = None);
  check "exhausted stays" true (RS.next s = None)

let test_stream_take_while_map_filter () =
  let mk () =
    let count = ref 0 in
    RS.of_fn (fun () ->
        incr count;
        if !count <= 10 then Some !count else None)
  in
  Alcotest.(check (list int)) "take_while" [ 1; 2; 3 ] (RS.take_while (fun x -> x < 4) (mk ()));
  Alcotest.(check (list int)) "map" [ 2; 4 ] (RS.take 2 (RS.map (fun x -> 2 * x) (mk ())));
  Alcotest.(check (list int)) "filter" [ 2; 4; 6 ]
    (RS.take 3 (RS.filter (fun x -> x mod 2 = 0) (mk ())));
  check_int "to_seq length" 10 (List.length (List.of_seq (RS.to_seq (mk ()))))

let test_stream_timed () =
  let count = ref 0 in
  let s = RS.of_fn (fun () -> incr count; if !count <= 5 then Some !count else None) in
  let timed = RS.take_timed 10 s in
  check_int "five" 5 (List.length timed);
  let times = List.map snd timed in
  check "monotone" true (List.sort compare times = times)

(* --- stats ------------------------------------------------------------------------ *)

let test_error_rate () =
  let dist = function 1 -> 1 | 2 -> 2 | 3 -> 3 | _ -> 0 in
  Alcotest.(check (float 1e-9)) "sorted" 0.0 (Stats.error_rate ~true_dist:dist [ 1; 2; 3 ]);
  (* 3 returned before 1 and 2: the 3 is "wrong" (smaller dist later). *)
  Alcotest.(check (float 1e-9)) "one wrong" (1.0 /. 3.0)
    (Stats.error_rate ~true_dist:dist [ 3; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.error_rate ~true_dist:dist []);
  check_int "inversions" 2 (Stats.inversions ~true_dist:dist [ 3; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "inversion rate" (2.0 /. 3.0)
    (Stats.inversion_rate ~true_dist:dist [ 3; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "rate sorted" 0.0
    (Stats.inversion_rate ~true_dist:dist [ 1; 2; 3 ]);
  Alcotest.(check (float 1e-9)) "rate singleton" 0.0
    (Stats.inversion_rate ~true_dist:dist [ 1 ])

let test_time_series () =
  let trace = [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "series"
    [ (1, 1.0); (3, 3.0) ]
    (Stats.time_series trace ~ks:[ 1; 3; 10 ])

let test_percentile_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ])

(* --- facade -------------------------------------------------------------------------- *)

let test_flix_facade () =
  let c = figure1 () in
  let f = Flix.build ~config:MB.default_hybrid c in
  check "report nonempty" true (String.length (Flix.report f) > 0);
  check "size positive" true (Flix.index_size_bytes f > 0);
  let start = Option.get (Flix.node_of f ~doc:"doc1" ~anchor:None) in
  let results = RS.to_list (Flix.descendants f ~start ~tag:"b") in
  check "results" true (results <> []);
  (* unknown tag: empty, not an error *)
  check "unknown tag empty" true (RS.to_list (Flix.descendants f ~start ~tag:"zzz") = []);
  (* node_of with anchor *)
  check "anchor lookup" true (Flix.node_of f ~doc:"doc6" ~anchor:(Some "x6") <> None);
  check "missing doc" true (Flix.node_of f ~doc:"nope" ~anchor:None = None);
  (* A//B over the whole collection *)
  let ab = RS.to_list (Flix.evaluate f ~start_tag:"p" ~target_tag:"q") in
  check "A//B nonempty" true (ab <> []);
  (* true_distance sanity *)
  check "true distance" true (Flix.true_distance f start start = Some 0)

let () =
  Alcotest.run "fx_flix"
    [
      ( "meta_documents",
        [
          Alcotest.test_case "registry invariants (fig1, all configs)" `Quick
            test_registry_invariants_fig1;
          Alcotest.test_case "naive = 1 doc per meta" `Quick test_naive_one_meta_per_doc;
          Alcotest.test_case "maximal PPO builds forests" `Quick test_maximal_ppo_forests;
          Alcotest.test_case "accepted links point at roots" `Quick
            test_maximal_ppo_accepted_links_are_tree_edges;
          Alcotest.test_case "unconnected HOPI size bound" `Quick
            test_unconnected_hopi_size_bound;
          Alcotest.test_case "hybrid mixes strategies" `Quick test_hybrid_mixes;
          Alcotest.test_case "spanning PPO single meta" `Quick test_spanning_ppo_single_meta;
        ] );
      ( "auto_config",
        [
          Alcotest.test_case "paper's prescription per workload" `Quick
            test_auto_config_per_workload;
          Alcotest.test_case "analysis fields" `Quick test_auto_config_analysis_fields;
          Alcotest.test_case "empty collection" `Quick test_auto_config_empty_collection;
        ] );
      ( "strategy_selector",
        [
          Alcotest.test_case "auto policy" `Quick test_selector_auto;
          Alcotest.test_case "force and custom" `Quick test_selector_force_and_custom;
          Alcotest.test_case "closure estimate" `Quick test_selector_estimate;
        ] );
      ( "index_builder",
        [
          Alcotest.test_case "PPO fallback" `Quick test_builder_fallback;
          Alcotest.test_case "parallel build equivalent" `Quick test_builder_parallel_equivalent;
          Alcotest.test_case "disk-resident strategy" `Quick test_builder_disk_strategy;
          Alcotest.test_case "report" `Quick test_builder_report;
        ] );
      ( "pee",
        [
          Alcotest.test_case "fig1: all configs, all starts" `Quick test_pee_fig1_all_configs;
          Alcotest.test_case "distances are upper bounds" `Quick
            test_pee_distances_are_exact_in_fig1_tree;
          Alcotest.test_case "max_dist threshold" `Quick test_pee_max_dist;
          Alcotest.test_case "include_self" `Quick test_pee_include_self;
          Alcotest.test_case "lazy streaming" `Quick test_pee_streaming_is_lazy;
          Alcotest.test_case "A//B multi-start" `Quick test_pee_multi;
          Alcotest.test_case "ancestors" `Quick test_pee_ancestors;
          Alcotest.test_case "exact ordering (fig1)" `Quick test_pee_exact_ordering;
          prop_pee_exact_random;
          Alcotest.test_case "ancestors exact" `Quick test_pee_ancestors_exact;
          Alcotest.test_case "connection test" `Quick test_pee_connected;
          Alcotest.test_case "connection max_dist" `Quick test_pee_connected_max_dist;
          prop_pee_random_collections;
          prop_pee_block_order;
        ] );
      ( "element_level",
        [
          Alcotest.test_case "splits documents" `Quick test_element_level_splits_docs;
          Alcotest.test_case "PEE correct (fig1)" `Quick test_element_level_pee_correct;
          prop_element_level_random;
        ] );
      ( "query_cache",
        [
          Alcotest.test_case "replay" `Quick test_query_cache_replay;
          Alcotest.test_case "keys" `Quick test_query_cache_keys;
          Alcotest.test_case "unconsumed not cached" `Quick test_query_cache_unconsumed_not_cached;
          Alcotest.test_case "invalidate" `Quick test_query_cache_invalidate;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "extend reuses indexes" `Quick test_extend_reuses_indexes;
          Alcotest.test_case "duplicate names rejected" `Quick test_extend_duplicate_name_rejected;
          Alcotest.test_case "remove documents" `Quick test_remove_documents;
          Alcotest.test_case "rebuild with new config" `Quick test_rebuild_applies_recommendation;
          Alcotest.test_case "structural change handled" `Quick
            test_extend_link_into_old_doc_rebuilds_it;
        ] );
      ( "self_tuning",
        [
          Alcotest.test_case "summary" `Quick test_self_tuning_summary;
          Alcotest.test_case "window" `Quick test_self_tuning_window;
          Alcotest.test_case "recommendations" `Quick test_self_tuning_recommend;
        ] );
      ( "result_stream",
        [
          Alcotest.test_case "basics" `Quick test_stream_basics;
          Alcotest.test_case "combinators" `Quick test_stream_take_while_map_filter;
          Alcotest.test_case "timed" `Quick test_stream_timed;
        ] );
      ( "stats",
        [
          Alcotest.test_case "error rate" `Quick test_error_rate;
          Alcotest.test_case "time series" `Quick test_time_series;
          Alcotest.test_case "percentile/mean" `Quick test_percentile_mean;
        ] );
      ("facade", [ Alcotest.test_case "flix facade" `Quick test_flix_facade ]);
    ]
