test/test_index.ml: Alcotest Array Bytes Filename Fx_graph Fx_index Fx_util Helpers List Option String Sys
