test/test_flix.mli:
