test/test_flix.ml: Alcotest Array Filename Format Fun Fx_flix Fx_graph Fx_util Fx_workload Fx_xml Hashtbl Helpers List Option Printf QCheck String Sys
