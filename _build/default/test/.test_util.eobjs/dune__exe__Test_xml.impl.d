test/test_xml.ml: Alcotest Array Buffer Fx_graph Fx_xml Gen Helpers List Option QCheck Result String
