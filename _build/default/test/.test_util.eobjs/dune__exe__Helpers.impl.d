test/helpers.ml: Array Fx_flix Fx_graph Fx_index Fx_util List Option Printf QCheck QCheck_alcotest String
