test/test_workload.ml: Alcotest Array Fx_graph Fx_util Fx_workload Fx_xml Helpers List Option
