test/test_graph.ml: Alcotest Array Fx_graph Helpers List QCheck
