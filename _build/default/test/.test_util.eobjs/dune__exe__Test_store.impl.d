test/test_store.ml: Alcotest Array Bytes Filename Fun Fx_graph Fx_index Fx_store Fx_util Helpers Int List Map Printf QCheck String Sys
