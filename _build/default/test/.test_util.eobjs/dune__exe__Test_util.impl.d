test/test_util.ml: Alcotest Fx_util Helpers List QCheck String
