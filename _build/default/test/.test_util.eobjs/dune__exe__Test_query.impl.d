test/test_query.ml: Alcotest Array Fx_flix Fx_graph Fx_query Fx_workload Fx_xml Helpers Lazy List Option Printf Result String
