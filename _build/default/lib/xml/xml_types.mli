(** The XML document model.

    A document is a named tree of elements; FliX's data model (paper,
    Section 2.1) is derived from it by {!Collection}: one graph node per
    element, tree edges for parent–child relations, extra edges for
    intra- and inter-document links. *)

type attribute = { name : string; value : string }

type node =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; body : string }

and element = { tag : string; attrs : attribute list; children : node list }

type document = { name : string; root : element }
(** [name] identifies the document inside a collection and is the anchor
    for inter-document links ("name#id"). Names must be unique. *)

(** {1 Constructors} *)

val elt : ?attrs:(string * string) list -> string -> node list -> element
val text : string -> node
val e : ?attrs:(string * string) list -> string -> node list -> node
(** [e tag children] is [Element (elt tag children)]. *)

val document : name:string -> element -> document

(** {1 Accessors} *)

val attr : element -> string -> string option
(** First attribute with the given name. *)

val children_elements : element -> element list
val direct_text : element -> string
(** Concatenation of the element's direct text and CDATA children,
    whitespace-trimmed. *)

val iter_elements : element -> (element -> unit) -> unit
(** Preorder traversal over the element and all its descendants. *)

val fold_elements : element -> ('a -> element -> 'a) -> 'a -> 'a
val count_elements : element -> int

val find_first : element -> (element -> bool) -> element option
(** Preorder search. *)

val equal_element : element -> element -> bool
val equal_document : document -> document -> bool
