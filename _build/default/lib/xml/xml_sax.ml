type error = { line : int; col : int; message : string }

let pp_error ppf e = Format.fprintf ppf "%d:%d: %s" e.line e.col e.message
let error_to_string e = Format.asprintf "%a" pp_error e

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; body : string }

module L = Xml_lexer

(* Attribute list for an open tag; cursor is just past the name. *)
let rec parse_attrs lx acc =
  L.skip_ws lx;
  match L.peek lx with
  | Some ('>' | '/') | None -> List.rev acc
  | Some _ ->
      let name = L.read_name lx in
      if List.mem_assoc name acc then
        L.fail lx (Printf.sprintf "duplicate attribute %S" name);
      L.skip_ws lx;
      L.expect lx '=';
      L.skip_ws lx;
      let value = L.read_attr_value lx in
      parse_attrs lx ((name, value) :: acc)

(* Prolog: XML declaration, comments, PIs, one optional doctype. These
   are not reported as events (they are metadata, not content). *)
let parse_prolog lx =
  let continue = ref true in
  while !continue do
    L.skip_ws lx;
    if L.looking_at lx "<?" then begin
      L.expect_string lx "<?";
      let _target = L.read_name lx in
      ignore (L.read_until lx "?>")
    end
    else if L.looking_at lx "<!--" then begin
      L.expect_string lx "<!--";
      ignore (L.read_comment_body lx)
    end
    else if L.looking_at lx "<!DOCTYPE" then begin
      L.expect_string lx "<!DOCTYPE";
      let depth = ref 0 in
      let in_doctype = ref true in
      while !in_doctype do
        match L.peek lx with
        | None -> L.fail lx "unterminated doctype"
        | Some '[' ->
            incr depth;
            L.advance lx
        | Some ']' ->
            decr depth;
            L.advance lx
        | Some '>' when !depth = 0 ->
            L.advance lx;
            in_doctype := false
        | Some _ -> L.advance lx
      done
    end
    else continue := false
  done

(* The document body: one root element, handled with an explicit stack
   of open tags so depth is unbounded. *)
let parse_body lx emit =
  (match L.peek lx with
  | Some '<' -> ()
  | Some c -> L.fail lx (Printf.sprintf "expected root element, found %C" c)
  | None -> L.fail lx "empty document");
  let stack = ref [] in
  (* Open one tag (cursor on '<'); self-closing tags emit both events. *)
  let open_element () =
    L.expect lx '<';
    let tag = L.read_name lx in
    let attrs = parse_attrs lx [] in
    match L.peek lx with
    | Some '/' ->
        L.advance lx;
        L.expect lx '>';
        emit (Start_element { tag; attrs });
        emit (End_element tag)
    | Some '>' ->
        L.advance lx;
        emit (Start_element { tag; attrs });
        stack := tag :: !stack
    | Some c -> L.fail lx (Printf.sprintf "unexpected %C in tag" c)
    | None -> L.fail lx "unexpected end of input in tag"
  in
  open_element ();
  while !stack <> [] do
    match L.peek lx with
    | None ->
        L.fail lx (Printf.sprintf "unclosed element <%s>" (List.hd !stack))
    | Some '<' -> begin
        match L.peek2 lx with
        | Some '/' ->
            L.advance lx;
            L.advance lx;
            let close = L.read_name lx in
            (match !stack with
            | top :: rest when top = close ->
                L.skip_ws lx;
                L.expect lx '>';
                emit (End_element close);
                stack := rest
            | top :: _ ->
                L.fail lx
                  (Printf.sprintf "mismatched closing tag: expected </%s>, found </%s>" top close)
            | [] -> assert false)
        | Some '!' ->
            if L.looking_at lx "<!--" then begin
              L.expect_string lx "<!--";
              emit (Comment (L.read_comment_body lx))
            end
            else if L.looking_at lx "<![CDATA[" then begin
              L.expect_string lx "<![CDATA[";
              emit (Cdata (L.read_cdata_body lx))
            end
            else L.fail lx "unsupported markup declaration inside element"
        | Some '?' ->
            L.expect_string lx "<?";
            let target = L.read_name lx in
            let body = String.trim (L.read_until lx "?>") in
            emit (Pi { target; body })
        | Some _ | None -> open_element ()
      end
    | Some _ ->
        let s = L.read_text lx in
        if String.trim s <> "" then emit (Text s)
  done

let parse_epilog lx =
  let rec skip () =
    L.skip_ws lx;
    if L.looking_at lx "<!--" then begin
      L.expect_string lx "<!--";
      ignore (L.read_comment_body lx);
      skip ()
    end
    else if L.looking_at lx "<?" then begin
      L.expect_string lx "<?";
      ignore (L.read_until lx "?>");
      skip ()
    end
    else if not (L.eof lx) then L.fail lx "trailing content after root element"
  in
  skip ()

let parse input ~on_event =
  let lx = L.create input in
  try
    parse_prolog lx;
    L.skip_ws lx;
    parse_body lx on_event;
    parse_epilog lx;
    Ok ()
  with L.Error { line; col; message } -> Error { line; col; message }

let fold input ~init ~f =
  let acc = ref init in
  match parse input ~on_event:(fun e -> acc := f !acc e) with
  | Ok () -> Ok !acc
  | Error _ as e -> e

let count_elements input =
  fold input ~init:0 ~f:(fun n -> function Start_element _ -> n + 1 | _ -> n)

let tag_histogram input =
  let tbl = Hashtbl.create 32 in
  match
    parse input ~on_event:(function
      | Start_element { tag; _ } ->
          Hashtbl.replace tbl tag (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tag))
      | _ -> ())
  with
  | Error _ as e -> e
  | Ok () ->
      Ok
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (t1, a) (t2, b) -> compare (b, t1) (a, t2)))
