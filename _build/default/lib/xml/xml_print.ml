open Xml_types

let escape ~quot s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text s = escape ~quot:false s
let escape_attr s = escape ~quot:true s

let add_attrs buf attrs =
  List.iter
    (fun { name; value } ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr value);
      Buffer.add_char buf '"')
    attrs

let rec add_element buf el =
  Buffer.add_char buf '<';
  Buffer.add_string buf el.tag;
  add_attrs buf el.attrs;
  match el.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
      Buffer.add_char buf '>';
      List.iter (add_node buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.tag;
      Buffer.add_char buf '>'

and add_node buf = function
  | Element el -> add_element buf el
  | Text s -> Buffer.add_string buf (escape_text s)
  | Cdata s ->
      Buffer.add_string buf "<![CDATA[";
      Buffer.add_string buf s;
      Buffer.add_string buf "]]>"
  | Comment s ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  | Pi { target; body } ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if body <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf body
      end;
      Buffer.add_string buf "?>"

let element_to_string el =
  let buf = Buffer.create 256 in
  add_element buf el;
  Buffer.contents buf

let to_string doc =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  add_element buf doc.root;
  Buffer.contents buf

let pretty doc =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let text_only el =
    List.for_all (function Text _ | Cdata _ -> true | _ -> false) el.children
  in
  let rec go level el =
    indent level;
    if el.children = [] || text_only el then begin
      add_element buf el;
      Buffer.add_char buf '\n'
    end
    else begin
      Buffer.add_char buf '<';
      Buffer.add_string buf el.tag;
      add_attrs buf el.attrs;
      Buffer.add_string buf ">\n";
      List.iter
        (fun n ->
          match n with
          | Element c -> go (level + 1) c
          | other ->
              indent (level + 1);
              add_node buf other;
              Buffer.add_char buf '\n')
        el.children;
      indent level;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.tag;
      Buffer.add_string buf ">\n"
    end
  in
  go 0 doc.root;
  Buffer.contents buf
