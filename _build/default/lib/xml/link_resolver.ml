type href = { doc : string option; anchor : string option }

type raw = {
  anchors : (string * int) list;
  idrefs : (int * string) list;
  hrefs : (int * href) list;
}

let parse_href s =
  match String.index_opt s '#' with
  | None -> { doc = (if s = "" then None else Some s); anchor = None }
  | Some i ->
      let doc = String.sub s 0 i in
      let anchor = String.sub s (i + 1) (String.length s - i - 1) in
      {
        doc = (if doc = "" then None else Some doc);
        anchor = (if anchor = "" then None else Some anchor);
      }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun x -> x <> "")

let scan (doc : Xml_types.document) =
  let anchors = ref [] and idrefs = ref [] and hrefs = ref [] in
  let seen_anchor = Hashtbl.create 16 in
  let index = ref (-1) in
  Xml_types.iter_elements doc.root (fun el ->
      incr index;
      let i = !index in
      List.iter
        (fun ({ name; value } : Xml_types.attribute) ->
          match name with
          | "id" | "xml:id" ->
              if not (Hashtbl.mem seen_anchor value) then begin
                Hashtbl.add seen_anchor value ();
                anchors := (value, i) :: !anchors
              end
          | "idref" -> if value <> "" then idrefs := (i, value) :: !idrefs
          | "idrefs" -> List.iter (fun v -> idrefs := (i, v) :: !idrefs) (split_ws value)
          | "xlink:href" | "href" -> if value <> "" then hrefs := (i, parse_href value) :: !hrefs
          | _ -> ())
        el.attrs);
  { anchors = List.rev !anchors; idrefs = List.rev !idrefs; hrefs = List.rev !hrefs }
