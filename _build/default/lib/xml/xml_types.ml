type attribute = { name : string; value : string }

type node =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; body : string }

and element = { tag : string; attrs : attribute list; children : node list }

type document = { name : string; root : element }

let elt ?(attrs = []) tag children =
  { tag; attrs = List.map (fun (name, value) -> { name; value }) attrs; children }

let text s = Text s
let e ?attrs tag children = Element (elt ?attrs tag children)
let document ~name root = { name; root }

let attr el name =
  List.find_map
    (fun (a : attribute) -> if a.name = name then Some a.value else None)
    el.attrs

let children_elements el =
  List.filter_map (function Element e -> Some e | _ -> None) el.children

let direct_text el =
  let buf = Buffer.create 16 in
  List.iter
    (function
      | Text s | Cdata s -> Buffer.add_string buf s
      | Element _ | Comment _ | Pi _ -> ())
    el.children;
  String.trim (Buffer.contents buf)

let rec iter_elements el f =
  f el;
  List.iter (function Element c -> iter_elements c f | _ -> ()) el.children

let fold_elements el f init =
  let acc = ref init in
  iter_elements el (fun e -> acc := f !acc e);
  !acc

let count_elements el = fold_elements el (fun n _ -> n + 1) 0

let find_first el p =
  let result = ref None in
  (try
     iter_elements el (fun e ->
         if p e then begin
           result := Some e;
           raise Exit
         end)
   with Exit -> ());
  !result

let rec equal_element a b =
  a.tag = b.tag && a.attrs = b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

and equal_node a b =
  match (a, b) with
  | Element ea, Element eb -> equal_element ea eb
  | Text sa, Text sb | Cdata sa, Cdata sb | Comment sa, Comment sb -> sa = sb
  | Pi a, Pi b -> a.target = b.target && a.body = b.body
  | (Element _ | Text _ | Cdata _ | Comment _ | Pi _), _ -> false

let equal_document a b = a.name = b.name && equal_element a.root b.root
