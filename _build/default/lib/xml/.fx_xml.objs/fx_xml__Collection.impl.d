lib/xml/collection.ml: Array Fx_graph Hashtbl Link_resolver List Option Printf Xml_types
