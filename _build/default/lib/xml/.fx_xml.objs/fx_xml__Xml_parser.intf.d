lib/xml/xml_parser.mli: Format Xml_sax Xml_types
