lib/xml/xml_print.mli: Xml_types
