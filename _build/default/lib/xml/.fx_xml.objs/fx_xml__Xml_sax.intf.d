lib/xml/xml_sax.mli: Format
