lib/xml/xml_lexer.ml: Buffer Char Printf String
