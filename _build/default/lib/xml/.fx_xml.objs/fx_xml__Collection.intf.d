lib/xml/collection.mli: Fx_graph Xml_types
