lib/xml/xml_lexer.mli:
