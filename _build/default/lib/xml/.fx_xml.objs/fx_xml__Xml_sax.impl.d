lib/xml/xml_sax.ml: Format Hashtbl List Option Printf String Xml_lexer
