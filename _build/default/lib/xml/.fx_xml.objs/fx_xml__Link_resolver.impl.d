lib/xml/link_resolver.ml: Hashtbl List String Xml_types
