lib/xml/xml_parser.ml: List Xml_sax Xml_types
