lib/xml/link_resolver.mli: Xml_types
