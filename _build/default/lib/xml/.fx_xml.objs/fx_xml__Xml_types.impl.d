lib/xml/xml_types.ml: Buffer List String
