lib/xml/xml_print.ml: Buffer List String Xml_types
