lib/xml/xml_types.mli:
