(** Streaming (SAX-style) XML parsing: the grammar of {!Xml_parser}
    delivered as a sequence of events instead of a tree. {!Xml_parser}
    itself is a fold over this event stream, so both views accept and
    reject exactly the same inputs.

    Use this to scan large documents without materialising them —
    counting elements, harvesting links or collecting tag statistics in
    constant memory. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string          (** non-whitespace character data, entities resolved *)
  | Cdata of string
  | Comment of string
  | Pi of { target : string; body : string }

val parse : string -> on_event:(event -> unit) -> (unit, error) result
(** Runs the callback over the document's events. Well-formedness
    (matching tags, single root, valid entities, ...) is enforced; on
    error, events already emitted stay emitted. *)

val fold : string -> init:'a -> f:('a -> event -> 'a) -> ('a, error) result

val count_elements : string -> (int, error) result
(** Element count in constant memory. *)

val tag_histogram : string -> ((string * int) list, error) result
(** Tag name frequencies, descending count. *)
