(** Extraction of intra- and inter-document links from XML documents.

    Following the paper (Section 1), two link mechanisms are recognised:
    - attributes of type id / idref(s): an [id] (or [xml:id]) attribute
      declares an anchor; [idref] / [idrefs] attributes reference anchors
      of the {e same} document;
    - XLink-style hrefs: [xlink:href] (or plain [href]) attributes of the
      form ["target-doc#anchor"], ["target-doc"] (the target's root
      element) or ["#anchor"] (same document).

    Elements are identified by their preorder index within their
    document; {!Collection} turns these into global graph nodes. *)

type href = { doc : string option; anchor : string option }
(** [doc = None]: same document. [anchor = None]: the root element. *)

type raw = {
  anchors : (string * int) list;  (** id value, preorder index of carrier *)
  idrefs : (int * string) list;   (** source preorder index, referenced id *)
  hrefs : (int * href) list;      (** source preorder index, parsed href *)
}

val parse_href : string -> href
val scan : Xml_types.document -> raw
(** Single preorder pass; [idrefs] attributes are split on whitespace.
    Duplicate anchors keep the first occurrence (later ones are shadowed,
    as in HTML). *)
