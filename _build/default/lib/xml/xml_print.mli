(** Serialisation back to XML text. [parse (to_string d) = d] holds for
    documents built from the parser or the constructors (modulo
    insignificant whitespace, which {!to_string} does not introduce). *)

val escape_text : string -> string
val escape_attr : string -> string

val to_string : Xml_types.document -> string
(** Compact serialisation with an XML declaration. *)

val element_to_string : Xml_types.element -> string

val pretty : Xml_types.document -> string
(** Indented, one element per line; text-only elements stay inline. *)
