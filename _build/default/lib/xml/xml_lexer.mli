(** Low-level scanning primitives for the XML parser: a cursor over the
    input with line/column tracking, plus the context-sensitive token
    readers (names, attribute values, character data, comments, CDATA,
    entity references). The grammar lives in {!Xml_parser}. *)

type t

exception Error of { line : int; col : int; message : string }

val create : string -> t
val position : t -> int * int
(** Current (line, column), 1-based. *)

val fail : t -> string -> 'a
(** Raise {!Error} at the current position. *)

val eof : t -> bool
val peek : t -> char option
val peek2 : t -> char option
(** Character after the next one. *)

val advance : t -> unit
val expect : t -> char -> unit
val expect_string : t -> string -> unit
val skip_ws : t -> unit
val looking_at : t -> string -> bool

val read_name : t -> string
(** XML name: leading letter/underscore/colon, then also digits, dots,
    hyphens. Fails on anything else. *)

val read_attr_value : t -> string
(** Quoted attribute value (either quote style), entities resolved. *)

val read_text : t -> string
(** Character data up to the next ['<'], entities resolved. Fails on a
    bare ['&'] that is not a valid entity, and on [']]>'] in content. *)

val read_comment_body : t -> string
(** After ["<!--"], reads up to and including ["-->"]. *)

val read_cdata_body : t -> string
(** After ["<![CDATA["], reads up to and including ["]]>"]. *)

val read_until : t -> string -> string
(** [read_until t stop] consumes up to and including [stop], returning
    the text before it. Fails at end of input. *)
