type t = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

exception Error of { line : int; col : int; message : string }

let create input = { input; pos = 0; line = 1; col = 1 }
let position t = (t.line, t.col)
let fail t message = raise (Error { line = t.line; col = t.col; message })
let eof t = t.pos >= String.length t.input
let peek t = if eof t then None else Some t.input.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.input then None else Some t.input.[t.pos + 1]

let advance t =
  if eof t then fail t "unexpected end of input";
  if t.input.[t.pos] = '\n' then begin
    t.line <- t.line + 1;
    t.col <- 1
  end
  else t.col <- t.col + 1;
  t.pos <- t.pos + 1

let expect t c =
  match peek t with
  | Some c' when c' = c -> advance t
  | Some c' -> fail t (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail t (Printf.sprintf "expected %C, found end of input" c)

let looking_at t s =
  let n = String.length s in
  t.pos + n <= String.length t.input && String.sub t.input t.pos n = s

let expect_string t s =
  if looking_at t s then String.iter (fun _ -> advance t) s
  else fail t (Printf.sprintf "expected %S" s)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws t =
  while (not (eof t)) && is_ws t.input.[t.pos] do
    advance t
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let read_name t =
  (match peek t with
  | Some c when is_name_start c -> ()
  | Some c -> fail t (Printf.sprintf "invalid name start %C" c)
  | None -> fail t "expected a name, found end of input");
  let start = t.pos in
  while (not (eof t)) && is_name_char t.input.[t.pos] do
    advance t
  done;
  String.sub t.input start (t.pos - start)

(* Entity reference, cursor on '&'. *)
let read_entity t =
  expect t '&';
  let start = t.pos in
  while (not (eof t)) && t.input.[t.pos] <> ';' && t.pos - start < 12 do
    advance t
  done;
  if eof t || t.input.[t.pos] <> ';' then fail t "unterminated entity reference";
  let name = String.sub t.input start (t.pos - start) in
  advance t;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      if String.length name >= 2 && name.[0] = '#' then begin
        let code =
          try
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with Failure _ -> fail t (Printf.sprintf "invalid character reference &%s;" name)
        in
        if code < 0 || code > 0x10FFFF then fail t "character reference out of range";
        (* UTF-8 encode. *)
        let buf = Buffer.create 4 in
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents buf
      end
      else fail t (Printf.sprintf "unknown entity &%s;" name)

let read_attr_value t =
  let quote =
    match peek t with
    | Some ('"' as q) | Some ('\'' as q) ->
        advance t;
        q
    | Some c -> fail t (Printf.sprintf "expected quoted attribute value, found %C" c)
    | None -> fail t "expected attribute value, found end of input"
  in
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek t with
    | None -> fail t "unterminated attribute value"
    | Some c when c = quote ->
        advance t;
        continue := false
    | Some '&' -> Buffer.add_string buf (read_entity t)
    | Some '<' -> fail t "'<' is not allowed in attribute values"
    | Some c ->
        Buffer.add_char buf c;
        advance t
  done;
  Buffer.contents buf

let read_text t =
  let buf = Buffer.create 32 in
  let continue = ref true in
  while !continue do
    match peek t with
    | None | Some '<' -> continue := false
    | Some '&' -> Buffer.add_string buf (read_entity t)
    | Some ']' when looking_at t "]]>" -> fail t "']]>' is not allowed in character data"
    | Some c ->
        Buffer.add_char buf c;
        advance t
  done;
  Buffer.contents buf

let read_until t stop =
  let buf = Buffer.create 32 in
  let continue = ref true in
  while !continue do
    if looking_at t stop then begin
      expect_string t stop;
      continue := false
    end
    else if eof t then fail t (Printf.sprintf "expected %S before end of input" stop)
    else begin
      Buffer.add_char buf t.input.[t.pos];
      advance t
    end
  done;
  Buffer.contents buf

let read_comment_body t = read_until t "-->"
let read_cdata_body t = read_until t "]]>"
