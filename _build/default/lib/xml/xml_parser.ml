(* The tree parser is a fold over the SAX event stream (Xml_sax owns the
   grammar): Start pushes a frame, content events accumulate into the
   top frame, End pops and wraps. Both views therefore accept and reject
   exactly the same inputs. *)

type error = Xml_sax.error = { line : int; col : int; message : string }

let pp_error = Xml_sax.pp_error
let error_to_string = Xml_sax.error_to_string

type frame = {
  tag : string;
  attrs : Xml_types.attribute list;
  mutable children : Xml_types.node list; (* reversed *)
}

let parse ?(name = "doc") input =
  let stack : frame list ref = ref [] in
  let root = ref None in
  let push_node node =
    match !stack with
    | top :: _ -> top.children <- node :: top.children
    | [] -> assert false (* SAX only emits content inside the root *)
  in
  let on_event (e : Xml_sax.event) =
    match e with
    | Start_element { tag; attrs } ->
        let attrs = List.map (fun (name, value) -> { Xml_types.name; value }) attrs in
        stack := { tag; attrs; children = [] } :: !stack
    | End_element _ -> begin
        match !stack with
        | frame :: rest ->
            let element =
              {
                Xml_types.tag = frame.tag;
                attrs = frame.attrs;
                children = List.rev frame.children;
              }
            in
            stack := rest;
            if rest = [] then root := Some element
            else push_node (Xml_types.Element element)
        | [] -> assert false
      end
    | Text s -> push_node (Xml_types.Text s)
    | Cdata s -> push_node (Xml_types.Cdata s)
    | Comment s -> push_node (Xml_types.Comment s)
    | Pi { target; body } -> push_node (Xml_types.Pi { target; body })
  in
  match Xml_sax.parse input ~on_event with
  | Error _ as e -> e
  | Ok () -> begin
      match !root with
      | Some root -> Ok (Xml_types.document ~name root)
      | None -> assert false (* a successful SAX run closed the root *)
    end

let parse_exn ?name input =
  match parse ?name input with
  | Ok doc -> doc
  | Error e -> failwith ("XML parse error at " ^ error_to_string e)

let parse_element input =
  match parse ~name:"_" input with
  | Ok doc -> Ok doc.Xml_types.root
  | Error e -> Error e
