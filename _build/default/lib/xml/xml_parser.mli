(** Tree parser for the XML subset used by document collections:
    prolog, doctype (skipped), elements with attributes, character data
    with entity references, CDATA, comments, processing instructions.
    Namespaces are kept as raw prefixed names (FliX treats
    ["xlink:href"] as an ordinary attribute name). Implemented as a fold
    over the {!Xml_sax} event stream, so the two views agree exactly on
    which inputs are well-formed. *)

type error = Xml_sax.error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse : ?name:string -> string -> (Xml_types.document, error) result
(** [parse ~name input] parses a complete document. [name] (default
    ["doc"]) becomes the document's collection name. Trailing garbage
    after the root element is an error. *)

val parse_exn : ?name:string -> string -> Xml_types.document
(** @raise Failure with a formatted message on parse errors. *)

val parse_element : string -> (Xml_types.element, error) result
(** Parses a bare element (no prolog handling beyond whitespace). *)
