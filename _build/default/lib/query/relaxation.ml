type options = {
  relax_axes : bool;
  ontology : Ontology.t option;
  min_similarity : float;
}

let default = { relax_axes = true; ontology = None; min_similarity = 0.1 }
let with_ontology o = { default with ontology = Some o }

type alternative = { test : Xpath.test; similarity : float }

type step = {
  axis : Xpath.axis;
  alternatives : alternative list;
  predicate : Xpath.predicate option;
}

type t = { absolute : bool; steps : step list }

let relax_test opts = function
  | Xpath.Wildcard -> [ { test = Xpath.Wildcard; similarity = 1.0 } ]
  | Xpath.Tag name -> begin
      match opts.ontology with
      | None -> [ { test = Xpath.Tag name; similarity = 1.0 } ]
      | Some ont ->
          Ontology.expand ~min_similarity:opts.min_similarity ont name
          |> List.map (fun (n, s) -> { test = Xpath.Tag n; similarity = s })
    end

let widen = function
  | Xpath.Child | Xpath.Descendant -> Xpath.Descendant
  | Xpath.Parent | Xpath.Ancestor -> Xpath.Ancestor

let relax opts (q : Xpath.t) =
  let steps =
    List.map
      (fun (s : Xpath.step) ->
        {
          axis = (if opts.relax_axes then widen s.axis else s.axis);
          alternatives = relax_test opts s.test;
          predicate = s.predicate;
        })
      q.steps
  in
  { absolute = q.absolute; steps }

let to_string t =
  let buf = Buffer.create 64 in
  List.iter
    (fun (s : step) ->
      Buffer.add_string buf
        (match s.axis with
        | Xpath.Child -> "/"
        | Xpath.Descendant -> "//"
        | Xpath.Parent -> "/parent::"
        | Xpath.Ancestor -> "/ancestor::");
      let alt_str (a : alternative) =
        let name = match a.test with Xpath.Tag n -> n | Xpath.Wildcard -> "*" in
        if a.similarity >= 1.0 then name else Printf.sprintf "%s(%.2f)" name a.similarity
      in
      Buffer.add_string buf (String.concat "|" (List.map alt_str s.alternatives));
      match s.predicate with
      | None -> ()
      | Some (Xpath.Child_text (n, v)) -> Buffer.add_string buf (Printf.sprintf "[%s=%S]" n v)
      | Some (Xpath.Own_text v) -> Buffer.add_string buf (Printf.sprintf "[text()=%S]" v)
      | Some (Xpath.Attribute (n, v)) -> Buffer.add_string buf (Printf.sprintf "[@%s=%S]" n v))
    t.steps;
  Buffer.contents buf
