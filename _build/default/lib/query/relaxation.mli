(** Query relaxation — turning a crisp XPath into a vague one (paper,
    Section 1): the query

    {v /movie[title="Matrix: Revolutions"]/actor/movie v}

    becomes

    {v //~movie[~title ≈ "Matrix: Revolutions"]//~actor//~movie v}

    i.e. every child axis is widened to descendants-or-self
    ({e structural} vagueness) and every tag test is expanded to the
    ontology neighbourhood of its name ({e semantic} vagueness), each
    alternative carrying the similarity score that will discount the
    result's relevance. *)

type options = {
  relax_axes : bool;
  ontology : Ontology.t option;
  min_similarity : float;
}

val default : options
(** Axes relaxed, no ontology. *)

val with_ontology : Ontology.t -> options

type alternative = { test : Xpath.test; similarity : float }

type step = {
  axis : Xpath.axis;
  alternatives : alternative list;  (** best similarity first; never empty *)
  predicate : Xpath.predicate option;
}

type t = { absolute : bool; steps : step list }

val relax : options -> Xpath.t -> t
val to_string : t -> string
(** Debug rendering, e.g. ["//movie|film(0.9)//actor"]. *)
