lib/query/topk.mli: Fx_flix Ranking
