lib/query/ontology.mli: Lazy
