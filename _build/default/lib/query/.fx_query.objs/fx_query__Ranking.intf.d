lib/query/ranking.mli:
