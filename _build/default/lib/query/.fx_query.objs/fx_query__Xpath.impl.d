lib/query/xpath.ml: Buffer List Printf String
