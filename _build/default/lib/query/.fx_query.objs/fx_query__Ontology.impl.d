lib/query/ontology.ml: Hashtbl List Option
