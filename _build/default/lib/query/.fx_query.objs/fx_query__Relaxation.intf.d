lib/query/relaxation.mli: Ontology Xpath
