lib/query/ranking.ml: List
