lib/query/xpath.mli:
