lib/query/relaxation.ml: Buffer List Ontology Printf String Xpath
