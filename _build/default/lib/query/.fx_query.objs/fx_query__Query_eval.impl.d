lib/query/query_eval.ml: Array Fx_flix Fx_graph Fx_xml Hashtbl List Printf Ranking Relaxation Xpath
