lib/query/query_eval.mli: Fx_flix Ontology Ranking Relaxation Result Xpath
