lib/query/topk.ml: Fx_flix List Ranking
