type params = { decay : float; link_penalty : float }

let default = { decay = 0.8; link_penalty = 0.75 }

let step_score p ~dist ~links_crossed =
  if dist < 0 then invalid_arg "Ranking.step_score: negative distance";
  let extra = max 0 (dist - 1) in
  (p.decay ** float_of_int extra) *. (p.link_penalty ** float_of_int links_crossed)

let combine = List.fold_left ( *. ) 1.0
let cut ~min_score results = List.filter (fun (_, s) -> s >= min_score) results
let rank results = List.stable_sort (fun (_, a) (_, b) -> compare b a) results
