(** A parser for the XPath fragment FliX serves (paper, Sections 1 and
    5): location paths over the child and descendants-or-self axes with
    tag tests, wildcards and simple text-equality predicates —

    {v /dblp_0001//article   //movie[title="Matrix"]//actor//movie
       a//b                  //inproceedings[@key="conf/VLDB/Mohan99"]/author v}

    Semantic operators of the XXL query language ([~] similarity) are
    not part of the surface syntax here; {!Relaxation} adds vagueness to
    a parsed query instead. *)

type axis = Child | Descendant | Parent | Ancestor
(** Forward axes come from the separators ([/] and [//]); the reverse
    axes use explicit prefixes, [/parent::x] and [/ancestor::x] — the
    paper's Section 5 notes the PEE algorithms "can be adapted easily
    … to support the corresponding reverse axes like
    ancestors-or-self", and the evaluator does. *)

type test = Tag of string | Wildcard

type predicate =
  | Child_text of string * string  (** [[name="value"]]: a child element
                                       [name] has direct text [value] *)
  | Own_text of string             (** [[text()="value"]] *)
  | Attribute of string * string   (** [[@name="value"]] *)

type step = { axis : axis; test : test; predicate : predicate option }

type t = { absolute : bool; steps : step list }
(** [absolute]: the expression started with [/] or [//] (evaluation
    starts at document roots); otherwise it is evaluated relative to
    caller-supplied context nodes. *)

val parse : string -> (t, string) result
val parse_exn : string -> t
val to_string : t -> string
(** Round-trips with {!parse} up to insignificant whitespace. *)

val relax_axes : t -> t
(** Structural vagueness: every child axis becomes descendants-or-self
    ([/movie/actor] → [//movie//actor]) and every parent axis becomes
    ancestors-or-self. *)
