(** Streaming top-k with threshold-based early termination.

    The paper (Section 3.1): a search engine on FliX "may even stop the
    execution when it can determine that it has produced the top k
    results (e.g., using an algorithm similar to Fagin's threshold
    algorithm with only sequential reads)". Because the PEE streams
    results in (approximately) ascending distance and relevance decays
    monotonically with distance, an upper bound on every future result's
    score is available at any moment; once [k] results are buffered and
    the bound drops below the current k-th best score, no future result
    can enter the top k and the stream can be abandoned. *)

type 'a stats = {
  pulled : int;            (** stream elements consumed *)
  stopped_early : bool;    (** true when the threshold fired before
                               exhaustion *)
}

val top_k :
  k:int ->
  score:('a -> float) ->
  bound:('a -> float) ->
  'a Fx_flix.Result_stream.t ->
  ('a * float) list * 'a stats
(** [top_k ~k ~score ~bound stream] — [bound x] must be a non-increasing
    upper bound on the score of [x] {e and of everything after it} (for
    PEE items: the best score still possible at that distance). Returns
    the top k by [score], best first. *)

val by_distance :
  k:int -> params:Ranking.params -> Fx_flix.Pee.item Fx_flix.Result_stream.t ->
  (Fx_flix.Pee.item * float) list * Fx_flix.Pee.item stats
(** Instantiation for plain descendant queries: score and bound are both
    the structural decay at the item's distance. *)
