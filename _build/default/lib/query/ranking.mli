(** Relevance scoring for vague queries (paper, Section 1): "the
    relevance of a result decreases with increasing path length" — a
    match [movie/cast/actor] for the query [movie//actor] scores higher
    than one through five intermediate elements — and semantic tag
    matches are discounted by their ontology similarity.

    A result's score is the product over all query steps of the step's
    structural decay and tag similarity, optionally with an extra
    penalty for every inter-document link on the path (the paper's
    "information within one document normally is more coherent"). *)

type params = {
  decay : float;         (** per extra hop on a descendant step; 0.8 in
                             the paper's example (0.8 for one hop) *)
  link_penalty : float;  (** multiplier per crossed inter-document link *)
}

val default : params
(** decay 0.8, link_penalty 0.75. *)

val step_score : params -> dist:int -> links_crossed:int -> float
(** [step_score p ~dist ~links_crossed] for a descendant step matched at
    [dist] hops. [dist >= 1]: a direct child scores 1.0, each extra hop
    multiplies by [decay]. [dist = 0] (self) scores 1.0. *)

val combine : float list -> float
(** Product. [combine [] = 1.0]. *)

val cut : min_score:float -> ('a * float) list -> ('a * float) list
val rank : ('a * float) list -> ('a * float) list
(** Best score first; stable for equal scores. *)
