type axis = Child | Descendant | Parent | Ancestor
type test = Tag of string | Wildcard

type predicate =
  | Child_text of string * string
  | Own_text of string
  | Attribute of string * string

type step = { axis : axis; test : test; predicate : predicate option }
type t = { absolute : bool; steps : step list }

exception Parse_error of string

(* Hand-rolled scanner over the expression string. *)
type cursor = { input : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None
let advance cur = cur.pos <- cur.pos + 1
let eof cur = cur.pos >= String.length cur.input

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let skip_ws cur =
  while (not (eof cur)) && (cur.input.[cur.pos] = ' ' || cur.input.[cur.pos] = '\t') do
    advance cur
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name cur =
  let start = cur.pos in
  while (not (eof cur)) && is_name_char cur.input.[cur.pos] do
    advance cur
  done;
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.input start (cur.pos - start)

let read_quoted cur =
  match peek cur with
  | Some ('"' as q) | Some ('\'' as q) ->
      advance cur;
      let start = cur.pos in
      while (not (eof cur)) && cur.input.[cur.pos] <> q do
        advance cur
      done;
      if eof cur then fail cur "unterminated string literal";
      let s = String.sub cur.input start (cur.pos - start) in
      advance cur;
      s
  | _ -> fail cur "expected a quoted string"

let read_axis cur ~first =
  match peek cur with
  | Some '/' ->
      advance cur;
      if peek cur = Some '/' then begin
        advance cur;
        Some Descendant
      end
      else Some Child
  | Some _ when first -> None (* relative expression: implicit first separator *)
  | Some c -> fail cur (Printf.sprintf "expected '/' or '//', found %C" c)
  | None -> fail cur "unexpected end of expression"

(* Optional explicit axis prefix: "parent::" / "ancestor::" (the
   forward axes stay implicit in the separators). *)
let read_axis_prefix cur =
  let try_prefix name axis =
    let p = name ^ "::" in
    let n = String.length p in
    if cur.pos + n <= String.length cur.input && String.sub cur.input cur.pos n = p then begin
      cur.pos <- cur.pos + n;
      Some axis
    end
    else None
  in
  match try_prefix "parent" Parent with
  | Some a -> Some a
  | None -> try_prefix "ancestor" Ancestor

let read_test cur =
  skip_ws cur;
  match peek cur with
  | Some '*' ->
      advance cur;
      Wildcard
  | Some c when is_name_char c -> Tag (read_name cur)
  | Some c -> fail cur (Printf.sprintf "expected a tag test, found %C" c)
  | None -> fail cur "expected a tag test"

let read_predicate cur =
  if peek cur <> Some '[' then None
  else begin
    advance cur;
    skip_ws cur;
    let pred =
      if
        cur.pos + 6 <= String.length cur.input
        && String.sub cur.input cur.pos 6 = "text()"
      then begin
        cur.pos <- cur.pos + 6;
        skip_ws cur;
        (match peek cur with
        | Some '=' -> advance cur
        | _ -> fail cur "expected '=' after text()");
        skip_ws cur;
        Own_text (read_quoted cur)
      end
      else if peek cur = Some '@' then begin
        advance cur;
        let name = read_name cur in
        skip_ws cur;
        (match peek cur with
        | Some '=' -> advance cur
        | _ -> fail cur "expected '=' in attribute predicate");
        skip_ws cur;
        Attribute (name, read_quoted cur)
      end
      else begin
        let name = read_name cur in
        skip_ws cur;
        (match peek cur with
        | Some '=' -> advance cur
        | _ -> fail cur "expected '=' in predicate");
        skip_ws cur;
        Child_text (name, read_quoted cur)
      end
    in
    skip_ws cur;
    (match peek cur with
    | Some ']' -> advance cur
    | _ -> fail cur "expected ']'");
    Some pred
  end

let parse input =
  let cur = { input = String.trim input; pos = 0 } in
  try
    if eof cur then raise (Parse_error "empty expression");
    (* A leading '.' marks an explicitly relative path (".//a"). *)
    let relative_dot = peek cur = Some '.' in
    if relative_dot then advance cur;
    let absolute = (not relative_dot) && peek cur = Some '/' in
    let rec steps first acc =
      skip_ws cur;
      if eof cur then List.rev acc
      else begin
        let axis =
          match read_axis cur ~first with
          | Some a -> a
          | None -> Child (* relative first step *)
        in
        skip_ws cur;
        if eof cur then fail cur "trailing path separator";
        (* "/parent::x" overrides the separator's axis; "//ancestor::x"
           is rejected as contradictory. *)
        let axis =
          match read_axis_prefix cur with
          | None -> axis
          | Some explicit ->
              if axis = Descendant then fail cur "reverse axis after '//'"
              else explicit
        in
        let test = read_test cur in
        let predicate = read_predicate cur in
        steps false ({ axis; test; predicate } :: acc)
      end
    in
    let steps = steps true [] in
    if steps = [] then raise (Parse_error "empty expression");
    Ok { absolute; steps }
  with Parse_error msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok q -> q
  | Error msg -> failwith ("XPath parse error " ^ msg)

let to_string q =
  let buf = Buffer.create 32 in
  List.iteri
    (fun i (s : step) ->
      let sep = match s.axis with Descendant -> "//" | Child | Parent | Ancestor -> "/" in
      if i = 0 && not q.absolute then begin
        if s.axis = Descendant then Buffer.add_string buf ".//"
      end
      else Buffer.add_string buf sep;
      (match s.axis with
      | Parent -> Buffer.add_string buf "parent::"
      | Ancestor -> Buffer.add_string buf "ancestor::"
      | Child | Descendant -> ());
      (match s.test with
      | Tag t -> Buffer.add_string buf t
      | Wildcard -> Buffer.add_char buf '*');
      match s.predicate with
      | None -> ()
      | Some (Child_text (n, v)) -> Buffer.add_string buf (Printf.sprintf "[%s=%S]" n v)
      | Some (Own_text v) -> Buffer.add_string buf (Printf.sprintf "[text()=%S]" v)
      | Some (Attribute (n, v)) -> Buffer.add_string buf (Printf.sprintf "[@%s=%S]" n v))
    q.steps;
  Buffer.contents buf

(* Structural relaxation widens each axis within its direction: child
   becomes descendants-or-self, parent becomes ancestors-or-self. *)
let relax_axes q =
  let widen = function
    | Child | Descendant -> Descendant
    | Parent | Ancestor -> Ancestor
  in
  { q with steps = List.map (fun s -> { s with axis = widen s.axis }) q.steps }
