module Result_stream = Fx_flix.Result_stream

type 'a stats = { pulled : int; stopped_early : bool }

(* A tiny bounded buffer of the best k scored items; k is small (the
   paper: "k usually less than 100"), so a sorted list is fine. *)
let insert_topk k (x, s) buffer =
  let rec go = function
    | [] -> [ (x, s) ]
    | (y, sy) :: rest when s > sy -> (x, s) :: (y, sy) :: rest
    | (y, sy) :: rest -> (y, sy) :: go rest
  in
  let extended = go buffer in
  if List.length extended > k then List.filteri (fun i _ -> i < k) extended else extended

let kth_score k buffer =
  if List.length buffer < k then 0.0
  else match List.rev buffer with [] -> 0.0 | (_, s) :: _ -> s

let top_k ~k ~score ~bound stream =
  if k <= 0 then invalid_arg "Topk.top_k: k <= 0";
  let rec go buffer pulled =
    match Result_stream.peek stream with
    | None -> (buffer, { pulled; stopped_early = false })
    | Some x when List.length buffer >= k && bound x <= kth_score k buffer ->
        (buffer, { pulled; stopped_early = true })
    | Some x ->
        ignore (Result_stream.next stream);
        go (insert_topk k (x, score x) buffer) (pulled + 1)
  in
  go [] 0

let by_distance ~k ~params stream =
  let of_item (it : Fx_flix.Pee.item) =
    Ranking.step_score params ~dist:(max 1 it.dist) ~links_crossed:0
  in
  top_k ~k ~score:of_item ~bound:of_item stream
