(** Ranked evaluation of (relaxed) XPath queries on top of FliX — the
    slice of the XXL search engine that the paper positions FliX under:
    descendant steps run on the connection indexes through the PEE,
    child steps on the data graph, predicates on the stored elements,
    and every result carries a relevance score combining structural
    decay, ontology similarity and a penalty per crossed document
    border. *)

type result = { node : int; score : float }

type options = {
  relaxation : Relaxation.options;
  ranking : Ranking.params;
  max_dist : int;       (** per descendant step; keeps vague queries tractable *)
  min_score : float;    (** results below are dropped *)
  max_frontier : int;   (** per-step cap on intermediate matches (best kept) *)
  exact_distances : bool;
      (** evaluate descendant steps with the exactly-ordered engine, so
          scores reflect true shortest distances rather than the
          approximate upper bounds of the streaming engine *)
}

val default : options
val with_ontology : Ontology.t -> options

val eval : ?options:options -> ?context:int list -> Fx_flix.Flix.t -> Xpath.t -> result list
(** Ranked results, best first. [context] seeds relative queries
    (ignored for absolute ones); a relative query without context is
    evaluated from all document roots. *)

val eval_string :
  ?options:options -> ?context:int list -> Fx_flix.Flix.t -> string -> (result list, string) Result.t
(** Parse + relax + evaluate. *)

val top_k :
  ?options:options -> k:int -> Fx_flix.Flix.t -> string -> (result list, string) Result.t
(** Convenience: [eval_string] truncated to the best [k]. *)

val describe : Fx_flix.Flix.t -> result -> string
