module Flix = Fx_flix.Flix
module Pee = Fx_flix.Pee
module Result_stream = Fx_flix.Result_stream
module Collection = Fx_xml.Collection
module X = Fx_xml.Xml_types

type result = { node : int; score : float }

type options = {
  relaxation : Relaxation.options;
  ranking : Ranking.params;
  max_dist : int;
  min_score : float;
  max_frontier : int;
  exact_distances : bool;
}

let default =
  {
    relaxation = Relaxation.default;
    ranking = Ranking.default;
    max_dist = 8;
    min_score = 0.05;
    max_frontier = 20_000;
    exact_distances = false;
  }

let with_ontology o = { default with relaxation = Relaxation.with_ontology o }

let check_predicate c node = function
  | None -> true
  | Some (Xpath.Own_text v) -> Collection.text_of_node c node = v
  | Some (Xpath.Child_text (name, v)) ->
      let el = Collection.element c node in
      List.exists
        (fun (child : X.element) -> child.tag = name && X.direct_text child = v)
        (X.children_elements el)
  | Some (Xpath.Attribute (name, v)) -> X.attr (Collection.element c node) name = Some v

let test_matches c node (test : Xpath.test) =
  match test with
  | Xpath.Wildcard -> true
  | Xpath.Tag name -> begin
      match Collection.tag_id c name with
      | None -> false
      | Some w -> (Collection.tag c).(node) = w
    end

(* Merge scored matches, keeping the best score per node and capping the
   frontier size. *)
let normalise_frontier ~max_frontier matches =
  let best = Hashtbl.create 256 in
  List.iter
    (fun (node, score) ->
      match Hashtbl.find_opt best node with
      | Some s when s >= score -> ()
      | Some _ | None -> Hashtbl.replace best node score)
    matches;
  let all = Hashtbl.fold (fun node score acc -> (node, score) :: acc) best [] in
  let ranked = Ranking.rank all in
  if List.length ranked > max_frontier then List.filteri (fun i _ -> i < max_frontier) ranked
  else ranked

(* One alternative of one step from one source node. *)
let step_matches opts flix ~from_meta source score (step : Relaxation.step)
    (alt : Relaxation.alternative) =
  let c = Flix.collection flix in
  match step.axis with
  | Xpath.Child ->
      Fx_graph.Digraph.fold_succ (Collection.graph c) source
        (fun acc v ->
          if test_matches c v alt.test && check_predicate c v step.predicate then
            (v, score *. alt.similarity) :: acc
          else acc)
        []
  | Xpath.Parent ->
      Fx_graph.Digraph.fold_pred (Collection.graph c) source
        (fun acc v ->
          if test_matches c v alt.test && check_predicate c v step.predicate then
            (v, score *. alt.similarity) :: acc
          else acc)
        []
  | Xpath.Descendant | Xpath.Ancestor ->
      let tag = match alt.test with Xpath.Tag n -> Some n | Xpath.Wildcard -> None in
      let evaluate =
        match (step.axis, opts.exact_distances) with
        | Xpath.Ancestor, _ -> Flix.ancestors
        | _, true -> Flix.descendants_exact
        | _, false -> Flix.descendants
      in
      let stream = evaluate ?tag ~max_dist:opts.max_dist flix ~start:source in
      let acc = ref [] in
      let continue = ref true in
      while !continue do
        match Result_stream.next stream with
        | None -> continue := false
        | Some (it : Pee.item) ->
            if check_predicate c it.node step.predicate then begin
              let links_crossed = if it.meta = from_meta it.node then 0 else 1 in
              let s =
                score *. alt.similarity
                *. Ranking.step_score opts.ranking ~dist:it.dist ~links_crossed
              in
              if s >= opts.min_score then acc := (it.node, s) :: !acc
            end
      done;
      !acc

let initial_frontier opts flix ~context (relaxed : Relaxation.t) =
  let c = Flix.collection flix in
  let roots = List.init (Collection.n_docs c) (fun d -> Collection.root_of_doc c d) in
  match relaxed.steps with
  | [] -> []
  | first :: _ ->
      let sources =
        if relaxed.absolute || context = [] then roots else List.sort_uniq compare context
      in
      (* The first step is evaluated from the (virtual) collection root:
         a child axis inspects the sources themselves, a descendant axis
         searches below them too. *)
      let from_sources =
        List.concat_map
          (fun (alt : Relaxation.alternative) ->
            List.filter_map
              (fun s ->
                if test_matches c s alt.test && check_predicate c s first.predicate then
                  Some (s, alt.similarity)
                else None)
              sources)
          first.alternatives
      in
      let deeper =
        if first.axis = Xpath.Descendant then begin
          let reg = Fx_flix.Flix.registry flix in
          let from_meta v = reg.Fx_flix.Meta_document.meta_of_node.(v) in
          List.concat_map
            (fun (alt : Relaxation.alternative) ->
              List.concat_map
                (fun s -> step_matches opts flix ~from_meta:(fun _ -> from_meta s) s 1.0
                            { first with alternatives = [ alt ] } alt)
              sources)
            first.alternatives
        end
        else []
      in
      from_sources @ deeper

let eval ?(options = default) ?(context = []) flix query =
  let relaxed = Relaxation.relax options.relaxation query in
  let reg = Flix.registry flix in
  let meta_of v = reg.Fx_flix.Meta_document.meta_of_node.(v) in
  match relaxed.steps with
  | [] -> []
  | first :: rest ->
      let frontier0 =
        normalise_frontier ~max_frontier:options.max_frontier
          (initial_frontier options flix ~context { relaxed with steps = [ first ] })
      in
      let frontier =
        List.fold_left
          (fun frontier (step : Relaxation.step) ->
            let matches =
              List.concat_map
                (fun (source, score) ->
                  List.concat_map
                    (fun alt ->
                      step_matches options flix
                        ~from_meta:(fun _ -> meta_of source)
                        source score step alt)
                    step.alternatives)
                frontier
            in
            normalise_frontier ~max_frontier:options.max_frontier matches)
          frontier0 rest
      in
      Ranking.cut ~min_score:options.min_score frontier
      |> List.map (fun (node, score) -> { node; score })

let eval_string ?options ?context flix input =
  match Xpath.parse input with
  | Error e -> Error e
  | Ok q -> Ok (eval ?options ?context flix q)

let top_k ?options ~k flix input =
  match eval_string ?options flix input with
  | Error _ as e -> e
  | Ok results -> Ok (List.filteri (fun i _ -> i < k) results)

let describe flix r =
  Printf.sprintf "%s score %.3f" (Collection.describe (Flix.collection flix) r.node) r.score
