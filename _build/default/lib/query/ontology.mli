(** Tag-name ontologies for semantic vagueness.

    The XXL engine the paper builds on derives "similar words as well as
    similarity scores for them from an ontology, which can either be a
    general-purpose one like WordNet or an ontology specific to the topic
    of the query" (Section 1). This module is that component: a weighted
    relation over tag names; querying a name also matches related names,
    each with a similarity score in (0, 1] that multiplies into the
    result's relevance.

    Similarity composes multiplicatively along relation chains and the
    best (maximum-product) chain wins — computed with a Dijkstra-style
    search, so indirect synonyms are found with appropriately discounted
    scores. *)

type t

val create : unit -> t

val add_synonym : t -> string -> string -> float -> unit
(** Symmetric relation; weight must be in (0, 1]. *)

val add_specialisation : t -> general:string -> special:string -> float -> unit
(** Directed: a query for [general] also matches [special] (a query for
    [movie] matches [science-fiction]), not vice versa. *)

val expand : ?min_similarity:float -> t -> string -> (string * float) list
(** All names matching a query for the given name, with their scores,
    best first. Always contains the name itself at 1.0.
    [min_similarity] (default 0.1) cuts the tail. *)

val similarity : t -> string -> string -> float
(** [similarity t query candidate]; 0 when unrelated. *)

val movies : t Lazy.t
(** The paper's running example: [movie ~ science-fiction ~ film],
    [actor ~ cast/actress]. *)

val bibliographic : t Lazy.t
(** DBLP-flavoured: [article ~ inproceedings ~ publication],
    [journal ~ booktitle], [author ~ editor]. *)
