type t = { edges : (string, (string * float) list) Hashtbl.t }

let create () = { edges = Hashtbl.create 32 }

let add_edge t a b w =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.edges a) in
  Hashtbl.replace t.edges a ((b, w) :: cur)

let check_weight w =
  if not (w > 0.0 && w <= 1.0) then invalid_arg "Ontology: weight must be in (0,1]"

let add_synonym t a b w =
  check_weight w;
  add_edge t a b w;
  add_edge t b a w

let add_specialisation t ~general ~special w =
  check_weight w;
  add_edge t general special w

(* Max-product Dijkstra over the relation graph: scores only decrease
   along a chain, so a best-first expansion is exact. *)
let expand ?(min_similarity = 0.1) t name =
  let best : (string, float) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace best name 1.0;
  (* The frontier is tiny for realistic ontologies; a sorted list is
     plenty and avoids a float-keyed heap. *)
  let rec loop frontier =
    match frontier with
    | [] -> ()
    | (score, n) :: rest ->
        if Hashtbl.find_opt best n = Some score then begin
          let next =
            List.fold_left
              (fun acc (n', w) ->
                let s' = score *. w in
                if s' >= min_similarity
                   && s' > Option.value ~default:0.0 (Hashtbl.find_opt best n')
                then begin
                  Hashtbl.replace best n' s';
                  (s', n') :: acc
                end
                else acc)
              rest
              (Option.value ~default:[] (Hashtbl.find_opt t.edges n))
          in
          loop (List.sort (fun (a, _) (b, _) -> compare b a) next)
        end
        else loop rest
  in
  loop [ (1.0, name) ];
  Hashtbl.fold (fun n s acc -> (n, s) :: acc) best []
  |> List.sort (fun (n1, s1) (n2, s2) -> compare (s2, n1) (s1, n2))

let similarity t query candidate =
  match List.assoc_opt candidate (expand ~min_similarity:1e-6 t query) with
  | Some s -> s
  | None -> 0.0

let movies =
  lazy
    (let t = create () in
     add_synonym t "movie" "film" 0.9;
     add_specialisation t ~general:"movie" ~special:"science-fiction" 0.8;
     add_specialisation t ~general:"movie" ~special:"documentary" 0.7;
     add_synonym t "actor" "actress" 0.9;
     add_specialisation t ~general:"cast" ~special:"actor" 0.8;
     add_synonym t "title" "name" 0.7;
     t)

let bibliographic =
  lazy
    (let t = create () in
     add_specialisation t ~general:"publication" ~special:"article" 0.9;
     add_specialisation t ~general:"publication" ~special:"inproceedings" 0.9;
     add_synonym t "article" "inproceedings" 0.7;
     add_synonym t "journal" "booktitle" 0.8;
     add_synonym t "author" "editor" 0.6;
     add_synonym t "cite" "crossref" 0.5;
     t)
