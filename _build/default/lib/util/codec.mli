(** Minimal binary (de)serialisation for index snapshots: LEB128-style
    varints, int arrays and length-prefixed strings, with a magic tag to
    catch format mix-ups. Decoding never trusts its input — corrupt or
    truncated data raises {!Corrupt}, not a segfault or a bogus index. *)

exception Corrupt of string

module Writer : sig
  type t

  val create : magic:string -> t
  val int : t -> int -> unit
  (** Any OCaml int, including negatives (zig-zag encoded). *)

  val int_array : t -> int array -> unit
  val string : t -> string -> unit
  val contents : t -> string
end

module Reader : sig
  type t

  val create : magic:string -> string -> t
  (** @raise Corrupt when the magic tag does not match. *)

  val int : t -> int
  val int_array : t -> int array
  val string : t -> string

  val expect_end : t -> unit
  (** @raise Corrupt when trailing bytes remain. *)
end
