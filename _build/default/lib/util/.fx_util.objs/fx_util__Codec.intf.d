lib/util/codec.mli:
