lib/util/lru.mli:
