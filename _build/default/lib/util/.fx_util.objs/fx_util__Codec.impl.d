lib/util/codec.ml: Array Buffer Char Printf String
