lib/util/stopwatch.mli:
