lib/util/rng.mli:
