lib/util/stopwatch.ml: Int64 Unix
