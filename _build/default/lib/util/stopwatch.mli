(** Wall-clock timing for the benchmark harness. *)

type t

val start : unit -> t
val elapsed_ns : t -> int64
val elapsed_ms : t -> float

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f] once and reports its wall-clock duration. *)
