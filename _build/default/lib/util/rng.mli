(** Deterministic pseudo-random numbers (splitmix64).

    Every synthetic workload and randomised estimator in this repository
    threads an explicit generator seeded by the caller, so experiments
    and property tests are exactly reproducible. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val copy : t -> t
val split : t -> t
(** An independent generator derived from the current state. *)

val int64 : t -> int64
val bits : t -> int
(** 62 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1]. Raises on [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val exponential : t -> float
(** Exp(1)-distributed, used by Cohen's reachability-size estimator. *)

val bool : t -> bool
val pick : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
