type t = { t0 : float }

let start () = { t0 = Unix.gettimeofday () }
let elapsed_ns t = Int64.of_float ((Unix.gettimeofday () -. t.t0) *. 1e9)
let elapsed_ms t = (Unix.gettimeofday () -. t.t0) *. 1e3

let time_ns f =
  let w = start () in
  let x = f () in
  (x, elapsed_ns w)
