type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  bits t mod bound

let float t = float_of_int (bits t) /. 4611686018427387904.0 (* 2^62 *)

let exponential t =
  let u = float t in
  (* Guard against log 0. *)
  -.log (1.0 -. (u *. 0.9999999999))

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
