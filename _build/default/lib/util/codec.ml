exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

module Writer = struct
  type t = Buffer.t

  let create ~magic =
    let b = Buffer.create 1024 in
    Buffer.add_string b magic;
    Buffer.add_char b '\xff';
    b

  (* Zig-zag + LEB128: small magnitudes stay small. *)
  let int b v =
    let u = (v lsl 1) lxor (v asr 62) in
    let u = ref (u land max_int) in
    let continue = ref true in
    while !continue do
      let byte = !u land 0x7f in
      u := !u lsr 7;
      if !u = 0 then begin
        Buffer.add_char b (Char.chr byte);
        continue := false
      end
      else Buffer.add_char b (Char.chr (byte lor 0x80))
    done

  let int_array b arr =
    int b (Array.length arr);
    Array.iter (int b) arr

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let create ~magic data =
    let m = String.length magic in
    if
      String.length data < m + 1
      || String.sub data 0 m <> magic
      || data.[m] <> '\xff'
    then corrupt "bad magic (expected %s)" magic;
    { data; pos = m + 1 }

  let byte t =
    if t.pos >= String.length t.data then corrupt "truncated input at %d" t.pos;
    let c = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let int t =
    let u = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !shift > 63 then corrupt "varint too long at %d" t.pos;
      let b = byte t in
      u := !u lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
    done;
    (!u lsr 1) lxor (- (!u land 1))

  let int_array t =
    let n = int t in
    if n < 0 || n > String.length t.data - t.pos then
      corrupt "implausible array length %d at %d" n t.pos;
    Array.init n (fun _ -> int t)

  let string t =
    let n = int t in
    if n < 0 || n > String.length t.data - t.pos then
      corrupt "implausible string length %d at %d" n t.pos;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let expect_end t =
    if t.pos <> String.length t.data then
      corrupt "%d trailing bytes" (String.length t.data - t.pos)
end
