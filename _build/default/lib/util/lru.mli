(** A small LRU map with hit/miss accounting. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** [on_evict] fires when a capacity overflow pushes the least recently
    used entry out (not on {!remove} or {!clear}) — buffer pools use it
    to write dirty pages back. Raises [Invalid_argument] when
    [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces; evicts the least recently used entry when the
    capacity is exceeded. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val remove : ('k, 'v) t -> 'k -> unit

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate over resident entries, unspecified order, without touching
    recency. *)

val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
(** [find] outcomes since creation (or the last {!clear}). *)
