type t = { cdf : float array }

let create ?(exponent = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (k + 1) ** exponent));
    cdf.(k) <- !total
  done;
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. !total
  done;
  { cdf }

let sample t rng =
  let u = Fx_util.Rng.float rng in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let n t = Array.length t.cdf
