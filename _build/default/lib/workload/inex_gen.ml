module Rng = Fx_util.Rng
module X = Fx_xml.Xml_types

type params = {
  n_docs : int;
  seed : int;
  sections_per_level : int;
  depth : int;
  xref_prob : float;
  inter_link_prob : float;
}

let default =
  {
    n_docs = 100;
    seed = 19;
    sections_per_level = 3;
    depth = 3;
    xref_prob = 0.05;
    inter_link_prob = 0.02;
  }

let doc_name i = Printf.sprintf "inex_%04d" i

let words =
  [| "retrieval"; "evaluation"; "relevance"; "assessment"; "topic"; "fragment";
     "structured"; "document"; "collection"; "benchmark"; "metric"; "pooling" |]

let sentence rng =
  X.text (String.concat " " (List.init (4 + Rng.int rng 8) (fun _ -> Rng.pick rng words)))

(* One article: front matter, a section tree with titled sections and
   paragraphs, sparse intra-document xrefs to section ids, a
   bibliography. *)
let article rng p i =
  let sec_counter = ref 0 in
  let xrefs = ref [] in
  let rec section level =
    incr sec_counter;
    let id = Printf.sprintf "sec%d" !sec_counter in
    let paragraphs =
      List.init
        (1 + Rng.int rng 3)
        (fun _ ->
          if Rng.float rng < p.xref_prob && !sec_counter > 1 then begin
            let target = 1 + Rng.int rng (!sec_counter - 1) in
            xrefs := target :: !xrefs;
            X.e "p" [ sentence rng; X.e "xref" ~attrs:[ ("idref", Printf.sprintf "sec%d" target) ] [] ]
          end
          else X.e "p" [ sentence rng ])
    in
    let subsections =
      if level >= p.depth then []
      else List.init (Rng.int rng (p.sections_per_level + 1)) (fun _ -> section (level + 1))
    in
    X.e "sec" ~attrs:[ ("id", id) ]
      (X.e "st" [ sentence rng ] :: (paragraphs @ subsections))
  in
  let body = List.init p.sections_per_level (fun _ -> section 1) in
  let bibliography =
    if Rng.float rng < p.inter_link_prob && i > 0 then
      [ X.e "bb" ~attrs:[ ("xlink:href", doc_name (Rng.int rng i)) ] [ sentence rng ] ]
    else []
  in
  let front =
    [
      X.e "fm"
        [
          X.e "atl" [ sentence rng ];
          X.e "au" [ X.text (Rng.pick rng words) ];
          X.e "abs" [ sentence rng ];
        ];
    ]
  in
  X.document ~name:(doc_name i)
    (X.elt "article" (front @ [ X.e "bdy" body ] @ bibliography))

let generate p =
  if p.n_docs < 1 then invalid_arg "Inex_gen.generate: n_docs < 1";
  let rng = Rng.create p.seed in
  List.init p.n_docs (fun i -> article rng p i)

let collection p = Fx_xml.Collection.build (generate p)
