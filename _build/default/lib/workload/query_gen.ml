module Collection = Fx_xml.Collection
module Traversal = Fx_graph.Traversal
module Digraph = Fx_graph.Digraph
module Rng = Fx_util.Rng

type query = { start : int; tag : string; n_reachable : int; label : string }

let most_cited_root c =
  let g = Collection.graph c in
  let best = ref (Collection.root_of_doc c 0) and best_deg = ref (-1) in
  for d = 0 to Collection.n_docs c - 1 do
    let r = Collection.root_of_doc c d in
    let deg = Digraph.in_degree g r in
    if deg > !best_deg then begin
      best := r;
      best_deg := deg
    end
  done;
  !best

let count_reachable_with_tag c start tag =
  match Collection.tag_id c tag with
  | None -> 0
  | Some w ->
      let dist = Traversal.bfs_distances (Collection.graph c) start in
      let tags = Collection.tag c in
      let count = ref 0 in
      Array.iteri (fun v d -> if d > 0 && tags.(v) = w then incr count) dist;
      !count

(* Root with the (estimated) largest descendant set: link direction is
   citer -> cited, so the right start element for the Figure-5 query is a
   publication whose transitive reference list is huge — found cheaply
   with Cohen's reach-size estimator, then verified by one exact BFS. *)
let widest_reach_root c =
  let est = Fx_graph.Tc_estimate.compute ~rounds:8 ~seed:99 (Collection.graph c) in
  let best = ref (Collection.root_of_doc c 0) and best_size = ref neg_infinity in
  for d = 0 to Collection.n_docs c - 1 do
    let r = Collection.root_of_doc c d in
    let s = Fx_graph.Tc_estimate.reach_size est r in
    if s > !best_size then begin
      best := r;
      best_size := s
    end
  done;
  !best

let hub_query c ~tag =
  let start = widest_reach_root c in
  {
    start;
    tag;
    n_reachable = count_reachable_with_tag c start tag;
    label = Printf.sprintf "%s//%s" (Collection.describe c start) tag;
  }

let descendant_queries c ~seed ~count ~min_results =
  let rng = Rng.create seed in
  let g = Collection.graph c in
  let tags = Collection.tag c in
  let n_docs = Collection.n_docs c in
  let acc = ref [] and found = ref 0 and attempts = ref 0 in
  while !found < count && !attempts < 50 * count do
    incr attempts;
    let start = Collection.root_of_doc c (Rng.int rng n_docs) in
    let dist = Traversal.bfs_distances g start in
    (* Count reachable nodes per tag and pick a qualifying tag at random. *)
    let per_tag = Hashtbl.create 16 in
    Array.iteri
      (fun v d ->
        if d > 0 then
          Hashtbl.replace per_tag tags.(v)
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_tag tags.(v))))
      dist;
    let qualifying =
      Hashtbl.fold (fun w n acc -> if n >= min_results then (w, n) :: acc else acc) per_tag []
    in
    match qualifying with
    | [] -> ()
    | _ ->
        let w, n = List.nth qualifying (Rng.int rng (List.length qualifying)) in
        let tag = Collection.tag_name c w in
        incr found;
        acc :=
          {
            start;
            tag;
            n_reachable = n;
            label = Printf.sprintf "%s//%s" (Collection.describe c start) tag;
          }
          :: !acc
  done;
  List.rev !acc

let connection_pairs c ~seed ~count ~connected_fraction =
  let rng = Rng.create seed in
  let g = Collection.graph c in
  let n = Collection.n_nodes c in
  List.init count (fun _ ->
      if Rng.float rng < connected_fraction then begin
        (* Sample a genuinely connected pair: BFS from a random root and
           pick a reachable node. *)
        let a = Collection.root_of_doc c (Rng.int rng (Collection.n_docs c)) in
        let dist = Traversal.bfs_distances g a in
        let reachable = ref [] in
        Array.iteri (fun v d -> if d > 0 then reachable := v :: !reachable) dist;
        match !reachable with
        | [] -> (a, Rng.int rng n, None)
        | rs ->
            let b = List.nth rs (Rng.int rng (List.length rs)) in
            (a, b, Some dist.(b))
      end
      else begin
        let a = Rng.int rng n and b = Rng.int rng n in
        (a, b, Traversal.distance g a b)
      end)
