(** Query workload generation for the benches.

    The paper's headline query asks for all [article] descendants of one
    highly-cited publication ("Mohan's VLDB 99 paper about ARIES") and
    then repeats the experiment "with different start elements and
    different tag names". These helpers pick equivalent start points
    from a synthetic collection: hubs with many incoming citations and
    sizeable descendant sets, plus random connection-test pairs with
    ground truth. *)

type query = {
  start : int;         (** global start node *)
  tag : string;        (** target tag name *)
  n_reachable : int;   (** ground-truth result count (strict descendants) *)
  label : string;      (** human-readable description *)
}

val most_cited_root : Fx_xml.Collection.t -> int
(** Document root with the highest in-degree in the collection graph. *)

val widest_reach_root : Fx_xml.Collection.t -> int
(** Document root with the largest estimated descendant set (links run
    citer → cited, so this is a publication with a deep transitive
    reference list) — the ARIES stand-in. Uses Cohen's reach-size
    estimator, O(rounds · (n + m)). *)

val hub_query : Fx_xml.Collection.t -> tag:string -> query
(** The Figure-5 query: [hub//tag] starting at {!widest_reach_root}.
    Counting the ground truth costs one BFS. *)

val descendant_queries :
  Fx_xml.Collection.t -> seed:int -> count:int -> min_results:int -> query list
(** Random [a//b] queries whose ground-truth result count is at least
    [min_results]; start nodes are sampled among document roots, target
    tags among tags actually present in the start's descendant set.
    Fewer than [count] queries are returned when the collection cannot
    support them. *)

val connection_pairs :
  Fx_xml.Collection.t -> seed:int -> count:int -> connected_fraction:float ->
  (int * int * int option) list
(** Random node pairs with their ground-truth distance;
    [connected_fraction] steers how many pairs are sampled from real
    reachability sets rather than uniformly. *)
