(** INEX-style collection generator: large, deeply structured, mostly
    {e isolated} documents — full-text journal articles with nested
    sections, a few intra-document cross-references and almost no
    inter-document links.

    The paper singles this shape out as the sweet spot of the Naive
    configuration: "this approach can be useful if documents are
    relatively large, the number of inter-document links is small, and
    queries usually do not cross document boundaries. As an example, the
    INEX benchmark collection of XML documents would be a good
    candidate" (Section 4.3). The A6 bench uses this generator to show
    exactly that. *)

type params = {
  n_docs : int;
  seed : int;
  sections_per_level : int;  (** fan-out of the section tree *)
  depth : int;               (** section nesting depth *)
  xref_prob : float;         (** chance a paragraph carries an
                                 intra-document cross-reference *)
  inter_link_prob : float;   (** chance a document links to another
                                 document at all (INEX: rare) *)
}

val default : params
(** 100 documents of ~250 elements, ~2 % inter-document links. *)

val doc_name : int -> string
val generate : params -> Fx_xml.Xml_types.document list
val collection : params -> Fx_xml.Collection.t
