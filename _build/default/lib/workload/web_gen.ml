module Rng = Fx_util.Rng
module X = Fx_xml.Xml_types

type params = {
  seed : int;
  n_tree_docs : int;
  tree_fanout : int;
  tree_doc_depth : int;
  n_dense_docs : int;
  dense_doc_size : int;
  dense_out_links : int;
  intra_links : int;
  bridges : int;
}

let default =
  {
    seed = 11;
    n_tree_docs = 40;
    tree_fanout = 3;
    tree_doc_depth = 3;
    n_dense_docs = 25;
    dense_doc_size = 60;
    dense_out_links = 6;
    intra_links = 4;
    bridges = 2;
  }

let tree_doc_name i = Printf.sprintf "site_%03d" i
let dense_doc_name i = Printf.sprintf "wiki_%03d" i

let section_tags = [| "section"; "chapter"; "div"; "entry"; "topic" |]
let leaf_tags = [| "para"; "item"; "note"; "figure"; "code" |]

let words =
  [| "web"; "data"; "link"; "page"; "graph"; "index"; "portal"; "engine"; "model" |]

let some_text rng =
  X.text (String.concat " " (List.init (2 + Rng.int rng 4) (fun _ -> Rng.pick rng words)))

(* Nested page content; every element receives an id so that it can be an
   anchor target for cross-document links. *)
let rec page_content rng ~prefix ~depth ~fanout counter =
  let fresh () =
    incr counter;
    Printf.sprintf "%s-e%d" prefix !counter
  in
  if depth = 0 then
    X.e (Rng.pick rng leaf_tags) ~attrs:[ ("id", fresh ()) ] [ some_text rng ]
  else begin
    let k = 1 + Rng.int rng fanout in
    let children =
      List.init k (fun _ -> page_content rng ~prefix ~depth:(depth - 1) ~fanout counter)
    in
    X.e (Rng.pick rng section_tags) ~attrs:[ ("id", fresh ()) ] (some_text rng :: children)
  end

(* Tree cluster: document i's page links to the roots of its child
   documents (classic site hierarchy). *)
let tree_doc rng p i =
  let counter = ref 0 in
  let body =
    List.init 2 (fun _ ->
        page_content rng ~prefix:(tree_doc_name i) ~depth:p.tree_doc_depth
          ~fanout:p.tree_fanout counter)
  in
  let child_links =
    List.filter_map
      (fun k ->
        let child = (i * p.tree_fanout) + 1 + k in
        if child < p.n_tree_docs then
          Some (X.e "nav" ~attrs:[ ("xlink:href", tree_doc_name child) ] [ some_text rng ])
        else None)
      (List.init p.tree_fanout (fun k -> k))
  in
  X.document ~name:(tree_doc_name i)
    (X.elt "page" ~attrs:[ ("id", tree_doc_name i ^ "-root") ] (body @ child_links))

(* Dense cluster: anchored elements, intra-document idref links (cycles
   welcome) and links to random anchors of other dense documents. *)
let dense_doc rng p i anchors_per_doc =
  let counter = ref 0 in
  let name = dense_doc_name i in
  let rec build budget =
    if budget <= 1 then
      [ page_content rng ~prefix:name ~depth:0 ~fanout:1 counter ]
    else begin
      let chunk = page_content rng ~prefix:name ~depth:2 ~fanout:3 counter in
      chunk :: build (budget - 12)
    end
  in
  let body = build p.dense_doc_size in
  let n_anchors = !counter in
  let intra =
    List.init p.intra_links (fun _ ->
        let a = 1 + Rng.int rng (max 1 n_anchors) in
        X.e "seealso" ~attrs:[ ("idref", Printf.sprintf "%s-e%d" name a) ] [])
  in
  let inter =
    List.init p.dense_out_links (fun _ ->
        let target = Rng.int rng p.n_dense_docs in
        let anchor = 1 + Rng.int rng (max 1 anchors_per_doc) in
        X.e "ref"
          ~attrs:[ ("xlink:href", Printf.sprintf "%s#%s-e%d" (dense_doc_name target)
                      (dense_doc_name target) anchor) ]
          [])
  in
  let bridge =
    if i < p.bridges && p.n_tree_docs > 0 then
      [ X.e "ref"
          ~attrs:[ ("xlink:href", tree_doc_name (Rng.int rng p.n_tree_docs)) ]
          [] ]
    else []
  in
  X.document ~name
    (X.elt "article" ~attrs:[ ("id", name ^ "-root") ] (body @ intra @ inter @ bridge))

let generate p =
  if p.n_tree_docs < 0 || p.n_dense_docs < 0 then invalid_arg "Web_gen.generate";
  let rng = Rng.create p.seed in
  (* Dense documents reference each other's anchors by number; use a safe
     lower bound every document is guaranteed to have. *)
  let anchors_per_doc = max 1 (p.dense_doc_size / 12) in
  let tree = List.init p.n_tree_docs (fun i -> tree_doc rng p i) in
  let dense = List.init p.n_dense_docs (fun i -> dense_doc rng p i anchors_per_doc) in
  tree @ dense

let collection p = Fx_xml.Collection.build (generate p)
