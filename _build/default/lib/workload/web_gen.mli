(** Heterogeneous web-style collection generator — the paper's Figure 1
    scenario: "a part consisting of documents one to four that forms a
    tree, while the rest is closely interlinked".

    The generated collection has two clusters plus a bridge:
    - a {b tree cluster}: documents arranged in a site hierarchy, every
      link pointing at a child document's root — ideal for Maximal PPO;
    - a {b dense cluster}: documents with intra-document idref links
      (including cycles) and inter-document links into arbitrary
      anchored elements — PPO-hostile, HOPI territory;
    - one or more {b bridge links} from the dense cluster into the tree
      cluster (Figure 1's edge between documents 5 and 4).

    This is the workload for the Hybrid-configuration ablation (DESIGN.md
    experiment A1). *)

type params = {
  seed : int;
  n_tree_docs : int;
  tree_fanout : int;        (** child documents per tree document *)
  tree_doc_depth : int;     (** element nesting inside tree documents *)
  n_dense_docs : int;
  dense_doc_size : int;     (** approximate elements per dense document *)
  dense_out_links : int;    (** inter-document links per dense document *)
  intra_links : int;        (** idref links inside each dense document *)
  bridges : int;            (** dense-to-tree links *)
}

val default : params
val tree_doc_name : int -> string
val dense_doc_name : int -> string
val generate : params -> Fx_xml.Xml_types.document list
val collection : params -> Fx_xml.Collection.t
