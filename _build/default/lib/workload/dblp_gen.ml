module Rng = Fx_util.Rng
module X = Fx_xml.Xml_types

type params = {
  n_docs : int;
  seed : int;
  citing_fraction : float;
  mean_cites : float;
  zipf_exponent : float;
}

let default =
  { n_docs = 600; seed = 7; citing_fraction = 0.85; mean_cites = 4.1; zipf_exponent = 1.05 }

let paper_scale = { default with n_docs = 6210 }

let doc_name i = Printf.sprintf "dblp_%04d" i

let venues =
  [| ("inproceedings", "booktitle", "EDBT");
     ("inproceedings", "booktitle", "ICDE");
     ("inproceedings", "booktitle", "SIGMOD");
     ("inproceedings", "booktitle", "VLDB");
     ("article", "journal", "TODS");
     ("article", "journal", "VLDB-Journal") |]

let surnames =
  [| "Mohan"; "Schenkel"; "Weikum"; "Theobald"; "Grust"; "Cohen"; "Widom"; "Goldman";
     "Chung"; "Fagin"; "Halevy"; "Franklin"; "Apers"; "Jensen"; "Suciu"; "Vossen";
     "Shasha"; "Zhang"; "Kaushik"; "Ley" |]

let words =
  [| "indexing"; "XML"; "queries"; "efficient"; "adaptive"; "structural"; "recovery";
     "transactions"; "semistructured"; "path"; "optimization"; "distributed"; "ranking";
     "retrieval"; "graphs"; "joins"; "views"; "streams"; "caching"; "storage" |]

let title_text rng =
  let k = 3 + Rng.int rng 5 in
  String.concat " " (List.init k (fun _ -> Rng.pick rng words))

(* A flat bibliographic record, ~25 elements on average: root + authors +
   title (with occasional markup fragments) + fixed fields + ee/url +
   cite elements. *)
let publication rng ~zipf ~p i =
  let kind, venue_field, venue = Rng.pick rng venues in
  let n_authors = 1 + Rng.int rng 6 in
  let authors =
    List.init n_authors (fun _ ->
        X.e "author" [ X.text (Rng.pick rng surnames ^ " " ^ Rng.pick rng surnames) ])
  in
  let title_children =
    let base = [ X.text (title_text rng) ] in
    (* Occasional markup inside titles, as real DBLP has (<i>, <sub>). *)
    if Rng.int rng 3 = 0 then
      base @ [ X.e "i" [ X.text (Rng.pick rng words) ]; X.text (title_text rng) ]
    else base
  in
  let year = 1985 + Rng.int rng 19 in
  let fixed =
    [
      X.e "title" title_children;
      X.e "year" [ X.text (string_of_int year) ];
      X.e "pages" [ X.text (Printf.sprintf "%d-%d" (Rng.int rng 500) (500 + Rng.int rng 30)) ];
      X.e venue_field [ X.text venue ];
      X.e "volume" [ X.text (string_of_int (1 + Rng.int rng 30)) ];
      X.e "number" [ X.text (string_of_int (1 + Rng.int rng 6)) ];
      X.e "month" [ X.text (Rng.pick rng [| "Jan"; "Apr"; "Jun"; "Sep" |]) ];
      X.e "url" [ X.text (Printf.sprintf "db/%s/%d.html" venue year) ];
    ]
  in
  let ees =
    List.init (1 + Rng.int rng 3) (fun k ->
        X.e "ee" [ X.text (Printf.sprintf "https://doi.org/10.1000/%d.%d" i k) ])
  in
  let cites =
    if i = 0 || Rng.float rng > p.citing_fraction then []
    else begin
      let n_cites =
        let lambda = p.mean_cites /. p.citing_fraction in
        1 + Rng.int rng (max 1 (int_of_float (2.0 *. lambda) - 1))
      in
      List.init n_cites (fun _ ->
          (* Citations point backwards in publication order. Most
             references are recent work (Zipf-distributed age), the rest
             all-time classics (Zipf over the whole prefix) — the mix
             that gives bibliographic graphs their long citation chains
             plus a few heavily-cited hubs. *)
          let t =
            if Rng.float rng < 0.7 then i - 1 - (Zipf.sample zipf rng mod i)
            else begin
              let rec classic () =
                let t = Zipf.sample zipf rng in
                if t < i then t else classic ()
              in
              classic ()
            end
          in
          X.e "cite" ~attrs:[ ("href", doc_name t); ("label", Printf.sprintf "ref%d" t) ] [])
    end
  in
  let root =
    X.elt kind
      ~attrs:[ ("key", Printf.sprintf "conf/%s/%s%d" venue (Rng.pick rng surnames) (year mod 100)) ]
      (authors @ fixed @ ees @ cites)
  in
  X.document ~name:(doc_name i) root

let generate p =
  if p.n_docs < 1 then invalid_arg "Dblp_gen.generate: n_docs < 1";
  let rng = Rng.create p.seed in
  let zipf = Zipf.create ~exponent:p.zipf_exponent p.n_docs in
  List.init p.n_docs (fun i -> publication rng ~zipf ~p i)

let collection p = Fx_xml.Collection.build (generate p)
