(** Synthetic DBLP-like collection generator.

    The paper's evaluation data is an extract of DBLP: "one XML document
    for each 2nd-level element of DBLP (article, inproceedings, ...)"
    restricted to EDBT / ICDE / SIGMOD / VLDB / TODS / VLDB-Journal,
    giving 6,210 documents with 168,991 elements and 25,368
    inter-document links. The real dump is unavailable offline, so this
    generator reproduces the collection's {e shape}: flat bibliographic
    records of ~25 elements, one document per publication, and
    Zipf-skewed citation links pointing at the root elements of earlier
    publications — so hub papers with hundreds of citing documents exist
    (the role Mohan's ARIES paper plays in the paper's query). All
    citation links are inter-document and point at roots, matching the
    paper's observation that DBLP is "almost a tree" and well suited to
    the Maximal-PPO configuration. *)

type params = {
  n_docs : int;
  seed : int;
  citing_fraction : float;  (** fraction of publications with a cite list *)
  mean_cites : float;       (** average cites per citing publication *)
  zipf_exponent : float;    (** skew of citation targets *)
}

val default : params
(** 600 documents — test-suite scale. *)

val paper_scale : params
(** 6,210 documents, tuned towards the paper's element and link counts. *)

val doc_name : int -> string
(** Collection name of publication [i] ("dblp_0042"). *)

val generate : params -> Fx_xml.Xml_types.document list
val collection : params -> Fx_xml.Collection.t
(** [collection p] = [Collection.build (generate p)]. *)
