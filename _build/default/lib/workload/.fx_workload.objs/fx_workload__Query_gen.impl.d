lib/workload/query_gen.ml: Array Fx_graph Fx_util Fx_xml Hashtbl List Option Printf
