lib/workload/web_gen.mli: Fx_xml
