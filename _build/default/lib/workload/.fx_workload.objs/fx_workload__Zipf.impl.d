lib/workload/zipf.ml: Array Fx_util
