lib/workload/web_gen.ml: Fx_util Fx_xml List Printf String
