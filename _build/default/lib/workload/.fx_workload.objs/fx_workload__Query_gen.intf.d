lib/workload/query_gen.mli: Fx_xml
