lib/workload/dblp_gen.mli: Fx_xml
