lib/workload/inex_gen.ml: Fx_util Fx_xml List Printf String
