lib/workload/inex_gen.mli: Fx_xml
