lib/workload/zipf.mli: Fx_util
