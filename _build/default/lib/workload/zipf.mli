(** Zipf-distributed sampling over [0 .. n-1].

    Citation counts in bibliographic data are heavily skewed — a few
    papers (the paper's running example is Mohan's ARIES work) attract a
    large share of the links. The DBLP workload generator uses a Zipf
    law for link targets so that such hub elements exist. *)

type t

val create : ?exponent:float -> int -> t
(** [create n] prepares sampling over ranks [0 .. n-1] with
    [P(k) ∝ 1 / (k+1)^exponent] (default exponent 1.0).
    Raises [Invalid_argument] on [n <= 0]. *)

val sample : t -> Fx_util.Rng.t -> int
(** O(log n) by binary search on the cumulative distribution. *)

val n : t -> int
