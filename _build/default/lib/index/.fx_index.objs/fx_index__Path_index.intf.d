lib/index/path_index.mli: Fx_graph
