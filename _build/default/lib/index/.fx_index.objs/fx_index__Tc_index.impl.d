lib/index/tc_index.ml: Array Fx_graph Fx_util List Path_index
