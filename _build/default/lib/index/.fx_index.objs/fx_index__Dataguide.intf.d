lib/index/dataguide.mli: Path_index
