lib/index/two_hop.ml: Array Fx_graph Fx_util List Queue
