lib/index/hopi.mli: Fx_graph Path_index Two_hop
