lib/index/hopi.ml: Array Fx_graph Fx_util List Path_index Two_hop
