lib/index/disk_labels.ml: Array Fx_store Fx_util Sys Two_hop
