lib/index/ppo.ml: Array Fx_graph Fx_util List Path_index
