lib/index/path_index.ml: Array Fx_graph List
