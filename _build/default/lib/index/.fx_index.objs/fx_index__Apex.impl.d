lib/index/apex.ml: Array Fx_graph Fx_util Hashtbl List Option Path_index Queue Seq
