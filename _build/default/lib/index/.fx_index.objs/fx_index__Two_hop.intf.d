lib/index/two_hop.mli: Fx_graph
