lib/index/ppo.mli: Fx_graph Path_index
