lib/index/dataguide.ml: Array Fx_graph Hashtbl List Option Path_index Queue
