lib/index/disk_labels.mli: Fx_store Two_hop
