lib/index/tc_index.mli: Fx_graph Path_index
