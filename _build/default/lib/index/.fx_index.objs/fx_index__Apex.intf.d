lib/index/apex.mli: Fx_graph Path_index Seq
