lib/index/disk_hopi.ml: Array Disk_labels Fx_graph Fx_store Fx_util Hopi Path_index Sys Two_hop Unix
