lib/index/disk_hopi.mli: Fx_graph Fx_store Hopi Path_index
