(** HOPI — the 2-hop connection index for XML collections (Schenkel,
    Theobald, Weikum [EDBT 2004]), distance-augmented.

    HOPI = the 2-hop labels of {!Two_hop} plus (a) an index-construction
    strategy driven by graph partitioning — partition the XML graph into
    bounded parts with few crossing edges, cover the parts first, then
    stitch across partition borders — and (b) the element-level query
    operations FliX needs (descendants of an element with a given tag,
    sorted by distance).

    We realise (a) as a landmark {e ordering}: border nodes of the
    partitioning (endpoints of partition-crossing edges) become landmarks
    first, then the remaining nodes by descending degree. Pruned landmark
    labeling is exact under any ordering, so this preserves HOPI's index
    semantics while keeping construction near-linear per partition; see
    DESIGN.md for the substitution note. *)

type t

val build :
  ?ordering:[ `Coverage | `Borders_first ] ->
  ?partition_size:int ->
  Path_index.data_graph ->
  t
(** [ordering] selects how landmarks are ranked: [`Coverage] (default)
    by estimated covered pairs, [`Borders_first] additionally fronts the
    border nodes of a bounded partitioning — the literal transcription
    of the divide-and-conquer heuristic; [partition_size] (default 5000)
    bounds its partitions. Both yield exact indexes; they differ only in
    label volume (see the psweep/ablation benches). *)

val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option
val descendants_by_tag : t -> int -> int option -> (int * int) list
val ancestors_by_tag : t -> int -> int option -> (int * int) list
val restricted_descendants : t -> int -> Fx_graph.Bitset.t -> (int * int) list
val restricted_ancestors : t -> int -> Fx_graph.Bitset.t -> (int * int) list

val labels : t -> Two_hop.t
val entries : t -> int
val size_bytes : t -> int

val instance :
  ?ordering:[ `Coverage | `Borders_first ] ->
  ?partition_size:int ->
  Path_index.data_graph ->
  Path_index.instance
