module Digraph = Fx_graph.Digraph
module Traversal = Fx_graph.Traversal
module Bitset = Fx_graph.Bitset

type t = {
  dg : Path_index.data_graph;
  pre : int array;
  post : int array;
  depth : int array;
  parent : int array;
  order : int array;       (* node at each preorder rank *)
  subtree : int array;     (* subtree size per node *)
}

exception Not_a_forest

let is_buildable (dg : Path_index.data_graph) = Traversal.is_forest dg.graph

let build (dg : Path_index.data_graph) =
  if not (Traversal.is_forest dg.graph) then raise Not_a_forest;
  let num = Traversal.dfs_forest dg.graph in
  let n = Digraph.n_nodes dg.graph in
  let subtree = Array.make n 1 in
  (* Children precede parents in reverse preorder, so one sweep suffices. *)
  for r = n - 1 downto 0 do
    let v = num.order.(r) in
    let p = num.parent.(v) in
    if p >= 0 then subtree.(p) <- subtree.(p) + subtree.(v)
  done;
  {
    dg;
    pre = num.pre;
    post = num.post;
    depth = num.depth;
    parent = num.parent;
    order = num.order;
    subtree;
  }

let pre t v = t.pre.(v)
let post t v = t.post.(v)
let depth t v = t.depth.(v)

let reachable t x y = t.pre.(x) <= t.pre.(y) && t.post.(x) >= t.post.(y)

let distance t x y = if reachable t x y then Some (t.depth.(y) - t.depth.(x)) else None

(* Descendants of [x] occupy the contiguous preorder range
   [pre x, pre x + subtree x). *)
let fold_subtree t x f init =
  let lo = t.pre.(x) in
  let hi = lo + t.subtree.(x) - 1 in
  let acc = ref init in
  for r = lo to hi do
    acc := f !acc t.order.(r)
  done;
  !acc

let descendants_by_tag t x want =
  let matches v = match want with None -> true | Some w -> t.dg.tag.(v) = w in
  let results =
    fold_subtree t x
      (fun acc v -> if matches v then (v, t.depth.(v) - t.depth.(x)) :: acc else acc)
      []
  in
  Path_index.sort_results results

let ancestors_by_tag t x want =
  let matches v = match want with None -> true | Some w -> t.dg.tag.(v) = w in
  let rec walk v d acc =
    let acc = if matches v then (v, d) :: acc else acc in
    if t.parent.(v) < 0 then acc else walk t.parent.(v) (d + 1) acc
  in
  Path_index.sort_results (walk x 0 [])

let restricted_descendants t x set =
  let results =
    fold_subtree t x
      (fun acc v -> if Bitset.mem set v then (v, t.depth.(v) - t.depth.(x)) :: acc else acc)
      []
  in
  Path_index.sort_results results

let restricted_ancestors t x set =
  let rec walk v d acc =
    let acc = if Bitset.mem set v then (v, d) :: acc else acc in
    if t.parent.(v) < 0 then acc else walk t.parent.(v) (d + 1) acc
  in
  Path_index.sort_results (walk x 0 [])

let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)

let children t v =
  Digraph.fold_succ t.dg.graph v (fun acc c -> c :: acc) [] |> List.rev

let following t v =
  let stop = t.pre.(v) + t.subtree.(v) in
  let acc = ref [] in
  for r = Array.length t.order - 1 downto stop do
    acc := t.order.(r) :: !acc
  done;
  !acc

let preceding t v =
  (* Nodes before v in document order that are not its ancestors. *)
  let acc = ref [] in
  for r = t.pre.(v) - 1 downto 0 do
    let u = t.order.(r) in
    if t.post.(u) < t.post.(v) then acc := u :: !acc
  done;
  !acc

(* pre, post, depth per node: three 4-byte fields. *)
let size_bytes t = 12 * Array.length t.pre

(* --- persistence --------------------------------------------------- *)

let magic = "flix-ppo-v1"

let serialize t =
  let module W = Fx_util.Codec.Writer in
  let w = W.create ~magic in
  W.int w (Array.length t.pre);
  List.iter (W.int_array w) [ t.pre; t.post; t.depth; t.parent; t.order; t.subtree ];
  W.contents w

let deserialize (dg : Path_index.data_graph) data =
  let module R = Fx_util.Codec.Reader in
  let r = R.create ~magic data in
  let n = R.int r in
  if n <> Digraph.n_nodes dg.graph then
    raise (Fx_util.Codec.Corrupt "node count does not match the data graph");
  let arr name =
    let a = R.int_array r in
    if Array.length a <> n then
      raise (Fx_util.Codec.Corrupt ("bad length for " ^ name));
    a
  in
  let pre = arr "pre" in
  let post = arr "post" in
  let depth = arr "depth" in
  let parent = arr "parent" in
  let order = arr "order" in
  let subtree = arr "subtree" in
  R.expect_end r;
  Array.iteri
    (fun rank v ->
      if v < 0 || v >= n || pre.(v) <> rank then
        raise (Fx_util.Codec.Corrupt "order table is not the preorder inverse"))
    order;
  { dg; pre; post; depth; parent; order; subtree }

let instance dg =
  let (t : t), build_ns = Fx_util.Stopwatch.time_ns (fun () -> build dg) in
  let n = Digraph.n_nodes dg.graph in
  {
    Path_index.name = "PPO";
    n_nodes = n;
    reachable = reachable t;
    distance = distance t;
    descendants_by_tag = descendants_by_tag t;
    ancestors_by_tag = ancestors_by_tag t;
    restricted_descendants = restricted_descendants t;
    restricted_ancestors = restricted_ancestors t;
    stats = { strategy = "PPO"; build_ns; entries = n; size_bytes = size_bytes t };
  }
