(** The common interface of all Path Indexing Strategies (PIS).

    FliX composes heterogeneous indexes — "several Path Indexing
    Strategies S_1, ..., S_s, among them PPO, APEX and HOPI, that support
    the XPath axes and return results in ascending order of distance"
    (paper, Section 3.2). Each strategy packs itself into an {!instance}
    record of closures so the Indexing Strategy Selector can pick one per
    meta document at run time.

    All distances are hop counts; a node is its own descendant at
    distance 0 (descendants-or-self semantics, matching the paper's //
    axis). Result lists are sorted by ascending distance, ties by node
    id, and contain no duplicates. *)

type data_graph = {
  graph : Fx_graph.Digraph.t;
  tag : int array;  (** interned tag per node *)
}
(** What a strategy indexes: the (local) XML data graph of one meta
    document plus node tags. *)

val n_tags : data_graph -> int
val nodes_by_tag : data_graph -> int array array
(** [nodes_by_tag dg] groups node ids by tag, each group ascending. *)

type build_stats = {
  strategy : string;
  build_ns : int64;   (** wall-clock build time *)
  entries : int;      (** strategy-specific entry count (labels, tuples, ...) *)
  size_bytes : int;   (** storage footprint at 8 bytes per entry-like unit *)
}

type instance = {
  name : string;
  n_nodes : int;
  reachable : int -> int -> bool;
  distance : int -> int -> int option;
  descendants_by_tag : int -> int option -> (int * int) list;
      (** [descendants_by_tag a t] = all [(v, dist)] with a path [a ->* v]
          and [tag v = t] ([None]: any tag), ascending distance. *)
  ancestors_by_tag : int -> int option -> (int * int) list;
  restricted_descendants : int -> Fx_graph.Bitset.t -> (int * int) list;
      (** Descendants of [a] restricted to a node set — FliX's [L(a)]
          lookup, "conceptually computed by intersecting the set of
          descendants of a and L_i" (paper, Section 4.2). *)
  restricted_ancestors : int -> Fx_graph.Bitset.t -> (int * int) list;
      (** Mirror of [restricted_descendants] for the ancestors-or-self
          axis, which the paper's PEE variant for ancestor queries needs
          (Section 5.1: "a similar algorithm can be applied to find
          ancestors of a given node"). *)
  stats : build_stats;
}

val sort_results : (int * int) list -> (int * int) list
(** Normalise to (distance, node) ascending order. *)

val check_instance_agrees : instance -> instance -> samples:(int * int) list -> bool
(** Debug helper: do two instances agree on reachability and distance for
    the sampled pairs? *)
