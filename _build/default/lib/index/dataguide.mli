(** Strong DataGuides (Goldman & Widom [VLDB 1997]).

    A DataGuide is a concise structural summary: every distinct label
    path of the source occurs exactly once in the guide, annotated with
    the target set of data nodes the path leads to. We build the strong
    DataGuide by the classic powerset construction over the data graph.

    The FliX paper lists DataGuides among the related path indexes that
    are not optimised for the descendants-or-self axis (Section 2.2); we
    include the structure for the ablation benches and for label-path
    (child-axis) queries, which it answers in O(path length). On cyclic
    graphs the powerset construction may blow up, so {!build} takes a
    node budget and reports failure instead of looping. *)

type t

val build : ?max_states:int -> Path_index.data_graph -> roots:int list -> t option
(** [build dg ~roots] summarises all label paths starting at [roots].
    [None] when more than [max_states] (default [64 * n]) guide states
    would be needed. *)

val n_states : t -> int

val targets_of_path : t -> tag_id:(string -> int option) -> string list -> int list
(** Data nodes at the end of the label path [/l1/l2/.../lk] (child axis,
    rooted). Empty when the path does not occur. *)

val paths : t -> tag_name:(int -> string) -> max:int -> string list
(** Up to [max] distinct label paths of the collection (one witness path
    per guide state, BFS order) — "query formulation" support, as
    Goldman & Widom put it. *)

val size_bytes : t -> int
