(** Materialised transitive closure as a Path Indexing Strategy.

    The brute-force connection index: every reachable (source, target,
    distance) triple is stored. Fastest possible lookups, prohibitive
    space — the paper uses it only as the yard-stick that HOPI is "more
    than an order of magnitude smaller than" (Section 6). In FliX it
    doubles as the oracle for tests and as a viable strategy for tiny
    meta documents. *)

type t

val build : Path_index.data_graph -> t
val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option
val descendants_by_tag : t -> int -> int option -> (int * int) list
val ancestors_by_tag : t -> int -> int option -> (int * int) list
val restricted_descendants : t -> int -> Fx_graph.Bitset.t -> (int * int) list
val restricted_ancestors : t -> int -> Fx_graph.Bitset.t -> (int * int) list
val size_bytes : t -> int
val instance : Path_index.data_graph -> Path_index.instance
