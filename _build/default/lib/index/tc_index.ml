module Tc = Fx_graph.Transitive_closure
module Bitset = Fx_graph.Bitset

type t = { dg : Path_index.data_graph; tc : Tc.t; rev_tc : Tc.t }

let build (dg : Path_index.data_graph) =
  {
    dg;
    tc = Tc.compute dg.graph;
    rev_tc = Tc.compute (Fx_graph.Digraph.reverse dg.graph);
  }

let reachable t x y = Tc.reachable t.tc x y
let distance t x y = Tc.distance t.tc x y

let filter_tag t want results =
  match want with
  | None -> results
  | Some w -> List.filter (fun (v, _) -> t.dg.Path_index.tag.(v) = w) results

let with_self t x want results =
  let matches = match want with None -> true | Some w -> t.dg.Path_index.tag.(x) = w in
  if matches then (x, 0) :: results else results

let descendants_by_tag t x want =
  with_self t x want (filter_tag t want (Tc.reach_set t.tc x))

let ancestors_by_tag t x want =
  with_self t x want (filter_tag t want (Tc.reach_set t.rev_tc x))

let restricted_descendants t x set =
  let rest = List.filter (fun (v, _) -> Bitset.mem set v) (Tc.reach_set t.tc x) in
  if Bitset.mem set x then (x, 0) :: rest else rest

let restricted_ancestors t x set =
  let rest = List.filter (fun (v, _) -> Bitset.mem set v) (Tc.reach_set t.rev_tc x) in
  if Bitset.mem set x then (x, 0) :: rest else rest

let size_bytes t = Tc.size_bytes t.tc

let instance dg =
  let t, build_ns = Fx_util.Stopwatch.time_ns (fun () -> build dg) in
  {
    Path_index.name = "TC";
    n_nodes = Fx_graph.Digraph.n_nodes dg.Path_index.graph;
    reachable = reachable t;
    distance = distance t;
    descendants_by_tag = descendants_by_tag t;
    ancestors_by_tag = ancestors_by_tag t;
    restricted_descendants = restricted_descendants t;
    restricted_ancestors = restricted_ancestors t;
    stats =
      { strategy = "TC"; build_ns; entries = Tc.n_pairs t.tc; size_bytes = size_bytes t };
  }
