(** APEX-style structural-summary path index (Chung, Min, Shim
    [SIGMOD 2002], here without the frequent-query workload adaptation —
    exactly the variant the FliX paper benchmarks against: "a
    database-backed implementation of APEX (without optimizations for
    frequent queries)").

    The summary is the backward-bisimulation quotient of the data graph
    (APEX-0 / 1-index structure): nodes with the same tag and
    bisimilar incoming structure share a summary node, whose {e extent}
    is the set of data nodes it represents. Label-path queries
    ([//a//b]) evaluate on the summary alone; element-anchored
    queries ([a//b], what FliX's PEE issues) run a summary-pruned BFS on
    the data graph — branches whose summary node cannot reach the target
    tag are cut. This keeps APEX compact but makes long descendant paths
    expensive, reproducing the qualitative profile in the paper's
    Figure 5. *)

type t

val build : ?k:int -> ?fb:bool -> Path_index.data_graph -> t
(** [k] bounds the bisimulation refinement depth, yielding the
    A(k)-index of the Index Definition Scheme the paper lists among the
    related path indexes: [k = 0] partitions by tag only, larger [k]
    distinguishes longer incoming label paths, [None] (default) refines
    to the full bisimulation fixpoint (APEX-0 / 1-index). [fb] demands
    stability under {e both} incoming and outgoing structure — the
    F&B-index of the same family, a finer partition that also covers
    branching (twig) patterns. Every variant produces an {e exact}
    index: the summary over-approximates reachability for any quotient,
    so the pruned search only gets less selective as the partition
    coarsens. *)

val n_blocks : t -> int
val block : t -> int -> int
(** Summary node of a data node. *)

val extent : t -> int -> int array
val summary_graph : t -> Fx_graph.Digraph.t

val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option
val descendants_by_tag : t -> int -> int option -> (int * int) list
val ancestors_by_tag : t -> int -> int option -> (int * int) list
val restricted_descendants : t -> int -> Fx_graph.Bitset.t -> (int * int) list
val restricted_ancestors : t -> int -> Fx_graph.Bitset.t -> (int * int) list

val descendants_stream : t -> int -> int option -> (int * int) Seq.t
(** Lazy {!descendants_by_tag}: the summary-pruned BFS advances only as
    results are consumed, in ascending distance order. Used to measure
    time-to-k-th-result honestly. *)

val eval_label_path : t -> string list -> tag_id:(string -> int option) -> int list
(** [eval_label_path t [l1; ...; lk] ~tag_id] answers the pure label-path
    query [//l1//l2//...//lk] on the summary: all data nodes at the end
    of such a tag chain, via extents — no data-graph traversal. *)

val entries : t -> int
val size_bytes : t -> int
val instance : ?k:int -> ?fb:bool -> Path_index.data_graph -> Path_index.instance
