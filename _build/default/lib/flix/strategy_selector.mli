(** The Indexing Strategy Selector (ISS): picks, for every meta document,
    the path indexing strategy to build (paper, Section 3.2: "selects,
    for each M_i of the meta documents, the optimal indexing strategy,
    based on structure, size and other properties").

    The automatic policy implements the paper's rule of thumb
    (Section 2.2): a link-free (forest) meta document takes PPO — the
    most efficient structure; tiny graphs can afford the materialised
    transitive closure; everything else takes HOPI, with APEX available
    by policy for shallow, summary-friendly graphs. The expected HOPI
    label size can be steered by Cohen's closure estimator (see
    {!Fx_graph.Tc_estimate}). *)

type strategy =
  | PPO
  | HOPI of { partition_size : int }
  | HOPI_disk of { dir : string }
      (** Build the 2-hop labels, then serve them from disk files under
          [dir] through a buffer pool — the bounded-memory deployment.
          Only sensible from a [Custom] or [Force] policy. *)
  | APEX
  | TC

type policy =
  | Auto of { tc_threshold : int; hopi_partition_size : int }
  | Force of strategy
  | Custom of (Meta_document.t -> strategy)

val default_auto : policy
(** [Auto { tc_threshold = 64; hopi_partition_size = 5000 }]. *)

val strategy_to_string : strategy -> string
val select : policy -> Meta_document.t -> strategy

val estimate_closure_pairs : ?seed:int -> Meta_document.t -> float
(** Estimated transitive-closure size of the meta document's graph —
    what an administrator would consult when configuring FliX by hand. *)
