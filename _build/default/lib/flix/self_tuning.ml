type sample = { insertions : int; entry_drops : int; results : int }

type t = {
  pee : Pee.t;
  window : int;
  mutable samples : sample list; (* newest first, <= window *)
  mutable n_samples : int;
}

let create ?(window = 128) pee =
  if window < 1 then invalid_arg "Self_tuning.create: window < 1";
  { pee; window; samples = []; n_samples = 0 }

let record t sample =
  t.samples <- sample :: t.samples;
  t.n_samples <- t.n_samples + 1;
  if t.n_samples > t.window then begin
    (* Drop the oldest; the window is small, so the rebuild is cheap. *)
    t.samples <- List.filteri (fun i _ -> i < t.window) t.samples;
    t.n_samples <- t.window
  end

let descendants ?tag ?max_dist t ~start =
  let ins0, drops0 = Pee.queue_stats t.pee in
  let inner = Pee.descendants ?tag ?max_dist t.pee ~start in
  (* The sample is updated on every pull and committed on exhaustion;
     abandoning the stream leaves the last update in place, which the
     next flush picks up. *)
  let results = ref 0 in
  let committed = ref false in
  let commit () =
    if not !committed then begin
      committed := true;
      let ins1, drops1 = Pee.queue_stats t.pee in
      record t
        {
          insertions = ins1 - ins0 - 1 (* the start element itself *);
          entry_drops = drops1 - drops0;
          results = !results;
        }
    end
  in
  Result_stream.of_fn (fun () ->
      match Result_stream.next inner with
      | Some item ->
          incr results;
          Some item
      | None ->
          commit ();
          None)

type summary = {
  queries : int;
  mean_results : float;
  mean_link_hops : float;
  mean_entry_drops : float;
  link_pressure : float;
}

let summary t =
  let n = t.n_samples in
  if n = 0 then
    { queries = 0; mean_results = 0.; mean_link_hops = 0.; mean_entry_drops = 0.;
      link_pressure = 0. }
  else begin
    let fi = float_of_int in
    let sum f = fi (List.fold_left (fun acc s -> acc + f s) 0 t.samples) in
    let results = sum (fun s -> s.results) in
    let hops = sum (fun s -> s.insertions) in
    {
      queries = n;
      mean_results = results /. fi n;
      mean_link_hops = hops /. fi n;
      mean_entry_drops = sum (fun s -> s.entry_drops) /. fi n;
      link_pressure = (if results = 0. then hops else hops /. results);
    }
  end

type recommendation = Keep | Rebuild of Meta_builder.config

let recommend ?(pressure_threshold = 2.0) t ~current =
  let s = summary t in
  if s.queries < 16 || s.link_pressure <= pressure_threshold then Keep
  else
    Rebuild
      (match (current : Meta_builder.config) with
      | Meta_builder.Naive -> Meta_builder.Unconnected_hopi { max_size = 5000 }
      | Meta_builder.Maximal_ppo ->
          Meta_builder.Hybrid { max_size = 5000; min_tree_size = 50 }
      | Meta_builder.Unconnected_hopi { max_size } ->
          Meta_builder.Unconnected_hopi { max_size = 2 * max_size }
      | Meta_builder.Hybrid { max_size; min_tree_size } ->
          Meta_builder.Hybrid { max_size = 2 * max_size; min_tree_size }
      | Meta_builder.Element_level { max_size } ->
          Meta_builder.Element_level { max_size = 2 * max_size }
      | Meta_builder.Spanning_ppo ->
          Meta_builder.Hybrid { max_size = 5000; min_tree_size = 50 })
