module Traversal = Fx_graph.Traversal

type strategy =
  | PPO
  | HOPI of { partition_size : int }
  | HOPI_disk of { dir : string }
  | APEX
  | TC

type policy =
  | Auto of { tc_threshold : int; hopi_partition_size : int }
  | Force of strategy
  | Custom of (Meta_document.t -> strategy)

let default_auto = Auto { tc_threshold = 64; hopi_partition_size = 5000 }

let strategy_to_string = function
  | PPO -> "PPO"
  | HOPI { partition_size } -> Printf.sprintf "HOPI(%d)" partition_size
  | HOPI_disk _ -> "HOPI-disk"
  | APEX -> "APEX"
  | TC -> "TC"

let select policy (m : Meta_document.t) =
  match policy with
  | Force s -> s
  | Custom f -> f m
  | Auto { tc_threshold; hopi_partition_size } ->
      if Traversal.is_forest m.graph then PPO
      else if Meta_document.n_nodes m <= tc_threshold then TC
      else HOPI { partition_size = hopi_partition_size }

let estimate_closure_pairs ?(seed = 42) (m : Meta_document.t) =
  Fx_graph.Tc_estimate.closure_pairs (Fx_graph.Tc_estimate.compute ~seed m.graph)
