module Digraph = Fx_graph.Digraph
module Bitset = Fx_graph.Bitset
module Collection = Fx_xml.Collection

type t = {
  id : int;
  nodes : int array;
  graph : Digraph.t;
  tag : int array;
  out_links : int list array;
  link_nodes : Bitset.t;
  in_links : int list array;
  in_link_nodes : Bitset.t;
}

let n_nodes t = Array.length t.nodes
let global_of_local t l = t.nodes.(l)
let data_graph t = { Fx_index.Path_index.graph = t.graph; tag = t.tag }

let n_out_links t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.out_links

type registry = { metas : t array; meta_of_node : int array; local_of_node : int array }

let build_registry c ~part ~n_parts ~include_link =
  let n = Collection.n_nodes c in
  if Array.length part <> n then invalid_arg "Meta_document.build_registry: part length";
  (* Local numbering: nodes of one partition in ascending global order. *)
  let sizes = Array.make n_parts 0 in
  Array.iter
    (fun p ->
      if p < 0 || p >= n_parts then invalid_arg "Meta_document.build_registry: bad part id";
      sizes.(p) <- sizes.(p) + 1)
    part;
  let nodes = Array.init n_parts (fun p -> Array.make sizes.(p) 0) in
  let local_of_node = Array.make n 0 in
  let cursor = Array.make n_parts 0 in
  for v = 0 to n - 1 do
    let p = part.(v) in
    nodes.(p).(cursor.(p)) <- v;
    local_of_node.(v) <- cursor.(p);
    cursor.(p) <- cursor.(p) + 1
  done;
  (* Internal edges: tree edges within a partition plus the included
     links. Document-granular builders never split a document, but the
     element-level builder may: a parent-child edge crossing partitions
     is then kept as a run-time link like any other edge (its length is
     1, exactly a link hop). *)
  let internal = Array.make n_parts [] in
  let out_links = Array.init n_parts (fun p -> Array.make sizes.(p) []) in
  let in_links = Array.init n_parts (fun p -> Array.make sizes.(p) []) in
  let add_runtime_edge u v =
    let lu = local_of_node.(u) and lv = local_of_node.(v) in
    out_links.(part.(u)).(lu) <- v :: out_links.(part.(u)).(lu);
    in_links.(part.(v)).(lv) <- u :: in_links.(part.(v)).(lv)
  in
  Digraph.iter_edges (Collection.tree_graph c) (fun u v ->
      let p = part.(u) in
      if part.(v) = p then
        internal.(p) <- (local_of_node.(u), local_of_node.(v)) :: internal.(p)
      else add_runtime_edge u v);
  List.iter
    (fun (l : Collection.link) ->
      let pu = part.(l.src) and pv = part.(l.dst) in
      if pu = pv && include_link l then
        internal.(pu) <- (local_of_node.(l.src), local_of_node.(l.dst)) :: internal.(pu)
      else begin
        ignore pv;
        add_runtime_edge l.src l.dst
      end)
    (Collection.links c);
  let tag = Collection.tag c in
  let metas =
    Array.init n_parts (fun p ->
        let local_n = sizes.(p) in
        let link_nodes = Bitset.create local_n in
        Array.iteri (fun l targets -> if targets <> [] then Bitset.add link_nodes l) out_links.(p);
        let in_link_nodes = Bitset.create local_n in
        Array.iteri (fun l srcs -> if srcs <> [] then Bitset.add in_link_nodes l) in_links.(p);
        {
          id = p;
          nodes = nodes.(p);
          graph = Digraph.of_edges ~n:local_n internal.(p);
          tag = Array.map (fun v -> tag.(v)) nodes.(p);
          out_links = out_links.(p);
          link_nodes;
          in_links = in_links.(p);
          in_link_nodes;
        })
  in
  { metas; meta_of_node = Array.copy part; local_of_node }

let total_out_links reg = Array.fold_left (fun acc m -> acc + n_out_links m) 0 reg.metas

let find reg v = (reg.metas.(reg.meta_of_node.(v)), reg.local_of_node.(v))
