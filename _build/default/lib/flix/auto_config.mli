(** Automatic framework configuration — the paper's stated goal: "The
    ultimate goal is that FliX can itself determine the optimal
    configuration for the actual application or, if the collection is
    too heterogeneous, automatically build homogeneous partitions of
    the collection. However, … in our current implementation, an
    administrator must decide which configuration to use" (Section 4.1).

    This module is that missing administrator: it analyses exactly the
    structural parameters the paper lists — "the number of documents,
    the distribution of the document sizes, link structure, and the
    average number of links per document" — and picks a configuration
    by the paper's own rules of thumb from Section 4.3:

    - hardly any links, big documents → {b Naive} (the INEX shape);
    - few links, mostly pointing at roots of link-free documents →
      {b Maximal PPO} (the DBLP shape);
    - link-dense everywhere → {b Unconnected HOPI};
    - a mix of tree-like and dense regions → {b Hybrid}. *)

type analysis = {
  n_docs : int;
  n_elements : int;
  mean_doc_size : float;
  links_per_doc : float;
  intra_link_share : float;   (** intra-document links / all links *)
  root_link_share : float;    (** inter-document links pointing at roots *)
  tree_doc_share : float;     (** documents without intra-document links *)
  linked_doc_share : float;   (** documents with at least one incident
                                  inter-document link *)
  mergeable_share : float;    (** documents the Maximal-PPO greedy merge
                                  would absorb into a multi-document tree *)
}

val analyse : Fx_xml.Collection.t -> analysis
(** One pass over the collection plus the (cheap) Maximal-PPO dry run. *)

val pp_analysis : Format.formatter -> analysis -> unit

val choose : ?max_size:int -> analysis -> Meta_builder.config
(** The decision procedure; [max_size] (default 5000) parameterises the
    partitioned configurations. Deterministic, documented thresholds —
    see the implementation for the decision table. *)

val configure : ?max_size:int -> Fx_xml.Collection.t -> Meta_builder.config
(** [choose (analyse c)]. *)
