(** Meta documents — FliX's unit of indexing.

    A meta document holds a distinct subset of the collection's elements
    (in this implementation: a union of whole documents), the subgraph
    induced by tree edges plus the {e included} links, and the remaining
    outgoing links that are {e not} reflected in its index. The paper
    (Section 3.1): "each meta document contains some or all of the links
    between its documents. Additionally, FliX maintains the set of
    remaining inter- or intra-document links that are not contained in
    any meta document."

    Nodes inside a meta document are renumbered to dense local ids; the
    registry maps between local and global ids. *)

type t = {
  id : int;
  nodes : int array;                   (** global node ids, ascending *)
  graph : Fx_graph.Digraph.t;          (** local: tree edges + included links *)
  tag : int array;                     (** local, collection tag ids *)
  out_links : int list array;          (** local node -> global link targets *)
  link_nodes : Fx_graph.Bitset.t;      (** local nodes with outgoing links — the set [L_i] *)
  in_links : int list array;           (** local node -> global link sources *)
  in_link_nodes : Fx_graph.Bitset.t;   (** local link-target nodes, for ancestor queries *)
}

val n_nodes : t -> int
val global_of_local : t -> int -> int
val data_graph : t -> Fx_index.Path_index.data_graph
val n_out_links : t -> int

type registry = {
  metas : t array;
  meta_of_node : int array;   (** global node -> meta document id *)
  local_of_node : int array;  (** global node -> local id inside its meta *)
}

val build_registry :
  Fx_xml.Collection.t ->
  part:int array ->
  n_parts:int ->
  include_link:(Fx_xml.Collection.link -> bool) ->
  registry
(** Splits the collection along the per-node partition [part]. Tree edges
    are always internal (a partition never splits a document). A link
    becomes an internal edge when both endpoints share a partition {e
    and} [include_link] accepts it; otherwise it is kept as an out-link
    to be followed at query time. *)

val total_out_links : registry -> int
val find : registry -> int -> t * int
(** [find reg v] is the meta document of global node [v] and [v]'s local
    id in it. *)
