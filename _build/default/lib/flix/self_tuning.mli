(** Query-load monitoring and configuration advice — the paper's
    self-tuning sketch (Section 7): "If it turns out in the query
    evaluation engine that most queries have to follow many links, then
    the choice of meta documents is no longer optimal for the current
    query load. In this case, the build phase should start again,
    taking statistics on the query load into account."

    A monitor wraps a {!Pee.t} and records, per query, how much queue
    traffic (link hops) and how many entry drops the evaluation needed
    relative to the results it produced. {!recommend} turns the
    aggregate into a configuration suggestion; callers rebuild with
    {!Flix.build} when they accept it. *)

type t

val create : ?window:int -> Pee.t -> t
(** Keeps statistics over the last [window] (default 128) queries. *)

val descendants :
  ?tag:int -> ?max_dist:int -> t -> start:int -> Pee.item Result_stream.t
(** Instrumented {!Pee.descendants}. Partial consumption is accounted
    too — a query the client abandons early still recorded the work it
    caused up to that point. *)

type summary = {
  queries : int;
  mean_results : float;
  mean_link_hops : float;    (** queue insertions per query, minus the start *)
  mean_entry_drops : float;
  link_pressure : float;     (** link hops per produced result; the
                                 "most queries have to follow many
                                 links" signal *)
}

val summary : t -> summary

type recommendation =
  | Keep
  | Rebuild of Meta_builder.config

val recommend : ?pressure_threshold:float -> t -> current:Meta_builder.config -> recommendation
(** Suggest a coarser meta-document layout when {!summary.link_pressure}
    exceeds the threshold (default 2.0): Naive escalates to Unconnected
    HOPI, Maximal-PPO to Hybrid, Unconnected-HOPI/Hybrid double their
    partition bound. Below the threshold: {!Keep}. At least 16 observed
    queries are required before anything but {!Keep} is returned. *)
