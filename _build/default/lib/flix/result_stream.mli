(** Pull-based result streams.

    The paper decouples FliX from the client with a multithreaded
    producer/consumer list so that "as soon as a new result is found, it
    is returned to the client" (Section 3.1). We model the same
    observable behaviour with a demand-driven stream: each [next] call
    advances the evaluator just far enough to surface one more result,
    so early results are available long before the query finishes, and a
    client that stops pulling stops the query — the paper's top-k early
    termination for free. *)

type 'a t

val of_fn : (unit -> 'a option) -> 'a t
(** [of_fn f] pulls from [f] until it yields [None]; after that the
    stream stays exhausted (f is not called again). *)

val next : 'a t -> 'a option
val peek : 'a t -> 'a option
(** Look at the next element without consuming it. *)

val take : int -> 'a t -> 'a list
val take_while : ('a -> bool) -> 'a t -> 'a list
val to_list : 'a t -> 'a list
val to_seq : 'a t -> 'a Seq.t
(** The remaining elements as a standard sequence (consumes the stream). *)

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t

val take_timed : int -> 'a t -> ('a * float) list
(** [take_timed k s] pulls up to [k] elements recording, for each, the
    elapsed wall-clock milliseconds since the call started — the
    "time to return the first k results" measurement of the paper's
    Figure 5. *)
