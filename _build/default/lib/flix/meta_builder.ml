module Collection = Fx_xml.Collection
module Partition = Fx_graph.Partition
module Union_find = Fx_graph.Union_find
module Digraph = Fx_graph.Digraph

type config =
  | Naive
  | Maximal_ppo
  | Unconnected_hopi of { max_size : int }
  | Hybrid of { max_size : int; min_tree_size : int }
  | Element_level of { max_size : int }
  | Spanning_ppo

let config_to_string = function
  | Naive -> "naive"
  | Maximal_ppo -> "maximal-ppo"
  | Unconnected_hopi { max_size } -> Printf.sprintf "unconnected-hopi-%d" max_size
  | Hybrid { max_size; min_tree_size } -> Printf.sprintf "hybrid-%d-%d" max_size min_tree_size
  | Element_level { max_size } -> Printf.sprintf "element-level-%d" max_size
  | Spanning_ppo -> "spanning-ppo"

let default_hybrid = Hybrid { max_size = 5000; min_tree_size = 50 }

let doc_sizes c =
  let sizes = Array.make (Collection.n_docs c) 0 in
  for v = 0 to Collection.n_nodes c - 1 do
    let d = Collection.doc_of_node c v in
    sizes.(d) <- sizes.(d) + 1
  done;
  sizes

let doc_is_tree c =
  let tree = Array.make (Collection.n_docs c) true in
  List.iter
    (fun (l : Collection.link) ->
      if not l.inter then tree.(Collection.doc_of_node c l.src) <- false)
    (Collection.links c);
  tree

let node_part_of_doc_part c doc_part =
  Array.init (Collection.n_nodes c) (fun v -> doc_part.(Collection.doc_of_node c v))

let normalise_part part =
  let mapping = Hashtbl.create 64 in
  let next = ref 0 in
  let out =
    Array.map
      (fun p ->
        match Hashtbl.find_opt mapping p with
        | Some q -> q
        | None ->
            let q = !next in
            incr next;
            Hashtbl.add mapping p q;
            q)
      part
  in
  (out, !next)

(* Greedy Maximal-PPO merge at document granularity. A link is accepted —
   its target document joins the source's tree — when both documents are
   internally link-free, the link points at the target's root, the root
   has no accepted parent yet, and no document-level cycle arises. *)
let maximal_ppo_plan c =
  let n_docs = Collection.n_docs c in
  let tree = doc_is_tree c in
  let uf = Union_find.create n_docs in
  let has_parent = Array.make n_docs false in
  let accepted : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (l : Collection.link) ->
      if l.inter then begin
        let a = Collection.doc_of_node c l.src and b = Collection.doc_of_node c l.dst in
        if
          tree.(a) && tree.(b)
          && l.dst = Collection.root_of_doc c b
          && (not has_parent.(b))
          && not (Union_find.same uf a b)
        then begin
          ignore (Union_find.union uf a b);
          has_parent.(b) <- true;
          Hashtbl.replace accepted (l.src, l.dst) ()
        end
      end)
    (Collection.links c);
  let doc_part = Array.init n_docs (fun d -> Union_find.find uf d) in
  (doc_part, accepted)

let include_all (_ : Collection.link) = true

let build_naive c =
  let n_docs = Collection.n_docs c in
  let part = Array.init (Collection.n_nodes c) (fun v -> Collection.doc_of_node c v) in
  Meta_document.build_registry c ~part ~n_parts:n_docs ~include_link:include_all

let build_maximal_ppo c =
  let doc_part, accepted = maximal_ppo_plan c in
  let doc_part, n_parts = normalise_part doc_part in
  let part = node_part_of_doc_part c doc_part in
  let include_link (l : Collection.link) = Hashtbl.mem accepted (l.src, l.dst) in
  Meta_document.build_registry c ~part ~n_parts ~include_link

let build_unconnected_hopi c ~max_size =
  let units = Array.init (Collection.n_nodes c) (fun v -> Collection.doc_of_node c v) in
  let assignment =
    Partition.by_units ~units ~unit_weight:(doc_sizes c) ~max_size (Collection.graph c)
  in
  Meta_document.build_registry c ~part:assignment.Partition.part
    ~n_parts:assignment.Partition.n_parts ~include_link:include_all

(* Hybrid: keep the Maximal-PPO classes that grew into respectable trees,
   re-partition the remaining documents with the bounded scheme. *)
let build_hybrid c ~max_size ~min_tree_size =
  let n_docs = Collection.n_docs c in
  let doc_part, accepted = maximal_ppo_plan c in
  let sizes = doc_sizes c in
  let class_weight = Hashtbl.create 64 in
  Array.iteri
    (fun d p ->
      Hashtbl.replace class_weight p (sizes.(d) + Option.value ~default:0 (Hashtbl.find_opt class_weight p)))
    doc_part;
  (* A class qualifies as a PPO meta document when it is big enough and
     genuinely a forest: merged classes contain only link-free documents
     by construction, but a singleton class may be a document with
     internal links — those go to the HOPI pool regardless of size. *)
  let tree = doc_is_tree c in
  let kept = Hashtbl.create 64 in
  let n_parts = ref 0 in
  Array.iteri
    (fun d p ->
      if
        (not (Hashtbl.mem kept p))
        && tree.(d)
        && Hashtbl.find class_weight p >= min_tree_size
      then begin
        Hashtbl.add kept p !n_parts;
        incr n_parts
      end)
    doc_part;
  let doc_assignment = Array.make n_docs (-1) in
  let rest = ref [] in
  Array.iteri
    (fun d p ->
      match Hashtbl.find_opt kept p with
      | Some q -> doc_assignment.(d) <- q
      | None -> rest := d :: !rest)
    doc_part;
  let ppo_parts = !n_parts in
  (* Bounded BFS growth over the document quotient graph, restricted to
     the rest pool. *)
  let doc_adj =
    let edges = ref [] in
    List.iter
      (fun (l : Collection.link) ->
        if l.inter then
          edges :=
            (Collection.doc_of_node c l.src, Collection.doc_of_node c l.dst) :: !edges)
      (Collection.links c);
    Digraph.of_edges ~n:n_docs !edges
  in
  let queue = Queue.create () in
  List.iter
    (fun seed ->
      if doc_assignment.(seed) = -1 then begin
        let p = !n_parts in
        incr n_parts;
        let weight = ref 0 in
        Queue.clear queue;
        Queue.add seed queue;
        doc_assignment.(seed) <- p;
        weight := sizes.(seed);
        while (not (Queue.is_empty queue)) && !weight < max_size do
          let u = Queue.pop queue in
          let try_take v =
            if doc_assignment.(v) = -1 && !weight + sizes.(v) <= max_size then begin
              doc_assignment.(v) <- p;
              weight := !weight + sizes.(v);
              Queue.add v queue
            end
          in
          Digraph.iter_succ doc_adj u try_take;
          Digraph.iter_pred doc_adj u try_take
        done
      end)
    (List.rev !rest);
  let part = node_part_of_doc_part c doc_assignment in
  (* PPO partitions include only accepted links (to stay forests); HOPI
     partitions include everything internal. *)
  let include_link (l : Collection.link) =
    let p = part.(l.src) in
    if p < ppo_parts then Hashtbl.mem accepted (l.src, l.dst) else true
  in
  Meta_document.build_registry c ~part ~n_parts:!n_parts ~include_link

(* Maximal PPO, variant (1) of the paper: "remove edges until the
   remaining graph forms a single tree and index it with PPO". One meta
   document holds the whole collection; the accepted links of the greedy
   merge become tree edges, every other link is removed from the index
   and followed at run time. *)
let build_spanning_ppo c =
  let _, accepted = maximal_ppo_plan c in
  let part = Array.make (Collection.n_nodes c) 0 in
  let include_link (l : Collection.link) = Hashtbl.mem accepted (l.src, l.dst) in
  Meta_document.build_registry c ~part ~n_parts:1 ~include_link

(* Element-level meta documents (paper, Section 7: "ignore the
   artificial boundary of documents and combine semantically related,
   connected elements into a single meta document"): partition the
   element graph directly; parent-child edges crossing a partition
   border are chased at run time like links. *)
let build_element_level c ~max_size =
  let assignment = Partition.bounded_bfs ~max_size (Collection.graph c) in
  Meta_document.build_registry c ~part:assignment.Partition.part
    ~n_parts:assignment.Partition.n_parts ~include_link:include_all

let build config c =
  Log.debug (fun m ->
      m "meta document builder: %s over %d documents / %d elements" (config_to_string config)
        (Collection.n_docs c) (Collection.n_nodes c));
  match config with
  | Naive -> build_naive c
  | Maximal_ppo -> build_maximal_ppo c
  | Unconnected_hopi { max_size } -> build_unconnected_hopi c ~max_size
  | Hybrid { max_size; min_tree_size } -> build_hybrid c ~max_size ~min_tree_size
  | Element_level { max_size } -> build_element_level c ~max_size
  | Spanning_ppo -> build_spanning_ppo c
