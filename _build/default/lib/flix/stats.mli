(** Measurement utilities for the evaluation (paper, Section 6): result-
    order error rates, time-to-k-th-result series, and size accounting. *)

val error_rate : true_dist:(int -> int) -> int list -> float
(** [error_rate ~true_dist nodes] — the paper's metric: "the fraction of
    all results that were returned in wrong order". A result is counted
    as out of order when some {e later} result has a strictly smaller
    true distance, i.e. it was returned too early. Empty input: 0. *)

val inversions : true_dist:(int -> int) -> int list -> int
(** Number of pairwise order inversions, a finer-grained variant. *)

val inversion_rate : true_dist:(int -> int) -> int list -> float
(** {!inversions} normalised by the number of pairs (Kendall-tau
    distance to the distance-sorted order). This is the reading of the
    paper's "fraction of all results that were returned in wrong order"
    that the benches report: under the block-wise streaming of the PEE,
    the per-result reading would charge an entire block for one
    straggler, which cannot reproduce single-digit percentages. *)

val is_sorted_by_dist : (int * int) list -> bool
(** Are the [(node, dist)] results in non-decreasing distance order? *)

val time_series : ('a * float) list -> ks:int list -> (int * float) list
(** Down-samples a [take_timed] trace to the requested ranks: for each
    [k] in [ks] (that was reached), the elapsed milliseconds when the
    k-th result arrived. *)

val mb : int -> float
(** Bytes to (binary) megabytes. *)

val mean : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]; nearest-rank. Raises on []. *)
