type 'a t = { mutable pull : unit -> 'a option; mutable buffered : 'a option }

let exhausted () = None

let of_fn f =
  let s = { pull = f; buffered = None } in
  s

let next s =
  match s.buffered with
  | Some _ as r ->
      s.buffered <- None;
      r
  | None -> begin
      match s.pull () with
      | Some _ as r -> r
      | None ->
          s.pull <- exhausted;
          None
    end

let peek s =
  match s.buffered with
  | Some _ as r -> r
  | None ->
      let r = next s in
      s.buffered <- r;
      r

let take k s =
  let rec go k acc =
    if k <= 0 then List.rev acc
    else
      match next s with
      | None -> List.rev acc
      | Some x -> go (k - 1) (x :: acc)
  in
  go k []

let take_while p s =
  let rec go acc =
    match peek s with
    | Some x when p x ->
        ignore (next s);
        go (x :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let to_list s =
  let rec go acc = match next s with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let to_seq s =
  let rec seq () = match next s with None -> Seq.Nil | Some x -> Seq.Cons (x, seq) in
  seq

let map f s = of_fn (fun () -> Option.map f (next s))

let filter p s =
  let rec pull () =
    match next s with
    | None -> None
    | Some x when p x -> Some x
    | Some _ -> pull ()
  in
  of_fn pull

let take_timed k s =
  let watch = Fx_util.Stopwatch.start () in
  let rec go k acc =
    if k <= 0 then List.rev acc
    else
      match next s with
      | None -> List.rev acc
      | Some x -> go (k - 1) ((x, Fx_util.Stopwatch.elapsed_ms watch) :: acc)
  in
  go k []
