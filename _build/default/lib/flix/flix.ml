module Collection = Fx_xml.Collection

type t = {
  collection : Collection.t;
  config : Meta_builder.config;
  registry : Meta_document.registry;
  built : Index_builder.t;
  pee : Pee.t;
}

let build ?(config = Meta_builder.default_hybrid) ?policy collection =
  let registry = Meta_builder.build config collection in
  let built = Index_builder.build ?policy registry in
  { collection; config; registry; built; pee = Pee.create built }

let collection t = t.collection

(* Appending documents keeps existing global node ids (numbering is by
   document order, preorder within a document), so document-granular
   configurations leave most meta documents structurally unchanged and
   the index builder reuses their indexes. *)
let extend t new_docs =
  let collection = Collection.build (Collection.documents t.collection @ new_docs) in
  let registry = Meta_builder.build t.config collection in
  let built = Index_builder.build ~reuse:t.built registry in
  { collection; config = t.config; registry; built; pee = Pee.create built }

let remove t names =
  let keep =
    List.filter
      (fun (d : Fx_xml.Xml_types.document) -> not (List.mem d.name names))
      (Collection.documents t.collection)
  in
  if List.length keep = List.length (Collection.documents t.collection) then t
  else begin
    let collection = Collection.build keep in
    let registry = Meta_builder.build t.config collection in
    (* Node ids shift after the first removed document, so reuse only
       helps for the unchanged prefix — still free when dropping recent
       additions. *)
    let built = Index_builder.build ~reuse:t.built registry in
    { collection; config = t.config; registry; built; pee = Pee.create built }
  end

let rebuild ?config ?policy t =
  let config = Option.value config ~default:t.config in
  let registry = Meta_builder.build config t.collection in
  let built = Index_builder.build ?policy ~reuse:t.built registry in
  { collection = t.collection; config; registry; built; pee = Pee.create built }
let registry t = t.registry
let built t = t.built
let pee t = t.pee

(* An unknown tag name matches nothing; tag id -1 is the PEE's "match
   nothing" sentinel, distinct from None = wildcard. *)
let tag_arg t = function
  | None -> None
  | Some name -> Some (Option.value ~default:(-1) (Collection.tag_id t.collection name))

let descendants ?tag ?max_dist t ~start =
  Pee.descendants ?tag:(tag_arg t tag) ?max_dist t.pee ~start

let ancestors ?tag ?max_dist t ~start =
  Pee.ancestors ?tag:(tag_arg t tag) ?max_dist t.pee ~start

let descendants_exact ?tag ?max_dist t ~start =
  Pee.descendants_exact ?tag:(tag_arg t tag) ?max_dist t.pee ~start

let evaluate ?max_dist t ~start_tag ~target_tag =
  let starts = Collection.find_by_tag t.collection start_tag in
  Pee.descendants_multi ?tag:(tag_arg t (Some target_tag)) ?max_dist t.pee ~starts

let connected ?max_dist t a b = Pee.connected ?max_dist t.pee a b
let connected_bidir ?max_dist t a b = Pee.connected_bidir ?max_dist t.pee a b

let node_of t ~doc ~anchor =
  match Collection.doc_of_name t.collection doc with
  | None -> None
  | Some d -> begin
      match anchor with
      | None -> Some (Collection.root_of_doc t.collection d)
      | Some a -> Collection.node_of_anchor t.collection ~doc ~anchor:a
    end

let describe t (item : Pee.item) =
  Printf.sprintf "%s at distance %d" (Collection.describe t.collection item.node) item.dist

let index_size_bytes t = Index_builder.total_size_bytes t.built

let report t =
  Printf.sprintf "FliX [%s]\ncollection: %s\n%s"
    (Meta_builder.config_to_string t.config)
    (Collection.stats t.collection)
    (Index_builder.report t.built)

let true_distance t a b = Fx_graph.Traversal.distance (Collection.graph t.collection) a b
