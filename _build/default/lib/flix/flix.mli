(** FliX — the public facade.

    Typical use:
    {[
      let coll = Fx_xml.Collection.build documents in
      let flix = Flix.build ~config:Meta_builder.default_hybrid coll in
      Flix.descendants flix ~start ~tag:"article"
      |> Result_stream.take 10
      |> List.iter (fun r -> print_endline (Flix.describe flix r))
    ]}

    The facade binds together the build phase (Meta Document Builder →
    Indexing Strategy Selector → Index Builder) and the query phase
    (Path Expression Evaluator), resolving tag names and document
    anchors so callers never touch interned ids unless they want to. *)

type t

val build :
  ?config:Meta_builder.config ->
  ?policy:Strategy_selector.policy ->
  Fx_xml.Collection.t ->
  t
(** Default configuration: {!Meta_builder.default_hybrid} with the
    automatic strategy selector. *)

val collection : t -> Fx_xml.Collection.t

val extend : t -> Fx_xml.Xml_types.document list -> t
(** Incremental update: append documents to the collection and rebuild,
    reusing every meta-document index whose structure is unchanged —
    with document-granular configurations, adding documents only
    reindexes the new partitions. Raises like
    {!Fx_xml.Collection.build} on duplicate names. *)

val remove : t -> string list -> t
(** Drop documents by name and rebuild (dangling references into the
    removed documents are collected, not fatal, like any dead link).
    Unknown names are ignored; removing nothing returns [t] unchanged.
    Index reuse only covers the meta documents before the first removal
    point, since global node ids shift. *)

val rebuild : ?config:Meta_builder.config -> ?policy:Strategy_selector.policy -> t -> t
(** Re-run the build phase on the same collection — e.g. to apply a
    {!Self_tuning.recommendation} — reusing structurally unchanged
    indexes. *)

val registry : t -> Meta_document.registry
val built : t -> Index_builder.t
val pee : t -> Pee.t

(** {1 Queries}

    Queries take global node ids as start points; use {!node_of} or
    {!Fx_xml.Collection.find_by_tag} to obtain them. The optional [tag]
    is a tag {e name}; an unknown name yields an empty stream (not an
    error — heterogeneous collections routinely lack a tag). *)

val descendants :
  ?tag:string -> ?max_dist:int -> t -> start:int -> Pee.item Result_stream.t

val ancestors :
  ?tag:string -> ?max_dist:int -> t -> start:int -> Pee.item Result_stream.t

val descendants_exact :
  ?tag:string -> ?max_dist:int -> t -> start:int -> Pee.item Result_stream.t
(** {!descendants} with exact distance ordering; see
    {!Pee.descendants_exact}. *)

val evaluate :
  ?max_dist:int -> t -> start_tag:string -> target_tag:string -> Pee.item Result_stream.t
(** The [A//B] form over the whole collection. *)

val connected : ?max_dist:int -> t -> int -> int -> int option
val connected_bidir : ?max_dist:int -> t -> int -> int -> bool

val node_of : t -> doc:string -> anchor:string option -> int option
(** Root of [doc] when [anchor] is [None]. *)

val describe : t -> Pee.item -> string

(** {1 Introspection} *)

val index_size_bytes : t -> int
val report : t -> string
val true_distance : t -> int -> int -> int option
(** Ground-truth BFS distance on the full collection graph — for error
    rates and tests, not for serving queries. *)
