(** The Path Expression Evaluator (PEE) — the query-time half of FliX
    (paper, Section 5, Fig. 4).

    A descendants query [a//B] keeps a priority queue of {e intermediate
    elements} ordered by ascending (estimated) distance to the start
    element [a]. The main loop pops the closest element [e], evaluates
    the query inside [e]'s meta document using that meta document's own
    index — returning all matches of the block at once — then looks up
    the link nodes reachable from [e] (the [L(a)] operation) and enqueues
    the link targets at priority [dist(a,e) + dist(e,l) + 1].

    Results therefore stream out {e approximately} ordered by distance:
    exact inside a meta-document block, approximate across blocks — the
    trade-off the paper quantifies with the error rates in Section 6.

    Duplicate elimination follows the paper: per meta document the PEE
    remembers its {e entry points}. A new entry that is a descendant of a
    previous entry point of the same meta document is dropped outright
    (everything below it was already returned), and individual results
    that are descendants of {e another} entry point are suppressed. *)

type t

val create : Index_builder.t -> t

type item = {
  node : int;       (** global node id *)
  dist : int;       (** path length found (exact within a meta document,
                        an upper bound across meta documents) *)
  meta : int;       (** meta document that produced the result *)
}

val descendants :
  ?tag:int -> ?max_dist:int -> ?include_self:bool -> t -> start:int -> item Result_stream.t
(** [descendants t ~start] evaluates [start//tag] (or [start//*] without
    [tag]). [max_dist] prunes the search as the paper's distance
    threshold does; [include_self] (default false) also yields the start
    element itself when it matches, i.e. descendants-or-self. *)

val descendants_multi :
  ?tag:int -> ?max_dist:int -> t -> starts:int list -> item Result_stream.t
(** The [A//B] form: "the PEE determines all elements of type A and
    inserts them into the priority queue with priority 0" (Section 5.2).
    The same element may be reported once per distinct start whose
    subtree contains it. *)

val ancestors :
  ?tag:int -> ?max_dist:int -> ?include_self:bool -> t -> start:int -> item Result_stream.t
(** Mirror evaluation over reverse axes and incoming links. *)

val descendants_exact :
  ?tag:int -> ?max_dist:int -> ?include_self:bool -> t -> start:int -> item Result_stream.t
(** Like {!descendants}, but results stream in {e exactly} ascending
    true distance — the paper's future-work refinement (Section 7:
    "returning results exactly sorted instead of approximately"). The
    engine turns the link expansion into a proper Dijkstra: entry
    points are only dropped when a previous entry provably dominates
    them ([d' + dist(e', l) <= d]), results are buffered in a heap and
    released once no unexplored element can beat them, and duplicate
    elimination keys on emitted nodes (the first emission is minimal).
    Costs more queue traffic than the approximate engine. *)

val ancestors_exact :
  ?tag:int -> ?max_dist:int -> ?include_self:bool -> t -> start:int -> item Result_stream.t

val connected : ?max_dist:int -> t -> int -> int -> int option
(** [connected t a b] is [Some d] when [b] is reachable from [a] with a
    path of length [d <= max_dist] (d is exact within one meta document
    and an upper bound across several). The connection test of
    Section 5.2. *)

val connected_bidir : ?max_dist:int -> t -> int -> int -> bool
(** The optimisation sketched in Section 5.2: run a descendants search
    from [a] and an ancestors search from [b] in lockstep, stopping as
    soon as either side finds the other. Reachability only. *)

val queue_stats : t -> int * int
(** (total queue insertions, total entry-point drops) since creation —
    observability for benches and tests. *)
