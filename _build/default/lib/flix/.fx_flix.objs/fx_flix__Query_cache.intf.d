lib/flix/query_cache.mli: Pee Result_stream
