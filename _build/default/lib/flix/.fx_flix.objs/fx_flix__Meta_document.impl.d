lib/flix/meta_document.ml: Array Fx_graph Fx_index Fx_xml List
