lib/flix/pee.ml: Array Fx_graph Fx_index Hashtbl Index_builder List Meta_document Option Queue Result_stream
