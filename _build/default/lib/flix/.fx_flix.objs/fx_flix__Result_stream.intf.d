lib/flix/result_stream.mli: Seq
