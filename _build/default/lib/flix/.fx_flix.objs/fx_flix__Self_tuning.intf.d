lib/flix/self_tuning.mli: Meta_builder Pee Result_stream
