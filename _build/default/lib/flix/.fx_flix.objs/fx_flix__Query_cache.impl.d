lib/flix/query_cache.ml: Fx_util Lazy List Pee Result_stream
