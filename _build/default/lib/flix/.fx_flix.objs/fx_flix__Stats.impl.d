lib/flix/stats.ml: Array List
