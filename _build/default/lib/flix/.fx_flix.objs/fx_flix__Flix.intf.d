lib/flix/flix.mli: Fx_xml Index_builder Meta_builder Meta_document Pee Result_stream Strategy_selector
