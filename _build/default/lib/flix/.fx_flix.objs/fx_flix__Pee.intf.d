lib/flix/pee.mli: Index_builder Result_stream
