lib/flix/stats.mli:
