lib/flix/strategy_selector.mli: Meta_document
