lib/flix/self_tuning.ml: List Meta_builder Pee Result_stream
