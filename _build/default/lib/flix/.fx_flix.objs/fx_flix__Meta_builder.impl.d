lib/flix/meta_builder.ml: Array Fx_graph Fx_xml Hashtbl List Log Meta_document Option Printf Queue
