lib/flix/index_builder.mli: Fx_index Meta_document Strategy_selector
