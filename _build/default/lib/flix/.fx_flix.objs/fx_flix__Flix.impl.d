lib/flix/flix.ml: Fx_graph Fx_xml Index_builder List Meta_builder Meta_document Option Pee Printf
