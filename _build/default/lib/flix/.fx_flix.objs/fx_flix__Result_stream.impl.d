lib/flix/result_stream.ml: Fx_util List Option Seq
