lib/flix/log.ml: Logs
