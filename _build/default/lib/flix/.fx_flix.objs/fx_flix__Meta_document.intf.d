lib/flix/meta_document.mli: Fx_graph Fx_index Fx_xml
