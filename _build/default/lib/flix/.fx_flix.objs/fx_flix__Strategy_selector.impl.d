lib/flix/strategy_selector.ml: Fx_graph Meta_document Printf
