lib/flix/auto_config.ml: Array Format Fun Fx_xml Hashtbl List Meta_builder Option
