lib/flix/index_builder.ml: Array Atomic Buffer Domain Filename Fx_graph Fx_index Fx_util Hashtbl Int64 List Log Meta_document Option Printf Strategy_selector Sys
