lib/flix/auto_config.mli: Format Fx_xml Meta_builder
