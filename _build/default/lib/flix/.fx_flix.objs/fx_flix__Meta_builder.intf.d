lib/flix/meta_builder.mli: Fx_xml Hashtbl Meta_document
