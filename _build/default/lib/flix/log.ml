(* Logging source for the framework; silent unless the application
   configures a Logs reporter. *)

let src = Logs.Src.create "flix" ~doc:"FliX indexing framework"

include (val Logs.src_log src : Logs.LOG)
