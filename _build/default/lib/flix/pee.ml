module PQ = Fx_graph.Priority_queue
module Path_index = Fx_index.Path_index

type t = {
  built : Index_builder.t;
  mutable insertions : int;
  mutable entry_drops : int;
}

let create built = { built; insertions = 0; entry_drops = 0 }

type item = { node : int; dist : int; meta : int }

(* One direction of evaluation: descendants use the forward label/axis
   operations and outgoing links, ancestors the mirrored ones. *)
type direction = {
  matches_in_meta : Path_index.instance -> int -> int option -> (int * int) list;
  link_hops : Index_builder.built -> int -> (int * int) list;
      (* local node -> (global link endpoint on the other side, distance
         from/to the local node) for every relevant link below/above it *)
  covers : Path_index.instance -> int -> int -> bool;
      (* [covers idx entry v]: did processing [entry] already emit [v]?
         Forward: entry is an ancestor of v; backward: a descendant. *)
  local_dist : Path_index.instance -> int -> int -> int option;
      (* distance from an entry to a node inside one meta document, in
         the direction of evaluation *)
}

let forward : direction =
  {
    matches_in_meta = (fun idx l tag -> idx.Path_index.descendants_by_tag l tag);
    link_hops =
      (fun b l ->
        let m = b.Index_builder.meta in
        List.concat_map
          (fun (lv, dl) -> List.map (fun target -> (target, dl)) m.Meta_document.out_links.(lv))
          (b.index.Path_index.restricted_descendants l m.Meta_document.link_nodes));
    covers = (fun idx entry v -> idx.Path_index.reachable entry v);
    local_dist = (fun idx entry v -> idx.Path_index.distance entry v);
  }

let backward : direction =
  {
    matches_in_meta = (fun idx l tag -> idx.Path_index.ancestors_by_tag l tag);
    link_hops =
      (fun b l ->
        let m = b.Index_builder.meta in
        List.concat_map
          (fun (lv, dl) -> List.map (fun source -> (source, dl)) m.Meta_document.in_links.(lv))
          (b.index.Path_index.restricted_ancestors l m.Meta_document.in_link_nodes));
    covers = (fun idx entry v -> idx.Path_index.reachable v entry);
    local_dist = (fun idx entry v -> idx.Path_index.distance v entry);
  }

(* Shared engine state for one query. [entries] records the entry points
   per meta document for the paper's duplicate-elimination scheme. *)
type engine = {
  pee : t;
  dir : direction;
  tag : int option;
  max_dist : int;
  queue : int PQ.t;
  entries : (int, int list) Hashtbl.t;
  pending : item Queue.t;
}

let make_engine pee dir ~tag ~max_dist starts =
  let e =
    {
      pee;
      dir;
      tag;
      max_dist;
      queue = PQ.create ();
      entries = Hashtbl.create 16;
      pending = Queue.create ();
    }
  in
  List.iter
    (fun s ->
      pee.insertions <- pee.insertions + 1;
      PQ.insert e.queue 0 s)
    starts;
  e

(* Entry-point duplicate elimination (paper, Section 5.1): [e] is dropped
   when a previous entry point of the same meta document is an ancestor
   of it — all of [e]'s matches were already returned. *)
let covered_by_entries eng (idx : Path_index.instance) meta_id l =
  let prev = Option.value ~default:[] (Hashtbl.find_opt eng.entries meta_id) in
  (prev, List.exists (fun e' -> eng.dir.covers idx e' l) prev)

(* Process one queue pop. Returns false when the queue is exhausted.
   [on_meta] is called — with the popped element's priority, its built
   meta document and its local id — before results are enqueued; it lets
   the connection test short-circuit. *)
let step eng ~on_meta =
  match PQ.extract_min eng.queue with
  | None -> false
  | Some (d, node) ->
      if d > eng.max_dist then begin
        PQ.clear eng.queue;
        false
      end
      else begin
        let reg = eng.pee.built.Index_builder.registry in
        let meta_id = reg.Meta_document.meta_of_node.(node) in
        let l = reg.Meta_document.local_of_node.(node) in
        let b = eng.pee.built.Index_builder.indexes.(meta_id) in
        let idx = b.Index_builder.index in
        let prev, covered = covered_by_entries eng idx meta_id l in
        if covered then eng.pee.entry_drops <- eng.pee.entry_drops + 1
        else begin
          on_meta d b l;
          let m = b.Index_builder.meta in
          (* Block evaluation inside the meta document. Results that are
             descendants of another entry point were already returned. *)
          List.iter
            (fun (v, dv) ->
              let total = d + dv in
              if total <= eng.max_dist
                 && not (List.exists (fun e' -> eng.dir.covers idx e' v) prev)
              then
                Queue.add
                  { node = Meta_document.global_of_local m v; dist = total; meta = meta_id }
                  eng.pending)
            (eng.dir.matches_in_meta idx l eng.tag);
          Hashtbl.replace eng.entries meta_id (l :: prev);
          (* Follow the links that are not reflected in this index. *)
          List.iter
            (fun (other_end, dl) ->
              let prio = d + dl + 1 in
              if prio <= eng.max_dist then begin
                eng.pee.insertions <- eng.pee.insertions + 1;
                PQ.insert eng.queue prio other_end
              end)
            (eng.dir.link_hops b l)
        end;
        true
      end

let stream_of_engine eng ~keep =
  let rec pull () =
    match Queue.take_opt eng.pending with
    | Some item -> if keep item then Some item else pull ()
    | None -> if step eng ~on_meta:(fun _ _ _ -> ()) then pull () else None
  in
  Result_stream.of_fn pull

let descendants ?tag ?(max_dist = max_int) ?(include_self = false) pee ~start =
  let eng = make_engine pee forward ~tag ~max_dist [ start ] in
  stream_of_engine eng ~keep:(fun it -> include_self || not (it.node = start && it.dist = 0))

let ancestors ?tag ?(max_dist = max_int) ?(include_self = false) pee ~start =
  let eng = make_engine pee backward ~tag ~max_dist [ start ] in
  stream_of_engine eng ~keep:(fun it -> include_self || not (it.node = start && it.dist = 0))

let descendants_multi ?tag ?(max_dist = max_int) pee ~starts =
  let eng = make_engine pee forward ~tag ~max_dist starts in
  stream_of_engine eng ~keep:(fun it -> it.dist > 0)

(* ------------------------------------------------------------------ *)
(* Exactly-ordered evaluation — the paper's future-work item
   "returning results exactly sorted instead of approximately"
   (Section 7). Three changes against the approximate engine turn the
   link expansion into a proper Dijkstra over (meta-internal shortest
   path, link) alternations:

   1. distance-aware entry coverage: a new entry [l] at priority [d] is
      dropped only when a previous entry [e'] at priority [d'] satisfies
      [d' + dist(e', l) <= d] — such an entry can neither improve any
      result nor any link continuation;
   2. results are held in a heap and emitted only once their distance
      is <= the smallest priority still in the element queue (every
      future candidate costs at least that much);
   3. duplicate elimination moves from entry-ancestor suppression to an
      emitted-set: the first emission of a node is provably its minimal
      candidate, later candidates can only be worse.

   The price is more queue traffic than the approximate engine — the
   ablation bench quantifies it. *)
type exact_engine = {
  xpee : t;
  xdir : direction;
  xtag : int option;
  xmax_dist : int;
  xqueue : int PQ.t;
  xresults : item PQ.t;
  xentries : (int, (int * int) list) Hashtbl.t; (* meta -> (local, prio) *)
  xemitted : (int, unit) Hashtbl.t;
}

let make_exact_engine pee dir ~tag ~max_dist starts =
  let e =
    {
      xpee = pee;
      xdir = dir;
      xtag = tag;
      xmax_dist = max_dist;
      xqueue = PQ.create ();
      xresults = PQ.create ();
      xentries = Hashtbl.create 16;
      xemitted = Hashtbl.create 64;
    }
  in
  List.iter
    (fun s ->
      pee.insertions <- pee.insertions + 1;
      PQ.insert e.xqueue 0 s)
    starts;
  e

let exact_step eng =
  match PQ.extract_min eng.xqueue with
  | None -> false
  | Some (d, node) ->
      if d > eng.xmax_dist then begin
        PQ.clear eng.xqueue;
        false
      end
      else begin
        let reg = eng.xpee.built.Index_builder.registry in
        let meta_id = reg.Meta_document.meta_of_node.(node) in
        let l = reg.Meta_document.local_of_node.(node) in
        let b = eng.xpee.built.Index_builder.indexes.(meta_id) in
        let idx = b.Index_builder.index in
        let prev = Option.value ~default:[] (Hashtbl.find_opt eng.xentries meta_id) in
        let covered =
          List.exists
            (fun (e', d') ->
              match eng.xdir.local_dist idx e' l with
              | Some dist -> d' + dist <= d
              | None -> false)
            prev
        in
        if covered then eng.xpee.entry_drops <- eng.xpee.entry_drops + 1
        else begin
          let m = b.Index_builder.meta in
          List.iter
            (fun (v, dv) ->
              let total = d + dv in
              let global = Meta_document.global_of_local m v in
              if total <= eng.xmax_dist && not (Hashtbl.mem eng.xemitted global) then
                PQ.insert eng.xresults total { node = global; dist = total; meta = meta_id })
            (eng.xdir.matches_in_meta idx l eng.xtag);
          Hashtbl.replace eng.xentries meta_id ((l, d) :: prev);
          List.iter
            (fun (other_end, dl) ->
              let prio = d + dl + 1 in
              if prio <= eng.xmax_dist then begin
                eng.xpee.insertions <- eng.xpee.insertions + 1;
                PQ.insert eng.xqueue prio other_end
              end)
            (eng.xdir.link_hops b l)
        end;
        true
      end

let exact_stream eng ~keep =
  (* Emit a result only when no unexplored element could still yield a
     smaller distance. *)
  let frontier_bound () =
    match PQ.peek_min eng.xqueue with Some (d, _) -> d | None -> max_int
  in
  let rec pull () =
    match PQ.peek_min eng.xresults with
    | Some (dist, _) when dist <= frontier_bound () -> begin
        match PQ.extract_min eng.xresults with
        | Some (_, item) ->
            if Hashtbl.mem eng.xemitted item.node then pull ()
            else begin
              Hashtbl.replace eng.xemitted item.node ();
              if keep item then Some item else pull ()
            end
        | None -> assert false
      end
    | Some _ | None -> if exact_step eng then pull () else drain ()
  and drain () =
    match PQ.extract_min eng.xresults with
    | None -> None
    | Some (_, item) ->
        if Hashtbl.mem eng.xemitted item.node then drain ()
        else begin
          Hashtbl.replace eng.xemitted item.node ();
          if keep item then Some item else drain ()
        end
  in
  Result_stream.of_fn pull

let descendants_exact ?tag ?(max_dist = max_int) ?(include_self = false) pee ~start =
  let eng = make_exact_engine pee forward ~tag ~max_dist [ start ] in
  exact_stream eng ~keep:(fun it -> include_self || not (it.node = start && it.dist = 0))

let ancestors_exact ?tag ?(max_dist = max_int) ?(include_self = false) pee ~start =
  let eng = make_exact_engine pee backward ~tag ~max_dist [ start ] in
  exact_stream eng ~keep:(fun it -> include_self || not (it.node = start && it.dist = 0))

(* Connection test (Section 5.2): same loop, but each visited meta
   document is probed directly for the target. *)
let connected ?(max_dist = max_int) pee a b =
  if a = b then Some 0
  else begin
    let reg = pee.built.Index_builder.registry in
    let target_meta = reg.Meta_document.meta_of_node.(b) in
    let target_local = reg.Meta_document.local_of_node.(b) in
    (* Tag -1 matches no element: the connection test needs no block
       results, only the link expansion and the per-meta distance probe. *)
    let eng = make_engine pee forward ~tag:(Some (-1)) ~max_dist [ a ] in
    let found = ref None in
    let on_meta d built l =
      if built.Index_builder.meta.Meta_document.id = target_meta then
        match built.Index_builder.index.Path_index.distance l target_local with
        | Some d' when d + d' <= max_dist -> begin
            match !found with
            | Some best when best <= d + d' -> ()
            | Some _ | None -> found := Some (d + d')
          end
        | Some _ | None -> ()
    in
    (* The first hit is an upper bound that is exact inside the meta
       document; continuing until the queue priority passes it would give
       the true minimum, but the paper returns on first discovery. *)
    while !found = None && step eng ~on_meta do
      Queue.clear eng.pending
    done;
    !found
  end

let connected_bidir ?(max_dist = max_int) pee a b =
  if a = b then true
  else begin
    let reg = pee.built.Index_builder.registry in
    (* Lockstep: forward search from [a] towards [b], backward search
       from [b] towards [a]; either engine finding its target decides. *)
    let fwd = make_engine pee forward ~tag:(Some (-1)) ~max_dist [ a ] in
    let bwd = make_engine pee backward ~tag:(Some (-1)) ~max_dist [ b ] in
    let target_meta_b = reg.Meta_document.meta_of_node.(b) in
    let target_local_b = reg.Meta_document.local_of_node.(b) in
    let target_meta_a = reg.Meta_document.meta_of_node.(a) in
    let target_local_a = reg.Meta_document.local_of_node.(a) in
    let found = ref false in
    let on_fwd d built l =
      if built.Index_builder.meta.Meta_document.id = target_meta_b then
        match built.Index_builder.index.Path_index.distance l target_local_b with
        | Some d' when d + d' <= max_dist -> found := true
        | Some _ | None -> ()
    in
    let on_bwd d built l =
      if built.Index_builder.meta.Meta_document.id = target_meta_a then
        match built.Index_builder.index.Path_index.distance target_local_a l with
        | Some d' when d + d' <= max_dist -> found := true
        | Some _ | None -> ()
    in
    let fwd_alive = ref true and bwd_alive = ref true in
    while (not !found) && (!fwd_alive || !bwd_alive) do
      if !fwd_alive then begin
        fwd_alive := step fwd ~on_meta:on_fwd;
        Queue.clear fwd.pending
      end;
      if (not !found) && !bwd_alive then begin
        bwd_alive := step bwd ~on_meta:on_bwd;
        Queue.clear bwd.pending
      end
    done;
    !found
  end

let queue_stats pee = (pee.insertions, pee.entry_drops)
