(** The Meta Document Builder (MDB): turns a collection into a set of
    meta documents according to a framework configuration.

    The four predefined configurations follow the paper (Section 4.3):

    - {b Naive}: every document is its own meta document. "Useful if
      documents are relatively large, the number of inter-document links
      is small, and queries usually do not cross document boundaries"
      (e.g. the INEX collection).
    - {b Maximal PPO}: greedily merge documents along inter-document
      links so that every meta document stays a {e tree} — possible when
      links point to root elements and no document gets two incoming
      accepted links and no cycle arises. The remaining links are
      followed at run time. "Useful if there are relatively few links in
      the collection, like currently in the DBLP collection."
    - {b Unconnected HOPI}: the first two steps of HOPI's
      divide-and-conquer build — partition the collection into bounded
      parts with few crossing edges and index the parts, skipping the
      final join. "Useful when most documents contain links."
    - {b Hybrid}: Maximal-PPO trees where they grow large enough, the
      rest partitioned as in Unconnected HOPI. "Suited best for mixed
      settings" like the paper's Figure 1.

    The four predefined builders work at document granularity (documents
    are never split); [Element_level] implements the future-work variant
    that partitions elements directly. *)

type config =
  | Naive
  | Maximal_ppo
  | Unconnected_hopi of { max_size : int }  (** bound in elements *)
  | Hybrid of { max_size : int; min_tree_size : int }
  | Element_level of { max_size : int }
      (** Section 7's future-work builder: partition the element graph
          directly, ignoring document boundaries. Parent-child edges
          that end up crossing partitions are followed at run time. *)
  | Spanning_ppo
      (** The paper's Maximal-PPO variant (1): "remove edges until the
          remaining graph forms a single tree and index it with PPO" —
          one collection-wide PPO meta document over a spanning forest,
          all removed links chased at run time. *)

val config_to_string : config -> string
val default_hybrid : config
(** [Hybrid { max_size = 5000; min_tree_size = 50 }]. *)

val build : config -> Fx_xml.Collection.t -> Meta_document.registry

(** {1 Introspection for tests and benches} *)

val doc_is_tree : Fx_xml.Collection.t -> bool array
(** Per document: has it no intra-document links (so its element graph
    is the element tree)? *)

val maximal_ppo_plan :
  Fx_xml.Collection.t -> int array * (int * int, unit) Hashtbl.t
(** The document-level partition of the Maximal-PPO greedy merge and the
    set of accepted (merged) links, keyed by (src, dst) global node
    pair. Exposed so property tests can check the forest invariant. *)
