module Collection = Fx_xml.Collection

type analysis = {
  n_docs : int;
  n_elements : int;
  mean_doc_size : float;
  links_per_doc : float;
  intra_link_share : float;
  root_link_share : float;
  tree_doc_share : float;
  linked_doc_share : float;
  mergeable_share : float;
}

let analyse c =
  let n_docs = Collection.n_docs c in
  let n_elements = Collection.n_nodes c in
  let links = Collection.links c in
  let n_links = List.length links in
  let n_intra = Collection.n_intra_links c in
  let root_links = ref 0 in
  let linked = Array.make (max 1 n_docs) false in
  List.iter
    (fun (l : Collection.link) ->
      if l.inter then begin
        linked.(Collection.doc_of_node c l.src) <- true;
        linked.(Collection.doc_of_node c l.dst) <- true;
        if l.dst = Collection.root_of_doc c (Collection.doc_of_node c l.dst) then
          incr root_links
      end)
    links;
  let tree_docs = Meta_builder.doc_is_tree c in
  let count p arr = Array.fold_left (fun a x -> if p x then a + 1 else a) 0 arr in
  (* Dry-run the greedy merge to see how much of the collection Maximal
     PPO would actually glue together. *)
  let doc_part, _ = Meta_builder.maximal_ppo_plan c in
  let class_size = Hashtbl.create 64 in
  Array.iter
    (fun p -> Hashtbl.replace class_size p (1 + Option.value ~default:0 (Hashtbl.find_opt class_size p)))
    doc_part;
  let merged =
    Array.fold_left
      (fun a p -> if Hashtbl.find class_size p > 1 then a + 1 else a)
      0 doc_part
  in
  let fdocs = float_of_int (max 1 n_docs) in
  let n_inter = n_links - n_intra in
  {
    n_docs;
    n_elements;
    mean_doc_size = float_of_int n_elements /. fdocs;
    links_per_doc = float_of_int n_links /. fdocs;
    intra_link_share =
      (if n_links = 0 then 0.0 else float_of_int n_intra /. float_of_int n_links);
    root_link_share =
      (if n_inter = 0 then 0.0 else float_of_int !root_links /. float_of_int n_inter);
    tree_doc_share = float_of_int (count Fun.id tree_docs) /. fdocs;
    linked_doc_share = float_of_int (count Fun.id linked) /. fdocs;
    mergeable_share = float_of_int merged /. fdocs;
  }

let pp_analysis ppf a =
  Format.fprintf ppf
    "@[<v>%d documents, %d elements (%.1f per document)@,\
     %.2f links per document (%.0f%% intra-document)@,\
     %.0f%% of inter-document links point at roots@,\
     %.0f%% link-free documents, %.0f%% touched by inter-document links@,\
     Maximal-PPO merge would absorb %.0f%% of the documents@]"
    a.n_docs a.n_elements a.mean_doc_size a.links_per_doc
    (100. *. a.intra_link_share) (100. *. a.root_link_share)
    (100. *. a.tree_doc_share) (100. *. a.linked_doc_share)
    (100. *. a.mergeable_share)

(* Decision table, in priority order (thresholds are conventional, not
   tuned to any particular benchmark):
   1. almost no inter-document links — intra links do not matter, the
      per-document indexes keep them                 -> Naive
   2. the greedy merge absorbs most of the collection
      (tree documents, root-targeted links)          -> Maximal PPO
   3. link-dense with no usable tree region          -> Unconnected HOPI
   4. part tree-like, part dense                     -> Hybrid          *)
let choose ?(max_size = 5000) a =
  if a.linked_doc_share < 0.1 then Meta_builder.Naive
  else if a.mergeable_share > 0.6 && a.tree_doc_share > 0.9 then Meta_builder.Maximal_ppo
  else if a.mergeable_share < 0.3 && a.linked_doc_share > 0.6 then
    Meta_builder.Unconnected_hopi { max_size }
  else Meta_builder.Hybrid { max_size; min_tree_size = 50 }

let configure ?max_size c = choose ?max_size (analyse c)
