(** A disk-resident B+-tree over a {!Pager} file: 62-bit integer keys,
    integer values, range scans over the leaf chain.

    This is the ordered-index substrate a database-backed FliX needs
    beyond plain label records: the disk deployment stores its
    tag directory as [(tag << 32) | node] keys, so
    "all nodes with tag w" is one range scan — the same trick the
    paper's Oracle schema plays with a composite-key table.

    Keys are unique; {!insert} overwrites. All structural invariants
    (sorted keys, balanced height, linked leaves) are maintained on
    every insert; the property tests in [test_store.ml] check the tree
    against a [Map] oracle including across close/reopen. Not
    crash-safe — like the label store, it is a rebuildable snapshot. *)

type t

val create : Pager.t -> t
(** Open the tree stored in the pager's file, or initialise an empty
    one in a fresh file.
    @raise Fx_util.Codec.Corrupt if the file is not a B+-tree. *)

val insert : t -> key:int -> value:int -> unit
(** Insert or overwrite. Keys must fit 62 bits ([0 <= key < 2^62]). *)

val find : t -> int -> int option

val range : t -> lo:int -> hi:int -> (int * int) list
(** All (key, value) with [lo <= key <= hi], ascending. *)

val iter_range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Streaming variant of {!range}. *)

val length : t -> int
val height : t -> int
(** Root-to-leaf page count; 1 for a leaf-only tree. *)
