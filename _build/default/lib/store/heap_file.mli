(** A log-structured heap of variable-length records over a {!Pager}
    file. Records are length-prefixed byte strings written sequentially,
    spanning page boundaries freely; a record's handle is its byte
    position. This is the "table" the disk-backed indexes store their
    labels in — the equivalent of the paper's database tables, minus the
    SQL. *)

type t
type handle = int
(** Byte position of the record; stable across reopen. *)

val create : Pager.t -> t
(** Wrap a pager; an empty file starts a fresh heap, otherwise the
    existing heap is resumed (the write cursor is recovered from the
    pager's page count and the trailer record). *)

val append : t -> string -> handle
(** Write a record at the end; O(record size / page size) page writes. *)

val read : t -> handle -> string
(** @raise Fx_util.Codec.Corrupt on an invalid handle or a mangled
    length prefix. *)

val size_bytes : t -> int
(** Bytes of record payload written (excluding page headers/slack). *)

val last_handle : t -> handle option
(** The most recently written record — a natural place for a directory
    trailer. Recovered on reopen. *)
