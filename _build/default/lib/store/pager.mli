(** A page file with an LRU buffer pool — the storage regime of the
    paper's evaluation, where every index lived in a database and each
    label probe paid for page fetches. The disk-backed index variants
    (see {!Fx_index.Disk_labels}) run on top of this, and the benches
    use the pool statistics to reproduce the cold/warm behaviour that
    dominates the paper's absolute numbers.

    Pages are fixed-size blocks addressed by index. Reads go through the
    pool; writes mark the cached page dirty and are written back on
    eviction or {!flush}. Not crash-safe (no WAL) — the stores built on
    it are write-once index snapshots, rebuildable from the collection. *)

type t

val create : ?pool_pages:int -> ?page_size:int -> string -> t
(** [create path] opens or creates the page file. [page_size] (default
    4096) must match the file if it already exists (it is recorded in a
    header page). [pool_pages] (default 256) bounds the buffer pool.
    Raises [Invalid_argument] on a page-size mismatch or a corrupt
    header; [Sys_error] on I/O failure. *)

val page_size : t -> int
val n_pages : t -> int
(** Data pages currently in the file (the header page is not counted). *)

val append_page : t -> int
(** Allocate a fresh zeroed page at the end; returns its index. *)

val read : t -> page:int -> offset:int -> len:int -> bytes
(** Read [len] bytes from one page (bounds-checked). *)

val write : t -> page:int -> offset:int -> bytes -> unit
(** Write within one page; the page stays dirty in the pool until
    eviction or {!flush}. *)

val flush : t -> unit
(** Write every dirty pooled page back and fsync. *)

val close : t -> unit
(** {!flush} then close the file descriptor. Using [t] afterwards raises. *)

type stats = {
  logical_reads : int;   (** page requests *)
  physical_reads : int;  (** requests that missed the pool *)
  physical_writes : int; (** page write-backs *)
}

val stats : t -> stats
val reset_stats : t -> unit
val drop_pool : t -> unit
(** Flush and empty the pool — a "cold cache" switch for benches. *)
