lib/store/pager.ml: Bytes Fx_util Lazy Printf String Unix
