lib/store/pager.mli:
