lib/store/btree.ml: Bytes Char Fx_util Int32 Int64 List Pager String
