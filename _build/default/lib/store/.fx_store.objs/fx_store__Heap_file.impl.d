lib/store/heap_file.ml: Bytes Fx_util Int32 Pager String
