lib/store/btree.mli: Pager
