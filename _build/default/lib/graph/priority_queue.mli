(** Binary min-heaps keyed by integer priorities.

    The FliX Path Expression Evaluator keeps intermediate elements ordered
    by ascending distance to the query's start node in exactly such a
    queue (paper, Section 5.1, Fig. 4). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val insert : 'a t -> int -> 'a -> unit
(** [insert q prio v] adds [v] with priority [prio]. *)

val extract_min : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest priority. Ties are
    broken arbitrarily but deterministically. *)

val peek_min : 'a t -> (int * 'a) option
val clear : 'a t -> unit
