lib/graph/transitive_closure.mli: Digraph
