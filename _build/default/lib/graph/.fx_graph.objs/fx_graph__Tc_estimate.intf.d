lib/graph/tc_estimate.mli: Digraph
