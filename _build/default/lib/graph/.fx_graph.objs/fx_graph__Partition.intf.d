lib/graph/partition.mli: Digraph
