lib/graph/tc_estimate.ml: Array Digraph Fx_util Scc
