lib/graph/priority_queue.ml: Array
