lib/graph/scc.ml: Array Digraph Stack
