lib/graph/priority_queue.mli:
