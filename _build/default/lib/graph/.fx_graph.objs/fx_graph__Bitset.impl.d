lib/graph/bitset.ml: Array Bytes Char List
