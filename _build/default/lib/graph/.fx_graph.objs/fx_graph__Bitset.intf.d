lib/graph/bitset.mli:
