lib/graph/partition.ml: Array Digraph Hashtbl List Option Queue
