lib/graph/transitive_closure.ml: Array Digraph List Traversal
