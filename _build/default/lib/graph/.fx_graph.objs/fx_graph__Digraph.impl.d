lib/graph/digraph.ml: Array Format Hashtbl Printf
