(** Graph traversals: BFS distances, DFS numbering, reachability, shortest
    paths and structural classification (forest / DAG tests).

    These are the reference algorithms against which every path index is
    validated, and the run-time machinery behind strategies that walk the
    data graph (APEX-style summary-pruned search). *)

val bfs_distances : Digraph.t -> int -> int array
(** [bfs_distances g s] is the array of shortest-path (hop) distances from
    [s]; unreachable nodes get [-1]. [dist.(s) = 0]. *)

val bfs_distances_from_set : Digraph.t -> int list -> int array
(** Multi-source BFS: distance to the closest source. *)

val reachable : Digraph.t -> int -> int -> bool
(** [reachable g u v] is true iff there is a directed path (possibly
    empty) from [u] to [v]; every node reaches itself. *)

val distance : Digraph.t -> int -> int -> int option
(** Shortest-path length from [u] to [v], [None] if unreachable.
    [distance g u u = Some 0]. *)

val shortest_path : Digraph.t -> int -> int -> int list option
(** The node sequence of one shortest path from [u] to [v], inclusive. *)

val descendants : Digraph.t -> int -> (int * int) list
(** [descendants g u] is the list of [(v, dist)] for all nodes reachable
    from [u] (including [u] at distance 0), sorted by ascending distance,
    ties by node id. This is the ground truth for [a//*] queries. *)

val descendants_by_tag : Digraph.t -> tag:int array -> int -> int option -> (int * int) list
(** [descendants_by_tag g ~tag u t] restricts {!descendants} to nodes
    whose tag equals [t] ([None] keeps every node). *)

type dfs_numbering = {
  pre : int array;        (** preorder rank *)
  post : int array;       (** postorder rank *)
  depth : int array;      (** depth below the forest root, roots at 0 *)
  parent : int array;     (** DFS tree parent, [-1] for roots *)
  order : int array;      (** nodes sorted by preorder rank *)
}

val dfs_forest : ?roots:int list -> Digraph.t -> dfs_numbering
(** Depth-first numbering of a graph. When [roots] is omitted, all nodes
    with in-degree zero are used as roots (in ascending order), followed
    by any still-unvisited nodes. On forests this yields the classic
    pre/postorder scheme of Grust's PPO index. *)

val is_forest : Digraph.t -> bool
(** True iff every node has at most one predecessor and the graph is
    acyclic, i.e. the graph is a forest of rooted trees. *)

val topological_order : Digraph.t -> int array option
(** Kahn's algorithm; [None] when the graph has a cycle. *)

val is_acyclic : Digraph.t -> bool
