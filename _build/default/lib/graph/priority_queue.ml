type 'a t = {
  mutable prio : int array;
  mutable data : 'a option array;
  mutable size : int;
}

let create () = { prio = Array.make 16 0; data = Array.make 16 None; size = 0 }
let is_empty q = q.size = 0
let length q = q.size

let grow q =
  let cap = Array.length q.prio in
  let prio = Array.make (2 * cap) 0 in
  let data = Array.make (2 * cap) None in
  Array.blit q.prio 0 prio 0 q.size;
  Array.blit q.data 0 data 0 q.size;
  q.prio <- prio;
  q.data <- data

let swap q i j =
  let p = q.prio.(i) in
  q.prio.(i) <- q.prio.(j);
  q.prio.(j) <- p;
  let d = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- d

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.prio.(parent) > q.prio.(i) then begin
      swap q parent i;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && q.prio.(l) < q.prio.(!smallest) then smallest := l;
  if r < q.size && q.prio.(r) < q.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let insert q prio v =
  if q.size = Array.length q.prio then grow q;
  q.prio.(q.size) <- prio;
  q.data.(q.size) <- Some v;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let extract_min q =
  if q.size = 0 then None
  else begin
    let p = q.prio.(0) in
    let v =
      match q.data.(0) with Some v -> v | None -> assert false
    in
    q.size <- q.size - 1;
    q.prio.(0) <- q.prio.(q.size);
    q.data.(0) <- q.data.(q.size);
    q.data.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    Some (p, v)
  end

let peek_min q =
  if q.size = 0 then None
  else
    match q.data.(0) with
    | Some v -> Some (q.prio.(0), v)
    | None -> assert false

let clear q =
  Array.fill q.data 0 q.size None;
  q.size <- 0
