(** Randomised estimation of reachability-set sizes and of the total
    transitive-closure size, after E. Cohen, "Size-estimation framework
    with applications to transitive closure and reachability", JCSS 1997.

    The FliX paper needs the size of a HOPI index before building it and
    notes that it "has to be estimated from the size of the transitive
    closure" using exactly this estimator — which the authors had not yet
    integrated ("for our current prototype we have not yet applied such
    elaborated methods"). We implement it: the Indexing Strategy Selector
    can consult it, and the benches use it to report estimated-vs-actual
    closure sizes.

    The estimator assigns each node an Exp(1) rank and propagates the
    minimum rank backwards over the condensation DAG; with [k] rounds the
    size of a reachability set is estimated as [(k-1) / sum of minima]
    (the unbiased estimator for exponential minima). *)

type t

val compute : ?rounds:int -> seed:int -> Digraph.t -> t
(** [compute ~seed g] runs [rounds] (default 32) propagation rounds.
    O(rounds · (n + m)). *)

val reach_size : t -> int -> float
(** Estimated cardinality of the reachability set of a node, including
    the node itself. *)

val closure_pairs : t -> float
(** Estimated number of reachable pairs [(u, v)], [u <> v] — the size of
    the transitive closure. *)
