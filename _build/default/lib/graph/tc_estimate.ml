type t = {
  rounds : int;
  min_sum : float array; (* per node: sum over rounds of the minimum rank in its reach set *)
}

let compute ?(rounds = 32) ~seed g =
  if rounds < 2 then invalid_arg "Tc_estimate.compute: rounds < 2";
  let n = Digraph.n_nodes g in
  let scc, dag = Scc.condensation g in
  let comp = scc.Scc.component in
  (* Nodes of one component share their reach set, so ranks and minima are
     propagated on the condensation. Component ids from Tarjan are in
     reverse topological order: successors of c have smaller ids, so a
     simple ascending sweep sees successors before their predecessors. *)
  let rng = Fx_util.Rng.create seed in
  let min_sum = Array.make n 0.0 in
  let comp_rank = Array.make scc.Scc.n_components infinity in
  for _round = 1 to rounds do
    (* Rank of a component = min Exp(1) rank of its member nodes. *)
    Array.fill comp_rank 0 (Array.length comp_rank) infinity;
    for v = 0 to n - 1 do
      let r = Fx_util.Rng.exponential rng in
      let c = comp.(v) in
      if r < comp_rank.(c) then comp_rank.(c) <- r
    done;
    for c = 0 to scc.Scc.n_components - 1 do
      Digraph.iter_succ dag c (fun c' ->
          if comp_rank.(c') < comp_rank.(c) then comp_rank.(c) <- comp_rank.(c'))
    done;
    for v = 0 to n - 1 do
      min_sum.(v) <- min_sum.(v) +. comp_rank.(comp.(v))
    done
  done;
  { rounds; min_sum }

let reach_size t v = float_of_int (t.rounds - 1) /. t.min_sum.(v)

let closure_pairs t =
  Array.fold_left (fun acc s -> acc +. (float_of_int (t.rounds - 1) /. s) -. 1.0) 0.0 t.min_sum
