type t = { n_components : int; component : int array }

(* Iterative Tarjan. Lowlink bookkeeping follows the classic formulation;
   the traversal stack stores (node, next-successor cursor). *)
let compute g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = Stack.create () in
  let counter = ref 0 in
  let n_components = ref 0 in
  let visit v0 =
    let call = Stack.create () in
    let push_node v =
      index.(v) <- !counter;
      lowlink.(v) <- !counter;
      incr counter;
      Stack.push v stack;
      on_stack.(v) <- true;
      Stack.push (v, ref 0, Digraph.succ g v) call
    in
    push_node v0;
    while not (Stack.is_empty call) do
      let v, next, adj = Stack.top call in
      if !next < Array.length adj then begin
        let w = adj.(!next) in
        incr next;
        if index.(w) = -1 then push_node w
        else if on_stack.(w) then
          lowlink.(v) <- min lowlink.(v) index.(w)
      end
      else begin
        ignore (Stack.pop call);
        if lowlink.(v) = index.(v) then begin
          let c = !n_components in
          incr n_components;
          let continue = ref true in
          while !continue do
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            component.(w) <- c;
            if w = v then continue := false
          done
        end;
        if not (Stack.is_empty call) then begin
          let parent, _, _ = Stack.top call in
          lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
        end
      end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  { n_components = !n_components; component }

let condensation g =
  let scc = compute g in
  let acc = ref [] in
  Digraph.iter_edges g (fun u v ->
      let cu = scc.component.(u) and cv = scc.component.(v) in
      if cu <> cv then acc := (cu, cv) :: !acc);
  (scc, Digraph.of_edges ~n:scc.n_components !acc)

let members scc =
  let out = Array.make scc.n_components [] in
  for v = Array.length scc.component - 1 downto 0 do
    let c = scc.component.(v) in
    out.(c) <- v :: out.(c)
  done;
  out
