(** Fixed-capacity bit sets over integers [0 .. n-1], backed by a [bytes]
    buffer. Used for dense membership tests during traversals and for the
    per-meta-document link-node sets of FliX. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val copy : t -> t
val iter : t -> (int -> unit) -> unit
val to_list : t -> int list
val of_list : int -> int list -> t

val inter_into : t -> t -> unit
(** [inter_into a b] replaces [a] with [a ∩ b]. Capacities must match. *)

val union_into : t -> t -> unit
(** [union_into a b] replaces [a] with [a ∪ b]. Capacities must match. *)

val equal : t -> t -> bool
val size_bytes : t -> int
