(** Graph partitioning with size bounds and small edge cuts.

    The HOPI divide-and-conquer index builder and FliX's Unconnected-HOPI
    meta-document configuration both need partitions that (a) respect a
    size bound and (b) cut few edges (paper, Sections 2.2 and 4.3). We use
    the standard greedy scheme: grow partitions by BFS over the
    undirected version of the graph up to the bound, then run a local
    refinement pass that moves boundary nodes to the neighbouring
    partition when that strictly reduces the cut without violating the
    bound. *)

type assignment = {
  part : int array;    (** partition id per node *)
  n_parts : int;
  sizes : int array;   (** node count per partition *)
}

val bounded_bfs : ?refine_passes:int -> max_size:int -> Digraph.t -> assignment
(** [bounded_bfs ~max_size g] partitions all nodes of [g] into parts of at
    most [max_size] nodes. [refine_passes] (default 2) boundary-refinement
    sweeps are applied afterwards. Raises [Invalid_argument] when
    [max_size < 1]. *)

val by_units :
  units:int array -> unit_weight:int array -> max_size:int -> Digraph.t -> assignment
(** [by_units ~units ~unit_weight ~max_size g] partitions at a coarser
    granularity: [units.(v)] assigns every node to a unit (e.g. its XML
    document) that must not be split. Units are grown greedily by BFS
    over the unit-level quotient graph until the accumulated
    [unit_weight] reaches [max_size]. Units heavier than [max_size] get a
    partition of their own. The returned assignment is per node. *)

val cut_size : Digraph.t -> int array -> int
(** Number of directed edges whose endpoints lie in different parts. *)

val cross_edges : Digraph.t -> int array -> (int * int) list
(** The edges counted by {!cut_size}. *)

val check_cover : n:int -> assignment -> bool
(** True when every node of a universe of size [n] has a valid partition
    id and the recorded sizes match. Used by tests. *)
