(** Compact immutable directed graphs in CSR (compressed sparse row) form.

    Nodes are dense integers [0 .. n-1]. Both forward (successor) and
    backward (predecessor) adjacency are materialised so that indexes can
    traverse either direction in O(degree). Parallel edges are collapsed;
    self-loops are kept (they occur in linked XML collections when an
    element references itself). *)

type t

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph with [n] nodes and the given
    directed edges. Duplicate edges are collapsed. Raises
    [Invalid_argument] if an endpoint is outside [0 .. n-1]. *)

val of_edges_array : n:int -> (int * int) array -> t
(** Array variant of {!of_edges}; does not mutate its argument. *)

val empty : int -> t
(** [empty n] is the graph with [n] nodes and no edges. *)

(** {1 Accessors} *)

val n_nodes : t -> int
val n_edges : t -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val succ : t -> int -> int array
(** [succ g u] is a fresh array of the successors of [u]. *)

val pred : t -> int -> int array

val iter_succ : t -> int -> (int -> unit) -> unit
(** [iter_succ g u f] applies [f] to every successor of [u] without
    allocating. *)

val iter_pred : t -> int -> (int -> unit) -> unit

val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val fold_pred : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] is true iff the edge [u -> v] exists. O(log deg u). *)

val iter_edges : t -> (int -> int -> unit) -> unit
val edges : t -> (int * int) list

(** {1 Derived graphs} *)

val reverse : t -> t
(** [reverse g] has an edge [v -> u] for every edge [u -> v] of [g]. *)

val induced : t -> int array -> t * int array
(** [induced g nodes] is the subgraph induced by the (distinct) global
    nodes [nodes], together with the mapping from local id to global id
    (which is [nodes] sorted). Edges with an endpoint outside [nodes] are
    dropped. *)

val map_nodes : t -> f:(int -> int) -> n:int -> t
(** [map_nodes g ~f ~n] renames every node [u] to [f u] in a graph with
    [n] nodes. [f] must be injective on the nodes of [g]. *)

val pp : Format.formatter -> t -> unit
