type t = { n : int; buf : Bytes.t }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; buf = Bytes.make ((n + 7) / 8) '\000' }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.buf (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.buf (i lsr 3)) in
  Bytes.set t.buf (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.buf (i lsr 3)) in
  Bytes.set t.buf (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let cardinal t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.buf;
  !acc

let is_empty t =
  let rec go i = i >= Bytes.length t.buf || (Bytes.get t.buf i = '\000' && go (i + 1)) in
  go 0

let clear t = Bytes.fill t.buf 0 (Bytes.length t.buf) '\000'
let copy t = { n = t.n; buf = Bytes.copy t.buf }

let iter t f =
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.get t.buf (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let inter_into a b =
  check_same a b;
  for i = 0 to Bytes.length a.buf - 1 do
    Bytes.set a.buf i
      (Char.chr (Char.code (Bytes.get a.buf i) land Char.code (Bytes.get b.buf i)))
  done

let union_into a b =
  check_same a b;
  for i = 0 to Bytes.length a.buf - 1 do
    Bytes.set a.buf i
      (Char.chr (Char.code (Bytes.get a.buf i) lor Char.code (Bytes.get b.buf i)))
  done

let equal a b = a.n = b.n && Bytes.equal a.buf b.buf
let size_bytes t = Bytes.length t.buf
