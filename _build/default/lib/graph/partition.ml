type assignment = { part : int array; n_parts : int; sizes : int array }

let cut_size g part =
  let cut = ref 0 in
  Digraph.iter_edges g (fun u v -> if part.(u) <> part.(v) then incr cut);
  !cut

let cross_edges g part =
  let acc = ref [] in
  Digraph.iter_edges g (fun u v -> if part.(u) <> part.(v) then acc := (u, v) :: !acc);
  List.rev !acc

let sizes_of part n_parts =
  let sizes = Array.make n_parts 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) part;
  sizes

(* One sweep of boundary refinement: move a node to the partition that
   hosts the majority of its (undirected) neighbours when this strictly
   reduces the number of cut edges incident to the node and the target
   partition has room. *)
let refine_pass g part sizes max_size =
  let n = Digraph.n_nodes g in
  let moved = ref 0 in
  let gain_tbl = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    Hashtbl.reset gain_tbl;
    let count p =
      Hashtbl.replace gain_tbl p (1 + Option.value ~default:0 (Hashtbl.find_opt gain_tbl p))
    in
    Digraph.iter_succ g v (fun w -> if w <> v then count part.(w));
    Digraph.iter_pred g v (fun w -> if w <> v then count part.(w));
    let home = part.(v) in
    let home_links = Option.value ~default:0 (Hashtbl.find_opt gain_tbl home) in
    let best = ref home and best_links = ref home_links in
    Hashtbl.iter
      (fun p links ->
        if p <> home && links > !best_links && sizes.(p) < max_size then begin
          best := p;
          best_links := links
        end)
      gain_tbl;
    if !best <> home then begin
      part.(v) <- !best;
      sizes.(home) <- sizes.(home) - 1;
      sizes.(!best) <- sizes.(!best) + 1;
      incr moved
    end
  done;
  !moved

let bounded_bfs ?(refine_passes = 2) ~max_size g =
  if max_size < 1 then invalid_arg "Partition.bounded_bfs: max_size < 1";
  let n = Digraph.n_nodes g in
  let part = Array.make n (-1) in
  let n_parts = ref 0 in
  let queue = Queue.create () in
  for seed = 0 to n - 1 do
    if part.(seed) = -1 then begin
      let p = !n_parts in
      incr n_parts;
      let size = ref 0 in
      Queue.clear queue;
      Queue.add seed queue;
      part.(seed) <- p;
      incr size;
      while (not (Queue.is_empty queue)) && !size < max_size do
        let u = Queue.pop queue in
        let try_take v =
          if part.(v) = -1 && !size < max_size then begin
            part.(v) <- p;
            incr size;
            Queue.add v queue
          end
        in
        Digraph.iter_succ g u try_take;
        Digraph.iter_pred g u try_take
      done
    end
  done;
  let sizes = sizes_of part !n_parts in
  let pass = ref 0 in
  let continue = ref true in
  while !continue && !pass < refine_passes do
    incr pass;
    if refine_pass g part sizes max_size = 0 then continue := false
  done;
  { part; n_parts = !n_parts; sizes }

let by_units ~units ~unit_weight ~max_size g =
  if max_size < 1 then invalid_arg "Partition.by_units: max_size < 1";
  let n = Digraph.n_nodes g in
  if Array.length units <> n then invalid_arg "Partition.by_units: units length";
  let n_units = Array.length unit_weight in
  (* Quotient graph over units. *)
  let quotient_edges = ref [] in
  Digraph.iter_edges g (fun u v ->
      if units.(u) <> units.(v) then quotient_edges := (units.(u), units.(v)) :: !quotient_edges);
  let qg = Digraph.of_edges ~n:n_units !quotient_edges in
  let unit_part = Array.make n_units (-1) in
  let n_parts = ref 0 in
  let queue = Queue.create () in
  for seed = 0 to n_units - 1 do
    if unit_part.(seed) = -1 then begin
      let p = !n_parts in
      incr n_parts;
      let weight = ref 0 in
      Queue.clear queue;
      Queue.add seed queue;
      unit_part.(seed) <- p;
      weight := unit_weight.(seed);
      while (not (Queue.is_empty queue)) && !weight < max_size do
        let u = Queue.pop queue in
        let try_take v =
          if unit_part.(v) = -1 && !weight + unit_weight.(v) <= max_size then begin
            unit_part.(v) <- p;
            weight := !weight + unit_weight.(v);
            Queue.add v queue
          end
        in
        Digraph.iter_succ qg u try_take;
        Digraph.iter_pred qg u try_take
      done
    end
  done;
  let part = Array.init n (fun v -> unit_part.(units.(v))) in
  { part; n_parts = !n_parts; sizes = sizes_of part !n_parts }

let check_cover ~n a =
  Array.length a.part = n
  && Array.for_all (fun p -> p >= 0 && p < a.n_parts) a.part
  && a.sizes = sizes_of a.part a.n_parts
