(** Strongly connected components (Tarjan, iterative) and graph
    condensation.

    Linked XML collections are general digraphs — citation and XLink
    cycles are common — so several algorithms (Cohen's transitive-closure
    size estimator, DAG-only indexes) first condense the graph. *)

type t = {
  n_components : int;
  component : int array;  (** component id per node, ids are reverse
                              topological: an edge of the condensation
                              goes from a higher id to a lower id *)
}

val compute : Digraph.t -> t

val condensation : Digraph.t -> t * Digraph.t
(** The component structure together with the condensed DAG whose nodes
    are component ids. *)

val members : t -> int list array
(** [members scc] lists the nodes of each component. *)
