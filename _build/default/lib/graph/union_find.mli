(** Disjoint-set forests with path compression and union by rank.

    Used by the Maximal-PPO meta-document builder to grow tree-shaped
    partitions without creating cycles (paper, Section 4.3). *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b]; returns [false] when
    they were already in the same class. *)

val same : t -> int -> int -> bool
val class_size : t -> int -> int
val n_classes : t -> int
