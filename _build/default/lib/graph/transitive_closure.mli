(** Materialised transitive closure with distances.

    This is the naive connection index the paper uses as the size
    yard-stick for HOPI ("more than an order of magnitude smaller than
    storing the complete transitive closure", Section 6). It doubles as
    the ground truth oracle in tests. Quadratic in the worst case — use
    {!Tc_estimate} for large graphs. *)

type t

val compute : Digraph.t -> t
(** BFS from every node. O(n·(n+m)) time. *)

val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option

val n_pairs : t -> int
(** Number of reachable pairs [(u, v)] with [u <> v]. *)

val reach_set : t -> int -> (int * int) list
(** [(v, dist)] pairs reachable from [u], ascending distance, excluding
    [u] itself. *)

val size_bytes : t -> int
(** Storage footprint under the same accounting used for every index:
    8 bytes per stored (target, distance) entry. *)
