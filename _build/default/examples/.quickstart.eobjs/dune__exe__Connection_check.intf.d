examples/connection_check.mli:
