examples/quickstart.ml: Fx_flix Fx_xml List Option Printf
