examples/persistent_index.ml: Array Filename Fx_index Fx_store Fx_workload Fx_xml List Printf String Sys Unix
