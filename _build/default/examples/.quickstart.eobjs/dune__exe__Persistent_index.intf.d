examples/persistent_index.mli:
