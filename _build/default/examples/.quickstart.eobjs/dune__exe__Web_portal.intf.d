examples/web_portal.mli:
