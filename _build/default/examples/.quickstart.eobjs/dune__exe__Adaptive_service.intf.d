examples/adaptive_service.mli:
