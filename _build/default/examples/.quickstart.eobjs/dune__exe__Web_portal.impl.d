examples/web_portal.ml: Fx_flix Fx_query Fx_workload Fx_xml List Option Printf
