examples/connection_check.ml: Fx_flix Fx_index Fx_workload Fx_xml List Printf
