examples/quickstart.mli:
