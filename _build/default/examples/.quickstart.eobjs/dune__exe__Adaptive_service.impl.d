examples/adaptive_service.ml: Array Fx_flix Fx_workload Fx_xml List Logs Printf
