examples/dblp_search.ml: Fx_flix Fx_query Fx_workload Fx_xml Lazy List Printf
