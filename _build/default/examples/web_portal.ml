(* Heterogeneous web portal — the paper's Figure 1 scenario: one part
   of the collection is a clean site hierarchy (tree of documents
   linked root-to-root), the other a densely interlinked wiki with
   idref cycles. The Hybrid configuration gives each part the index it
   deserves: PPO for the trees, Unconnected HOPI for the tangle.

     dune exec examples/web_portal.exe *)

module Flix = Fx_flix.Flix
module RS = Fx_flix.Result_stream
module C = Fx_xml.Collection
module Web = Fx_workload.Web_gen
module MB = Fx_flix.Meta_builder

let () =
  let params = { Web.default with n_tree_docs = 60; n_dense_docs = 30 } in
  let collection = Web.collection params in
  print_endline ("collection: " ^ C.stats collection);

  (* Compare what each configuration does with this mixed collection. *)
  List.iter
    (fun (label, config) ->
      let flix = Flix.build ~config collection in
      Printf.printf "\n[%s]\n%s" label (Flix.report flix))
    [
      ("naive", MB.Naive);
      ("maximal-ppo", MB.Maximal_ppo);
      ("hybrid", MB.Hybrid { max_size = 2000; min_tree_size = 40 });
    ];

  let flix = Flix.build ~config:(MB.Hybrid { max_size = 2000; min_tree_size = 40 }) collection in

  (* Query 1: all paragraphs below the site root — crosses the whole
     tree cluster through root-to-root links. *)
  let site_root = Option.get (Flix.node_of flix ~doc:(Web.tree_doc_name 0) ~anchor:None) in
  let paras = RS.take 8 (Flix.descendants flix ~start:site_root ~tag:"para") in
  Printf.printf "\nsite_000//para (first %d):\n" (List.length paras);
  List.iter (fun item -> print_endline ("  " ^ Flix.describe flix item)) paras;

  (* Query 2: start inside the cyclic wiki cluster; the PEE's entry-
     point bookkeeping keeps the cycles from producing duplicates. *)
  let wiki_root = Option.get (Flix.node_of flix ~doc:(Web.dense_doc_name 0) ~anchor:None) in
  let all = RS.to_list (Flix.descendants flix ~start:wiki_root ~tag:"para") in
  let distinct = List.sort_uniq compare (List.map (fun (i : Fx_flix.Pee.item) -> i.node) all) in
  Printf.printf "\nwiki_000//para: %d results, %d distinct (duplicate-free: %b)\n"
    (List.length all) (List.length distinct)
    (List.length all = List.length distinct);

  (* Query 3: vague query with structural relaxation — "/page/section/para"
     written by someone who does not know the schema uses chapter/div
     nesting in half the documents. *)
  (match Fx_query.Query_eval.top_k ~k:5 flix "/page/section/para" with
  | Ok results ->
      print_endline "\n/page/section/para relaxed to //page//section//para, top 5:";
      List.iter (fun r -> print_endline ("  " ^ Fx_query.Query_eval.describe flix r)) results
  | Error e -> prerr_endline e);

  (* Query 4: does the wiki reach the site tree? (the bridge links) *)
  match Flix.connected flix wiki_root site_root with
  | Some d -> Printf.printf "\nwiki_000 reaches site_000 at distance %d (bridge link)\n" d
  | None -> print_endline "\nwiki_000 cannot reach site_000"
