(* A long-running search service: result caching, query-load monitoring,
   self-tuning reconfiguration and incremental collection growth — the
   operational features from the paper's future-work list (Section 7),
   working together.

     dune exec examples/adaptive_service.exe *)

module Flix = Fx_flix.Flix
module MB = Fx_flix.Meta_builder
module RS = Fx_flix.Result_stream
module C = Fx_xml.Collection
module Dblp = Fx_workload.Dblp_gen

let () =
  (* Route framework logs to stderr so the build phases are visible. *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);

  (* Day 0: a modest archive, naively indexed (one meta document per
     publication — fine while nobody follows citations). *)
  let flix = ref (Flix.build ~config:MB.Naive (Dblp.collection { Dblp.default with n_docs = 400 })) in
  Printf.printf "service up:\n%s\n" (Flix.report !flix);

  (* The query log: users keep asking citation-chasing questions about a
     handful of hot publications. *)
  let monitor = ref (Fx_flix.Self_tuning.create (Flix.pee !flix)) in
  let cache = ref (Fx_flix.Query_cache.create (Flix.pee !flix)) in
  let hot =
    Fx_workload.Query_gen.descendant_queries (Flix.collection !flix) ~seed:5 ~count:6
      ~min_results:10
    |> List.map (fun (q : Fx_workload.Query_gen.query) -> q.start)
  in
  let article = C.tag_id (Flix.collection !flix) "article" in
  let serve start =
    (* The monitor sees every query; the cache answers repeats. *)
    ignore (RS.to_list (Fx_flix.Self_tuning.descendants !monitor ?tag:article ~start));
    ignore (RS.to_list (Fx_flix.Query_cache.descendants !cache ?tag:article ~start))
  in
  List.iter (fun _ -> List.iter serve hot) (List.init 5 (fun i -> i));
  let cs = Fx_flix.Query_cache.stats !cache in
  Printf.printf "after %d queries: cache hit rate %.0f%%\n" (cs.hits + cs.misses)
    (100.0 *. cs.hit_rate);

  (* The monitor notices the link chasing and recommends coarser meta
     documents; we apply it with an incremental rebuild. *)
  let s = Fx_flix.Self_tuning.summary !monitor in
  Printf.printf "query load: %.1f link hops per query, link pressure %.2f\n"
    s.mean_link_hops s.link_pressure;
  (match Fx_flix.Self_tuning.recommend ~pressure_threshold:0.5 !monitor ~current:MB.Naive with
  | Fx_flix.Self_tuning.Keep -> print_endline "self-tuning: configuration kept"
  | Fx_flix.Self_tuning.Rebuild config ->
      Printf.printf "self-tuning: rebuilding as %s\n" (MB.config_to_string config);
      flix := Flix.rebuild ~config !flix;
      monitor := Fx_flix.Self_tuning.create (Flix.pee !flix);
      cache := Fx_flix.Query_cache.create (Flix.pee !flix);
      Printf.printf "%s" (Flix.report !flix));

  (* Night batch: 40 new publications arrive. The incremental extend
     reuses every structurally unchanged meta-document index. *)
  let new_docs =
    Fx_workload.Dblp_gen.generate { Dblp.default with n_docs = 440; seed = 7 }
    |> List.filteri (fun i _ -> i >= 400)
  in
  flix := Flix.extend !flix new_docs;
  let b = Flix.built !flix in
  Printf.printf "\nextended by %d documents: %d/%d indexes reused\n%s"
    (List.length new_docs)
    (Fx_flix.Index_builder.reused_count b)
    (Array.length b.indexes) (Flix.report !flix);

  (* And the service keeps answering, now over the grown collection. *)
  let c = Flix.collection !flix in
  let q = Fx_workload.Query_gen.hub_query c ~tag:"article" in
  let results = RS.take 5 (Flix.descendants !flix ~start:q.start ~tag:"article") in
  Printf.printf "\n%s — first %d results:\n" q.label (List.length results);
  List.iter (fun r -> print_endline ("  " ^ Flix.describe !flix r)) results
