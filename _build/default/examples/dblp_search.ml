(* Bibliographic search over a DBLP-like collection — the scenario of
   the paper's evaluation: "determine all article descendants of
   Mohan's VLDB 99 paper about ARIES", i.e. follow citation links
   transitively and return the closest publications first.

     dune exec examples/dblp_search.exe *)

module Flix = Fx_flix.Flix
module RS = Fx_flix.Result_stream
module C = Fx_xml.Collection
module Dblp = Fx_workload.Dblp_gen
module Qg = Fx_workload.Query_gen

let () =
  (* A 1,200-publication synthetic DBLP slice (see Dblp_gen for how it
     mirrors the paper's extract). The Maximal-PPO configuration is the
     paper's recommendation for DBLP: "useful if there are relatively
     few links in the collection, like currently in the DBLP
     collection". *)
  let collection = Dblp.collection { Dblp.default with n_docs = 1200 } in
  print_endline ("collection: " ^ C.stats collection);
  let flix = Flix.build ~config:Fx_flix.Meta_builder.Maximal_ppo collection in
  print_string (Flix.report flix);

  (* The ARIES stand-in: the publication with the deepest transitive
     reference list. *)
  let hub = Qg.hub_query collection ~tag:"article" in
  Printf.printf "\nquery: %s  (%d results expected)\n" hub.label hub.n_reachable;

  (* Stream the ten closest article descendants — the paper's point is
     that these arrive long before the query finishes. *)
  print_endline "ten closest cited articles:";
  Flix.descendants flix ~start:hub.start ~tag:"article"
  |> RS.take 10
  |> List.iter (fun item -> print_endline ("  " ^ Flix.describe flix item));

  (* Ranked top-k with threshold termination (Fagin-style): relevance
     decays with citation distance, and the scan stops as soon as no
     future result can enter the top 5. *)
  let top, stats =
    Fx_query.Topk.by_distance ~k:5 ~params:Fx_query.Ranking.default
      (Flix.descendants flix ~start:hub.start ~tag:"article")
  in
  Printf.printf "\ntop-5 by relevance (pulled %d results%s):\n" stats.pulled
    (if stats.stopped_early then ", stopped early by threshold" else "");
  List.iter
    (fun ((item : Fx_flix.Pee.item), score) ->
      Printf.printf "  %.3f %s\n" score (Flix.describe flix item))
    top;

  (* Vague XPath through the relaxed-query evaluator: inproceedings are
     semantically close to articles, so the ontology widens the query. *)
  let options = Fx_query.Query_eval.with_ontology (Lazy.force Fx_query.Ontology.bibliographic) in
  (match Fx_query.Query_eval.top_k ~options ~k:5 flix "/article/author" with
  | Ok results ->
      print_endline "\n/article/author, relaxed (//~article//~author), top 5:";
      List.iter
        (fun r -> print_endline ("  " ^ Fx_query.Query_eval.describe flix r))
        results
  | Error e -> prerr_endline ("query error: " ^ e));

  (* Connection test between two random publications. *)
  let a = C.root_of_doc collection 1100 and b = C.root_of_doc collection 17 in
  (match Flix.connected flix a b with
  | Some d ->
      Printf.printf "\n%s transitively cites %s (distance %d)\n"
        (C.describe collection a) (C.describe collection b) d
  | None ->
      Printf.printf "\n%s does not cite %s, even transitively\n"
        (C.describe collection a) (C.describe collection b))
