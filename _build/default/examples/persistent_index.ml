(* Persistent indexes: build once, write to disk, reopen and serve
   queries without rebuilding — the database-backed deployment of the
   paper (whose indexes lived in Oracle tables), on our own pager,
   heap file and B+-tree.

     dune exec examples/persistent_index.exe *)

module C = Fx_xml.Collection
module Pi = Fx_index.Path_index
module Dblp = Fx_workload.Dblp_gen
module Qg = Fx_workload.Query_gen

let () =
  let dir = Filename.temp_file "flix_demo" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "dblp" in

  (* Build phase: collection -> HOPI -> disk. *)
  let collection = Dblp.collection { Dblp.default with n_docs = 800 } in
  print_endline ("collection: " ^ C.stats collection);
  let dg = { Pi.graph = C.graph collection; tag = C.tag collection } in
  let hopi = Fx_index.Hopi.build dg in
  Printf.printf "in-memory HOPI: %d label entries (%.2f MB)\n"
    (Fx_index.Hopi.entries hopi)
    (float_of_int (Fx_index.Hopi.size_bytes hopi) /. 1048576.0);
  Fx_index.Disk_hopi.save ~path dg hopi;
  let on_disk p = float_of_int (Unix.stat p).Unix.st_size /. 1048576.0 in
  Printf.printf "written: %s.labels (%.2f MB) + %s.tags (%.2f MB B+tree)\n" path
    (on_disk (path ^ ".labels")) path
    (on_disk (path ^ ".tags"));

  (* A "new process": open the files, no rebuild. *)
  let disk = Fx_index.Disk_hopi.open_ ~pool_pages:512 ~path () in
  let hub = Qg.hub_query collection ~tag:"article" in
  Printf.printf "\nquery %s from disk:\n" hub.label;
  let results =
    Fx_index.Disk_hopi.descendants_by_tag disk hub.start (C.tag_id collection "article")
  in
  List.iteri
    (fun i (node, dist) ->
      if i < 5 then
        Printf.printf "  %s at distance %d\n" (C.describe collection node) dist)
    results;
  Printf.printf "  ... %d results in total\n" (List.length results);
  let label_stats, tag_stats = Fx_index.Disk_hopi.stats disk in
  Printf.printf "buffer pools: %d label-page reads (%d from disk), %d tag-page reads\n"
    label_stats.Fx_store.Pager.logical_reads label_stats.Fx_store.Pager.physical_reads
    tag_stats.Fx_store.Pager.logical_reads;

  (* The serialized in-memory snapshot is the lighter-weight alternative
     when the whole index fits in RAM: one blob, loaded in one go. *)
  let blob = Fx_index.Two_hop.serialize (Fx_index.Hopi.labels hopi) in
  let snapshot = Filename.concat dir "labels.bin" in
  let oc = open_out_bin snapshot in
  output_string oc blob;
  close_out oc;
  let ic = open_in_bin snapshot in
  let loaded = Fx_index.Two_hop.deserialize (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Printf.printf "\nsnapshot: %.2f MB blob reloaded, spot check: %b\n"
    (float_of_int (String.length blob) /. 1048576.0)
    (Fx_index.Two_hop.distance loaded hub.start (List.hd results |> fst)
    = Fx_index.Disk_hopi.distance disk hub.start (List.hd results |> fst));

  Fx_index.Disk_hopi.close disk;
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) (Array.to_list (Sys.readdir dir));
  Sys.rmdir dir
