(* Quickstart: parse a few linked XML documents, build a FliX index and
   run descendant queries across document borders.

     dune exec examples/quickstart.exe *)

module Flix = Fx_flix.Flix
module RS = Fx_flix.Result_stream

let doc name body = Fx_xml.Xml_parser.parse_exn ~name body

let () =
  (* Three little documents: a catalogue that links to two movie pages,
     one of which links onwards to its sequel's page. *)
  let documents =
    [
      doc "catalogue"
        {|<catalogue>
            <entry xlink:href="matrix"><title>The Matrix</title></entry>
            <entry xlink:href="speed"><title>Speed</title></entry>
          </catalogue>|};
      doc "matrix"
        {|<movie id="m1">
            <title>The Matrix</title>
            <cast><actor>Reeves</actor><actor>Moss</actor></cast>
            <sequel xlink:href="speed"/>
          </movie>|};
      doc "speed"
        {|<movie id="m2">
            <title>Speed</title>
            <cast><actor>Reeves</actor><actor>Bullock</actor></cast>
          </movie>|};
    ]
  in
  let collection = Fx_xml.Collection.build documents in
  print_endline ("collection: " ^ Fx_xml.Collection.stats collection);

  (* Build phase: meta documents, strategy selection, indexes. *)
  let flix = Flix.build collection in
  print_string (Flix.report flix);

  (* Query phase: all actor descendants of the catalogue root. The two
     hops catalogue -> movie page -> cast -> actor cross document
     borders through the XLinks. *)
  let start = Option.get (Flix.node_of flix ~doc:"catalogue" ~anchor:None) in
  print_endline "\ncatalogue//actor:";
  Flix.descendants flix ~start ~tag:"actor"
  |> RS.to_list
  |> List.iter (fun item -> print_endline ("  " ^ Flix.describe flix item));

  (* Streaming: take just the closest match and stop. *)
  print_endline "\nfirst actor only (stream stops early):";
  (match RS.next (Flix.descendants flix ~start ~tag:"actor") with
  | Some item -> print_endline ("  " ^ Flix.describe flix item)
  | None -> print_endline "  none");

  (* Connection test with distance. *)
  let matrix = Option.get (Flix.node_of flix ~doc:"matrix" ~anchor:(Some "m1")) in
  let speed = Option.get (Flix.node_of flix ~doc:"speed" ~anchor:(Some "m2")) in
  (match Flix.connected flix matrix speed with
  | Some d -> Printf.printf "\nmatrix#m1 reaches speed#m2 at distance %d\n" d
  | None -> print_endline "\nmatrix#m1 does not reach speed#m2");
  Printf.printf "speed#m2 reaches matrix#m1: %b\n"
    (Flix.connected flix speed matrix <> None)
