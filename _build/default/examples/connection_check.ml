(* Connection tests at scale — the paper's second experiment family
   (Section 5.2 / end of Section 6): decide whether two elements are
   connected, and at what distance, without materialising result sets.
   Also demonstrates the bidirectional variant and the structural
   summaries (DataGuide / APEX label paths) on the same data.

     dune exec examples/connection_check.exe *)

module Flix = Fx_flix.Flix
module C = Fx_xml.Collection
module Dblp = Fx_workload.Dblp_gen
module Qg = Fx_workload.Query_gen

let () =
  let collection = Dblp.collection { Dblp.default with n_docs = 800 } in
  print_endline ("collection: " ^ C.stats collection);
  let flix =
    Flix.build ~config:(Fx_flix.Meta_builder.Unconnected_hopi { max_size = 4000 }) collection
  in
  print_string (Flix.report flix);

  (* Twenty sampled pairs with ground truth; the PEE must agree on
     reachability and report a distance no smaller than the true one. *)
  let pairs = Qg.connection_pairs collection ~seed:41 ~count:20 ~connected_fraction:0.6 in
  print_endline "\npair connection tests (PEE vs BFS ground truth):";
  List.iter
    (fun (a, b, truth) ->
      let got = Flix.connected ~max_dist:64 flix a b in
      let show = function None -> "-" | Some d -> string_of_int d in
      Printf.printf "  %-34s -> %-34s  true:%-3s flix:%-3s bidir:%b\n"
        (C.describe collection a) (C.describe collection b) (show truth) (show got)
        (Flix.connected_bidir ~max_dist:64 flix a b))
    pairs;

  (* The client-side threshold of Section 5.2: relevance below the
     cut-off is negligible, so the search is depth-bounded. *)
  let hub = Qg.hub_query collection ~tag:"article" in
  let far = C.root_of_doc collection 0 in
  Printf.printf "\ndistance threshold demo (start: %s):\n" (C.describe collection hub.start);
  List.iter
    (fun limit ->
      match Flix.connected ~max_dist:limit flix hub.start far with
      | Some d -> Printf.printf "  max_dist=%-3d  found at distance %d\n" limit d
      | None -> Printf.printf "  max_dist=%-3d  not found within bound\n" limit)
    [ 2; 4; 8; 16; 32 ];

  (* Structural summaries over the same collection: the strong
     DataGuide enumerates the label paths that actually occur — the
     "query formulation" aid of Goldman & Widom. *)
  let dg =
    { Fx_index.Path_index.graph = C.tree_graph collection; tag = C.tag collection }
  in
  let roots = List.init (C.n_docs collection) (fun d -> C.root_of_doc collection d) in
  (match Fx_index.Dataguide.build dg ~roots with
  | Some guide ->
      Printf.printf "\nDataGuide: %d states for %d elements; label paths:\n"
        (Fx_index.Dataguide.n_states guide)
        (C.n_nodes collection);
      Fx_index.Dataguide.paths guide ~tag_name:(C.tag_name collection) ~max:12
      |> List.iter (fun p -> print_endline ("  " ^ p))
  | None -> print_endline "\nDataGuide exceeded its state budget");

  (* APEX answers pure label-path queries from extents alone. *)
  let apex = Fx_index.Apex.build { dg with graph = C.graph collection } in
  let hits =
    Fx_index.Apex.eval_label_path apex [ "inproceedings"; "cite" ]
      ~tag_id:(C.tag_id collection)
  in
  Printf.printf "\nAPEX //inproceedings//cite: %d matching elements (summary-only evaluation)\n"
    (List.length hits)
