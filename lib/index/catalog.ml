module Codec = Fx_util.Codec
module C = Fx_xml.Collection

(* A serving catalog is everything a disk-backed query server needs
   from the collection that the index files themselves do not carry:
   tag names, document roots, and anchor ids — all resolved to global
   node ids at save time. It is tiny next to the label store, so it is
   one flat Codec blob, not a paged file. All lookup structures are
   built once at load and only read afterwards, so a catalog is safe to
   share across worker domains. *)

type t = {
  n_nodes : int;
  tag_names : string array;
  tag_ids : (string, int) Hashtbl.t;
  docs : (string * int) array; (* (name, root node) in collection order *)
  doc_roots : (string, int) Hashtbl.t;
  anchors : (string * string, int) Hashtbl.t; (* (doc name, id) -> node *)
}

let magic = "fxcat1"

let index_tables names_roots anchor_list =
  let doc_roots = Hashtbl.create (2 * Array.length names_roots) in
  Array.iter (fun (name, root) -> Hashtbl.replace doc_roots name root) names_roots;
  let anchors = Hashtbl.create (2 * (1 + List.length anchor_list)) in
  List.iter (fun (key, node) -> Hashtbl.replace anchors key node) anchor_list;
  doc_roots, anchors

let of_collection c =
  let tag_names = Array.init (C.n_tags c) (C.tag_name c) in
  let tag_ids = Hashtbl.create (2 * Array.length tag_names) in
  Array.iteri (fun i name -> Hashtbl.replace tag_ids name i) tag_names;
  let docs = Array.init (C.n_docs c) (fun d -> (C.doc_name c d, C.root_of_doc c d)) in
  let anchor_list = C.anchors c in
  let doc_roots, anchors = index_tables docs anchor_list in
  { n_nodes = C.n_nodes c; tag_names; tag_ids; docs; doc_roots; anchors }

let save ~path t =
  let w = Codec.Writer.create ~magic in
  Codec.Writer.int w t.n_nodes;
  Codec.Writer.int w (Array.length t.tag_names);
  Array.iter (Codec.Writer.string w) t.tag_names;
  Codec.Writer.int w (Array.length t.docs);
  Array.iter
    (fun (name, root) ->
      Codec.Writer.string w name;
      Codec.Writer.int w root)
    t.docs;
  Codec.Writer.int w (Hashtbl.length t.anchors);
  Hashtbl.iter
    (fun (doc, id) node ->
      Codec.Writer.string w doc;
      Codec.Writer.string w id;
      Codec.Writer.int w node)
    t.anchors;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Codec.Writer.contents w))

let corrupt msg = raise (Codec.Corrupt ("Catalog: " ^ msg))

let counted ~what r =
  let n = Codec.Reader.int r in
  if n < 0 then corrupt ("negative " ^ what ^ " count");
  n

let load path =
  let ic = open_in_bin path in
  let blob =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Codec.Reader.create ~magic blob in
  let n_nodes = Codec.Reader.int r in
  if n_nodes < 0 then corrupt "negative node count";
  let check_node v = if v < 0 || v >= n_nodes then corrupt "node id out of range" in
  let n_tags = counted ~what:"tag" r in
  let tag_names = Array.init n_tags (fun _ -> Codec.Reader.string r) in
  let tag_ids = Hashtbl.create (2 * n_tags) in
  Array.iteri (fun i name -> Hashtbl.replace tag_ids name i) tag_names;
  let n_docs = counted ~what:"document" r in
  let docs =
    Array.init n_docs (fun _ ->
        let name = Codec.Reader.string r in
        let root = Codec.Reader.int r in
        check_node root;
        (name, root))
  in
  let n_anchors = counted ~what:"anchor" r in
  let anchor_list =
    List.init n_anchors (fun _ ->
        let doc = Codec.Reader.string r in
        let id = Codec.Reader.string r in
        let node = Codec.Reader.int r in
        check_node node;
        ((doc, id), node))
  in
  Codec.Reader.expect_end r;
  let doc_roots, anchors = index_tables docs anchor_list in
  { n_nodes; tag_names; tag_ids; docs; doc_roots; anchors }

let n_nodes t = t.n_nodes
let n_docs t = Array.length t.docs
let n_tags t = Array.length t.tag_names
let tag_id t name = Hashtbl.find_opt t.tag_ids name
let tag_name t i = t.tag_names.(i)
let doc_names t = Array.to_list (Array.map fst t.docs)

let node_of t ~doc ~anchor =
  match anchor with
  | None -> Hashtbl.find_opt t.doc_roots doc
  | Some id -> Hashtbl.find_opt t.anchors (doc, id)
