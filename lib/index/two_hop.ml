module Digraph = Fx_graph.Digraph
module Tc_estimate = Fx_graph.Tc_estimate

(* Growable int-pair buffer: (hop rank, distance) appended in processing
   order, hence sorted by hop rank — queries merge-join two such arrays. *)
module Vec = struct
  type t = { mutable hop : int array; mutable dist : int array; mutable len : int }

  let create () = { hop = [||]; dist = [||]; len = 0 }

  let push v h d =
    if v.len = Array.length v.hop then begin
      let cap = max 4 (2 * v.len) in
      let hop = Array.make cap 0 and dist = Array.make cap 0 in
      Array.blit v.hop 0 hop 0 v.len;
      Array.blit v.dist 0 dist 0 v.len;
      v.hop <- hop;
      v.dist <- dist
    end;
    v.hop.(v.len) <- h;
    v.dist.(v.len) <- d;
    v.len <- v.len + 1
end

type t = {
  n : int;
  rank_of : int array;      (* node -> processing rank *)
  node_of : int array;      (* rank -> node *)
  in_lab : Vec.t array;     (* L_in(v): hops that reach v *)
  out_lab : Vec.t array;    (* L_out(v): hops v reaches *)
}

(* Merge-join of L_out(x) and L_in(y), both sorted by hop rank. *)
let query_dist t x y =
  if x = y then 0
  else begin
    let ox = t.out_lab.(x) and iy = t.in_lab.(y) in
    let best = ref max_int in
    let i = ref 0 and j = ref 0 in
    while !i < ox.Vec.len && !j < iy.Vec.len do
      let hi = ox.Vec.hop.(!i) and hj = iy.Vec.hop.(!j) in
      if hi = hj then begin
        let d = ox.Vec.dist.(!i) + iy.Vec.dist.(!j) in
        if d < !best then best := d;
        incr i;
        incr j
      end
      else if hi < hj then incr i
      else incr j
    done;
    !best
  end

(* Landmark order: descending estimated |ancestors(v)| * |descendants(v)|
   — the number of reachable pairs a hop at [v] can cover, i.e. the
   greedy objective of Cohen et al.'s 2-hop cover construction. The set
   sizes come from Cohen's own randomised reach-size estimator, so the
   order costs O(rounds * (n + m)). On a path this yields the midpoint-
   first bisection order (near-linear labels); on hub-shaped XML graphs
   it picks the hubs first, like the degree heuristic. *)
let default_order g =
  let n = Digraph.n_nodes g in
  let nodes = Array.init n (fun i -> i) in
  if n > 1 then begin
    let fwd = Tc_estimate.compute ~rounds:8 ~seed:0x2b0b g in
    let bwd = Tc_estimate.compute ~rounds:8 ~seed:0x2b0c (Digraph.reverse g) in
    let weight v = Tc_estimate.reach_size fwd v *. Tc_estimate.reach_size bwd v in
    let w = Array.init n weight in
    Array.sort
      (fun a b ->
        match Float.compare w.(b) w.(a) with 0 -> Int.compare a b | c -> c)
      nodes
  end;
  nodes

let build ?order g =
  let n = Digraph.n_nodes g in
  let node_of = match order with Some o -> Array.copy o | None -> default_order g in
  if Array.length node_of <> n then invalid_arg "Two_hop.build: order length mismatch";
  let rank_of = Array.make n (-1) in
  Array.iteri
    (fun r v ->
      if v < 0 || v >= n || rank_of.(v) <> -1 then
        invalid_arg "Two_hop.build: order is not a permutation";
      rank_of.(v) <- r)
    node_of;
  let in_lab = Array.init n (fun _ -> Vec.create ()) in
  let out_lab = Array.init n (fun _ -> Vec.create ()) in
  let t = { n; rank_of; node_of; in_lab; out_lab } in
  let dist = Array.make n (-1) in
  let touched = ref [] in
  let queue = Queue.create () in
  (* One pruned BFS; [labels] receives (hop rank, d) for every kept node,
     [next] enumerates the traversal direction, [q] answers the pruning
     query for the current landmark. *)
  let pruned_bfs root rank ~next ~q ~labels =
    Queue.clear queue;
    dist.(root) <- 0;
    touched := [ root ];
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let d = dist.(u) in
      (* Prune when an earlier landmark already certifies a path of
         length <= d; the landmark itself (d = 0, u = root) never is. *)
      if u = root || q u > d then begin
        Vec.push labels.(u) rank d;
        next u (fun w ->
            if dist.(w) = -1 then begin
              dist.(w) <- d + 1;
              touched := w :: !touched;
              Queue.add w queue
            end)
      end
    done;
    List.iter (fun v -> dist.(v) <- -1) !touched
  in
  for rank = 0 to n - 1 do
    let lm = node_of.(rank) in
    (* Forward BFS: lm reaches u, so lm enters L_in(u). *)
    pruned_bfs lm rank
      ~next:(fun u f -> Digraph.iter_succ g u f)
      ~q:(fun u -> query_dist t lm u)
      ~labels:in_lab;
    (* Backward BFS: u reaches lm, so lm enters L_out(u). *)
    pruned_bfs lm rank
      ~next:(fun u f -> Digraph.iter_pred g u f)
      ~q:(fun u -> query_dist t u lm)
      ~labels:out_lab
  done;
  t

(* Weighted variant: the same pruned landmark labeling with Dijkstra
   in place of BFS, over an explicit (src, dst, weight >= 0) edge list.
   The pruning rule is unchanged — an entry is redundant whenever an
   earlier landmark already certifies a path no longer than the settled
   distance — and its exactness argument never uses unit weights, so
   the oracle stays exact. Label entries still land in ascending hop
   rank (one landmark per outer iteration, at most one entry per node
   per run), so [query_dist], [serialize] and [deserialize] are shared
   verbatim with the unit-weight build. *)
let build_weighted ?order ~n edges =
  Array.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Two_hop.build_weighted: edge endpoint out of range";
      if w < 0 then invalid_arg "Two_hop.build_weighted: negative edge weight")
    edges;
  let node_of =
    match order with
    | Some o -> Array.copy o
    | None ->
        (* The coverage estimator only needs who-reaches-whom, which
           the weights do not change: rank on the unit topology. *)
        default_order
          (Digraph.of_edges_array ~n (Array.map (fun (u, v, _) -> (u, v)) edges))
  in
  if Array.length node_of <> n then
    invalid_arg "Two_hop.build_weighted: order length mismatch";
  let rank_of = Array.make n (-1) in
  Array.iteri
    (fun r v ->
      if v < 0 || v >= n || rank_of.(v) <> -1 then
        invalid_arg "Two_hop.build_weighted: order is not a permutation";
      rank_of.(v) <- r)
    node_of;
  let fwd = Array.make n [] and bwd = Array.make n [] in
  Array.iter
    (fun (u, v, w) ->
      fwd.(u) <- (v, w) :: fwd.(u);
      bwd.(v) <- (u, w) :: bwd.(v))
    edges;
  let in_lab = Array.init n (fun _ -> Vec.create ()) in
  let out_lab = Array.init n (fun _ -> Vec.create ()) in
  let t = { n; rank_of; node_of; in_lab; out_lab } in
  let module PQ = Fx_graph.Priority_queue in
  let dist = Array.make n max_int in
  let pq = PQ.create () in
  let touched = ref [] in
  let pruned_dijkstra root rank ~adj ~q ~labels =
    PQ.clear pq;
    dist.(root) <- 0;
    touched := [ root ];
    PQ.insert pq 0 root;
    let rec drain () =
      match PQ.extract_min pq with
      | None -> ()
      | Some (d, u) ->
          (* Lazy deletion: every insert strictly lowers [dist.(u)], so
             exactly one queue entry carries the settled distance and
             the stale ones test strictly greater. *)
          if d = dist.(u) then
            if u = root || q u > d then begin
              Vec.push labels.(u) rank d;
              List.iter
                (fun (v, w) ->
                  let dv = d + w in
                  if dv < dist.(v) then begin
                    if dist.(v) = max_int then touched := v :: !touched;
                    dist.(v) <- dv;
                    PQ.insert pq dv v
                  end)
                adj.(u)
            end;
          drain ()
    in
    drain ();
    List.iter (fun v -> dist.(v) <- max_int) !touched
  in
  for rank = 0 to n - 1 do
    let lm = node_of.(rank) in
    pruned_dijkstra lm rank ~adj:fwd ~q:(fun u -> query_dist t lm u) ~labels:in_lab;
    pruned_dijkstra lm rank ~adj:bwd ~q:(fun u -> query_dist t u lm) ~labels:out_lab
  done;
  t

let distance t x y =
  let d = query_dist t x y in
  if d = max_int then None else Some d

let reachable t x y = query_dist t x y < max_int

let entries t =
  let sum = ref 0 in
  Array.iter (fun v -> sum := !sum + v.Vec.len) t.in_lab;
  Array.iter (fun v -> sum := !sum + v.Vec.len) t.out_lab;
  !sum

let size_bytes t = 8 * entries t

let max_label t =
  let m = ref 0 in
  Array.iter (fun v -> if v.Vec.len > !m then m := v.Vec.len) t.in_lab;
  Array.iter (fun v -> if v.Vec.len > !m then m := v.Vec.len) t.out_lab;
  !m

(* --- persistence --------------------------------------------------- *)

let magic = "flix-2hop-v1"

let serialize t =
  let w = Fx_util.Codec.Writer.create ~magic in
  let module W = Fx_util.Codec.Writer in
  W.int w t.n;
  W.int_array w t.rank_of;
  W.int_array w t.node_of;
  let write_labels labels =
    Array.iter
      (fun (v : Vec.t) ->
        W.int w v.Vec.len;
        for i = 0 to v.Vec.len - 1 do
          W.int w v.Vec.hop.(i);
          W.int w v.Vec.dist.(i)
        done)
      labels
  in
  write_labels t.in_lab;
  write_labels t.out_lab;
  W.contents w

let deserialize data =
  let module R = Fx_util.Codec.Reader in
  let r = R.create ~magic data in
  let n = R.int r in
  if n < 0 then raise (Fx_util.Codec.Corrupt "negative node count");
  let rank_of = R.int_array r in
  let node_of = R.int_array r in
  if Array.length rank_of <> n || Array.length node_of <> n then
    raise (Fx_util.Codec.Corrupt "rank/node table length mismatch");
  Array.iter
    (fun v ->
      if v < 0 || v >= n then raise (Fx_util.Codec.Corrupt "rank out of range"))
    rank_of;
  Array.iteri
    (fun rank v ->
      if v < 0 || v >= n || rank_of.(v) <> rank then
        raise (Fx_util.Codec.Corrupt "node table is not the inverse permutation"))
    node_of;
  let read_labels () =
    Array.init n (fun _ ->
        let len = R.int r in
        if len < 0 then raise (Fx_util.Codec.Corrupt "negative label length");
        let vec = Vec.create () in
        for _ = 1 to len do
          let hop = R.int r in
          let dist = R.int r in
          if hop < 0 || hop >= n || dist < 0 then
            raise (Fx_util.Codec.Corrupt "label entry out of range");
          Vec.push vec hop dist
        done;
        vec)
  in
  let in_lab = read_labels () in
  let out_lab = read_labels () in
  R.expect_end r;
  { n; rank_of; node_of; in_lab; out_lab }

let raw_label vec =
  Array.init vec.Vec.len (fun i -> (vec.Vec.hop.(i), vec.Vec.dist.(i)))

let raw_in_label t v = raw_label t.in_lab.(v)
let raw_out_label t v = raw_label t.out_lab.(v)
let n_nodes t = t.n

let label_nodes t vec =
  List.init vec.Vec.len (fun i -> t.node_of.(vec.Vec.hop.(i)))

let in_label_nodes t v = label_nodes t t.in_lab.(v)
let out_label_nodes t v = label_nodes t t.out_lab.(v)
