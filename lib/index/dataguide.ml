module Digraph = Fx_graph.Digraph

type state = {
  id : int;
  target : int array;                   (* data nodes, sorted *)
  mutable children : (int * int) list;  (* tag -> state id *)
}

type t = {
  dg : Path_index.data_graph;
  states : state array;
  root_children : (int * int) list;     (* tag of a root -> state id *)
}

module Tbl = Hashtbl

exception Too_big

let group_by_tag (dg : Path_index.data_graph) nodes =
  let by_tag = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let w = dg.tag.(v) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_tag w) in
      Hashtbl.replace by_tag w (v :: cur))
    nodes;
  Hashtbl.fold
    (fun w vs acc -> (w, Array.of_list (List.sort_uniq Int.compare vs)) :: acc)
    by_tag []

let build ?max_states (dg : Path_index.data_graph) ~roots =
  let g = dg.graph in
  let n = Digraph.n_nodes g in
  let max_states = Option.value max_states ~default:(64 * max 1 n) in
  let states = ref [] in
  let n_states = ref 0 in
  let by_target : (int array, int) Tbl.t = Tbl.create 64 in
  let queue = Queue.create () in
  let state_of target =
    match Tbl.find_opt by_target target with
    | Some id -> (id, false)
    | None ->
        let s = { id = !n_states; target; children = [] } in
        incr n_states;
        if !n_states > max_states then raise Too_big;
        states := s :: !states;
        Tbl.add by_target target s.id;
        Queue.add s queue;
        (s.id, true)
  in
  try
    (* Synthetic super-root: one transition per distinct root tag. *)
    let root_children =
      List.map (fun (w, target) -> (w, fst (state_of target))) (group_by_tag dg roots)
    in
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      let succs =
        Array.fold_left
          (fun acc u -> Digraph.fold_succ g u (fun acc v -> v :: acc) acc)
          [] s.target
      in
      s.children <-
        List.map (fun (w, target) -> (w, fst (state_of target))) (group_by_tag dg succs)
    done;
    let arr = Array.make (max 1 !n_states) { id = 0; target = [||]; children = [] } in
    List.iter (fun s -> arr.(s.id) <- s) !states;
    Some { dg; states = arr; root_children }
  with Too_big -> None

let n_states t = Array.length t.states

let targets_of_path t ~tag_id path =
  let step children label =
    match tag_id label with
    | None -> None
    | Some w -> List.assoc_opt w children
  in
  match path with
  | [] -> []
  | first :: rest -> begin
      match step t.root_children first with
      | None -> []
      | Some sid ->
          let rec go sid = function
            | [] -> Array.to_list t.states.(sid).target
            | label :: rest -> begin
                match step t.states.(sid).children label with
                | None -> []
                | Some next -> go next rest
              end
          in
          go sid rest
    end

let paths t ~tag_name ~max =
  (* BFS over guide states, recording one label path per state. *)
  let acc = ref [] in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter (fun (w, sid) -> Queue.add ("/" ^ tag_name w, sid) queue) t.root_children;
  while (not (Queue.is_empty queue)) && !count < max do
    let path, sid = Queue.pop queue in
    if not (Hashtbl.mem seen sid) then begin
      Hashtbl.add seen sid ();
      acc := path :: !acc;
      incr count;
      List.iter
        (fun (w, next) -> Queue.add (path ^ "/" ^ tag_name w, next) queue)
        t.states.(sid).children
    end
  done;
  List.rev !acc

let size_bytes t =
  Array.fold_left
    (fun acc s -> acc + (8 * Array.length s.target) + (8 * List.length s.children))
    0 t.states
