(** Disk-resident 2-hop labels — the database-backed deployment of HOPI
    the paper actually benchmarked ("all strategies … store all
    information in database tables and do not explicitly cache
    information in main memory", Section 6).

    {!save} lays a {!Two_hop.t} out in a {!Fx_store.Heap_file}: one
    record per non-empty label, a directory mapping nodes to record
    handles, and a trailer locating the directory. {!open_} maps the
    file back with a bounded buffer pool; every {!distance} probe then
    costs two record fetches whose page reads hit or miss the pool —
    which is exactly the regime behind the paper's absolute numbers.
    The D1 bench drives this cold and warm. *)

type t

val save : ?page_size:int -> path:string -> Two_hop.t -> unit
(** Write a label store; overwrites an existing file. *)

val open_ : ?pool_pages:int -> ?page_size:int -> ?stripes:int -> string -> t
(** [pool_pages] (default 256) bounds the buffer pool; [stripes]
    (default 8) splits it — see {!Fx_store.Pager.create}.
    @raise Fx_util.Codec.Corrupt on a mangled store. *)

val n_nodes : t -> int
val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option

val prefetch_all : t -> unit
(** Readahead for a full label sweep: stream the store's pages into
    the buffer pool's free room with large sequential reads. Advisory
    and never evicting — cheap to call before probing every node. *)

val stats : t -> Fx_store.Pager.stats

val stripe_stats : t -> Fx_store.Pager.stripe_stats list
val reset_stats : t -> unit
val drop_pool : t -> unit
(** Cold-cache switch: empty the buffer pool. *)

val close : t -> unit
