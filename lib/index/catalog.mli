(** The serving catalog of a disk deployment: the name-resolution side
    of the collection — tag names, document roots, anchor ids — frozen
    to one flat [<path>.catalog] file at {!Disk_hopi.save} time, so a
    query server booted from [--index-dir] can answer
    [DESCENDANTS doc#anchor tag] without re-parsing any XML.

    A loaded catalog is immutable and safe to share across worker
    domains. *)

type t

val of_collection : Fx_xml.Collection.t -> t

val save : path:string -> t -> unit
(** Raises [Sys_error] on I/O failure. *)

val load : string -> t
(** @raise Fx_util.Codec.Corrupt on a mangled or truncated catalog
    (bad magic, negative counts, node ids out of range, trailing
    bytes). @raise Sys_error if the file cannot be read. *)

val n_nodes : t -> int
val n_docs : t -> int
val n_tags : t -> int

val tag_id : t -> string -> int option
val tag_name : t -> int -> string

val doc_names : t -> string list
(** In collection order. *)

val node_of : t -> doc:string -> anchor:string option -> int option
(** Global node of [doc]'s root, or of the element carrying
    [id=anchor] when [anchor] is given. *)
