type data_graph = { graph : Fx_graph.Digraph.t; tag : int array }

let n_tags dg = 1 + Array.fold_left max (-1) dg.tag

type build_stats = {
  strategy : string;
  build_ns : int64;
  entries : int;
  size_bytes : int;
}

type instance = {
  name : string;
  n_nodes : int;
  reachable : int -> int -> bool;
  distance : int -> int -> int option;
  descendants_by_tag : int -> int option -> (int * int) list;
  ancestors_by_tag : int -> int option -> (int * int) list;
  restricted_descendants : int -> Fx_graph.Bitset.t -> (int * int) list;
  restricted_ancestors : int -> Fx_graph.Bitset.t -> (int * int) list;
  stats : build_stats;
}

let nodes_by_tag dg =
  let k = n_tags dg in
  let counts = Array.make k 0 in
  Array.iter (fun t -> counts.(t) <- counts.(t) + 1) dg.tag;
  let out = Array.init k (fun t -> Array.make counts.(t) 0) in
  let cursor = Array.make k 0 in
  Array.iteri
    (fun v t ->
      out.(t).(cursor.(t)) <- v;
      cursor.(t) <- cursor.(t) + 1)
    dg.tag;
  out

let sort_results rs =
  List.sort_uniq
    (fun (v1, d1) (v2, d2) ->
      match Int.compare d1 d2 with 0 -> Int.compare v1 v2 | c -> c)
    rs

let check_instance_agrees a b ~samples =
  List.for_all
    (fun (u, v) -> a.reachable u v = b.reachable u v && a.distance u v = b.distance u v)
    samples
