module Pager = Fx_store.Pager
module Btree = Fx_store.Btree

type t = {
  labels : Disk_labels.t;
  tag_pager : Pager.t;
  tags : Btree.t;
  n : int;
}

let shift = 32
let tag_key ~tag ~node = (tag lsl shift) lor node

let labels_path path = path ^ ".labels"
let tags_path path = path ^ ".tags"

let save ?page_size ~path (dg : Path_index.data_graph) hopi =
  Disk_labels.save ?page_size ~path:(labels_path path) (Hopi.labels hopi);
  let tp = tags_path path in
  if Sys.file_exists tp then Sys.remove tp;
  let pager = Pager.create ?page_size tp in
  let tree = Btree.create pager in
  Array.iteri
    (fun node tag -> Btree.insert tree ~key:(tag_key ~tag ~node) ~value:node)
    dg.tag;
  Pager.close pager

let open_ ?pool_pages ?page_size ?stripes ~path () =
  let labels = Disk_labels.open_ ?pool_pages ?page_size ?stripes (labels_path path) in
  let tag_pager = Pager.create ?pool_pages ?page_size ?stripes (tags_path path) in
  let tags = Btree.create tag_pager in
  { labels; tag_pager; tags; n = Disk_labels.n_nodes labels }

let n_nodes t = t.n
let distance t x y = Disk_labels.distance t.labels x y
let reachable t x y = distance t x y <> None

let descendants_by_tag t x want =
  let acc = ref [] in
  let probe node =
    match distance t x node with Some d -> acc := (node, d) :: !acc | None -> ()
  in
  (match want with
  | Some w -> Btree.iter_range t.tags ~lo:(tag_key ~tag:w ~node:0)
                ~hi:(tag_key ~tag:w ~node:((1 lsl shift) - 1))
                (fun _ node -> probe node)
  | None ->
      (* Wildcard sweep: every label record gets touched in handle
         (file) order — announce the scan so the pool fills with large
         sequential reads instead of per-probe misses. *)
      Disk_labels.prefetch_all t.labels;
      for node = 0 to t.n - 1 do
        probe node
      done);
  Path_index.sort_results !acc

let ancestors_by_tag t x want =
  let acc = ref [] in
  let probe node =
    match distance t node x with Some d -> acc := (node, d) :: !acc | None -> ()
  in
  (match want with
  | Some w -> Btree.iter_range t.tags ~lo:(tag_key ~tag:w ~node:0)
                ~hi:(tag_key ~tag:w ~node:((1 lsl shift) - 1))
                (fun _ node -> probe node)
  | None ->
      Disk_labels.prefetch_all t.labels;
      for node = 0 to t.n - 1 do
        probe node
      done);
  Path_index.sort_results !acc

let nodes_by_tag t tag =
  if tag < 0 then []
  else begin
    let acc = ref [] in
    Btree.iter_range t.tags ~lo:(tag_key ~tag ~node:0)
      ~hi:(tag_key ~tag ~node:((1 lsl shift) - 1))
      (fun _ node -> acc := node :: !acc);
    List.rev !acc
  end

let restricted_descendants t x set =
  let acc = ref [] in
  Fx_graph.Bitset.iter set (fun v ->
      match distance t x v with Some d -> acc := (v, d) :: !acc | None -> ());
  Path_index.sort_results !acc

let restricted_ancestors t x set =
  let acc = ref [] in
  Fx_graph.Bitset.iter set (fun v ->
      match distance t v x with Some d -> acc := (v, d) :: !acc | None -> ());
  Path_index.sort_results !acc

(* A disk deployment as a pluggable Path Indexing Strategy: FliX's
   Index Builder can host meta documents whose indexes never load into
   memory, composing them with in-memory ones through the same PEE. *)
let instance ?pool_pages ?page_size ~path dg hopi =
  let (), build_ns = Fx_util.Stopwatch.time_ns (fun () -> save ?page_size ~path dg hopi) in
  let t = open_ ?pool_pages ?page_size ~path () in
  let size_bytes =
    let file p = try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0 in
    file (labels_path path) + file (tags_path path)
  in
  {
    Path_index.name = "HOPI-disk";
    n_nodes = t.n;
    reachable = reachable t;
    distance = distance t;
    descendants_by_tag = descendants_by_tag t;
    ancestors_by_tag = ancestors_by_tag t;
    restricted_descendants = restricted_descendants t;
    restricted_ancestors = restricted_ancestors t;
    stats =
      { strategy = "HOPI-disk"; build_ns; entries = Two_hop.entries (Hopi.labels hopi);
        size_bytes };
  }

let stats t = (Disk_labels.stats t.labels, Pager.stats t.tag_pager)

let stripe_stats t = (Disk_labels.stripe_stats t.labels, Pager.stripe_stats t.tag_pager)

let drop_pools t =
  Disk_labels.drop_pool t.labels;
  Pager.drop_pool t.tag_pager

let close t =
  Disk_labels.close t.labels;
  Pager.close t.tag_pager
