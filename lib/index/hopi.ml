module Digraph = Fx_graph.Digraph
module Partition = Fx_graph.Partition
module Bitset = Fx_graph.Bitset

type t = {
  dg : Path_index.data_graph;
  labels : Two_hop.t;
  by_tag : int array array;
}

(* Landmark order for the `Borders_first strategy: border nodes of a
   bounded partitioning first (they cover partition-crossing paths, the
   role of HOPI's divide-and-conquer join step), then everything by
   descending estimated pair coverage |ancestors| * |descendants|
   (Cohen's estimator — the greedy objective of the original 2-hop
   construction). The default `Coverage ordering skips the partitioning:
   measurements in EXPERIMENTS.md show it yields ~35% smaller labels on
   citation-shaped collections. *)
let landmark_order dg ~ordering ~partition_size =
  let g = dg.Path_index.graph in
  let n = Digraph.n_nodes g in
  let border = Array.make n false in
  (match ordering with
  | `Coverage -> ()
  | `Borders_first ->
      let assignment = Partition.bounded_bfs ~max_size:partition_size g in
      List.iter
        (fun (u, v) ->
          border.(u) <- true;
          border.(v) <- true)
        (Partition.cross_edges g assignment.Partition.part));
  let weight =
    if n <= 1 then fun _ -> 0.0
    else begin
      let fwd = Fx_graph.Tc_estimate.compute ~rounds:8 ~seed:0x40b1 g in
      let bwd = Fx_graph.Tc_estimate.compute ~rounds:8 ~seed:0x40b2 (Digraph.reverse g) in
      fun v -> Fx_graph.Tc_estimate.reach_size fwd v *. Fx_graph.Tc_estimate.reach_size bwd v
    end
  in
  let w = Array.init n weight in
  let nodes = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match Bool.compare border.(b) border.(a) with
      | 0 -> (
          match Float.compare w.(b) w.(a) with 0 -> Int.compare a b | c -> c)
      | c -> c)
    nodes;
  nodes

let build ?(ordering = `Coverage) ?(partition_size = 5000) (dg : Path_index.data_graph) =
  let order = landmark_order dg ~ordering ~partition_size in
  let labels = Two_hop.build ~order dg.graph in
  { dg; labels; by_tag = Path_index.nodes_by_tag dg }

let reachable t x y = Two_hop.reachable t.labels x y
let distance t x y = Two_hop.distance t.labels x y

(* Element-level operations probe the labels once per candidate of the
   requested tag — the standard way a 2-hop index answers a//b. *)
let collect x candidates ~dist =
  let acc = ref [] in
  Array.iter
    (fun v -> match dist x v with Some d -> acc := (v, d) :: !acc | None -> ())
    candidates;
  Path_index.sort_results !acc

let all_nodes t = Array.init (Digraph.n_nodes t.dg.Path_index.graph) (fun i -> i)

let candidates_of_tag t = function
  | Some w when w >= 0 && w < Array.length t.by_tag -> t.by_tag.(w)
  | Some _ -> [||]
  | None -> all_nodes t

let descendants_by_tag t x want =
  collect x (candidates_of_tag t want) ~dist:(distance t)

let ancestors_by_tag t x want =
  collect x (candidates_of_tag t want) ~dist:(fun x v -> distance t v x)

let restricted_descendants t x set =
  let acc = ref [] in
  Bitset.iter set (fun v ->
      match distance t x v with Some d -> acc := (v, d) :: !acc | None -> ());
  Path_index.sort_results !acc

let restricted_ancestors t x set =
  let acc = ref [] in
  Bitset.iter set (fun v ->
      match distance t v x with Some d -> acc := (v, d) :: !acc | None -> ());
  Path_index.sort_results !acc

let labels t = t.labels
let entries t = Two_hop.entries t.labels
let size_bytes t = Two_hop.size_bytes t.labels

let instance ?ordering ?partition_size dg =
  let t, build_ns = Fx_util.Stopwatch.time_ns (fun () -> build ?ordering ?partition_size dg) in
  {
    Path_index.name = "HOPI";
    n_nodes = Digraph.n_nodes dg.Path_index.graph;
    reachable = reachable t;
    distance = distance t;
    descendants_by_tag = descendants_by_tag t;
    ancestors_by_tag = ancestors_by_tag t;
    restricted_descendants = restricted_descendants t;
    restricted_ancestors = restricted_ancestors t;
    stats = { strategy = "HOPI"; build_ns; entries = entries t; size_bytes = size_bytes t };
  }
