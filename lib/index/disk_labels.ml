module Pager = Fx_store.Pager
module Heap = Fx_store.Heap_file
module Codec = Fx_util.Codec

(* File layout (records in one heap file):
     [label record]*          one per non-empty L_in / L_out
     [directory record]       n, then per node: in handle, out handle
                              (-1 = empty label)
     [trailer record]         "DIR" + directory handle
   The trailer is always the last record, so reopen finds the directory
   without any side file. *)

type t = {
  pager : Pager.t;
  heap : Heap.t;
  n : int;
  in_handle : int array;  (* -1 = empty label *)
  out_handle : int array;
}

let label_magic = "fxlab"
let dir_magic = "fxdir"
let trailer_magic = "fxend"

let encode_label entries =
  let w = Codec.Writer.create ~magic:label_magic in
  Codec.Writer.int w (Array.length entries);
  Array.iter
    (fun (hop, dist) ->
      Codec.Writer.int w hop;
      Codec.Writer.int w dist)
    entries;
  Codec.Writer.contents w

let decode_label data =
  let r = Codec.Reader.create ~magic:label_magic data in
  let len = Codec.Reader.int r in
  if len < 0 then raise (Codec.Corrupt "negative label length");
  let entries = Array.init len (fun _ ->
      let hop = Codec.Reader.int r in
      let dist = Codec.Reader.int r in
      (hop, dist))
  in
  Codec.Reader.expect_end r;
  entries

let save ?page_size ~path labels =
  if Sys.file_exists path then Sys.remove path;
  let pager = Pager.create ?page_size path in
  let heap = Heap.create pager in
  let n = Two_hop.n_nodes labels in
  let store side =
    Array.init n (fun v ->
        let entries = side v in
        if Array.length entries = 0 then -1 else Heap.append heap (encode_label entries))
  in
  let in_handle = store (Two_hop.raw_in_label labels) in
  let out_handle = store (Two_hop.raw_out_label labels) in
  let w = Codec.Writer.create ~magic:dir_magic in
  Codec.Writer.int w n;
  Codec.Writer.int_array w in_handle;
  Codec.Writer.int_array w out_handle;
  let dir = Heap.append heap (Codec.Writer.contents w) in
  let tw = Codec.Writer.create ~magic:trailer_magic in
  Codec.Writer.int tw dir;
  ignore (Heap.append heap (Codec.Writer.contents tw));
  Pager.close pager

let open_ ?pool_pages ?page_size ?stripes path =
  let pager = Pager.create ?pool_pages ?page_size ?stripes path in
  let heap = Heap.create pager in
  match Heap.last_handle heap with
  | None -> raise (Codec.Corrupt "Disk_labels: empty store")
  | Some trailer ->
      let tr = Codec.Reader.create ~magic:trailer_magic (Heap.read heap trailer) in
      let dir_handle = Codec.Reader.int tr in
      Codec.Reader.expect_end tr;
      let dr = Codec.Reader.create ~magic:dir_magic (Heap.read heap dir_handle) in
      let n = Codec.Reader.int dr in
      if n < 0 then raise (Codec.Corrupt "Disk_labels: negative node count");
      let in_handle = Codec.Reader.int_array dr in
      let out_handle = Codec.Reader.int_array dr in
      Codec.Reader.expect_end dr;
      if Array.length in_handle <> n || Array.length out_handle <> n then
        raise (Codec.Corrupt "Disk_labels: directory length mismatch");
      { pager; heap; n; in_handle; out_handle }

let n_nodes t = t.n

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Disk_labels: node out of range"

let fetch t handles v =
  if handles.(v) = -1 then [||] else decode_label (Heap.read t.heap handles.(v))

(* Merge-join on hop ranks, as in the in-memory index — but each side
   was just fetched through the buffer pool. *)
let distance t x y =
  check_node t x;
  check_node t y;
  if x = y then Some 0
  else begin
    let ox = fetch t t.out_handle x and iy = fetch t t.in_handle y in
    let best = ref max_int in
    let i = ref 0 and j = ref 0 in
    while !i < Array.length ox && !j < Array.length iy do
      let hi, di = ox.(!i) and hj, dj = iy.(!j) in
      if hi = hj then begin
        if di + dj < !best then best := di + dj;
        incr i;
        incr j
      end
      else if hi < hj then incr i
      else incr j
    done;
    if !best = max_int then None else Some !best
  end

let reachable t x y = distance t x y <> None

(* Full-sweep readahead: a caller about to probe every node walks the
   label records in handle order, which is file order — pull the whole
   file through the pool's free room with large sequential reads. *)
let prefetch_all t = Pager.prefetch t.pager ~page:0 ~count:(Pager.n_pages t.pager)

let stats t = Pager.stats t.pager
let stripe_stats t = Pager.stripe_stats t.pager
let reset_stats t = Pager.reset_stats t.pager
let drop_pool t = Pager.drop_pool t.pager
let close t = Pager.close t.pager
