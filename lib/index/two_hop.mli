(** Distance-aware 2-hop labels for directed graphs (Cohen, Halperin,
    Kaplan, Zwick [SODA 2002]) — the label structure underlying HOPI.

    Every node [v] carries two label sets [L_in(v)] and [L_out(v)] of
    (hop node, distance) pairs such that for every pair [x ->* y] there
    is a hop [w ∈ L_out(x) ∩ L_in(y)] lying on a shortest path; then

    {v dist(x, y) = min { d_out(x, w) + d_in(w, y) | w common hop } v}

    The cover is computed by pruned landmark labeling (Akiba, Iwata,
    Yoshida [SIGMOD 2013]): vertices are processed in a caller-supplied
    order; each runs one forward and one backward pruned BFS. The result
    is an exact distance oracle for arbitrary directed graphs; the
    processing order only affects label size, never correctness — which
    is where {!Hopi}'s divide-and-conquer partitioning heuristic plugs
    in. *)

type t

val build : ?order:int array -> Fx_graph.Digraph.t -> t
(** [order] must be a permutation of the nodes; default: descending
    degree product, the classic heuristic. *)

val build_weighted : ?order:int array -> n:int -> (int * int * int) array -> t
(** Pruned landmark labeling over an explicit weighted edge list of
    [(src, dst, weight)] triples with [weight >= 0]: Dijkstra replaces
    BFS, everything else — the pruning rule, label shape, query and
    (de)serialization — is shared with {!build}, and the oracle is
    exact for any non-negative weights. The default order ranks by the
    unit-weight topology of the edges. This is what the sharded
    deployment's portal closure builds on: portal edges carry
    within-shard shortest-path segments, so their weights exceed 1.
    Raises [Invalid_argument] on out-of-range endpoints, negative
    weights, or a bad [order]. *)

val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option

val entries : t -> int
(** Total number of (hop, distance) label entries over all nodes. *)

val size_bytes : t -> int
(** 8 bytes per entry (hop id + distance). *)

val max_label : t -> int
(** Largest single label set — the per-query cost bound. *)

val serialize : t -> string
(** Compact binary snapshot of the labels; rebuild-free loading via
    {!deserialize}. *)

val deserialize : string -> t
(** @raise Fx_util.Codec.Corrupt on malformed or truncated input. The
    decoder validates ranks, permutations and label entries, so a loaded
    index is structurally sound (it answers queries for the graph it was
    built on). *)

val n_nodes : t -> int

val raw_in_label : t -> int -> (int * int) array
val raw_out_label : t -> int -> (int * int) array
(** The (hop rank, distance) entries of a label, ascending by rank —
    the wire format {!Disk_labels} stores and merge-joins. *)

val in_label_nodes : t -> int -> int list
val out_label_nodes : t -> int -> int list
(** Hop nodes of a label, for inspection and tests. *)
