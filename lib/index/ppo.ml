module Digraph = Fx_graph.Digraph
module Traversal = Fx_graph.Traversal
module Bitset = Fx_graph.Bitset

type t = {
  dg : Path_index.data_graph;
  pre : int array;
  post : int array;
  depth : int array;
  parent : int array;
  order : int array;       (* node at each preorder rank *)
  subtree : int array;     (* subtree size per node *)
}

exception Not_a_forest

let is_buildable (dg : Path_index.data_graph) = Traversal.is_forest dg.graph

let build (dg : Path_index.data_graph) =
  if not (Traversal.is_forest dg.graph) then raise Not_a_forest;
  let num = Traversal.dfs_forest dg.graph in
  let n = Digraph.n_nodes dg.graph in
  let subtree = Array.make n 1 in
  (* Children precede parents in reverse preorder, so one sweep suffices. *)
  for r = n - 1 downto 0 do
    let v = num.order.(r) in
    let p = num.parent.(v) in
    if p >= 0 then subtree.(p) <- subtree.(p) + subtree.(v)
  done;
  {
    dg;
    pre = num.pre;
    post = num.post;
    depth = num.depth;
    parent = num.parent;
    order = num.order;
    subtree;
  }

(* Incremental maintenance for the append-only delta: [dg] is the old
   data graph plus whole new trees on the appended node ids. DFS visits
   in-degree-zero roots in ascending id order with global pre/post
   counters, so the old numbering is byte-identical inside the new one —
   we copy the old tables and traverse only the appended trees. Any
   other shape of change (edges into or out of the old node range, a
   non-forest suffix) returns [None] and the caller rebuilds. *)
let extend t (dg : Path_index.data_graph) =
  let old_n = Array.length t.pre in
  let n = Digraph.n_nodes dg.graph in
  let same_ints a b =
    let a = Array.copy a and b = Array.copy b in
    Array.sort Int.compare a;
    Array.sort Int.compare b;
    Array.length a = Array.length b
    &&
    try
      Array.iteri (fun i x -> if x <> b.(i) then raise Exit) a;
      true
    with Exit -> false
  in
  let old_edges_intact =
    (* Old nodes keep exactly their old successor sets, and nothing new
       points back into them. *)
    try
      for v = 0 to old_n - 1 do
        if not (same_ints (Digraph.succ t.dg.graph v) (Digraph.succ dg.graph v)) then
          raise Exit
      done;
      for v = old_n to n - 1 do
        Digraph.iter_succ dg.graph v (fun c -> if c < old_n then raise Exit)
      done;
      true
    with Exit -> false
  in
  if n <= old_n || not old_edges_intact then None
  else begin
    let suffix_is_forest =
      try
        for v = old_n to n - 1 do
          if Digraph.in_degree dg.graph v > 1 then raise Exit
        done;
        (* The suffix is acyclic iff DFS from its in-degree-zero roots
           reaches every new node exactly once; checked below. *)
        true
      with Exit -> false
    in
    if not suffix_is_forest then None
    else begin
      let grow a = Array.append a (Array.make (n - old_n) (-1)) in
      let pre = grow t.pre in
      let post = grow t.post in
      let depth = grow t.depth in
      let parent = grow t.parent in
      let order = grow t.order in
      let subtree = Array.append t.subtree (Array.make (n - old_n) 1) in
      let pre_counter = ref old_n and post_counter = ref old_n in
      let visit root =
        if pre.(root) = -1 then begin
          let stack = Stack.create () in
          pre.(root) <- !pre_counter;
          order.(!pre_counter) <- root;
          incr pre_counter;
          depth.(root) <- 0;
          Stack.push (root, ref 0, Digraph.succ dg.graph root) stack;
          while not (Stack.is_empty stack) do
            let u, next, adj = Stack.top stack in
            if !next >= Array.length adj then begin
              ignore (Stack.pop stack);
              post.(u) <- !post_counter;
              incr post_counter
            end
            else begin
              let v = adj.(!next) in
              incr next;
              if pre.(v) = -1 then begin
                pre.(v) <- !pre_counter;
                order.(!pre_counter) <- v;
                incr pre_counter;
                depth.(v) <- depth.(u) + 1;
                parent.(v) <- u;
                Stack.push (v, ref 0, Digraph.succ dg.graph v) stack
              end
            end
          done
        end
      in
      for v = old_n to n - 1 do
        if Digraph.in_degree dg.graph v = 0 then visit v
      done;
      if !pre_counter < n then None (* a cycle in the suffix left nodes unvisited *)
      else begin
        for r = n - 1 downto old_n do
          let v = order.(r) in
          let p = parent.(v) in
          if p >= 0 then subtree.(p) <- subtree.(p) + subtree.(v)
        done;
        Some { dg; pre; post; depth; parent; order; subtree }
      end
    end
  end

let pre t v = t.pre.(v)
let post t v = t.post.(v)
let depth t v = t.depth.(v)

let reachable t x y = t.pre.(x) <= t.pre.(y) && t.post.(x) >= t.post.(y)

let distance t x y = if reachable t x y then Some (t.depth.(y) - t.depth.(x)) else None

(* Descendants of [x] occupy the contiguous preorder range
   [pre x, pre x + subtree x). *)
let fold_subtree t x f init =
  let lo = t.pre.(x) in
  let hi = lo + t.subtree.(x) - 1 in
  let acc = ref init in
  for r = lo to hi do
    acc := f !acc t.order.(r)
  done;
  !acc

let descendants_by_tag t x want =
  let matches v = match want with None -> true | Some w -> t.dg.tag.(v) = w in
  let results =
    fold_subtree t x
      (fun acc v -> if matches v then (v, t.depth.(v) - t.depth.(x)) :: acc else acc)
      []
  in
  Path_index.sort_results results

let ancestors_by_tag t x want =
  let matches v = match want with None -> true | Some w -> t.dg.tag.(v) = w in
  let rec walk v d acc =
    let acc = if matches v then (v, d) :: acc else acc in
    if t.parent.(v) < 0 then acc else walk t.parent.(v) (d + 1) acc
  in
  Path_index.sort_results (walk x 0 [])

let restricted_descendants t x set =
  let results =
    fold_subtree t x
      (fun acc v -> if Bitset.mem set v then (v, t.depth.(v) - t.depth.(x)) :: acc else acc)
      []
  in
  Path_index.sort_results results

let restricted_ancestors t x set =
  let rec walk v d acc =
    let acc = if Bitset.mem set v then (v, d) :: acc else acc in
    if t.parent.(v) < 0 then acc else walk t.parent.(v) (d + 1) acc
  in
  Path_index.sort_results (walk x 0 [])

let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)

let children t v =
  Digraph.fold_succ t.dg.graph v (fun acc c -> c :: acc) [] |> List.rev

let following t v =
  let stop = t.pre.(v) + t.subtree.(v) in
  let acc = ref [] in
  for r = Array.length t.order - 1 downto stop do
    acc := t.order.(r) :: !acc
  done;
  !acc

let preceding t v =
  (* Nodes before v in document order that are not its ancestors. *)
  let acc = ref [] in
  for r = t.pre.(v) - 1 downto 0 do
    let u = t.order.(r) in
    if t.post.(u) < t.post.(v) then acc := u :: !acc
  done;
  !acc

(* pre, post, depth per node: three 4-byte fields. *)
let size_bytes t = 12 * Array.length t.pre

(* --- persistence --------------------------------------------------- *)

let magic = "flix-ppo-v1"

let serialize t =
  let module W = Fx_util.Codec.Writer in
  let w = W.create ~magic in
  W.int w (Array.length t.pre);
  List.iter (W.int_array w) [ t.pre; t.post; t.depth; t.parent; t.order; t.subtree ];
  W.contents w

let deserialize (dg : Path_index.data_graph) data =
  let module R = Fx_util.Codec.Reader in
  let r = R.create ~magic data in
  let n = R.int r in
  if n <> Digraph.n_nodes dg.graph then
    raise (Fx_util.Codec.Corrupt "node count does not match the data graph");
  let arr name =
    let a = R.int_array r in
    if Array.length a <> n then
      raise (Fx_util.Codec.Corrupt ("bad length for " ^ name));
    a
  in
  let pre = arr "pre" in
  let post = arr "post" in
  let depth = arr "depth" in
  let parent = arr "parent" in
  let order = arr "order" in
  let subtree = arr "subtree" in
  R.expect_end r;
  Array.iteri
    (fun rank v ->
      if v < 0 || v >= n || pre.(v) <> rank then
        raise (Fx_util.Codec.Corrupt "order table is not the preorder inverse"))
    order;
  { dg; pre; post; depth; parent; order; subtree }

let wrap ~build_ns (t : t) =
  let n = Array.length t.pre in
  {
    Path_index.name = "PPO";
    n_nodes = n;
    reachable = reachable t;
    distance = distance t;
    descendants_by_tag = descendants_by_tag t;
    ancestors_by_tag = ancestors_by_tag t;
    restricted_descendants = restricted_descendants t;
    restricted_ancestors = restricted_ancestors t;
    stats = { strategy = "PPO"; build_ns; entries = n; size_bytes = size_bytes t };
  }

let instance_of t = wrap ~build_ns:0L t

let instance dg =
  let (t : t), build_ns = Fx_util.Stopwatch.time_ns (fun () -> build dg) in
  wrap ~build_ns t
