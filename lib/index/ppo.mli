(** The pre/postorder path index (PPO) of Grust [SIGMOD 2002].

    For a tree (or forest), a depth-first traversal assigns each element
    its preorder rank [pre(e)] and postorder rank [post(e)]; then [x] is
    an ancestor of [y] iff [pre(x) <= pre(y) && post(x) >= post(y)], and
    the distance is [depth(y) - depth(x)]. Index size is O(n), build
    time O(n + m), and all XPath axes reduce to range conditions — which
    is why FliX prefers PPO whenever a meta document is link-free
    (paper, Sections 2.2 and 4.3).

    PPO is {e only} correct on forests; {!build} refuses anything else
    (this is the formal reason FliX needs the Maximal-PPO meta-document
    builder instead of indexing a linked collection directly). *)

type t

exception Not_a_forest
(** Raised by {!build} when some node has two parents or the graph has a
    cycle. *)

val build : Path_index.data_graph -> t
val is_buildable : Path_index.data_graph -> bool

val extend : t -> Path_index.data_graph -> t option
(** Incremental maintenance for the append-only delta: when [dg] is the
    graph the index was built on plus whole new trees on appended node
    ids (no edge touches the old node range in either direction), the
    old numbering is still valid inside the new one — the tables are
    copied and only the appended trees are traversed, so the cost is
    O(delta), not O(n). Returns [None] for any other shape of change
    (the caller rebuilds from scratch). Answers are identical to a
    fresh {!build} of [dg]. *)

val pre : t -> int -> int
val post : t -> int -> int
val depth : t -> int -> int

val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option
val descendants_by_tag : t -> int -> int option -> (int * int) list
val ancestors_by_tag : t -> int -> int option -> (int * int) list
val restricted_descendants : t -> int -> Fx_graph.Bitset.t -> (int * int) list
val restricted_ancestors : t -> int -> Fx_graph.Bitset.t -> (int * int) list

(** {1 Other XPath axes}

    PPO supports every axis from the plane of (pre, post) ranks; we
    expose the remaining ones used by query evaluation. *)

val parent : t -> int -> int option
val children : t -> int -> int list
val following : t -> int -> int list
(** Document order: nodes with greater [pre] outside the subtree. *)

val preceding : t -> int -> int list

val size_bytes : t -> int

val serialize : t -> string
val deserialize : Path_index.data_graph -> string -> t
(** The numbering tables for the graph the index was built on; the graph
    itself travels separately (it is the collection's).
    @raise Fx_util.Codec.Corrupt on malformed input or node-count
    mismatch. *)

val instance : Path_index.data_graph -> Path_index.instance
(** @raise Not_a_forest like {!build}. *)

val instance_of : t -> Path_index.instance
(** Wrap an already-built (e.g. {!extend}ed) numbering. *)
