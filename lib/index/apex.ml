module Digraph = Fx_graph.Digraph
module Bitset = Fx_graph.Bitset

type t = {
  dg : Path_index.data_graph;
  block : int array;
  n_blocks : int;
  extents : int array array;
  block_tag : int array;
  summary : Digraph.t;
  summary_rev : Digraph.t;
  (* Lazily memoised per-tag pruning sets (see below). *)
  reaches_tag : (int, Bitset.t) Hashtbl.t;
  reached_from_tag : (int, Bitset.t) Hashtbl.t;
}

(* Backward bisimulation by naive partition refinement: start from the
   tag partition, repeatedly split blocks by the multiset-free signature
   (own block, set of predecessor blocks) until stable. Converges in at
   most n rounds; on XML data the number of rounds is the graph depth.
   Bounding the rounds at [k] yields the A(k)-index of the Index
   Definition Scheme (Kaushik et al. / Qun et al.): blocks then agree on
   incoming label paths up to length k only, giving a coarser, smaller
   summary. The summary stays a homomorphic image of the data graph for
   every k, so the summary-pruned search below remains exact — a coarse
   summary merely prunes less. *)
let refine_blocks ?rounds ?(forward = false) (dg : Path_index.data_graph) =
  let g = dg.graph in
  let n = Digraph.n_nodes g in
  let block = Array.copy dg.tag in
  let n_blocks = ref (Path_index.n_tags dg) in
  let stable = ref false in
  let remaining = ref (Option.value rounds ~default:max_int) in
  let signature = Hashtbl.create (2 * n) in
  (* One refinement round by the given neighbour direction; returns true
     when nothing split. *)
  let round fold_dir =
    Hashtbl.reset signature;
    let next = Array.make n 0 in
    let counter = ref 0 in
    for v = 0 to n - 1 do
      let neighbours = fold_dir g v (fun acc u -> block.(u) :: acc) [] in
      let key = (block.(v), List.sort_uniq Int.compare neighbours) in
      let id =
        match Hashtbl.find_opt signature key with
        | Some id -> id
        | None ->
            let id = !counter in
            incr counter;
            Hashtbl.add signature key id;
            id
      in
      next.(v) <- id
    done;
    if !counter = !n_blocks then true
    else begin
      Array.blit next 0 block 0 n;
      n_blocks := !counter;
      false
    end
  in
  while (not !stable) && !remaining > 0 do
    decr remaining;
    let backward_stable = round Digraph.fold_pred in
    (* F&B mode additionally requires stability under outgoing
       structure; a round only counts as stable when both agree. *)
    let forward_stable = (not forward) || round Digraph.fold_succ in
    stable := backward_stable && forward_stable
  done;
  (block, !n_blocks)

let build ?k ?(fb = false) (dg : Path_index.data_graph) =
  (match k with
  | Some k when k < 0 -> invalid_arg "Apex.build: k < 0"
  | Some _ | None -> ());
  let g = dg.graph in
  let n = Digraph.n_nodes g in
  let block, n_blocks = refine_blocks ?rounds:k ~forward:fb dg in
  let counts = Array.make n_blocks 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) block;
  let extents = Array.init n_blocks (fun b -> Array.make counts.(b) 0) in
  let cursor = Array.make n_blocks 0 in
  let block_tag = Array.make n_blocks 0 in
  for v = 0 to n - 1 do
    let b = block.(v) in
    extents.(b).(cursor.(b)) <- v;
    cursor.(b) <- cursor.(b) + 1;
    block_tag.(b) <- dg.tag.(v)
  done;
  let edges = ref [] in
  Digraph.iter_edges g (fun u v -> edges := (block.(u), block.(v)) :: !edges);
  let summary = Digraph.of_edges ~n:n_blocks !edges in
  {
    dg;
    block;
    n_blocks;
    extents;
    block_tag;
    summary;
    summary_rev = Digraph.reverse summary;
    reaches_tag = Hashtbl.create 16;
    reached_from_tag = Hashtbl.create 16;
  }

let n_blocks t = t.n_blocks
let block t v = t.block.(v)
let extent t b = t.extents.(b)
let summary_graph t = t.summary

(* Set of summary blocks from which the given graph [start_blocks] are
   reachable (when walking [graph] = summary_rev this is "blocks that can
   reach a block of tag w"). *)
let closure_of graph n start_blocks =
  let set = Bitset.create n in
  let queue = Queue.create () in
  List.iter
    (fun b ->
      if not (Bitset.mem set b) then begin
        Bitset.add set b;
        Queue.add b queue
      end)
    start_blocks;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    Digraph.iter_succ graph b (fun c ->
        if not (Bitset.mem set c) then begin
          Bitset.add set c;
          Queue.add c queue
        end)
  done;
  set

let blocks_of_tag t w =
  let acc = ref [] in
  for b = 0 to t.n_blocks - 1 do
    if t.block_tag.(b) = w then acc := b :: !acc
  done;
  !acc

(* Blocks whose extent members can reach a node tagged [w]. *)
let reaches_tag_set t w =
  match Hashtbl.find_opt t.reaches_tag w with
  | Some s -> s
  | None ->
      let s = closure_of t.summary_rev t.n_blocks (blocks_of_tag t w) in
      Hashtbl.add t.reaches_tag w s;
      s

(* Blocks whose extent members are reachable from a node tagged [w]. *)
let reached_from_tag_set t w =
  match Hashtbl.find_opt t.reached_from_tag w with
  | Some s -> s
  | None ->
      let s = closure_of t.summary t.n_blocks (blocks_of_tag t w) in
      Hashtbl.add t.reached_from_tag w s;
      s

(* Summary-pruned BFS on the data graph. [expandable v] cuts branches
   that provably cannot produce further matches. Results come out in BFS
   order, i.e. ascending distance. *)
let pruned_bfs g start ~expandable ~matches =
  let n = Digraph.n_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(start) <- 0;
  Queue.add start queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if matches u then acc := (u, dist.(u)) :: !acc;
    if expandable u then
      Digraph.iter_succ g u (fun v ->
          if dist.(v) = -1 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end)
  done;
  List.rev !acc

(* Incremental variant of the pruned BFS: the traversal advances only as
   the caller pulls, so the time to the k-th result reflects the work
   actually needed — what the Figure-5 bench measures. *)
let pruned_bfs_pull g start ~expandable ~matches =
  let n = Digraph.n_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(start) <- 0;
  Queue.add start queue;
  let rec pull () =
    match Queue.take_opt queue with
    | None -> None
    | Some u ->
        if expandable u then
          Digraph.iter_succ g u (fun v ->
              if dist.(v) = -1 then begin
                dist.(v) <- dist.(u) + 1;
                Queue.add v queue
              end);
        if matches u then Some (u, dist.(u)) else pull ()
  in
  pull

let descendants_stream t x want =
  let pull =
    match want with
    | None -> pruned_bfs_pull t.dg.graph x ~expandable:(fun _ -> true) ~matches:(fun _ -> true)
    | Some w ->
        let ok = reaches_tag_set t w in
        pruned_bfs_pull t.dg.graph x
          ~expandable:(fun v -> Bitset.mem ok t.block.(v))
          ~matches:(fun v -> t.dg.tag.(v) = w)
  in
  let rec seq () = match pull () with None -> Seq.Nil | Some r -> Seq.Cons (r, seq) in
  seq

let descendants_by_tag t x want =
  match want with
  | None ->
      pruned_bfs t.dg.graph x ~expandable:(fun _ -> true) ~matches:(fun _ -> true)
  | Some w ->
      let ok = reaches_tag_set t w in
      pruned_bfs t.dg.graph x
        ~expandable:(fun v -> Bitset.mem ok t.block.(v))
        ~matches:(fun v -> t.dg.tag.(v) = w)

let ancestors_by_tag t x want =
  let rev = Digraph.reverse t.dg.graph in
  match want with
  | None -> pruned_bfs rev x ~expandable:(fun _ -> true) ~matches:(fun _ -> true)
  | Some w ->
      let ok = reached_from_tag_set t w in
      pruned_bfs rev x
        ~expandable:(fun v -> Bitset.mem ok t.block.(v))
        ~matches:(fun v -> t.dg.tag.(v) = w)

let restricted_descendants t x set =
  pruned_bfs t.dg.graph x ~expandable:(fun _ -> true) ~matches:(Bitset.mem set)

let restricted_ancestors t x set =
  pruned_bfs (Digraph.reverse t.dg.graph) x ~expandable:(fun _ -> true)
    ~matches:(Bitset.mem set)

let distance t x y =
  if x = y then Some 0
  else begin
    (* Prune towards y's block: only blocks that reach it can be on a path. *)
    let ok = closure_of t.summary_rev t.n_blocks [ t.block.(y) ] in
    let results =
      pruned_bfs t.dg.graph x
        ~expandable:(fun v -> Bitset.mem ok t.block.(v))
        ~matches:(fun v -> v = y)
    in
    match results with [] -> None | (_, d) :: _ -> Some d
  end

let reachable t x y = distance t x y <> None

let eval_label_path t labels ~tag_id =
  let step_blocks w_opt from_blocks =
    match w_opt with
    | None -> []
    | Some w ->
        (* Strict descendant step: successors of the frontier, closed. *)
        let succs =
          List.concat_map (fun b -> Array.to_list (Digraph.succ t.summary b)) from_blocks
        in
        let closed = closure_of t.summary t.n_blocks succs in
        List.filter (fun b -> Bitset.mem closed b) (blocks_of_tag t w)
  in
  match labels with
  | [] -> []
  | first :: rest ->
      let start = match tag_id first with None -> [] | Some w -> blocks_of_tag t w in
      let final =
        List.fold_left (fun bs label -> step_blocks (tag_id label) bs) start rest
      in
      List.concat_map (fun b -> Array.to_list t.extents.(b)) final
      |> List.sort_uniq Int.compare

let entries t = Array.length t.block + Digraph.n_edges t.summary + t.n_blocks
let size_bytes t = 8 * entries t

let instance ?k ?fb dg =
  let t, build_ns = Fx_util.Stopwatch.time_ns (fun () -> build ?k ?fb dg) in
  {
    Path_index.name = "APEX";
    n_nodes = Digraph.n_nodes dg.Path_index.graph;
    reachable = reachable t;
    distance = distance t;
    descendants_by_tag = descendants_by_tag t;
    ancestors_by_tag = ancestors_by_tag t;
    restricted_descendants = restricted_descendants t;
    restricted_ancestors = restricted_ancestors t;
    stats = { strategy = "APEX"; build_ns; entries = entries t; size_bytes = size_bytes t };
  }
