(** A complete disk-resident HOPI deployment: the 2-hop labels in a
    {!Disk_labels} heap plus a {!Fx_store.Btree} tag directory keyed by
    [(tag << 32) | node], so a descendants query [a//w] runs entirely
    from disk — one range scan for the candidates of tag [w], one label
    probe per candidate — mirroring the paper's Oracle schema (a label
    table and a composite-key element table).

    [save] writes two files, [<path>.labels] and [<path>.tags]. *)

type t

val save : ?page_size:int -> path:string -> Path_index.data_graph -> Hopi.t -> unit

val open_ : ?pool_pages:int -> ?page_size:int -> ?stripes:int -> path:string -> unit -> t
(** [stripes] splits each file's buffer pool into independent lock
    stripes — see {!Fx_store.Pager.create}.
    @raise Fx_util.Codec.Corrupt on mangled stores. *)

val n_nodes : t -> int
val reachable : t -> int -> int -> bool
val distance : t -> int -> int -> int option

val descendants_by_tag : t -> int -> int option -> (int * int) list
(** Distance-sorted, like the in-memory instance; [None] scans every
    element (the wildcard query). *)

val ancestors_by_tag : t -> int -> int option -> (int * int) list
(** Like {!descendants_by_tag}, probing [distance node x]. *)

val nodes_by_tag : t -> int -> int list
(** Every node with the given tag id, ascending — one tag-directory
    range scan. Empty for an id the deployment does not know (negative
    ids included, so an unresolved tag name never probes the B-tree). *)

val restricted_descendants : t -> int -> Fx_graph.Bitset.t -> (int * int) list
val restricted_ancestors : t -> int -> Fx_graph.Bitset.t -> (int * int) list

val instance :
  ?pool_pages:int ->
  ?page_size:int ->
  path:string ->
  Path_index.data_graph ->
  Hopi.t ->
  Path_index.instance
(** Save the given in-memory index under [path] and expose the disk
    deployment as a Path Indexing Strategy, so the FliX Index Builder
    (via {!Fx_flix.Strategy_selector.Custom}) can keep chosen meta
    documents on disk while others stay in memory. The reported
    [size_bytes] is the on-disk footprint. *)

val stats : t -> Fx_store.Pager.stats * Fx_store.Pager.stats
(** (label file, tag file) buffer-pool statistics. *)

val stripe_stats : t -> Fx_store.Pager.stripe_stats list * Fx_store.Pager.stripe_stats list
(** (label file, tag file) per-stripe occupancy/contention counters. *)

val drop_pools : t -> unit
val close : t -> unit
