(** A fault-tolerant pooled connection to one shard server.

    The coordinator holds one of these per shard. Connections are
    persistent and pooled: a call borrows an idle connection (opening
    one when the pool is empty), runs one request/response exchange,
    and returns the connection to the pool — concurrent coordinator
    workers each get their own connection, and reuse keeps the fan-out
    off the connect path.

    The fault layer lives here. Every call carries the remaining
    deadline budget as both a [DEADLINE] envelope (so the shard stops
    working when the coordinator stops waiting) and a socket receive
    timeout with a little slack (so a {e hung} shard cannot wedge the
    pool — see {!Fx_server.Server_client.set_recv_timeout}). Transport
    failures are retried with doubling backoff on a fresh connection,
    up to [retries] extra attempts and never past the deadline; items
    are buffered per attempt, so a retried call never delivers
    duplicates. Each failed attempt increments the shard's error
    counter ([flix_shard_errors_total] in the coordinator's metrics). *)

type t

val create :
  ?retries:int ->
  ?backoff_ms:float ->
  ?recv_slack_s:float ->
  id:int ->
  host:string ->
  port:int ->
  unit ->
  t
(** Does not connect; the first {!call} does. [retries] (default 2) is
    the number of extra attempts after a transport failure;
    [backoff_ms] (default 25) the first retry delay, doubling per
    attempt; [recv_slack_s] (default 0.25) the grace added to the
    deadline budget before a read times out. *)

val id : t -> int
val address : t -> string

val errors_total : t -> int
(** Failed attempts so far (transport errors and timeouts). *)

val call :
  ?deadline_ms:int ->
  t ->
  Fx_server.Protocol.request ->
  (Fx_server.Protocol.item list * Fx_server.Protocol.response, string) result
(** One request/response exchange. [Ok (items, resp)] carries the
    response's item stream in arrival order (empty for non-stream
    responses) and the terminal response — for stream verbs an
    [Items { items = []; _ }] whose flags describe the trailer.
    [Error _] means the exchange failed even after retries; the shard
    should be treated as down for this request. *)

val close : t -> unit
(** Close pooled idle connections. In-flight calls on other threads
    finish (and then discard) their borrowed connections. *)
