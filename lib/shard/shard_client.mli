(** A fault-tolerant pooled connection to one shard server.

    The coordinator holds one of these per shard. Connections are
    persistent and pooled: a call borrows an idle connection (opening
    one when the pool is empty), runs one request/response exchange,
    and returns the connection to the pool — concurrent coordinator
    workers each get their own connection, and reuse keeps the fan-out
    off the connect path.

    The fault layer lives here. Every call carries the remaining
    deadline budget as both a [DEADLINE] envelope (so the shard stops
    working when the coordinator stops waiting) and a socket receive
    timeout with a little slack (so a {e hung} shard cannot wedge the
    pool — see {!Fx_server.Server_client.set_recv_timeout}). Transport
    failures are retried with doubling backoff on a fresh connection,
    up to [retries] extra attempts and never past the deadline; items
    are buffered per attempt, so a retried call never delivers
    duplicates. Each failed attempt increments the shard's error
    counter ([flix_shard_errors_total] in the coordinator's metrics). *)

type t

val create :
  ?retries:int ->
  ?backoff_ms:float ->
  ?recv_slack_s:float ->
  ?max_batch:int ->
  id:int ->
  host:string ->
  port:int ->
  unit ->
  t
(** Does not connect; the first {!call} does. [retries] (default 2) is
    the number of extra attempts after a transport failure;
    [backoff_ms] (default 25) the first retry delay, doubling per
    attempt; [recv_slack_s] (default 0.25) the grace added to the
    deadline budget before a read times out. [max_batch] (default 512)
    caps the sub-requests per {!call_many} round trip; it must stay at
    or below the server's own [max_batch] or oversized waves are
    rejected whole. Raises [Invalid_argument] when [max_batch < 1]. *)

val id : t -> int
val address : t -> string

val errors_total : t -> int
(** Failed attempts so far (transport errors and timeouts). *)

val rpcs_total : t -> int
(** Wire round trips so far — each {!call} attempt and each
    {!call_many} batch attempt counts one. *)

val subs_total : t -> int
(** Sub-requests carried by those round trips — a {!call} attempt
    counts one, a {!call_many} attempt counts its batch size. The
    [rpcs_total]/[subs_total] spread is the batching win, exported as
    [flix_shard_probe_rpcs_total] / [flix_shard_probe_subs_total]. *)

val call :
  ?deadline_ms:int ->
  t ->
  Fx_server.Protocol.request ->
  (Fx_server.Protocol.item list * Fx_server.Protocol.response, string) result
(** One request/response exchange. [Ok (items, resp)] carries the
    response's item stream in arrival order (empty for non-stream
    responses) and the terminal response — for stream verbs an
    [Items { items = []; _ }] whose flags describe the trailer.
    [Error _] means the exchange failed even after retries; the shard
    should be treated as down for this request. *)

val call_many :
  ?deadline_ms:int ->
  t ->
  Fx_server.Protocol.request array ->
  (Fx_server.Protocol.response, string) result array
(** One pipelined [BATCH] exchange carrying every request, answered
    slot by slot — split into chunks of at most [max_batch]
    sub-requests, each its own round trip, when the wave outgrows the
    cap. Unlike {!call}, each [Ok] response carries its items
    inline ([Items { items; _ }] fully populated). Retries re-batch
    only the still-unanswered slots — answers delivered before a
    transport failure stand and are never re-requested — with the same
    doubling backoff and deadline budget as {!call}. Slots the shard
    never answered come back [Error _]. An empty array is a no-op. *)

val close : t -> unit
(** Close pooled idle connections. In-flight calls on other threads
    finish (and then discard) their borrowed connections. *)
