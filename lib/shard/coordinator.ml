module P = Fx_server.Protocol
module Server = Fx_server.Server
module PQ = Fx_graph.Priority_queue
module Stopwatch = Fx_util.Stopwatch

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A cross-shard link with both endpoints located once at create time:
   the portal search touches every link per settled portal. *)
type located_link = {
  src : int;  (* global *)
  dst : int;  (* global *)
  dst_tag : string;
  src_shard : int;
  src_local : int;
  dst_shard : int;
  dst_local : int;
}

(* Fan-out latency histogram: upper bounds in ms, +Inf implicit. *)
let fanout_buckets_ms =
  [| 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0 |]

type t = {
  plan : Shard_plan.t;
  shards : Shard_client.t array;
  links : located_link array;
  by_src_shard : located_link list array;  (* links leaving each shard *)
  by_dst_shard : located_link list array;  (* links entering each shard *)
  (* memoized probe results; shard indexes are immutable so entries
     never go stale. One mutex guards both tables (probe volume, not
     contention, is the cost being managed here). *)
  cache_m : Mutex.t;
  conn_cache : (int * int * int, int option) Hashtbl.t;  (* shard, a, b (local) *)
  start_cache : (int * int * string, int option) Hashtbl.t;  (* shard, node, tag *)
  cache_cap : int;
  fanout_hist : int Atomic.t array;
  fanout_count : int Atomic.t;
  fanout_sum_ns : int Atomic.t;
}

let create ?(cache_cap = 65536) ~plan ~shards () =
  let n = Shard_plan.n_shards plan in
  if List.length shards <> n then
    invalid_arg
      (Printf.sprintf "Coordinator.create: plan has %d shards, got %d addresses" n
         (List.length shards));
  let clients =
    Array.of_list
      (List.mapi (fun i (host, port) -> Shard_client.create ~id:i ~host ~port ()) shards)
  in
  let links =
    Array.map
      (fun (l : Shard_plan.cross_link) ->
        let src_shard, src_local = Shard_plan.locate plan l.src in
        let dst_shard, dst_local = Shard_plan.locate plan l.dst in
        { src = l.src; dst = l.dst; dst_tag = l.dst_tag; src_shard; src_local;
          dst_shard; dst_local })
      (Shard_plan.cross_links plan)
  in
  let bucket_by proj =
    let buckets = Array.make n [] in
    Array.iter (fun l -> buckets.(proj l) <- l :: buckets.(proj l)) links;
    buckets
  in
  {
    plan;
    shards = clients;
    links;
    by_src_shard = bucket_by (fun l -> l.src_shard);
    by_dst_shard = bucket_by (fun l -> l.dst_shard);
    cache_m = Mutex.create ();
    conn_cache = Hashtbl.create 256;
    start_cache = Hashtbl.create 256;
    cache_cap;
    fanout_hist = Array.init (Array.length fanout_buckets_ms + 1) (fun _ -> Atomic.make 0);
    fanout_count = Atomic.make 0;
    fanout_sum_ns = Atomic.make 0;
  }

let close t = Array.iter Shard_client.close t.shards

let shard_errors_total t =
  Array.fold_left (fun acc s -> acc + Shard_client.errors_total s) 0 t.shards

(* --- per-request context --------------------------------------------- *)

(* Degradation flags are atomics because the EVALUATE phase-1 fan-out
   sets them from per-shard threads. *)
type ctx = { deadline_ns : int64; partial : bool Atomic.t; timed_out : bool Atomic.t }

let make_ctx deadline_ns =
  { deadline_ns; partial = Atomic.make false; timed_out = Atomic.make false }

let remaining_ms ctx =
  Int64.to_int (Int64.div (Int64.sub ctx.deadline_ns (Stopwatch.now_ns ())) 1_000_000L)

let observe_fanout t ns =
  let ms = Int64.to_float ns /. 1e6 in
  let rec bucket i =
    if i >= Array.length fanout_buckets_ms || ms <= fanout_buckets_ms.(i) then i
    else bucket (i + 1)
  in
  Atomic.incr t.fanout_hist.(bucket 0);
  Atomic.incr t.fanout_count;
  ignore (Atomic.fetch_and_add t.fanout_sum_ns (Int64.to_int ns))

(* One fan-out call. [None] means the shard could not answer within the
   remaining budget — the response degrades ([partial]) rather than
   fails, which is the whole point of sharded fault tolerance. *)
let shard_call t ctx shard req =
  let left = remaining_ms ctx in
  if left <= 0 then begin
    Atomic.set ctx.timed_out true;
    None
  end
  else begin
    let sw = Stopwatch.start () in
    let result = Shard_client.call ~deadline_ms:left t.shards.(shard) req in
    observe_fanout t (Stopwatch.elapsed_ns sw);
    match result with
    | Error _ ->
        Atomic.set ctx.partial true;
        None
    | Ok (_, (P.Busy | P.Err _)) ->
        (* The shard answered but refused or failed the request: its
           contribution is lost all the same. *)
        Atomic.set ctx.partial true;
        None
    | Ok ((_, P.Items { timed_out; partial; _ }) as ok) ->
        if timed_out then Atomic.set ctx.timed_out true;
        if partial then Atomic.set ctx.partial true;
        Some ok
    | Ok _ as ok -> Option.map (fun r -> r) (Result.to_option ok)
  end

(* --- memoized probes -------------------------------------------------- *)

let cache_find t table key =
  with_lock t.cache_m (fun () -> Hashtbl.find_opt table key)

let cache_store t table key v =
  with_lock t.cache_m (fun () ->
      if Hashtbl.length table >= t.cache_cap then Hashtbl.reset table;
      Hashtbl.replace table key v)

(* Within-shard distance between two local nodes. Probes without
   max_dist so one cache entry serves every request; callers prune. *)
let probe_connected t ctx ~shard ~a ~b =
  if a = b then Some 0
  else
    let key = (shard, a, b) in
    match cache_find t t.conn_cache key with
    | Some v -> v
    | None -> (
        match shard_call t ctx shard (P.Connected { a; b; max_dist = None }) with
        | Some (_, P.Dist d) ->
            cache_store t t.conn_cache key d;
            d
        | Some _ | None -> None)

(* Distance from the nearest [tag]-named node above [node]
   (ancestors-or-self) within its shard — the seed probe that tells how
   far a link source sits from the query's start set. *)
let probe_nearest_start t ctx ~shard ~node ~tag =
  let key = (shard, node, tag) in
  match cache_find t t.start_cache key with
  | Some v -> v
  | None -> (
      match
        shard_call t ctx shard
          (P.Ancestors { node; tag = Some tag; k = 1; max_dist = None })
      with
      | Some (items, _) ->
          let v = match items with it :: _ -> Some it.P.dist | [] -> None in
          cache_store t t.start_cache key v;
          v
      | None -> None)

(* --- portal search ---------------------------------------------------- *)

(* Dijkstra over portal nodes with probe-computed edge weights. [visit]
   sees each portal once, at its final distance, in ascending order; a
   [`Stop] prunes the rest (safe exactly because of that order). *)
let dijkstra ctx ~seeds ~neighbours ~visit =
  let dist = Hashtbl.create 32 in
  let pq = PQ.create () in
  let relax v d =
    match Hashtbl.find_opt dist v with
    | Some d' when d' <= d -> ()
    | _ ->
        Hashtbl.replace dist v d;
        PQ.insert pq d v
  in
  List.iter (fun (v, d) -> relax v d) seeds;
  let rec loop () =
    match PQ.extract_min pq with
    | None -> ()
    | Some (d, v) ->
        if remaining_ms ctx <= 0 then Atomic.set ctx.timed_out true
        else if Hashtbl.find_opt dist v = Some d then begin
          match visit v d with
          | `Stop -> ()
          | `Continue ->
              List.iter (fun (u, du) -> relax u du) (neighbours v d);
              loop ()
        end
        else loop ()
  in
  loop ()

let over_max max_dist d = match max_dist with Some m -> d > m | None -> false

(* Forward expansion: from a settled entry portal [v] (a link target)
   at distance [d], every link leaving [v]'s shard is reachable at
   [d + within-shard distance + 1]. *)
let forward_neighbours t ctx v d =
  let shard, local = Shard_plan.locate t.plan v in
  List.filter_map
    (fun l ->
      match probe_connected t ctx ~shard ~a:local ~b:l.src_local with
      | Some ds -> Some (l.dst, d + ds + 1)
      | None -> None)
    t.by_src_shard.(shard)

(* Reverse expansion for ancestor queries, over exit portals (link
   sources): a link arriving in [s]'s shard puts its own source at
   [1 + within-shard distance to s + rdist s]. *)
let reverse_neighbours t ctx s d =
  let shard, local = Shard_plan.locate t.plan s in
  List.filter_map
    (fun l ->
      match probe_connected t ctx ~shard ~a:l.dst_local ~b:local with
      | Some ds -> Some (l.src, 1 + ds + d)
      | None -> None)
    t.by_dst_shard.(shard)

(* Seeds for a forward search rooted at one already-located node. *)
let forward_seeds t ctx ~shard ~local =
  List.filter_map
    (fun l ->
      match probe_connected t ctx ~shard ~a:local ~b:l.src_local with
      | Some ds -> Some (l.dst, ds + 1)
      | None -> None)
    t.by_src_shard.(shard)

(* --- stream merge ------------------------------------------------------ *)

let globalize t ~shard ~offset (it : P.item) =
  { P.node = Shard_plan.global_of t.plan ~shard ~local:it.node; dist = it.dist + offset;
    meta = shard }

(* k-way merge of per-shard streams (each ascending by distance) with
   the same priority queue the PEE uses, preserving the approximately-
   ascending contract end to end. Nodes reachable through several
   shards or portals are deduplicated on first — i.e. nearest —
   occurrence. *)
let merge_streams ~k ~exclude ~emit streams =
  let pq = PQ.create () in
  let push = function
    | [] -> ()
    | (it : P.item) :: rest -> PQ.insert pq it.dist (it, rest)
  in
  List.iter push streams;
  let seen = Hashtbl.create 64 in
  let emitted = ref 0 in
  let rec loop () =
    if !emitted < k then
      match PQ.extract_min pq with
      | None -> ()
      | Some (_, (it, rest)) ->
          push rest;
          if it.node <> exclude && not (Hashtbl.mem seen it.node) then begin
            Hashtbl.replace seen it.node ();
            emit it;
            incr emitted
          end;
          loop ()
  in
  loop ()

let items_response ctx =
  P.Items
    {
      items = [];
      timed_out = Atomic.get ctx.timed_out;
      partial = Atomic.get ctx.partial;
    }

(* --- the verbs --------------------------------------------------------- *)

let node_range_err t =
  P.Err (Printf.sprintf "node id out of range [0, %d)" (Shard_plan.total_nodes t.plan))

let in_range t v = v >= 0 && v < Shard_plan.total_nodes t.plan

(* Descendants of one global node, across shards: within-shard stream
   plus offset streams from every entry portal settled by the search. *)
let descendants_of_node t ctx ~start ~tag ~k ~max_dist ~emit =
  let shard0, local0 = Shard_plan.locate t.plan start in
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  (match
     shard_call t ctx shard0 (P.Node_descendants { node = local0; tag; k; max_dist })
   with
  | Some (items, _) -> add (List.map (globalize t ~shard:shard0 ~offset:0) items)
  | None -> ());
  let tag_admits name = match tag with None -> true | Some w -> w = name in
  let entry_tag = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace entry_tag l.dst l.dst_tag) t.links;
  dijkstra ctx
    ~seeds:(forward_seeds t ctx ~shard:shard0 ~local:local0)
    ~neighbours:(forward_neighbours t ctx)
    ~visit:(fun v d ->
      if over_max max_dist d then `Stop
      else begin
        let shard, local = Shard_plan.locate t.plan v in
        (* The portal node itself is a result when its tag matches —
           the per-entry stream below excludes its own start. *)
        (match Hashtbl.find_opt entry_tag v with
        | Some name when tag_admits name -> add [ { P.node = v; dist = d; meta = shard } ]
        | _ -> ());
        let remaining = Option.map (fun m -> m - d) max_dist in
        (match
           shard_call t ctx shard
             (P.Node_descendants { node = local; tag; k; max_dist = remaining })
         with
        | Some (items, _) -> add (List.map (globalize t ~shard ~offset:d) items)
        | None -> ());
        `Continue
      end);
  merge_streams ~k ~exclude:start ~emit !streams;
  items_response ctx

let ancestors_of_node t ctx ~node ~tag ~k ~max_dist ~emit =
  let shard0, local0 = Shard_plan.locate t.plan node in
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  (match shard_call t ctx shard0 (P.Ancestors { node = local0; tag; k; max_dist }) with
  | Some (items, _) -> add (List.map (globalize t ~shard:shard0 ~offset:0) items)
  | None -> ());
  (* Reverse search over exit portals: rdist(s) = distance from link
     source [s] down to [node]. The ancestors-or-self probe from [s]
     then reports s's side of the collection at [rdist] offsets —
     including [s] itself at distance 0, so portals need no separate
     emission here. *)
  let seeds =
    List.filter_map
      (fun l ->
        match probe_connected t ctx ~shard:shard0 ~a:l.dst_local ~b:local0 with
        | Some ds -> Some (l.src, 1 + ds)
        | None -> None)
      t.by_dst_shard.(shard0)
  in
  dijkstra ctx ~seeds
    ~neighbours:(reverse_neighbours t ctx)
    ~visit:(fun s d ->
      if over_max max_dist d then `Stop
      else begin
        let shard, local = Shard_plan.locate t.plan s in
        let remaining = Option.map (fun m -> m - d) max_dist in
        (match
           shard_call t ctx shard (P.Ancestors { node = local; tag; k; max_dist = remaining })
         with
        | Some (items, _) -> add (List.map (globalize t ~shard ~offset:d) items)
        | None -> ());
        `Continue
      end);
  merge_streams ~k ~exclude:(-1) ~emit !streams;
  items_response ctx

let evaluate t ctx ~start_tag ~target_tag ~k ~max_dist ~emit =
  (* Phase 1: every shard answers over its own sub-collection, in
     parallel. Per-shard top-k by shard distance covers the global
     top-k: any node ranked above a global winner within its shard is
     at least as close globally too. *)
  let n = Array.length t.shards in
  let phase1 = Array.make n None in
  let threads =
    List.init n (fun s ->
        Thread.create
          (fun () ->
            phase1.(s) <-
              shard_call t ctx s (P.Evaluate { start_tag; target_tag; k; max_dist }))
          ())
  in
  List.iter Thread.join threads;
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  Array.iteri
    (fun s result ->
      match result with
      | Some (items, _) -> add (List.map (globalize t ~shard:s ~offset:0) items)
      | None -> ())
    phase1;
  (* Phase 2: cross-shard reach. Seed every entry portal with the
     nearest start-tag node above its link source; the search relaxes
     multi-hop shard chains from there. *)
  let seeds =
    Array.to_list t.links
    |> List.filter_map (fun l ->
           match
             probe_nearest_start t ctx ~shard:l.src_shard ~node:l.src_local
               ~tag:start_tag
           with
           | Some d0 -> Some (l.dst, d0 + 1)
           | None -> None)
  in
  let entry_tag = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace entry_tag l.dst l.dst_tag) t.links;
  dijkstra ctx ~seeds
    ~neighbours:(forward_neighbours t ctx)
    ~visit:(fun v d ->
      if over_max max_dist d then `Stop
      else begin
        let shard, local = Shard_plan.locate t.plan v in
        (match Hashtbl.find_opt entry_tag v with
        | Some name when name = target_tag ->
            add [ { P.node = v; dist = d; meta = shard } ]
        | _ -> ());
        let remaining = Option.map (fun m -> m - d) max_dist in
        (match
           shard_call t ctx shard
             (P.Node_descendants
                { node = local; tag = Some target_tag; k; max_dist = remaining })
         with
        | Some (items, _) -> add (List.map (globalize t ~shard ~offset:d) items)
        | None -> ());
        `Continue
      end);
  merge_streams ~k ~exclude:(-1) ~emit !streams;
  items_response ctx

let connected t ctx ~a ~b ~max_dist =
  let shard_a, local_a = Shard_plan.locate t.plan a in
  let shard_b, local_b = Shard_plan.locate t.plan b in
  let best = ref None in
  let consider = function
    | None -> ()
    | Some d -> ( match !best with Some d' when d' <= d -> () | _ -> best := Some d)
  in
  if shard_a = shard_b then
    consider (probe_connected t ctx ~shard:shard_a ~a:local_a ~b:local_b);
  dijkstra ctx
    ~seeds:(forward_seeds t ctx ~shard:shard_a ~local:local_a)
    ~neighbours:(forward_neighbours t ctx)
    ~visit:(fun v d ->
      (* Entries settle in ascending order: once the frontier passes the
         best candidate (or max_dist), no better path remains. *)
      let beaten = match !best with Some bd -> d >= bd | None -> false in
      if beaten || over_max max_dist d then `Stop
      else begin
        let shard, local = Shard_plan.locate t.plan v in
        if shard = shard_b then
          (match probe_connected t ctx ~shard ~a:local ~b:local_b with
          | Some db -> consider (Some (d + db))
          | None -> ());
        `Continue
      end);
  match !best with
  | Some d when not (over_max max_dist d) -> P.Dist (Some d)
  | Some _ -> P.Dist None
  | None ->
      (* No path found. With a failed shard (or an expired budget) the
         negative is unreliable, so degrade to PARTIAL instead of
         asserting NODIST. *)
      if Atomic.get ctx.partial || Atomic.get ctx.timed_out then items_response ctx
      else P.Dist None

let resolve t ctx ~doc ~anchor =
  match Shard_plan.shard_of_doc t.plan doc with
  | None ->
      P.Items { items = []; timed_out = false; partial = false }
  | Some shard -> (
      match shard_call t ctx shard (P.Resolve { doc; anchor }) with
      | Some (items, P.Items { timed_out; partial; _ }) ->
          P.Items
            { items = List.map (globalize t ~shard ~offset:0) items; timed_out; partial }
      | Some _ | None -> items_response ctx)

let descendants_by_name t ctx ~doc ~anchor ~tag ~k ~max_dist ~emit =
  match Shard_plan.shard_of_doc t.plan doc with
  | None ->
      P.Err
        (Printf.sprintf "unknown document or anchor %s%s" doc
           (match anchor with None -> "" | Some a -> "#" ^ a))
  | Some shard -> (
      match shard_call t ctx shard (P.Resolve { doc; anchor }) with
      | Some (it :: _, _) ->
          let start = Shard_plan.global_of t.plan ~shard ~local:it.P.node in
          descendants_of_node t ctx ~start ~tag ~k ~max_dist ~emit
      | Some ([], _) ->
          P.Err
            (Printf.sprintf "unknown document or anchor %s%s" doc
               (match anchor with None -> "" | Some a -> "#" ^ a))
      | None -> items_response ctx)

(* --- the backend ------------------------------------------------------- *)

let eval t ~emit ~deadline_ns (req : P.request) =
  let ctx = make_ctx deadline_ns in
  match req with
  | P.Ping | P.Stats | P.Metrics | P.Sleep _ ->
      (* Handled by the server's Custom dispatch before reaching here. *)
      P.Err "internal: verb not routed to the coordinator"
  | P.Connected { a; b; max_dist } ->
      if not (in_range t a && in_range t b) then node_range_err t
      else connected t ctx ~a ~b ~max_dist
  | P.Descendants { doc; anchor; tag; k; max_dist } ->
      descendants_by_name t ctx ~doc ~anchor ~tag ~k ~max_dist ~emit
  | P.Node_descendants { node; tag; k; max_dist } ->
      if not (in_range t node) then node_range_err t
      else descendants_of_node t ctx ~start:node ~tag ~k ~max_dist ~emit
  | P.Ancestors { node; tag; k; max_dist } ->
      if not (in_range t node) then node_range_err t
      else ancestors_of_node t ctx ~node ~tag ~k ~max_dist ~emit
  | P.Evaluate { start_tag; target_tag; k; max_dist } ->
      evaluate t ctx ~start_tag ~target_tag ~k ~max_dist ~emit
  | P.Resolve { doc; anchor } -> resolve t ctx ~doc ~anchor

let stats_lines t =
  ("backend: coordinator (scatter-gather over shard servers)"
  :: Shard_plan.describe t.plan)
  @ Array.to_list
      (Array.map
         (fun s ->
           Printf.sprintf "shard %d at %s: %d failed attempts" (Shard_client.id s)
             (Shard_client.address s) (Shard_client.errors_total s))
         t.shards)
  @ [
      (let conn, start =
         with_lock t.cache_m (fun () ->
             (Hashtbl.length t.conn_cache, Hashtbl.length t.start_cache))
       in
       Printf.sprintf "probe cache: %d connected, %d nearest-start entries" conn start);
    ]

let metric_lines t () =
  let errors =
    Array.to_list
      (Array.map
         (fun s ->
           Printf.sprintf "flix_shard_errors_total{shard=\"%d\",addr=\"%s\"} %d"
             (Shard_client.id s) (Shard_client.address s) (Shard_client.errors_total s))
         t.shards)
  in
  let le i =
    if i >= Array.length fanout_buckets_ms then "+Inf"
    else
      let b = fanout_buckets_ms.(i) in
      if Float.is_integer b then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b
  in
  let cumulative = ref 0 in
  let buckets =
    List.init (Array.length t.fanout_hist) (fun i ->
        cumulative := !cumulative + Atomic.get t.fanout_hist.(i);
        Printf.sprintf "flix_shard_fanout_latency_ms_bucket{le=\"%s\"} %d" (le i)
          !cumulative)
  in
  [
    "# HELP flix_shard_errors_total Failed shard attempts, by shard.";
    "# TYPE flix_shard_errors_total counter";
  ]
  @ errors
  @ [
      "# HELP flix_shard_fanout_latency_ms Latency of coordinator-to-shard calls.";
      "# TYPE flix_shard_fanout_latency_ms histogram";
    ]
  @ buckets
  @ [
      Printf.sprintf "flix_shard_fanout_latency_ms_sum %.6f"
        (float_of_int (Atomic.get t.fanout_sum_ns) /. 1e6);
      Printf.sprintf "flix_shard_fanout_latency_ms_count %d" (Atomic.get t.fanout_count);
    ]

let backend t =
  { Server.custom_eval = (fun ~emit ~deadline_ns req -> eval t ~emit ~deadline_ns req);
    custom_stats = (fun () -> stats_lines t) }
