module P = Fx_server.Protocol
module Server = Fx_server.Server
module PQ = Fx_graph.Priority_queue
module Stopwatch = Fx_util.Stopwatch

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A cross-shard link with both endpoints located once at create time:
   the portal search touches every link per settled portal. *)
type located_link = {
  src : int;  (* global *)
  dst : int;  (* global *)
  dst_tag : string;
  src_shard : int;
  src_local : int;
  dst_shard : int;
  dst_local : int;
}

(* Fan-out latency histogram: upper bounds in ms, +Inf implicit. *)
let fanout_buckets_ms =
  [| 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0 |]

(* Batch-size histogram: sub-requests per probe RPC, +Inf implicit. *)
let batch_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128; 256 |]

(* A deduplicated portal, located once at create time. [tag] is the
   node's tag name for entry portals (link targets emit themselves into
   matching streams) and [""] for exit portals, which never do. *)
type portal = { g : int; shard : int; local : int; tag : string }

type t = {
  plan : Shard_plan.t;
  shards : Shard_client.t array;
  addrs : (string * int) list;  (* the addresses [shards] was built from *)
  links : located_link array;
  by_src_shard : located_link list array;  (* links leaving each shard *)
  by_dst_shard : located_link list array;  (* links entering each shard *)
  (* memoized probe results; shard indexes are immutable so entries
     never go stale. One mutex guards both tables (probe volume, not
     contention, is the cost being managed here). *)
  cache_m : Mutex.t;
  conn_cache : (int * int * int, int option) Hashtbl.t;  (* shard, a, b (local) *)
  start_cache : (int * int * string, int option) Hashtbl.t;  (* shard, node, tag *)
  (* Entry-portal streams for the closure fast path, cached raw — local
     ids, no offset — so one fetch serves every start that reaches the
     portal. Keyed by everything the shard sees (shard, local, tag, k,
     remaining); only successful fetches are stored. *)
  stream_cache : (int * int * string option * int * int option, P.item list) Hashtbl.t;
  cache_cap : int;
  (* [batching = false] sends every probe as its own round trip — the
     before/after lever for the bench and the equivalence tests. *)
  batching : bool;
  (* The portal closure, when one was loaded AND its epoch matches the
     plan. A mismatched closure is dropped at create ([closure_stale])
     rather than risking inexact joins. *)
  closure : Portal_closure.t option;
  closure_stale : bool;
  (* Every distinct link target / link source, located once. *)
  entry_portals : portal array;
  exit_portals : portal array;
  entries_by_shard : portal array array;
  exits_by_shard : portal array array;
  (* Global ids the portal graph carries as sources (doc roots and
     entry portals): closure labels from these nodes are exact, so a
     query anchored here skips its exit-probe wave. Immutable after
     create. *)
  source_nodes : (int, unit) Hashtbl.t;
  closure_lookups : int Atomic.t;
  closure_fallbacks : int Atomic.t;
  query_cache : Coord_cache.t option;
  fanout_hist : int Atomic.t array;
  fanout_count : int Atomic.t;
  fanout_sum_ns : int Atomic.t;
  batch_hist : int Atomic.t array;
  batch_count : int Atomic.t;
  batch_sum : int Atomic.t;
}

let create ?(cache_cap = 65536) ?(batching = true) ?query_cache ?closure ~plan ~shards
    () =
  let n = Shard_plan.n_shards plan in
  if List.length shards <> n then
    invalid_arg
      (Printf.sprintf "Coordinator.create: plan has %d shards, got %d addresses" n
         (List.length shards));
  let clients =
    Array.of_list
      (List.mapi (fun i (host, port) -> Shard_client.create ~id:i ~host ~port ()) shards)
  in
  let links =
    Array.map
      (fun (l : Shard_plan.cross_link) ->
        let src_shard, src_local = Shard_plan.locate plan l.src in
        let dst_shard, dst_local = Shard_plan.locate plan l.dst in
        { src = l.src; dst = l.dst; dst_tag = l.dst_tag; src_shard; src_local;
          dst_shard; dst_local })
      (Shard_plan.cross_links plan)
  in
  let bucket_by proj =
    let buckets = Array.make n [] in
    Array.iter (fun l -> buckets.(proj l) <- l :: buckets.(proj l)) links;
    buckets
  in
  let closure_given = Option.is_some closure in
  let closure =
    match closure with
    | Some c when Portal_closure.matches c plan -> Some c
    | _ -> None
  in
  let dedup_portals proj tag =
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    Array.iter
      (fun l ->
        let g, shard, local = proj l in
        if not (Hashtbl.mem seen g) then begin
          Hashtbl.replace seen g ();
          acc := { g; shard; local; tag = tag l } :: !acc
        end)
      links;
    Array.of_list (List.sort (fun p q -> Int.compare p.g q.g) !acc)
  in
  let entry_portals =
    dedup_portals (fun l -> (l.dst, l.dst_shard, l.dst_local)) (fun l -> l.dst_tag)
  in
  let exit_portals =
    dedup_portals (fun l -> (l.src, l.src_shard, l.src_local)) (fun _ -> "")
  in
  let portals_by_shard portals =
    let buckets = Array.make n [] in
    Array.iter (fun p -> buckets.(p.shard) <- p :: buckets.(p.shard)) portals;
    Array.map (fun ps -> Array.of_list (List.rev ps)) buckets
  in
  let source_nodes = Hashtbl.create 256 in
  Array.iter (fun g -> Hashtbl.replace source_nodes g ()) (Shard_plan.doc_roots plan);
  Array.iter (fun (l : located_link) -> Hashtbl.replace source_nodes l.dst ()) links;
  {
    plan;
    shards = clients;
    addrs = shards;
    links;
    by_src_shard = bucket_by (fun l -> l.src_shard);
    by_dst_shard = bucket_by (fun l -> l.dst_shard);
    cache_m = Mutex.create ();
    conn_cache = Hashtbl.create 256;
    start_cache = Hashtbl.create 256;
    stream_cache = Hashtbl.create 256;
    cache_cap;
    batching;
    closure;
    closure_stale = closure_given && Option.is_none closure;
    entry_portals;
    exit_portals;
    entries_by_shard = portals_by_shard entry_portals;
    exits_by_shard = portals_by_shard exit_portals;
    source_nodes;
    closure_lookups = Atomic.make 0;
    closure_fallbacks = Atomic.make 0;
    query_cache =
      Option.map
        (fun capacity ->
          Coord_cache.create
            ~closure_epoch:
              (match closure with Some c -> Portal_closure.epoch c | None -> 0)
            ~capacity ())
        query_cache;
    fanout_hist = Array.init (Array.length fanout_buckets_ms + 1) (fun _ -> Atomic.make 0);
    fanout_count = Atomic.make 0;
    fanout_sum_ns = Atomic.make 0;
    batch_hist = Array.init (Array.length batch_buckets + 1) (fun _ -> Atomic.make 0);
    batch_count = Atomic.make 0;
    batch_sum = Atomic.make 0;
  }

let close t = Array.iter Shard_client.close t.shards

let shard_errors_total t =
  Array.fold_left (fun acc s -> acc + Shard_client.errors_total s) 0 t.shards

let probe_rpcs_total t =
  Array.fold_left (fun acc s -> acc + Shard_client.rpcs_total s) 0 t.shards

let probe_subs_total t =
  Array.fold_left (fun acc s -> acc + Shard_client.subs_total s) 0 t.shards

let query_cache_stats t = Option.map Coord_cache.stats t.query_cache
let has_closure t = Option.is_some t.closure
let closure_lookups_total t = Atomic.get t.closure_lookups
let closure_fallbacks_total t = Atomic.get t.closure_fallbacks

(* --- per-request context --------------------------------------------- *)

(* Degradation flags are atomics because the EVALUATE phase-1 fan-out
   sets them from per-shard threads. *)
type ctx = { deadline_ns : int64; partial : bool Atomic.t; timed_out : bool Atomic.t }

let make_ctx deadline_ns =
  { deadline_ns; partial = Atomic.make false; timed_out = Atomic.make false }

let remaining_ms ctx =
  Int64.to_int (Int64.div (Int64.sub ctx.deadline_ns (Stopwatch.now_ns ())) 1_000_000L)

let observe_fanout t ns =
  let ms = Int64.to_float ns /. 1e6 in
  let rec bucket i =
    if i >= Array.length fanout_buckets_ms || ms <= fanout_buckets_ms.(i) then i
    else bucket (i + 1)
  in
  Atomic.incr t.fanout_hist.(bucket 0);
  Atomic.incr t.fanout_count;
  ignore (Atomic.fetch_and_add t.fanout_sum_ns (Int64.to_int ns))

let observe_batch t n =
  let rec bucket i =
    if i >= Array.length batch_buckets || n <= batch_buckets.(i) then i else bucket (i + 1)
  in
  Atomic.incr t.batch_hist.(bucket 0);
  Atomic.incr t.batch_count;
  ignore (Atomic.fetch_and_add t.batch_sum n)

(* Collapse the transport/server failure planes into the degradation
   flags: [None] means the shard's contribution is lost ([partial]) —
   the response degrades rather than fails, which is the whole point of
   sharded fault tolerance. Successful answers come back as
   [(items, response-with-empty-items)], the same shape whether the
   exchange was a single call or a batch slot. *)
(* [Shard_client.call] splits a stream into (items, trailer-response);
   fold the items back in so single calls and batch slots classify
   through the same shape. *)
let inline_items (items, resp) =
  match resp with
  | P.Items { timed_out; partial; _ } -> P.Items { items; timed_out; partial }
  | resp -> resp

let classify ctx = function
  | Error _ ->
      Atomic.set ctx.partial true;
      None
  | Ok (P.Busy | P.Err _) ->
      (* The shard answered but refused or failed the request: its
         contribution is lost all the same. *)
      Atomic.set ctx.partial true;
      None
  | Ok (P.Items { items; timed_out; partial }) ->
      if timed_out then Atomic.set ctx.timed_out true;
      if partial then Atomic.set ctx.partial true;
      Some (items, P.Items { items = []; timed_out; partial })
  | Ok resp -> Some ([], resp)

(* One fan-out call. *)
let shard_call t ctx shard req =
  let left = remaining_ms ctx in
  if left <= 0 then begin
    Atomic.set ctx.timed_out true;
    None
  end
  else begin
    let sw = Stopwatch.start () in
    let result = Shard_client.call ~deadline_ms:left t.shards.(shard) req in
    observe_fanout t (Stopwatch.elapsed_ns sw);
    classify ctx (Result.map inline_items result)
  end

(* Run one shard's share of a probe wave: a single pipelined BATCH
   round trip when batching is on, per-request calls otherwise. *)
let exec_shard t ctx shard reqs =
  let n = Array.length reqs in
  let out = Array.make n None in
  if t.batching then begin
    let left = remaining_ms ctx in
    if left <= 0 then Atomic.set ctx.timed_out true
    else begin
      observe_batch t n;
      let sw = Stopwatch.start () in
      let results = Shard_client.call_many ~deadline_ms:left t.shards.(shard) reqs in
      observe_fanout t (Stopwatch.elapsed_ns sw);
      Array.iteri (fun i r -> out.(i) <- classify ctx r) results
    end
  end
  else Array.iteri (fun i req -> out.(i) <- shard_call t ctx shard req) reqs;
  out

(* --- memoized probes -------------------------------------------------- *)

let cache_find t table key =
  with_lock t.cache_m (fun () -> Hashtbl.find_opt table key)

let cache_store t table key v =
  with_lock t.cache_m (fun () ->
      if Hashtbl.length table >= t.cache_cap then Hashtbl.reset table;
      Hashtbl.replace table key v)

(* --- probe waves ------------------------------------------------------ *)

(* One wave's worth of shard work, accumulated probe by probe and fired
   as one batch per shard. Each entry pairs a request with the closure
   that consumes its (classified) answer; [run_plan] executes the wire
   calls on per-shard threads but runs every [apply] sequentially on
   the calling thread, so the closures mutate caches and stream
   accumulators without any locking of their own. *)
type wave_plan = {
  per_shard : (P.request * ((P.item list * P.response) option -> unit)) list array;
  (* probes already queued this wave — several wave nodes can ask for
     the same segment distance *)
  queued_conn : (int * int * int, unit) Hashtbl.t;
  queued_start : (int * int * string, unit) Hashtbl.t;
}

let new_plan t =
  {
    per_shard = Array.make (Array.length t.shards) [];
    queued_conn = Hashtbl.create 16;
    queued_start = Hashtbl.create 8;
  }

let plan_add plan shard req apply =
  plan.per_shard.(shard) <- (req, apply) :: plan.per_shard.(shard)

(* Queue a within-shard distance probe unless it is trivial, cached, or
   already part of this wave. Probes carry no max_dist so one cache
   entry serves every request; readers prune. *)
let plan_conn plan t ~shard ~a ~b =
  if a <> b then begin
    let key = (shard, a, b) in
    if
      (not (Hashtbl.mem plan.queued_conn key))
      && Option.is_none (cache_find t t.conn_cache key)
    then begin
      Hashtbl.replace plan.queued_conn key ();
      plan_add plan shard
        (P.Connected { a; b; max_dist = None })
        (function
          | Some (_, P.Dist d) -> cache_store t t.conn_cache key d
          | Some _ | None ->
              (* Failed or cut off: leave uncached so a later wave (or
                 request) re-asks once the shard recovers. *)
              ())
    end
  end

(* Queue a nearest-start probe: distance from the closest [tag]-named
   node above [node] (ancestors-or-self) within its shard. *)
let plan_start plan t ~shard ~node ~tag =
  let key = (shard, node, tag) in
  if
    (not (Hashtbl.mem plan.queued_start key))
    && Option.is_none (cache_find t t.start_cache key)
  then begin
    Hashtbl.replace plan.queued_start key ();
    plan_add plan shard
      (P.Ancestors { node; tag = Some tag; k = 1; max_dist = None })
      (function
        | Some (it :: _, _) -> cache_store t t.start_cache key (Some it.P.dist)
        | Some ([], P.Items { timed_out = false; partial = false; _ }) ->
            (* Only a clean empty answer is a real negative: an empty
               TIMEOUT/PARTIAL answer must stay uncached or a slow probe
               would poison the cache with a false "no start above". *)
            cache_store t t.start_cache key None
        | Some _ | None -> ())
  end

(* Fire the wave: one batch per shard, shards in parallel, then the
   applies in order on this thread. *)
let run_plan t ctx plan =
  let groups = ref [] in
  Array.iteri
    (fun shard entries ->
      if entries <> [] then groups := (shard, Array.of_list (List.rev entries)) :: !groups)
    plan.per_shard;
  match !groups with
  | [] -> ()
  | [ (shard, entries) ] ->
      (* One shard: no thread hop needed. *)
      let out = exec_shard t ctx shard (Array.map fst entries) in
      Array.iteri (fun i r -> snd entries.(i) r) out
  | groups ->
      let running =
        List.map
          (fun (shard, entries) ->
            let out = ref [||] in
            let th =
              Thread.create
                (fun () -> out := exec_shard t ctx shard (Array.map fst entries))
                ()
            in
            (th, entries, out))
          groups
      in
      List.iter (fun (th, _, _) -> Thread.join th) running;
      List.iter
        (fun (_, entries, out) ->
          let out = !out in
          if Array.length out = Array.length entries then
            Array.iteri (fun i r -> snd entries.(i) r) out)
        running

(* Cache readers for the relax step that follows [run_plan]. An absent
   entry means the probe failed this wave (the degradation flags are
   already set); treat the segment as unreachable, like the unbatched
   path did. *)
let conn_dist t ~shard ~a ~b =
  if a = b then Some 0
  else match cache_find t t.conn_cache (shard, a, b) with Some v -> v | None -> None

let start_dist t ~shard ~node ~tag =
  match cache_find t t.start_cache (shard, node, tag) with Some v -> v | None -> None

(* --- the portal closure ------------------------------------------------ *)

(* The oracle to join against, or [None] to take the probed path. A
   fallback is only counted when probing will actually send portal
   probes — with no cross links both paths are identical. *)
let closure_for t =
  match t.closure with
  | Some _ as c -> c
  | None ->
      if Array.length t.links > 0 then Atomic.incr t.closure_fallbacks;
      None

let closure_dist t cl a b =
  Atomic.incr t.closure_lookups;
  Portal_closure.distance cl a b

let min_opt acc d = match acc with Some a when a <= d -> acc | _ -> Some d

(* d(e) for every entry portal [e]: the exact cross-shard distance from
   [g0], equal by construction to what the probed wave search settles
   (see DESIGN.md). A start the portal graph carries as a source (doc
   root or entry portal) joins labels directly and needs no probe at
   all; any other start pays one batched conn wave to its own shard's
   exits, then joins from there. *)
let closure_entry_dists t ctx cl ~g0 ~shard0 ~local0 =
  if Hashtbl.mem t.source_nodes g0 then
    Array.to_list t.entry_portals
    |> List.filter_map (fun (e : portal) ->
           Option.map (fun d -> (e, d)) (closure_dist t cl g0 e.g))
  else begin
    let exits = t.exits_by_shard.(shard0) in
    let plan = new_plan t in
    Array.iter (fun (x : portal) -> plan_conn plan t ~shard:shard0 ~a:local0 ~b:x.local)
      exits;
    run_plan t ctx plan;
    Array.to_list t.entry_portals
    |> List.filter_map (fun (e : portal) ->
           let best =
             Array.fold_left
               (fun acc (x : portal) ->
                 match conn_dist t ~shard:shard0 ~a:local0 ~b:x.local with
                 | None -> acc
                 | Some dx -> (
                     match closure_dist t cl x.g e.g with
                     | None -> acc
                     | Some dc -> min_opt acc (dx + dc)))
               None exits
           in
           Option.map (fun d -> (e, d)) best)
  end

(* The merge's k-th candidate distance over the streams gathered so
   far: the distance of the k-th item the merge would emit from this
   pool (dedup and exclusion mirror {!merge_streams}), or [max_int]
   when fewer than [k] distinct nodes exist yet. Adding streams can
   only lower it, so it upper-bounds the final answer's k-th distance
   at every point of the lazy fetch. *)
let kth_candidate_dist ~k ~exclude streams =
  if k <= 0 then -1
  else begin
    let sorted =
      List.sort
        (fun (a : P.item) (b : P.item) ->
          if a.dist <> b.dist then Int.compare a.dist b.dist
          else Int.compare a.node b.node)
        (List.concat streams)
    in
    let seen = Hashtbl.create 64 in
    let rec nth n = function
      | [] -> max_int
      | (it : P.item) :: rest ->
          if it.node = exclude || Hashtbl.mem seen it.node then nth n rest
          else begin
            Hashtbl.replace seen it.node ();
            if n = k then it.dist else nth (n + 1) rest
          end
    in
    nth 1 sorted
  end

(* Fetch portal streams lazily, nearest offset first, one offset level
   per batched wave. Stop once every unfetched stream starts strictly
   past the current k-th candidate distance: each of its items would
   sort after the k items the merge emits, so skipping it leaves the
   answer byte-identical to fetching everything. [pending] pairs each
   stream's offset with a closure that queues its probe; it must be
   sorted ascending by offset. *)
let fetch_streams_on_demand t ctx ~k ~exclude ~streams ~pending =
  let pending = ref pending in
  let rec loop () =
    match !pending with
    | [] -> ()
    | (offset, _) :: _ ->
        if offset > kth_candidate_dist ~k ~exclude !streams then ()
        else begin
          let plan = new_plan t in
          let rec take = function
            | (o, fetch) :: rest when o = offset ->
                fetch plan;
                take rest
            | rest -> rest
          in
          pending := take !pending;
          run_plan t ctx plan;
          loop ()
        end
  in
  loop ()

(* --- portal search ---------------------------------------------------- *)

(* Dijkstra over portal nodes, expanded a whole equal-distance wave at
   a time: every edge has weight >= 1 (one within-shard segment plus
   the unit link hop), so once the queue's minimum is [d], {e every}
   entry at [d] is final — settling them together yields exactly the
   distances of node-at-a-time Dijkstra while letting [expand] probe
   the whole frontier in one batch per shard. [expand ~d wave] returns
   the relaxation edges, or [`Stop] to prune the rest (safe because
   waves settle in ascending order). *)
let wave_search ctx ~seeds ~expand =
  let dist = Hashtbl.create 32 in
  let settled = Hashtbl.create 32 in
  let pq = PQ.create () in
  let relax v d =
    match Hashtbl.find_opt dist v with
    | Some d' when d' <= d -> ()
    | _ ->
        Hashtbl.replace dist v d;
        PQ.insert pq d v
  in
  List.iter (fun (v, d) -> relax v d) seeds;
  (* Drain every queue entry at distance [d], skipping stale
     lazy-deletion duplicates. *)
  let rec gather d acc =
    match PQ.peek_min pq with
    | Some (d', v) when d' = d ->
        ignore (PQ.extract_min pq);
        if Hashtbl.mem settled v then gather d acc
        else begin
          Hashtbl.replace settled v ();
          gather d (v :: acc)
        end
    | _ -> acc
  in
  let rec loop () =
    match PQ.peek_min pq with
    | None -> ()
    | Some (d, _) ->
        if remaining_ms ctx <= 0 then Atomic.set ctx.timed_out true
        else begin
          match gather d [] with
          | [] -> loop ()
          | wave -> (
              match expand ~d wave with
              | `Stop -> ()
              | `Continue edges ->
                  List.iter (fun (u, du) -> relax u du) edges;
                  loop ())
        end
  in
  loop ()

let over_max max_dist d = match max_dist with Some m -> d > m | None -> false

(* Forward expansion: from a settled entry portal [v] (a link target)
   at distance [d], every link leaving [v]'s shard is reachable at
   [d + within-shard distance + 1]. [plan_forward] queues the wave's
   segment probes; [forward_edges] reads them back after [run_plan]. *)
let plan_forward plan t ~shard ~local =
  List.iter (fun l -> plan_conn plan t ~shard ~a:local ~b:l.src_local) t.by_src_shard.(shard)

let forward_edges t ~shard ~local ~d =
  List.filter_map
    (fun l ->
      match conn_dist t ~shard ~a:local ~b:l.src_local with
      | Some ds -> Some (l.dst, d + ds + 1)
      | None -> None)
    t.by_src_shard.(shard)

(* Reverse expansion for ancestor queries, over exit portals (link
   sources): a link arriving in [s]'s shard puts its own source at
   [1 + within-shard distance to s + rdist s]. *)
let plan_reverse plan t ~shard ~local =
  List.iter (fun l -> plan_conn plan t ~shard ~a:l.dst_local ~b:local) t.by_dst_shard.(shard)

let reverse_edges t ~shard ~local ~d =
  List.filter_map
    (fun l ->
      match conn_dist t ~shard ~a:l.dst_local ~b:local with
      | Some ds -> Some (l.src, 1 + ds + d)
      | None -> None)
    t.by_dst_shard.(shard)

(* --- stream merge ------------------------------------------------------ *)

let globalize t ~shard ~offset (it : P.item) =
  { P.node = Shard_plan.global_of t.plan ~shard ~local:it.node; dist = it.dist + offset;
    meta = shard }

(* One entry portal's stream on the closure fast path: replayed from
   the stream cache when a previous request already fetched it (the
   probe is a pure read of the shard's index, so the replay is exactly
   the bytes the probe would return), otherwise a pending fetch for
   {!fetch_streams_on_demand}. A replayed stream joins the pool up
   front, which can only lower the lazy fetch's cutoff — the merged
   answer is unchanged either way. *)
let entry_stream_pending t ~(e : portal) ~tag ~k ~max_dist ~d ~add =
  let remaining = Option.map (fun m -> m - d) max_dist in
  let key = (e.shard, e.local, tag, k, remaining) in
  let admit items = add (List.map (globalize t ~shard:e.shard ~offset:d) items) in
  match cache_find t t.stream_cache key with
  | Some items ->
      admit items;
      None
  | None ->
      Some
        ( d,
          fun plan ->
            plan_add plan e.shard
              (P.Node_descendants { node = e.local; tag; k; max_dist = remaining })
              (function
                | Some (items, _) ->
                    cache_store t t.stream_cache key items;
                    admit items
                | None -> ()) )

(* k-way merge of per-shard streams (each ascending by distance) with
   the same priority queue the PEE uses, preserving the approximately-
   ascending contract end to end. Nodes reachable through several
   shards or portals are deduplicated on first — i.e. nearest —
   occurrence. Ties break on global node id — the key packs
   (dist, node) into one integer — so the merged bytes are a function
   of the stream multiset alone, not of which path (probed or closure)
   produced the streams or in what order. *)
let merge_streams t ~k ~exclude ~emit streams =
  let total = Shard_plan.total_nodes t.plan in
  let pq = PQ.create () in
  let push = function
    | [] -> ()
    | (it : P.item) :: rest -> PQ.insert pq ((it.dist * total) + it.node) (it, rest)
  in
  List.iter push streams;
  let seen = Hashtbl.create 64 in
  let emitted = ref 0 in
  let rec loop () =
    if !emitted < k then
      match PQ.extract_min pq with
      | None -> ()
      | Some (_, (it, rest)) ->
          push rest;
          if it.node <> exclude && not (Hashtbl.mem seen it.node) then begin
            Hashtbl.replace seen it.node ();
            emit it;
            incr emitted
          end;
          loop ()
  in
  loop ()

let items_response ctx =
  P.Items
    {
      items = [];
      timed_out = Atomic.get ctx.timed_out;
      partial = Atomic.get ctx.partial;
    }

(* --- the verbs --------------------------------------------------------- *)

let node_range_err t =
  P.Err (Printf.sprintf "node id out of range [0, %d)" (Shard_plan.total_nodes t.plan))

let in_range t v = v >= 0 && v < Shard_plan.total_nodes t.plan

(* Descendants of one global node, across shards: within-shard stream
   plus offset streams from every entry portal settled by the search.
   Wave 0 batches the start's own stream with its seed probes; each
   search wave batches the frontier's streams and segment probes — one
   round trip per shard per wave. *)
let descendants_probed t ctx ~start ~tag ~k ~max_dist ~emit =
  let shard0, local0 = Shard_plan.locate t.plan start in
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  let add_stream plan ~shard ~local ~offset ~remaining =
    plan_add plan shard
      (P.Node_descendants { node = local; tag; k; max_dist = remaining })
      (function
        | Some (items, _) -> add (List.map (globalize t ~shard ~offset) items)
        | None -> ())
  in
  let plan0 = new_plan t in
  add_stream plan0 ~shard:shard0 ~local:local0 ~offset:0 ~remaining:max_dist;
  plan_forward plan0 t ~shard:shard0 ~local:local0;
  run_plan t ctx plan0;
  let tag_admits name = match tag with None -> true | Some w -> w = name in
  let entry_tag = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace entry_tag l.dst l.dst_tag) t.links;
  wave_search ctx
    ~seeds:(forward_edges t ~shard:shard0 ~local:local0 ~d:0)
    ~expand:(fun ~d wave ->
      if over_max max_dist d then `Stop
      else begin
        let located = List.map (fun v -> (v, Shard_plan.locate t.plan v)) wave in
        let plan = new_plan t in
        let remaining = Option.map (fun m -> m - d) max_dist in
        List.iter
          (fun (v, (shard, local)) ->
            (* The portal node itself is a result when its tag matches —
               the per-entry stream excludes its own start. *)
            (match Hashtbl.find_opt entry_tag v with
            | Some name when tag_admits name ->
                add [ { P.node = v; dist = d; meta = shard } ]
            | _ -> ());
            add_stream plan ~shard ~local ~offset:d ~remaining;
            plan_forward plan t ~shard ~local)
          located;
        run_plan t ctx plan;
        `Continue
          (List.concat_map
             (fun (_, (shard, local)) -> forward_edges t ~shard ~local ~d)
             located)
      end);
  merge_streams t ~k ~exclude:start ~emit !streams;
  items_response ctx

(* The closure fast path: the same streams, same offsets, same merge —
   but every portal distance is a label join instead of a probe wave,
   and only streams that can still contribute to the top [k] are
   fetched at all. *)
let descendants_closure t ctx cl ~start ~tag ~k ~max_dist ~emit =
  let shard0, local0 = Shard_plan.locate t.plan start in
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  let plan0 = new_plan t in
  plan_add plan0 shard0
    (P.Node_descendants { node = local0; tag; k; max_dist })
    (function
      | Some (items, _) -> add (List.map (globalize t ~shard:shard0 ~offset:0) items)
      | None -> ());
  run_plan t ctx plan0;
  let entries =
    closure_entry_dists t ctx cl ~g0:start ~shard0 ~local0
    |> List.filter (fun (_, d) -> not (over_max max_dist d))
  in
  let tag_admits name = match tag with None -> true | Some w -> w = name in
  (* Entry portals are results themselves when their tag matches, just
     as the probed search emits each settled portal. *)
  List.iter
    (fun ((e : portal), d) ->
      if tag_admits e.tag then add [ { P.node = e.g; dist = d; meta = e.shard } ])
    entries;
  let pending =
    entries
    |> List.sort (fun ((e1 : portal), d1) ((e2 : portal), d2) ->
           if d1 <> d2 then Int.compare d1 d2 else Int.compare e1.g e2.g)
    |> List.filter_map (fun ((e : portal), d) ->
           entry_stream_pending t ~e ~tag ~k ~max_dist ~d ~add)
  in
  fetch_streams_on_demand t ctx ~k ~exclude:start ~streams ~pending;
  merge_streams t ~k ~exclude:start ~emit !streams;
  items_response ctx

let descendants_of_node t ctx ~start ~tag ~k ~max_dist ~emit =
  match closure_for t with
  | Some cl -> descendants_closure t ctx cl ~start ~tag ~k ~max_dist ~emit
  | None -> descendants_probed t ctx ~start ~tag ~k ~max_dist ~emit

let ancestors_probed t ctx ~node ~tag ~k ~max_dist ~emit =
  let shard0, local0 = Shard_plan.locate t.plan node in
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  let add_stream plan ~shard ~local ~offset ~remaining =
    plan_add plan shard
      (P.Ancestors { node = local; tag; k; max_dist = remaining })
      (function
        | Some (items, _) -> add (List.map (globalize t ~shard ~offset) items)
        | None -> ())
  in
  (* Reverse search over exit portals: rdist(s) = distance from link
     source [s] down to [node]. The ancestors-or-self probe from [s]
     then reports s's side of the collection at [rdist] offsets —
     including [s] itself at distance 0, so portals need no separate
     emission here. *)
  let plan0 = new_plan t in
  add_stream plan0 ~shard:shard0 ~local:local0 ~offset:0 ~remaining:max_dist;
  plan_reverse plan0 t ~shard:shard0 ~local:local0;
  run_plan t ctx plan0;
  wave_search ctx
    ~seeds:(reverse_edges t ~shard:shard0 ~local:local0 ~d:0)
    ~expand:(fun ~d wave ->
      if over_max max_dist d then `Stop
      else begin
        let located = List.map (fun s -> Shard_plan.locate t.plan s) wave in
        let plan = new_plan t in
        let remaining = Option.map (fun m -> m - d) max_dist in
        List.iter
          (fun (shard, local) ->
            add_stream plan ~shard ~local ~offset:d ~remaining;
            plan_reverse plan t ~shard ~local)
          located;
        run_plan t ctx plan;
        `Continue
          (List.concat_map
             (fun (shard, local) -> reverse_edges t ~shard ~local ~d)
             located)
      end);
  merge_streams t ~k ~exclude:(-1) ~emit !streams;
  items_response ctx

(* Ancestors via the closure: rdist(x) — the probed reverse search's
   distance from exit portal [x] down to [node] — decomposes as the
   closure leg from [x] to some entry portal of [node]'s shard plus
   that entry's within-shard distance down to [node]. Only the latter
   probes, one conn batch on [node]'s own shard (the same probes the
   probed path's wave 0 sends). Anchors cannot help here: the portal
   graph has no edges into a doc root. *)
let ancestors_closure t ctx cl ~node ~tag ~k ~max_dist ~emit =
  let shard0, local0 = Shard_plan.locate t.plan node in
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  let plan0 = new_plan t in
  plan_add plan0 shard0
    (P.Ancestors { node = local0; tag; k; max_dist })
    (function
      | Some (items, _) -> add (List.map (globalize t ~shard:shard0 ~offset:0) items)
      | None -> ());
  Array.iter
    (fun (e : portal) -> plan_conn plan0 t ~shard:shard0 ~a:e.local ~b:local0)
    t.entries_by_shard.(shard0);
  run_plan t ctx plan0;
  let rdists =
    Array.to_list t.exit_portals
    |> List.filter_map (fun (x : portal) ->
           let best =
             Array.fold_left
               (fun acc (e : portal) ->
                 match conn_dist t ~shard:shard0 ~a:e.local ~b:local0 with
                 | None -> acc
                 | Some de -> (
                     match closure_dist t cl x.g e.g with
                     | None -> acc
                     | Some dc -> min_opt acc (dc + de)))
               None t.entries_by_shard.(shard0)
           in
           match best with
           | Some d when not (over_max max_dist d) -> Some (x, d)
           | _ -> None)
  in
  (* No separate portal emission: the ancestors-or-self stream from [x]
     reports [x] itself at distance 0, exactly as the probed path. *)
  let pending =
    rdists
    |> List.sort (fun ((x1 : portal), d1) ((x2 : portal), d2) ->
           if d1 <> d2 then Int.compare d1 d2 else Int.compare x1.g x2.g)
    |> List.map (fun ((x : portal), d) ->
           let remaining = Option.map (fun m -> m - d) max_dist in
           ( d,
             fun plan ->
               plan_add plan x.shard
                 (P.Ancestors { node = x.local; tag; k; max_dist = remaining })
                 (function
                   | Some (items, _) ->
                       add (List.map (globalize t ~shard:x.shard ~offset:d) items)
                   | None -> ()) ))
  in
  fetch_streams_on_demand t ctx ~k ~exclude:(-1) ~streams ~pending;
  merge_streams t ~k ~exclude:(-1) ~emit !streams;
  items_response ctx

let ancestors_of_node t ctx ~node ~tag ~k ~max_dist ~emit =
  match closure_for t with
  | Some cl -> ancestors_closure t ctx cl ~node ~tag ~k ~max_dist ~emit
  | None -> ancestors_probed t ctx ~node ~tag ~k ~max_dist ~emit

let evaluate_phase1 t ctx ~start_tag ~target_tag ~k ~max_dist ~add =
  (* Phase 1: every shard answers over its own sub-collection, in
     parallel. Per-shard top-k by shard distance covers the global
     top-k: any node ranked above a global winner within its shard is
     at least as close globally too. *)
  let n = Array.length t.shards in
  let phase1 = Array.make n None in
  let threads =
    List.init n (fun s ->
        Thread.create
          (fun () ->
            phase1.(s) <-
              shard_call t ctx s (P.Evaluate { start_tag; target_tag; k; max_dist }))
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun s result ->
      match result with
      | Some (items, _) -> add (List.map (globalize t ~shard:s ~offset:0) items)
      | None -> ())
    phase1

let evaluate_probed t ctx ~start_tag ~target_tag ~k ~max_dist ~emit =
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  evaluate_phase1 t ctx ~start_tag ~target_tag ~k ~max_dist ~add;
  (* Phase 2: cross-shard reach. Seed every entry portal with the
     nearest start-tag node above its link source — all the seed probes
     go out as one wave, batched per source shard — then the search
     relaxes multi-hop shard chains from there. *)
  let seed_plan = new_plan t in
  Array.iter
    (fun l -> plan_start seed_plan t ~shard:l.src_shard ~node:l.src_local ~tag:start_tag)
    t.links;
  run_plan t ctx seed_plan;
  let seeds =
    Array.to_list t.links
    |> List.filter_map (fun l ->
           match start_dist t ~shard:l.src_shard ~node:l.src_local ~tag:start_tag with
           | Some d0 -> Some (l.dst, d0 + 1)
           | None -> None)
  in
  let entry_tag = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace entry_tag l.dst l.dst_tag) t.links;
  wave_search ctx ~seeds
    ~expand:(fun ~d wave ->
      if over_max max_dist d then `Stop
      else begin
        let located = List.map (fun v -> (v, Shard_plan.locate t.plan v)) wave in
        let plan = new_plan t in
        let remaining = Option.map (fun m -> m - d) max_dist in
        List.iter
          (fun (v, (shard, local)) ->
            (match Hashtbl.find_opt entry_tag v with
            | Some name when name = target_tag ->
                add [ { P.node = v; dist = d; meta = shard } ]
            | _ -> ());
            plan_add plan shard
              (P.Node_descendants
                 { node = local; tag = Some target_tag; k; max_dist = remaining })
              (function
                | Some (items, _) -> add (List.map (globalize t ~shard ~offset:d) items)
                | None -> ());
            plan_forward plan t ~shard ~local)
          located;
        run_plan t ctx plan;
        `Continue
          (List.concat_map
             (fun (_, (shard, local)) -> forward_edges t ~shard ~local ~d)
             located)
      end);
  merge_streams t ~k ~exclude:(-1) ~emit !streams;
  items_response ctx

(* EVALUATE via the closure: phase 1 and the seed probes (nearest
   start-tag node above each link source, cached across requests) are
   unchanged; the whole phase-2 wave search collapses into label joins
   seed-entry-by-entry. *)
let evaluate_closure t ctx cl ~start_tag ~target_tag ~k ~max_dist ~emit =
  let streams = ref [] in
  let add s = if s <> [] then streams := s :: !streams in
  evaluate_phase1 t ctx ~start_tag ~target_tag ~k ~max_dist ~add;
  let seed_plan = new_plan t in
  Array.iter
    (fun l -> plan_start seed_plan t ~shard:l.src_shard ~node:l.src_local ~tag:start_tag)
    t.links;
  run_plan t ctx seed_plan;
  let seed_d = Hashtbl.create 32 in
  Array.iter
    (fun l ->
      match start_dist t ~shard:l.src_shard ~node:l.src_local ~tag:start_tag with
      | Some d0 -> (
          let d = d0 + 1 in
          match Hashtbl.find_opt seed_d l.dst with
          | Some d' when d' <= d -> ()
          | _ -> Hashtbl.replace seed_d l.dst d)
      | None -> ())
    t.links;
  let entries =
    Array.to_list t.entry_portals
    |> List.filter_map (fun (e : portal) ->
           let best =
             Hashtbl.fold
               (fun g d0 acc ->
                 match closure_dist t cl g e.g with
                 | None -> acc
                 | Some dc -> min_opt acc (d0 + dc))
               seed_d None
           in
           match best with
           | Some d when not (over_max max_dist d) -> Some (e, d)
           | _ -> None)
  in
  List.iter
    (fun ((e : portal), d) ->
      if e.tag = target_tag then add [ { P.node = e.g; dist = d; meta = e.shard } ])
    entries;
  let pending =
    entries
    |> List.sort (fun ((e1 : portal), d1) ((e2 : portal), d2) ->
           if d1 <> d2 then Int.compare d1 d2 else Int.compare e1.g e2.g)
    |> List.filter_map (fun ((e : portal), d) ->
           entry_stream_pending t ~e ~tag:(Some target_tag) ~k ~max_dist ~d ~add)
  in
  fetch_streams_on_demand t ctx ~k ~exclude:(-1) ~streams ~pending;
  merge_streams t ~k ~exclude:(-1) ~emit !streams;
  items_response ctx

let evaluate t ctx ~start_tag ~target_tag ~k ~max_dist ~emit =
  match closure_for t with
  | Some cl -> evaluate_closure t ctx cl ~start_tag ~target_tag ~k ~max_dist ~emit
  | None -> evaluate_probed t ctx ~start_tag ~target_tag ~k ~max_dist ~emit

let connected_probed t ctx ~a ~b ~max_dist =
  let shard_a, local_a = Shard_plan.locate t.plan a in
  let shard_b, local_b = Shard_plan.locate t.plan b in
  let best = ref None in
  let consider = function
    | None -> ()
    | Some d -> ( match !best with Some d' when d' <= d -> () | _ -> best := Some d)
  in
  (* Wave 0: the direct same-shard probe and the seed probes share one
     batch. *)
  let plan0 = new_plan t in
  if shard_a = shard_b then plan_conn plan0 t ~shard:shard_a ~a:local_a ~b:local_b;
  plan_forward plan0 t ~shard:shard_a ~local:local_a;
  run_plan t ctx plan0;
  if shard_a = shard_b then
    consider (conn_dist t ~shard:shard_a ~a:local_a ~b:local_b);
  wave_search ctx
    ~seeds:(forward_edges t ~shard:shard_a ~local:local_a ~d:0)
    ~expand:(fun ~d wave ->
      (* Waves settle in ascending order: once the frontier passes the
         best candidate (or max_dist), no better path remains. *)
      let beaten = match !best with Some bd -> d >= bd | None -> false in
      if beaten || over_max max_dist d then `Stop
      else begin
        let located = List.map (fun v -> Shard_plan.locate t.plan v) wave in
        let plan = new_plan t in
        List.iter
          (fun (shard, local) ->
            if shard = shard_b then plan_conn plan t ~shard ~a:local ~b:local_b;
            plan_forward plan t ~shard ~local)
          located;
        run_plan t ctx plan;
        List.iter
          (fun (shard, local) ->
            if shard = shard_b then
              match conn_dist t ~shard ~a:local ~b:local_b with
              | Some db -> consider (Some (d + db))
              | None -> ())
          located;
        `Continue
          (List.concat_map
             (fun (shard, local) -> forward_edges t ~shard ~local ~d)
             located)
      end);
  match !best with
  | Some d when not (over_max max_dist d) -> P.Dist (Some d)
  | Some _ -> P.Dist None
  | None ->
      (* No path found. With a failed shard (or an expired budget) the
         negative is unreliable, so degrade to PARTIAL instead of
         asserting NODIST. *)
      if Atomic.get ctx.partial || Atomic.get ctx.timed_out then items_response ctx
      else P.Dist None

(* CONNECTED via the closure: one conn batch (the same-shard direct
   probe, [a]'s exit legs unless anchored, and the final legs from
   [b]'s entry portals down to [b]), then label joins in between. *)
let connected_closure t ctx cl ~a ~b ~max_dist =
  let shard_a, local_a = Shard_plan.locate t.plan a in
  let shard_b, local_b = Shard_plan.locate t.plan b in
  let anchored = Hashtbl.mem t.source_nodes a in
  let plan0 = new_plan t in
  if shard_a = shard_b then plan_conn plan0 t ~shard:shard_a ~a:local_a ~b:local_b;
  if not anchored then
    Array.iter
      (fun (x : portal) -> plan_conn plan0 t ~shard:shard_a ~a:local_a ~b:x.local)
      t.exits_by_shard.(shard_a);
  Array.iter
    (fun (e : portal) -> plan_conn plan0 t ~shard:shard_b ~a:e.local ~b:local_b)
    t.entries_by_shard.(shard_b);
  run_plan t ctx plan0;
  let best = ref None in
  let consider = function
    | None -> ()
    | Some d -> ( match !best with Some d' when d' <= d -> () | _ -> best := Some d)
  in
  if shard_a = shard_b then consider (conn_dist t ~shard:shard_a ~a:local_a ~b:local_b);
  let dist_to_entry (e : portal) =
    if anchored then closure_dist t cl a e.g
    else
      Array.fold_left
        (fun acc (x : portal) ->
          match conn_dist t ~shard:shard_a ~a:local_a ~b:x.local with
          | None -> acc
          | Some dx -> (
              match closure_dist t cl x.g e.g with
              | None -> acc
              | Some dc -> min_opt acc (dx + dc)))
        None t.exits_by_shard.(shard_a)
  in
  Array.iter
    (fun (e : portal) ->
      match dist_to_entry e with
      | None -> ()
      | Some d -> (
          match conn_dist t ~shard:shard_b ~a:e.local ~b:local_b with
          | None -> ()
          | Some de -> consider (Some (d + de))))
    t.entries_by_shard.(shard_b);
  match !best with
  | Some d when not (over_max max_dist d) -> P.Dist (Some d)
  | Some _ -> P.Dist None
  | None ->
      if Atomic.get ctx.partial || Atomic.get ctx.timed_out then items_response ctx
      else P.Dist None

let connected t ctx ~a ~b ~max_dist =
  match closure_for t with
  | Some cl -> connected_closure t ctx cl ~a ~b ~max_dist
  | None -> connected_probed t ctx ~a ~b ~max_dist

let resolve t ctx ~doc ~anchor =
  match Shard_plan.shard_of_doc t.plan doc with
  | None ->
      P.Items { items = []; timed_out = false; partial = false }
  | Some shard -> (
      match shard_call t ctx shard (P.Resolve { doc; anchor }) with
      | Some (items, P.Items { timed_out; partial; _ }) ->
          P.Items
            { items = List.map (globalize t ~shard ~offset:0) items; timed_out; partial }
      | Some _ | None -> items_response ctx)

let descendants_by_name t ctx ~doc ~anchor ~tag ~k ~max_dist ~emit =
  match Shard_plan.shard_of_doc t.plan doc with
  | None ->
      P.Err
        (Printf.sprintf "unknown document or anchor %s%s" doc
           (match anchor with None -> "" | Some a -> "#" ^ a))
  | Some shard -> (
      match shard_call t ctx shard (P.Resolve { doc; anchor }) with
      | Some (it :: _, _) ->
          let start = Shard_plan.global_of t.plan ~shard ~local:it.P.node in
          descendants_of_node t ctx ~start ~tag ~k ~max_dist ~emit
      | Some ([], _) ->
          P.Err
            (Printf.sprintf "unknown document or anchor %s%s" doc
               (match anchor with None -> "" | Some a -> "#" ^ a))
      | None -> items_response ctx)

(* --- the backend ------------------------------------------------------- *)

let eval t ~emit ~deadline_ns (req : P.request) =
  let ctx = make_ctx deadline_ns in
  match req with
  | P.Ping | P.Stats | P.Metrics | P.Sleep _ | P.Evict _ | P.Reload | P.Epoch_query ->
      (* Inline and admin verbs are handled by the server (Custom
         dispatch, admin plane) before reaching here. *)
      P.Err "internal: verb not routed to the coordinator"
  | P.Connected { a; b; max_dist } ->
      if not (in_range t a && in_range t b) then node_range_err t
      else connected t ctx ~a ~b ~max_dist
  | P.Descendants { doc; anchor; tag; k; max_dist } ->
      descendants_by_name t ctx ~doc ~anchor ~tag ~k ~max_dist ~emit
  | P.Node_descendants { node; tag; k; max_dist } ->
      if not (in_range t node) then node_range_err t
      else descendants_of_node t ctx ~start:node ~tag ~k ~max_dist ~emit
  | P.Ancestors { node; tag; k; max_dist } ->
      if not (in_range t node) then node_range_err t
      else ancestors_of_node t ctx ~node ~tag ~k ~max_dist ~emit
  | P.Evaluate { start_tag; target_tag; k; max_dist } -> (
      match t.query_cache with
      | None -> evaluate t ctx ~start_tag ~target_tag ~k ~max_dist ~emit
      | Some qc -> (
          match Coord_cache.find qc ~start_tag ~target_tag ~k ~max_dist with
          | Some items ->
              (* Replay the cached merge; no shard sees this request. *)
              List.iter emit items;
              P.Items { items = []; timed_out = false; partial = false }
          | None ->
              let buf = ref [] in
              let emit' it =
                buf := it :: !buf;
                emit it
              in
              let resp = evaluate t ctx ~start_tag ~target_tag ~k ~max_dist ~emit:emit' in
              (match resp with
              | P.Items { timed_out = false; partial = false; _ } ->
                  Coord_cache.store qc ~start_tag ~target_tag ~k ~max_dist
                    (List.rev !buf)
              | _ ->
                  (* A degraded merge must not be replayed once the
                     shard recovers — leave it uncached. *)
                  ());
              resp))
  | P.Resolve { doc; anchor } -> resolve t ctx ~doc ~anchor

let stats_lines t =
  ("backend: coordinator (scatter-gather over shard servers)"
  :: Shard_plan.describe t.plan)
  @ Array.to_list
      (Array.map
         (fun s ->
           Printf.sprintf "shard %d at %s: %d failed attempts" (Shard_client.id s)
             (Shard_client.address s) (Shard_client.errors_total s))
         t.shards)
  @ [
      (let conn, start, stream =
         with_lock t.cache_m (fun () ->
             ( Hashtbl.length t.conn_cache,
               Hashtbl.length t.start_cache,
               Hashtbl.length t.stream_cache ))
       in
       Printf.sprintf
         "probe cache: %d connected, %d nearest-start, %d portal-stream entries" conn
         start stream);
      Printf.sprintf "probe rpcs: %d round trips carrying %d sub-requests (batching %s)"
        (probe_rpcs_total t) (probe_subs_total t)
        (if t.batching then "on" else "off");
      (match t.closure with
      | Some c ->
          Printf.sprintf "%s; %d lookups, %d fallbacks" (Portal_closure.describe c)
            (Atomic.get t.closure_lookups)
            (Atomic.get t.closure_fallbacks)
      | None ->
          Printf.sprintf "portal closure: %s; %d probed fallbacks"
            (if t.closure_stale then "stale (plan digest mismatch), dropped"
             else "absent")
            (Atomic.get t.closure_fallbacks));
      (match query_cache_stats t with
      | None -> "query cache: disabled"
      | Some s ->
          Printf.sprintf "query cache: %d entries, %d hits, %d misses, epoch %d"
            s.Coord_cache.entries s.hits s.misses s.epoch);
    ]

let metric_lines t () =
  let per_shard name value =
    Array.to_list
      (Array.map
         (fun s ->
           Printf.sprintf "%s{shard=\"%d\",addr=\"%s\"} %d" name (Shard_client.id s)
             (Shard_client.address s) (value s))
         t.shards)
  in
  let errors = per_shard "flix_shard_errors_total" Shard_client.errors_total in
  let le i =
    if i >= Array.length fanout_buckets_ms then "+Inf"
    else
      let b = fanout_buckets_ms.(i) in
      if Float.is_integer b then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b
  in
  let cumulative = ref 0 in
  let buckets =
    List.init (Array.length t.fanout_hist) (fun i ->
        cumulative := !cumulative + Atomic.get t.fanout_hist.(i);
        Printf.sprintf "flix_shard_fanout_latency_ms_bucket{le=\"%s\"} %d" (le i)
          !cumulative)
  in
  [
    "# HELP flix_shard_errors_total Failed shard attempts, by shard.";
    "# TYPE flix_shard_errors_total counter";
  ]
  @ errors
  @ [
      "# HELP flix_shard_fanout_latency_ms Latency of coordinator-to-shard calls.";
      "# TYPE flix_shard_fanout_latency_ms histogram";
    ]
  @ buckets
  @ [
      Printf.sprintf "flix_shard_fanout_latency_ms_sum %.6f"
        (float_of_int (Atomic.get t.fanout_sum_ns) /. 1e6);
      Printf.sprintf "flix_shard_fanout_latency_ms_count %d" (Atomic.get t.fanout_count);
    ]
  @ [
      "# HELP flix_shard_probe_rpcs_total Wire round trips to each shard.";
      "# TYPE flix_shard_probe_rpcs_total counter";
    ]
  @ per_shard "flix_shard_probe_rpcs_total" Shard_client.rpcs_total
  @ [
      "# HELP flix_shard_probe_subs_total Sub-requests carried by those round trips.";
      "# TYPE flix_shard_probe_subs_total counter";
    ]
  @ per_shard "flix_shard_probe_subs_total" Shard_client.subs_total
  @ [
      "# HELP flix_shard_probe_batch_size Sub-requests per batched probe RPC.";
      "# TYPE flix_shard_probe_batch_size histogram";
    ]
  @ (let cumulative = ref 0 in
     List.init (Array.length t.batch_hist) (fun i ->
         cumulative := !cumulative + Atomic.get t.batch_hist.(i);
         let le =
           if i >= Array.length batch_buckets then "+Inf"
           else string_of_int batch_buckets.(i)
         in
         Printf.sprintf "flix_shard_probe_batch_size_bucket{le=\"%s\"} %d" le !cumulative))
  @ [
      Printf.sprintf "flix_shard_probe_batch_size_sum %d" (Atomic.get t.batch_sum);
      Printf.sprintf "flix_shard_probe_batch_size_count %d" (Atomic.get t.batch_count);
    ]
  @
  let hits, misses =
    match query_cache_stats t with
    | None -> (0, 0)
    | Some s -> (s.Coord_cache.hits, s.Coord_cache.misses)
  in
  [
    "# HELP flix_coord_cache_hits_total Coordinator EVALUATE cache hits.";
    "# TYPE flix_coord_cache_hits_total counter";
    Printf.sprintf "flix_coord_cache_hits_total %d" hits;
    "# HELP flix_coord_cache_misses_total Coordinator EVALUATE cache misses.";
    "# TYPE flix_coord_cache_misses_total counter";
    Printf.sprintf "flix_coord_cache_misses_total %d" misses;
    "# HELP flix_coord_closure_lookups_total Portal-closure label joins.";
    "# TYPE flix_coord_closure_lookups_total counter";
    Printf.sprintf "flix_coord_closure_lookups_total %d" (Atomic.get t.closure_lookups);
    "# HELP flix_coord_closure_fallbacks_total Requests probed for portal \
     distances because no usable closure was loaded.";
    "# TYPE flix_coord_closure_fallbacks_total counter";
    Printf.sprintf "flix_coord_closure_fallbacks_total %d"
      (Atomic.get t.closure_fallbacks);
    "# HELP flix_closure_build_seconds Build wall time of the loaded portal closure.";
    "# TYPE flix_closure_build_seconds gauge";
    Printf.sprintf "flix_closure_build_seconds %.6f"
      (match t.closure with Some c -> Portal_closure.build_seconds c | None -> 0.);
    "# HELP flix_closure_label_entries Label entries in the loaded portal closure.";
    "# TYPE flix_closure_label_entries gauge";
    Printf.sprintf "flix_closure_label_entries %d"
      (match t.closure with Some c -> Portal_closure.label_entries c | None -> 0);
  ]

let backend t =
  { Server.custom_eval = (fun ~emit ~deadline_ns req -> eval t ~emit ~deadline_ns req);
    custom_stats = (fun () -> stats_lines t) }

(* --- hot reload -------------------------------------------------------- *)

(* Shard-by-shard reload behind the coordinator's own snapshot swap.

   Two phases, both all-or-nothing from the coordinator's point of view:
   first every shard is probed ([EPOCH]) so a dead shard is discovered
   before any shard is asked to mutate; then [RELOAD] fans out shard by
   shard. Any failure returns [Error] and the caller keeps serving the
   {e old} coordinator — plan, closure, caches, and connections are all
   fields of one immutable [t], so there is no mixed state to roll back:
   either the new [t] is published whole or the old one stays. Shards
   that did reload before a later failure re-read the same deployment
   directory, so their swap is idempotent with respect to the data the
   old plan describes.

   The new [t] reconnects from scratch (the old one still owns its
   connection pools until it is retired) and re-judges the candidate
   portal closure — the caller's re-read one, or by default the old
   coordinator's — against the new plan: on a digest mismatch [create] drops it
   as stale and every query takes the wave-Dijkstra probed path until a
   closure is rebuilt offline. The merged-answer cache survives only
   when the plan digest is unchanged — node ids and shard data are then
   identical, so every cached merge is still byte-exact; otherwise it is
   invalidated whole (scoped invalidation needs a tag-level delta, which
   a reload does not have). *)
let reload ?(probe_deadline_ms = 2_000) ?(reload_deadline_ms = 120_000) ?closure t
    ~plan =
  let n = Shard_plan.n_shards plan in
  if n <> Array.length t.shards then
    Error
      (Printf.sprintf "new plan has %d shards, serving %d — re-deploy instead" n
         (Array.length t.shards))
  else begin
    let fail_at i msg =
      Error
        (Printf.sprintf "shard %d at %s %s" i (Shard_client.address t.shards.(i)) msg)
    in
    let sweep verb ~deadline_ms req =
      let rec go i =
        if i >= n then Ok ()
        else
          match Shard_client.call ~deadline_ms t.shards.(i) req with
          | Ok (_, P.Epoch _) -> go (i + 1)
          | Ok (_, P.Err msg) -> fail_at i (Printf.sprintf "refused %s: %s" verb msg)
          | Ok _ -> fail_at i (Printf.sprintf "answered %s with the wrong response" verb)
          | Error msg -> fail_at i (Printf.sprintf "unreachable during %s: %s" verb msg)
      in
      go 0
    in
    match sweep "probe" ~deadline_ms:probe_deadline_ms P.Epoch_query with
    | Error _ as e -> e
    | Ok () -> (
        match sweep "reload" ~deadline_ms:reload_deadline_ms P.Reload with
        | Error _ as e -> e
        | Ok () ->
            let closure =
              match closure with Some _ -> closure | None -> t.closure
            in
            let fresh =
              create ~cache_cap:t.cache_cap ~batching:t.batching ?closure ~plan
                ~shards:t.addrs ()
            in
            let query_cache =
              match t.query_cache with
              | None -> None
              | Some qc ->
                  if Shard_plan.digest plan = Shard_plan.digest t.plan then Some qc
                  else begin
                    Coord_cache.set_closure_epoch qc
                      (match fresh.closure with
                      | Some c -> Portal_closure.epoch c
                      | None -> 0);
                    Coord_cache.invalidate qc;
                    Some qc
                  end
            in
            Ok { fresh with query_cache })
  end
