module C = Fx_xml.Collection
module Meta_builder = Fx_flix.Meta_builder
module Codec = Fx_util.Codec

type cross_link = { src : int; dst : int; dst_tag : string }

(* One document of the plan. Global node ids are contiguous per
   document (documents in collection order, preorder within), and a
   shard's sub-collection repeats that numbering over its own document
   subsequence — so both id spaces are described entirely by base
   offsets, and translation is a binary search plus an addition. *)
type doc_info = {
  name : string;
  global_base : int;
  n_nodes : int;
  shard : int;
  local_base : int;
}

type t = {
  n_shards : int;
  total_nodes : int;
  docs : doc_info array;  (* ascending global_base *)
  by_shard : doc_info array array;  (* per shard, ascending local_base *)
  cross : cross_link array;
}

let n_shards t = t.n_shards
let total_nodes t = t.total_nodes
let cross_links t = t.cross
let shard_n_docs t s = Array.length t.by_shard.(s)

let shard_n_nodes t s =
  Array.fold_left (fun acc d -> acc + d.n_nodes) 0 t.by_shard.(s)

(* Rightmost entry with [base key <= x] in an array ascending on the
   projected base. *)
let find_covering arr ~base x =
  let lo = ref 0 and hi = ref (Array.length arr - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if base arr.(mid) <= x then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !best < 0 then None else Some arr.(!best)

let locate t g =
  match find_covering t.docs ~base:(fun d -> d.global_base) g with
  | Some d when g < d.global_base + d.n_nodes -> (d.shard, d.local_base + (g - d.global_base))
  | _ -> invalid_arg (Printf.sprintf "Shard_plan.locate: node %d outside the plan" g)

let global_of t ~shard ~local =
  if shard < 0 || shard >= t.n_shards then
    invalid_arg (Printf.sprintf "Shard_plan.global_of: no shard %d" shard)
  else
    match find_covering t.by_shard.(shard) ~base:(fun d -> d.local_base) local with
    | Some d when local < d.local_base + d.n_nodes ->
        d.global_base + (local - d.local_base)
    | _ ->
        invalid_arg
          (Printf.sprintf "Shard_plan.global_of: local node %d outside shard %d" local
             shard)

let shard_of_doc t name =
  (* Linear scan: plans hold at most a few thousand documents and the
     coordinator resolves a doc name once per DESCENDANTS request. *)
  Array.fold_left
    (fun acc d -> match acc with Some _ -> acc | None -> if d.name = name then Some d.shard else None)
    None t.docs

(* --- construction ---------------------------------------------------- *)

(* Derive [by_shard] (with local bases) from the flat doc array; shared
   by [plan] and [load]. *)
let finish ~n_shards ~total_nodes ~docs ~cross =
  let by_shard =
    Array.init n_shards (fun s ->
        Array.of_list (List.filter (fun d -> d.shard = s) (Array.to_list docs)))
  in
  Array.iter
    (fun shard_docs ->
      let base = ref 0 in
      Array.iteri
        (fun i d ->
          shard_docs.(i) <- { d with local_base = !base };
          base := !base + d.n_nodes)
        shard_docs)
    by_shard;
  (* Propagate the computed local bases back into the flat view. *)
  let by_name = Hashtbl.create (Array.length docs) in
  Array.iter
    (fun shard_docs -> Array.iter (fun d -> Hashtbl.replace by_name d.name d) shard_docs)
    by_shard;
  let docs = Array.map (fun d -> Hashtbl.find by_name d.name) docs in
  { n_shards; total_nodes; docs; by_shard; cross }

let plan ?(config = Meta_builder.default_hybrid) ~n_shards coll =
  if n_shards < 1 then invalid_arg "Shard_plan.plan: n_shards must be >= 1";
  if C.n_docs coll = 0 then invalid_arg "Shard_plan.plan: empty collection";
  (match config with
  | Meta_builder.Element_level _ ->
      invalid_arg
        "Shard_plan.plan: Element_level partitions split documents and cannot \
         define shards"
  | _ -> ());
  let registry = Meta_builder.build config coll in
  let n_docs = C.n_docs coll in
  (* Document sizes from the id layout: a document's nodes run from its
     root id up to the next root (or the end of the collection). *)
  let bases = Array.init n_docs (C.root_of_doc coll) in
  let size d =
    (if d + 1 < n_docs then bases.(d + 1) else C.n_nodes coll) - bases.(d)
  in
  (* Meta document of each document; the doc-granular builders never
     split a document, so the root's meta is the document's meta. *)
  let meta_of_doc = Array.init n_docs (fun d -> registry.meta_of_node.(bases.(d))) in
  let n_metas = Array.length registry.metas in
  let meta_weight = Array.make n_metas 0 in
  Array.iteri (fun d m -> meta_weight.(m) <- meta_weight.(m) + size d) meta_of_doc;
  (* Longest-processing-time greedy: heaviest meta first, onto the
     currently lightest shard. Never splits a meta document. *)
  let n_shards = min n_shards n_metas in
  let order = Array.init n_metas (fun m -> m) in
  Array.sort (fun a b -> Int.compare meta_weight.(b) meta_weight.(a)) order;
  let shard_load = Array.make n_shards 0 in
  let shard_of_meta = Array.make n_metas 0 in
  Array.iter
    (fun m ->
      let lightest = ref 0 in
      Array.iteri (fun s w -> if w < shard_load.(!lightest) then lightest := s) shard_load;
      shard_of_meta.(m) <- !lightest;
      shard_load.(!lightest) <- shard_load.(!lightest) + meta_weight.(m))
    order;
  let docs =
    Array.init n_docs (fun d ->
        {
          name = C.doc_name coll d;
          global_base = bases.(d);
          n_nodes = size d;
          shard = shard_of_meta.(meta_of_doc.(d));
          local_base = 0 (* filled in by [finish] *);
        })
  in
  let shard_of_node g =
    match find_covering docs ~base:(fun d -> d.global_base) g with
    | Some d -> d.shard
    | None -> assert false
  in
  let tags = C.tag coll in
  let cross =
    C.links coll
    |> List.filter_map (fun (l : C.link) ->
           if shard_of_node l.src = shard_of_node l.dst then None
           else Some { src = l.src; dst = l.dst; dst_tag = C.tag_name coll tags.(l.dst) })
    |> Array.of_list
  in
  finish ~n_shards ~total_nodes:(C.n_nodes coll) ~docs ~cross

let shard_documents t coll =
  if C.n_nodes coll <> t.total_nodes || C.n_docs coll <> Array.length t.docs then
    invalid_arg "Shard_plan.shard_documents: collection does not match the plan";
  let by_name = Hashtbl.create (Array.length t.docs) in
  List.iter
    (fun (d : Fx_xml.Xml_types.document) -> Hashtbl.replace by_name d.name d)
    (C.documents coll);
  Array.map
    (fun shard_docs ->
      Array.to_list shard_docs
      |> List.map (fun info ->
             match Hashtbl.find_opt by_name info.name with
             | Some d -> d
             | None ->
                 invalid_arg
                   (Printf.sprintf
                      "Shard_plan.shard_documents: document %S not in collection"
                      info.name)))
    t.by_shard

let doc_roots t = Array.map (fun d -> d.global_base) t.docs

(* Content digest (FNV-style, 63-bit) over everything the manifest
   records: the portal closure stamps this value as its epoch, so a
   closure built for one plan can never be joined against another. *)
let digest t =
  let h = ref 0x1c9d422584222325 in
  let mix byte = h := (!h lxor byte) * 0x100000001b3 in
  let mix_int v =
    let v = ref v in
    for _ = 0 to 7 do
      mix (!v land 0xff);
      v := !v asr 8
    done
  in
  let mix_string s =
    mix_int (String.length s);
    String.iter (fun c -> mix (Char.code c)) s
  in
  mix_int t.n_shards;
  mix_int t.total_nodes;
  Array.iter
    (fun d ->
      mix_string d.name;
      mix_int d.global_base;
      mix_int d.n_nodes;
      mix_int d.shard)
    t.docs;
  Array.iter
    (fun l ->
      mix_int l.src;
      mix_int l.dst;
      mix_string l.dst_tag)
    t.cross;
  (* 60 bits, not 62: the epoch is persisted through {!Codec.Writer.int},
     whose zig-zag step can only round-trip magnitudes below 2^61 — a
     wider digest would come back from disk with its top bits gone and
     every saved closure would look stale. *)
  !h land ((1 lsl 60) - 1)

(* --- persistence ------------------------------------------------------ *)

let magic = "FXSHARDMAN1"

(* The body codec is shared between the v1 manifest ([save]/[load]) and
   the v2 container {!Portal_closure.save_manifest} wraps around it. *)
let write_body w t =
  Codec.Writer.int w t.n_shards;
  Codec.Writer.int w t.total_nodes;
  Codec.Writer.int w (Array.length t.docs);
  Array.iter
    (fun d ->
      Codec.Writer.string w d.name;
      Codec.Writer.int w d.global_base;
      Codec.Writer.int w d.n_nodes;
      Codec.Writer.int w d.shard)
    t.docs;
  Codec.Writer.int w (Array.length t.cross);
  Array.iter
    (fun l ->
      Codec.Writer.int w l.src;
      Codec.Writer.int w l.dst;
      Codec.Writer.string w l.dst_tag)
    t.cross

let save ~path t =
  let w = Codec.Writer.create ~magic in
  write_body w t;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Codec.Writer.contents w))

let corrupt fmt = Printf.ksprintf (fun s -> raise (Codec.Corrupt s)) fmt

let read_body r =
  let n_shards = Codec.Reader.int r in
  let total_nodes = Codec.Reader.int r in
  if n_shards < 1 then corrupt "manifest: %d shards" n_shards;
  if total_nodes < 0 then corrupt "manifest: negative node count";
  let n_docs = Codec.Reader.int r in
  if n_docs < 0 then corrupt "manifest: negative document count";
  let next_base = ref 0 in
  let docs =
    Array.init n_docs (fun _ ->
        let name = Codec.Reader.string r in
        let global_base = Codec.Reader.int r in
        let n_nodes = Codec.Reader.int r in
        let shard = Codec.Reader.int r in
        if global_base <> !next_base then
          corrupt "manifest: document %S at base %d, expected %d" name global_base
            !next_base;
        if n_nodes < 1 then corrupt "manifest: document %S with %d nodes" name n_nodes;
        if shard < 0 || shard >= n_shards then
          corrupt "manifest: document %S on shard %d of %d" name shard n_shards;
        next_base := global_base + n_nodes;
        { name; global_base; n_nodes; shard; local_base = 0 })
  in
  if !next_base <> total_nodes then
    corrupt "manifest: documents cover %d nodes, header says %d" !next_base total_nodes;
  let n_cross = Codec.Reader.int r in
  if n_cross < 0 then corrupt "manifest: negative link count";
  let cross =
    Array.init n_cross (fun _ ->
        let src = Codec.Reader.int r in
        let dst = Codec.Reader.int r in
        let dst_tag = Codec.Reader.string r in
        if src < 0 || src >= total_nodes || dst < 0 || dst >= total_nodes then
          corrupt "manifest: link %d -> %d outside %d nodes" src dst total_nodes;
        { src; dst; dst_tag })
  in
  finish ~n_shards ~total_nodes ~docs ~cross

let load path =
  let ic = open_in_bin path in
  let body =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Codec.Reader.create ~magic body in
  let t = read_body r in
  Codec.Reader.expect_end r;
  t

let describe t =
  Printf.sprintf "shard plan: %d shards over %d documents, %d nodes, %d cross-shard links"
    t.n_shards (Array.length t.docs) t.total_nodes (Array.length t.cross)
  :: List.init t.n_shards (fun s ->
         Printf.sprintf "shard %d: %d documents, %d nodes" s (shard_n_docs t s)
           (shard_n_nodes t s))
