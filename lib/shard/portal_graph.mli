(** The weighted portal graph of a shard plan: nodes are the cross-link
    endpoints (portals) plus every document root as an anchor; edges
    are the cross links at weight 1 and, per shard, a segment edge from
    each source node (entry portal or anchor) to each exit portal of
    the same shard, weighted by the shard-local shortest-path distance.

    Graph distance between two of its nodes equals the exact global
    distance along the paths the coordinator's probed wave search
    explores — within-shard segments joined by unit link hops — which
    is what makes a distance oracle over this graph ({!Portal_closure})
    an exact replacement for runtime probe RPCs. Anchors carry only
    outgoing edges: they let root-anchored queries skip even the
    initial exit-probe wave. *)

type t

val build :
  plan:Shard_plan.t ->
  local_dist:(shard:int -> a:int -> b:int -> int option) ->
  t
(** [local_dist ~shard ~a ~b] answers the within-shard shortest-path
    distance between two shard-local node ids, [None] when unreachable
    — typically {!Fx_index.Hopi.distance} over the shard's own index,
    so the edge weights agree exactly with what the shard servers
    answer at query time. *)

val n_nodes : t -> int

val nodes : t -> int array
(** Global node ids of the graph's nodes, ascending. *)

val edges : t -> (int * int * int) array
(** [(from index, to index, weight)] triples, deduplicated (smallest
    weight wins), in deterministic order. *)

val index_of : t -> int -> int option
(** Node index of a global id, [None] when the id is not a portal or
    anchor. *)

val describe : t -> string
