(** The scatter-gather coordinator: N shard servers behind one FliX
    line-protocol endpoint.

    The coordinator plugs into {!Fx_server.Server} as a [Custom]
    backend, so admission control, deadlines, metrics, and incremental
    [ITEM] flushing come from the server; this module owns the fan-out
    and the distributed-distance arithmetic.

    {b Query evaluation.} A path between nodes in different shards
    decomposes into within-shard segments joined by cross-shard links
    (weight 1), and the manifest knows every such link. The coordinator
    therefore runs a Dijkstra search over {e portals} — the cross-link
    endpoints — using shard probes ([CONNECTED], [ANCESTORS],
    [NDESCENDANTS]) for segment distances, which yields exact global
    distances without any global index:

    - [EVALUATE]: phase 1 fans the query to every shard in parallel
      (per-shard top-[k] by shard distance covers the global top-[k]);
      phase 2 seeds entry portals from per-link [ANCESTORS] probes
      (nearest start-tag node above each link source) and expands each
      settled entry with an offset [NDESCENDANTS] stream.
    - [DESCENDANTS]/[NDESCENDANTS]: same machinery seeded from the one
      resolved start node. [ANCESTORS] runs the mirror-image search
      over exit portals. [CONNECTED] runs the portal search with early
      termination on the best candidate distance.

    All result streams are k-way-merged by distance with
    {!Fx_graph.Priority_queue}, deduplicating nodes on first (nearest)
    occurrence, so the merged stream keeps FliX's
    approximately-ascending-distance contract.

    {b Fault handling.} Shard calls carry the remaining deadline and
    ride {!Shard_client}'s retry/backoff/receive-timeout layer. When a
    shard stays down, its contribution is dropped and the response is
    degraded instead of failed: stream verbs answer a [PARTIAL]
    trailer, [RESOLVE] answers [PARTIAL 0], and [CONNECTED] answers a
    possibly-overestimated [DIST] (any path found is a real path) or
    [PARTIAL 0] when no path survives. Per-shard failures are counted
    in [flix_shard_errors_total]; fan-out call latencies land in the
    [flix_shard_fanout_latency_ms] histogram (see {!metric_lines}). *)

type t

val create :
  ?cache_cap:int ->
  plan:Shard_plan.t ->
  shards:(string * int) list ->
  unit ->
  t
(** [shards] lists one [host, port] per plan shard, in shard order.
    Raises [Invalid_argument] when the count does not match the plan.
    Probe results ([CONNECTED] distances, nearest-start [ANCESTORS])
    are memoized up to [cache_cap] entries (default 65536) — shard
    indexes are immutable, so entries never expire. *)

val backend : t -> Fx_server.Server.custom
(** Serve with
    [Server.start_backend (Custom (Coordinator.backend t))]. *)

val metric_lines : t -> unit -> string list
(** Prometheus series for the coordinator: register on the serving
    server with {!Fx_server.Metrics.register_collector}. *)

val stats_lines : t -> string list
(** The STATS payload: plan summary, shard addresses, error counters. *)

val shard_errors_total : t -> int
(** Failed shard attempts across all shards (sum of the per-shard
    counters) — the number behind [flix_shard_errors_total]. *)

val close : t -> unit
(** Close pooled shard connections. *)
