(** The scatter-gather coordinator: N shard servers behind one FliX
    line-protocol endpoint.

    The coordinator plugs into {!Fx_server.Server} as a [Custom]
    backend, so admission control, deadlines, metrics, and incremental
    [ITEM] flushing come from the server; this module owns the fan-out
    and the distributed-distance arithmetic.

    {b Query evaluation.} A path between nodes in different shards
    decomposes into within-shard segments joined by cross-shard links
    (weight 1), and the manifest knows every such link. The coordinator
    therefore runs a Dijkstra search over {e portals} — the cross-link
    endpoints — using shard probes ([CONNECTED], [ANCESTORS],
    [NDESCENDANTS]) for segment distances, which yields exact global
    distances without any global index:

    - [EVALUATE]: phase 1 fans the query to every shard in parallel
      (per-shard top-[k] by shard distance covers the global top-[k]);
      phase 2 seeds entry portals from per-link [ANCESTORS] probes
      (nearest start-tag node above each link source) and expands each
      settled entry with an offset [NDESCENDANTS] stream.
    - [DESCENDANTS]/[NDESCENDANTS]: same machinery seeded from the one
      resolved start node. [ANCESTORS] runs the mirror-image search
      over exit portals. [CONNECTED] runs the portal search with early
      termination on the best candidate distance.

    The search expands {e wave by wave}: every portal at the current
    frontier distance settles together (exact, because each portal edge
    weighs at least the unit link hop), so the wave's segment probes
    and result streams collapse into one pipelined [BATCH] per shard
    per wave instead of one round trip per probe. Probe round trips and
    the batch-size distribution are exported as
    [flix_shard_probe_rpcs_total] / [flix_shard_probe_subs_total] /
    [flix_shard_probe_batch_size].

    {b The portal closure.} When [create] is given a {!Portal_closure}
    whose epoch matches the plan, every portal-to-portal distance the
    wave search would have probed for becomes one in-memory label join
    instead, and portal result streams are fetched lazily — nearest
    first, stopping once the remaining streams start past the merge's
    k-th candidate distance. Answers are byte-identical to the probed
    path's (the merge breaks distance ties on global node id, so its
    output is a function of the stream multiset; skipped streams cannot
    contribute to the top [k]). A missing or stale closure falls back
    to probing, counted in [flix_coord_closure_fallbacks_total]; label
    joins are counted in [flix_coord_closure_lookups_total].

    All result streams are k-way-merged by distance with
    {!Fx_graph.Priority_queue}, deduplicating nodes on first (nearest)
    occurrence, so the merged stream keeps FliX's
    approximately-ascending-distance contract.

    {b Fault handling.} Shard calls carry the remaining deadline and
    ride {!Shard_client}'s retry/backoff/receive-timeout layer. When a
    shard stays down, its contribution is dropped and the response is
    degraded instead of failed: stream verbs answer a [PARTIAL]
    trailer, [RESOLVE] answers [PARTIAL 0], and [CONNECTED] answers a
    possibly-overestimated [DIST] (any path found is a real path) or
    [PARTIAL 0] when no path survives. Per-shard failures are counted
    in [flix_shard_errors_total]; fan-out call latencies land in the
    [flix_shard_fanout_latency_ms] histogram (see {!metric_lines}). *)

type t

val create :
  ?cache_cap:int ->
  ?batching:bool ->
  ?query_cache:int ->
  ?closure:Portal_closure.t ->
  plan:Shard_plan.t ->
  shards:(string * int) list ->
  unit ->
  t
(** [shards] lists one [host, port] per plan shard, in shard order.
    Raises [Invalid_argument] when the count does not match the plan.
    Probe results ([CONNECTED] distances, nearest-start [ANCESTORS])
    are memoized up to [cache_cap] entries (default 65536) — shard
    indexes are immutable, so entries never expire.

    [batching] (default [true]) sends each wave's probes as one
    pipelined [BATCH] per shard; [false] restores one round trip per
    probe — the distances and answers are identical either way (the
    before/after lever for the bench and the equivalence tests).

    [query_cache] enables the coordinator-side {!Coord_cache} over
    merged [EVALUATE] results with the given LRU capacity; [None]
    (the default) disables it. Only clean (non-[TIMEOUT],
    non-[PARTIAL]) merges are cached.

    [closure] supplies the portal-closure oracle. It is used only when
    {!Portal_closure.matches} holds for [plan]; a mismatched closure is
    dropped (and reported stale in [stats_lines]) so answers can never
    be joined against the wrong plan. The closure's epoch is folded
    into the [query_cache] key. *)

val has_closure : t -> bool
(** Whether a matching portal closure is loaded (a stale one does not
    count). *)

val closure_lookups_total : t -> int
(** Closure label joins performed — the number behind
    [flix_coord_closure_lookups_total]. *)

val closure_fallbacks_total : t -> int
(** Requests that took the probed path because no usable closure was
    loaded (only counted when the plan has cross links, i.e. when
    probing actually costs something) — the number behind
    [flix_coord_closure_fallbacks_total]. *)

val backend : t -> Fx_server.Server.custom
(** Serve with
    [Server.start_backend (Custom (Coordinator.backend t))]. *)

val metric_lines : t -> unit -> string list
(** Prometheus series for the coordinator: register on the serving
    server with {!Fx_server.Metrics.register_collector}. *)

val stats_lines : t -> string list
(** The STATS payload: plan summary, shard addresses, error counters. *)

val shard_errors_total : t -> int
(** Failed shard attempts across all shards (sum of the per-shard
    counters) — the number behind [flix_shard_errors_total]. *)

val probe_rpcs_total : t -> int
(** Wire round trips to shards across all shard clients — the number
    behind [flix_shard_probe_rpcs_total]. *)

val probe_subs_total : t -> int
(** Sub-requests carried by those round trips; with batching off the
    two counters advance in lockstep, with batching on the spread is
    the win ([flix_shard_probe_subs_total]). *)

val query_cache_stats : t -> Coord_cache.stats option
(** Entries/hits/misses/epoch of the [EVALUATE] result cache, or
    [None] when [create] was not given [query_cache]. *)

val reload :
  ?probe_deadline_ms:int ->
  ?reload_deadline_ms:int ->
  ?closure:Portal_closure.t ->
  t ->
  plan:Shard_plan.t ->
  (t, string) result
(** Shard-by-shard hot reload: probe every shard ([EPOCH], bounded by
    [probe_deadline_ms], default 2s), then fan [RELOAD] out to each
    (bounded by [reload_deadline_ms], default 120s), then build a
    replacement coordinator over [plan] (the re-read manifest's plan)
    with fresh connections to the same addresses. Any failure — a dead
    shard found by the probe, a shard lost or refusing mid-reload —
    returns [Error] and leaves [t] untouched, so the caller keeps
    serving the old epoch whole; there is no mixed state. On success
    the caller publishes the returned coordinator (e.g. via the
    server's snapshot swap) and eventually {!close}s the old one.

    [closure] (default: the old coordinator's) is the candidate portal
    closure for the new plan — pass the one from the re-read manifest.
    Either way it is used only if it matches [plan]; a mismatch drops
    it as stale and queries take the wave-Dijkstra probed path until a
    new closure is planned. The
    merged-answer cache survives only when the plan digest is
    unchanged (node ids and shard contents identical); otherwise it is
    invalidated whole. *)

val close : t -> unit
(** Close pooled shard connections. *)
