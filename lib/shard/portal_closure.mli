(** The portal closure: a precomputed exact distance oracle over the
    {!Portal_graph}, built on the weighted 2-hop labels of
    {!Fx_index.Two_hop.build_weighted} at shard-plan time.

    With the closure loaded, the coordinator answers any cross-shard
    portal distance with one in-memory label join instead of the probed
    wave-at-a-time Dijkstra — the same number, byte for byte, because
    portal-graph distances equal the probed search's distances (see
    DESIGN.md for the decomposition argument). Document roots are in
    the oracle too (anchors), so root-anchored queries skip even the
    initial exit-probe wave.

    The closure ships inside the manifest under the versioned
    [FXSHARDMAN2] format; v1 manifests still load (without a closure)
    and the coordinator falls back to probing. The [epoch] stamp —
    {!Shard_plan.digest} of the plan the closure was built for — guards
    against joining a closure to a different plan. *)

type t

val build :
  plan:Shard_plan.t ->
  local_dist:(shard:int -> a:int -> b:int -> int option) ->
  t
(** Build the portal graph with [local_dist] (see {!Portal_graph.build})
    and compress it into 2-hop labels. Cost is one [local_dist] call
    per (source, exit) pair per shard plus the labeling itself. *)

val distance : t -> int -> int -> int option
(** Exact global distance between two oracle nodes (global ids), [None]
    when unreachable or when either id is not in the oracle. *)

val covers : t -> int -> bool
(** Whether a global id is an oracle node (portal or anchor root). *)

val epoch : t -> int
(** The {!Shard_plan.digest} of the plan this closure was built for. *)

val matches : t -> Shard_plan.t -> bool
(** [epoch t = Shard_plan.digest plan] — joining a closure against a
    plan it does not match is never exact, so callers must fall back. *)

val n_nodes : t -> int
val label_entries : t -> int
val build_seconds : t -> float
(** Build wall time as recorded at build, surviving (de)serialization —
    the [flix_closure_build_seconds] gauge reports it on load. *)

val describe : t -> string

(** {1 The versioned manifest} *)

val save_manifest : path:string -> plan:Shard_plan.t -> t option -> unit
(** Write the [FXSHARDMAN2] manifest: the plan body plus the (optional)
    closure section. Raises [Sys_error] on I/O failure. *)

val load_manifest : string -> Shard_plan.t * t option
(** Load a manifest of either version: [FXSHARDMAN2] yields the plan
    and its closure section; a v1 [FXSHARDMAN1] file loads through
    {!Shard_plan.load} and yields no closure.
    @raise Fx_util.Codec.Corrupt on mangled or truncated input (of
    either version, including truncation inside the closure section).
    @raise Sys_error if the file cannot be read. *)
