(* The weighted portal graph: the cross-shard skeleton of a shard plan,
   over which the portal closure precomputes distances.

   Nodes are the portals — endpoints of cross-shard links — plus every
   document root as an anchor (source-only) node. Edges are (a) the
   cross links themselves at weight 1 and (b), per shard, a segment
   edge from every portal-graph source located in the shard (entry
   portal or anchor root) to every exit portal (link source) of the
   same shard, weighted by the shard-local shortest-path distance
   between them. Any global path decomposes into within-shard segments
   joined by unit link hops, so graph distance here equals the distance
   the coordinator's probed wave search computes — the exactness
   argument the closure rests on (see DESIGN.md). *)

type t = {
  nodes : int array;  (* sorted distinct global node ids *)
  edges : (int * int * int) array;  (* (node index, node index, weight) *)
}

let n_nodes t = Array.length t.nodes
let nodes t = t.nodes
let edges t = t.edges

let index_of t g =
  let lo = ref 0 and hi = ref (Array.length t.nodes - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.nodes.(mid) in
    if v = g then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < g then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let build ~plan ~local_dist =
  let links = Shard_plan.cross_links plan in
  let n_shards = Shard_plan.n_shards plan in
  let ids =
    Array.concat
      [
        Array.map (fun (l : Shard_plan.cross_link) -> l.src) links;
        Array.map (fun (l : Shard_plan.cross_link) -> l.dst) links;
        Shard_plan.doc_roots plan;
      ]
  in
  Array.sort Int.compare ids;
  let nodes =
    let out = ref [] and n = Array.length ids in
    for i = n - 1 downto 0 do
      if i = 0 || ids.(i) <> ids.(i - 1) then out := ids.(i) :: !out
    done;
    Array.of_list !out
  in
  let t = { nodes; edges = [||] } in
  let idx g =
    match index_of t g with
    | Some i -> i
    | None -> assert false (* every queried id was collected above *)
  in
  (* Per shard: the sources (entry portals and anchor roots, deduped)
     and the exits (link sources, deduped), with their local ids. *)
  let sources = Array.make n_shards [] in
  let exits = Array.make n_shards [] in
  let seen_src = Hashtbl.create 256 and seen_exit = Hashtbl.create 256 in
  let add_source g =
    if not (Hashtbl.mem seen_src g) then begin
      Hashtbl.replace seen_src g ();
      let shard, local = Shard_plan.locate plan g in
      sources.(shard) <- (idx g, local) :: sources.(shard)
    end
  in
  Array.iter (fun (l : Shard_plan.cross_link) -> add_source l.dst) links;
  Array.iter add_source (Shard_plan.doc_roots plan);
  Array.iter
    (fun (l : Shard_plan.cross_link) ->
      if not (Hashtbl.mem seen_exit l.src) then begin
        Hashtbl.replace seen_exit l.src ();
        let shard, local = Shard_plan.locate plan l.src in
        exits.(shard) <- (idx l.src, local) :: exits.(shard)
      end)
    links;
  (* Edge set, deduplicated on (from, to) keeping the smallest weight:
     several links can share an endpoint pair, and a node that is both
     entry and exit would otherwise collect a 0-weight self edge. *)
  let n = Array.length nodes in
  let best = Hashtbl.create (Array.length links * 2) in
  let add_edge u v w =
    if u <> v then
      let key = (u * n) + v in
      match Hashtbl.find_opt best key with
      | Some w' when w' <= w -> ()
      | _ -> Hashtbl.replace best key w
  in
  Array.iter
    (fun (l : Shard_plan.cross_link) -> add_edge (idx l.src) (idx l.dst) 1)
    links;
  Array.iteri
    (fun shard srcs ->
      List.iter
        (fun (u, u_local) ->
          List.iter
            (fun (x, x_local) ->
              match local_dist ~shard ~a:u_local ~b:x_local with
              | Some w -> add_edge u x w
              | None -> ())
            exits.(shard))
        srcs)
    sources;
  let edges =
    Hashtbl.fold (fun key w acc -> (key / n, key mod n, w) :: acc) best []
    |> List.sort (fun (u1, v1, _) (u2, v2, _) ->
           match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    |> Array.of_list
  in
  { nodes; edges }

let describe t =
  Printf.sprintf "portal graph: %d nodes, %d weighted edges" (Array.length t.nodes)
    (Array.length t.edges)
