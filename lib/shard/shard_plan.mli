(** The shard planner: cut a collection into N shards along
    meta-document boundaries, and the manifest a coordinator needs to
    stitch the shards back into one logical service.

    Shards reuse the paper's distribution unit. The Meta Document
    Builder partitions the collection into meta documents that can be
    indexed independently, with the remaining inter-meta-document links
    followed at query time (PAPER.md §3–4); the planner assigns whole
    meta documents to shards — a meta document is never split — so
    every link the coordinator must chase at query time is a link the
    framework would have chased anyway. Document granularity is
    preserved: each shard is a sub-collection whose documents keep
    their relative collection order, so shard-local node ids are
    assigned by the same rule as global ids (documents in order,
    preorder within a document) and the manifest can translate between
    the two id spaces with nothing but per-document base offsets.

    The manifest records, per shard, the ordered documents with their
    global id ranges, plus every cross-shard link with the tag name of
    its target — tag ids are interned per shard catalog, so names are
    the only portable currency. *)

type cross_link = {
  src : int;  (** global node id of the link source *)
  dst : int;  (** global node id of the link target *)
  dst_tag : string;  (** tag name of the target node *)
}

type t

(** {1 Planning} *)

val plan : ?config:Fx_flix.Meta_builder.config -> n_shards:int -> Fx_xml.Collection.t -> t
(** Partition the collection's meta documents (built with [config],
    default {!Fx_flix.Meta_builder.default_hybrid}) into at most
    [n_shards] shards by longest-processing-time bin packing on element
    counts. The effective shard count (see {!n_shards}) can be lower
    when there are fewer meta documents than requested shards; it is
    never zero for a non-empty collection. Raises [Invalid_argument]
    for [n_shards < 1], for an empty collection, and for the
    [Element_level] builder (its partitions split documents). *)

val shard_documents : t -> Fx_xml.Collection.t -> Fx_xml.Xml_types.document list array
(** Per shard, the source documents (in collection order) from which to
    build that shard's sub-collection. Cross-shard links dangle in the
    sub-collection — {!Fx_xml.Collection.build} collects dangling
    references instead of failing — which is exactly what makes the
    shard independently indexable. Raises [Invalid_argument] when the
    collection does not match the plan. *)

(** {1 Shape} *)

val n_shards : t -> int
val total_nodes : t -> int
val cross_links : t -> cross_link array
(** All cross-shard links, in unspecified order. *)

val shard_n_docs : t -> int -> int
val shard_n_nodes : t -> int -> int

(** {1 Id translation} *)

val locate : t -> int -> int * int
(** [locate t g] is [(shard, local)] for global node [g]. Raises
    [Invalid_argument] when [g] is outside the plan. *)

val global_of : t -> shard:int -> local:int -> int
(** Inverse of {!locate}. Raises [Invalid_argument] out of range. *)

val shard_of_doc : t -> string -> int option
(** The shard holding the named document. *)

val doc_roots : t -> int array
(** Global node id of every document root, ascending — the anchor set
    the portal closure precomputes portal-entry distances for. *)

val digest : t -> int
(** Deterministic non-negative content digest over everything the
    manifest records (shards, documents, cross links). The portal
    closure stamps this as its epoch: a closure whose epoch does not
    match the plan it is loaded with must not be joined against it. *)

(** {1 Persistence} *)

val save : path:string -> t -> unit
(** Raises [Sys_error] on I/O failure. *)

val load : string -> t
(** @raise Fx_util.Codec.Corrupt on a mangled manifest.
    @raise Sys_error if the file cannot be read. *)

val write_body : Fx_util.Codec.Writer.t -> t -> unit
val read_body : Fx_util.Codec.Reader.t -> t
(** The manifest body without file framing, for container formats that
    wrap a plan in a versioned envelope ({!Portal_closure}'s
    [FXSHARDMAN2] manifest). [read_body] validates like {!load} but
    does not require end-of-input.
    @raise Fx_util.Codec.Corrupt on a mangled body. *)

val describe : t -> string list
(** Human-readable summary lines for STATS. *)
