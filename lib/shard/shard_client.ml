module Protocol = Fx_server.Protocol
module Client = Fx_server.Server_client
module Stopwatch = Fx_util.Stopwatch

type t = {
  id : int;
  host : string;
  port : int;
  retries : int;
  backoff_ms : float;
  recv_slack_s : float;
  m : Mutex.t;
  mutable idle : Client.t list;
  mutable closed : bool;
  errors : int Atomic.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(retries = 2) ?(backoff_ms = 25.0) ?(recv_slack_s = 0.25) ~id ~host ~port ()
    =
  {
    id;
    host;
    port;
    retries;
    backoff_ms;
    recv_slack_s;
    m = Mutex.create ();
    idle = [];
    closed = false;
    errors = Atomic.make 0;
  }

let id t = t.id
let address t = Printf.sprintf "%s:%d" t.host t.port
let errors_total t = Atomic.get t.errors

let borrow t =
  match
    with_lock t.m (fun () ->
        match t.idle with
        | c :: rest ->
            t.idle <- rest;
            Some c
        | [] -> None)
  with
  | Some c -> Ok c
  | None -> (
      match Client.connect ~host:t.host ~port:t.port () with
      | c -> Ok c
      | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "connect %s: %s" (address t) (Unix.error_message err)))

let give_back t c =
  let keep =
    with_lock t.m (fun () ->
        if t.closed then false
        else begin
          t.idle <- c :: t.idle;
          true
        end)
  in
  if not keep then Client.close c

(* One exchange on one connection. A transport failure (including a
   tripped receive timeout) poisons the connection — a late response
   would desynchronize the framing — so it is closed, never pooled. *)
let attempt t ~deadline_ms req =
  match borrow t with
  | Error _ as e -> e
  | Ok conn ->
      let timeout =
        match deadline_ms with
        | None -> None
        | Some ms -> Some ((float_of_int ms /. 1000.0) +. t.recv_slack_s)
      in
      Client.set_recv_timeout conn timeout;
      let items = ref [] in
      let result =
        Client.request_stream ?deadline_ms conn req ~on_item:(fun it ->
            items := it :: !items)
      in
      (match result with
      | Ok _ -> give_back t conn
      | Error _ -> Client.close conn);
      Result.map (fun resp -> (List.rev !items, resp)) result

let call ?deadline_ms t req =
  let sw = Stopwatch.start () in
  let budget_left () =
    match deadline_ms with
    | None -> Some None
    | Some ms ->
        let left = ms - int_of_float (Stopwatch.elapsed_ms sw) in
        if left <= 0 then None else Some (Some left)
  in
  let rec go attempt_no backoff =
    match budget_left () with
    | None -> Error "deadline exhausted before shard answered"
    | Some deadline_ms -> (
        match attempt t ~deadline_ms req with
        | Ok _ as ok -> ok
        | Error e ->
            Atomic.incr t.errors;
            if attempt_no >= t.retries then Error e
            else begin
              Thread.delay (backoff /. 1000.0);
              go (attempt_no + 1) (backoff *. 2.0)
            end)
  in
  go 0 t.backoff_ms

let close t =
  let conns =
    with_lock t.m (fun () ->
        t.closed <- true;
        let cs = t.idle in
        t.idle <- [];
        cs)
  in
  List.iter Client.close conns
