module Protocol = Fx_server.Protocol
module Client = Fx_server.Server_client
module Stopwatch = Fx_util.Stopwatch

type t = {
  id : int;
  host : string;
  port : int;
  retries : int;
  backoff_ms : float;
  recv_slack_s : float;
  max_batch : int;
  m : Mutex.t;
  mutable idle : Client.t list;
  mutable closed : bool;
  errors : int Atomic.t;
  (* One rpc per wire attempt; one sub per sub-request it carried. The
     spread between them is the batching win the coordinator exports as
     flix_shard_probe_{rpcs,subs}_total. *)
  rpcs : int Atomic.t;
  subs : int Atomic.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(retries = 2) ?(backoff_ms = 25.0) ?(recv_slack_s = 0.25) ?(max_batch = 512)
    ~id ~host ~port () =
  if max_batch < 1 then invalid_arg "Shard_client.create: max_batch must be positive";
  {
    id;
    host;
    port;
    retries;
    backoff_ms;
    recv_slack_s;
    max_batch;
    m = Mutex.create ();
    idle = [];
    closed = false;
    errors = Atomic.make 0;
    rpcs = Atomic.make 0;
    subs = Atomic.make 0;
  }

let id t = t.id
let address t = Printf.sprintf "%s:%d" t.host t.port
let errors_total t = Atomic.get t.errors
let rpcs_total t = Atomic.get t.rpcs
let subs_total t = Atomic.get t.subs

let borrow t =
  match
    with_lock t.m (fun () ->
        match t.idle with
        | c :: rest ->
            t.idle <- rest;
            Some c
        | [] -> None)
  with
  | Some c -> Ok c
  | None -> (
      match Client.connect ~host:t.host ~port:t.port () with
      | c -> Ok c
      | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "connect %s: %s" (address t) (Unix.error_message err)))

let give_back t c =
  let keep =
    with_lock t.m (fun () ->
        if t.closed then false
        else begin
          t.idle <- c :: t.idle;
          true
        end)
  in
  if not keep then Client.close c

(* One exchange on one connection. A transport failure (including a
   tripped receive timeout) poisons the connection — a late response
   would desynchronize the framing — so it is closed, never pooled. *)
let recv_timeout t deadline_ms =
  match deadline_ms with
  | None -> None
  | Some ms -> Some ((float_of_int ms /. 1000.0) +. t.recv_slack_s)

let attempt t ~deadline_ms req =
  Atomic.incr t.rpcs;
  Atomic.incr t.subs;
  match borrow t with
  | Error _ as e -> e
  | Ok conn ->
      Client.set_recv_timeout conn (recv_timeout t deadline_ms);
      let items = ref [] in
      let result =
        Client.request_stream ?deadline_ms conn req ~on_item:(fun it ->
            items := it :: !items)
      in
      (match result with
      | Ok _ -> give_back t conn
      | Error _ -> Client.close conn);
      Result.map (fun resp -> (List.rev !items, resp)) result

let call ?deadline_ms t req =
  let sw = Stopwatch.start () in
  let budget_left () =
    match deadline_ms with
    | None -> Some None
    | Some ms ->
        let left = ms - int_of_float (Stopwatch.elapsed_ms sw) in
        if left <= 0 then None else Some (Some left)
  in
  let rec go attempt_no backoff =
    match budget_left () with
    | None -> Error "deadline exhausted before shard answered"
    | Some deadline_ms -> (
        match attempt t ~deadline_ms req with
        | Ok _ as ok -> ok
        | Error e ->
            Atomic.incr t.errors;
            if attempt_no >= t.retries then Error e
            else begin
              Thread.delay (backoff /. 1000.0);
              go (attempt_no + 1) (backoff *. 2.0)
            end)
  in
  go 0 t.backoff_ms

(* One batch of sub-requests in one pipelined round trip. Retries are
   per-batch but never re-send an answered sub-request: each retry
   re-batches only the still-unanswered slots, so a transport failure
   mid-pipeline costs one fresh (smaller) batch, not duplicated work —
   and the shard never sees the same probe answered twice. *)
let call_many ?deadline_ms t reqs =
  let n = Array.length reqs in
  let out = Array.make n (Error "unanswered batch sub-request") in
  let answered = Array.make n false in
  let pending () =
    let idx = ref [] in
    for i = n - 1 downto 0 do
      if not answered.(i) then idx := i :: !idx
    done;
    Array.of_list !idx
  in
  let one_rpc ~deadline_ms idx =
    Atomic.incr t.rpcs;
    ignore (Atomic.fetch_and_add t.subs (Array.length idx));
    match borrow t with
    | Error _ as e -> e
    | Ok conn ->
        Client.set_recv_timeout conn (recv_timeout t deadline_ms);
        let result =
          Client.request_batch ?deadline_ms conn
            (Array.map (fun i -> reqs.(i)) idx)
            ~on_response:(fun j resp ->
              let i = idx.(j) in
              out.(i) <- Ok resp;
              answered.(i) <- true)
        in
        (match result with
        | Ok () -> give_back t conn
        | Error _ -> Client.close conn);
        result
  in
  (* A wave can outgrow the server's [max_batch] cap: split it into
     capped chunks, each its own round trip. Answers recorded by earlier
     chunks survive a later chunk's failure — the retry re-batches only
     what is still unanswered. *)
  let attempt_batch ~deadline_ms idx =
    let len = Array.length idx in
    let rec chunks off =
      if off >= len then Ok ()
      else
        let m = min t.max_batch (len - off) in
        match one_rpc ~deadline_ms (Array.sub idx off m) with
        | Ok () -> chunks (off + m)
        | Error _ as e -> e
    in
    chunks 0
  in
  if n > 0 then begin
    let sw = Stopwatch.start () in
    let budget_left () =
      match deadline_ms with
      | None -> Some None
      | Some ms ->
          let left = ms - int_of_float (Stopwatch.elapsed_ms sw) in
          if left <= 0 then None else Some (Some left)
    in
    let fail msg =
      Array.iteri (fun i a -> if not a then out.(i) <- Error msg) answered
    in
    let rec go attempt_no backoff =
      match pending () with
      | [||] -> ()
      | idx -> (
          match budget_left () with
          | None -> fail "deadline exhausted before shard answered"
          | Some deadline_ms -> (
              match attempt_batch ~deadline_ms idx with
              | Ok () -> ()
              | Error e ->
                  Atomic.incr t.errors;
                  if attempt_no >= t.retries then fail e
                  else begin
                    Thread.delay (backoff /. 1000.0);
                    go (attempt_no + 1) (backoff *. 2.0)
                  end))
    in
    go 0 t.backoff_ms
  end;
  out

let close t =
  let conns =
    with_lock t.m (fun () ->
        t.closed <- true;
        let cs = t.idle in
        t.idle <- [];
        cs)
  in
  List.iter Client.close conns
