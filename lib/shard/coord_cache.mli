(** The coordinator-side result cache for merged [EVALUATE] answers.

    The single-server {!Fx_flix.Query_cache} lives below the shard
    boundary and never sees a cross-shard merge; this cache sits above
    it, keyed by (start tag, target tag, [k], [max_dist], shard epoch).
    Shard indexes are immutable for the life of a deployment, so
    entries never go stale on their own — the epoch exists for
    operational invalidation ({!invalidate}), e.g. after swapping a
    shard's deployment. Only clean answers belong here: the coordinator
    refuses to cache [TIMEOUT]/[PARTIAL] merges, so a degraded answer
    is recomputed (and hopefully repaired) on the next ask.

    All operations take the cache's own lock; callers on worker domains
    need no coordination. *)

type t

type stats = { entries : int; hits : int; misses : int; epoch : int }

val create : ?closure_epoch:int -> capacity:int -> unit -> t
(** LRU capacity in entries. Raises [Invalid_argument] when
    [capacity < 1]. [closure_epoch] (default 0) identifies the portal
    closure the coordinator merges with — it is folded into every key,
    so answers merged under one closure are never replayed under
    another. *)

val set_closure_epoch : t -> int -> unit
(** Change the closure epoch without a restart: entries stored under
    the old epoch become unreachable (they age out of the LRU) and
    in-flight stores land under the epoch they were computed with. *)

val find :
  t ->
  start_tag:string ->
  target_tag:string ->
  k:int ->
  max_dist:int option ->
  Fx_server.Protocol.item list option
(** The merged item list exactly as it was emitted, or [None] on a
    miss. Refreshes LRU recency and counts into {!stats}. *)

val store :
  t ->
  start_tag:string ->
  target_tag:string ->
  k:int ->
  max_dist:int option ->
  Fx_server.Protocol.item list ->
  unit

val invalidate : t -> unit
(** Bump the epoch and drop every entry. A store racing with the bump
    lands under the old epoch and is unreachable afterwards. Resets the
    hit/miss counters (they count since the last clear). *)

val invalidate_tags : t -> string list -> unit
(** Scoped invalidation for a tag-bounded delta: drop only entries
    whose start {e or} target tag is in the list. No epoch bump — the
    surviving entries stay reachable and warm, and the hit/miss
    counters are untouched. Sound only when every document change is
    confined to the given tags (see {!Fx_admin.Delta.extend_scope});
    an unbounded change must use {!invalidate}. *)

val stats : t -> stats
