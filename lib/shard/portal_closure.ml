module Codec = Fx_util.Codec
module Two_hop = Fx_index.Two_hop
module Stopwatch = Fx_util.Stopwatch

(* The portal closure: an exact distance oracle over the shard plan's
   portal graph, built at shard-plan time and shipped in the manifest.
   Any portal-to-portal (or anchor-to-portal) distance is then one
   2-hop label join at the coordinator instead of a cascade of probe
   RPCs. The oracle is stamped with the plan digest ([epoch]) so a
   closure can never be joined against a plan it was not built for. *)

type t = {
  epoch : int;
  build_us : int;
  nodes : int array;  (* sorted global ids: the portal graph's nodes *)
  labels : Two_hop.t;  (* over node indexes *)
}

let build ~plan ~local_dist =
  let sw = Stopwatch.start () in
  let g = Portal_graph.build ~plan ~local_dist in
  let labels = Two_hop.build_weighted ~n:(Portal_graph.n_nodes g) (Portal_graph.edges g) in
  {
    epoch = Shard_plan.digest plan;
    build_us = Int64.to_int (Int64.div (Stopwatch.elapsed_ns sw) 1_000L);
    nodes = Portal_graph.nodes g;
    labels;
  }

let epoch t = t.epoch
let build_seconds t = float_of_int t.build_us /. 1e6
let n_nodes t = Array.length t.nodes
let label_entries t = Two_hop.entries t.labels
let matches t plan = t.epoch = Shard_plan.digest plan

let index_of t g =
  let lo = ref 0 and hi = ref (Array.length t.nodes - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.nodes.(mid) in
    if v = g then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < g then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let covers t g = Option.is_some (index_of t g)

let distance t a b =
  match (index_of t a, index_of t b) with
  | Some i, Some j -> Two_hop.distance t.labels i j
  | _ -> None

let describe t =
  Printf.sprintf "portal closure: %d nodes, %d label entries, built in %.3f s"
    (n_nodes t) (label_entries t) (build_seconds t)

(* --- the versioned manifest ------------------------------------------- *)

let manifest_magic = "FXSHARDMAN2"

let corrupt fmt = Printf.ksprintf (fun s -> raise (Codec.Corrupt s)) fmt

let save_manifest ~path ~plan closure =
  let w = Codec.Writer.create ~magic:manifest_magic in
  Shard_plan.write_body w plan;
  (match closure with
  | None -> Codec.Writer.int w 0
  | Some c ->
      Codec.Writer.int w 1;
      Codec.Writer.int w c.epoch;
      Codec.Writer.int w c.build_us;
      Codec.Writer.int_array w c.nodes;
      Codec.Writer.string w (Two_hop.serialize c.labels));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Codec.Writer.contents w))

let read_closure r ~total_nodes =
  match Codec.Reader.int r with
  | 0 -> None
  | 1 ->
      let epoch = Codec.Reader.int r in
      let build_us = Codec.Reader.int r in
      if epoch < 0 then corrupt "manifest: negative closure epoch";
      if build_us < 0 then corrupt "manifest: negative closure build time";
      let nodes = Codec.Reader.int_array r in
      Array.iteri
        (fun i g ->
          if g < 0 || g >= total_nodes then
            corrupt "manifest: closure node %d outside %d nodes" g total_nodes;
          if i > 0 && nodes.(i - 1) >= g then
            corrupt "manifest: closure nodes not strictly ascending")
        nodes;
      let labels = Two_hop.deserialize (Codec.Reader.string r) in
      if Two_hop.n_nodes labels <> Array.length nodes then
        corrupt "manifest: closure labels cover %d nodes, table has %d"
          (Two_hop.n_nodes labels) (Array.length nodes);
      Some { epoch; build_us; nodes; labels }
  | flag -> corrupt "manifest: bad closure flag %d" flag

let load_manifest path =
  let ic = open_in_bin path in
  let body =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let v2_prefix = manifest_magic ^ "\xff" in
  let is_v2 =
    String.length body >= String.length v2_prefix
    && String.sub body 0 (String.length v2_prefix) = v2_prefix
  in
  if not is_v2 then
    (* A v1 manifest (or anything else): the v1 loader owns the
       diagnostics. Plans saved before the closure existed keep
       loading; the coordinator just gets no oracle. *)
    (Shard_plan.load path, None)
  else begin
    let r = Codec.Reader.create ~magic:manifest_magic body in
    let plan = Shard_plan.read_body r in
    let closure = read_closure r ~total_nodes:(Shard_plan.total_nodes plan) in
    Codec.Reader.expect_end r;
    (plan, closure)
  end
