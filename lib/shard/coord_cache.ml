module Lru = Fx_util.Lru
module P = Fx_server.Protocol

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The epoch is part of the key, not just a guard: a store computed
   before an [invalidate] but completed after it lands under the old
   epoch and can never be served again, so a slow in-flight merge
   cannot resurrect pre-invalidation answers. *)
(* [closure_epoch] rides in the key for the same reason: the merged
   answers depend on which portal closure (if any) the coordinator
   joins against, so a rebuilt closure must orphan the old merges
   without a restart. *)
type key = {
  start_tag : string;
  target_tag : string;
  k : int;
  max_dist : int option;
  epoch : int;
  closure_epoch : int;
}

type stats = { entries : int; hits : int; misses : int; epoch : int }

type t = {
  m : Mutex.t;
  lru : (key, P.item list) Lru.t;
  mutable epoch : int;
  mutable closure_epoch : int;
}

let create ?(closure_epoch = 0) ~capacity () =
  { m = Mutex.create (); lru = Lru.create ~capacity (); epoch = 0; closure_epoch }

let set_closure_epoch t e = with_lock t.m (fun () -> t.closure_epoch <- e)

let key t ~start_tag ~target_tag ~k ~max_dist =
  { start_tag; target_tag; k; max_dist; epoch = t.epoch;
    closure_epoch = t.closure_epoch }

let find t ~start_tag ~target_tag ~k ~max_dist =
  with_lock t.m (fun () ->
      Lru.find t.lru (key t ~start_tag ~target_tag ~k ~max_dist))

let store t ~start_tag ~target_tag ~k ~max_dist items =
  with_lock t.m (fun () ->
      Lru.add t.lru (key t ~start_tag ~target_tag ~k ~max_dist) items)

let invalidate t =
  with_lock t.m (fun () ->
      t.epoch <- t.epoch + 1;
      Lru.clear t.lru)

(* Scoped invalidation: only entries whose start or target tag the delta
   touched can have changed, so only those are dropped — no epoch bump,
   surviving keys stay reachable, and the hit/miss counters keep
   counting (they are the evidence the warm entries kept serving). *)
let invalidate_tags t tags =
  with_lock t.m (fun () ->
      let doomed = ref [] in
      Lru.iter t.lru (fun key _ ->
          if
            List.exists (String.equal key.start_tag) tags
            || List.exists (String.equal key.target_tag) tags
          then doomed := key :: !doomed);
      List.iter (Lru.remove t.lru) !doomed)

let stats t =
  with_lock t.m (fun () ->
      {
        entries = Lru.length t.lru;
        hits = Lru.hits t.lru;
        misses = Lru.misses t.lru;
        epoch = t.epoch;
      })
