(* Header page layout: magic "FXPG1\n" + page size as decimal + '\n',
   rest zero. Data pages follow, addressed from 0.

   Concurrency: the pool is striped. A page belongs to stripe
   [page mod n_stripes]; each stripe owns its own mutex, LRU segment,
   statistics counters, and a private file descriptor (a separate
   [Unix.openfile], NOT [Unix.dup] — dup'd descriptors share one file
   offset, which would let two stripes race each other's lseek+read
   pairs). No mutex is ever held across a [Unix] syscall: positioned
   I/O runs under a per-stripe condition-variable turn ([gate.busy]),
   and pages that are mid-I/O are latched in their slot
   ([loading]/[flushing]) so a miss fill or an eviction write-back for
   page A never blocks a pool hit on page B of the same stripe.
   Callers only ever receive fresh [Bytes] copies, never a pool slot,
   so no page memory is shared outside a critical section. *)

let header_magic = "FXPG1\n"

(* [physical_reads] counts every page fetched from disk, prefetch
   fills included; [demand_misses] only the fetches a [read]/[write]
   had to wait for — so [logical_reads - demand_misses] is the pool
   hit count and can never go negative, no matter how speculative the
   readahead was. *)
type stats = {
  logical_reads : int;
  physical_reads : int;
  physical_writes : int;
  demand_misses : int;
}

type stripe_stats = {
  stripe_index : int;
  resident_pages : int;
  capacity_pages : int;
  stripe_logical_reads : int;
  stripe_physical_reads : int;
  stripe_physical_writes : int;
  lock_acquisitions : int;
  lock_contended : int;
}

(* [loading]: the slot was claimed on a pool miss and its bytes are
   still being read; everyone else parks on the stripe condition.
   [flushing]: an eviction or flush snapshotted the bytes and is
   writing them back; readers may still hit the slot (the bytes are
   valid), writers wait so the dirty/clean accounting stays exact. *)
type slot = {
  data : Bytes.t;
  mutable dirty : bool;
  mutable loading : bool;
  mutable flushing : bool;
}

(* A mutex/condvar pair with a [busy] turn flag. The mutex protects
   only in-memory state; [busy] serializes the owning resource (a
   stripe's fd, the file-extension path) across the I/O itself, which
   happens with the mutex released. The atomics feed the per-stripe
   contention metrics without needing any lock. *)
type gate = {
  glock : Mutex.t;
  gcond : Condition.t;
  mutable busy : bool;
  acquired : int Atomic.t;
  contended : int Atomic.t;
}

type stripe = {
  index : int;
  fd : Unix.file_descr;
  gate : gate; (* slot table, counters *)
  io : gate; (* busy = this stripe's fd is mid lseek+read/write *)
  pool : (int, slot) Fx_util.Lru.t;
  capacity : int;
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable demand_misses : int;
}

type t = {
  main_fd : Unix.file_descr; (* header I/O and fsync only *)
  page_size : int;
  pool_pages : int;
  stripes : stripe array;
  alloc : gate; (* busy = a file extension is in flight *)
  n_pages : int Atomic.t;
  closed : bool Atomic.t;
}

let with_lock (g : gate) f =
  if not (Mutex.try_lock g.glock) then begin
    Atomic.incr g.contended;
    Mutex.lock g.glock
  end;
  Atomic.incr g.acquired;
  Fun.protect ~finally:(fun () -> Mutex.unlock g.glock) f

let make_gate () =
  {
    glock = Mutex.create ();
    gcond = Condition.create ();
    busy = false;
    acquired = Atomic.make 0;
    contended = Atomic.make 0;
  }

let acquire_turn (g : gate) =
  with_lock g (fun () ->
      while g.busy do
        Condition.wait g.gcond g.glock
      done;
      g.busy <- true)

let release_turn (g : gate) =
  with_lock g (fun () ->
      g.busy <- false;
      Condition.broadcast g.gcond)

let with_turn g f =
  acquire_turn g;
  Fun.protect ~finally:(fun () -> release_turn g) f

(* --- positioned I/O ---------------------------------------------------- *)

(* Never called with a mutex held: callers hold the relevant fd's I/O
   turn instead, which makes the lseek + read/write pair atomic with
   respect to the other users of that descriptor. EINTR is retried —
   a signal delivered to a worker domain mid-transfer must not abort
   the request (read/write return the partial count when bytes moved,
   so a retry after EINTR never re-reads or skips data). *)
let rec eintr_read fd buf pos len =
  try Unix.read fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> eintr_read fd buf pos len

let rec eintr_write fd buf pos len =
  try Unix.write fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> eintr_write fd buf pos len

let rec eintr_fsync fd =
  try Unix.fsync fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> eintr_fsync fd

let really_pread fd buf off =
  let len = Bytes.length buf in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < len then begin
      let k = eintr_read fd buf pos (len - pos) in
      if k = 0 then invalid_arg "Pager: short read (truncated file)";
      go (pos + k)
    end
  in
  go 0

let really_pwrite fd buf off =
  let len = Bytes.length buf in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < len then begin
      let k = eintr_write fd buf pos (len - pos) in
      if k = 0 then invalid_arg "Pager: short write (device full?)";
      go (pos + k)
    end
  in
  go 0

(* --- stripe machinery -------------------------------------------------- *)

let check_open t = if Atomic.get t.closed then invalid_arg "Pager: already closed"
let file_offset t page = (page + 1) * t.page_size
let stripe_of t page = t.stripes.(page mod Array.length t.stripes)

let write_page t s page bytes =
  with_turn s.io (fun () -> really_pwrite s.fd bytes (file_offset t page))

(* Fill a freshly claimed [loading] slot from disk. Runs without the
   stripe gate; waiters park on the stripe condition until the slot
   goes ready. On failure the claim is withdrawn so a waiter retries
   the load itself. *)
let load_slot t s page slot =
  match with_turn s.io (fun () -> really_pread s.fd slot.data (file_offset t page)) with
  | () ->
      with_lock s.gate (fun () ->
          slot.loading <- false;
          s.physical_reads <- s.physical_reads + 1;
          s.demand_misses <- s.demand_misses + 1;
          Condition.broadcast s.gate.gcond)
  | exception e ->
      with_lock s.gate (fun () ->
          Fx_util.Lru.remove s.pool page;
          slot.loading <- false;
          Condition.broadcast s.gate.gcond);
      raise e

(* Run [f slot] under the stripe gate on the current, fully loaded slot
   for [page], claiming and loading it on a miss. [for_write] also
   waits out an in-flight write-back, so a writer can never mutate
   bytes the write-back already snapshotted and then see its update
   marked clean. Returns [f]'s result plus whether the stripe ended
   over capacity, so the hit path costs exactly one gate acquisition
   and eviction runs only when this access (or a concurrent one) has
   actually pushed the stripe over. *)
let rec with_page t s page ~for_write f =
  let action =
    with_lock s.gate (fun () ->
        match Fx_util.Lru.find s.pool page with
        | Some slot when slot.loading || (for_write && slot.flushing) ->
            Condition.wait s.gate.gcond s.gate.glock;
            `Retry
        | Some slot ->
            s.logical_reads <- s.logical_reads + 1;
            `Done (f slot, Fx_util.Lru.length s.pool > s.capacity)
        | None ->
            let slot =
              { data = Bytes.create t.page_size; dirty = false; loading = true; flushing = false }
            in
            Fx_util.Lru.set s.pool page slot;
            `Load slot)
  in
  match action with
  | `Done v -> v
  | `Retry -> with_page t s page ~for_write f
  | `Load slot ->
      load_slot t s page slot;
      with_page t s page ~for_write f

(* Trim [s] down to capacity. The victim's bytes are snapshotted and
   written back with the gate released; the slot stays resident and
   [flushing] until the write lands, so a concurrent fetch still hits
   it and never reads stale bytes off disk. A failed write-back leaves
   the page dirty and resident (the stripe stays over capacity until
   the next access retries) and raises out of the operation that
   triggered the eviction. A tail that is itself mid-I/O is left alone
   — bounded overshoot, trimmed by whichever operation finishes it. *)
let rec evict_excess t s =
  let action =
    with_lock s.gate (fun () ->
        if Fx_util.Lru.length s.pool <= s.capacity then `Done
        else
          match Fx_util.Lru.peek_lru s.pool with
          | None -> `Done
          | Some (page, slot) ->
              if slot.loading || slot.flushing then `Done
              else if not slot.dirty then begin
                Fx_util.Lru.remove s.pool page;
                `Again
              end
              else begin
                slot.flushing <- true;
                `Write_back (page, slot, Bytes.copy slot.data)
              end)
  in
  match action with
  | `Done -> ()
  | `Again -> evict_excess t s
  | `Write_back (page, slot, snapshot) -> (
      match write_page t s page snapshot with
      | () ->
          with_lock s.gate (fun () ->
              s.physical_writes <- s.physical_writes + 1;
              slot.dirty <- false;
              slot.flushing <- false;
              Fx_util.Lru.remove s.pool page;
              Condition.broadcast s.gate.gcond);
          evict_excess t s
      | exception e ->
          with_lock s.gate (fun () ->
              slot.flushing <- false;
              Condition.broadcast s.gate.gcond);
          raise e)

(* Write one dirty page back for {!flush}, latching it right before
   the write so concurrent writers are held per page, not for the
   whole flush. A slot already mid-I/O is waited out, not skipped:
   flush must not return before every pre-existing dirty page is on
   its way to the fsync. *)
let rec flush_one t s page =
  let action =
    with_lock s.gate (fun () ->
        match Fx_util.Lru.peek s.pool page with
        | Some slot when slot.loading || slot.flushing ->
            Condition.wait s.gate.gcond s.gate.glock;
            `Retry
        | Some slot when slot.dirty ->
            slot.flushing <- true;
            `Write_back (slot, Bytes.copy slot.data)
        | Some _ | None -> `Skip)
  in
  match action with
  | `Skip -> ()
  | `Retry -> flush_one t s page
  | `Write_back (slot, snapshot) -> (
      match write_page t s page snapshot with
      | () ->
          with_lock s.gate (fun () ->
              s.physical_writes <- s.physical_writes + 1;
              slot.dirty <- false;
              slot.flushing <- false;
              Condition.broadcast s.gate.gcond)
      | exception e ->
          with_lock s.gate (fun () ->
              slot.flushing <- false;
              Condition.broadcast s.gate.gcond);
          raise e)

(* Batched write-back: collect the dirty page numbers across all
   stripes, sort, and write in ascending file order — sequential I/O
   instead of the Hashtbl order an Lru.iter walk would produce — then
   one fsync on the main descriptor (fsync flushes the file, not the
   descriptor, so the stripe-fd writes are covered). *)
let flush_pages t =
  let dirty = ref [] in
  Array.iter
    (fun s ->
      with_lock s.gate (fun () ->
          Fx_util.Lru.iter s.pool (fun page slot ->
              if slot.dirty then dirty := page :: !dirty)))
    t.stripes;
  List.iter (fun page -> flush_one t (stripe_of t page) page) (List.sort Int.compare !dirty);
  eintr_fsync t.main_fd

(* --- lifecycle --------------------------------------------------------- *)

let create ?(pool_pages = 256) ?(page_size = 4096) ?(stripes = 8) path =
  if page_size < 64 then invalid_arg "Pager.create: page_size < 64";
  if pool_pages < 1 then invalid_arg "Pager.create: pool_pages < 1";
  if stripes < 1 || stripes > 64 then invalid_arg "Pager.create: stripes out of range";
  let main_fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let opened = ref [ main_fd ] in
  let ok = ref false in
  (* Every open descriptor dies on any failure below — including the
     fresh-file header write hitting ENOSPC, which used to leak the fd. *)
  Fun.protect
    ~finally:(fun () ->
      if not !ok then
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !opened)
    (fun () ->
      let file_len = (Unix.fstat main_fd).Unix.st_size in
      let header_written =
        if file_len = 0 then begin
          (* Fresh file: write the header page (a real physical write —
             the store benches must not under-report I/O). *)
          let header = Bytes.make page_size '\000' in
          let tag = Printf.sprintf "%s%d\n" header_magic page_size in
          Bytes.blit_string tag 0 header 0 (String.length tag);
          really_pwrite main_fd header 0;
          true
        end
        else begin
          if file_len < page_size || file_len mod page_size <> 0 then
            invalid_arg "Pager.create: file size is not a multiple of the page size";
          let header = Bytes.create page_size in
          really_pread main_fd header 0;
          let m = String.length header_magic in
          if Bytes.sub_string header 0 m <> header_magic then
            invalid_arg "Pager.create: bad header magic";
          let rest = Bytes.sub_string header m (min 16 (page_size - m)) in
          let recorded =
            match String.index_opt rest '\n' with
            | Some i -> int_of_string_opt (String.sub rest 0 i)
            | None -> None
          in
          (match recorded with
          | Some ps when ps = page_size -> ()
          | Some ps ->
              invalid_arg
                (Printf.sprintf "Pager.create: file has page size %d, expected %d" ps
                   page_size)
          | None -> invalid_arg "Pager.create: corrupt header");
          false
        end
      in
      let capacity = max 1 (pool_pages / stripes) in
      let stripe_arr =
        Array.init stripes (fun i ->
            (* A private descriptor per stripe: separate open file
               descriptions mean independent file offsets, so stripes
               never race each other's lseek+read pairs. *)
            let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
            opened := fd :: !opened;
            {
              index = i;
              fd;
              gate = make_gate ();
              io = make_gate ();
              pool = Fx_util.Lru.create ~capacity ();
              capacity;
              logical_reads = 0;
              physical_reads = 0;
              physical_writes = 0;
              demand_misses = 0;
            })
      in
      if header_written then stripe_arr.(0).physical_writes <- 1;
      ok := true;
      {
        main_fd;
        page_size;
        pool_pages;
        stripes = stripe_arr;
        alloc = make_gate ();
        n_pages = Atomic.make (if file_len = 0 then 0 else (file_len / page_size) - 1);
        closed = Atomic.make false;
      })

(* --- public API -------------------------------------------------------- *)

let page_size t = t.page_size
let pool_pages t = t.pool_pages
let n_pages t = Atomic.get t.n_pages
let n_stripes t = Array.length t.stripes

let check_page t page =
  if page < 0 || page >= Atomic.get t.n_pages then invalid_arg "Pager: page out of range"

let append_page t =
  check_open t;
  (* One extension at a time; the zero write goes through the page's
     stripe descriptor, and [n_pages] is published only after the file
     is extended, so a raise (ENOSPC) leaves the count consistent and a
     concurrent reader can never hit a short read. *)
  with_turn t.alloc (fun () ->
      let page = Atomic.get t.n_pages in
      let s = stripe_of t page in
      let data = Bytes.make t.page_size '\000' in
      write_page t s page data;
      let over =
        with_lock s.gate (fun () ->
            s.physical_writes <- s.physical_writes + 1;
            Fx_util.Lru.set s.pool page { data; dirty = false; loading = false; flushing = false };
            Fx_util.Lru.length s.pool > s.capacity)
      in
      Atomic.incr t.n_pages;
      if over then evict_excess t s;
      page)

let read t ~page ~offset ~len =
  check_open t;
  if offset < 0 || len < 0 || offset > t.page_size || len > t.page_size - offset then
    invalid_arg "Pager.read: out of page bounds";
  check_page t page;
  let s = stripe_of t page in
  let out, over =
    with_page t s page ~for_write:false (fun slot -> Bytes.sub slot.data offset len)
  in
  if over then evict_excess t s;
  out

let write t ~page ~offset buf =
  check_open t;
  let len = Bytes.length buf in
  if offset < 0 || offset >= t.page_size || len > t.page_size - offset then
    invalid_arg "Pager.write: out of page bounds";
  check_page t page;
  let s = stripe_of t page in
  let (), over =
    with_page t s page ~for_write:true (fun slot ->
        Bytes.blit buf 0 slot.data offset len;
        slot.dirty <- true)
  in
  if over then evict_excess t s

let prefetch_chunk = 64

let prefetch t ~page ~count =
  check_open t;
  (* Readahead for sequential scans: claim loading slots for the
     not-yet-resident pages of the range — but only into free pool
     room, never evicting pages someone is actually using for the sake
     of speculative ones — then fill each chunk with one large
     contiguous read instead of one lseek+read per page. Advisory:
     the range is clamped and a full pool makes this a no-op. *)
  let n = Atomic.get t.n_pages in
  let lo = max 0 page in
  if count > 0 && lo < n then begin
    let hi = if count >= n - lo then n else lo + count in
    let pos = ref lo in
    while !pos < hi do
      let stop = min hi (!pos + prefetch_chunk) in
      let claimed = ref [] in
      for p = stop - 1 downto !pos do
        let s = stripe_of t p in
        let got =
          with_lock s.gate (fun () ->
              if Fx_util.Lru.length s.pool >= s.capacity || Fx_util.Lru.mem s.pool p then
                None
              else begin
                let slot =
                  { data = Bytes.create t.page_size; dirty = false; loading = true;
                    flushing = false }
                in
                Fx_util.Lru.set s.pool p slot;
                Some slot
              end)
        in
        match got with Some slot -> claimed := (p, slot) :: !claimed | None -> ()
      done;
      (match !claimed with
      | [] -> ()
      | (first, _) :: _ -> (
          let last = List.fold_left (fun _ (p, _) -> p) first !claimed in
          let buf = Bytes.create ((last - first + 1) * t.page_size) in
          let s0 = stripe_of t first in
          match with_turn s0.io (fun () -> really_pread s0.fd buf (file_offset t first)) with
          | () ->
              List.iter
                (fun (p, slot) ->
                  Bytes.blit buf ((p - first) * t.page_size) slot.data 0 t.page_size;
                  let s = stripe_of t p in
                  with_lock s.gate (fun () ->
                      slot.loading <- false;
                      s.physical_reads <- s.physical_reads + 1;
                      Condition.broadcast s.gate.gcond))
                !claimed
          | exception e ->
              List.iter
                (fun (p, slot) ->
                  let s = stripe_of t p in
                  with_lock s.gate (fun () ->
                      Fx_util.Lru.remove s.pool p;
                      slot.loading <- false;
                      Condition.broadcast s.gate.gcond))
                !claimed;
              raise e));
      pos := stop
    done
  end

let flush t =
  check_open t;
  flush_pages t

let close t =
  if not (Atomic.get t.closed) then begin
    (* If the final flush fails the pager stays open (and reportable)
       so the caller can retry once the condition clears. *)
    flush_pages t;
    if Atomic.compare_and_set t.closed false true then begin
      Unix.close t.main_fd;
      Array.iter (fun s -> Unix.close s.fd) t.stripes
    end
  end

let stats t =
  let logical = ref 0 and physical_r = ref 0 and physical_w = ref 0 and misses = ref 0 in
  Array.iter
    (fun s ->
      with_lock s.gate (fun () ->
          logical := !logical + s.logical_reads;
          physical_r := !physical_r + s.physical_reads;
          physical_w := !physical_w + s.physical_writes;
          misses := !misses + s.demand_misses))
    t.stripes;
  {
    logical_reads = !logical;
    physical_reads = !physical_r;
    physical_writes = !physical_w;
    demand_misses = !misses;
  }

let reset_stats t =
  Array.iter
    (fun s ->
      with_lock s.gate (fun () ->
          s.logical_reads <- 0;
          s.physical_reads <- 0;
          s.physical_writes <- 0;
          s.demand_misses <- 0);
      Atomic.set s.gate.acquired 0;
      Atomic.set s.gate.contended 0;
      Atomic.set s.io.acquired 0;
      Atomic.set s.io.contended 0)
    t.stripes

let stripe_stats t =
  Array.to_list
    (Array.map
       (fun s ->
         with_lock s.gate (fun () ->
             {
               stripe_index = s.index;
               resident_pages = Fx_util.Lru.length s.pool;
               capacity_pages = s.capacity;
               stripe_logical_reads = s.logical_reads;
               stripe_physical_reads = s.physical_reads;
               stripe_physical_writes = s.physical_writes;
               lock_acquisitions = Atomic.get s.gate.acquired + Atomic.get s.io.acquired;
               lock_contended = Atomic.get s.gate.contended + Atomic.get s.io.contended;
             }))
       t.stripes)

let drop_pool t =
  check_open t;
  flush_pages t;
  Array.iter (fun s -> with_lock s.gate (fun () -> Fx_util.Lru.clear s.pool)) t.stripes

let unsafe_fd t = t.main_fd
let unsafe_page_fd t ~page = (stripe_of t page).fd
