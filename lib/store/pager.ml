(* Header page layout: magic "FXPG1\n" + page size as decimal + '\n',
   rest zero. Data pages follow, addressed from 0.

   Concurrency: one pager may be shared by every worker domain of the
   query service, so all mutable state — the LRU pool, [n_pages], the
   statistics counters, and the fd's file position — lives under one
   pager-wide mutex. Public operations take the lock exactly once (the
   mutex is not reentrant); everything below the [--- locked ---] line
   assumes the lock is held and must not retake it, including the
   eviction write-back that [Lru.add] can trigger. Callers only ever
   receive fresh [Bytes] copies, never a pool slot, so no page memory
   is shared across a lock release. *)

let header_magic = "FXPG1\n"

type stats = { logical_reads : int; physical_reads : int; physical_writes : int }

type slot = { data : Bytes.t; mutable dirty : bool }

type t = {
  fd : Unix.file_descr;
  page_size : int;
  lock : Mutex.t;
  mutable n_pages : int;
  pool : (int, slot) Fx_util.Lru.t;
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable closed : bool;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- locked: everything below assumes t.lock is held ----------------- *)

let check_open t = if t.closed then invalid_arg "Pager: already closed"

let file_offset t page = (page + 1) * t.page_size

(* Positioned I/O. OCaml's Unix module exposes no pread/pwrite, so each
   call is an lseek + read/write pair over the shared file position;
   every call site holds the pager lock, which makes the pair atomic
   with respect to the other domains using this fd. *)
let really_pread fd buf off =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let k = Unix.read fd buf pos (len - pos) in
      if k = 0 then invalid_arg "Pager: short read (truncated file)";
      go (pos + k)
    end
  in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  go 0

let really_pwrite fd buf off =
  let len = Bytes.length buf in
  let rec go pos =
    if pos < len then begin
      let k = Unix.write fd buf pos (len - pos) in
      if k = 0 then invalid_arg "Pager: short write (device full?)";
      go (pos + k)
    end
  in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  go 0

(* Counts the write only after it succeeds, so a failed write-back
   (ENOSPC, EBADF) leaves both the dirty flag and the statistics
   truthful — the page stays resident (see Lru.on_evict) and a later
   flush can retry it. *)
let write_back t page (slot : slot) =
  if slot.dirty then begin
    really_pwrite t.fd slot.data (file_offset t page);
    t.physical_writes <- t.physical_writes + 1;
    slot.dirty <- false
  end

let fetch t page =
  if page < 0 || page >= t.n_pages then invalid_arg "Pager: page out of range";
  t.logical_reads <- t.logical_reads + 1;
  match Fx_util.Lru.find t.pool page with
  | Some slot -> slot
  | None ->
      t.physical_reads <- t.physical_reads + 1;
      let data = Bytes.create t.page_size in
      really_pread t.fd data (file_offset t page);
      let slot = { data; dirty = false } in
      Fx_util.Lru.add t.pool page slot;
      slot

let flush_pool t =
  Fx_util.Lru.iter t.pool (fun page slot -> write_back t page slot);
  Unix.fsync t.fd

(* --- lifecycle -------------------------------------------------------- *)

let create ?(pool_pages = 256) ?(page_size = 4096) path =
  if page_size < 64 then invalid_arg "Pager.create: page_size < 64";
  if pool_pages < 1 then invalid_arg "Pager.create: pool_pages < 1";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let file_len = (Unix.fstat fd).Unix.st_size in
  let rec t =
    lazy
      {
        fd;
        page_size;
        lock = Mutex.create ();
        n_pages = 0;
        pool =
          Fx_util.Lru.create ~capacity:pool_pages
            ~on_evict:(fun page slot -> write_back (Lazy.force t) page slot)
            ();
        logical_reads = 0;
        physical_reads = 0;
        physical_writes = 0;
        closed = false;
      }
  in
  let t = Lazy.force t in
  if file_len = 0 then begin
    (* Fresh file: write the header page (a real physical write — the
       store benches must not under-report I/O). *)
    let header = Bytes.make page_size '\000' in
    let tag = Printf.sprintf "%s%d\n" header_magic page_size in
    Bytes.blit_string tag 0 header 0 (String.length tag);
    really_pwrite fd header 0;
    t.physical_writes <- 1;
    t.n_pages <- 0
  end
  else begin
    if file_len < page_size || file_len mod page_size <> 0 then begin
      Unix.close fd;
      invalid_arg "Pager.create: file size is not a multiple of the page size"
    end;
    let header = Bytes.create page_size in
    really_pread fd header 0;
    let m = String.length header_magic in
    if Bytes.sub_string header 0 m <> header_magic then begin
      Unix.close fd;
      invalid_arg "Pager.create: bad header magic"
    end;
    let rest = Bytes.sub_string header m (min 16 (page_size - m)) in
    let recorded =
      match String.index_opt rest '\n' with
      | Some i -> int_of_string_opt (String.sub rest 0 i)
      | None -> None
    in
    (match recorded with
    | Some ps when ps = page_size -> ()
    | Some ps ->
        Unix.close fd;
        invalid_arg (Printf.sprintf "Pager.create: file has page size %d, expected %d" ps page_size)
    | None ->
        Unix.close fd;
        invalid_arg "Pager.create: corrupt header");
    t.n_pages <- (file_len / page_size) - 1
  end;
  t

(* --- public API: each entry takes the lock exactly once --------------- *)

let page_size t = t.page_size
let n_pages t = with_lock t.lock (fun () -> t.n_pages)

let append_page t =
  (* flix-lint: allow FL008 — file extension must be atomic with n_pages under the single pager mutex; ROADMAP item 1 (striped buffer pool) deletes this *)
  with_lock t.lock (fun () ->
      check_open t;
      let page = t.n_pages in
      let slot = { data = Bytes.make t.page_size '\000'; dirty = false } in
      (* Extend the file before publishing the page index, so a raise
         here (ENOSPC) leaves [n_pages] consistent with the file and a
         concurrent reader can never hit a short read. *)
      really_pwrite t.fd slot.data (file_offset t page);
      t.physical_writes <- t.physical_writes + 1;
      t.n_pages <- t.n_pages + 1;
      Fx_util.Lru.add t.pool page slot;
      page)

let read t ~page ~offset ~len =
  (* flix-lint: allow FL008 — miss I/O under the single pager mutex is the BENCH_6 bottleneck; ROADMAP item 1 (striped buffer pool) deletes this *)
  with_lock t.lock (fun () ->
      check_open t;
      if offset < 0 || len < 0 || offset + len > t.page_size then
        invalid_arg "Pager.read: out of page bounds";
      let slot = fetch t page in
      Bytes.sub slot.data offset len)

let write t ~page ~offset buf =
  (* flix-lint: allow FL008 — miss I/O under the single pager mutex is the BENCH_6 bottleneck; ROADMAP item 1 (striped buffer pool) deletes this *)
  with_lock t.lock (fun () ->
      check_open t;
      if offset < 0 || offset + Bytes.length buf > t.page_size then
        invalid_arg "Pager.write: out of page bounds";
      let slot = fetch t page in
      Bytes.blit buf 0 slot.data offset (Bytes.length buf);
      slot.dirty <- true)

let flush t =
  (* flix-lint: allow FL008 — dirty write-back + fsync hold the pager mutex so no writer races the flush; ROADMAP item 1 (batched write-back) deletes this *)
  with_lock t.lock (fun () ->
      check_open t;
      flush_pool t)

let close t =
  (* flix-lint: allow FL008 — final write-back must exclude every API entry until the fd dies; ROADMAP item 1 (striped buffer pool) deletes this *)
  with_lock t.lock (fun () ->
      if not t.closed then begin
        flush_pool t;
        t.closed <- true;
        Unix.close t.fd
      end)

let stats t =
  with_lock t.lock (fun () ->
      {
        logical_reads = t.logical_reads;
        physical_reads = t.physical_reads;
        physical_writes = t.physical_writes;
      })

let reset_stats t =
  with_lock t.lock (fun () ->
      t.logical_reads <- 0;
      t.physical_reads <- 0;
      t.physical_writes <- 0)

let drop_pool t =
  (* flix-lint: allow FL008 — write-back of every dirty slot under the pager mutex, test-only entry; ROADMAP item 1 (striped buffer pool) deletes this *)
  with_lock t.lock (fun () ->
      check_open t;
      Fx_util.Lru.iter t.pool (fun page slot -> write_back t page slot);
      Fx_util.Lru.clear t.pool)

let unsafe_fd t = t.fd
