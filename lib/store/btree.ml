(* Page layouts (big-endian fixed-width fields):

   meta page (data page 0):
     "FXBT1" | root page i32 | count i64 | height i32

   node pages:
     kind u8 (0 = leaf, 1 = internal) | nkeys u16 (at offset 1)
     leaf:     next-leaf i32 at offset 4 (-1 = none);
               entries at offset 8: key i64, value i64 per slot
     internal: entries at offset 8: keys i64 * cap, then children
               i32 * (cap + 1) at a fixed region after the key region.

   Simplifications that keep this robust: no deletions (the stores are
   rebuildable snapshots), splits only (no merges), whole-page
   read-modify-write through the pager. *)

let meta_magic = "FXBT1"

type t = {
  pager : Pager.t;
  leaf_cap : int;
  int_cap : int;
  mutable root : int;
  mutable count : int;
  mutable height : int;
}

let corrupt msg = raise (Fx_util.Codec.Corrupt msg)

(* --- raw page access ------------------------------------------------ *)

let load t page = Pager.read t.pager ~page ~offset:0 ~len:(Pager.page_size t.pager)
let store t page bytes = Pager.write t.pager ~page ~offset:0 bytes

let kind b = Char.code (Bytes.get b 0)
let set_kind b k = Bytes.set b 0 (Char.chr k)
let nkeys b = Bytes.get_uint16_be b 1
let set_nkeys b n = Bytes.set_uint16_be b 1 n
let next_leaf b = Int32.to_int (Bytes.get_int32_be b 4)
let set_next_leaf b p = Bytes.set_int32_be b 4 (Int32.of_int p)

let leaf_key b i = Int64.to_int (Bytes.get_int64_be b (8 + (16 * i)))
let leaf_value b i = Int64.to_int (Bytes.get_int64_be b (8 + (16 * i) + 8))

let set_leaf_entry b i ~key ~value =
  Bytes.set_int64_be b (8 + (16 * i)) (Int64.of_int key);
  Bytes.set_int64_be b (8 + (16 * i) + 8) (Int64.of_int value)

let int_key b i = Int64.to_int (Bytes.get_int64_be b (8 + (8 * i)))
let set_int_key b i k = Bytes.set_int64_be b (8 + (8 * i)) (Int64.of_int k)

(* The children sit after the key region, which reserves one overflow
   slot: inserts temporarily hold cap+1 keys before splitting. *)
let child_region t = 8 + (8 * (t.int_cap + 1))
let int_child t b i = Int32.to_int (Bytes.get_int32_be b (child_region t + (4 * i)))
let set_int_child t b i p = Bytes.set_int32_be b (child_region t + (4 * i)) (Int32.of_int p)

(* --- meta page ------------------------------------------------------- *)

let write_meta t =
  let b = Bytes.make (Pager.page_size t.pager) '\000' in
  Bytes.blit_string meta_magic 0 b 0 (String.length meta_magic);
  Bytes.set_int32_be b 8 (Int32.of_int t.root);
  Bytes.set_int64_be b 12 (Int64.of_int t.count);
  Bytes.set_int32_be b 20 (Int32.of_int t.height);
  store t 0 b

let read_meta t =
  let b = load t 0 in
  if Bytes.sub_string b 0 (String.length meta_magic) <> meta_magic then
    corrupt "Btree: bad meta magic";
  t.root <- Int32.to_int (Bytes.get_int32_be b 8);
  t.count <- Int64.to_int (Bytes.get_int64_be b 12);
  t.height <- Int32.to_int (Bytes.get_int32_be b 20)

let fresh_node t ~leaf =
  let page = Pager.append_page t.pager in
  let b = Bytes.make (Pager.page_size t.pager) '\000' in
  set_kind b (if leaf then 0 else 1);
  set_nkeys b 0;
  if leaf then set_next_leaf b (-1);
  store t page b;
  page

let create pager =
  let page_size = Pager.page_size pager in
  (* Both capacities reserve an overflow slot (and an overflow child)
     used transiently during splits. *)
  let leaf_cap = ((page_size - 8) / 16) - 1 in
  let int_cap = (page_size - 24) / 12 in
  if leaf_cap < 4 || int_cap < 4 then invalid_arg "Btree.create: page size too small";
  let t = { pager; leaf_cap; int_cap; root = -1; count = 0; height = 1 } in
  if Pager.n_pages pager = 0 then begin
    ignore (Pager.append_page pager) (* meta page *);
    let root = fresh_node t ~leaf:true in
    t.root <- root;
    write_meta t
  end
  else read_meta t;
  t

(* --- search ----------------------------------------------------------- *)

(* Child slot for [key] in an internal node: first key strictly greater
   than [key] decides; keys.(i) is the smallest key in children.(i+1). *)
let child_slot b key =
  let n = nkeys b in
  let lo = ref 0 and hi = ref n in
  (* invariant: keys < lo are <= key; keys >= hi are > key *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if int_key b mid <= key then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf t page key =
  let b = load t page in
  if kind b = 0 then (page, b) else find_leaf t (int_child t b (child_slot b key)) key

let leaf_slot b key =
  let n = nkeys b in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if leaf_key b mid < key then lo := mid + 1 else hi := mid
  done;
  !lo

let find t key =
  let _, b = find_leaf t t.root key in
  let i = leaf_slot b key in
  if i < nkeys b && leaf_key b i = key then Some (leaf_value b i) else None

(* --- insert ------------------------------------------------------------ *)

type split = { sep : int; right : int }

(* Insert into the subtree at [page]; returns a split description when
   the node had to divide. *)
let rec insert_rec t page key value : split option =
  let b = load t page in
  if kind b = 0 then begin
    let i = leaf_slot b key in
    if i < nkeys b && leaf_key b i = key then begin
      set_leaf_entry b i ~key ~value;
      store t page b;
      None
    end
    else begin
      let n = nkeys b in
      (* shift right *)
      for j = n - 1 downto i do
        set_leaf_entry b (j + 1) ~key:(leaf_key b j) ~value:(leaf_value b j)
      done;
      set_leaf_entry b i ~key ~value;
      set_nkeys b (n + 1);
      t.count <- t.count + 1;
      if n + 1 <= t.leaf_cap then begin
        store t page b;
        None
      end
      else begin
        (* split leaf: left keeps half, right gets the rest *)
        let total = n + 1 in
        let left_n = total / 2 in
        let right_page = fresh_node t ~leaf:true in
        let rb = load t right_page in
        for j = left_n to total - 1 do
          set_leaf_entry rb (j - left_n) ~key:(leaf_key b j) ~value:(leaf_value b j)
        done;
        set_nkeys rb (total - left_n);
        set_next_leaf rb (next_leaf b);
        set_nkeys b left_n;
        set_next_leaf b right_page;
        store t page b;
        store t right_page rb;
        Some { sep = leaf_key rb 0; right = right_page }
      end
    end
  end
  else begin
    let slot = child_slot b key in
    match insert_rec t (int_child t b slot) key value with
    | None -> None
    | Some { sep; right } ->
        (* reload: the recursive call may have evicted our buffer *)
        let b = load t page in
        let n = nkeys b in
        for j = n - 1 downto slot do
          set_int_key b (j + 1) (int_key b j)
        done;
        for j = n downto slot + 1 do
          set_int_child t b (j + 1) (int_child t b j)
        done;
        set_int_key b slot sep;
        set_int_child t b (slot + 1) right;
        set_nkeys b (n + 1);
        if n + 1 <= t.int_cap then begin
          store t page b;
          None
        end
        else begin
          (* split internal: middle key moves up *)
          let total = n + 1 in
          let mid = total / 2 in
          let up = int_key b mid in
          let right_page = fresh_node t ~leaf:false in
          let rb = load t right_page in
          for j = mid + 1 to total - 1 do
            set_int_key rb (j - mid - 1) (int_key b j)
          done;
          for j = mid + 1 to total do
            set_int_child t rb (j - mid - 1) (int_child t b j)
          done;
          set_nkeys rb (total - mid - 1);
          set_nkeys b mid;
          store t page b;
          store t right_page rb;
          Some { sep = up; right = right_page }
        end
  end

let insert t ~key ~value =
  if key < 0 then invalid_arg "Btree.insert: negative key";
  match insert_rec t t.root key value with
  | None -> write_meta t
  | Some { sep; right } ->
      let new_root = fresh_node t ~leaf:false in
      let b = load t new_root in
      set_nkeys b 1;
      set_int_key b 0 sep;
      set_int_child t b 0 t.root;
      set_int_child t b 1 right;
      store t new_root b;
      t.root <- new_root;
      t.height <- t.height + 1;
      write_meta t

(* --- range scans --------------------------------------------------------- *)

(* Leaves are appended in key order during a sequential build, so the
   next-leaf chain tends to run through consecutive pages — worth a
   readahead window when a range scan crosses leaves. Non-leaf pages
   caught in the window cost pool room, nothing else. *)
let scan_window = 8

let iter_range t ~lo ~hi f =
  if lo <= hi then begin
    let _, first = find_leaf t t.root lo in
    (* Emit entries of [b] starting at slot [start]; returns true when
       the scan passed [hi] and must stop. *)
    let rec walk b start =
      let n = nkeys b in
      let i = ref start and stop = ref false in
      while (not !stop) && !i < n do
        let k = leaf_key b !i in
        if k > hi then stop := true
        else begin
          f k (leaf_value b !i);
          incr i
        end
      done;
      if (not !stop) && next_leaf b >= 0 then begin
        let nl = next_leaf b in
        Pager.prefetch t.pager ~page:nl ~count:scan_window;
        walk (load t nl) 0
      end
    in
    walk first (leaf_slot first lo)
  end

let range t ~lo ~hi =
  let acc = ref [] in
  iter_range t ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let length t = t.count
let height t = t.height
