(* Byte positions address a contiguous record space laid over the data
   pages: position p lives at page (p / page_size), offset (p mod
   page_size). Each record is a 4-byte big-endian length followed by the
   payload. The write cursor persists implicitly: on reopen we scan
   forward from position 0 over valid length prefixes (cheap — it reads
   only the prefix of each record). *)

type t = {
  pager : Pager.t;
  mutable cursor : int;
  mutable payload : int;
  mutable last : int option; (* handle of the most recently written record *)
}

type handle = int

let corrupt msg = raise (Fx_util.Codec.Corrupt msg)

let page_of t pos = pos / Pager.page_size t.pager
let off_of t pos = pos mod Pager.page_size t.pager

let capacity t = Pager.n_pages t.pager * Pager.page_size t.pager

(* Read [len] bytes starting at byte position [pos], crossing pages.
   The bound is written as [len > capacity - pos] so a hostile length
   from a mangled prefix cannot overflow [pos + len] to a negative and
   slip past the check. *)
let read_bytes t pos len =
  if len < 0 || pos < 0 || pos > capacity t || len > capacity t - pos then
    corrupt "Heap_file: out of range";
  (* A record spanning several pages is one sequential block scan:
     pull the span in with large reads instead of page-sized misses. *)
  (if len > 0 then
     let first = page_of t pos and last = page_of t (pos + len - 1) in
     if last > first then Pager.prefetch t.pager ~page:first ~count:(last - first + 1));
  let out = Bytes.create len in
  let rec go pos written =
    if written < len then begin
      let page = page_of t pos and off = off_of t pos in
      let chunk = min (len - written) (Pager.page_size t.pager - off) in
      let piece = Pager.read t.pager ~page ~offset:off ~len:chunk in
      Bytes.blit piece 0 out written chunk;
      go (pos + chunk) (written + chunk)
    end
  in
  go pos 0;
  Bytes.to_string out

let write_bytes t pos s =
  let len = String.length s in
  (* Grow the file as needed. *)
  while pos + len > capacity t do
    ignore (Pager.append_page t.pager)
  done;
  let rec go pos written =
    if written < len then begin
      let page = page_of t pos and off = off_of t pos in
      let chunk = min (len - written) (Pager.page_size t.pager - off) in
      Pager.write t.pager ~page ~offset:off (Bytes.of_string (String.sub s written chunk));
      go (pos + chunk) (written + chunk)
    end
  in
  go pos 0

let length_prefix n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let read_length t pos =
  let s = read_bytes t pos 4 in
  Int32.to_int (String.get_int32_be s 0)

(* Recover the write cursor by walking the record chain; a zero length
   (zeroed fresh pages) terminates. The walk is strictly sequential, so
   a sliding readahead window keeps it from paying one disk seek per
   length prefix on a cold pool. *)
let recover_window = 32

let recover t =
  let cap = capacity t in
  let prefetched = ref 0 in
  let rec go pos payload last =
    if pos + 4 > cap then (pos, payload, last)
    else begin
      let pg = page_of t pos in
      if pg >= !prefetched then begin
        Pager.prefetch t.pager ~page:pg ~count:recover_window;
        prefetched := pg + recover_window
      end;
      let len = read_length t pos in
      if len <= 0 || len > cap - pos - 4 then (pos, payload, last)
      else go (pos + 4 + len) (payload + len) (Some pos)
    end
  in
  let cursor, payload, last = go 0 0 None in
  t.cursor <- cursor;
  t.payload <- payload;
  t.last <- last

let create pager =
  let t = { pager; cursor = 0; payload = 0; last = None } in
  if Pager.n_pages pager > 0 then recover t;
  t

let append t s =
  if s = "" then invalid_arg "Heap_file.append: empty record";
  let handle = t.cursor in
  write_bytes t handle (length_prefix (String.length s));
  write_bytes t (handle + 4) s;
  t.cursor <- handle + 4 + String.length s;
  t.payload <- t.payload + String.length s;
  t.last <- Some handle;
  handle

let read t handle =
  if handle < 0 || handle > capacity t - 4 then corrupt "Heap_file.read: bad handle";
  let len = read_length t handle in
  if len <= 0 || len > capacity t - handle - 4 then
    corrupt "Heap_file.read: mangled length prefix";
  read_bytes t (handle + 4) len

let size_bytes t = t.payload
let last_handle t = t.last
