(** A page file with a striped LRU buffer pool — the storage regime of
    the paper's evaluation, where every index lived in a database and
    each label probe paid for page fetches. The disk-backed index
    variants (see {!Fx_index.Disk_labels}) run on top of this, and the
    benches use the pool statistics to reproduce the cold/warm
    behaviour that dominates the paper's absolute numbers.

    Pages are fixed-size blocks addressed by index. Reads go through the
    pool; writes mark the cached page dirty and are written back on
    eviction or {!flush}. Not crash-safe (no WAL) — the stores built on
    it are write-once index snapshots, rebuildable from the collection.

    {2 Locking contract}

    A pager is safe to share across OCaml 5 domains. Pages hash to
    [stripes] independent pool segments ([page mod stripes]); each
    stripe owns its own mutex, LRU segment, statistics counters, and a
    private file descriptor, so operations on different stripes never
    contend and positioned I/O needs no global lock. Within a stripe,
    pages that are mid-I/O (a miss fill, an eviction write-back) are
    latched per slot while the stripe mutex is {e released}, so miss
    I/O for page A does not block a pool hit on page B. No mutex is
    ever held across a [Unix] syscall — see DESIGN.md §7 for the
    acquisition order. No operation returns pool memory — {!read}
    hands back a fresh [Bytes] copy — so nothing is shared across a
    lock release. The structures layered on top ({!Btree},
    {!Heap_file}) are therefore safe for concurrent {e readers};
    interleaving a writer with readers still needs external
    coordination, because one logical B-tree or heap operation spans
    several page operations.

    {2 Error handling}

    A failed dirty-page write-back (ENOSPC, EBADF) raises out of the
    operation that triggered it — including reads whose pool fill had
    to evict a dirty page — but never loses the data: the page stays
    resident and dirty, the statistics stay truthful, and the pager
    remains usable, so a later {!flush} can retry once the condition
    clears. [Unix_error EINTR] is always retried, never surfaced. *)

type t

val create : ?pool_pages:int -> ?page_size:int -> ?stripes:int -> string -> t
(** [create path] opens or creates the page file. [page_size] (default
    4096) must match the file if it already exists (it is recorded in a
    header page). [pool_pages] (default 256) bounds the buffer pool;
    [stripes] (default 8, max 64) splits it into that many segments of
    [pool_pages / stripes] pages each. Raises [Invalid_argument] on a
    page-size mismatch or a corrupt header; [Sys_error] on I/O
    failure. No descriptor survives a failed create. *)

val page_size : t -> int
val pool_pages : t -> int
val n_stripes : t -> int

val n_pages : t -> int
(** Data pages currently in the file (the header page is not counted). *)

val append_page : t -> int
(** Allocate a fresh zeroed page at the end; returns its index. The
    file is extended before the index becomes visible, so concurrent
    readers never observe a page whose backing bytes are missing. *)

val read : t -> page:int -> offset:int -> len:int -> bytes
(** Read [len] bytes from one page (bounds-checked, overflow-safe).
    Returns a fresh copy — never a view into the pool. *)

val write : t -> page:int -> offset:int -> bytes -> unit
(** Write within one page; the page stays dirty in the pool until
    eviction or {!flush}. [offset] must lie strictly inside the page
    (so [offset = page_size] is rejected even for an empty buffer).
    The buffer is copied in under the stripe lock. *)

val prefetch : t -> page:int -> count:int -> unit
(** Readahead for sequential scans: pull up to [count] pages starting
    at [page] into the pool using large contiguous reads (one
    lseek+read per chunk instead of one per page). Pages are claimed
    only into free pool room — prefetching never evicts — and the
    range is clamped to the file, so the call is always safe to issue
    speculatively. {!Heap_file} and {!Btree} range scans issue this on
    their own; callers doing raw sequential page sweeps can too. *)

val flush : t -> unit
(** Write every dirty pooled page back — batched in ascending page
    order, so the write-back I/O is sequential — then fsync. Raises on
    write-back failure, leaving the failed pages dirty and resident
    for a retry. *)

val close : t -> unit
(** {!flush} then close every file descriptor. Using [t] afterwards
    raises. If the final flush fails the pager stays open (and
    reportable) so the caller can retry or inspect it. *)

type stats = {
  logical_reads : int;   (** page requests *)
  physical_reads : int;  (** every page fetched from disk, prefetch
                             fills included *)
  physical_writes : int; (** page write-backs, file extensions, and the
                             fresh-file header write *)
  demand_misses : int;   (** requests that had to fetch from disk —
                             prefetch fills excluded *)
}

val stats : t -> stats
(** Summed over the stripes. Pool hits are
    [logical_reads - demand_misses] (never negative, however
    speculative the readahead was); misses are [demand_misses]. The
    serving layer exports both as Prometheus counters. *)

type stripe_stats = {
  stripe_index : int;
  resident_pages : int;       (** pages currently pooled in this stripe *)
  capacity_pages : int;       (** the stripe's pool segment bound *)
  stripe_logical_reads : int;
  stripe_physical_reads : int;
  stripe_physical_writes : int;
  lock_acquisitions : int;    (** stripe mutex + I/O-turn acquisitions *)
  lock_contended : int;       (** acquisitions that had to block *)
}

val stripe_stats : t -> stripe_stats list
(** Per-stripe occupancy and contention counters, in stripe order —
    the serving layer exports them as per-stripe Prometheus series so
    a hot stripe (bad page distribution) is visible in production. *)

val reset_stats : t -> unit
val drop_pool : t -> unit
(** Flush and empty every stripe's pool — a "cold cache" switch for
    benches. *)

val unsafe_fd : t -> Unix.file_descr
(** The descriptor used for header I/O and fsync — for tests and fault
    injection only. Reading or writing through it behind the pager's
    back corrupts the pool's view of the file. *)

val unsafe_page_fd : t -> page:int -> Unix.file_descr
(** The stripe descriptor that page I/O for [page] goes through — for
    fault injection (e.g. redirecting it at a full device) only. *)
