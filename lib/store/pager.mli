(** A page file with an LRU buffer pool — the storage regime of the
    paper's evaluation, where every index lived in a database and each
    label probe paid for page fetches. The disk-backed index variants
    (see {!Fx_index.Disk_labels}) run on top of this, and the benches
    use the pool statistics to reproduce the cold/warm behaviour that
    dominates the paper's absolute numbers.

    Pages are fixed-size blocks addressed by index. Reads go through the
    pool; writes mark the cached page dirty and are written back on
    eviction or {!flush}. Not crash-safe (no WAL) — the stores built on
    it are write-once index snapshots, rebuildable from the collection.

    {2 Locking contract}

    A pager is safe to share across OCaml 5 domains: one pager-wide
    mutex protects the buffer pool, the page count, the statistics
    counters, and the fd's file position (the lseek + read/write pair
    behind each positioned I/O runs under it). Every public operation
    takes the lock exactly once and releases it on any exception; no
    operation returns pool memory — {!read} hands back a fresh [Bytes]
    copy — so nothing is shared across a lock release. The structures
    layered on top ({!Btree}, {!Heap_file}) are therefore safe for
    concurrent {e readers}; interleaving a writer with readers still
    needs external coordination, because one logical B-tree or heap
    operation spans several page operations.

    {2 Error handling}

    A failed dirty-page write-back (ENOSPC, EBADF) raises out of the
    operation that triggered it — including reads whose pool fill had
    to evict a dirty page — but never loses the data: the page stays
    resident and dirty, the statistics stay truthful, and the pager
    remains usable, so a later {!flush} can retry once the condition
    clears. *)

type t

val create : ?pool_pages:int -> ?page_size:int -> string -> t
(** [create path] opens or creates the page file. [page_size] (default
    4096) must match the file if it already exists (it is recorded in a
    header page). [pool_pages] (default 256) bounds the buffer pool.
    Raises [Invalid_argument] on a page-size mismatch or a corrupt
    header; [Sys_error] on I/O failure. *)

val page_size : t -> int
val n_pages : t -> int
(** Data pages currently in the file (the header page is not counted). *)

val append_page : t -> int
(** Allocate a fresh zeroed page at the end; returns its index. The
    file is extended before the index becomes visible, so concurrent
    readers never observe a page whose backing bytes are missing. *)

val read : t -> page:int -> offset:int -> len:int -> bytes
(** Read [len] bytes from one page (bounds-checked). Returns a fresh
    copy — never a view into the pool. *)

val write : t -> page:int -> offset:int -> bytes -> unit
(** Write within one page; the page stays dirty in the pool until
    eviction or {!flush}. The buffer is copied in under the lock. *)

val flush : t -> unit
(** Write every dirty pooled page back and fsync. Raises on write-back
    failure, leaving the failed pages dirty and resident for a retry. *)

val close : t -> unit
(** {!flush} then close the file descriptor. Using [t] afterwards
    raises. If the final flush fails the pager stays open (and
    reportable) so the caller can retry or inspect it. *)

type stats = {
  logical_reads : int;   (** page requests *)
  physical_reads : int;  (** requests that missed the pool *)
  physical_writes : int; (** page write-backs, file extensions, and the
                             fresh-file header write *)
}

val stats : t -> stats
(** Pool hits are [logical_reads - physical_reads]; misses are
    [physical_reads]. The serving layer exports both as Prometheus
    counters. *)

val reset_stats : t -> unit
val drop_pool : t -> unit
(** Flush and empty the pool — a "cold cache" switch for benches. *)

val unsafe_fd : t -> Unix.file_descr
(** The underlying descriptor — for tests and fault injection (e.g.
    redirecting it at a full device) only. Reading or writing through
    it behind the pager's back corrupts the pool's view of the file. *)
