(** Cache over clean (complete, in-deadline) EVALUATE answers with
    invalidation scoped to tag pairs.

    When an ingest delta only adds nodes of tags [T], a cached answer
    for [(start_tag, target_tag)] disjoint from [T] is still exact —
    the new nodes can never appear in it — so it stays warm across the
    snapshot swap. Wildcard-target entries are dropped on every delta.
    Thread-safe. *)

type key = {
  start_tag : string;
  target_tag : string option;  (** [None] = wildcard target *)
  k : int;
  max_dist : int;
}

type 'v t

val create : capacity:int -> 'v t
val find : 'v t -> key -> 'v option
val store : 'v t -> key -> 'v -> unit

val invalidate_tags : 'v t -> string list -> unit
(** Drop entries whose start or target tag is in the list, plus all
    wildcard-target entries. Everything else stays warm. *)

val clear : 'v t -> unit
(** Drop every entry but keep the hit/miss counters (unlike an LRU
    reset) — used when a delta's scope cannot be bounded. *)

val map_values : 'v t -> ('v -> 'v) -> unit
(** Rewrite every cached value in place (hit/miss counters untouched) —
    used to retag surviving entries to the new epoch during a snapshot
    swap. *)

val hits : 'v t -> int
val misses : 'v t -> int
val length : 'v t -> int

val invalidated : 'v t -> int
(** Total entries dropped by {!invalidate_tags} and {!clear}. *)
