(** Cache-invalidation scope of an ingest delta.

    [All] — answers anywhere in the collection may have changed (links
    cross the old/new boundary, or documents were evicted and node ids
    shifted); every cached entry must go. [Tags ts] — only answers
    mentioning one of the tags [ts] can differ; everything else stays
    warm (see {!Eval_cache.invalidate_tags}). *)

type scope = All | Tags of string list

val extend_scope : old_n_nodes:int -> Fx_xml.Collection.t -> scope
(** Exact scope of extending a collection that had [old_n_nodes] nodes
    to the merged collection [c]: [All] iff some link crosses the
    old/new node-id boundary (in either direction), else the tag names
    occurring in the new nodes. *)

val scope_to_string : scope -> string
