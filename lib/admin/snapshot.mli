(** Epoch-numbered, atomically-swappable snapshot of a serving state.

    The snapshot manager owns one {e current} entry plus any retired
    entries still referenced by in-flight requests. A request calls
    {!pin} once, evaluates against the returned state for its whole
    lifetime, and {!unpin}s when done — so a {!publish} in the middle of
    a request never changes what that request sees, and no connection
    has to be dropped across a swap. Retired states are released (the
    [retire] callback fires) exactly once, when their last pin drains.

    All operations are thread-safe; the internal mutex is held only for
    O(pinned-epochs) bookkeeping and never across the [retire] callback,
    so it may safely close files or free large structures. *)

type 'a t

val create : ?retire:('a -> unit) -> 'a -> 'a t
(** [create ?retire state] starts at epoch 1. [retire] (default a no-op)
    is called once per superseded state after its last pin is released —
    outside the snapshot lock. *)

val epoch : 'a t -> int
(** The current (serving) epoch. *)

val current : 'a t -> 'a
(** The current state without pinning — for administrative peeks only;
    request paths must use {!pin}. *)

val pin : 'a t -> int * 'a
(** Take a reference on the current entry. Pair the result with
    {!unpin} via [Fun.protect]. *)

val unpin : 'a t -> int -> unit
(** Release one pin on the given epoch. Frees (and retires) the state if
    it was superseded and this was the last pin.
    @raise Invalid_argument on an epoch that is unknown or not pinned. *)

val publish : 'a t -> 'a -> int
(** Swap in a new state, returning its (new) epoch. The previous state
    is retired immediately when unpinned, otherwise as soon as its last
    pin drains. *)

val pinned : 'a t -> (int * int) list
(** [(epoch, pins)] for the current entry and every draining retired
    entry, ascending by epoch — the [flix_snapshot_pinned] gauge. *)

val draining_count : 'a t -> int
(** How many retired states are still held alive by pins. *)
