(* Epoch-numbered, refcounted snapshot of the serving state. Requests pin
   the current entry for their whole lifetime; publishing installs a new
   entry under the mutex in O(1) and the old one is retired as soon as
   its last pin drains. The retire callback runs OUTSIDE the lock — it
   may close file descriptors or flush buffers (blocking under the
   snapshot mutex would stall every pin on the request path). *)

type 'a entry = {
  epoch : int;
  state : 'a;
  mutable pins : int;
  mutable retired : bool;
}

type 'a t = {
  m : Mutex.t;
  retire : 'a -> unit;
  mutable current : 'a entry;
  mutable draining : 'a entry list;  (* retired, still pinned; newest first *)
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(retire = fun _ -> ()) state =
  {
    m = Mutex.create ();
    retire;
    current = { epoch = 1; state; pins = 0; retired = false };
    draining = [];
  }

let epoch t = with_lock t.m (fun () -> t.current.epoch)

let current t = with_lock t.m (fun () -> t.current.state)

let pin t =
  with_lock t.m (fun () ->
      let e = t.current in
      e.pins <- e.pins + 1;
      (e.epoch, e.state))

let unpin t epoch =
  let release =
    with_lock t.m (fun () ->
        let e =
          if t.current.epoch = epoch then t.current
          else
            match List.find_opt (fun e -> e.epoch = epoch) t.draining with
            | Some e -> e
            | None -> invalid_arg "Snapshot.unpin: unknown epoch"
        in
        if e.pins <= 0 then invalid_arg "Snapshot.unpin: not pinned";
        e.pins <- e.pins - 1;
        if e.retired && e.pins = 0 then begin
          t.draining <- List.filter (fun d -> d.epoch <> epoch) t.draining;
          Some e.state
        end
        else None)
  in
  Option.iter t.retire release

let publish t state =
  let release, epoch =
    with_lock t.m (fun () ->
        let old = t.current in
        old.retired <- true;
        let e = { epoch = old.epoch + 1; state; pins = 0; retired = false } in
        t.current <- e;
        if old.pins = 0 then (Some old.state, e.epoch)
        else begin
          t.draining <- old :: t.draining;
          (None, e.epoch)
        end)
  in
  Option.iter t.retire release;
  epoch

let pinned t =
  with_lock t.m (fun () ->
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        ((t.current.epoch, t.current.pins)
        :: List.map (fun e -> (e.epoch, e.pins)) t.draining))

let draining_count t = with_lock t.m (fun () -> List.length t.draining)
