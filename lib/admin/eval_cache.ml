(* Server-side cache over clean EVALUATE answers, with invalidation
   scoped to the tag pairs touched by an ingest delta instead of a
   whole-epoch flush. All state sits behind one mutex (never held across
   anything blocking); hit/miss counters come from the LRU itself. *)

module Lru = Fx_util.Lru

type key = {
  start_tag : string;
  target_tag : string option;  (* None = wildcard target *)
  k : int;
  max_dist : int;
}

type 'v t = {
  m : Mutex.t;
  lru : (key, 'v) Lru.t;
  mutable invalidated : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ~capacity =
  { m = Mutex.create (); lru = Lru.create ~capacity (); invalidated = 0 }

let find t key = with_lock t.m (fun () -> Lru.find t.lru key)
let store t key v = with_lock t.m (fun () -> Lru.add t.lru key v)

(* A wildcard-target entry may contain nodes of any tag, so every delta
   touches it. A concrete entry is touched only when its start or target
   tag is in the delta's tag set. *)
let touches tags key =
  List.exists (String.equal key.start_tag) tags
  ||
  match key.target_tag with
  | None -> true
  | Some tg -> List.exists (String.equal tg) tags

let invalidate_tags t tags =
  with_lock t.m (fun () ->
      let doomed = ref [] in
      Lru.iter t.lru (fun key _ -> if touches tags key then doomed := key :: !doomed);
      List.iter (Lru.remove t.lru) !doomed;
      t.invalidated <- t.invalidated + List.length !doomed)

let clear t =
  with_lock t.m (fun () ->
      t.invalidated <- t.invalidated + Lru.length t.lru;
      (* [Lru.clear] also resets hit/miss counters, which must survive a
         swap (they are the evidence that scoped invalidation kept
         unaffected entries warm) — drop entries one by one instead. *)
      let keys = ref [] in
      Lru.iter t.lru (fun key _ -> keys := key :: !keys);
      List.iter (Lru.remove t.lru) !keys)

let map_values t f =
  with_lock t.m (fun () ->
      let pairs = ref [] in
      Lru.iter t.lru (fun key v -> pairs := (key, v) :: !pairs);
      (* [Lru.set] replaces in place without touching the hit/miss
         counters (recency order is perturbed, which is harmless). *)
      List.iter (fun (key, v) -> Lru.set t.lru key (f v)) !pairs)

let hits t = with_lock t.m (fun () -> Lru.hits t.lru)
let misses t = with_lock t.m (fun () -> Lru.misses t.lru)
let length t = with_lock t.m (fun () -> Lru.length t.lru)
let invalidated t = with_lock t.m (fun () -> t.invalidated)
