module Collection = Fx_xml.Collection

type scope = All | Tags of string list

(* Node ids are assigned document-by-document in order, so after
   [Flix.extend] every pre-existing node keeps its id and the new
   documents' nodes occupy [old_n_nodes ..). A link crossing that
   boundary — a new document referencing an old one, or an old
   document's previously-dangling href resolving against a new document
   name — changes answers rooted in old nodes, so the delta cannot be
   scoped to the new tags. Idrefs resolve within a single document and
   can never start crossing. *)
let extend_scope ~old_n_nodes c =
  let crossing =
    List.exists
      (fun (l : Collection.link) ->
        not (Bool.equal (l.src < old_n_nodes) (l.dst < old_n_nodes)))
      (Collection.links c)
  in
  if crossing then All
  else begin
    let tag = Collection.tag c in
    let seen = Hashtbl.create 16 in
    for v = old_n_nodes to Collection.n_nodes c - 1 do
      Hashtbl.replace seen tag.(v) ()
    done;
    let names = Hashtbl.fold (fun id () acc -> Collection.tag_name c id :: acc) seen [] in
    Tags (List.sort_uniq String.compare names)
  end

let scope_to_string = function
  | All -> "all"
  | Tags ts -> Printf.sprintf "tags(%s)" (String.concat "," ts)
