type t = {
  n : int;
  m : int;
  succ_off : int array; (* length n+1 *)
  succ_dst : int array; (* length m, sorted within each row *)
  pred_off : int array;
  pred_src : int array;
}

let n_nodes g = g.n
let n_edges g = g.m

let check_endpoint n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of range [0,%d)" u n)

(* Lexicographic on (src, dst) without the polymorphic-compare detour
   through the tuple representation (FL003). *)
let compare_edge (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

(* Build one CSR direction by counting sort on the key extracted by [key],
   storing the value extracted by [value]. *)
let csr_of ~n ~key ~value edges =
  let off = Array.make (n + 1) 0 in
  Array.iter (fun e -> off.(key e + 1) <- off.(key e + 1) + 1) edges;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let dst = Array.make (Array.length edges) 0 in
  let cursor = Array.copy off in
  Array.iter
    (fun e ->
      let k = key e in
      dst.(cursor.(k)) <- value e;
      cursor.(k) <- cursor.(k) + 1)
    edges;
  (* Sort each row so that membership tests can binary-search. *)
  for i = 0 to n - 1 do
    let lo = off.(i) and hi = off.(i + 1) in
    if hi - lo > 1 then begin
      let row = Array.sub dst lo (hi - lo) in
      Array.sort Int.compare row;
      Array.blit row 0 dst lo (hi - lo)
    end
  done;
  (off, dst)

let dedup_sorted_edges edges =
  let m = Array.length edges in
  if m = 0 then edges
  else begin
    Array.sort compare_edge edges;
    let count = ref 1 in
    for i = 1 to m - 1 do
      if edges.(i) <> edges.(i - 1) then incr count
    done;
    if !count = m then edges
    else begin
      let out = Array.make !count edges.(0) in
      let j = ref 0 in
      for i = 1 to m - 1 do
        if edges.(i) <> edges.(i - 1) then begin
          incr j;
          out.(!j) <- edges.(i)
        end
      done;
      out
    end
  end

let of_edges_array ~n edges =
  Array.iter
    (fun (u, v) ->
      check_endpoint n u;
      check_endpoint n v)
    edges;
  let edges = dedup_sorted_edges (Array.copy edges) in
  let succ_off, succ_dst = csr_of ~n ~key:fst ~value:snd edges in
  let pred_off, pred_src = csr_of ~n ~key:snd ~value:fst edges in
  { n; m = Array.length edges; succ_off; succ_dst; pred_off; pred_src }

let of_edges ~n edges = of_edges_array ~n (Array.of_list edges)
let empty n = of_edges_array ~n [||]

let out_degree g u =
  check_endpoint g.n u;
  g.succ_off.(u + 1) - g.succ_off.(u)

let in_degree g u =
  check_endpoint g.n u;
  g.pred_off.(u + 1) - g.pred_off.(u)

let succ g u =
  check_endpoint g.n u;
  Array.sub g.succ_dst g.succ_off.(u) (g.succ_off.(u + 1) - g.succ_off.(u))

let pred g u =
  check_endpoint g.n u;
  Array.sub g.pred_src g.pred_off.(u) (g.pred_off.(u + 1) - g.pred_off.(u))

let iter_succ g u f =
  check_endpoint g.n u;
  for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
    f g.succ_dst.(i)
  done

let iter_pred g u f =
  check_endpoint g.n u;
  for i = g.pred_off.(u) to g.pred_off.(u + 1) - 1 do
    f g.pred_src.(i)
  done

let fold_succ g u f init =
  check_endpoint g.n u;
  let acc = ref init in
  for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
    acc := f !acc g.succ_dst.(i)
  done;
  !acc

let fold_pred g u f init =
  check_endpoint g.n u;
  let acc = ref init in
  for i = g.pred_off.(u) to g.pred_off.(u + 1) - 1 do
    acc := f !acc g.pred_src.(i)
  done;
  !acc

let mem_edge g u v =
  check_endpoint g.n u;
  check_endpoint g.n v;
  let lo = ref g.succ_off.(u) and hi = ref (g.succ_off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.succ_dst.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_succ g u (fun v -> f u v)
  done

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for i = g.succ_off.(u + 1) - 1 downto g.succ_off.(u) do
      acc := (u, g.succ_dst.(i)) :: !acc
    done
  done;
  !acc

let reverse g =
  {
    n = g.n;
    m = g.m;
    succ_off = g.pred_off;
    succ_dst = g.pred_src;
    pred_off = g.succ_off;
    pred_src = g.succ_dst;
  }

let induced g nodes =
  let nodes = Array.copy nodes in
  Array.sort Int.compare nodes;
  Array.iteri
    (fun i u ->
      check_endpoint g.n u;
      if i > 0 && nodes.(i - 1) = u then
        invalid_arg "Digraph.induced: duplicate node")
    nodes;
  let k = Array.length nodes in
  (* local id of a global node, or -1 *)
  let local = Hashtbl.create (2 * k) in
  Array.iteri (fun i u -> Hashtbl.replace local u i) nodes;
  let acc = ref [] in
  Array.iteri
    (fun lu u ->
      iter_succ g u (fun v ->
          match Hashtbl.find_opt local v with
          | Some lv -> acc := (lu, lv) :: !acc
          | None -> ()))
    nodes;
  (of_edges ~n:k !acc, nodes)

let map_nodes g ~f ~n =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (f u, f v) :: !acc);
  of_edges ~n !acc

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (%d nodes, %d edges)" g.n g.m;
  for u = 0 to g.n - 1 do
    if out_degree g u > 0 then begin
      Format.fprintf ppf "@,%d ->" u;
      iter_succ g u (fun v -> Format.fprintf ppf " %d" v)
    end
  done;
  Format.fprintf ppf "@]"
