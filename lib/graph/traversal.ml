let bfs_distances_from_set g sources =
  let n = Digraph.n_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = -1 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Digraph.iter_succ g u (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let bfs_distances g s = bfs_distances_from_set g [ s ]

let distance g u v =
  (* Early-exit BFS. *)
  if u = v then Some 0
  else begin
    let n = Digraph.n_nodes g in
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(u) <- 0;
    Queue.add u queue;
    let found = ref None in
    (try
       while not (Queue.is_empty queue) do
         let x = Queue.pop queue in
         Digraph.iter_succ g x (fun y ->
             if dist.(y) = -1 then begin
               dist.(y) <- dist.(x) + 1;
               if y = v then begin
                 found := Some dist.(y);
                 raise Exit
               end;
               Queue.add y queue
             end)
       done
     with Exit -> ());
    !found
  end

let reachable g u v = distance g u v <> None

let shortest_path g u v =
  if u = v then Some [ u ]
  else begin
    let n = Digraph.n_nodes g in
    let parent = Array.make n (-1) in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(u) <- true;
    Queue.add u queue;
    let found = ref false in
    (try
       while not (Queue.is_empty queue) do
         let x = Queue.pop queue in
         Digraph.iter_succ g x (fun y ->
             if not seen.(y) then begin
               seen.(y) <- true;
               parent.(y) <- x;
               if y = v then begin
                 found := true;
                 raise Exit
               end;
               Queue.add y queue
             end)
       done
     with Exit -> ());
    if not !found then None
    else begin
      let rec walk acc x = if x = u then u :: acc else walk (x :: acc) parent.(x) in
      Some (walk [] v)
    end
  end

let descendants g u =
  let dist = bfs_distances g u in
  let acc = ref [] in
  for v = Digraph.n_nodes g - 1 downto 0 do
    if dist.(v) >= 0 then acc := (v, dist.(v)) :: !acc
  done;
  List.stable_sort (fun (_, d1) (_, d2) -> Int.compare d1 d2) !acc

let descendants_by_tag g ~tag u t =
  let all = descendants g u in
  match t with
  | None -> all
  | Some t -> List.filter (fun (v, _) -> tag.(v) = t) all

type dfs_numbering = {
  pre : int array;
  post : int array;
  depth : int array;
  parent : int array;
  order : int array;
}

let dfs_forest ?roots g =
  let n = Digraph.n_nodes g in
  let pre = Array.make n (-1) in
  let post = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let order = Array.make n (-1) in
  let pre_counter = ref 0 and post_counter = ref 0 in
  (* Explicit stack to survive deep documents. An entry is (node, next
     successor index to visit); we fetch successors once per node. *)
  let visit root =
    if pre.(root) = -1 then begin
      let stack = Stack.create () in
      pre.(root) <- !pre_counter;
      order.(!pre_counter) <- root;
      incr pre_counter;
      depth.(root) <- 0;
      Stack.push (root, ref 0, Digraph.succ g root) stack;
      while not (Stack.is_empty stack) do
        let u, next, adj = Stack.top stack in
        if !next >= Array.length adj then begin
          ignore (Stack.pop stack);
          post.(u) <- !post_counter;
          incr post_counter
        end
        else begin
          let v = adj.(!next) in
          incr next;
          if pre.(v) = -1 then begin
            pre.(v) <- !pre_counter;
            order.(!pre_counter) <- v;
            incr pre_counter;
            depth.(v) <- depth.(u) + 1;
            parent.(v) <- u;
            Stack.push (v, ref 0, Digraph.succ g v) stack
          end
        end
      done
    end
  in
  (match roots with
  | Some rs -> List.iter visit rs
  | None ->
      for v = 0 to n - 1 do
        if Digraph.in_degree g v = 0 then visit v
      done);
  (* Any node not reached yet (cycles, or roots not listed) starts its own
     DFS tree so the numbering is total. *)
  for v = 0 to n - 1 do
    visit v
  done;
  { pre; post; depth; parent; order }

let topological_order g =
  let n = Digraph.n_nodes g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!k) <- u;
    incr k;
    Digraph.iter_succ g u (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
  done;
  if !k = n then Some order else None

let is_acyclic g = topological_order g <> None

let is_forest g =
  let n = Digraph.n_nodes g in
  let rec no_multi_parent v =
    v >= n || (Digraph.in_degree g v <= 1 && no_multi_parent (v + 1))
  in
  no_multi_parent 0 && is_acyclic g
