type t = {
  (* For each source, targets sorted by node id with parallel distances.
     Self-pairs are not stored. *)
  targets : int array array;
  dists : int array array;
}

let compute g =
  let n = Digraph.n_nodes g in
  let targets = Array.make n [||] and dists = Array.make n [||] in
  for u = 0 to n - 1 do
    let d = Traversal.bfs_distances g u in
    let count = ref 0 in
    for v = 0 to n - 1 do
      if v <> u && d.(v) >= 0 then incr count
    done;
    let ts = Array.make !count 0 and ds = Array.make !count 0 in
    let k = ref 0 in
    for v = 0 to n - 1 do
      if v <> u && d.(v) >= 0 then begin
        ts.(!k) <- v;
        ds.(!k) <- d.(v);
        incr k
      end
    done;
    targets.(u) <- ts;
    dists.(u) <- ds
  done;
  { targets; dists }

let find t u v =
  let ts = t.targets.(u) in
  let lo = ref 0 and hi = ref (Array.length ts - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if ts.(mid) = v then res := mid
    else if ts.(mid) < v then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let reachable t u v = u = v || find t u v >= 0

let distance t u v =
  if u = v then Some 0
  else
    let i = find t u v in
    if i < 0 then None else Some t.dists.(u).(i)

let n_pairs t = Array.fold_left (fun acc ts -> acc + Array.length ts) 0 t.targets

let reach_set t u =
  let ts = t.targets.(u) and ds = t.dists.(u) in
  let pairs = Array.to_list (Array.mapi (fun i v -> (v, ds.(i))) ts) in
  List.stable_sort (fun (_, d1) (_, d2) -> Int.compare d1 d2) pairs

let size_bytes t = 8 * n_pairs t
